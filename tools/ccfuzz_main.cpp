// ccfuzz — the distributed-campaign CLI.
//
//   ccfuzz run    --output DIR [--workers N] [--triage] [matrix flags]
//   ccfuzz worker --output DIR --shard k/N   [matrix flags]
//   ccfuzz plan   --output DIR --workers N   [matrix flags]
//   ccfuzz merge  --output DIR
//   ccfuzz triage --output DIR [matrix flags]
//   ccfuzz replay --output DIR [matrix flags]
//   ccfuzz doctor --output DIR
//
// `run` is the front door: with --workers N it plans the shards, fork/execs
// this same binary as N `worker` processes, multiplexes their shard-tagged
// JSONL progress into `<DIR>/progress.jsonl`, restarts dead workers from
// their checkpoints, and merges the shard trees into one report at the
// campaign root. With --workers 0 it runs the identical campaign in-process
// (the single-process reference: the merged sharded report is byte-identical
// to it at the same seeds). `worker` and `merge` are the pieces `run`
// composes, exposed for tests and manual surgery; `plan` writes
// shard_plan.json without running anything.
//
// The matrix flags define the campaign and round-trip exactly: the
// supervisor reserializes them onto every worker's argv, and every process
// expands the same matrix (cell assignment is a pure function of cell name
// and --workers, so no process needs to be told its cell list).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/report.h"
#include "dist/merge.h"
#include "dist/pidfile.h"
#include "dist/shard_plan.h"
#include "dist/supervisor.h"
#include "dist/worker.h"
#include "faultinject/fault_plan.h"
#include "fuzz/score.h"
#include "scenario/config.h"
#include "trace/hash.h"
#include "trace/trace_io.h"
#include "triage/bundle.h"
#include "triage/triage.h"
#include "util/fs.h"
#include "util/time.h"

using namespace ccfuzz;

namespace {

struct Options {
  std::string command;
  // Matrix flags (reserialized verbatim onto worker argv).
  std::vector<std::string> ccas = {"reno", "cubic"};
  std::vector<std::string> modes = {"traffic"};
  std::vector<std::string> presets;
  std::string score = "low-utilization";
  int generations = 6;
  int population = 24;
  int islands = 2;
  unsigned long long seed = 11;
  long long duration_ms = 2000;
  long long max_events = 50'000'000;
  int winners = 3;
  int checkpoint_every = 1;
  int throttle_ms = 0;
  // Role flags.
  std::string output;
  int workers = 2;
  std::string shard;  // "k/N"
  std::vector<std::string> skip_cells;
  double heartbeat_timeout_s = 0.0;
  int max_restarts = 3;
  double restart_window_s = 300.0;
  long long min_free_mb = 16;
  // Triage flags.
  int confirm_runs = 3;
  double tolerance = 0.02;
  int minimize_evals = 200;
  bool triage_after = false;  // run: auto-triage a completed campaign
};

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: ccfuzz <run|worker|plan|merge|triage|replay|doctor> "
      "--output DIR [flags]\n"
      "\n"
      "commands:\n"
      "  run     run the campaign: --workers N spawns N supervised worker\n"
      "          processes and merges their reports; --workers 0 runs\n"
      "          in-process (single-process reference)\n"
      "  worker  run one shard's cells (--shard k/N); JSONL progress on\n"
      "          stdout, report tree under <DIR>/shards/<k>/\n"
      "  plan    write <DIR>/shard_plan.json for --workers N\n"
      "  merge   fold <DIR>/shards/*/ back into a report at <DIR>\n"
      "  triage  confirm, minimize, classify, and bundle every winner trace\n"
      "          and quarantined genome under <DIR> into <DIR>/findings/\n"
      "          (exit 1 if any candidate errored)\n"
      "  replay  re-run every <DIR>/findings/ bundle and compare against its\n"
      "          recorded expectation (exit 1 on drift or broken bundles)\n"
      "  doctor  health-check a campaign directory: write round-trip, disk\n"
      "          space, checkpoint integrity, stale worker pids, fault plan,\n"
      "          finding bundles (exit 0 healthy, 1 findings, 2 usage)\n"
      "\n"
      "matrix flags (identical across run/worker/plan for one campaign):\n"
      "  --ccas a,b          CCA registry names (default reno,cubic)\n"
      "  --modes m,..        traffic and/or link (default traffic)\n"
      "  --presets p,..      multi-flow presets (incast, late_starter, ...)\n"
      "  --score NAME        scoring function (default low-utilization)\n"
      "  --generations N --population N --islands N --seed N\n"
      "  --duration-ms N --max-events N --winners N\n"
      "  --checkpoint-every N (default 1)  --throttle-ms N (test hook)\n"
      "\n"
      "run flags: --workers N (default 2), --heartbeat-timeout-s X,\n"
      "           --max-restarts N (default 3, per --restart-window-s\n"
      "           sliding window, default 300), --min-free-mb N (default\n"
      "           16; 0 disables the disk preflight/drain)\n"
      "worker flags: --skip-cells a,b  (quarantined cells to drop)\n"
      "triage flags: --confirm N (default 3), --tolerance X (default 0.02),\n"
      "              --minimize-evals N (default 200; 0 skips minimization);\n"
      "              `run --triage` triages automatically after completion\n"
      "\n"
      "CCFUZZ_FAULT_PLAN (env): deterministic fault injection for chaos\n"
      "runs — see src/faultinject/fault_plan.h for the grammar.\n");
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::string join_csv(const std::vector<std::string>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += v[i];
  }
  return out;
}

std::shared_ptr<const fuzz::ScoreFunction> make_score(const std::string& n) {
  if (n == "low-utilization")
    return std::make_shared<fuzz::LowUtilizationScore>();
  if (n == "high-delay") return std::make_shared<fuzz::HighDelayScore>();
  if (n == "high-loss") return std::make_shared<fuzz::HighLossScore>();
  if (n == "low-goodput") return std::make_shared<fuzz::LowGoodputScore>();
  if (n == "low-send-rate") return std::make_shared<fuzz::LowSendRateScore>();
  if (n == "jain-unfairness")
    return std::make_shared<fuzz::JainFairnessScore>();
  if (n == "throughput-ratio")
    return std::make_shared<fuzz::ThroughputRatioScore>();
  return nullptr;
}

/// The campaign matrix an Options describes — identical in every process of
/// one distributed run (output/resume wiring is the caller's business).
campaign::CampaignConfig build_matrix(const Options& opt) {
  scenario::ScenarioConfig sc;
  sc.duration = TimeNs::millis(opt.duration_ms);
  sc.budget.max_events = opt.max_events;

  fuzz::GaConfig ga;
  ga.population = opt.population;
  ga.islands = opt.islands;
  ga.max_generations = opt.generations;
  ga.seed = opt.seed;

  std::vector<scenario::FuzzMode> modes;
  for (const std::string& m : opt.modes) {
    if (m == "traffic") {
      modes.push_back(scenario::FuzzMode::kTraffic);
    } else if (m == "link") {
      modes.push_back(scenario::FuzzMode::kLink);
    } else {
      throw std::invalid_argument("unknown mode: " + m +
                                  " (expected traffic or link)");
    }
  }

  std::shared_ptr<const fuzz::ScoreFunction> score = make_score(opt.score);
  if (!score) {
    throw std::invalid_argument(
        "unknown score: " + opt.score +
        " (known: low-utilization, high-delay, high-loss, low-goodput, "
        "low-send-rate, jain-unfairness, throughput-ratio)");
  }

  campaign::CampaignConfig cfg;
  cfg.ccas(opt.ccas)
      .modes(std::move(modes))
      .base_scenario(sc)
      .score(std::move(score))
      .ga(ga)
      .winners(static_cast<std::size_t>(opt.winners));
  for (const std::string& p : opt.presets) cfg.add_preset(p);
  return cfg;
}

/// The matrix flags, reserialized — what the supervisor appends to every
/// worker's argv so each worker expands the identical campaign.
std::vector<std::string> matrix_flags(const Options& opt) {
  std::vector<std::string> f = {
      "--ccas",          join_csv(opt.ccas),
      "--modes",         join_csv(opt.modes),
      "--score",         opt.score,
      "--generations",   std::to_string(opt.generations),
      "--population",    std::to_string(opt.population),
      "--islands",       std::to_string(opt.islands),
      "--seed",          std::to_string(opt.seed),
      "--duration-ms",   std::to_string(opt.duration_ms),
      "--max-events",    std::to_string(opt.max_events),
      "--winners",       std::to_string(opt.winners),
      "--checkpoint-every", std::to_string(opt.checkpoint_every),
      "--throttle-ms",   std::to_string(opt.throttle_ms),
  };
  if (!opt.presets.empty()) {
    f.push_back("--presets");
    f.push_back(join_csv(opt.presets));
  }
  return f;
}

/// The running binary's path, for exec'ing workers: /proc/self/exe when the
/// kernel provides it, else however we were invoked.
std::string self_binary(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

bool parse_args(int argc, char** argv, Options& opt) {
  if (argc < 2) return false;
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      usage(stdout);
      std::exit(0);
    }
    if (flag == "--triage") {  // the one value-less flag
      opt.triage_after = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "ccfuzz: %s needs a value\n", flag.c_str());
      return false;
    }
    const std::string val = argv[++i];
    if (flag == "--ccas") {
      opt.ccas = split_csv(val);
    } else if (flag == "--modes") {
      opt.modes = split_csv(val);
    } else if (flag == "--presets") {
      opt.presets = split_csv(val);
    } else if (flag == "--score") {
      opt.score = val;
    } else if (flag == "--generations") {
      opt.generations = std::atoi(val.c_str());
    } else if (flag == "--population") {
      opt.population = std::atoi(val.c_str());
    } else if (flag == "--islands") {
      opt.islands = std::atoi(val.c_str());
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(val.c_str(), nullptr, 10);
    } else if (flag == "--duration-ms") {
      opt.duration_ms = std::atoll(val.c_str());
    } else if (flag == "--max-events") {
      opt.max_events = std::atoll(val.c_str());
    } else if (flag == "--winners") {
      opt.winners = std::atoi(val.c_str());
    } else if (flag == "--checkpoint-every") {
      opt.checkpoint_every = std::atoi(val.c_str());
    } else if (flag == "--throttle-ms") {
      opt.throttle_ms = std::atoi(val.c_str());
    } else if (flag == "--output") {
      opt.output = val;
    } else if (flag == "--workers") {
      opt.workers = std::atoi(val.c_str());
    } else if (flag == "--shard") {
      opt.shard = val;
    } else if (flag == "--skip-cells") {
      opt.skip_cells = split_csv(val);
    } else if (flag == "--heartbeat-timeout-s") {
      opt.heartbeat_timeout_s = std::atof(val.c_str());
    } else if (flag == "--max-restarts") {
      opt.max_restarts = std::atoi(val.c_str());
    } else if (flag == "--restart-window-s") {
      opt.restart_window_s = std::atof(val.c_str());
    } else if (flag == "--min-free-mb") {
      opt.min_free_mb = std::atoll(val.c_str());
    } else if (flag == "--confirm") {
      opt.confirm_runs = std::atoi(val.c_str());
    } else if (flag == "--tolerance") {
      opt.tolerance = std::atof(val.c_str());
    } else if (flag == "--minimize-evals") {
      opt.minimize_evals = std::atoi(val.c_str());
    } else {
      std::fprintf(stderr, "ccfuzz: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (opt.output.empty()) {
    std::fprintf(stderr, "ccfuzz: --output is required\n");
    return false;
  }
  if (opt.generations < 1 || opt.population < 2 || opt.islands < 1 ||
      opt.winners < 0 || opt.duration_ms < 1) {
    std::fprintf(stderr, "ccfuzz: bad matrix parameters\n");
    return false;
  }
  if (opt.confirm_runs < 1 || opt.tolerance < 0.0 || opt.minimize_evals < 0) {
    std::fprintf(stderr, "ccfuzz: bad triage parameters\n");
    return false;
  }
  return true;
}

int cmd_worker(const Options& opt) {
  int shard = -1;
  int num_shards = -1;
  if (std::sscanf(opt.shard.c_str(), "%d/%d", &shard, &num_shards) != 2 ||
      num_shards < 1 || shard < 0 || shard >= num_shards) {
    std::fprintf(stderr, "ccfuzz worker: --shard must be k/N, got '%s'\n",
                 opt.shard.c_str());
    return 2;
  }
  campaign::install_stop_signal_handlers();
  faultinject::set_role("worker");
  dist::WorkerOptions wopt;
  wopt.shard = shard;
  wopt.num_shards = num_shards;
  wopt.root = opt.output;
  wopt.checkpoint_every = opt.checkpoint_every;
  wopt.throttle_ms = opt.throttle_ms;
  wopt.skip_cells = opt.skip_cells;
  return dist::run_worker(build_matrix(opt), wopt);
}

int cmd_plan(const Options& opt) {
  const int shards = opt.workers > 0 ? opt.workers : 1;
  const dist::ShardPlan plan =
      dist::ShardPlan::build(build_matrix(opt).cells(), shards);
  std::filesystem::create_directories(opt.output);
  const std::string path = opt.output + "/shard_plan.json";
  if (Error e = plan.save_file(path)) {
    std::fprintf(stderr, "ccfuzz plan: %s\n", e.message.c_str());
    return 1;
  }
  for (int k = 0; k < plan.num_shards; ++k) {
    std::printf("shard %d: %zu cell(s)\n", k,
                plan.cell_count(static_cast<std::uint32_t>(k)));
  }
  std::printf("wrote %s (%zu cells over %d shards)\n", path.c_str(),
              plan.entries.size(), plan.num_shards);
  return 0;
}

int do_merge(const std::string& root, const dist::ShardPlan& plan) {
  Result<dist::MergeStats> stats = dist::merge_reports(root, plan, root);
  if (!stats) {
    std::fprintf(stderr, "ccfuzz merge: %s: %s\n",
                 to_string(stats.error().code),
                 stats.error().message.c_str());
    return 1;
  }
  std::printf(
      "merged %zu cell(s) from %zu shard(s) into %s (%zu archive(s), "
      "%zu elite cells, %u coverage bits)%s\n",
      stats->cells, stats->shards_read, root.c_str(), stats->archives_merged,
      stats->archive_cells, stats->coverage_bits,
      stats->interrupted ? " [INTERRUPTED — report is partial]" : "");
  if (stats->cells_quarantined > 0) {
    std::printf("%zu cell(s) quarantined — see %s/quarantine/cells/\n",
                stats->cells_quarantined, root.c_str());
  }
  return 0;
}

int cmd_merge(const Options& opt) {
  Result<dist::ShardPlan> plan =
      dist::ShardPlan::try_load_file(opt.output + "/shard_plan.json");
  if (!plan) {
    std::fprintf(stderr, "ccfuzz merge: cannot load shard plan: %s\n",
                 plan.error().message.c_str());
    return 1;
  }
  return do_merge(opt.output, *plan);
}

/// Triages a completed campaign's winners and quarantine into
/// `<output>/findings/` bundles. Shared by `ccfuzz triage` and `run --triage`.
int do_triage(const Options& opt) {
  triage::TriageConfig tcfg;
  tcfg.confirm_runs = opt.confirm_runs;
  tcfg.tolerance = opt.tolerance;
  tcfg.max_minimize_evals = opt.minimize_evals;
  tcfg.log = stdout;
  Result<triage::TriageStats> stats =
      triage::triage_report(build_matrix(opt).cells(), opt.output, tcfg);
  if (!stats) {
    std::fprintf(stderr, "ccfuzz triage: %s: %s\n",
                 to_string(stats.error().code),
                 stats.error().message.c_str());
    return 1;
  }
  std::printf(
      "triage: %d candidate(s): %d confirmed, %d flaky, %d unreproduced, "
      "%d simulator bug(s); %d bundle(s) in %s/findings\n",
      stats->candidates, stats->confirmed, stats->flaky, stats->unreproduced,
      stats->simulator_bugs, stats->bundles_written, opt.output.c_str());
  return stats->errors > 0 ? 1 : 0;
}

int cmd_replay(const Options& opt) {
  Result<triage::ReplayStats> stats = triage::replay_findings(
      build_matrix(opt).cells(), opt.output + "/findings", stdout);
  if (!stats) {
    std::fprintf(stderr, "ccfuzz replay: %s: %s\n",
                 to_string(stats.error().code),
                 stats.error().message.c_str());
    return 1;
  }
  if (stats->bundles == 0) {
    std::printf("replay: no finding bundles under %s/findings\n",
                opt.output.c_str());
    return 0;
  }
  std::printf("replay: %d bundle(s): %d ok, %d drifted, %d broken\n",
              stats->bundles, stats->ok, stats->drifted, stats->broken);
  return (stats->drifted > 0 || stats->broken > 0) ? 1 : 0;
}

/// Health-checks a campaign directory without touching campaign state:
/// the pre-takeoff (and mid-incident) checklist for operators of long
/// campaigns. Exit 0 healthy, 1 findings, 2 usage.
int cmd_doctor(const Options& opt, const char* argv0) {
  namespace stdfs = std::filesystem;
  int findings = 0;
  const auto warn = [&](const std::string& msg) {
    ++findings;
    std::printf("doctor: WARN  %s\n", msg.c_str());
  };
  const auto ok = [](const std::string& msg) {
    std::printf("doctor: ok    %s\n", msg.c_str());
  };

  if (!stdfs::exists(opt.output)) {
    warn("campaign directory " + opt.output + " does not exist");
    return 1;
  }

  // Write round-trip: can we land an atomic file where checkpoints go?
  {
    const std::string probe = opt.output + "/.doctor-probe";
    if (Error e = write_file_atomic(probe, "ok\n")) {
      warn("write round-trip failed (" + std::string(to_string(e.code)) +
           "): " + e.message);
    } else {
      ok("atomic write round-trip under " + opt.output);
      std::error_code ec;
      stdfs::remove(probe, ec);
    }
  }

  // Disk headroom.
  if (Result<std::uint64_t> free = free_bytes(opt.output)) {
    const std::uint64_t need =
        opt.min_free_mb > 0 ? static_cast<std::uint64_t>(opt.min_free_mb) << 20
                            : 0;
    if (*free < need) {
      warn("only " + std::to_string(*free >> 20) + " MiB free (need " +
           std::to_string(need >> 20) + " MiB) — campaign would drain");
    } else {
      ok(std::to_string(*free >> 20) + " MiB free");
    }
  } else {
    warn("cannot stat free space under " + opt.output);
  }

  // Fault plan: a malformed plan means a chaos run silently runs fault-free.
  if (const char* spec = std::getenv("CCFUZZ_FAULT_PLAN"); spec && *spec) {
    if (Result<faultinject::FaultPlan> plan = faultinject::FaultPlan::parse(spec)) {
      std::printf("doctor: note  fault injection armed: %s\n",
                  plan->to_string().c_str());
    } else {
      warn("CCFUZZ_FAULT_PLAN does not parse: " + plan.error().message);
    }
  } else {
    ok("fault injection disarmed");
  }

  // Checkpoints: the campaign root's and every shard's. A corrupt head with
  // an intact .prev degrades one generation; both corrupt resumes fresh.
  std::vector<std::string> roots = {opt.output};
  if (stdfs::exists(opt.output + "/shards")) {
    for (const auto& entry :
         stdfs::directory_iterator(opt.output + "/shards")) {
      if (entry.is_directory()) roots.push_back(entry.path().string());
    }
  }
  for (const std::string& root : roots) {
    const std::string head = root + "/checkpoint/campaign.ckpt";
    if (!stdfs::exists(head) && !stdfs::exists(head + ".prev")) continue;
    const Error head_err = stdfs::exists(head)
                               ? campaign::validate_checkpoint_file(head)
                               : Error::io("missing");
    if (!head_err) {
      ok("checkpoint " + head);
      continue;
    }
    const bool prev_ok = stdfs::exists(head + ".prev") &&
                         !campaign::validate_checkpoint_file(head + ".prev");
    if (prev_ok) {
      warn("checkpoint " + head + " is unusable (" + head_err.message +
           ") — resume will degrade to the .prev snapshot");
    } else {
      warn("checkpoint " + head + " is unusable (" + head_err.message +
           ") and no usable .prev exists — resume will start fresh");
    }
  }

  // Finding bundles: every manifest must parse, its traces must load, and
  // its bookkeeping must be self-consistent — a torn bundle would make
  // `ccfuzz replay` fail long after the campaign that wrote it is gone.
  if (stdfs::exists(opt.output + "/findings")) {
    std::vector<std::string> dirs;
    for (const auto& entry :
         stdfs::directory_iterator(opt.output + "/findings")) {
      if (entry.is_directory()) dirs.push_back(entry.path().string());
    }
    std::sort(dirs.begin(), dirs.end());
    // Scenario hashes can only be checked against the matrix doctor was
    // given; with default flags a foreign cell name is expected, not a bug.
    std::vector<campaign::CellConfig> cells;
    try {
      cells = build_matrix(opt).cells();
    } catch (const std::exception&) {
    }
    std::size_t sound = 0;
    for (const std::string& dir : dirs) {
      const std::string name = stdfs::path(dir).filename().string();
      Result<triage::BundleManifest> m = triage::load_manifest(dir);
      if (!m) {
        warn("finding " + name + ": manifest unusable (" +
             std::string(to_string(m.error().code)) + "): " +
             m.error().message);
        continue;
      }
      if (m->id != name) {
        warn("finding " + name + ": manifest id " + m->id +
             " does not match its directory");
        continue;
      }
      bool traces_ok = true;
      for (const char* file :
           {triage::kOriginalTraceFile, triage::kMinimizedTraceFile}) {
        try {
          const trace::Trace t = trace::load_trace(dir + "/" + file);
          const std::uint64_t want = std::strcmp(file, triage::kOriginalTraceFile)
                                         ? m->minimized_events
                                         : m->original_events;
          if (t.stamps.size() != want) {
            warn("finding " + name + ": " + file + " has " +
                 std::to_string(t.stamps.size()) + " event(s), manifest says " +
                 std::to_string(want));
            traces_ok = false;
          }
        } catch (const std::exception& e) {
          warn("finding " + name + ": " + file + " unusable: " + e.what());
          traces_ok = false;
        }
      }
      if (!traces_ok) continue;
      if (m->minimized_events > m->original_events) {
        warn("finding " + name + ": minimized trace larger than original");
        continue;
      }
      for (const campaign::CellConfig& cell : cells) {
        if (cell.name != m->cell) continue;
        if (trace::hash_hex(campaign::scenario_key(cell.scenario)) !=
            m->scenario_hash) {
          warn("finding " + name + ": scenario drifted from cell " +
               cell.name + " — replay with this matrix would refuse it");
          traces_ok = false;
        }
        break;
      }
      if (traces_ok) ++sound;
    }
    if (!dirs.empty() && sound == dirs.size()) {
      ok(std::to_string(sound) + " finding bundle(s) sound");
    }
  }

  // Stale worker pids left by a dead supervisor.
  const std::string binary = self_binary(argv0);
  for (const std::string& root : roots) {
    const std::string pid_path = root + "/worker.pid";
    if (!stdfs::exists(pid_path)) continue;
    const dist::PidCheck check = dist::check_pid_file(pid_path, binary);
    switch (check.status) {
      case dist::PidStatus::kLive:
        std::printf("doctor: note  %s: worker pid %d is live (campaign "
                    "appears to be running)\n",
                    pid_path.c_str(), check.pid);
        break;
      case dist::PidStatus::kMissing:
        warn(pid_path + ": pid " + std::to_string(check.pid) +
             " is gone — stale pid file (a rerun reclaims it)");
        break;
      case dist::PidStatus::kStale:
        warn(pid_path + ": pid " + std::to_string(check.pid) +
             " is not a ccfuzz worker — recycled pid (a rerun reclaims it)");
        break;
      case dist::PidStatus::kAbsent:
        break;
    }
  }

  if (findings == 0) {
    std::printf("doctor: healthy\n");
  } else {
    std::printf("doctor: %d finding(s)\n", findings);
  }
  return findings == 0 ? 0 : 1;
}

/// --workers 0: the single-process reference run. Same matrix, same crash
/// safety (checkpoint + resume at the campaign root), no sharding — the
/// distributed path's merged report must match this one byte for byte.
int run_in_process(const Options& opt) {
  campaign::install_stop_signal_handlers();
  campaign::CampaignConfig cfg = build_matrix(opt);
  cfg.output_dir(opt.output)
      .resume_dir(opt.output)
      .checkpoint_every(opt.checkpoint_every);
  campaign::Campaign campaign(cfg);
  std::filesystem::create_directories(opt.output);
  campaign::ConsoleObserver console;
  // A resumed run appends to the existing feed (repairing any torn final
  // line first) so the full campaign history stays in one file.
  campaign::JsonlObserver jsonl(opt.output + "/progress.jsonl",
                                /*sync=*/false, /*append=*/campaign.resumed());
  campaign.add_observer(&console);
  campaign.add_observer(&jsonl);
  const campaign::CampaignReport& report = campaign.run();
  if (report.interrupted) {
    std::printf("interrupted: state checkpointed, rerun to resume\n");
    return dist::kWorkerInterruptedExit;
  }
  std::printf("complete: %zu cell(s) reported to %s\n", report.cells.size(),
              opt.output.c_str());
  return opt.triage_after ? do_triage(opt) : 0;
}

int cmd_run(const Options& opt, const char* argv0) {
  if (opt.workers < 0) {
    std::fprintf(stderr, "ccfuzz run: --workers must be >= 0\n");
    return 2;
  }
  if (opt.workers == 0) return run_in_process(opt);

  const dist::ShardPlan plan =
      dist::ShardPlan::build(build_matrix(opt).cells(), opt.workers);
  campaign::install_stop_signal_handlers();
  faultinject::set_role("supervisor");
  dist::SupervisorOptions sopt;
  sopt.binary = self_binary(argv0);
  sopt.worker_flags = matrix_flags(opt);
  sopt.root = opt.output;
  sopt.max_restarts = opt.max_restarts;
  sopt.restart_window_s = opt.restart_window_s;
  sopt.heartbeat_timeout_s = opt.heartbeat_timeout_s;
  sopt.min_free_bytes =
      opt.min_free_mb > 0
          ? static_cast<std::uint64_t>(opt.min_free_mb) << 20
          : 0;
  dist::Supervisor supervisor(sopt, plan);
  const int rc = supervisor.run();
  if (rc != 0) {
    std::fprintf(stderr, "ccfuzz run: a worker failed permanently\n");
    return 1;
  }
  if (supervisor.interrupted()) {
    std::printf("interrupted: shard state checkpointed, rerun to resume\n");
    return dist::kWorkerInterruptedExit;
  }
  const int merge_rc = do_merge(opt.output, plan);
  if (merge_rc != 0) return merge_rc;
  return opt.triage_after ? do_triage(opt) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }
  // Chaos harness: a fault plan in the environment arms this process (and
  // is inherited by fork/exec'd workers, which re-arm themselves here). A
  // malformed plan must fail loudly — running fault-free while the operator
  // believes faults are armed would invalidate the whole chaos run.
  if (Error e = faultinject::arm_from_env()) {
    std::fprintf(stderr, "ccfuzz: CCFUZZ_FAULT_PLAN: %s\n",
                 e.message.c_str());
    return 2;
  }
  try {
    if (opt.command == "run") return cmd_run(opt, argv[0]);
    if (opt.command == "worker") return cmd_worker(opt);
    if (opt.command == "plan") return cmd_plan(opt);
    if (opt.command == "merge") return cmd_merge(opt);
    if (opt.command == "triage") return do_triage(opt);
    if (opt.command == "replay") return cmd_replay(opt);
    if (opt.command == "doctor") return cmd_doctor(opt, argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ccfuzz %s: %s\n", opt.command.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "ccfuzz: unknown command '%s'\n", opt.command.c_str());
  usage(stderr);
  return 2;
}
