// Filesystem fault matrix: every injectable fs fault must surface as a typed
// error while the published target file stays untouched — atomic writes may
// lose the *new* data, never the old.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "faultinject/fault_plan.h"
#include "util/fs.h"

namespace ccfuzz {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void arm_spec(const std::string& spec) {
  Result<faultinject::FaultPlan> plan = faultinject::FaultPlan::parse(spec);
  ASSERT_TRUE(plan) << plan.error().message;
  faultinject::arm(std::move(*plan));
}

class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faultinject::disarm();
    faultinject::set_role("");
    base_ = fs::temp_directory_path() /
            ("ccfuzz_faultfs_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(base_);
    fs::create_directories(base_);
    target_ = (base_ / "file.txt").string();
  }
  void TearDown() override {
    faultinject::disarm();
    fs::remove_all(base_);
  }

  /// Seeds the target with known-good content a fault must not disturb.
  void seed_target() {
    ASSERT_FALSE(write_file_atomic(target_, "old complete content\n"));
  }

  fs::path base_;
  std::string target_;
};

TEST_F(FaultFsTest, EnospcIsTypedAndLeavesTheTargetUntouched) {
  seed_target();
  arm_spec("enospc@1");
  Error e = write_file_atomic(target_, "new content\n");
  EXPECT_EQ(e.code, Error::Code::kNoSpace);
  EXPECT_EQ(slurp(target_), "old complete content\n");
}

TEST_F(FaultFsTest, ShortWriteLeavesATornTmpAndTheTargetUntouched) {
  seed_target();
  arm_spec("short_write@1");
  const std::string body = "0123456789abcdef\n";
  Error e = write_file_atomic(target_, body);
  EXPECT_EQ(e.code, Error::Code::kIo);
  EXPECT_EQ(slurp(target_), "old complete content\n");
  // The torn tmp is the crash artifact: a strict prefix, never published.
  const std::string tmp = slurp(target_ + ".tmp");
  EXPECT_EQ(tmp, body.substr(0, body.size() / 2));
}

TEST_F(FaultFsTest, FsyncFailureIsTypedAndLeavesTheTargetUntouched) {
  seed_target();
  arm_spec("fsync@1");
  Error e = write_file_atomic(target_, "new content\n");
  EXPECT_EQ(e.code, Error::Code::kIo);
  EXPECT_EQ(slurp(target_), "old complete content\n");
  // sync=false skips the fsync entirely, so the same rule cannot fire there.
  EXPECT_FALSE(write_file_atomic(target_, "unsynced\n", /*sync=*/false));
  EXPECT_EQ(slurp(target_), "unsynced\n");
}

TEST_F(FaultFsTest, RenameFailureIsTypedAndLeavesTheTargetUntouched) {
  seed_target();
  arm_spec("rename@1");
  Error e = write_file_atomic(target_, "new content\n");
  EXPECT_EQ(e.code, Error::Code::kIo);
  EXPECT_EQ(slurp(target_), "old complete content\n");
  // Once the rule's window passes, the very next write succeeds.
  EXPECT_FALSE(write_file_atomic(target_, "new content\n"));
  EXPECT_EQ(slurp(target_), "new content\n");
}

TEST_F(FaultFsTest, RotatingWritePreservesThePreviousSnapshot) {
  ASSERT_FALSE(write_file_rotating(target_, "v1\n"));
  EXPECT_EQ(slurp(target_), "v1\n");
  EXPECT_FALSE(fs::exists(target_ + ".prev"));  // first write: nothing to keep

  ASSERT_FALSE(write_file_rotating(target_, "v2\n"));
  EXPECT_EQ(slurp(target_), "v2\n");
  EXPECT_EQ(slurp(target_ + ".prev"), "v1\n");

  ASSERT_FALSE(write_file_rotating(target_, "v3\n"));
  EXPECT_EQ(slurp(target_), "v3\n");
  EXPECT_EQ(slurp(target_ + ".prev"), "v2\n");
}

TEST_F(FaultFsTest, RotatingWriteFaultKeepsBothSnapshotsIntact) {
  ASSERT_FALSE(write_file_rotating(target_, "v1\n"));
  ASSERT_FALSE(write_file_rotating(target_, "v2\n"));
  // The tmp write fails before any rename: head and .prev both survive.
  arm_spec("enospc@1");
  Error e = write_file_rotating(target_, "v3\n");
  EXPECT_EQ(e.code, Error::Code::kNoSpace);
  EXPECT_EQ(slurp(target_), "v2\n");
  EXPECT_EQ(slurp(target_ + ".prev"), "v1\n");
}

TEST_F(FaultFsTest, LowDiskFaultReportsZeroFreeBytes) {
  Result<std::uint64_t> real = free_bytes(base_.string());
  ASSERT_TRUE(real);
  EXPECT_GT(*real, 0u);
  arm_spec("low_disk@1");
  Result<std::uint64_t> faked = free_bytes(base_.string());
  ASSERT_TRUE(faked);
  EXPECT_EQ(*faked, 0u);
}

TEST_F(FaultFsTest, TruncateTornTailRepairsOnlyTornFiles) {
  // Clean file: untouched, 0 dropped.
  {
    std::ofstream(target_, std::ios::binary) << "a\nb\n";
    Result<std::uint64_t> dropped = truncate_torn_tail(target_);
    ASSERT_TRUE(dropped);
    EXPECT_EQ(*dropped, 0u);
    EXPECT_EQ(slurp(target_), "a\nb\n");
  }
  // Torn final line: truncated back to the last complete line.
  {
    std::ofstream(target_, std::ios::binary) << "a\nb\ntorn";
    Result<std::uint64_t> dropped = truncate_torn_tail(target_);
    ASSERT_TRUE(dropped);
    EXPECT_EQ(*dropped, 4u);
    EXPECT_EQ(slurp(target_), "a\nb\n");
  }
  // A file that is nothing but a torn line empties out.
  {
    std::ofstream(target_, std::ios::binary) << "no newline at all";
    Result<std::uint64_t> dropped = truncate_torn_tail(target_);
    ASSERT_TRUE(dropped);
    EXPECT_EQ(*dropped, 17u);
    EXPECT_EQ(slurp(target_), "");
  }
  // Empty and missing files are clean no-ops.
  {
    std::ofstream(target_, std::ios::binary | std::ios::trunc);
    Result<std::uint64_t> dropped = truncate_torn_tail(target_);
    ASSERT_TRUE(dropped);
    EXPECT_EQ(*dropped, 0u);
  }
  {
    Result<std::uint64_t> dropped =
        truncate_torn_tail((base_ / "never_existed").string());
    ASSERT_TRUE(dropped);
    EXPECT_EQ(*dropped, 0u);
  }
}

}  // namespace
}  // namespace ccfuzz
