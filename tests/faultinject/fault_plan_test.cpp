// FaultPlan grammar + arming semantics: parse round-trips, typed errors for
// malformed specs, trigger/count windows, role scoping, per-rule cell_crash
// counting, and latch persistence (fire once per campaign, not per process).
#include "faultinject/fault_plan.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace ccfuzz::faultinject {
namespace {

namespace fs = std::filesystem;

class FaultPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disarm();
    set_role("");
    base_ = fs::temp_directory_path() /
            ("ccfuzz_fault_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    disarm();
    set_role("");
    ::unsetenv("CCFUZZ_FAULT_PLAN");
    fs::remove_all(base_);
  }

  fs::path base_;
};

TEST_F(FaultPlanTest, ParseRoundTripsThroughToString) {
  const std::string spec =
      "latch=/tmp/l;worker:enospc@1;worker:crash_checkpoint@2;"
      "fsync@3*4;worker:cell_crash=reno.traffic.x@1*99";
  Result<FaultPlan> plan = FaultPlan::parse(spec);
  ASSERT_TRUE(plan) << plan.error().message;
  EXPECT_EQ(plan->to_string(), spec);
  // The reserialized form parses back to the same plan.
  Result<FaultPlan> again = FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(again);
  EXPECT_EQ(again->to_string(), spec);
  ASSERT_EQ(plan->rules.size(), 4u);
  EXPECT_EQ(plan->latch_dir, "/tmp/l");
  EXPECT_EQ(plan->rules[0].site, FaultSite::kNoSpace);
  EXPECT_EQ(plan->rules[0].role, "worker");
  EXPECT_EQ(plan->rules[2].trigger, 3);
  EXPECT_EQ(plan->rules[2].count, 4);
  EXPECT_EQ(plan->rules[3].arg, "reno.traffic.x");
}

TEST_F(FaultPlanTest, MalformedSpecsAreTypedParseErrors) {
  const char* bad[] = {
      "",                      // no rules at all
      "enospc",                // missing @trigger
      "bogus_site@1",          // unknown site
      "cell_crash@1",          // cell_crash without =<cell>
      "enospc@0",              // trigger < 1
      "enospc@1*0",            // count < 1
      "latch=",                // empty latch dir
  };
  for (const char* spec : bad) {
    Result<FaultPlan> plan = FaultPlan::parse(spec);
    ASSERT_FALSE(plan) << "accepted: " << spec;
    EXPECT_EQ(plan.error().code, Error::Code::kParse) << spec;
  }
}

TEST_F(FaultPlanTest, UnarmedHooksNeverFire) {
  EXPECT_EQ(active(), nullptr);
  EXPECT_FALSE(should_fire(FaultSite::kNoSpace));
  EXPECT_FALSE(should_fire(FaultSite::kCellCrash, "any"));
}

TEST_F(FaultPlanTest, TriggerAndCountDefineTheFiringWindow) {
  Result<FaultPlan> plan = FaultPlan::parse("fsync@2*2");
  ASSERT_TRUE(plan);
  arm(std::move(*plan));
  ASSERT_NE(active(), nullptr);
  EXPECT_FALSE(should_fire(FaultSite::kFsyncFail));  // hit 1
  EXPECT_TRUE(should_fire(FaultSite::kFsyncFail));   // hit 2: window start
  EXPECT_TRUE(should_fire(FaultSite::kFsyncFail));   // hit 3: window end
  EXPECT_FALSE(should_fire(FaultSite::kFsyncFail));  // hit 4: past it
  // Other sites share nothing with this rule.
  EXPECT_FALSE(should_fire(FaultSite::kRenameFail));
  disarm();
  EXPECT_EQ(active(), nullptr);
  EXPECT_FALSE(should_fire(FaultSite::kFsyncFail));
}

TEST_F(FaultPlanTest, RoleScopedRulesOnlyFireForTheMatchingRole) {
  Result<FaultPlan> plan = FaultPlan::parse("worker:rename@1*99");
  ASSERT_TRUE(plan);
  set_role("supervisor");
  arm(std::move(*plan));
  EXPECT_FALSE(should_fire(FaultSite::kRenameFail));
  set_role("worker");
  EXPECT_TRUE(should_fire(FaultSite::kRenameFail));
}

TEST_F(FaultPlanTest, CellCrashHitsCountPerRuleNotGlobally) {
  Result<FaultPlan> plan = FaultPlan::parse("cell_crash=target@2");
  ASSERT_TRUE(plan);
  arm(std::move(*plan));
  // Other cells' generations must not advance the target's hit line.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(should_fire(FaultSite::kCellCrash, "bystander"));
  }
  EXPECT_FALSE(should_fire(FaultSite::kCellCrash, "target"));  // its hit 1
  EXPECT_TRUE(should_fire(FaultSite::kCellCrash, "target"));   // its hit 2
}

TEST_F(FaultPlanTest, LatchMakesFireOncePerCampaignNotPerProcess) {
  const std::string spec = "latch=" + base_.string() + ";rename@1";
  Result<FaultPlan> plan = FaultPlan::parse(spec);
  ASSERT_TRUE(plan);
  arm(std::move(*plan));
  EXPECT_TRUE(should_fire(FaultSite::kRenameFail));  // fires, latches
  disarm();

  // A "restarted process" arms the identical plan: the latch disarms the
  // already-fired rule, so the hook stays quiet forever after.
  Result<FaultPlan> rearm = FaultPlan::parse(spec);
  ASSERT_TRUE(rearm);
  arm(std::move(*rearm));
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(should_fire(FaultSite::kRenameFail)) << "refired on hit "
                                                      << i + 1;
  }
}

TEST_F(FaultPlanTest, LatchResumesTheHitLineMidWindow) {
  // count=2 window at hits 1..2; the first process fires hit 1 then "dies".
  const std::string spec = "latch=" + base_.string() + ";fsync@1*2";
  Result<FaultPlan> plan = FaultPlan::parse(spec);
  ASSERT_TRUE(plan);
  arm(std::move(*plan));
  EXPECT_TRUE(should_fire(FaultSite::kFsyncFail));  // effective hit 1
  disarm();

  // The restart's first hit continues at effective hit 2 (still in the
  // window), its second falls past it.
  Result<FaultPlan> rearm = FaultPlan::parse(spec);
  ASSERT_TRUE(rearm);
  arm(std::move(*rearm));
  EXPECT_TRUE(should_fire(FaultSite::kFsyncFail));   // effective hit 2
  EXPECT_FALSE(should_fire(FaultSite::kFsyncFail));  // effective hit 3
}

TEST_F(FaultPlanTest, ArmFromEnvArmsValidatesAndNoOpsWhenUnset) {
  ::unsetenv("CCFUZZ_FAULT_PLAN");
  EXPECT_FALSE(arm_from_env());  // unset: clean no-op
  EXPECT_EQ(active(), nullptr);

  ::setenv("CCFUZZ_FAULT_PLAN", "not a plan", 1);
  Error e = arm_from_env();
  EXPECT_EQ(e.code, Error::Code::kParse);
  EXPECT_EQ(active(), nullptr);  // malformed must not half-arm

  ::setenv("CCFUZZ_FAULT_PLAN", "enospc@1", 1);
  EXPECT_FALSE(arm_from_env());
  ASSERT_NE(active(), nullptr);
  EXPECT_TRUE(should_fire(FaultSite::kNoSpace));
}

}  // namespace
}  // namespace ccfuzz::faultinject
