// End-to-end chaos runs driving the real ccfuzz CLI under CCFUZZ_FAULT_PLAN:
// the sites that only make sense against the live worker/supervisor pair —
// crash-at-checkpoint, poison-cell crash loops, and hangs — must all degrade
// to a completed campaign, and whenever every cell completes the merged
// report must be byte-identical to the fault-free reference run.
//
// Spawns children with fork+exec (fork without exec is unsafe once the test
// binary's thread pool exists); the fault plan rides the child's environment
// so the real binary arms it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

const char* ccfuzz_binary() { return CCFUZZ_TOOLS_DIR "/ccfuzz"; }

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

class ChaosE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fs::exists(ccfuzz_binary())) {
      GTEST_SKIP() << "ccfuzz CLI not built at " << ccfuzz_binary();
    }
    base_ = fs::temp_directory_path() /
            ("ccfuzz_chaos_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  /// fork+execs `ccfuzz run` over the shared tiny matrix with `fault_plan`
  /// in the child's environment (empty = fault-free); returns the exit code
  /// (-1 when the child died of a signal).
  int run_campaign(const std::string& out_dir, const std::string& fault_plan,
                   const std::string& heartbeat_s = "") {
    const pid_t pid = ::fork();
    if (pid == 0) {
      if (fault_plan.empty()) {
        ::unsetenv("CCFUZZ_FAULT_PLAN");
      } else {
        ::setenv("CCFUZZ_FAULT_PLAN", fault_plan.c_str(), 1);
      }
      ::freopen("/dev/null", "w", stdout);
      if (heartbeat_s.empty()) {
        ::execl(ccfuzz_binary(), "ccfuzz", "run", "--output", out_dir.c_str(),
                "--workers", "1", "--ccas", "reno,cubic,bbr", "--generations",
                "3", "--population", "12", "--islands", "2", "--seed", "7",
                "--duration-ms", "800", static_cast<char*>(nullptr));
      } else {
        ::execl(ccfuzz_binary(), "ccfuzz", "run", "--output", out_dir.c_str(),
                "--workers", "1", "--ccas", "reno,cubic,bbr", "--generations",
                "3", "--population", "12", "--islands", "2", "--seed", "7",
                "--duration-ms", "800", "--heartbeat-timeout-s",
                heartbeat_s.c_str(), static_cast<char*>(nullptr));
      }
      std::_Exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  /// The fault-free reference report for the shared matrix.
  std::string run_reference() {
    const std::string ref = (base_ / "ref").string();
    EXPECT_EQ(run_campaign(ref, ""), 0) << "reference run failed";
    return ref;
  }

  void expect_matches_reference(const std::string& dir,
                                const std::string& ref) {
    for (const char* rel : {"summary.csv", "summary.json",
                            "reno.traffic.low-utilization/history.csv",
                            "cubic.traffic.low-utilization/history.csv",
                            "bbr.traffic.low-utilization/history.csv"}) {
      ASSERT_TRUE(fs::exists(fs::path(dir) / rel)) << rel;
      EXPECT_EQ(slurp(fs::path(dir) / rel), slurp(fs::path(ref) / rel))
          << rel << " diverged from the fault-free reference";
    }
  }

  bool feed_has(const std::string& dir, const std::string& needle) {
    return slurp(fs::path(dir) / "progress.jsonl").find(needle) !=
           std::string::npos;
  }

  fs::path base_;
};

TEST_F(ChaosE2eTest, CrashAtCheckpointRestartsAndMatchesReference) {
  const std::string ref = run_reference();

  // The latch makes "crash after the 1st completed checkpoint" a
  // once-per-campaign event: the restarted worker reads the latch, stays
  // quiet, and finishes from the checkpoint the crash proved durable.
  const std::string latch = (base_ / "latch").string();
  fs::create_directories(latch);
  const std::string dir = (base_ / "chaos").string();
  EXPECT_EQ(run_campaign(
                dir, "latch=" + latch + ";worker:crash_checkpoint@1*1"),
            0);
  EXPECT_TRUE(feed_has(dir, "\"event\":\"worker_backoff\""))
      << "the injected crash never paced a restart";
  expect_matches_reference(dir, ref);
}

TEST_F(ChaosE2eTest, PoisonCellIsQuarantinedAndTheRestCompletes) {
  // No latch and count 99: the worker crashes at this cell's first
  // generation in *every* process life — a true poison cell. Two deaths
  // reach the poison threshold; the supervisor quarantines the cell,
  // restarts the worker with --skip-cells, and the campaign completes.
  const std::string dir = (base_ / "poison").string();
  EXPECT_EQ(run_campaign(
                dir,
                "worker:cell_crash=reno.traffic.low-utilization@1*99"),
            0);
  EXPECT_TRUE(feed_has(dir, "\"event\":\"cell_quarantined\""));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine" / "cells" /
                         "reno.traffic.low-utilization.cell"));

  // The merged report omits the quarantined cell and carries the rest.
  const std::string csv = slurp(fs::path(dir) / "summary.csv");
  EXPECT_EQ(csv.find("reno"), std::string::npos) << csv;
  EXPECT_NE(csv.find("cubic"), std::string::npos) << csv;
  EXPECT_NE(csv.find("bbr"), std::string::npos) << csv;
  for (const char* rel : {"cubic.traffic.low-utilization/history.csv",
                          "bbr.traffic.low-utilization/history.csv"}) {
    EXPECT_TRUE(fs::exists(fs::path(dir) / rel)) << rel;
  }
}

TEST_F(ChaosE2eTest, HungWorkerIsKilledByTheWatchdogAndRecovers) {
  const std::string ref = run_reference();

  // The hang fires once (latched); the heartbeat watchdog SIGKILLs the
  // silent worker, the restart resumes from its checkpoint, and the report
  // is unharmed.
  const std::string latch = (base_ / "latch").string();
  fs::create_directories(latch);
  const std::string dir = (base_ / "hang").string();
  EXPECT_EQ(run_campaign(dir, "latch=" + latch + ";worker:hang@2*1",
                         /*heartbeat_s=*/"2"),
            0);
  EXPECT_TRUE(feed_has(dir, "\"event\":\"worker_stall\""))
      << "the watchdog never flagged the hung worker";
  expect_matches_reference(dir, ref);
}

}  // namespace
