// Unit tests for the TCP receiver: cumulative ACKs, SACK blocks, delayed
// ACKs, and duplicate handling.
#include "tcp/receiver.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace ccfuzz::tcp {
namespace {

net::Packet data(SeqNr seq, std::int64_t tx_id = 0) {
  net::Packet p;
  p.flow = net::FlowId::kCcaData;
  p.tcp.seq = seq;
  p.tcp.tx_id = tx_id;
  return p;
}

struct ReceiverFixture {
  sim::Simulator sim;
  std::vector<net::Packet> acks;
  TcpReceiver::Config cfg;

  std::unique_ptr<TcpReceiver> make() {
    return std::make_unique<TcpReceiver>(
        sim, cfg, [this](net::Packet&& p) { acks.push_back(std::move(p)); });
  }
};

TEST(TcpReceiver, DelayedAckEverySecondSegment) {
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));
  EXPECT_EQ(f.acks.size(), 0u);  // first segment: ACK delayed
  rx->on_data_packet(data(1));
  ASSERT_EQ(f.acks.size(), 1u);  // second segment: ACK now
  EXPECT_EQ(f.acks[0].tcp.ack, 2);
  EXPECT_EQ(f.acks[0].tcp.n_sacks, 0);
}

TEST(TcpReceiver, DelackTimerFlushesSingleSegment) {
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));
  EXPECT_TRUE(f.acks.empty());
  f.sim.run_all();  // delack timer (200 ms default) fires
  ASSERT_EQ(f.acks.size(), 1u);
  EXPECT_EQ(f.acks[0].tcp.ack, 1);
  EXPECT_EQ(f.sim.now(), TimeNs::millis(200));
}

TEST(TcpReceiver, DelayedAckDisabledAcksEverySegment) {
  ReceiverFixture f;
  f.cfg.delayed_ack = false;
  auto rx = f.make();
  rx->on_data_packet(data(0));
  rx->on_data_packet(data(1));
  EXPECT_EQ(f.acks.size(), 2u);
}

TEST(TcpReceiver, OutOfOrderTriggersImmediateDupAckWithSack) {
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));
  rx->on_data_packet(data(1));  // cumulative ACK 2
  rx->on_data_packet(data(3));  // hole at 2 → immediate dup ACK + SACK
  ASSERT_EQ(f.acks.size(), 2u);
  const auto& ack = f.acks[1];
  EXPECT_EQ(ack.tcp.ack, 2);
  ASSERT_EQ(ack.tcp.n_sacks, 1);
  EXPECT_EQ(ack.tcp.sacks[0], (net::SackBlock{3, 4}));
}

TEST(TcpReceiver, SackBlocksMostRecentFirst) {
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));  // rcv_nxt = 1 (delack pending)
  rx->on_data_packet(data(2));  // block {2,3}
  rx->on_data_packet(data(4));  // block {4,5}
  rx->on_data_packet(data(6));  // block {6,7}
  const auto& ack = f.acks.back();
  ASSERT_EQ(ack.tcp.n_sacks, 3);
  EXPECT_EQ(ack.tcp.sacks[0], (net::SackBlock{6, 7}));
  EXPECT_EQ(ack.tcp.sacks[1], (net::SackBlock{4, 5}));
  EXPECT_EQ(ack.tcp.sacks[2], (net::SackBlock{2, 3}));
}

TEST(TcpReceiver, AdjacentOutOfOrderSegmentsMerge) {
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));
  rx->on_data_packet(data(2));
  rx->on_data_packet(data(3));  // merges into {2,4}
  const auto& ack = f.acks.back();
  ASSERT_GE(ack.tcp.n_sacks, 1);
  EXPECT_EQ(ack.tcp.sacks[0], (net::SackBlock{2, 4}));
}

TEST(TcpReceiver, FillingHoleAbsorbsBufferAndAcksImmediately) {
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));
  rx->on_data_packet(data(2));
  rx->on_data_packet(data(3));
  const auto before = f.acks.size();
  rx->on_data_packet(data(1));  // fills the hole → rcv_nxt jumps to 4
  ASSERT_EQ(f.acks.size(), before + 1);
  EXPECT_EQ(f.acks.back().tcp.ack, 4);
  EXPECT_EQ(f.acks.back().tcp.n_sacks, 0);
  EXPECT_EQ(rx->rcv_nxt(), 4);
  EXPECT_EQ(rx->segments_received(), 4);
}

TEST(TcpReceiver, PartialHoleFillAcksImmediatelyKeepingSack) {
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));
  rx->on_data_packet(data(4));  // far block
  const auto before = f.acks.size();
  rx->on_data_packet(data(1));  // advances rcv_nxt to 2 but hole 2-3 remains
  ASSERT_EQ(f.acks.size(), before + 1);
  EXPECT_EQ(f.acks.back().tcp.ack, 2);
  EXPECT_EQ(f.acks.back().tcp.n_sacks, 1);
}

TEST(TcpReceiver, DuplicateBelowRcvNxtAckedImmediately) {
  // A spurious retransmission arriving after the original: the receiver
  // answers with an immediate (duplicate) ACK. This dup ACK is part of the
  // paper's BBR stall chain.
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));
  rx->on_data_packet(data(1));
  const auto before = f.acks.size();
  rx->on_data_packet(data(0, /*tx_id=*/55));  // duplicate
  ASSERT_EQ(f.acks.size(), before + 1);
  EXPECT_EQ(f.acks.back().tcp.ack, 2);
  EXPECT_EQ(f.acks.back().tcp.acked_tx_id, 55);
  EXPECT_EQ(rx->duplicates_received(), 1);
}

TEST(TcpReceiver, DuplicateInOooBufferCounted) {
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));
  rx->on_data_packet(data(2));
  rx->on_data_packet(data(2));  // duplicate of a buffered segment
  EXPECT_EQ(rx->duplicates_received(), 1);
}

TEST(TcpReceiver, DelackTimerCancelledByImmediateAck) {
  ReceiverFixture f;
  auto rx = f.make();
  rx->on_data_packet(data(0));   // arms delack
  rx->on_data_packet(data(2));   // OOO → immediate ACK, cancels delack
  const auto acks_now = f.acks.size();
  f.sim.run_all();
  EXPECT_EQ(f.acks.size(), acks_now);  // no extra timer ACK
}

TEST(TcpReceiver, AckCountsAndTxIdPlumbing) {
  ReceiverFixture f;
  f.cfg.delayed_ack = false;
  auto rx = f.make();
  rx->on_data_packet(data(0, 7));
  EXPECT_EQ(rx->acks_sent(), 1);
  EXPECT_EQ(f.acks[0].tcp.acked_tx_id, 7);
  EXPECT_EQ(f.acks[0].flow, net::FlowId::kAck);
  EXPECT_EQ(f.acks[0].size_bytes, 40);
}

}  // namespace
}  // namespace ccfuzz::tcp
