// Unit tests for RFC 6298 RTT estimation / RTO computation.
#include "tcp/rtt_estimator.h"

#include <gtest/gtest.h>

namespace ccfuzz::tcp {
namespace {

TEST(RttEstimator, InitialRtoBeforeAnySample) {
  RttEstimator e;
  EXPECT_FALSE(e.has_sample());
  EXPECT_EQ(e.rto(), DurationNs::seconds(1));
}

TEST(RttEstimator, FirstSampleInitializesSrttAndVar) {
  RttEstimator e;
  e.on_measurement(DurationNs::millis(100));
  EXPECT_TRUE(e.has_sample());
  EXPECT_EQ(e.srtt(), DurationNs::millis(100));
  EXPECT_EQ(e.rttvar(), DurationNs::millis(50));
}

TEST(RttEstimator, EwmaFollowsRfc6298Weights) {
  RttEstimator e;
  e.on_measurement(DurationNs::millis(100));
  e.on_measurement(DurationNs::millis(200));
  // rttvar = 3/4*50 + 1/4*|100-200| = 62.5 ms; srtt = 7/8*100 + 1/8*200 = 112.5 ms
  EXPECT_EQ(e.rttvar(), DurationNs::nanos(62'500'000));
  EXPECT_EQ(e.srtt(), DurationNs::nanos(112'500'000));
}

TEST(RttEstimator, RtoClampedToMinRto) {
  // Paper setup: min-RTO = 1 s even though srtt is tiny.
  RttEstimator e;
  e.on_measurement(DurationNs::millis(40));
  EXPECT_EQ(e.rto(), DurationNs::seconds(1));
}

TEST(RttEstimator, LinuxStyleMinRto) {
  RttEstimator::Config cfg;
  cfg.min_rto = DurationNs::millis(200);
  RttEstimator e(cfg);
  e.on_measurement(DurationNs::millis(40));
  // srtt 40 ms + 4*rttvar 80 ms = 120 ms < 200 ms floor.
  EXPECT_EQ(e.rto(), DurationNs::millis(200));
}

TEST(RttEstimator, RtoUsesVarTerm) {
  RttEstimator::Config cfg;
  cfg.min_rto = DurationNs::millis(1);
  RttEstimator e(cfg);
  e.on_measurement(DurationNs::millis(100));
  // rto = srtt + 4*rttvar = 100 + 200 = 300 ms.
  EXPECT_EQ(e.rto(), DurationNs::millis(300));
}

TEST(RttEstimator, BackoffDoublesAndClampsAtMax) {
  RttEstimator::Config cfg;
  cfg.max_rto = DurationNs::seconds(8);
  RttEstimator e(cfg);
  e.on_measurement(DurationNs::millis(100));
  const DurationNs base = e.rto();  // 1 s (min_rto)
  EXPECT_EQ(e.rto_backed_off(0), base);
  EXPECT_EQ(e.rto_backed_off(1), base * 2);
  EXPECT_EQ(e.rto_backed_off(2), base * 4);
  EXPECT_EQ(e.rto_backed_off(3), base * 8);
  EXPECT_EQ(e.rto_backed_off(10), DurationNs::seconds(8));  // clamped
}

TEST(RttEstimator, NegativeMeasurementIgnored) {
  RttEstimator e;
  e.on_measurement(DurationNs(-5));
  EXPECT_FALSE(e.has_sample());
}

TEST(RttEstimator, TracksMinAndLastRtt) {
  RttEstimator e;
  e.on_measurement(DurationNs::millis(120));
  e.on_measurement(DurationNs::millis(80));
  e.on_measurement(DurationNs::millis(150));
  EXPECT_EQ(e.min_rtt(), DurationNs::millis(80));
  EXPECT_EQ(e.last_rtt(), DurationNs::millis(150));
}

}  // namespace
}  // namespace ccfuzz::tcp
