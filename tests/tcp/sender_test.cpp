// Unit tests for the TCP sender: windowing, SACK scoreboard, fast
// retransmit, RTO behaviour and pacing.
#include "tcp/sender.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cca/fixed_window.h"
#include "sim/simulator.h"

namespace ccfuzz::tcp {
namespace {

/// Captures every data packet the sender emits.
struct SenderFixture {
  sim::Simulator sim;
  std::vector<net::Packet> sent;
  TcpSender::Config cfg;

  SenderFixture() {
    cfg.rtt.min_rto = DurationNs::seconds(1);
    cfg.initial_cwnd = 10;
  }

  std::unique_ptr<TcpSender> make(std::int64_t cwnd,
                                  DataRate pacing = DataRate::zero()) {
    return std::make_unique<TcpSender>(
        sim, cfg, std::make_unique<cca::FixedWindow>(cwnd, pacing),
        [this](net::Packet&& p) { sent.push_back(std::move(p)); });
  }

  net::Packet ack(SeqNr cum, std::initializer_list<net::SackBlock> sacks = {}) {
    net::Packet a;
    a.flow = net::FlowId::kAck;
    a.tcp.ack = cum;
    a.tcp.n_sacks = 0;
    for (const auto& b : sacks) {
      a.tcp.sacks[static_cast<std::size_t>(a.tcp.n_sacks++)] = b;
    }
    return a;
  }
};

TEST(TcpSender, SendsWindowAtStart) {
  SenderFixture f;
  auto tx = f.make(4);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  ASSERT_EQ(f.sent.size(), 4u);
  for (SeqNr s = 0; s < 4; ++s) {
    EXPECT_EQ(f.sent[static_cast<std::size_t>(s)].tcp.seq, s);
  }
  EXPECT_EQ(tx->snd_nxt(), 4);
  EXPECT_EQ(tx->state().packets_out, 4);
}

TEST(TcpSender, StartTimeHonoured) {
  SenderFixture f;
  auto tx = f.make(2);
  tx->start(TimeNs::millis(500));
  f.sim.run_until(TimeNs::millis(499));
  EXPECT_TRUE(f.sent.empty());
  f.sim.run_until(TimeNs::millis(501));
  EXPECT_EQ(f.sent.size(), 2u);
}

TEST(TcpSender, AckAdvancesWindowAndSendsMore) {
  SenderFixture f;
  auto tx = f.make(3);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  ASSERT_EQ(f.sent.size(), 3u);
  f.sim.schedule_at(TimeNs::millis(50),
                    [&] { tx->on_ack_packet(f.ack(2)); });
  f.sim.run_until(TimeNs::millis(51));
  EXPECT_EQ(tx->snd_una(), 2);
  EXPECT_EQ(f.sent.size(), 5u);  // window slid by 2
  EXPECT_EQ(tx->delivered(), 2);
}

TEST(TcpSender, LimitedByTotalSegments) {
  SenderFixture f;
  f.cfg.total_segments = 3;
  auto tx = f.make(10);
  tx->start(TimeNs::zero());
  // Stop before the first RTO: with no ACK path the sender would otherwise
  // retransmit forever.
  f.sim.run_until(TimeNs::millis(500));
  EXPECT_EQ(f.sent.size(), 3u);
}

TEST(TcpSender, RttMeasurementFeedsEstimator) {
  SenderFixture f;
  auto tx = f.make(2);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.schedule_at(TimeNs::millis(40),
                    [&] { tx->on_ack_packet(f.ack(1)); });
  f.sim.run_until(TimeNs::millis(41));
  EXPECT_EQ(tx->rtt_estimator().last_rtt(), DurationNs::millis(40));
  EXPECT_EQ(tx->state().min_rtt, DurationNs::millis(40));
}

TEST(TcpSender, FackLossMarkingTriggersFastRetransmit) {
  SenderFixture f;
  auto tx = f.make(8);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));  // seq 0..7 outstanding
  // SACKs for 1..3 (seq 0 lost). FACK = 4 → 4 - 3 = 1 > 0 → mark seq 0 lost.
  f.sim.schedule_at(TimeNs::millis(40), [&] {
    tx->on_ack_packet(f.ack(0, {{1, 2}}));
    tx->on_ack_packet(f.ack(0, {{1, 3}}));
    tx->on_ack_packet(f.ack(0, {{1, 4}}));
  });
  f.sim.run_until(TimeNs::millis(45));
  EXPECT_EQ(tx->fast_retransmit_entries(), 1);
  EXPECT_TRUE(tx->state().in_recovery);
  EXPECT_EQ(tx->total_retransmissions(), 1);
  // The retransmission is of seq 0.
  bool found = false;
  for (const auto& p : f.sent) {
    if (p.tcp.seq == 0 && p.tcp.tx_id != f.sent[0].tcp.tx_id) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TcpSender, RecoveryExitsWhenRecoveryPointAcked) {
  SenderFixture f;
  auto tx = f.make(8);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.schedule_at(TimeNs::millis(40), [&] {
    tx->on_ack_packet(f.ack(0, {{1, 4}}));  // mark 0 lost, enter recovery
  });
  f.sim.schedule_at(TimeNs::millis(80), [&] {
    tx->on_ack_packet(f.ack(8));  // everything through snd_nxt acked
  });
  f.sim.run_until(TimeNs::millis(81));
  EXPECT_FALSE(tx->state().in_recovery);
  EXPECT_EQ(tx->snd_una(), 8);
}

TEST(TcpSender, RtoRetransmitsHeadAndBacksOff) {
  SenderFixture f;
  auto tx = f.make(4);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  ASSERT_EQ(f.sent.size(), 4u);
  // No ACKs at all: RTO at ~1 s retransmits the head first (the fixed
  // window then lets the other lost segments follow).
  f.sim.run_until(TimeNs::millis(1100));
  EXPECT_EQ(tx->rto_count(), 1);
  EXPECT_EQ(tx->rto_backoff(), 1);
  ASSERT_GE(f.sent.size(), 5u);
  EXPECT_EQ(f.sent[4].tcp.seq, 0);
  EXPECT_TRUE(tx->state().in_loss);
  // Second RTO is backed off: fires ~2 s after the first.
  f.sim.run_until(TimeNs::millis(3200));
  EXPECT_EQ(tx->rto_count(), 2);
  EXPECT_EQ(tx->rto_backoff(), 2);
}

TEST(TcpSender, RtoMarksAllUnsackedLost) {
  SenderFixture f;
  auto tx = f.make(4);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.schedule_at(TimeNs::millis(40), [&] {
    tx->on_ack_packet(f.ack(0, {{2, 3}}));  // seq 2 sacked
  });
  f.sim.run_until(TimeNs::seconds(2));
  EXPECT_GE(tx->rto_count(), 1);
  // lost_out covers 0,1,3 (not the SACKed 2).
  EXPECT_EQ(tx->state().sacked_out, 1);
  EXPECT_GE(tx->state().lost_out, 3 - 1);  // some may have been retransmitted
}

TEST(TcpSender, KarnBackoffResetOnNewAck) {
  SenderFixture f;
  auto tx = f.make(4);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.run_until(TimeNs::millis(1100));  // first RTO
  ASSERT_EQ(tx->rto_backoff(), 1);
  f.sim.schedule_at(TimeNs::millis(1200),
                    [&] { tx->on_ack_packet(f.ack(1)); });
  f.sim.run_until(TimeNs::millis(1201));
  EXPECT_EQ(tx->rto_backoff(), 0);
}

TEST(TcpSender, PacedTransmissionSpacesPackets) {
  SenderFixture f;
  auto tx = f.make(10, DataRate::mbps(12));  // 1 packet per ms
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(100));
  ASSERT_EQ(f.sent.size(), 10u);
  for (std::size_t i = 1; i < f.sent.size(); ++i) {
    const auto gap = f.sent[i].created_at - f.sent[i - 1].created_at;
    EXPECT_EQ(gap, DurationNs::millis(1)) << "packet " << i;
  }
}

TEST(TcpSender, DupAckEventFlagged) {
  SenderFixture f;
  auto tx = f.make(4);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.schedule_at(TimeNs::millis(40), [&] {
    tx->on_ack_packet(f.ack(0, {{1, 2}}));  // dup: no cum advance
  });
  f.sim.run_until(TimeNs::millis(41));
  EXPECT_EQ(tx->log().count(TcpEventType::kDupAck), 1);
  EXPECT_EQ(tx->log().count(TcpEventType::kSack), 1);
}

TEST(TcpSender, SpuriousRetransmissionDetected) {
  // Force the §4.1 pattern at the unit level: a retransmitted segment whose
  // SACK for the original copy arrives immediately after the retransmission.
  SenderFixture f;
  auto tx = f.make(8);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));  // 0..7 out
  // Establish min_rtt = 40 ms.
  f.sim.schedule_at(TimeNs::millis(40),
                    [&] { tx->on_ack_packet(f.ack(1)); });
  // RTO fires at t = 1040 ms (min-RTO 1 s from the ACK): everything is
  // marked lost and the fixed window lets the whole lost queue be
  // retransmitted immediately. SACKs for the ORIGINAL copies arrive 1 ms
  // later — far quicker than any real round trip.
  f.sim.schedule_at(TimeNs::millis(1041), [&] {
    tx->on_ack_packet(f.ack(1, {{2, 5}}));
  });
  f.sim.run_until(TimeNs::millis(1100));
  ASSERT_GE(tx->rto_count(), 1);
  ASSERT_GE(tx->total_retransmissions(), 1);
  EXPECT_GE(tx->spurious_retx_count(), 1);
}

TEST(TcpSender, EventLogRecordsSendsWhenEnabled) {
  SenderFixture f;
  f.cfg.log_events = true;
  auto tx = f.make(3);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  EXPECT_EQ(tx->log().count(TcpEventType::kSend), 3);
  EXPECT_EQ(tx->log().events().size(), 3u);
}

TEST(TcpSender, EventCountersKeptEvenWhenLogDisabled) {
  SenderFixture f;
  f.cfg.log_events = false;
  auto tx = f.make(3);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  EXPECT_EQ(tx->log().count(TcpEventType::kSend), 3);
  EXPECT_TRUE(tx->log().events().empty());
}

}  // namespace
}  // namespace ccfuzz::tcp
