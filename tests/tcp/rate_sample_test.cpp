// Tests for the Linux tcp_rate.c-style delivery-rate sampler — the machinery
// behind the paper's BBR stall (§4.1). A recording CCA captures every
// RateSample the sender generates.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "tcp/sender.h"

namespace ccfuzz::tcp {
namespace {

/// Fixed-window CCA that records every (state, event, sample) triple. The
/// window can be shrunk mid-test to force ACK-clocked retransmissions.
class RecordingCca final : public CongestionControl {
 public:
  struct Obs {
    SenderState st;
    AckEvent ev;
    RateSample rs;
  };

  explicit RecordingCca(std::int64_t cwnd, std::vector<Obs>* out)
      : cwnd_(cwnd), out_(out) {}

  void on_ack(const SenderState& st, const AckEvent& ev,
              const RateSample& rs) override {
    out_->push_back({st, ev, rs});
  }
  std::int64_t cwnd_segments() const override { return cwnd_; }
  void set_cwnd(std::int64_t cwnd) { cwnd_ = cwnd; }
  const char* name() const override { return "recording"; }

 private:
  std::int64_t cwnd_;
  std::vector<Obs>* out_;
};

struct RateFixture {
  sim::Simulator sim;
  std::vector<net::Packet> sent;
  std::vector<RecordingCca::Obs> obs;
  TcpSender::Config cfg;
  RecordingCca* cca = nullptr;  // owned by the sender

  std::unique_ptr<TcpSender> make(std::int64_t cwnd) {
    cfg.rtt.min_rto = DurationNs::seconds(1);
    auto rec = std::make_unique<RecordingCca>(cwnd, &obs);
    cca = rec.get();
    return std::make_unique<TcpSender>(
        sim, cfg, std::move(rec),
        [this](net::Packet&& p) { sent.push_back(std::move(p)); });
  }

  net::Packet ack(SeqNr cum, std::initializer_list<net::SackBlock> sacks = {}) {
    net::Packet a;
    a.flow = net::FlowId::kAck;
    a.tcp.ack = cum;
    for (const auto& b : sacks) {
      a.tcp.sacks[static_cast<std::size_t>(a.tcp.n_sacks++)] = b;
    }
    return a;
  }
};

TEST(RateSampler, FirstAckYieldsSampleWithZeroPriorDelivered) {
  RateFixture f;
  auto tx = f.make(4);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.schedule_at(TimeNs::millis(40), [&] { tx->on_ack_packet(f.ack(1)); });
  f.sim.run_until(TimeNs::millis(41));
  ASSERT_EQ(f.obs.size(), 1u);
  const auto& rs = f.obs[0].rs;
  EXPECT_EQ(rs.prior_delivered, 0);
  EXPECT_EQ(rs.delivered, 1);
  EXPECT_EQ(rs.acked_sacked, 1);
  EXPECT_FALSE(rs.is_retrans);
  EXPECT_EQ(rs.rtt, DurationNs::millis(40));
}

TEST(RateSampler, DeliveryRateMatchesAckSpacing) {
  RateFixture f;
  auto tx = f.make(4);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  // ACKs 40 ms apart, one segment each. The second sample comes from the
  // skb of seq 1, which was sent at flow start (prior_delivered = 0); its
  // ack-phase interval spans both ACK arrivals.
  f.sim.schedule_at(TimeNs::millis(40), [&] { tx->on_ack_packet(f.ack(1)); });
  f.sim.schedule_at(TimeNs::millis(80), [&] { tx->on_ack_packet(f.ack(2)); });
  f.sim.run_until(TimeNs::millis(81));
  ASSERT_EQ(f.obs.size(), 2u);
  const auto& rs = f.obs[1].rs;
  EXPECT_TRUE(rs.valid_loose());
  EXPECT_EQ(rs.prior_delivered, 0);
  EXPECT_GE(rs.interval, DurationNs::millis(40));
  EXPECT_GT(rs.delivery_rate_pps, 0.0);
}

TEST(RateSampler, SampleBelowMinRttFlagged) {
  // On a clean path the sample interval can never undercut min_rtt (the
  // ack phase spans at least the sampled segment's own RTT). Only a
  // restamped retransmission can — this is the §4.1 corruption in
  // miniature:
  // Retransmissions must be ACK-clocked one at a time (a batched burst
  // shares one stale send-phase anchor), so the window shrinks to 3 after
  // the initial flight:
  //   t=0   seq 0..7 sent
  //   t=40  ACK(1): min_rtt = 40 ms, seq 8 released (sent at t=40)
  //   t=50  cwnd → 3
  //   t=80  dup ACK SACKing seq 8 (RTT 40 ms, min preserved): anchor moves
  //         to t=40; FACK marks seq 1..5 lost, window admits only the
  //         retransmission of seq 1 (restamped at t=80)
  //   t=81  ACK(2) delivers retransmitted seq 1 (interval 40 ms,
  //         borderline); anchor moves to t=80; seq 2 retransmitted at t=81
  //   t=82  ACK(3) delivers retransmitted seq 2: send phase 1 ms, ack
  //         phase 1 ms → interval 1 ms < min_rtt 40 ms → flagged.
  RateFixture f;
  auto tx = f.make(8);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.schedule_at(TimeNs::millis(40), [&] { tx->on_ack_packet(f.ack(1)); });
  f.sim.schedule_at(TimeNs::millis(50), [&] { f.cca->set_cwnd(3); });
  f.sim.schedule_at(TimeNs::millis(80), [&] {
    tx->on_ack_packet(f.ack(1, {{8, 9}}));
  });
  f.sim.schedule_at(TimeNs::millis(81), [&] { tx->on_ack_packet(f.ack(2)); });
  f.sim.schedule_at(TimeNs::millis(82), [&] { tx->on_ack_packet(f.ack(3)); });
  f.sim.run_until(TimeNs::millis(83));
  ASSERT_EQ(f.obs.size(), 4u);
  const auto& rs = f.obs[3].rs;
  EXPECT_TRUE(rs.is_retrans);
  EXPECT_TRUE(rs.below_min_rtt);
  EXPECT_FALSE(rs.valid());       // Linux-strict rejects it
  EXPECT_TRUE(rs.valid_loose());  // ns-3-loose accepts it
  EXPECT_GE(rs.delivered, 1);
  EXPECT_GT(rs.prior_delivered, 0);  // the restamped (corrupted) snapshot
}

TEST(RateSampler, RetransmissionRestampsPriorDelivered) {
  // The core §4.1 mechanism. Sequence:
  //   t=0     seq 0..7 sent (prior_delivered stamped 0 on each)
  //   t=40    cumulative ACK 1                  → delivered = 1
  //   t≈1040  RTO → all marked lost, head + others retransmitted; each
  //           retransmission restamps its prior_delivered to the delivered
  //           count at retransmit time.
  //   later   SACK for the ORIGINAL copy of a retransmitted segment arrives:
  //           the rate sample must carry the RESTAMPED (large) value, not 0.
  RateFixture f;
  auto tx = f.make(8);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.schedule_at(TimeNs::millis(40), [&] { tx->on_ack_packet(f.ack(1)); });
  f.sim.run_until(TimeNs::millis(1200));  // RTO fired, retransmissions out
  ASSERT_GE(tx->rto_count(), 1);
  ASSERT_GT(tx->total_retransmissions(), 1);

  const auto obs_before = f.obs.size();
  // Late SACK for segments 2..4 whose originals were "delivered" long ago.
  f.sim.schedule_at(TimeNs::millis(1250), [&] {
    tx->on_ack_packet(f.ack(1, {{2, 5}}));
  });
  f.sim.run_until(TimeNs::millis(1251));
  ASSERT_EQ(f.obs.size(), obs_before + 1);
  const auto& rs = f.obs.back().rs;
  // prior_delivered reflects the delivered count when the spurious
  // retransmission was sent (1), not when the original was sent (0).
  EXPECT_EQ(rs.prior_delivered, 1);
  EXPECT_TRUE(rs.is_retrans);
}

TEST(RateSampler, EachSkbSampledOnce) {
  RateFixture f;
  auto tx = f.make(4);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  // SACK 1..2, then cumulative ACK 2: the second ACK covers already-SACKed
  // seq 1, which must not produce a second sample from the same skb.
  f.sim.schedule_at(TimeNs::millis(40), [&] {
    tx->on_ack_packet(f.ack(0, {{1, 2}}));
  });
  f.sim.schedule_at(TimeNs::millis(42), [&] { tx->on_ack_packet(f.ack(2)); });
  f.sim.run_until(TimeNs::millis(43));
  ASSERT_EQ(f.obs.size(), 2u);
  // Second ACK delivers only seq 0 (seq 1 was already delivered by SACK).
  EXPECT_EQ(f.obs[1].ev.newly_acked, 2);
  EXPECT_EQ(f.obs[1].st.delivered, 2);
}

TEST(RateSampler, PriorInFlightSnapshotTaken) {
  RateFixture f;
  auto tx = f.make(6);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.schedule_at(TimeNs::millis(40), [&] { tx->on_ack_packet(f.ack(3)); });
  f.sim.run_until(TimeNs::millis(41));
  ASSERT_EQ(f.obs.size(), 1u);
  EXPECT_EQ(f.obs[0].rs.prior_in_flight, 6);
}

TEST(RateSampler, LossCountsReportedInSample) {
  RateFixture f;
  auto tx = f.make(8);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  f.sim.schedule_at(TimeNs::millis(40), [&] {
    tx->on_ack_packet(f.ack(0, {{1, 5}}));  // FACK ⇒ seq 0 marked lost
  });
  f.sim.run_until(TimeNs::millis(41));
  ASSERT_EQ(f.obs.size(), 1u);
  EXPECT_EQ(f.obs[0].rs.losses, 1);
  EXPECT_EQ(f.obs[0].rs.acked_sacked, 4);
}

TEST(RateSampler, DeliveredCounterMonotone) {
  RateFixture f;
  auto tx = f.make(8);
  tx->start(TimeNs::zero());
  f.sim.run_until(TimeNs::millis(1));
  std::int64_t last = 0;
  for (int i = 1; i <= 8; ++i) {
    f.sim.schedule_at(TimeNs::millis(40 + i), [&, i] {
      tx->on_ack_packet(f.ack(i));
    });
  }
  f.sim.run_until(TimeNs::millis(60));
  for (const auto& o : f.obs) {
    EXPECT_GE(o.st.delivered, last);
    last = o.st.delivered;
  }
  EXPECT_EQ(tx->delivered(), 8);
}

}  // namespace
}  // namespace ccfuzz::tcp
