// Golden equivalence tests for the determinism contract (paper §3.6).
//
// Every registered CCA runs on fixed scenarios + traces and must produce
// (a) bit-identical RunResults across repeated runs — including runs sharing
// one warm RunContext — and (b) the exact event counts and FNV fingerprints
// recorded from the event core as it existed BEFORE the zero-allocation
// rewrite (slab/generation EventQueue, PacketPool, RunContext). Any change
// to event ordering, packet bookkeeping or clock behavior trips these.
#include <cstdint>

#include <gtest/gtest.h>

#include "cca/registry.h"
#include "scenario/runner.h"
#include "trace/dist_packets.h"
#include "util/rng.h"

namespace ccfuzz::scenario {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint64_t>(v >> (i * 8)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Order-sensitive digest of everything observable from a run: outcome
/// counters plus the full per-packet bottleneck record streams.
std::uint64_t fingerprint(const RunResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, r.cca_segments_delivered());
  h = fnv1a(h, r.cca_egress_packets());
  h = fnv1a(h, r.cca_sent());
  h = fnv1a(h, r.cca_retransmissions());
  h = fnv1a(h, r.cca_drops());
  h = fnv1a(h, r.rto_count());
  h = fnv1a(h, r.fast_recovery_count());
  h = fnv1a(h, r.spurious_retx_count());
  h = fnv1a(h, r.final_rto_backoff());
  h = fnv1a(h, r.cross_sent);
  h = fnv1a(h, r.cross_drops);
  h = fnv1a(h, r.queue_stats.total_enqueued());
  h = fnv1a(h, r.queue_stats.total_dropped());
  for (const auto& e : r.recorder.ingress()) {
    h = fnv1a(h, e.time.ns());
    h = fnv1a(h, static_cast<std::int64_t>(e.flow));
  }
  for (const auto& e : r.recorder.egress()) {
    h = fnv1a(h, e.time.ns());
    h = fnv1a(h, static_cast<std::int64_t>(e.flow));
  }
  for (const auto& e : r.recorder.drops()) {
    h = fnv1a(h, e.time.ns());
    h = fnv1a(h, static_cast<std::int64_t>(e.flow));
  }
  for (const auto& d : r.recorder.delays()) {
    h = fnv1a(h, d.queue_delay.ns());
  }
  return h;
}

struct GoldenCase {
  const char* cca;
  FuzzMode mode;
  std::int64_t delivered;
  std::int64_t sent;
  std::int64_t retx;
  std::int64_t drops;
  std::int64_t rto;
  std::uint64_t hash;
};

// Recorded from the pre-refactor event core (std::function heap,
// unordered_set cancellation, per-run allocation) at 2 s durations with the
// traces built below. The rewrite must reproduce these bit for bit.
constexpr GoldenCase kGolden[] = {
    {"reno", FuzzMode::kLink, 1118, 1209, 38, 40, 0, 0x1b7938079fd48a03ULL},
    {"reno", FuzzMode::kTraffic, 363, 418, 44, 44, 1, 0xb84d8247a1235b40ULL},
    {"cubic", FuzzMode::kLink, 273, 408, 60, 72, 1, 0x3c0e9eb738290ae8ULL},
    {"cubic", FuzzMode::kTraffic, 180, 261, 55, 59, 1, 0xaadaf794bbdbb6beULL},
    {"bbr", FuzzMode::kLink, 377, 510, 62, 64, 0, 0x38af1559ec08e174ULL},
    {"bbr", FuzzMode::kTraffic, 416, 513, 71, 71, 1, 0x3bf5414bac262fc5ULL},
};

ScenarioConfig golden_config(FuzzMode mode) {
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.mode = mode;
  // The fingerprints digest the raw event streams recorded before the
  // streaming-metrics refactor; keep recording them here.
  cfg.record_mode = RecordMode::kFullEvents;
  return cfg;
}

std::vector<TimeNs> golden_trace(FuzzMode mode, TimeNs duration) {
  Rng rng(mode == FuzzMode::kLink ? 42 : 7);
  return trace::dist_packets(mode == FuzzMode::kLink ? 2000 : 1500,
                             TimeNs::zero(), duration, rng);
}

TEST(GoldenDeterminism, MatchesPreRefactorFingerprints) {
  for (const auto& g : kGolden) {
    SCOPED_TRACE(std::string(g.cca) + "/" + to_string(g.mode));
    const ScenarioConfig cfg = golden_config(g.mode);
    const auto run =
        run_scenario(cfg, cca::make_factory(g.cca),
                     golden_trace(g.mode, cfg.duration));
    EXPECT_EQ(run.cca_segments_delivered(), g.delivered);
    EXPECT_EQ(run.cca_sent(), g.sent);
    EXPECT_EQ(run.cca_retransmissions(), g.retx);
    EXPECT_EQ(run.cca_drops(), g.drops);
    EXPECT_EQ(run.rto_count(), g.rto);
    EXPECT_EQ(fingerprint(run), g.hash);
  }
}

TEST(GoldenDeterminism, BandMigrationMatchesPreTwoBandFingerprints) {
  // Forces the two-band event core through every band transition mid-run:
  // RTO expiries with exponential backoff park multi-second timers in the
  // overflow band (case A: service burst, 3 s dead air, service burst),
  // staggered flow stop times schedule far-future events at start (case B),
  // and both run long enough (6 s) for the far wheel to wrap several times.
  // Expected values recorded from the single-heap core as it existed before
  // the two-band rewrite; execution order must be bit-identical.
  {
    ScenarioConfig cfg;
    cfg.duration = TimeNs::seconds(6);
    cfg.mode = FuzzMode::kLink;
    cfg.record_mode = RecordMode::kFullEvents;
    std::vector<TimeNs> trace;
    for (int i = 0; i < 400; ++i) trace.push_back(TimeNs(2'500'000ll * i));
    for (int i = 0; i < 800; ++i) {
      trace.push_back(TimeNs::seconds(4) + DurationNs(2'500'000ll * i));
    }
    const auto run =
        run_scenario(cfg, cca::make_factory("reno"), std::move(trace));
    EXPECT_EQ(run.cca_segments_delivered(), 986);
    EXPECT_EQ(run.cca_sent(), 1070);
    EXPECT_EQ(run.cca_retransmissions(), 58);
    EXPECT_EQ(run.cca_drops(), 38);
    EXPECT_EQ(run.rto_count(), 2);
    EXPECT_EQ(fingerprint(run), 0xde52f07b9e650cd2ULL);
  }
  {
    ScenarioConfig cfg;
    cfg.duration = TimeNs::seconds(6);
    cfg.mode = FuzzMode::kTraffic;
    cfg.record_mode = RecordMode::kFullEvents;
    cfg.flows.resize(2);
    cfg.flows[0].stop = TimeNs::millis(5500);
    cfg.flows[1].cca = "cubic";
    cfg.flows[1].start = TimeNs::millis(1500);
    cfg.flows[1].stop = TimeNs::millis(4500);
    Rng rng(202);
    const auto run =
        run_scenario(cfg, cca::make_factory("reno"),
                     trace::dist_packets(3000, TimeNs::zero(), cfg.duration,
                                         rng));
    EXPECT_EQ(run.cca_segments_delivered(), 1228);
    EXPECT_EQ(run.cca_sent(), 1265);
    EXPECT_EQ(run.cca_retransmissions(), 37);
    EXPECT_EQ(run.cca_drops(), 37);
    EXPECT_EQ(run.rto_count(), 2);
    EXPECT_EQ(fingerprint(run), 0xd350048e40190f88ULL);
  }
}

TEST(GoldenDeterminism, CoverageProbeIsPurelyPassive) {
  // Arming the behavior probe must not perturb the simulation by one bit:
  // the same pre-refactor fingerprints hold with coverage on, and the runs
  // now additionally carry a signature.
  for (const auto& g : kGolden) {
    SCOPED_TRACE(std::string(g.cca) + "/" + to_string(g.mode));
    ScenarioConfig cfg = golden_config(g.mode);
    cfg.coverage = true;
    const auto run = run_scenario(cfg, cca::make_factory(g.cca),
                                  golden_trace(g.mode, cfg.duration));
    EXPECT_EQ(fingerprint(run), g.hash);
    EXPECT_TRUE(run.coverage_signature().valid);
    EXPECT_GT(run.coverage_signature().bits, 0u);
  }
}

TEST(GoldenDeterminism, ArmedBudgetGuardsAreFingerprintNeutral) {
  // Arming the run guards (event / sim-time / wall-clock budgets) with
  // limits a golden run never reaches must leave execution bit-identical:
  // the guard is a branch on the hot path, not a behavior change.
  for (const auto& g : kGolden) {
    SCOPED_TRACE(std::string(g.cca) + "/" + to_string(g.mode));
    ScenarioConfig cfg = golden_config(g.mode);
    cfg.budget.max_events = 1'000'000'000ull;
    cfg.budget.max_sim_time = DurationNs::seconds(3600);
    cfg.budget.max_wall_time = DurationNs::seconds(300);
    const auto run = run_scenario(cfg, cca::make_factory(g.cca),
                                  golden_trace(g.mode, cfg.duration));
    EXPECT_FALSE(run.truncated);
    EXPECT_EQ(fingerprint(run), g.hash);
  }
}

TEST(GoldenDeterminism, RepeatedRunsAreBitIdentical) {
  for (const auto& g : kGolden) {
    SCOPED_TRACE(std::string(g.cca) + "/" + to_string(g.mode));
    const ScenarioConfig cfg = golden_config(g.mode);
    const auto factory = cca::make_factory(g.cca);
    const auto first =
        run_scenario(cfg, factory, golden_trace(g.mode, cfg.duration));
    const auto second =
        run_scenario(cfg, factory, golden_trace(g.mode, cfg.duration));
    EXPECT_EQ(fingerprint(first), fingerprint(second));
    EXPECT_EQ(first.recorder.egress().size(), second.recorder.egress().size());
  }
}

TEST(GoldenDeterminism, WarmRunContextMatchesColdContext) {
  // One context run back-to-back (warm slab/pool/recorder) must equal a
  // freshly constructed context's result exactly.
  const ScenarioConfig cfg = golden_config(FuzzMode::kTraffic);
  const auto factory = cca::make_factory("bbr");

  RunContext warm;
  std::uint64_t warm_hash = 0;
  for (int i = 0; i < 3; ++i) {
    warm_hash =
        fingerprint(warm.run(cfg, factory,
                             golden_trace(FuzzMode::kTraffic, cfg.duration)));
  }

  RunContext cold;
  const auto cold_run =
      cold.run(cfg, factory, golden_trace(FuzzMode::kTraffic, cfg.duration));
  EXPECT_EQ(warm_hash, fingerprint(cold_run));
}

}  // namespace
}  // namespace ccfuzz::scenario
