// Integration tests for the dumbbell wiring: a CCA flow end-to-end over the
// simulated bottleneck.
#include "scenario/dumbbell.h"

#include <gtest/gtest.h>

#include "cca/fixed_window.h"
#include "cca/reno.h"

namespace ccfuzz::scenario {
namespace {

std::vector<TimeNs> uniform_trace(DurationNs spacing, TimeNs until) {
  std::vector<TimeNs> v;
  for (TimeNs t = TimeNs::zero() + spacing; t < until; t += spacing) {
    v.push_back(t);
  }
  return v;
}

TEST(Dumbbell, FixedWindowFlowDeliversEndToEnd) {
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.mode = FuzzMode::kTraffic;
  cfg.duration = TimeNs::seconds(2);
  Dumbbell db(sim, cfg, std::make_unique<cca::FixedWindow>(10), {});
  db.start();
  sim.run_until(cfg.duration);
  // 12 Mbps = 1000 pkt/s; a window of 10 over ~41 ms RTT ≈ 244 pkt/s.
  EXPECT_GT(db.receiver().segments_received(), 200);
  EXPECT_GT(db.sender().total_sent(), 200);
  EXPECT_EQ(db.queue().stats().total_dropped(), 0);
}

TEST(Dumbbell, BaseRttObserved) {
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(1);
  // Window of 2 so the second segment triggers an undelayed ACK (a window
  // of 1 would measure the 200 ms delack timeout instead).
  Dumbbell db(sim, cfg, std::make_unique<cca::FixedWindow>(2), {});
  db.start();
  sim.run_until(cfg.duration);
  // RTT ≈ access 0.1 + serialization 2×1 + bottleneck 20 + ack 20 ≈ 42.1 ms.
  const DurationNs rtt = db.sender().rtt_estimator().min_rtt();
  EXPECT_GE(rtt, DurationNs::millis(41));
  EXPECT_LE(rtt, DurationNs::millis(43));
}

TEST(Dumbbell, WindowLargerThanPipePlusQueueOverflows) {
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.net.queue_capacity = 20;
  cfg.record_mode = RecordMode::kFullEvents;
  // BDP ≈ 41 packets; wnd 100 ≫ BDP + queue → sustained drops.
  Dumbbell db(sim, cfg, std::make_unique<cca::FixedWindow>(100), {});
  db.start();
  sim.run_until(cfg.duration);
  EXPECT_GT(db.queue().stats().total_dropped(), 0);
  EXPECT_GT(db.recorder().drops().size(), 0u);
}

TEST(Dumbbell, LinkModeUsesTraceAsServiceCurve) {
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.mode = FuzzMode::kLink;
  cfg.duration = TimeNs::seconds(2);
  cfg.net.queue_capacity = 200;          // hold the whole fixed window
  cfg.receive_window_segments = 1000;    // flow control out of the way
  // Service curve: one opportunity every 2 ms → effective 6 Mbps.
  auto trace = uniform_trace(DurationNs::millis(2), cfg.duration);
  Dumbbell db(sim, cfg, std::make_unique<cca::FixedWindow>(100), std::move(trace));
  db.start();
  sim.run_until(cfg.duration);
  const auto egress = db.recorder().egress_count(net::FlowId::kCcaData);
  // ~1000 opportunities in 2 s minus the first RTT's worth of idle.
  EXPECT_GT(egress, 800);
  EXPECT_LE(egress, 1000);
}

TEST(Dumbbell, LinkModeZeroRateRegionStallsService) {
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.mode = FuzzMode::kLink;
  cfg.duration = TimeNs::seconds(2);
  cfg.record_mode = RecordMode::kFullEvents;
  // Opportunities only in the first 0.5 s.
  auto trace = uniform_trace(DurationNs::millis(1), TimeNs::millis(500));
  Dumbbell db(sim, cfg, std::make_unique<cca::FixedWindow>(10), std::move(trace));
  db.start();
  sim.run_until(cfg.duration);
  for (const auto& e : db.recorder().egress()) {
    EXPECT_LT(e.time, TimeNs::millis(501));
  }
}

TEST(Dumbbell, CrossTrafficCompetesForQueue) {
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.mode = FuzzMode::kTraffic;
  cfg.duration = TimeNs::seconds(2);
  cfg.net.queue_capacity = 10;
  cfg.receive_window_segments = 10000;  // isolate queue competition
  // Cross traffic at 6 Mbps (every 2 ms) steals half the bottleneck.
  auto trace = uniform_trace(DurationNs::millis(2), cfg.duration);
  Dumbbell db(sim, cfg, std::make_unique<cca::FixedWindow>(50), std::move(trace));
  db.start();
  sim.run_until(cfg.duration);
  const auto cca_egress = db.recorder().egress_count(net::FlowId::kCcaData);
  const auto cross_egress =
      db.recorder().egress_count(net::FlowId::kCrossTraffic);
  EXPECT_GT(cross_egress, 600);   // cross traffic gets through
  EXPECT_LT(cca_egress, 1400);    // CCA cannot have the whole link
  EXPECT_GT(cca_egress, 200);
}

TEST(Dumbbell, CrossTrafficRecordedAsIngress) {
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.duration = TimeNs::millis(100);
  cfg.record_mode = RecordMode::kFullEvents;
  std::vector<TimeNs> trace{TimeNs::millis(10), TimeNs::millis(20)};
  Dumbbell db(sim, cfg, std::make_unique<cca::FixedWindow>(1), std::move(trace));
  db.start();
  sim.run_until(cfg.duration);
  int cross_ingress = 0;
  for (const auto& e : db.recorder().ingress()) {
    cross_ingress += e.flow == net::FlowId::kCrossTraffic ? 1 : 0;
  }
  EXPECT_EQ(cross_ingress, 2);
}

TEST(Dumbbell, FlowStartDelayHonoured) {
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(1);
  cfg.flow_start = TimeNs::millis(500);
  cfg.record_mode = RecordMode::kFullEvents;
  Dumbbell db(sim, cfg, std::make_unique<cca::FixedWindow>(5), {});
  db.start();
  sim.run_until(cfg.duration);
  ASSERT_FALSE(db.recorder().ingress().empty());
  EXPECT_GE(db.recorder().ingress().front().time, TimeNs::millis(500));
}

TEST(Dumbbell, RenoFillsCleanPipe) {
  // End-to-end sanity: NewReno on an uncontended 12 Mbps link achieves high
  // utilization within a couple of seconds.
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(5);
  Dumbbell db(sim, cfg, std::make_unique<cca::Reno>(), {});
  db.start();
  sim.run_until(cfg.duration);
  const double goodput_mbps =
      static_cast<double>(db.receiver().segments_received()) * 1500 * 8 /
      cfg.duration.to_seconds() * 1e-6;
  EXPECT_GT(goodput_mbps, 9.0);
  EXPECT_LE(goodput_mbps, 12.1);
}

TEST(Dumbbell, QueueDelaySamplesBounded) {
  sim::Simulator sim;
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.net.queue_capacity = 25;
  cfg.record_mode = RecordMode::kFullEvents;
  Dumbbell db(sim, cfg, std::make_unique<cca::FixedWindow>(100), {});
  db.start();
  sim.run_until(cfg.duration);
  // Max queueing delay = capacity × 1 ms service time ≈ 25 ms.
  for (const auto& d : db.recorder().delays()) {
    EXPECT_LE(d.queue_delay, DurationNs::millis(26));
  }
}

}  // namespace
}  // namespace ccfuzz::scenario
