// Tests for the one-call run harness and its RunResult metrics.
#include "scenario/runner.h"

#include <gtest/gtest.h>

#include "cca/registry.h"

namespace ccfuzz::scenario {
namespace {

ScenarioConfig base_config() {
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(3);
  return cfg;
}

TEST(Runner, RenoCleanLinkResult) {
  const auto r = run_scenario(base_config(), cca::make_factory("reno"), {});
  EXPECT_GT(r.goodput_mbps(), 9.0);
  EXPECT_GT(r.cca_segments_delivered(), 2000);
  EXPECT_EQ(r.cross_sent, 0);
  EXPECT_FALSE(r.stalled(DurationNs::millis(500)));
}

TEST(Runner, DeterministicAcrossCalls) {
  ScenarioConfig cfg = base_config();
  cfg.record_mode = RecordMode::kFullEvents;
  const auto a = run_scenario(cfg, cca::make_factory("cubic"), {});
  const auto b = run_scenario(cfg, cca::make_factory("cubic"), {});
  EXPECT_EQ(a.cca_segments_delivered(), b.cca_segments_delivered());
  EXPECT_EQ(a.cca_sent(), b.cca_sent());
  EXPECT_EQ(a.rto_count(), b.rto_count());
  EXPECT_EQ(a.recorder.egress().size(), b.recorder.egress().size());
}

TEST(Runner, WindowedThroughputSeries) {
  const auto r = run_scenario(base_config(), cca::make_factory("reno"), {});
  const auto w = r.windowed_throughput_mbps(DurationNs::millis(500));
  ASSERT_EQ(w.size(), 6u);
  // Post slow-start windows run near link rate.
  EXPECT_GT(w.back(), 9.0);
  for (double v : w) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 12.5);
  }
}

TEST(Runner, CrossTrafficCountsReported) {
  ScenarioConfig cfg = base_config();
  std::vector<TimeNs> trace;
  for (int i = 0; i < 100; ++i) trace.emplace_back(TimeNs::millis(10 + i));
  const auto r = run_scenario(cfg, cca::make_factory("reno"), trace);
  EXPECT_EQ(r.cross_sent, 100);
  EXPECT_GE(r.cross_drops, 0);
}

TEST(Runner, QueueDelaysPopulated) {
  ScenarioConfig cfg = base_config();
  cfg.record_mode = RecordMode::kFullEvents;  // raw delay samples
  const auto r = run_scenario(cfg, cca::make_factory("reno"), {});
  const auto delays = r.cca_queue_delays_s();
  EXPECT_EQ(delays.size(), static_cast<std::size_t>(r.cca_egress_packets()));
  for (double d : delays) {
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 0.06);  // 50-packet queue ≈ 50 ms max
  }
}

TEST(Runner, StalledDetectsDeadTail) {
  // Link mode with opportunities only in the first second: the flow cannot
  // make progress afterwards → stalled.
  ScenarioConfig cfg = base_config();
  cfg.mode = FuzzMode::kLink;
  std::vector<TimeNs> trace;
  for (int i = 1; i < 1000; ++i) trace.emplace_back(TimeNs::millis(i));
  const auto r = run_scenario(cfg, cca::make_factory("reno"), trace);
  EXPECT_TRUE(r.stalled(DurationNs::millis(1500)));
  EXPECT_FALSE(r.stalled(DurationNs::seconds(3)));  // early egress exists
}

TEST(Runner, GoodputAccountsForLateFlowStart) {
  ScenarioConfig cfg = base_config();
  cfg.flow_start = TimeNs::seconds(1);
  const auto r = run_scenario(cfg, cca::make_factory("reno"), {});
  // Goodput normalized over the 2 s of actual flow time.
  EXPECT_GT(r.goodput_mbps(), 8.0);
}

TEST(Runner, TotalSegmentsLimitsTransfer) {
  ScenarioConfig cfg = base_config();
  cfg.total_segments = 100;
  const auto r = run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_EQ(r.cca_segments_delivered(), 100);
  EXPECT_LE(r.cca_sent(), 120);  // a few retransmissions at most
}

TEST(Runner, BbrRunsCleanLink) {
  const auto r = run_scenario(base_config(), cca::make_factory("bbr"), {});
  EXPECT_GT(r.goodput_mbps(), 9.0) << "BBR must fill a clean 12 Mbps pipe";
  EXPECT_FALSE(r.stalled(DurationNs::millis(500)));
  // Model introspection: bandwidth estimate near 1000 pps.
  EXPECT_GT(r.final_bw_estimate_pps(), 800.0);
  EXPECT_LT(r.final_bw_estimate_pps(), 1400.0);
}

TEST(Runner, BbrKeepsQueueShorterThanCubic) {
  // BBR's design goal: high throughput with less standing queue than
  // loss-based CCAs on the same path.
  ScenarioConfig cfg = base_config();
  cfg.duration = TimeNs::seconds(5);
  cfg.record_mode = RecordMode::kFullEvents;  // raw delay samples
  const auto bbr = run_scenario(cfg, cca::make_factory("bbr"), {});
  const auto cubic = run_scenario(cfg, cca::make_factory("cubic"), {});
  const auto bbr_delays = bbr.cca_queue_delays_s();
  const auto cubic_delays = cubic.cca_queue_delays_s();
  ASSERT_FALSE(bbr_delays.empty());
  ASSERT_FALSE(cubic_delays.empty());
  double bbr_mean = 0, cubic_mean = 0;
  for (double d : bbr_delays) bbr_mean += d;
  for (double d : cubic_delays) cubic_mean += d;
  bbr_mean /= static_cast<double>(bbr_delays.size());
  cubic_mean /= static_cast<double>(cubic_delays.size());
  EXPECT_LT(bbr_mean, cubic_mean);
}

}  // namespace
}  // namespace ccfuzz::scenario
