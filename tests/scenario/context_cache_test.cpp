// The per-thread RunContext cache is LRU-bounded: many-cell campaigns
// allocate one ContextKey per evaluator, and without a cap every worker
// would pin a warm context (slab + pool + recorder buffers) per cell
// forever. These tests pin the eviction/recreation contract.
#include <gtest/gtest.h>

#include "cca/registry.h"
#include "scenario/runner.h"
#include "trace/dist_packets.h"
#include "util/rng.h"

namespace ccfuzz::scenario {
namespace {

ScenarioConfig tiny_config() {
  ScenarioConfig cfg;
  cfg.duration = TimeNs::millis(200);
  return cfg;
}

std::vector<TimeNs> tiny_trace(TimeNs duration) {
  Rng rng(11);
  return trace::dist_packets(50, TimeNs::zero(), duration, rng);
}

/// Runs one evaluation on `key`'s warm context, returning packets sent.
std::int64_t run_on(ContextKey key) {
  const ScenarioConfig cfg = tiny_config();
  return thread_run_context(key)
      .run(cfg, cca::make_factory("reno"), tiny_trace(cfg.duration))
      .cca_sent();
}

class ContextCacheTest : public ::testing::Test {
 protected:
  // The cap is sticky thread-local state; isolate it from other tests that
  // may share this gtest worker thread.
  void SetUp() override { saved_ = thread_context_capacity(); }
  void TearDown() override { set_thread_context_capacity(saved_); }
  std::size_t saved_;
};

TEST_F(ContextCacheTest, EvictsLeastRecentlyUsedPastTheCap) {
  const ContextKey a = allocate_context_key();
  const ContextKey b = allocate_context_key();
  const ContextKey c = allocate_context_key();

  set_thread_context_capacity(2);
  const std::size_t base = thread_context_count();

  run_on(a);
  run_on(b);
  EXPECT_LE(thread_context_count(), 2u);
  RunContext* ctx_b = &thread_run_context(b);

  // Touch order is now (a, b): materializing c must evict a, not b.
  run_on(c);
  EXPECT_LE(thread_context_count(), 2u);
  EXPECT_EQ(&thread_run_context(b), ctx_b) << "recently-used context evicted";

  // The evicted key is transparently re-created and still evaluates
  // correctly — eviction costs warmth, never correctness.
  const std::int64_t sent = run_on(a);
  EXPECT_GT(sent, 0);
  EXPECT_EQ(sent, run_on(a));
  EXPECT_LE(thread_context_count(), 2u);
  (void)base;
}

TEST_F(ContextCacheTest, LoweringTheCapEvictsImmediately) {
  const ContextKey keys[4] = {allocate_context_key(), allocate_context_key(),
                              allocate_context_key(), allocate_context_key()};
  set_thread_context_capacity(8);
  for (const ContextKey k : keys) run_on(k);
  EXPECT_GE(thread_context_count(), 4u);

  set_thread_context_capacity(1);
  EXPECT_EQ(thread_context_count(), 1u);
  EXPECT_EQ(thread_context_capacity(), 1u);

  // A zero request clamps to 1: the active context must always fit.
  set_thread_context_capacity(0);
  EXPECT_EQ(thread_context_capacity(), 1u);
  EXPECT_GT(run_on(keys[0]), 0);
  EXPECT_EQ(thread_context_count(), 1u);
}

TEST_F(ContextCacheTest, EvictionPreservesDeterminism) {
  // A context rebuilt after eviction replays the exact run a never-evicted
  // warm context produces (the determinism contract does not depend on
  // cache residency).
  const ContextKey key = allocate_context_key();
  set_thread_context_capacity(64);
  const std::int64_t warm = run_on(key);

  set_thread_context_capacity(1);
  const ContextKey churn = allocate_context_key();
  run_on(churn);  // evicts `key`
  EXPECT_EQ(run_on(key), warm);
}

}  // namespace
}  // namespace ccfuzz::scenario
