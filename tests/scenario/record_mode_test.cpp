// Golden equivalence for ScenarioConfig::record_mode: a metrics-only run and
// a full-events run of the same scenario must be indistinguishable to
// scoring — identical counters, identical streaming summaries, identical
// score values — and the streaming windowed bins must reproduce the legacy
// per-packet recomputation bit for bit.
#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "cca/registry.h"
#include "fuzz/score.h"
#include "scenario/runner.h"
#include "trace/dist_packets.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ccfuzz::scenario {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}
std::uint64_t fnv_double(std::uint64_t h, double v) {
  return fnv1a(h, std::bit_cast<std::uint64_t>(v));
}

/// Everything scoring can observe, digested order-sensitively: per-flow
/// counters, the streaming summaries (bins, delay digest percentiles, stall
/// stamps), and every built-in score value.
std::uint64_t scoring_fingerprint(const RunResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, r.flow_count());
  for (std::size_t i = 0; i < r.flow_count(); ++i) {
    const FlowResult& f = r.flows[i];
    h = fnv1a(h, static_cast<std::uint64_t>(f.segments_delivered));
    h = fnv1a(h, static_cast<std::uint64_t>(f.egress_packets));
    h = fnv1a(h, static_cast<std::uint64_t>(f.sent));
    h = fnv1a(h, static_cast<std::uint64_t>(f.retransmissions));
    h = fnv1a(h, static_cast<std::uint64_t>(f.drops));
    h = fnv1a(h, static_cast<std::uint64_t>(f.rto_count));
    for (const double w :
         r.windowed_throughput_mbps(r.config.metrics_window, i)) {
      h = fnv_double(h, w);
    }
    h = fnv_double(h, r.queue_delay_percentile_s(10.0, i));
    h = fnv_double(h, r.queue_delay_percentile_s(50.0, i));
    h = fnv_double(h, r.queue_delay_percentile_s(100.0, i));
    h = fnv1a(h, r.stalled(DurationNs::seconds(1), i) ? 1 : 0);
    h = fnv1a(h, static_cast<std::uint64_t>(r.metrics.flow(i).egress_packets));
    h = fnv1a(h, static_cast<std::uint64_t>(r.metrics.flow(i).last_egress.ns()));
  }
  h = fnv1a(h, static_cast<std::uint64_t>(r.cross_sent));
  h = fnv1a(h, static_cast<std::uint64_t>(r.cross_drops));
  h = fnv_double(h, r.jain_fairness());
  return h;
}

std::vector<TimeNs> adversarial_trace(FuzzMode mode, TimeNs duration) {
  Rng rng(mode == FuzzMode::kLink ? 42 : 7);
  return trace::dist_packets(mode == FuzzMode::kLink ? 2000 : 1500,
                             TimeNs::zero(), duration, rng);
}

TEST(RecordMode, MetricsOnlyAndFullEventsScoreIdentically) {
  for (const char* cca : {"reno", "cubic", "bbr"}) {
    for (const FuzzMode mode : {FuzzMode::kLink, FuzzMode::kTraffic}) {
      SCOPED_TRACE(std::string(cca) + "/" + to_string(mode));
      ScenarioConfig cfg;
      cfg.duration = TimeNs::seconds(2);
      cfg.mode = mode;
      const auto factory = cca::make_factory(cca);
      const auto trace = adversarial_trace(mode, cfg.duration);

      cfg.record_mode = RecordMode::kMetricsOnly;
      const RunResult metrics_run = run_scenario(cfg, factory, trace);
      cfg.record_mode = RecordMode::kFullEvents;
      const RunResult events_run = run_scenario(cfg, factory, trace);

      // The metrics-only run kept no per-packet events...
      EXPECT_TRUE(metrics_run.recorder.egress().empty());
      EXPECT_FALSE(metrics_run.has_events());
      EXPECT_FALSE(events_run.recorder.egress().empty());
      // ...yet everything scoring observes is bit-identical.
      EXPECT_EQ(scoring_fingerprint(metrics_run),
                scoring_fingerprint(events_run));

      const fuzz::LowUtilizationScore low_util;
      const fuzz::HighDelayScore high_delay;
      const fuzz::HighLossScore high_loss;
      const fuzz::LowGoodputScore low_goodput;
      const fuzz::LowSendRateScore low_send;
      EXPECT_EQ(low_util.performance_score(metrics_run),
                low_util.performance_score(events_run));
      EXPECT_EQ(high_delay.performance_score(metrics_run),
                high_delay.performance_score(events_run));
      EXPECT_EQ(high_loss.performance_score(metrics_run),
                high_loss.performance_score(events_run));
      EXPECT_EQ(low_goodput.performance_score(metrics_run),
                low_goodput.performance_score(events_run));
      EXPECT_EQ(low_send.performance_score(metrics_run),
                low_send.performance_score(events_run));
    }
  }
}

TEST(RecordMode, StreamingBinsMatchLegacyEventRecomputation) {
  // The equivalence contract of analysis::StreamingMetrics: its bins must
  // reproduce the old post-hoc computation — per-packet double binning over
  // recorded egress times — bit for bit.
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(3);
  cfg.mode = FuzzMode::kTraffic;
  cfg.record_mode = RecordMode::kFullEvents;
  const auto run = run_scenario(cfg, cca::make_factory("reno"),
                                adversarial_trace(FuzzMode::kTraffic,
                                                  cfg.duration));

  std::vector<double> egress_times;
  for (const auto& e : run.recorder.egress()) {
    if (e.flow == net::FlowId::kCcaData && e.flow_index == 0) {
      egress_times.push_back(e.time.to_seconds());
    }
  }
  const auto rates = windowed_rate(egress_times,
                                   run.flow(0).start.to_seconds(),
                                   cfg.duration.to_seconds(),
                                   cfg.metrics_window.to_seconds());
  const double bits = static_cast<double>(cfg.net.packet_bytes) * 8.0;
  const auto streamed = run.windowed_throughput_mbps(cfg.metrics_window);
  ASSERT_EQ(streamed.size(), rates.size());
  for (std::size_t k = 0; k < rates.size(); ++k) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(streamed[k]),
              std::bit_cast<std::uint64_t>(rates[k] * bits * 1e-6))
        << "window " << k;
  }
}

TEST(RecordMode, MetricsOnlyIsTheDefault) {
  EXPECT_EQ(ScenarioConfig{}.record_mode, RecordMode::kMetricsOnly);
  const auto run =
      run_scenario(ScenarioConfig{}, cca::make_factory("reno"), {});
  EXPECT_TRUE(run.recorder.egress().empty());
  EXPECT_TRUE(run.recorder.ingress().empty());
  EXPECT_TRUE(run.recorder.delays().empty());
  // O(1) counters and streaming summaries are still live.
  EXPECT_GT(run.recorder.egress_count(net::FlowId::kCcaData), 0);
  EXPECT_GT(run.metrics.flow(0).egress_packets, 0);
  EXPECT_GT(run.cca_egress_packets(), 0);
}

}  // namespace
}  // namespace ccfuzz::scenario
