// Multi-flow scenario tests: competing CCA flows over the shared bottleneck
// (FlowSpec topologies), per-flow results, presets, and the RunResult edge
// cases around flow_start / short runs / RunContext reuse.
#include <cstdint>
#include <numeric>

#include <gtest/gtest.h>

#include "cca/registry.h"
#include "scenario/dumbbell.h"
#include "scenario/presets.h"
#include "scenario/runner.h"
#include "sim/simulator.h"

namespace ccfuzz::scenario {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint64_t>(v >> (i * 8)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Order-sensitive digest over everything observable from a multi-flow run:
/// per-flow counters plus the full bottleneck record streams (with real
/// flow ids).
std::uint64_t fingerprint(const RunResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  h = fnv1a(h, static_cast<std::int64_t>(r.flow_count()));
  for (const FlowResult& f : r.flows) {
    h = fnv1a(h, f.segments_delivered);
    h = fnv1a(h, f.egress_packets);
    h = fnv1a(h, f.sent);
    h = fnv1a(h, f.retransmissions);
    h = fnv1a(h, f.drops);
    h = fnv1a(h, f.rto_count);
    h = fnv1a(h, f.spurious_retx_count);
    h = fnv1a(h, f.final_rto_backoff);
  }
  h = fnv1a(h, r.cross_sent);
  h = fnv1a(h, r.cross_drops);
  for (const auto& e : r.recorder.ingress()) {
    h = fnv1a(h, e.time.ns());
    h = fnv1a(h, static_cast<std::int64_t>(e.flow));
    h = fnv1a(h, static_cast<std::int64_t>(e.flow_index));
  }
  for (const auto& e : r.recorder.egress()) {
    h = fnv1a(h, e.time.ns());
    h = fnv1a(h, static_cast<std::int64_t>(e.flow_index));
  }
  for (const auto& e : r.recorder.drops()) {
    h = fnv1a(h, e.time.ns());
    h = fnv1a(h, static_cast<std::int64_t>(e.flow_index));
  }
  for (const auto& d : r.recorder.delays()) {
    h = fnv1a(h, d.queue_delay.ns());
  }
  return h;
}

ScenarioConfig two_flow_config(TimeNs duration = TimeNs::seconds(3)) {
  ScenarioConfig cfg;
  cfg.duration = duration;
  cfg.flows.resize(2);
  // Several tests here digest the raw event streams or scan ingress times.
  cfg.record_mode = RecordMode::kFullEvents;
  return cfg;
}

TEST(MultiFlow, TwoRenoFlowsShareTheBottleneck) {
  const auto run =
      run_scenario(two_flow_config(), cca::make_factory("reno"), {});
  ASSERT_EQ(run.flow_count(), 2u);
  // Both flows make real progress and the link is still well utilized.
  EXPECT_GT(run.goodput_mbps(0), 2.0);
  EXPECT_GT(run.goodput_mbps(1), 2.0);
  EXPECT_GT(run.goodput_mbps(0) + run.goodput_mbps(1), 9.0);
  // Two homogeneous flows over the same path converge near-fair.
  EXPECT_GT(run.jain_fairness(), 0.8);
}

TEST(MultiFlow, PerFlowCountersMatchKindTotals) {
  const auto run =
      run_scenario(two_flow_config(), cca::make_factory("reno"), {});
  const auto& rec = run.recorder;
  EXPECT_EQ(rec.flow_egress_count(0) + rec.flow_egress_count(1),
            rec.egress_count(net::FlowId::kCcaData));
  EXPECT_EQ(rec.flow_drop_count(0) + rec.flow_drop_count(1),
            rec.drop_count(net::FlowId::kCcaData));
  EXPECT_EQ(run.flow(0).egress_packets, rec.flow_egress_count(0));
  EXPECT_EQ(run.flow(1).egress_packets, rec.flow_egress_count(1));
  // Per-flow drops sum to the queue's per-kind total too.
  EXPECT_EQ(run.flow(0).drops + run.flow(1).drops,
            run.queue_stats.dropped[static_cast<std::size_t>(
                net::FlowId::kCcaData)]);
}

TEST(MultiFlow, LateStarterJoinsMidRun) {
  ScenarioConfig cfg = two_flow_config(TimeNs::seconds(4));
  cfg.flows[1].start = TimeNs::seconds(2);
  const auto run = run_scenario(cfg, cca::make_factory("reno"), {});
  // No flow-1 packet before its start time.
  for (const auto& e : run.recorder.ingress()) {
    if (e.flow == net::FlowId::kCcaData && e.flow_index == 1) {
      EXPECT_GE(e.time, cfg.flows[1].start);
    }
  }
  EXPECT_GT(run.flow(1).sent, 0);
  EXPECT_EQ(run.flow(1).start, TimeNs::seconds(2));
  // The late flow's goodput is rated over its own active interval.
  EXPECT_GT(run.goodput_mbps(1), 1.0);
}

TEST(MultiFlow, StopTimeHaltsAFlow) {
  ScenarioConfig cfg = two_flow_config(TimeNs::seconds(4));
  cfg.flows[0].stop = TimeNs::seconds(1);
  const auto run = run_scenario(cfg, cca::make_factory("reno"), {});
  // Nothing from flow 0 enters the gateway (noticeably) after its stop: one
  // access-delay's worth of in-flight packets may still arrive.
  const TimeNs margin = cfg.flows[0].stop + DurationNs::millis(1);
  for (const auto& e : run.recorder.ingress()) {
    if (e.flow == net::FlowId::kCcaData && e.flow_index == 0) {
      EXPECT_LT(e.time, margin);
    }
  }
  // The survivor takes over the vacated bandwidth.
  EXPECT_GT(run.goodput_mbps(1), run.goodput_mbps(0));
  EXPECT_EQ(run.flow(0).stop, TimeNs::seconds(1));
}

TEST(MultiFlow, DegenerateStopBeforeStartNeverRuns) {
  // stop <= start is an empty active interval: the flow must not transmit
  // at all (and must not be reported as an idle flow that somehow sent).
  ScenarioConfig cfg = two_flow_config();
  cfg.flows[1].start = TimeNs::seconds(2);
  cfg.flows[1].stop = TimeNs::seconds(1);
  const auto run = run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_EQ(run.flow(1).sent, 0);
  EXPECT_EQ(run.flow(1).segments_delivered, 0);
  EXPECT_EQ(run.flow(1).active(), DurationNs::zero());
  EXPECT_DOUBLE_EQ(run.goodput_mbps(1), 0.0);
  // The other flow is unaffected.
  EXPECT_GT(run.goodput_mbps(0), 8.0);
}

TEST(MultiFlow, SingleInstanceDumbbellRejectsMultiFlowConfigs) {
  // The unique_ptr convenience constructor has one CCA instance to give; a
  // two-flow scenario must throw (in every build type, not just asserts).
  sim::Simulator sim;
  ScenarioConfig cfg = two_flow_config();
  EXPECT_THROW(Dumbbell(sim, cfg, cca::make_factory("reno")(),
                        std::vector<TimeNs>{}),
               std::invalid_argument);
}

TEST(MultiFlow, RttHeterogeneityBiasesSharing) {
  // Same CCA, one flow with 4× path delays: the short-RTT flow wins (the
  // classic RTT-unfairness of loss-based control).
  ScenarioConfig cfg = two_flow_config(TimeNs::seconds(5));
  cfg.flows[1].access_delay = cfg.net.access_delay.scaled(4.0);
  cfg.flows[1].ack_path_delay = cfg.net.ack_path_delay.scaled(4.0);
  const auto run = run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_GT(run.goodput_mbps(0), run.goodput_mbps(1));
  EXPECT_LT(run.jain_fairness(), 0.999);
}

TEST(MultiFlow, NamedFlowCcaOverridesPrimary) {
  // Flow 1 runs bbr while the primary factory is reno; BBR's bandwidth
  // estimator reports a real rate, Reno's reports none.
  ScenarioConfig cfg = two_flow_config();
  cfg.flows[1].cca = "bbr";
  const auto run = run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_EQ(run.flow(1).cca, "bbr");
  EXPECT_GT(run.flow(1).final_bw_estimate_pps, 0.0);
  EXPECT_EQ(run.flow(0).final_bw_estimate_pps, 0.0);
  EXPECT_GT(run.goodput_mbps(0) + run.goodput_mbps(1), 8.0);
}

TEST(MultiFlow, CrossTrafficCarriesOwnFlowIndex) {
  ScenarioConfig cfg = two_flow_config();
  std::vector<TimeNs> trace;
  for (int i = 1; i <= 100; ++i) trace.emplace_back(TimeNs::millis(10 * i));
  const auto run = run_scenario(cfg, cca::make_factory("reno"), trace);
  EXPECT_EQ(run.cross_sent, 100);
  // The aggregate rides flow index 2 (one past the CCA flows).
  EXPECT_EQ(run.recorder.flow_ingress_count(2), 100);
  std::int64_t seen = 0;
  for (const auto& e : run.recorder.ingress()) {
    if (e.flow == net::FlowId::kCrossTraffic) {
      ++seen;
      EXPECT_EQ(e.flow_index, 2);
    }
  }
  EXPECT_EQ(seen, 100);
}

TEST(MultiFlow, FourFlowIncastIsDeterministic) {
  ScenarioConfig cfg = apply_preset("incast", ScenarioConfig{});
  cfg.duration = TimeNs::seconds(2);
  cfg.record_mode = RecordMode::kFullEvents;  // fingerprinted below
  const auto factory = cca::make_factory("cubic");
  const auto a = run_scenario(cfg, factory, {});
  const auto b = run_scenario(cfg, factory, {});
  ASSERT_EQ(a.flow_count(), 4u);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  std::int64_t total = 0;
  for (const auto& f : a.flows) total += f.segments_delivered;
  EXPECT_GT(total, 1000);  // the pack still fills most of the 2 s × 12 Mbps
}

// --- RunContext reuse across alternating flow counts ------------------------

TEST(MultiFlow, RunContextAlternatingFlowCountsBitIdentical) {
  const auto factory = cca::make_factory("reno");
  ScenarioConfig one;
  one.duration = TimeNs::seconds(2);
  one.record_mode = RecordMode::kFullEvents;  // fingerprinted below
  const ScenarioConfig two = two_flow_config(TimeNs::seconds(2));

  RunContext cold;
  const std::uint64_t cold_two = fingerprint(cold.run(two, factory, {}));
  RunContext cold1;
  const std::uint64_t cold_one = fingerprint(cold1.run(one, factory, {}));

  // 2-flow after 1-flow on one warm context must equal the cold runs bit
  // for bit, and flipping back must too.
  RunContext warm;
  EXPECT_EQ(fingerprint(warm.run(one, factory, {})), cold_one);
  EXPECT_EQ(fingerprint(warm.run(two, factory, {})), cold_two);
  EXPECT_EQ(fingerprint(warm.run(one, factory, {})), cold_one);
  EXPECT_EQ(fingerprint(warm.run(two, factory, {})), cold_two);
}

// --- RunResult edge cases ----------------------------------------------------

TEST(RunResultEdge, StalledWithLateFlowStart) {
  // Flow starts 1 s into a 2 s run and transmits throughout its active
  // interval: a tail shorter than the active interval sees egress, a tail
  // covering the whole run must still not report a stall.
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.flow_start = TimeNs::seconds(1);
  const auto run = run_scenario(cfg, cca::make_factory("reno"), {});
  ASSERT_GT(run.cca_sent(), 0);
  EXPECT_FALSE(run.stalled(DurationNs::millis(500)));
  EXPECT_FALSE(run.stalled(DurationNs::seconds(2)));

  // A flow that starts late and sends into a dead link (link mode with no
  // service opportunities) is stalled for any tail.
  ScenarioConfig dead = cfg;
  dead.mode = FuzzMode::kLink;
  const auto stuck = run_scenario(dead, cca::make_factory("reno"), {});
  ASSERT_GT(stuck.cca_sent(), 0);
  EXPECT_EQ(stuck.cca_egress_packets(), 0);
  EXPECT_TRUE(stuck.stalled(DurationNs::millis(100)));
  EXPECT_TRUE(stuck.stalled(DurationNs::seconds(2)));
}

TEST(RunResultEdge, WindowedThroughputWithWindowLongerThanRun) {
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  // A window other than metrics_window re-bins the raw egress events.
  cfg.record_mode = RecordMode::kFullEvents;
  const auto run = run_scenario(cfg, cca::make_factory("reno"), {});
  // One partial window normalized by the true span: it equals the overall
  // egress throughput.
  const auto w = run.windowed_throughput_mbps(DurationNs::seconds(10));
  ASSERT_EQ(w.size(), 1u);
  const double expected = static_cast<double>(run.cca_egress_packets()) *
                          1500.0 * 8.0 / 2.0 * 1e-6;
  EXPECT_NEAR(w.front(), expected, 1e-9);
}

TEST(RunResultEdge, EmptyResultAccessorsAreNeutral) {
  RunResult r;
  EXPECT_EQ(r.flow_count(), 0u);
  EXPECT_EQ(r.cca_sent(), 0);
  EXPECT_DOUBLE_EQ(r.goodput_mbps(), 0.0);
  EXPECT_FALSE(r.stalled(DurationNs::seconds(1)));
  EXPECT_DOUBLE_EQ(r.jain_fairness(), 1.0);
  r.config.duration = TimeNs::seconds(3);
  FlowResult& primary = r.ensure_primary();
  EXPECT_EQ(r.flow_count(), 1u);
  primary.segments_delivered = 1000;
  EXPECT_GT(r.goodput_mbps(), 0.0);
}

// --- Presets -----------------------------------------------------------------

TEST(Presets, ShapesMatchTheirNames) {
  ScenarioConfig base;
  base.duration = TimeNs::seconds(6);

  const auto incast = apply_preset("incast", base);
  EXPECT_EQ(incast.flows.size(), 4u);
  for (const auto& f : incast.flows) {
    EXPECT_TRUE(f.cca.empty());
    EXPECT_EQ(f.start, TimeNs::zero());
  }

  const auto late = apply_preset("late_starter", base);
  ASSERT_EQ(late.flows.size(), 2u);
  EXPECT_EQ(late.flows[0].start, TimeNs::zero());
  EXPECT_EQ(late.flows[1].start, TimeNs::seconds(2));  // 6 s / 3

  const auto rtt = apply_preset("rtt_unfair", base);
  ASSERT_EQ(rtt.flows.size(), 2u);
  EXPECT_EQ(rtt.flows[1].access_delay, base.net.access_delay.scaled(4.0));
  EXPECT_EQ(rtt.flows[1].ack_path_delay, base.net.ack_path_delay.scaled(4.0));

  const auto inter = apply_preset("inter_protocol", base);
  ASSERT_EQ(inter.flows.size(), 2u);
  EXPECT_TRUE(inter.flows[0].cca.empty());
  EXPECT_EQ(inter.flows[1].cca, "bbr");

  PresetOptions opt;
  opt.competitor = "cubic";
  opt.incast_flows = 8;
  EXPECT_EQ(apply_preset("incast", base, opt).flows.size(), 8u);
  EXPECT_EQ(apply_preset("late_starter", base, opt).flows[1].cca, "cubic");
  EXPECT_EQ(apply_preset("inter_protocol", base, opt).flows[1].cca, "cubic");
}

TEST(Presets, UnknownNameThrowsListingKnownOnes) {
  try {
    apply_preset("nope", ScenarioConfig{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("incast"), std::string::npos);
    EXPECT_NE(msg.find("late_starter"), std::string::npos);
  }
  EXPECT_TRUE(is_known_preset("rtt_unfair"));
  EXPECT_FALSE(is_known_preset("nope"));
  EXPECT_EQ(known_presets().size(), 4u);
}

TEST(Presets, InvalidOptionsThrow) {
  PresetOptions opt;
  opt.incast_flows = 1;
  EXPECT_THROW(apply_preset("incast", ScenarioConfig{}, opt),
               std::invalid_argument);
  PresetOptions frac;
  frac.late_start_fraction = 1.5;
  EXPECT_THROW(apply_preset("late_starter", ScenarioConfig{}, frac),
               std::invalid_argument);
}

}  // namespace
}  // namespace ccfuzz::scenario
