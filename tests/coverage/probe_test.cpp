// Behavior-probe contract tests: signatures are a deterministic pure
// function of the run (pinned golden hashes), the bitmap/descriptor stay
// in sync, and distinct CCAs land in distinct behavior cells.
#include <cstdint>

#include <gtest/gtest.h>

#include "cca/registry.h"
#include "coverage/probe.h"
#include "scenario/runner.h"
#include "trace/dist_packets.h"
#include "util/rng.h"

namespace ccfuzz::coverage {
namespace {

scenario::ScenarioConfig probe_config() {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.mode = scenario::FuzzMode::kTraffic;
  cfg.coverage = true;
  return cfg;
}

std::vector<TimeNs> probe_trace(TimeNs duration) {
  Rng rng(7);
  return trace::dist_packets(1500, TimeNs::zero(), duration, rng);
}

struct GoldenSignature {
  const char* cca;
  std::uint64_t hash;
  std::uint32_t bits;
  unsigned state_transitions, rtt_spread, max_backoff, cwnd_span;
  unsigned event_mask, cca_states;
};

// Recorded from the probe as first landed; any change to bin layout,
// count classes or hook placement trips these (bump deliberately).
constexpr GoldenSignature kGolden[] = {
    {"reno", 0x20bb1948b9670fdcULL, 46, 3, 5, 1, 5, 15, 2},
    {"cubic", 0x1c7fdbea9a7ed840ULL, 42, 4, 6, 1, 5, 13, 3},
    {"bbr", 0xa1d90f916e456059ULL, 44, 3, 6, 1, 4, 15, 3},
};

TEST(BehaviorProbe, GoldenSignaturesArePinned) {
  for (const auto& g : kGolden) {
    SCOPED_TRACE(g.cca);
    const scenario::ScenarioConfig cfg = probe_config();
    const auto run = scenario::run_scenario(cfg, cca::make_factory(g.cca),
                                            probe_trace(cfg.duration));
    const CoverageSignature& sig = run.coverage_signature();
    ASSERT_TRUE(sig.valid);
    EXPECT_EQ(sig.hash(), g.hash);
    EXPECT_EQ(sig.bits, g.bits);
    const BehaviorDescriptor& d = sig.descriptor;
    EXPECT_EQ(+d.state_transitions, g.state_transitions);
    EXPECT_EQ(+d.rtt_spread, g.rtt_spread);
    EXPECT_EQ(+d.max_backoff, g.max_backoff);
    EXPECT_EQ(+d.cwnd_span, g.cwnd_span);
    EXPECT_EQ(+d.event_mask, g.event_mask);
    EXPECT_EQ(+d.cca_states, g.cca_states);
  }
}

TEST(BehaviorProbe, RepeatedRunsProduceBitIdenticalSignatures) {
  const scenario::ScenarioConfig cfg = probe_config();
  const auto factory = cca::make_factory("bbr");
  const auto a =
      scenario::run_scenario(cfg, factory, probe_trace(cfg.duration));
  const auto b =
      scenario::run_scenario(cfg, factory, probe_trace(cfg.duration));
  EXPECT_TRUE(a.coverage_signature().bitmap == b.coverage_signature().bitmap);
  EXPECT_EQ(a.coverage_signature().hash(), b.coverage_signature().hash());
}

TEST(BehaviorProbe, WarmContextMatchesColdContext) {
  // The probe lives inside the context-owned RunResult; reuse must reset it
  // fully (stale hits from the previous run would inflate the signature).
  const scenario::ScenarioConfig cfg = probe_config();
  const auto factory = cca::make_factory("reno");

  scenario::RunContext warm;
  std::uint64_t warm_hash = 0;
  for (int i = 0; i < 3; ++i) {
    warm_hash =
        warm.run(cfg, factory, probe_trace(cfg.duration))
            .coverage_signature()
            .hash();
  }
  scenario::RunContext cold;
  EXPECT_EQ(warm_hash, cold.run(cfg, factory, probe_trace(cfg.duration))
                           .coverage_signature()
                           .hash());
}

TEST(BehaviorProbe, DisarmedRunsCarryNoSignature) {
  scenario::ScenarioConfig cfg = probe_config();
  cfg.coverage = false;
  const auto run = scenario::run_scenario(cfg, cca::make_factory("reno"),
                                          probe_trace(cfg.duration));
  EXPECT_FALSE(run.coverage_signature().valid);
  EXPECT_EQ(run.coverage_signature().bits, 0u);
}

TEST(BehaviorProbe, BitsMatchesBitmapPopulationCount) {
  const scenario::ScenarioConfig cfg = probe_config();
  const auto run = scenario::run_scenario(cfg, cca::make_factory("cubic"),
                                          probe_trace(cfg.duration));
  const CoverageSignature& sig = run.coverage_signature();
  EXPECT_GT(sig.bits, 0u);
  EXPECT_EQ(sig.bits, sig.bitmap.count());
}

TEST(CoverageBitmap, MergeCountsOnlyFreshBits) {
  CoverageBitmap a, b;
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(2047);
  EXPECT_EQ(a.merge_count_new(b), 1u);  // only 2047 is new to a
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.merge_count_new(b), 0u);  // idempotent
}

}  // namespace
}  // namespace ccfuzz::coverage
