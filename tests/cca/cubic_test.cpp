// Unit tests for CUBIC, including the ns-3 slow-start bug the paper found
// (§4.2): unclamped cwnd growth past ssthresh on a large cumulative ACK.
#include "cca/cubic.h"

#include <gtest/gtest.h>

namespace ccfuzz::cca {
namespace {

tcp::SenderState state(TimeNs now = TimeNs::zero(),
                       DurationNs srtt = DurationNs::millis(40)) {
  tcp::SenderState st;
  st.now = now;
  st.srtt = srtt;
  return st;
}

tcp::AckEvent acked(std::int64_t n) {
  tcp::AckEvent ev;
  ev.newly_acked = n;
  return ev;
}

TEST(Cubic, SlowStartGrowth) {
  Cubic c;
  c.init(state());
  c.on_ack(state(), acked(10), {});
  EXPECT_EQ(c.cwnd_segments(), 20);
  EXPECT_EQ(std::string(c.name()), "cubic");
}

TEST(Cubic, MultiplicativeDecreaseUsesBeta) {
  Cubic c;
  c.init(state());
  c.on_ack(state(), acked(90), {});  // cwnd 100
  ASSERT_EQ(c.cwnd_segments(), 100);
  c.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  EXPECT_EQ(c.cwnd_segments(), 70);  // beta = 0.7
  EXPECT_EQ(c.ssthresh_segments(), 70);
}

TEST(Cubic, RtoResetsToOneSegment) {
  Cubic c;
  c.init(state());
  c.on_ack(state(), acked(40), {});
  c.on_congestion_event(state(), tcp::CongestionEvent::kRto);
  EXPECT_EQ(c.cwnd_segments(), 1);
}

// --- The paper's §4.2 finding -------------------------------------------

TEST(CubicNs3Bug, UnclampedSlowStartBlowsPastSsthresh) {
  // ns-3 behaviour: a large post-RTO cumulative ACK inflates cwnd by the
  // full segment count even though ssthresh is tiny.
  Cubic::Config cfg;
  cfg.ns3_slow_start_bug = true;
  Cubic c(cfg);
  c.init(state());
  c.on_ack(state(), acked(90), {});  // cwnd 100, still slow start
  c.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  c.on_congestion_event(state(), tcp::CongestionEvent::kRto);
  // ssthresh ≈ 0.7 * 70 = 49, cwnd = 1. The RTO-recovery cumulative ACK
  // covers ~1 RTO of data, say 120 segments.
  const std::int64_t ssthresh = c.ssthresh_segments();
  ASSERT_EQ(c.cwnd_segments(), 1);
  c.on_ack(state(), acked(120), {});
  // Buggy: cwnd = 1 + 120 = 121, way past ssthresh (the catastrophic burst).
  EXPECT_EQ(c.cwnd_segments(), 121);
  EXPECT_GT(c.cwnd_segments(), ssthresh + 50);
  EXPECT_EQ(std::string(c.name()), "cubic-ns3bug");
}

TEST(CubicFixed, SlowStartClampedAtSsthresh) {
  // Linux behaviour on the same sequence: clamp at ssthresh, remainder
  // through congestion avoidance (bounded growth).
  Cubic c;  // ns3_slow_start_bug = false
  c.init(state());
  c.on_ack(state(), acked(90), {});
  c.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  c.on_congestion_event(state(), tcp::CongestionEvent::kRto);
  const std::int64_t ssthresh = c.ssthresh_segments();
  ASSERT_EQ(c.cwnd_segments(), 1);
  c.on_ack(state(), acked(120), {});
  EXPECT_LE(c.cwnd_segments(), ssthresh + 40);  // CA growth is gentle
}

TEST(CubicFixed, BugAndFixDivergeOnExactSameInput) {
  Cubic::Config buggy_cfg;
  buggy_cfg.ns3_slow_start_bug = true;
  Cubic buggy(buggy_cfg);
  Cubic fixed;
  for (Cubic* c : {&buggy, &fixed}) {
    c->init(state());
    c->on_ack(state(), acked(90), {});
    c->on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
    c->on_congestion_event(state(), tcp::CongestionEvent::kRto);
    c->on_ack(state(), acked(200), {});
  }
  EXPECT_GT(buggy.cwnd_segments(), 2 * fixed.cwnd_segments());
}

// --- Cubic window function behaviour -------------------------------------

TEST(Cubic, ConcaveRegionApproachesWmax) {
  Cubic c;
  c.init(state());
  c.on_ack(state(), acked(90), {});  // cwnd 100
  c.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  // cwnd 70, w_max 100 (no fast convergence on first loss since cwnd<w_max
  // is false). Grow through CA for a while; cwnd should increase but stay
  // in the vicinity of w_max rather than exploding.
  TimeNs t = TimeNs::millis(100);
  for (int i = 0; i < 100; ++i) {
    t += DurationNs::millis(40);
    c.on_ack(state(t), acked(c.cwnd_segments()), {});
  }
  EXPECT_GT(c.cwnd_segments(), 70);
  EXPECT_LT(c.cwnd_segments(), 400);
}

TEST(Cubic, FastConvergenceLowersWmaxOnRepeatLoss) {
  Cubic c;
  c.init(state());
  c.on_ack(state(), acked(90), {});  // cwnd 100
  c.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  const auto after_first = c.cwnd_segments();  // 70
  // Second loss below the previous max → fast convergence shrinks w_max.
  c.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  EXPECT_LT(c.cwnd_segments(), after_first);
}

TEST(Cubic, NoGrowthDuringRecovery) {
  Cubic c;
  c.init(state());
  tcp::SenderState st = state();
  st.in_recovery = true;
  c.on_ack(st, acked(10), {});
  EXPECT_EQ(c.cwnd_segments(), 10);
}

TEST(Cubic, TargetComputedAfterEpochStart) {
  Cubic c;
  c.init(state());
  // Push past ssthresh via a loss event to enter CA.
  c.on_ack(state(), acked(90), {});
  c.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  c.on_ack(state(TimeNs::millis(40)), acked(10), {});
  EXPECT_GT(c.last_target(), 0.0);
}

}  // namespace
}  // namespace ccfuzz::cca
