// Unit tests for NewReno congestion control, driven with synthetic ACKs.
#include "cca/reno.h"

#include <gtest/gtest.h>

namespace ccfuzz::cca {
namespace {

tcp::SenderState state(TimeNs now = TimeNs::zero()) {
  tcp::SenderState st;
  st.now = now;
  return st;
}

tcp::AckEvent acked(std::int64_t n) {
  tcp::AckEvent ev;
  ev.newly_acked = n;
  return ev;
}

TEST(Reno, StartsAtInitialCwnd) {
  Reno r;
  r.init(state());
  EXPECT_EQ(r.cwnd_segments(), 10);
  EXPECT_EQ(std::string(r.name()), "reno");
}

TEST(Reno, SlowStartGrowsByAckedSegments) {
  Reno r;
  r.init(state());
  r.on_ack(state(), acked(3), {});
  EXPECT_EQ(r.cwnd_segments(), 13);
  r.on_ack(state(), acked(13), {});
  EXPECT_EQ(r.cwnd_segments(), 26);  // exponential per RTT
}

TEST(Reno, CongestionAvoidanceGrowsOnePerWindow) {
  Reno::Config cfg;
  cfg.initial_cwnd = 10;
  Reno r(cfg);
  r.init(state());
  // Force CA by entering and exiting recovery: ssthresh = 5, cwnd = 5.
  r.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  ASSERT_EQ(r.cwnd_segments(), 5);
  ASSERT_EQ(r.ssthresh_segments(), 5);
  // 5 ACKed segments = one full window → +1.
  tcp::SenderState st = state();
  r.on_ack(st, acked(5), {});
  EXPECT_EQ(r.cwnd_segments(), 6);
  // Partial windows accumulate.
  r.on_ack(st, acked(3), {});
  EXPECT_EQ(r.cwnd_segments(), 6);
  r.on_ack(st, acked(3), {});
  EXPECT_EQ(r.cwnd_segments(), 7);
}

TEST(Reno, FastRetransmitHalvesWindow) {
  Reno r;
  r.init(state());
  r.on_ack(state(), acked(10), {});  // cwnd 20
  r.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  EXPECT_EQ(r.cwnd_segments(), 10);
  EXPECT_EQ(r.ssthresh_segments(), 10);
}

TEST(Reno, RtoCollapsesToOneSegment) {
  Reno r;
  r.init(state());
  r.on_ack(state(), acked(10), {});
  r.on_congestion_event(state(), tcp::CongestionEvent::kRto);
  EXPECT_EQ(r.cwnd_segments(), 1);
  EXPECT_EQ(r.ssthresh_segments(), 10);
}

TEST(Reno, SsthreshFloorRespected) {
  Reno r;
  r.init(state());
  r.on_congestion_event(state(), tcp::CongestionEvent::kRto);  // cwnd 1
  r.on_congestion_event(state(), tcp::CongestionEvent::kRto);
  EXPECT_EQ(r.ssthresh_segments(), 2);  // floor (RFC 5681 minimum)
  EXPECT_EQ(r.cwnd_segments(), 1);
}

TEST(Reno, NoGrowthDuringRecovery) {
  Reno r;
  r.init(state());
  tcp::SenderState st = state();
  st.in_recovery = true;
  r.on_ack(st, acked(5), {});
  EXPECT_EQ(r.cwnd_segments(), 10);
  st.in_recovery = false;
  st.in_loss = true;
  r.on_ack(st, acked(5), {});
  EXPECT_EQ(r.cwnd_segments(), 10);
}

TEST(Reno, SlowStartCapsAtSsthreshThenCa) {
  Reno r;
  r.init(state());
  r.on_congestion_event(state(), tcp::CongestionEvent::kEnterRecovery);
  r.on_congestion_event(state(), tcp::CongestionEvent::kRto);
  // ssthresh now 2 (floor applied after halving 5 → 2), cwnd 1.
  ASSERT_EQ(r.cwnd_segments(), 1);
  const std::int64_t ssthresh = r.ssthresh_segments();
  // Ack enough to exceed ssthresh in one call: growth must be clamped at
  // ssthresh with the remainder feeding CA (not ballooning past it).
  r.on_ack(state(), acked(10), {});
  EXPECT_LE(r.cwnd_segments(), ssthresh + 5);  // CA adds at most a few
  EXPECT_GE(r.cwnd_segments(), ssthresh);
}

TEST(Reno, ZeroOrNegativeAckIgnored) {
  Reno r;
  r.init(state());
  r.on_ack(state(), acked(0), {});
  EXPECT_EQ(r.cwnd_segments(), 10);
}

TEST(Reno, ReInitResetsState) {
  Reno r;
  r.init(state());
  r.on_ack(state(), acked(10), {});
  r.init(state());
  EXPECT_EQ(r.cwnd_segments(), 10);
}

}  // namespace
}  // namespace ccfuzz::cca
