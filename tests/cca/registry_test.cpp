// Unit tests for the CCA name registry.
#include "cca/registry.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ccfuzz::cca {
namespace {

TEST(Registry, KnownNamesProduceWorkingFactories) {
  for (const auto& name : known_ccas()) {
    SCOPED_TRACE(name);
    EXPECT_TRUE(is_known_cca(name));
    auto factory = make_factory(name);
    auto cca = factory();
    ASSERT_NE(cca, nullptr);
    EXPECT_GE(cca->cwnd_segments(), 1);
  }
}

TEST(Registry, FactoryReturnsFreshInstances) {
  auto factory = make_factory("reno");
  auto a = factory();
  auto b = factory();
  EXPECT_NE(a.get(), b.get());
}

TEST(Registry, NamesRoundTripThroughInstances) {
  EXPECT_STREQ(make_factory("reno")()->name(), "reno");
  EXPECT_STREQ(make_factory("cubic")()->name(), "cubic");
  EXPECT_STREQ(make_factory("cubic-ns3bug")()->name(), "cubic-ns3bug");
  EXPECT_STREQ(make_factory("bbr")()->name(), "bbr");
  EXPECT_STREQ(make_factory("bbr-probertt-on-rto")()->name(),
               "bbr-probertt-on-rto");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_FALSE(is_known_cca("vegas"));
  EXPECT_THROW(make_factory("vegas"), std::invalid_argument);
  EXPECT_THROW(make_factory(""), std::invalid_argument);
}

TEST(Registry, UnknownNameErrorListsEveryKnownCca) {
  try {
    make_factory("vegas");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("vegas"), std::string::npos)
        << "message should echo the bad name";
    for (const auto& name : known_ccas()) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "message should list '" << name << "': " << msg;
    }
  }
}

}  // namespace
}  // namespace ccfuzz::cca
