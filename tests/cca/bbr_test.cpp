// Unit tests for BBR v1: model machinery (round clocking, bandwidth filter,
// mode machine) and the §4.1 stall ingredients, driven with synthetic
// samples.
#include "cca/bbr.h"

#include <gtest/gtest.h>

namespace ccfuzz::cca {
namespace {

/// Builders for synthetic sender state / rate samples.
struct Driver {
  tcp::SenderState st;
  std::int64_t delivered = 0;

  Driver() {
    st.now = TimeNs::zero();
    st.srtt = DurationNs(-1);
    st.mss_bytes = 1500;
  }

  /// Feeds one ACK: `n` segments delivered at rate `pps`, sent when
  /// `prior_delivered` had been delivered, with RTT `rtt`.
  void ack(Bbr& bbr, std::int64_t n, double pps, std::int64_t prior_delivered,
           DurationNs rtt = DurationNs::millis(40),
           DurationNs interval = DurationNs::millis(40),
           bool below_min_rtt = false, std::int64_t in_flight = 10) {
    delivered += n;
    st.delivered = delivered;
    st.packets_out = in_flight;
    if (rtt >= DurationNs::zero()) {
      st.srtt = rtt;
      if (st.min_rtt < DurationNs::zero() || rtt < st.min_rtt) st.min_rtt = rtt;
    }
    tcp::AckEvent ev;
    ev.now = st.now;
    ev.newly_acked = n;
    tcp::RateSample rs;
    rs.delivered = n;
    rs.interval = interval;
    rs.prior_delivered = prior_delivered;
    rs.delivery_rate_pps = pps;
    rs.acked_sacked = n;
    rs.rtt = rtt;
    rs.below_min_rtt = below_min_rtt;
    rs.prior_in_flight = in_flight;
    bbr.on_ack(st, ev, rs);
  }

  void advance(DurationNs d) { st.now += d; }
};

TEST(Bbr, InitStartsInStartupWithHighGain) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);
  EXPECT_NEAR(bbr.pacing_gain(), 2.885, 1e-9);
  EXPECT_EQ(bbr.cwnd_segments(), 10);
  EXPECT_GT(bbr.pacing_rate().bits_per_second(), 0);
}

TEST(Bbr, BandwidthFilterTracksMaxSample) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 1, 500.0, 0);
  EXPECT_DOUBLE_EQ(bbr.bw_estimate_pps(), 500.0);
  d.advance(DurationNs::millis(40));
  d.ack(bbr, 1, 300.0, d.delivered);  // lower sample: filter keeps 500
  EXPECT_DOUBLE_EQ(bbr.bw_estimate_pps(), 500.0);
  d.advance(DurationNs::millis(40));
  d.ack(bbr, 1, 900.0, d.delivered);
  EXPECT_DOUBLE_EQ(bbr.bw_estimate_pps(), 900.0);
}

TEST(Bbr, RoundAdvancesWhenPriorDeliveredReachesThreshold) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  EXPECT_EQ(bbr.round_count(), 0);
  d.ack(bbr, 1, 100.0, 0);  // prior_delivered 0 >= next_rtt_delivered 0
  EXPECT_EQ(bbr.round_count(), 1);
  // Samples from before the new round threshold do not advance the round.
  d.ack(bbr, 1, 100.0, 0);
  EXPECT_EQ(bbr.round_count(), 1);
  // A sample sent after the threshold does.
  d.ack(bbr, 1, 100.0, d.delivered - 1);
  EXPECT_EQ(bbr.round_count(), 2);
}

TEST(Bbr, StartupExitsToDrainAfterThreeFlatRounds) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  // Growing bandwidth: stays in STARTUP.
  double bw = 100.0;
  for (int round = 0; round < 5; ++round) {
    d.advance(DurationNs::millis(40));
    d.ack(bbr, 2, bw, d.delivered, DurationNs::millis(40),
          DurationNs::millis(40), false, 100);
    bw *= 1.5;
  }
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);
  EXPECT_FALSE(bbr.full_bw_reached());
  // Plateau: the first flat sample still exceeds the previous baseline by
  // 25% (the baseline lags one round), then three genuinely flat rounds
  // trip the detector → DRAIN.
  for (int round = 0; round < 4; ++round) {
    d.advance(DurationNs::millis(40));
    d.ack(bbr, 2, bw, d.delivered, DurationNs::millis(40),
          DurationNs::millis(40), false, 100);
  }
  EXPECT_TRUE(bbr.full_bw_reached());
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kDrain);
  EXPECT_LT(bbr.pacing_gain(), 1.0);
}

TEST(Bbr, DrainExitsToProbeBwWhenInflightAtBdp) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  double bw = 100.0;
  for (int round = 0; round < 9; ++round) {
    d.advance(DurationNs::millis(40));
    d.ack(bbr, 2, bw, d.delivered, DurationNs::millis(40),
          DurationNs::millis(40), false, 100);
    if (round < 5) bw *= 1.5;
  }
  ASSERT_EQ(bbr.mode(), Bbr::Mode::kDrain);
  // Inflight down to BDP (bw ≈ 759 pps × 40 ms ≈ 31 segments).
  d.advance(DurationNs::millis(40));
  d.ack(bbr, 2, bw, d.delivered, DurationNs::millis(40),
        DurationNs::millis(40), false, 5);
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
}

TEST(Bbr, ProbeBwCyclesGains) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  // Reach PROBE_BW.
  double bw = 100.0;
  for (int round = 0; round < 10; ++round) {
    d.advance(DurationNs::millis(40));
    d.ack(bbr, 2, bw, d.delivered, DurationNs::millis(40),
          DurationNs::millis(40), false, round < 8 ? 100 : 5);
    if (round < 5) bw *= 1.5;
  }
  ASSERT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
  // Over many full-length phases the gain must include probing (1.25) and
  // draining (0.75) values. The 1.25 phase only advances once inflight
  // reaches gain×BDP (Linux bbr_is_next_cycle_phase), so feed high inflight
  // while probing and low inflight otherwise.
  bool saw_high = false, saw_low = false;
  for (int i = 0; i < 32; ++i) {
    d.advance(DurationNs::millis(50));  // > min_rtt → full-length phase
    const std::int64_t inflight = bbr.pacing_gain() > 1.0 ? 200 : 5;
    d.ack(bbr, 2, bw, d.delivered, DurationNs::millis(40),
          DurationNs::millis(40), false, inflight);
    if (bbr.pacing_gain() > 1.2) saw_high = true;
    if (bbr.pacing_gain() < 0.8) saw_low = true;
  }
  EXPECT_TRUE(saw_high);
  EXPECT_TRUE(saw_low);
}

TEST(Bbr, PacingNeverDropsBeforeFullBw) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 2, 1000.0, 0);
  const auto high = bbr.pacing_rate();
  d.advance(DurationNs::millis(40));
  d.ack(bbr, 1, 10.0, d.delivered);  // low sample pre-full-bw
  EXPECT_GE(bbr.pacing_rate().bits_per_second(), high.bits_per_second());
}

TEST(Bbr, MinRttWindowExpiryEntersProbeRtt) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 1, 100.0, 0);
  ASSERT_NE(bbr.mode(), Bbr::Mode::kProbeRtt);
  // Advance past the 10 s min-RTT window without a lower RTT.
  d.advance(DurationNs::seconds(11));
  d.ack(bbr, 1, 100.0, d.delivered, DurationNs::millis(50));
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeRtt);
  EXPECT_EQ(bbr.probe_rtt_entries(), 1);
  EXPECT_LE(bbr.cwnd_segments(), 4);
}

TEST(Bbr, ProbeRttExitsAfterDurationAndRound) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 1, 100.0, 0);
  d.advance(DurationNs::seconds(11));
  d.ack(bbr, 1, 100.0, d.delivered, DurationNs::millis(50));
  ASSERT_EQ(bbr.mode(), Bbr::Mode::kProbeRtt);
  // Low inflight arms the dwell clock; a round passes; 200 ms elapse.
  d.ack(bbr, 1, 100.0, d.delivered, DurationNs::millis(50),
        DurationNs::millis(40), false, 2);
  d.advance(DurationNs::millis(100));
  d.ack(bbr, 1, 100.0, d.delivered, DurationNs::millis(50),
        DurationNs::millis(40), false, 2);
  d.advance(DurationNs::millis(150));
  d.ack(bbr, 1, 100.0, d.delivered, DurationNs::millis(50),
        DurationNs::millis(40), false, 2);
  EXPECT_NE(bbr.mode(), Bbr::Mode::kProbeRtt);
}

// --- §4.1 stall ingredients ------------------------------------------------

TEST(Bbr, LoosePolicyConsumesBelowMinRttSamples) {
  Bbr::Config cfg;
  cfg.sample_policy = Bbr::SamplePolicy::kNs3Loose;
  Bbr bbr(cfg);
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 1, 100.0, 0);
  const auto rounds = bbr.round_count();
  d.ack(bbr, 1, 5000.0, d.delivered, DurationNs(-1), DurationNs::millis(1),
        /*below_min_rtt=*/true);
  EXPECT_EQ(bbr.round_count(), rounds + 1);  // round advanced
}

TEST(Bbr, StrictPolicyIgnoresBelowMinRttSamples) {
  Bbr::Config cfg;
  cfg.sample_policy = Bbr::SamplePolicy::kLinuxStrict;
  Bbr bbr(cfg);
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 1, 100.0, 0);
  const auto rounds = bbr.round_count();
  const auto bw = bbr.bw_estimate_pps();
  d.ack(bbr, 1, 5000.0, d.delivered, DurationNs(-1), DurationNs::millis(1),
        /*below_min_rtt=*/true);
  EXPECT_EQ(bbr.round_count(), rounds);       // no round advance
  EXPECT_DOUBLE_EQ(bbr.bw_estimate_pps(), bw);  // no filter update
}

TEST(Bbr, FilterCollapsesAfterTenRoundsOfCorruptSamples) {
  // The stall core: corrupted round clocking churns rounds while only low
  // samples arrive; after 10 rounds the genuine estimate ages out.
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 10, 1000.0, 0);  // genuine 12 Mbps-equivalent estimate
  ASSERT_DOUBLE_EQ(bbr.bw_estimate_pps(), 1000.0);
  for (int i = 0; i < 12; ++i) {
    d.advance(DurationNs::millis(1));
    // Every sample claims prior_delivered == current delivered (restamped
    // by a spurious retransmission) → ends a round each time.
    d.ack(bbr, 1, 12.0, d.delivered, DurationNs(-1), DurationNs::millis(200),
          /*below_min_rtt=*/false);
  }
  EXPECT_DOUBLE_EQ(bbr.bw_estimate_pps(), 12.0);
}

TEST(Bbr, RtoCollapsesCwndAndResetsFullBwBaseline) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 5, 500.0, 0);
  d.st.packets_out = 3;
  d.st.lost_out = 2;  // in_flight = 1
  bbr.on_congestion_event(d.st, tcp::CongestionEvent::kRto);
  EXPECT_EQ(bbr.cwnd_segments(), 2);  // in_flight + 1
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);  // mode unchanged by RTO
}

TEST(Bbr, ProbeRttOnRtoFixEntersProbeRtt) {
  Bbr::Config cfg;
  cfg.probe_rtt_on_rto = true;
  Bbr bbr(cfg);
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 5, 500.0, 0);
  bbr.on_congestion_event(d.st, tcp::CongestionEvent::kRto);
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeRtt);
  EXPECT_EQ(std::string(bbr.name()), "bbr-probertt-on-rto");
}

TEST(Bbr, RecoveryEntryUsesPacketConservation) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 5, 500.0, 0);  // cwnd grows
  const auto cwnd_before = bbr.cwnd_segments();
  bbr.on_congestion_event(d.st, tcp::CongestionEvent::kEnterRecovery);
  // First ACK in recovery: cwnd = in_flight + acked. The driver's ack()
  // writes packets_out; sacked_out stays, so in_flight = 8 - 2 = 6.
  d.st.in_recovery = true;
  d.st.sacked_out = 2;
  d.advance(DurationNs::millis(40));
  d.ack(bbr, 1, 500.0, d.delivered, DurationNs::millis(40),
        DurationNs::millis(40), false, /*in_flight=*/8);
  EXPECT_LE(bbr.cwnd_segments(), cwnd_before);
  EXPECT_EQ(bbr.cwnd_segments(), 6 + 1);
}

TEST(Bbr, CwndRestoredAfterRecoveryExit) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  for (int i = 0; i < 5; ++i) {
    d.advance(DurationNs::millis(40));
    d.ack(bbr, 4, 500.0, d.delivered);
  }
  const auto cwnd_before = bbr.cwnd_segments();
  bbr.on_congestion_event(d.st, tcp::CongestionEvent::kEnterRecovery);
  d.st.in_recovery = true;
  d.advance(DurationNs::millis(40));
  d.ack(bbr, 1, 500.0, d.delivered, DurationNs::millis(40),
        DurationNs::millis(40), false, 4);
  ASSERT_LT(bbr.cwnd_segments(), cwnd_before);
  // Exit recovery: next ACK in open state restores the saved cwnd.
  d.st.in_recovery = false;
  d.advance(DurationNs::millis(40));
  d.ack(bbr, 1, 500.0, d.delivered, DurationNs::millis(40),
        DurationNs::millis(40), false, 4);
  EXPECT_GE(bbr.cwnd_segments(), cwnd_before);
}

TEST(Bbr, AppLimitedSampleBelowEstimateIgnored) {
  Bbr bbr;
  Driver d;
  bbr.init(d.st);
  d.ack(bbr, 5, 1000.0, 0);
  tcp::RateSample rs;
  rs.delivered = 1;
  rs.interval = DurationNs::millis(40);
  rs.prior_delivered = d.delivered;
  rs.delivery_rate_pps = 50.0;
  rs.is_app_limited = true;
  rs.acked_sacked = 1;
  rs.rtt = DurationNs::millis(40);
  d.st.delivered += 1;
  tcp::AckEvent ev;
  ev.newly_acked = 1;
  bbr.on_ack(d.st, ev, rs);
  EXPECT_DOUBLE_EQ(bbr.bw_estimate_pps(), 1000.0);
}

TEST(Bbr, DeterministicAcrossInstancesWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    Bbr::Config cfg;
    cfg.seed = seed;
    Bbr bbr(cfg);
    Driver d;
    bbr.init(d.st);
    double bw = 100.0;
    std::vector<int> cycle_trace;
    for (int i = 0; i < 40; ++i) {
      d.advance(DurationNs::millis(50));
      d.ack(bbr, 2, bw, d.delivered, DurationNs::millis(40),
            DurationNs::millis(40), false, i < 7 ? 100 : 5);
      if (i < 5) bw *= 1.4;
      cycle_trace.push_back(bbr.cycle_index());
    }
    return cycle_trace;
  };
  EXPECT_EQ(run(7), run(7));
  // Different seeds may pick different PROBE_BW entry phases.
}

}  // namespace
}  // namespace ccfuzz::cca
