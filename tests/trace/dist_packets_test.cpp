// Property tests for DistPackets (paper Fig 2): packet conservation,
// ordering, window containment, and the rate-variation envelope.
#include "trace/dist_packets.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/trace.h"

namespace ccfuzz::trace {
namespace {

TEST(DistPackets, EmptyAndTrivialCases) {
  Rng rng(1);
  EXPECT_TRUE(dist_packets(0, TimeNs::zero(), TimeNs::seconds(1), rng).empty());
  EXPECT_TRUE(dist_packets(5, TimeNs::seconds(1), TimeNs::seconds(1), rng).empty());
  const auto one = dist_packets(1, TimeNs::millis(100), TimeNs::millis(200), rng);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], TimeNs::millis(150));  // midpoint
}

TEST(DistPackets, Deterministic) {
  Rng a(42), b(42);
  const auto ta = dist_packets(1000, TimeNs::zero(), TimeNs::seconds(5), a);
  const auto tb = dist_packets(1000, TimeNs::zero(), TimeNs::seconds(5), b);
  EXPECT_EQ(ta, tb);
}

/// Sweep across packet counts and durations: every output must conserve
/// the count, be sorted, and stay inside the window.
class DistPacketsProperty
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(DistPacketsProperty, ConservesCountSortedInWindow) {
  const auto [num, duration_ms] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const TimeNs end = TimeNs::millis(duration_ms);
    const auto stamps = dist_packets(num, TimeNs::zero(), end, rng);
    ASSERT_EQ(stamps.size(), static_cast<std::size_t>(num));
    EXPECT_TRUE(std::is_sorted(stamps.begin(), stamps.end()));
    if (!stamps.empty()) {
      EXPECT_GE(stamps.front(), TimeNs::zero());
      EXPECT_LE(stamps.back(), end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DistPacketsProperty,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 10, 100, 1000, 5000),
                       ::testing::Values<std::int64_t>(50, 500, 5000)));

TEST(DistPackets, LongTermRateStaysWithinEnvelope) {
  // Fig 3a: with constraints on, the cumulative curve hugs the average.
  // Check rate over each half: the recursive 0.5–2× bound applies to the
  // first split, so each half holds between 25% and 75% of the packets
  // (tsplit is random, but each side's *rate* is bounded).
  Rng rng(7);
  const std::int64_t num = 5000;
  const TimeNs end = TimeNs::seconds(5);
  DistPacketsConfig cfg;  // defaults: kAgg 50 ms, [0.5, 2.0]
  for (int rep = 0; rep < 10; ++rep) {
    const auto stamps = dist_packets(num, TimeNs::zero(), end, rng, cfg);
    Trace t{TraceKind::kLink, end, stamps};
    // Windows of 1 s (well above kAgg): the recursive bound composes, so a
    // window's rate can drift a few multiples from the mean but not more.
    for (int w = 0; w < 5; ++w) {
      const auto count =
          t.count_in(TimeNs::seconds(w), TimeNs::seconds(w + 1));
      EXPECT_GT(count, num / 5 / 5) << "window " << w;
      EXPECT_LT(count, num / 5 * 5) << "window " << w;
    }
  }
}

TEST(DistPackets, UnconstrainedModeAllowsExtremeSkew) {
  // With constraints off (traffic fuzzing / Fig 5b), extreme mass
  // imbalance must be reachable across seeds.
  DistPacketsConfig cfg;
  cfg.rate_constraints = false;
  const TimeNs end = TimeNs::seconds(5);
  bool saw_skew = false;
  for (std::uint64_t seed = 0; seed < 40 && !saw_skew; ++seed) {
    Rng rng(seed);
    const auto stamps = dist_packets(1000, TimeNs::zero(), end, rng, cfg);
    Trace t{TraceKind::kTraffic, end, stamps};
    const auto first_half = t.count_in(TimeNs::zero(), TimeNs::millis(2500));
    if (first_half < 200 || first_half > 800) saw_skew = true;
  }
  EXPECT_TRUE(saw_skew);
}

TEST(DistPackets, SubAggBurstsExist) {
  // Below kAgg the splits are unconstrained, so bursts (several packets in
  // a few ms) appear — Fig 3b's jitter structure.
  Rng rng(11);
  const auto stamps =
      dist_packets(5000, TimeNs::zero(), TimeNs::seconds(5), rng);
  std::int64_t max_in_5ms = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < stamps.size(); ++i) {
    while (stamps[i].ns() - stamps[j].ns() > 5'000'000) ++j;
    max_in_5ms = std::max<std::int64_t>(max_in_5ms,
                                        static_cast<std::int64_t>(i - j + 1));
  }
  // Uniform spacing would put 5 packets per 5 ms; bursts exceed that well.
  EXPECT_GT(max_in_5ms, 10);
}

TEST(DistPackets, AverageRateMatchesBudget) {
  Rng rng(13);
  const auto stamps =
      dist_packets(5000, TimeNs::zero(), TimeNs::seconds(5), rng);
  Trace t{TraceKind::kLink, TimeNs::seconds(5), stamps};
  // 5000 packets × 1500 B over 5 s = 12 Mbps exactly (count conservation).
  EXPECT_DOUBLE_EQ(t.average_rate_bps(1500), 12e6);
}

TEST(DistPackets, TightKAggStillTerminates) {
  Rng rng(17);
  DistPacketsConfig cfg;
  cfg.k_agg = DurationNs::nanos(10);  // constraints apply almost everywhere
  const auto stamps =
      dist_packets(2000, TimeNs::zero(), TimeNs::millis(100), rng, cfg);
  EXPECT_EQ(stamps.size(), 2000u);
}

TEST(DistPackets, HugeKAggIsFullyUnconstrained) {
  Rng rng(19);
  DistPacketsConfig cfg;
  cfg.k_agg = DurationNs::seconds(100);  // never constrained
  const auto stamps =
      dist_packets(1000, TimeNs::zero(), TimeNs::seconds(5), rng, cfg);
  EXPECT_EQ(stamps.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(stamps.begin(), stamps.end()));
}

}  // namespace
}  // namespace ccfuzz::trace
