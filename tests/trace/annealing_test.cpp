// Tests for trace annealing (Gaussian timestamp smoothing, §3.2).
#include "trace/annealing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "trace/dist_packets.h"

namespace ccfuzz::trace {
namespace {

Trace bursty_trace() {
  // Alternating bursts and gaps: high local rate variance.
  Trace t;
  t.kind = TraceKind::kLink;
  t.duration = TimeNs::seconds(1);
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 20; ++i) {
      t.stamps.push_back(TimeNs::millis(burst * 100 + i / 10));
    }
  }
  return t;
}

double gap_variance(const Trace& t) {
  if (t.size() < 2) return 0.0;
  std::vector<double> gaps;
  for (std::size_t i = 1; i < t.size(); ++i) {
    gaps.push_back(
        static_cast<double>(t.stamps[i].ns() - t.stamps[i - 1].ns()));
  }
  double mean = 0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  return var / static_cast<double>(gaps.size());
}

TEST(Annealing, PreservesCountOrderAndWindow) {
  const Trace t = bursty_trace();
  const Trace a = anneal(t);
  EXPECT_EQ(a.size(), t.size());
  EXPECT_TRUE(std::is_sorted(a.stamps.begin(), a.stamps.end()));
  EXPECT_GE(a.stamps.front(), TimeNs::zero());
  EXPECT_LT(a.stamps.back(), a.duration);
}

TEST(Annealing, ReducesLocalRateVariance) {
  const Trace t = bursty_trace();
  const Trace a = anneal(t, {.sigma = 3.0, .strength = 1.0, .radius = 9});
  EXPECT_LT(gap_variance(a), gap_variance(t));
}

TEST(Annealing, RepeatedApplicationConverges) {
  Trace t = bursty_trace();
  double prev = gap_variance(t);
  for (int i = 0; i < 10; ++i) {
    t = anneal(t, {.sigma = 2.0, .strength = 0.5, .radius = 6});
    const double v = gap_variance(t);
    EXPECT_LE(v, prev * 1.0001);
    prev = v;
  }
}

TEST(Annealing, ZeroStrengthIsIdentity) {
  const Trace t = bursty_trace();
  const Trace a = anneal(t, {.sigma = 2.0, .strength = 0.0});
  EXPECT_EQ(a.stamps, t.stamps);
}

TEST(Annealing, TinyTracesPassThrough) {
  Trace t;
  t.duration = TimeNs::seconds(1);
  t.stamps = {TimeNs::millis(500)};
  EXPECT_EQ(anneal(t).stamps, t.stamps);
  t.stamps.push_back(TimeNs::millis(600));
  EXPECT_EQ(anneal(t).stamps, t.stamps);
}

TEST(Annealing, MeanTimePreservedApproximately) {
  Rng rng(3);
  Trace t;
  t.kind = TraceKind::kLink;
  t.duration = TimeNs::seconds(5);
  t.stamps = dist_packets(1000, TimeNs::zero(), t.duration, rng);
  const Trace a = anneal(t, {.sigma = 2.0, .strength = 1.0});
  double mt = 0, ma = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    mt += static_cast<double>(t.stamps[i].ns());
    ma += static_cast<double>(a.stamps[i].ns());
  }
  EXPECT_NEAR(ma / mt, 1.0, 0.01);
}

}  // namespace
}  // namespace ccfuzz::trace
