// Tests for trace text serialization.
#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ccfuzz::trace {
namespace {

Trace sample_trace() {
  Trace t;
  t.kind = TraceKind::kTraffic;
  t.duration = TimeNs::seconds(5);
  t.stamps = {TimeNs::millis(1), TimeNs::millis(500), TimeNs::millis(4999)};
  return t;
}

TEST(TraceIo, RoundTripThroughStream) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_trace(ss, t);
  const Trace r = read_trace(ss);
  EXPECT_EQ(r.kind, t.kind);
  EXPECT_EQ(r.duration, t.duration);
  EXPECT_EQ(r.stamps, t.stamps);
}

TEST(TraceIo, RoundTripLinkKind) {
  Trace t = sample_trace();
  t.kind = TraceKind::kLink;
  std::stringstream ss;
  write_trace(ss, t);
  EXPECT_EQ(read_trace(ss).kind, TraceKind::kLink);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace t;
  t.kind = TraceKind::kLink;
  t.duration = TimeNs::seconds(1);
  std::stringstream ss;
  write_trace(ss, t);
  const Trace r = read_trace(ss);
  EXPECT_TRUE(r.stamps.empty());
  EXPECT_EQ(r.duration, TimeNs::seconds(1));
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream ss("123\n456\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownKind) {
  std::stringstream ss("# kind bogus\n# duration_ns 10\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsUnsortedStamps) {
  std::stringstream ss("# kind link\n# duration_ns 1000000000\n500\n100\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsStampOutsideWindow) {
  std::stringstream ss("# kind link\n# duration_ns 1000\n2000\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsGarbageTimestampLine) {
  std::stringstream ss("# kind link\n# duration_ns 1000\nabc\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = sample_trace();
  const std::string path = ::testing::TempDir() + "/ccfuzz_trace_io_test.txt";
  save_trace(path, t);
  const Trace r = load_trace(path);
  EXPECT_EQ(r.stamps, t.stamps);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.txt"), std::runtime_error);
}

// --- Structured (non-throwing) parse errors ----------------------------------
// Every way a trace file can be mangled maps to a typed Error, so loaders in
// crash-recovery paths (checkpoint restore, archive resume) can distinguish
// "wrong version" from "crash-truncated" from "bit rot" and degrade
// accordingly instead of dying on a bare exception.

TEST(TraceIoErrors, WrittenTracesCarryTheVersionMagic) {
  std::stringstream ss;
  write_trace(ss, sample_trace());
  std::string first;
  std::getline(ss, first);
  EXPECT_EQ(first, "# ccfuzz-trace v1");
}

TEST(TraceIoErrors, FutureVersionIsKVersion) {
  std::stringstream ss("# ccfuzz-trace v9\n# kind link\n# duration_ns 10\n");
  const auto r = try_read_trace(ss);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kVersion);
}

TEST(TraceIoErrors, MissingHeaderIsKTruncated) {
  std::stringstream empty("");
  EXPECT_EQ(try_read_trace(empty).error().code, Error::Code::kTruncated);
  std::stringstream kind_only("# kind link\n");
  EXPECT_EQ(try_read_trace(kind_only).error().code, Error::Code::kTruncated);
}

TEST(TraceIoErrors, GarbageIsKParse) {
  std::stringstream bad_kind("# kind bogus\n# duration_ns 10\n");
  EXPECT_EQ(try_read_trace(bad_kind).error().code, Error::Code::kParse);
  std::stringstream bad_duration("# kind link\n# duration_ns ten\n");
  EXPECT_EQ(try_read_trace(bad_duration).error().code, Error::Code::kParse);
  std::stringstream bad_stamp("# kind link\n# duration_ns 1000\nabc\n");
  EXPECT_EQ(try_read_trace(bad_stamp).error().code, Error::Code::kParse);
  std::stringstream trailing("# kind link\n# duration_ns 1000 junk\n");
  EXPECT_EQ(try_read_trace(trailing).error().code, Error::Code::kParse);
}

TEST(TraceIoErrors, MalformedTraceIsKCorrupt) {
  std::stringstream unsorted(
      "# kind link\n# duration_ns 1000000000\n500\n100\n");
  EXPECT_EQ(try_read_trace(unsorted).error().code, Error::Code::kCorrupt);
  std::stringstream outside("# kind link\n# duration_ns 1000\n2000\n");
  EXPECT_EQ(try_read_trace(outside).error().code, Error::Code::kCorrupt);
}

TEST(TraceIoErrors, MissingFileIsKIo) {
  const auto r = try_load_trace("/nonexistent/path/trace.txt");
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kIo);
  EXPECT_NE(r.error().message.find("trace.txt"), std::string::npos);
}

TEST(TraceIoErrors, TruncatedFileBytesStillRoundTripAsTypedErrors) {
  // A crash mid-write leaves a prefix of a valid file: every prefix must
  // parse to a typed error or a shorter (still well-formed) trace — never a
  // crash or an unflagged wrong result.
  std::stringstream full;
  write_trace(full, sample_trace());
  const std::string bytes = full.str();
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::stringstream partial(bytes.substr(0, cut));
    const auto r = try_read_trace(partial);
    if (r) {
      EXPECT_TRUE(r->well_formed());
    } else {
      EXPECT_NE(r.error().code, Error::Code::kOk);
    }
  }
}

}  // namespace
}  // namespace ccfuzz::trace
