// Tests for trace text serialization.
#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ccfuzz::trace {
namespace {

Trace sample_trace() {
  Trace t;
  t.kind = TraceKind::kTraffic;
  t.duration = TimeNs::seconds(5);
  t.stamps = {TimeNs::millis(1), TimeNs::millis(500), TimeNs::millis(4999)};
  return t;
}

TEST(TraceIo, RoundTripThroughStream) {
  const Trace t = sample_trace();
  std::stringstream ss;
  write_trace(ss, t);
  const Trace r = read_trace(ss);
  EXPECT_EQ(r.kind, t.kind);
  EXPECT_EQ(r.duration, t.duration);
  EXPECT_EQ(r.stamps, t.stamps);
}

TEST(TraceIo, RoundTripLinkKind) {
  Trace t = sample_trace();
  t.kind = TraceKind::kLink;
  std::stringstream ss;
  write_trace(ss, t);
  EXPECT_EQ(read_trace(ss).kind, TraceKind::kLink);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace t;
  t.kind = TraceKind::kLink;
  t.duration = TimeNs::seconds(1);
  std::stringstream ss;
  write_trace(ss, t);
  const Trace r = read_trace(ss);
  EXPECT_TRUE(r.stamps.empty());
  EXPECT_EQ(r.duration, TimeNs::seconds(1));
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream ss("123\n456\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownKind) {
  std::stringstream ss("# kind bogus\n# duration_ns 10\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsUnsortedStamps) {
  std::stringstream ss("# kind link\n# duration_ns 1000000000\n500\n100\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsStampOutsideWindow) {
  std::stringstream ss("# kind link\n# duration_ns 1000\n2000\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsGarbageTimestampLine) {
  std::stringstream ss("# kind link\n# duration_ns 1000\nabc\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = sample_trace();
  const std::string path = ::testing::TempDir() + "/ccfuzz_trace_io_test.txt";
  save_trace(path, t);
  const Trace r = load_trace(path);
  EXPECT_EQ(r.stamps, t.stamps);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.txt"), std::runtime_error);
}

}  // namespace
}  // namespace ccfuzz::trace
