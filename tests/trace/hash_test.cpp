// Unit tests for trace::hash — the campaign cache/dedup fingerprint.
#include "trace/hash.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/mutation.h"
#include "util/rng.h"

namespace ccfuzz::trace {
namespace {

Trace make_trace(std::initializer_list<std::int64_t> stamp_ns,
                 TraceKind kind = TraceKind::kTraffic) {
  Trace t;
  t.kind = kind;
  t.duration = TimeNs::seconds(5);
  for (auto ns : stamp_ns) t.stamps.push_back(TimeNs(ns));
  return t;
}

TEST(TraceHash, StableAcrossCallsAndCopies) {
  const Trace t = make_trace({1, 2, 3'000'000'000});
  const Trace copy = t;
  EXPECT_EQ(hash(t), hash(t));
  EXPECT_EQ(hash(t), hash(copy));
}

TEST(TraceHash, StableAcrossRuns) {
  // The digest is persisted in reports, so it must never change between
  // builds or platforms. This pins the FNV-1a byte order.
  EXPECT_EQ(hash(make_trace({})), 0x76c76972b7263c3cULL);
  EXPECT_EQ(hash(make_trace({1, 2, 3})), 0x47a1268c1bede73cULL);
}

TEST(TraceHash, SensitiveToEveryField) {
  const Trace base = make_trace({1, 2, 3});
  Trace kind = base;
  kind.kind = TraceKind::kLink;
  EXPECT_NE(hash(base), hash(kind));

  Trace duration = base;
  duration.duration = TimeNs::seconds(6);
  EXPECT_NE(hash(base), hash(duration));

  Trace stamp = base;
  stamp.stamps[1] = TimeNs(5);
  EXPECT_NE(hash(base), hash(stamp));

  Trace extra = base;
  extra.stamps.push_back(TimeNs(7));
  EXPECT_NE(hash(base), hash(extra));
}

TEST(TraceHash, PermutationAndZeroPaddingDiffer) {
  // Order matters (a trace is a sorted sequence, but the hash must not
  // silently equate unsorted variants) and so does a trailing zero stamp.
  EXPECT_NE(hash(make_trace({1, 2})), hash(make_trace({2, 1})));
  EXPECT_NE(hash(make_trace({1, 2})), hash(make_trace({1, 2, 0})));
  EXPECT_NE(hash(make_trace({0})), hash(make_trace({})));
}

TEST(TraceHash, CollisionSanityOverGeneratedTraces) {
  // 2000 GA-generated traces → 2000 distinct digests. Not a proof, but a
  // regression tripwire for hash-quality mistakes.
  TrafficTraceModel model;
  model.max_packets = 200;
  model.duration = TimeNs::seconds(2);
  Rng rng(7);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(seen.insert(hash(model.generate(rng))).second)
        << "collision at trace " << i;
  }
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(TraceHash, HexFormatting) {
  EXPECT_EQ(hash_hex(0), "0000000000000000");
  EXPECT_EQ(hash_hex(0xDEADBEEF12345678ULL), "deadbeef12345678");
}

}  // namespace
}  // namespace ccfuzz::trace
