// Tests for the GA evolution operators: link mutation (budget-preserving),
// traffic mutation (budget-respecting), and traffic crossover.
#include "trace/mutation.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ccfuzz::trace {
namespace {

TEST(LinkTraceModel, GenerateHonoursBudgetAndWindow) {
  LinkTraceModel model;
  model.total_packets = 1234;
  model.duration = TimeNs::seconds(3);
  Rng rng(1);
  const Trace t = model.generate(rng);
  EXPECT_EQ(t.kind, TraceKind::kLink);
  EXPECT_EQ(t.size(), 1234u);
  EXPECT_TRUE(t.well_formed() || t.stamps.back() == t.duration);
}

TEST(LinkTraceModel, MutationPreservesPacketBudget) {
  LinkTraceModel model;
  model.total_packets = 500;
  model.duration = TimeNs::seconds(2);
  Rng rng(2);
  Trace t = model.generate(rng);
  for (int i = 0; i < 50; ++i) {
    t = model.mutate(t, rng);
    ASSERT_EQ(t.size(), 500u) << "mutation " << i;
    ASSERT_TRUE(std::is_sorted(t.stamps.begin(), t.stamps.end()));
  }
}

TEST(LinkTraceModel, MutationChangesOnlyOneSide) {
  LinkTraceModel model;
  model.total_packets = 1000;
  model.duration = TimeNs::seconds(5);
  Rng rng(3);
  const Trace t = model.generate(rng);
  const Trace m = model.mutate(t, rng);
  // Some prefix or suffix of the original survives verbatim.
  std::size_t common_prefix = 0;
  while (common_prefix < t.size() && common_prefix < m.size() &&
         t.stamps[common_prefix] == m.stamps[common_prefix]) {
    ++common_prefix;
  }
  std::size_t common_suffix = 0;
  while (common_suffix < t.size() && common_suffix < m.size() &&
         t.stamps[t.size() - 1 - common_suffix] ==
             m.stamps[m.size() - 1 - common_suffix]) {
    ++common_suffix;
  }
  EXPECT_GT(common_prefix + common_suffix, 0u)
      << "one side of the split must survive";
  EXPECT_LT(common_prefix + common_suffix, t.size())
      << "the other side must change";
}

TEST(LinkTraceModel, MutationIsDeterministicGivenRngState) {
  LinkTraceModel model;
  Rng r1(5), r2(5);
  const Trace t = model.generate(r1);
  const Trace t2 = model.generate(r2);
  const Trace m1 = model.mutate(t, r1);
  const Trace m2 = model.mutate(t2, r2);
  EXPECT_EQ(m1.stamps, m2.stamps);
}

TEST(TrafficTraceModel, GenerateUsesMaxPacketsByDefault) {
  TrafficTraceModel model;
  model.max_packets = 300;
  model.duration = TimeNs::seconds(1);
  Rng rng(7);
  const Trace t = model.generate(rng);
  EXPECT_EQ(t.kind, TraceKind::kTraffic);
  EXPECT_EQ(t.size(), 300u);
}

TEST(TrafficTraceModel, InitialPacketsOverride) {
  TrafficTraceModel model;
  model.max_packets = 300;
  model.initial_packets = 50;
  Rng rng(7);
  EXPECT_EQ(model.generate(rng).size(), 50u);
}

TEST(TrafficTraceModel, MutationRespectsBudget) {
  TrafficTraceModel model;
  model.max_packets = 200;
  model.duration = TimeNs::seconds(2);
  Rng rng(11);
  Trace t = model.generate(rng);
  for (int i = 0; i < 100; ++i) {
    t = model.mutate(t, rng);
    ASSERT_LE(t.size(), 200u) << "mutation " << i;
    ASSERT_TRUE(std::is_sorted(t.stamps.begin(), t.stamps.end()));
  }
}

TEST(TrafficTraceModel, MutationVariesPacketCount) {
  // §3.3: mutation resamples the regenerated side's count.
  TrafficTraceModel model;
  model.max_packets = 200;
  model.duration = TimeNs::seconds(2);
  Rng rng(13);
  Trace t = model.generate(rng);
  bool count_changed = false;
  std::size_t prev = t.size();
  for (int i = 0; i < 20 && !count_changed; ++i) {
    t = model.mutate(t, rng);
    count_changed = t.size() != prev;
    prev = t.size();
  }
  EXPECT_TRUE(count_changed);
}

TEST(TrafficTraceModel, CrossoverProducesSortedSplice) {
  TrafficTraceModel model;
  model.max_packets = 100;
  model.duration = TimeNs::seconds(1);
  Rng rng(17);
  const Trace a = model.generate(rng);
  const Trace b = model.mutate(a, rng);
  for (int i = 0; i < 50; ++i) {
    const Trace child = model.crossover(a, b, rng);
    ASSERT_TRUE(std::is_sorted(child.stamps.begin(), child.stamps.end()));
    ASSERT_LE(child.size(), 100u);
    EXPECT_EQ(child.kind, TraceKind::kTraffic);
  }
}

TEST(TrafficTraceModel, CrossoverChildInheritsFromBothParents) {
  TrafficTraceModel model;
  model.max_packets = 50;
  model.duration = TimeNs::seconds(1);
  Rng rng(19);
  // Parent A: all packets early; parent B: all packets late.
  Trace a, b;
  a.kind = b.kind = TraceKind::kTraffic;
  a.duration = b.duration = model.duration;
  for (int i = 0; i < 50; ++i) {
    a.stamps.push_back(TimeNs::millis(i));         // 0–49 ms
    b.stamps.push_back(TimeNs::millis(900 + i));   // 900–949 ms
  }
  bool saw_mixed = false;
  for (int i = 0; i < 30 && !saw_mixed; ++i) {
    const Trace child = model.crossover(a, b, rng);
    const bool has_early =
        !child.stamps.empty() && child.stamps.front() < TimeNs::millis(100);
    const bool has_late =
        !child.stamps.empty() && child.stamps.back() >= TimeNs::millis(900);
    saw_mixed = has_early && has_late;
  }
  EXPECT_TRUE(saw_mixed);
}

TEST(TrafficTraceModel, CrossoverCountDriftsTowardRightParent) {
  // §3.3: the child's total count follows the right-side parent's tail.
  TrafficTraceModel model;
  model.max_packets = 1000;
  model.duration = TimeNs::seconds(1);
  Rng rng(23);
  Trace small, large;
  small.kind = large.kind = TraceKind::kTraffic;
  small.duration = large.duration = model.duration;
  for (int i = 0; i < 10; ++i) small.stamps.push_back(TimeNs::millis(i));
  for (int i = 0; i < 500; ++i) large.stamps.push_back(TimeNs::millis(i));
  bool saw_shrunk = false, saw_grown = false;
  for (int i = 0; i < 50; ++i) {
    const auto n = model.crossover(small, large, rng).size();
    if (n < 100) saw_shrunk = true;
    if (n > 100) saw_grown = true;
  }
  EXPECT_TRUE(saw_shrunk || saw_grown);
}

}  // namespace
}  // namespace ccfuzz::trace
