// Unit tests for the Simulator clock/driver and the restartable Timer.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccfuzz::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimeNs::zero());
  std::vector<std::int64_t> seen;
  sim.schedule_in(DurationNs::millis(10),
                  [&] { seen.push_back(sim.now().to_millis()); });
  sim.schedule_in(DurationNs::millis(5),
                  [&] { seen.push_back(sim.now().to_millis()); });
  sim.run_all();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{5, 10}));
  EXPECT_EQ(sim.now(), TimeNs::millis(10));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(DurationNs::millis(5), [&] { ++fired; });
  sim.schedule_in(DurationNs::millis(50), [&] { ++fired; });
  sim.run_until(TimeNs::millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimeNs::millis(20));  // clock parked at the deadline
  sim.run_until(TimeNs::millis(100));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventAtDeadlineFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(TimeNs::millis(10), [&] { fired = true; });
  sim.run_until(TimeNs::millis(10));
  EXPECT_TRUE(fired);
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  sim.schedule_in(DurationNs::millis(10), [] {});
  sim.run_all();
  bool fired = false;
  sim.schedule_at(TimeNs::millis(1), [&] { fired = true; });  // in the past
  sim.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimeNs::millis(10));  // clock never went backwards
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(DurationNs::millis(i), [] {});
  EXPECT_EQ(sim.run_all(), 7u);
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_in(DurationNs::millis(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Timer, FiresAfterDelay) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(DurationNs::millis(3));
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.expiry(), TimeNs::millis(3));
  sim.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RearmCancelsPrevious) {
  Simulator sim;
  std::vector<std::int64_t> fire_times;
  Timer t(sim, [&] { fire_times.push_back(sim.now().to_millis()); });
  t.arm(DurationNs::millis(5));
  t.arm(DurationNs::millis(10));  // replaces the 5 ms expiry
  sim.run_all();
  EXPECT_EQ(fire_times, (std::vector<std::int64_t>{10}));
}

TEST(Timer, CancelStopsPending) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(DurationNs::millis(5));
  t.cancel();
  EXPECT_FALSE(t.pending());
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanRearmFromItsOwnCallback) {
  Simulator sim;
  int fired = 0;
  Timer* tp = nullptr;
  Timer t(sim, [&] {
    if (++fired < 3) tp->arm(DurationNs::millis(1));
  });
  tp = &t;
  t.arm(DurationNs::millis(1));
  sim.run_all();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), TimeNs::millis(3));
}

TEST(Simulator, DeterministicReplay) {
  // Two identical schedules must produce identical execution traces.
  auto run = [] {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      sim.schedule_in(DurationNs::millis((i * 37) % 50),
                      [&order, i] { order.push_back(i); });
    }
    sim.run_all();
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ccfuzz::sim
