// sim::Invariants — the armed-flag runtime oracle layer.
//
// Two contracts: (a) the recorder itself is a cheap, capped, disarmed-by-
// default accumulator, and (b) armed invariants pass cleanly on every golden
// scenario while leaving the simulation outcome untouched (the audits only
// read state — they may add simulator events, never packets).
#include "sim/invariants.h"

#include <gtest/gtest.h>

#include "cca/registry.h"
#include "scenario/runner.h"
#include "trace/dist_packets.h"
#include "util/rng.h"

namespace ccfuzz::sim {
namespace {

TEST(Invariants, DisarmedRecordIsANoOp) {
  Invariants inv;
  inv.record(TimeNs::zero(), "should vanish");
  inv.check(false, TimeNs::zero(), "also vanishes");
  EXPECT_TRUE(inv.clean());
  EXPECT_EQ(inv.total(), 0);
  EXPECT_TRUE(inv.violations().empty());
}

TEST(Invariants, ArmedRecordsUpToTheCap) {
  Invariants inv;
  inv.reset(/*armed=*/true);
  for (int i = 0; i < 100; ++i) {
    inv.check(false, TimeNs(i), "boom");
  }
  EXPECT_FALSE(inv.clean());
  EXPECT_EQ(inv.total(), 100);
  EXPECT_EQ(inv.violations().size(), Invariants::kMaxRecorded);
  EXPECT_EQ(inv.violations().front().when, TimeNs(0));
}

TEST(Invariants, PassingChecksStayClean) {
  Invariants inv;
  inv.reset(/*armed=*/true);
  inv.check(true, TimeNs::zero(), "fine");
  EXPECT_TRUE(inv.clean());
  EXPECT_EQ(inv.total(), 0);
}

TEST(Invariants, ResetDisarmedDropsPriorViolations) {
  Invariants inv;
  inv.reset(/*armed=*/true);
  inv.record(TimeNs::zero(), "stale");
  inv.reset(/*armed=*/false);
  EXPECT_TRUE(inv.clean());
  EXPECT_TRUE(inv.violations().empty());
  inv.record(TimeNs::zero(), "ignored while disarmed");
  EXPECT_TRUE(inv.clean());
}

}  // namespace
}  // namespace ccfuzz::sim

namespace ccfuzz::scenario {
namespace {

ScenarioConfig armed_config(FuzzMode mode) {
  ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.mode = mode;
  cfg.invariants = true;
  return cfg;
}

std::vector<TimeNs> probe_trace(FuzzMode mode, TimeNs duration) {
  Rng rng(mode == FuzzMode::kLink ? 42 : 7);
  return trace::dist_packets(mode == FuzzMode::kLink ? 2000 : 1500,
                             TimeNs::zero(), duration, rng);
}

TEST(InvariantsOracle, ArmedGoldenScenariosAreClean) {
  // Packet conservation, cwnd floor, SACK-scoreboard consistency and the
  // rest must hold on every registered CCA in both fuzz modes; a violation
  // here is a simulator bug, full stop.
  for (const char* cca : {"reno", "cubic", "bbr"}) {
    for (const FuzzMode mode : {FuzzMode::kLink, FuzzMode::kTraffic}) {
      SCOPED_TRACE(std::string(cca) + "/" + to_string(mode));
      const ScenarioConfig cfg = armed_config(mode);
      const auto run = run_scenario(cfg, cca::make_factory(cca),
                                    probe_trace(mode, cfg.duration));
      EXPECT_TRUE(run.invariants.clean())
          << run.invariants.total() << " violation(s), first: "
          << (run.invariants.violations().empty()
                  ? "<none recorded>"
                  : run.invariants.violations().front().what);
    }
  }
}

TEST(InvariantsOracle, ArmedAuditsDoNotPerturbTheRun) {
  // The audit events interleave with packet events but only read state:
  // every outcome counter must match the disarmed run exactly.
  for (const FuzzMode mode : {FuzzMode::kLink, FuzzMode::kTraffic}) {
    SCOPED_TRACE(to_string(mode));
    ScenarioConfig disarmed = armed_config(mode);
    disarmed.invariants = false;
    const auto factory = cca::make_factory("reno");
    const auto base =
        run_scenario(disarmed, factory, probe_trace(mode, disarmed.duration));
    const auto armed = run_scenario(armed_config(mode), factory,
                                    probe_trace(mode, disarmed.duration));
    EXPECT_TRUE(armed.invariants.clean());
    EXPECT_EQ(armed.cca_segments_delivered(), base.cca_segments_delivered());
    EXPECT_EQ(armed.cca_sent(), base.cca_sent());
    EXPECT_EQ(armed.cca_retransmissions(), base.cca_retransmissions());
    EXPECT_EQ(armed.cca_drops(), base.cca_drops());
    EXPECT_EQ(armed.rto_count(), base.rto_count());
    EXPECT_EQ(armed.cross_sent, base.cross_sent);
    EXPECT_EQ(armed.cross_drops, base.cross_drops);
    EXPECT_TRUE(base.invariants.clean());  // disarmed: trivially clean
  }
}

TEST(InvariantsOracle, ArmedMultiFlowScenarioIsClean) {
  ScenarioConfig cfg = armed_config(FuzzMode::kTraffic);
  cfg.flows.resize(2);
  cfg.flows[1].cca = "cubic";
  cfg.flows[1].start = TimeNs::millis(500);
  Rng rng(202);
  const auto run = run_scenario(
      cfg, cca::make_factory("reno"),
      trace::dist_packets(1500, TimeNs::zero(), cfg.duration, rng));
  EXPECT_TRUE(run.invariants.clean())
      << run.invariants.total() << " violation(s)";
}

}  // namespace
}  // namespace ccfuzz::scenario
