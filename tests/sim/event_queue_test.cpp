// Unit tests for the discrete-event queue, especially the determinism
// contract (FIFO tie-break at equal timestamps).
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccfuzz::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::millis(30), [&] { order.push_back(3); });
  q.schedule(TimeNs::millis(10), [&] { order.push_back(1); });
  q.schedule(TimeNs::millis(20), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimeNs::millis(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(TimeNs::millis(1), [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoOp) {
  EventQueue q;
  q.cancel(123456);  // must not crash or affect anything
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelMiddleEventSkipsOnlyIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::millis(1), [&] { order.push_back(1); });
  const EventId id = q.schedule(TimeNs::millis(2), [&] { order.push_back(2); });
  q.schedule(TimeNs::millis(3), [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  EXPECT_TRUE(q.next_time().is_infinite());
  const EventId id = q.schedule(TimeNs::millis(5), [] {});
  q.schedule(TimeNs::millis(9), [] {});
  EXPECT_EQ(q.next_time(), TimeNs::millis(5));
  q.cancel(id);
  EXPECT_EQ(q.next_time(), TimeNs::millis(9));
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(TimeNs::millis(7), [] {});
  EXPECT_EQ(q.run_next(), TimeNs::millis(7));
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue q;
  int fired = 0;
  q.schedule(TimeNs::millis(1), [&] {
    ++fired;
    q.schedule(TimeNs::millis(2), [&] { ++fired; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.schedule(TimeNs::millis(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, SizeUnaffectedByCancellingFiredId) {
  // Regression: cancel() accepts ids of already-fired events; the old
  // heap-size-minus-cancelled-set accounting let size() wrap to huge values.
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.run_next();  // `a` fires
  EXPECT_EQ(q.size(), 0u);
  q.cancel(a);  // must be a no-op
  EXPECT_EQ(q.size(), 0u);
  q.schedule(TimeNs::millis(2), [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, CancelTwiceIsNoOp) {
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.schedule(TimeNs::millis(2), [] {});
  q.cancel(a);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, StaleIdDoesNotCancelRecycledSlot) {
  // After an event fires, its slot is recycled for later events; the old id
  // must not cancel the new occupant (generation tag mismatch).
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.run_next();
  bool fired = false;
  q.schedule(TimeNs::millis(2), [&] { fired = true; });
  q.cancel(a);  // stale id, possibly aliasing the recycled slot
  while (!q.empty()) q.run_next();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, RunNextDueRespectsDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule(TimeNs::millis(5), [&] { ++fired; });
  q.schedule(TimeNs::millis(10), [&] { ++fired; });
  TimeNs clock = TimeNs::zero();
  EXPECT_TRUE(q.run_next_due(TimeNs::millis(7), clock));
  EXPECT_EQ(clock, TimeNs::millis(5));
  EXPECT_FALSE(q.run_next_due(TimeNs::millis(7), clock));
  EXPECT_EQ(clock, TimeNs::millis(5));  // untouched on refusal
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ResetDiscardsPendingEvents) {
  EventQueue q;
  bool fired = false;
  q.schedule(TimeNs::millis(1), [&] { fired = true; });
  q.schedule(TimeNs::millis(2), [&] { fired = true; });
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.next_time().is_infinite());
  EXPECT_FALSE(fired);
  // The queue is fully usable after reset, with FIFO order intact.
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    q.schedule(TimeNs::millis(3), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, IdHeldAcrossResetCannotCancelNewEvent) {
  // Regression: slot indices and FIFO seqs restart after reset(), so an id
  // kept across reset() could alias the first event of the next run; the
  // per-slot generation counter (which survives reset) must reject it.
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.run_next();
  q.reset();
  bool fired = false;
  q.schedule(TimeNs::millis(1), [&] { fired = true; });
  q.cancel(a);  // pre-reset id: guaranteed no-op
  while (!q.empty()) q.run_next();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelDuringDrainKeepsOrder) {
  // Cancelling deep-in-heap events interleaved with pops must not disturb
  // the firing order of live events.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(
        q.schedule(TimeNs::millis(i), [&order, i] { order.push_back(i); }));
  }
  // Cancel every third event up front and every seventh mid-drain.
  for (int i = 0; i < 100; i += 3) q.cancel(ids[static_cast<std::size_t>(i)]);
  int popped = 0;
  while (!q.empty()) {
    q.run_next();
    if (++popped % 5 == 0) {
      const int victim = popped * 7 % 100;
      q.cancel(ids[static_cast<std::size_t>(victim)]);
    }
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_LT(order[i - 1], order[i]);
  }
}

TEST(EventQueue, StressManyEventsStayOrdered) {
  EventQueue q;
  std::vector<std::int64_t> times;
  // Deterministic pseudo-shuffled schedule.
  for (std::int64_t i = 0; i < 5000; ++i) {
    const std::int64_t t = (i * 2654435761u) % 100000;
    q.schedule(TimeNs(t), [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(times.size(), 5000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace ccfuzz::sim
