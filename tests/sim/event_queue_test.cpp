// Unit tests for the discrete-event queue, especially the determinism
// contract (FIFO tie-break at equal timestamps).
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccfuzz::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::millis(30), [&] { order.push_back(3); });
  q.schedule(TimeNs::millis(10), [&] { order.push_back(1); });
  q.schedule(TimeNs::millis(20), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimeNs::millis(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(TimeNs::millis(1), [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoOp) {
  EventQueue q;
  q.cancel(123456);  // must not crash or affect anything
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelMiddleEventSkipsOnlyIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::millis(1), [&] { order.push_back(1); });
  const EventId id = q.schedule(TimeNs::millis(2), [&] { order.push_back(2); });
  q.schedule(TimeNs::millis(3), [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  EXPECT_TRUE(q.next_time().is_infinite());
  const EventId id = q.schedule(TimeNs::millis(5), [] {});
  q.schedule(TimeNs::millis(9), [] {});
  EXPECT_EQ(q.next_time(), TimeNs::millis(5));
  q.cancel(id);
  EXPECT_EQ(q.next_time(), TimeNs::millis(9));
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(TimeNs::millis(7), [] {});
  EXPECT_EQ(q.run_next(), TimeNs::millis(7));
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue q;
  int fired = 0;
  q.schedule(TimeNs::millis(1), [&] {
    ++fired;
    q.schedule(TimeNs::millis(2), [&] { ++fired; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.schedule(TimeNs::millis(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, StressManyEventsStayOrdered) {
  EventQueue q;
  std::vector<std::int64_t> times;
  // Deterministic pseudo-shuffled schedule.
  for (std::int64_t i = 0; i < 5000; ++i) {
    const std::int64_t t = (i * 2654435761u) % 100000;
    q.schedule(TimeNs(t), [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(times.size(), 5000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace ccfuzz::sim
