// Unit tests for the discrete-event queue, especially the determinism
// contract (FIFO tie-break at equal timestamps).
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace ccfuzz::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::millis(30), [&] { order.push_back(3); });
  q.schedule(TimeNs::millis(10), [&] { order.push_back(1); });
  q.schedule(TimeNs::millis(20), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimestampsFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimeNs::millis(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(TimeNs::millis(1), [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoOp) {
  EventQueue q;
  q.cancel(123456);  // must not crash or affect anything
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelMiddleEventSkipsOnlyIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::millis(1), [&] { order.push_back(1); });
  const EventId id = q.schedule(TimeNs::millis(2), [&] { order.push_back(2); });
  q.schedule(TimeNs::millis(3), [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  EXPECT_TRUE(q.next_time().is_infinite());
  const EventId id = q.schedule(TimeNs::millis(5), [] {});
  q.schedule(TimeNs::millis(9), [] {});
  EXPECT_EQ(q.next_time(), TimeNs::millis(5));
  q.cancel(id);
  EXPECT_EQ(q.next_time(), TimeNs::millis(9));
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(TimeNs::millis(7), [] {});
  EXPECT_EQ(q.run_next(), TimeNs::millis(7));
}

TEST(EventQueue, EventsScheduledDuringExecutionRun) {
  EventQueue q;
  int fired = 0;
  q.schedule(TimeNs::millis(1), [&] {
    ++fired;
    q.schedule(TimeNs::millis(2), [&] { ++fired; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.schedule(TimeNs::millis(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, SizeUnaffectedByCancellingFiredId) {
  // Regression: cancel() accepts ids of already-fired events; the old
  // heap-size-minus-cancelled-set accounting let size() wrap to huge values.
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.run_next();  // `a` fires
  EXPECT_EQ(q.size(), 0u);
  q.cancel(a);  // must be a no-op
  EXPECT_EQ(q.size(), 0u);
  q.schedule(TimeNs::millis(2), [] {});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, CancelTwiceIsNoOp) {
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.schedule(TimeNs::millis(2), [] {});
  q.cancel(a);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, StaleIdDoesNotCancelRecycledSlot) {
  // After an event fires, its slot is recycled for later events; the old id
  // must not cancel the new occupant (generation tag mismatch).
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.run_next();
  bool fired = false;
  q.schedule(TimeNs::millis(2), [&] { fired = true; });
  q.cancel(a);  // stale id, possibly aliasing the recycled slot
  while (!q.empty()) q.run_next();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, RunNextDueRespectsDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule(TimeNs::millis(5), [&] { ++fired; });
  q.schedule(TimeNs::millis(10), [&] { ++fired; });
  TimeNs clock = TimeNs::zero();
  EXPECT_TRUE(q.run_next_due(TimeNs::millis(7), clock));
  EXPECT_EQ(clock, TimeNs::millis(5));
  EXPECT_FALSE(q.run_next_due(TimeNs::millis(7), clock));
  EXPECT_EQ(clock, TimeNs::millis(5));  // untouched on refusal
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ResetDiscardsPendingEvents) {
  EventQueue q;
  bool fired = false;
  q.schedule(TimeNs::millis(1), [&] { fired = true; });
  q.schedule(TimeNs::millis(2), [&] { fired = true; });
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.next_time().is_infinite());
  EXPECT_FALSE(fired);
  // The queue is fully usable after reset, with FIFO order intact.
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    q.schedule(TimeNs::millis(3), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, IdHeldAcrossResetCannotCancelNewEvent) {
  // Regression: slot indices and FIFO seqs restart after reset(), so an id
  // kept across reset() could alias the first event of the next run; the
  // per-slot generation counter (which survives reset) must reject it.
  EventQueue q;
  const EventId a = q.schedule(TimeNs::millis(1), [] {});
  q.run_next();
  q.reset();
  bool fired = false;
  q.schedule(TimeNs::millis(1), [&] { fired = true; });
  q.cancel(a);  // pre-reset id: guaranteed no-op
  while (!q.empty()) q.run_next();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelDuringDrainKeepsOrder) {
  // Cancelling deep-in-heap events interleaved with pops must not disturb
  // the firing order of live events.
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(
        q.schedule(TimeNs::millis(i), [&order, i] { order.push_back(i); }));
  }
  // Cancel every third event up front and every seventh mid-drain.
  for (int i = 0; i < 100; i += 3) q.cancel(ids[static_cast<std::size_t>(i)]);
  int popped = 0;
  while (!q.empty()) {
    q.run_next();
    if (++popped % 5 == 0) {
      const int victim = popped * 7 % 100;
      q.cancel(ids[static_cast<std::size_t>(victim)]);
    }
  }
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_LT(order[i - 1], order[i]);
  }
}

// --- Two-band boundary behavior ---------------------------------------------
//
// The queue parks far-future events (beyond ~67 ms of the current heap top)
// in epoch buckets and migrates them into the near heap lazily. These tests
// pin the band boundary: FIFO ties across migration, cancellation in every
// band state, reset with a populated far band, and the overflow band beyond
// the wheel span (~1.07 s).

TEST(EventQueue, MixedBandEventsFireInTimeOrder) {
  EventQueue q;
  std::vector<std::int64_t> fired;
  // Interleave near (µs..ms), wheel-far (hundreds of ms) and overflow-far
  // (seconds) schedules.
  const std::int64_t times_ms[] = {5000, 1, 700, 12, 2300, 90, 450,
                                   8000, 3,  160, 999, 30,  1500};
  for (const std::int64_t t : times_ms) {
    q.schedule(TimeNs::millis(t), [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(fired.size(), std::size(times_ms));
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LT(fired[i - 1], fired[i]);
  }
}

TEST(EventQueue, EqualTimestampFifoSurvivesBandMigration) {
  // A is scheduled while its timestamp is far future (parks in a bucket);
  // the clock then walks close enough that the horizon passes A's epoch and
  // A migrates into the heap; B is scheduled at the *same* timestamp
  // directly into the near band. FIFO order (A first) must hold: migration
  // preserves the original sequence number.
  EventQueue q;
  std::vector<int> order;
  const TimeNs t = TimeNs::millis(500);
  q.schedule(t, [&] { order.push_back(1) ; });      // far at schedule time
  q.schedule(TimeNs::millis(490), [&] { order.push_back(0); });
  q.run_next();  // clock reaches 490 ms; A's epoch is now inside the horizon
  q.schedule(t, [&] { order.push_back(2); });       // near at schedule time
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelFarEventBeforeMigration) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(TimeNs::millis(800), [&] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  q.cancel(id);  // still parked in its epoch bucket
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.next_time().is_infinite());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelFarEventAfterMigration) {
  // Drive the clock to just short of the far event so it migrates into the
  // heap, then cancel by the id handed out at schedule time: the id must
  // stay valid across the band transition.
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(TimeNs::millis(500), [&] { fired = true; });
  int fillers = 0;
  q.schedule(TimeNs::millis(496), [&] { ++fillers; });
  q.run_next();  // clock at 496 ms: the 500 ms epoch has been migrated
  EXPECT_EQ(q.size(), 1u);
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
  EXPECT_EQ(fillers, 1);
}

TEST(EventQueue, RescheduleAcrossTheMigrationHorizon) {
  // The RTO re-arm pattern: cancel the parked far timer and schedule a
  // replacement — far again, then finally near. Only the last incarnation
  // fires, exactly once, at its own time.
  EventQueue q;
  std::vector<int> order;
  EventId rto = q.schedule(TimeNs::millis(900), [&] { order.push_back(-1); });
  for (int i = 1; i <= 5; ++i) {
    q.cancel(rto);
    rto = q.schedule(TimeNs::millis(900 + i), [&] { order.push_back(-2); });
  }
  q.cancel(rto);
  rto = q.schedule(TimeNs::millis(10), [&] { order.push_back(1); });
  q.schedule(TimeNs::millis(20), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ResetWithPopulatedFarBand) {
  EventQueue q;
  bool fired = false;
  // Populate heap, wheel and overflow bands, with some cancels in between.
  q.schedule(TimeNs::millis(1), [&] { fired = true; });
  q.schedule(TimeNs::millis(300), [&] { fired = true; });
  const EventId far_id = q.schedule(TimeNs::millis(700), [&] { fired = true; });
  q.schedule(TimeNs::seconds(5), [&] { fired = true; });     // overflow band
  q.schedule(TimeNs::seconds(100), [&] { fired = true; });   // deep overflow
  q.cancel(far_id);
  EXPECT_EQ(q.size(), 4u);

  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.next_time().is_infinite());
  EXPECT_FALSE(fired);

  // Pre-reset ids (including far-band ones) must not cancel new events,
  // and the recycled queue keeps full two-band behavior with FIFO intact.
  std::vector<int> order;
  q.schedule(TimeNs::millis(600), [&order] { order.push_back(2); });
  q.schedule(TimeNs::millis(600), [&order] { order.push_back(3); });
  q.schedule(TimeNs::millis(2), [&order] { order.push_back(1); });
  q.cancel(far_id);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, OverflowBandRedistributesAndFires) {
  // Events far beyond the wheel span must survive the overflow →  wheel →
  // heap journey; one of them is cancelled while still parked deep in the
  // overflow band.
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimeNs::seconds(2), [&] { order.push_back(2); });
  const EventId dead = q.schedule(TimeNs::seconds(3), [&] { order.push_back(-1); });
  q.schedule(TimeNs::seconds(4), [&] { order.push_back(4); });
  q.schedule(TimeNs::seconds(10), [&] { order.push_back(10); });
  q.schedule(TimeNs::millis(5), [&] { order.push_back(0); });
  q.cancel(dead);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.next_time(), TimeNs::millis(5));
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 10}));
}

TEST(EventQueue, CancelledOverflowMinimumDoesNotDisturbLaterEvents) {
  // The earliest overflow-band event is cancelled while parked (the RTO
  // backoff pattern): when the clock passes its would-be expiry, the stale
  // handle is dropped during redistribution and the queue must carry on —
  // near events keep scheduling cheaply and the surviving deep-overflow
  // event still fires at its own time, exactly once.
  EventQueue q;
  std::vector<int> order;
  const EventId dead = q.schedule(TimeNs::seconds(3), [&] { order.push_back(-1); });
  q.schedule(TimeNs::seconds(9), [&] { order.push_back(9); });
  q.cancel(dead);
  // Walk the clock across 3 s in small steps so the cancelled epoch is
  // reached and redistributed away mid-run.
  for (int i = 1; i <= 80; ++i) {
    q.schedule(TimeNs::millis(50 * i), [&order, i] {
      if (i % 20 == 0) order.push_back(i / 20);
    });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 9}));
}

TEST(EventQueue, StressMixedBandsWithCancellations) {
  // Pseudo-random times across all three bands (0..8 s), every third event
  // cancelled up front: survivors must fire in exact (time, seq) order.
  EventQueue q;
  std::vector<std::pair<std::int64_t, int>> fired;
  std::vector<EventId> ids;
  std::vector<std::pair<std::int64_t, int>> expected;
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t t =
        static_cast<std::int64_t>((static_cast<std::uint64_t>(i) *
                                   2654435761u) %
                                  8'000'000'000ull);
    ids.push_back(q.schedule(TimeNs(t), [&fired, t, i] {
      fired.push_back({t, i});
    }));
    if (i % 3 != 0) expected.push_back({t, i});
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), expected.size());
  while (!q.empty()) q.run_next();
  std::stable_sort(expected.begin(), expected.end());
  ASSERT_EQ(fired.size(), expected.size());
  EXPECT_EQ(fired, expected);
}

TEST(EventQueue, StressManyEventsStayOrdered) {
  EventQueue q;
  std::vector<std::int64_t> times;
  // Deterministic pseudo-shuffled schedule.
  for (std::int64_t i = 0; i < 5000; ++i) {
    const std::int64_t t = (i * 2654435761u) % 100000;
    q.schedule(TimeNs(t), [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(times.size(), 5000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    ASSERT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace ccfuzz::sim
