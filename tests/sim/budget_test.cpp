// Run guards (sim::Budget): runaway scenarios truncate gracefully into a
// flagged RunResult instead of hanging the process.
#include "sim/budget.h"

#include <gtest/gtest.h>

#include <string>

#include "cca/registry.h"
#include "scenario/runner.h"

namespace ccfuzz::sim {
namespace {

scenario::ScenarioConfig base_config() {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(3);
  return cfg;
}

TEST(Budget, DefaultIsUnlimited) {
  Budget b;
  EXPECT_TRUE(b.unlimited());
  b.max_events = 10;
  EXPECT_FALSE(b.unlimited());
  b = Budget{};
  b.max_sim_time = DurationNs::seconds(1);
  EXPECT_FALSE(b.unlimited());
  b = Budget{};
  b.max_wall_time = DurationNs::millis(1);
  EXPECT_FALSE(b.unlimited());
}

TEST(Budget, TruncationReasonNames) {
  EXPECT_EQ(std::string(to_string(TruncationReason::kNone)), "none");
  EXPECT_EQ(std::string(to_string(TruncationReason::kEventLimit)),
            "event-limit");
  EXPECT_EQ(std::string(to_string(TruncationReason::kSimTimeLimit)),
            "sim-time-limit");
  EXPECT_EQ(std::string(to_string(TruncationReason::kWallDeadline)),
            "wall-deadline");
}

TEST(RunGuards, UnlimitedRunIsNotTruncated) {
  const auto r = run_scenario(base_config(), cca::make_factory("reno"), {});
  EXPECT_FALSE(r.truncated);
  EXPECT_EQ(r.truncation, TruncationReason::kNone);
}

TEST(RunGuards, EventLimitTruncatesGracefully) {
  const auto clean =
      run_scenario(base_config(), cca::make_factory("reno"), {});
  auto cfg = base_config();
  cfg.budget.max_events = 1000;
  const auto r = run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.truncation, TruncationReason::kEventLimit);
  // The run ended early but still produced a coherent, scoreable result.
  EXPECT_LT(r.cca_segments_delivered(), clean.cca_segments_delivered());
  EXPECT_GE(r.goodput_mbps(), 0.0);
}

TEST(RunGuards, EventLimitTruncationIsDeterministic) {
  auto cfg = base_config();
  cfg.budget.max_events = 2000;
  const auto a = run_scenario(cfg, cca::make_factory("cubic"), {});
  const auto b = run_scenario(cfg, cca::make_factory("cubic"), {});
  EXPECT_TRUE(a.truncated);
  EXPECT_EQ(a.truncation, b.truncation);
  EXPECT_EQ(a.cca_sent(), b.cca_sent());
  EXPECT_EQ(a.cca_segments_delivered(), b.cca_segments_delivered());
}

TEST(RunGuards, SimTimeLimitCapsTheDeadline) {
  const auto clean =
      run_scenario(base_config(), cca::make_factory("reno"), {});
  auto cfg = base_config();
  cfg.budget.max_sim_time = DurationNs::seconds(1);
  const auto r = run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.truncation, TruncationReason::kSimTimeLimit);
  EXPECT_LT(r.cca_segments_delivered(), clean.cca_segments_delivered());
}

TEST(RunGuards, SimTimeLimitLongerThanDurationIsANoop) {
  auto cfg = base_config();
  cfg.budget.max_sim_time = DurationNs::seconds(30);
  const auto r = run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_FALSE(r.truncated);
}

TEST(RunGuards, ExpiredWallDeadlineTruncates) {
  // A deadline that has already passed when the run starts: the first wall
  // check (every 4096 events) stops the run.
  auto cfg = base_config();
  cfg.duration = TimeNs::seconds(10);
  cfg.budget.max_wall_time = DurationNs(1);
  const auto r = run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.truncation, TruncationReason::kWallDeadline);
}

TEST(RunGuards, GenerousWallDeadlineDoesNotTruncate) {
  auto cfg = base_config();
  cfg.budget.max_wall_time = DurationNs::seconds(300);
  const auto r = run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_FALSE(r.truncated);
}

}  // namespace
}  // namespace ccfuzz::sim
