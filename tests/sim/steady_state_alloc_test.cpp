// Proves the simulation hot path is allocation-free in steady state: once
// the event slab, heap and packet pool have reached their high-water marks,
// schedule/cancel/run and pooled packet movement never touch the allocator.
//
// The global operator new/delete replacements below count every allocation
// in this test binary; gtest runs each TEST in its own process under ctest,
// so the counter is only observed by this file's tests.
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include <gtest/gtest.h>

#include "cca/fixed_window.h"
#include "cca/registry.h"
#include "fuzz/elite_archive.h"
#include "fuzz/evaluator.h"
#include "fuzz/score.h"
#include "net/delay_pipe.h"
#include "net/packet_pool.h"
#include "scenario/dumbbell.h"
#include "scenario/runner.h"
#include "sim/simulator.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"
#include "trace/mutation.h"
#include "util/recycle.h"
#include "util/rng.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ccfuzz::sim {
namespace {

/// One round of dumbbell-shaped churn: near events, a re-armed far timer,
/// and interleaved clock stepping.
void churn(Simulator& sim) {
  std::int64_t fired = 0;
  EventId timer = 0;
  for (int i = 0; i < 64; ++i) {
    sim.schedule_in(DurationNs::micros(i), [&fired] { ++fired; });
  }
  for (int i = 0; i < 2'000; ++i) {
    sim.run_until(sim.now() + DurationNs::micros(1));
    sim.schedule_in(DurationNs::micros(64), [&fired] { ++fired; });
    if (i % 8 == 0) {
      sim.cancel(timer);
      timer = sim.schedule_in(DurationNs::millis(1), [&fired] { ++fired; });
    }
  }
  sim.run_all();
  ASSERT_GT(fired, 0);
}

TEST(SteadyStateAllocation, EventQueueScheduleNeverAllocatesWhenWarm) {
  Simulator sim;
  churn(sim);  // reach the slab/heap high-water mark
  sim.reset();

  const std::size_t before = g_allocations.load();
  churn(sim);
  EXPECT_EQ(g_allocations.load(), before)
      << "warm schedule/cancel/run_until must not allocate";
}

TEST(SteadyStateAllocation, PacketPoolAndDelayPipeReuseSlots) {
  Simulator sim;
  net::PacketPool pool;
  std::int64_t delivered = 0;
  net::DelayPipe pipe(sim, DurationNs::millis(1),
                      [&delivered](net::Packet&&) { ++delivered; }, &pool);

  auto round = [&] {
    for (int i = 0; i < 200; ++i) {
      net::Packet p;
      p.id = static_cast<std::uint64_t>(i);
      pipe.send(std::move(p));
      sim.run_until(sim.now() + DurationNs::micros(100));
    }
    sim.run_all();
  };
  round();  // warm pool + slab
  sim.reset();
  pool.clear();

  const std::size_t before = g_allocations.load();
  round();
  EXPECT_EQ(g_allocations.load(), before)
      << "pooled packet flight must not allocate when warm";
  EXPECT_EQ(delivered, 400);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(SteadyStateAllocation, SenderSegmentRingNeverAllocatesWhenWarm) {
  // A sender wired straight to a receiver through pool-backed pipes: once
  // the seq-keyed segment ring has grown to the flow's in-flight high-water
  // mark (and the event slab/pool are warm), continued ack-clocked sending
  // must not touch the allocator — the deque predecessor allocated a chunk
  // every few segments forever.
  Simulator sim;
  net::PacketPool pool;
  tcp::TcpReceiver* receiver_ptr = nullptr;
  tcp::TcpSender* sender_ptr = nullptr;

  net::DelayPipe data_pipe(
      sim, DurationNs::millis(10),
      [&receiver_ptr](net::Packet&& p) { receiver_ptr->on_data_packet(p); },
      &pool);
  net::DelayPipe ack_pipe(
      sim, DurationNs::millis(10),
      [&sender_ptr](net::Packet&& p) { sender_ptr->on_ack_packet(p); },
      &pool);

  tcp::TcpReceiver receiver(
      sim, tcp::TcpReceiver::Config{},
      [&ack_pipe](net::Packet&& a) { ack_pipe.send(std::move(a)); });
  tcp::TcpSender sender(
      sim, tcp::TcpSender::Config{}, std::make_unique<cca::FixedWindow>(40),
      [&data_pipe](net::Packet&& p) { data_pipe.send(std::move(p)); });
  receiver_ptr = &receiver;
  sender_ptr = &sender;

  sender.start(TimeNs::zero());
  // Ring/slab/pool high-water mark. This flow is perfectly periodic (ACK
  // bursts every ~21 ms ≈ 5 far-band epochs), so its re-armed RTO/delack
  // timers park in every 5th epoch bucket only — and because one wheel
  // revolution (256 epochs) shifts that residue class by one, the buckets
  // reach their per-epoch high-water marks only after ~5 revolutions
  // (~5.4 s) plus the 1 s RTO lead. Production contexts warm in one run
  // (reset + rerun replays the same schedule); a single continuous flow
  // needs the longer warm-up.
  sim.run_until(TimeNs::seconds(7));

  const std::size_t before = g_allocations.load();
  const std::int64_t sent_before = sender.total_sent();
  sim.run_until(TimeNs::seconds(9));
  EXPECT_EQ(g_allocations.load(), before)
      << "warm ack-clocked sending must not allocate";
  EXPECT_GT(sender.total_sent(), sent_before + 1000);
  EXPECT_EQ(sender.total_retransmissions(), 0);
}

TEST(SteadyStateAllocation, FourFlowScenarioSteadyStateIsAllocationFree) {
  // A 4-flow dumbbell on warm RunContext-style buffers: after one full run
  // (slab/pool/recorder high-water marks) and the new run's slow-start
  // transient (fresh senders grow their segment rings once), the multi-flow
  // simulation loop proper allocates nothing.
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(3);
  cfg.net.queue_capacity = 500;  // 4 × rwnd (87) fits: lossless steady state
  cfg.flows.resize(4);
  const auto factory = cca::make_factory("reno");

  Simulator sim;
  net::PacketPool pool;
  net::BottleneckRecorder recorder;

  auto run_once = [&](TimeNs measure_from) {
    sim.reset();
    // Arm every run guard (generously — no golden run hits them): the
    // budget checks must stay branch-only, never allocating per event.
    Budget budget;
    budget.max_events = 1'000'000'000ull;
    budget.max_wall_time = DurationNs::seconds(300);
    sim.arm_budget(budget);
    pool.clear();
    recorder.clear();
    scenario::Dumbbell db(sim, cfg, factory, {}, &pool, &recorder);
    db.start();
    sim.run_until(measure_from);
    const std::size_t before = g_allocations.load();
    sim.run_until(cfg.duration);
    const std::size_t after = g_allocations.load();
    std::int64_t delivered = 0;
    for (std::size_t i = 0; i < db.flow_count(); ++i) {
      delivered += db.receiver(i).segments_received();
    }
    EXPECT_GT(delivered, 1000);
    EXPECT_EQ(db.queue().stats().total_dropped(), 0);
    return after - before;
  };

  run_once(cfg.duration);  // warm everything: slab, pool, recorder vectors
  const std::size_t steady = run_once(TimeNs::seconds(1));
  EXPECT_EQ(steady, 0u)
      << "4-flow steady state (post slow-start) must not allocate";
}

TEST(SteadyStateAllocation, EvaluateBatchGenerationIsAllocationFree) {
  // The ISSUE-4 acceptance bar: one full GA evaluation batch — run the
  // simulation end to end, score it, summarize into Evaluations — on a warm
  // thread context in metrics-only mode performs ZERO heap allocations.
  // This covers the whole pipeline: trace ingestion, Dumbbell component
  // reuse (queue/link/pipes/senders/receivers reset in place), recycled CCA
  // instances, lossy-run receiver reordering on flat buffers, streaming
  // metrics, scoring from incremental aggregates, and the result handoff
  // through the context-owned RunResult.
  if (!util::kRecycleEnabled) {
    GTEST_SKIP() << "CCA recycling is bypassed in sanitized builds";
  }
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  // Guards armed (generously, never hit): the budget checks on the event
  // loop must not cost an allocation on the warm path either.
  cfg.budget.max_events = 1'000'000'000ull;
  cfg.budget.max_wall_time = DurationNs::seconds(300);
  fuzz::TraceEvaluator evaluator(
      cfg, cca::make_factory("reno"),
      std::make_shared<fuzz::LowUtilizationScore>(),
      fuzz::TraceScoreWeights{.per_packet = 1e-4, .per_drop = 1e-3});

  trace::TrafficTraceModel model;
  model.duration = cfg.duration;
  model.max_packets = 1200;
  Rng rng(29);
  std::vector<trace::Trace> traces;
  for (int i = 0; i < 8; ++i) traces.push_back(model.generate(rng));

  std::vector<fuzz::Evaluation> out(traces.size());
  std::vector<fuzz::BatchItem> items(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    items[i] = {&evaluator, &traces[i], &out[i]};
  }

  // Two warm-up generations: the first takes every buffer (slab, pool,
  // segment rings, reorder buffers, metric bins, Evaluation vectors) to its
  // high-water mark across the whole batch.
  fuzz::evaluate_batch(items, /*parallel=*/false);
  fuzz::evaluate_batch(items, /*parallel=*/false);

  const std::size_t before = g_allocations.load();
  fuzz::evaluate_batch(items, /*parallel=*/false);
  EXPECT_EQ(g_allocations.load(), before)
      << "a warm metrics-only evaluation generation must not allocate";

  // The generation really simulated: adversarial traffic induced losses and
  // the scores moved away from the clean-link value.
  EXPECT_GT(out.front().cca_sent, 0);
  std::int64_t drops = 0;
  for (const auto& e : out) drops += e.cca_drops;
  EXPECT_GT(drops, 0) << "warm-path coverage needs lossy runs";
}

TEST(SteadyStateAllocation, AlternatingCellBatchIsAllocationFreeWhenWarm) {
  // The cross-cell campaign pattern: one worker thread alternates between
  // cells whose ScenarioConfigs have wildly different shapes — single-flow
  // vs 4-flow with staggered starts, different CCAs, a different metrics
  // window. Each evaluator owns a per-thread context cache slot
  // (scenario::allocate_context_key), so interleaving them must never
  // reshape a shared context's buffers: a warm mixed generation performs
  // zero heap allocations, exactly like a homogeneous one.
  if (!util::kRecycleEnabled) {
    GTEST_SKIP() << "CCA recycling is bypassed in sanitized builds";
  }
  scenario::ScenarioConfig single;
  single.duration = TimeNs::seconds(2);
  fuzz::TraceEvaluator eval_single(single, cca::make_factory("reno"),
                                   std::make_shared<fuzz::LowUtilizationScore>());

  scenario::ScenarioConfig multi;
  multi.duration = TimeNs::seconds(2);
  multi.metrics_window = DurationNs::millis(250);
  multi.flows.resize(4);
  multi.flows[1].cca = "cubic";
  multi.flows[1].start = TimeNs::millis(250);
  multi.flows[2].cca = "bbr";
  multi.flows[2].start = TimeNs::millis(500);
  multi.flows[3].start = TimeNs::millis(750);
  fuzz::TraceEvaluator eval_multi(multi, cca::make_factory("reno"),
                                  std::make_shared<fuzz::JainFairnessScore>());

  trace::TrafficTraceModel model;
  model.duration = TimeNs::seconds(2);
  model.max_packets = 800;
  Rng rng(37);
  std::vector<trace::Trace> traces;
  for (int i = 0; i < 6; ++i) traces.push_back(model.generate(rng));

  // An interleaved batch: single, multi, single, multi, ...
  std::vector<fuzz::Evaluation> out(traces.size());
  std::vector<fuzz::BatchItem> items(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    items[i] = {i % 2 == 0 ? &eval_single : &eval_multi, &traces[i], &out[i]};
  }

  fuzz::evaluate_batch(items, /*parallel=*/false);
  fuzz::evaluate_batch(items, /*parallel=*/false);

  const std::size_t before = g_allocations.load();
  fuzz::evaluate_batch(items, /*parallel=*/false);
  EXPECT_EQ(g_allocations.load(), before)
      << "a warm alternating-cell generation must not allocate";

  EXPECT_EQ(out[0].flow_goodput_mbps.size(), 1u);
  EXPECT_EQ(out[1].flow_goodput_mbps.size(), 4u);
  EXPECT_GT(out[1].cca_sent, 0);
}

TEST(SteadyStateAllocation, MapElitesGenerationIsAllocationFreeWhenWarm) {
  // Coverage-guided cells ride the same zero-allocation hot path: with the
  // behavior probe armed, a warm generation — evaluate the batch (probe
  // accumulation included) and offer every member to the MAP-Elites archive
  // — performs zero heap allocations. The probe is fixed-size state inside
  // the context-owned RunResult; archive replacement copy-assigns into the
  // incumbent cell's buffers, so once genome sizes and Evaluation vectors
  // have hit their high-water marks nothing touches the allocator.
  if (!util::kRecycleEnabled) {
    GTEST_SKIP() << "CCA recycling is bypassed in sanitized builds";
  }
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.coverage = true;
  fuzz::TraceEvaluator evaluator(
      cfg, cca::make_factory("reno"),
      std::make_shared<fuzz::LowUtilizationScore>(),
      fuzz::TraceScoreWeights{.per_packet = 1e-4, .per_drop = 1e-3});

  trace::TrafficTraceModel model;
  model.duration = cfg.duration;
  model.max_packets = 1000;
  model.initial_packets = 1000;  // fixed-size genomes: warm inserts reuse
  Rng rng(43);
  std::vector<trace::Trace> traces;
  for (int i = 0; i < 8; ++i) traces.push_back(model.generate(rng));

  std::vector<fuzz::Evaluation> out(traces.size());
  std::vector<fuzz::BatchItem> items(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    items[i] = {&evaluator, &traces[i], &out[i]};
  }
  fuzz::EliteArchive archive;

  auto generation = [&](double score_shift) {
    fuzz::evaluate_batch(items, /*parallel=*/false);
    for (std::size_t i = 0; i < traces.size(); ++i) {
      // Shift scores so later rounds displace incumbents: replacement (the
      // genome + Evaluation copy into the cell) is the allocating candidate,
      // not the no-op tie path.
      out[i].score.performance += score_shift;
      archive.insert(traces[i], out[i]);
    }
  };

  generation(0.0);  // warm: contexts, probe, archive cells
  generation(1.0);  // warm the replacement path too

  const std::size_t before = g_allocations.load();
  generation(2.0);
  EXPECT_EQ(g_allocations.load(), before)
      << "a warm MAP-Elites generation (probe + archive insert) must not "
         "allocate";

  EXPECT_GT(archive.filled(), 0u);
  EXPECT_GT(archive.union_bits(), 0u);
  ASSERT_TRUE(out.front().coverage.valid);
  EXPECT_GT(out.front().coverage.bits, 0u);
}

TEST(SteadyStateAllocation, MultiFlowEvaluateIsAllocationFreeWhenWarm) {
  // Fairness-mode cells run multi-flow scenarios through the same path; a
  // 2-flow late-starter evaluation must be allocation-free too once warm.
  if (!util::kRecycleEnabled) {
    GTEST_SKIP() << "CCA recycling is bypassed in sanitized builds";
  }
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.flows.resize(2);
  cfg.flows[1].start = TimeNs::millis(500);
  fuzz::TraceEvaluator evaluator(cfg, cca::make_factory("reno"),
                                 std::make_shared<fuzz::JainFairnessScore>());

  trace::TrafficTraceModel model;
  model.duration = cfg.duration;
  model.max_packets = 600;
  Rng rng(31);
  const trace::Trace t = model.generate(rng);

  fuzz::Evaluation e;
  evaluator.evaluate_into(t, e);
  evaluator.evaluate_into(t, e);

  const std::size_t before = g_allocations.load();
  evaluator.evaluate_into(t, e);
  EXPECT_EQ(g_allocations.load(), before)
      << "warm 2-flow fairness evaluation must not allocate";
  EXPECT_EQ(e.flow_goodput_mbps.size(), 2u);
}

}  // namespace
}  // namespace ccfuzz::sim
