// Proves the simulation hot path is allocation-free in steady state: once
// the event slab, heap and packet pool have reached their high-water marks,
// schedule/cancel/run and pooled packet movement never touch the allocator.
//
// The global operator new/delete replacements below count every allocation
// in this test binary; gtest runs each TEST in its own process under ctest,
// so the counter is only observed by this file's tests.
#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "net/delay_pipe.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ccfuzz::sim {
namespace {

/// One round of dumbbell-shaped churn: near events, a re-armed far timer,
/// and interleaved clock stepping.
void churn(Simulator& sim) {
  std::int64_t fired = 0;
  EventId timer = 0;
  for (int i = 0; i < 64; ++i) {
    sim.schedule_in(DurationNs::micros(i), [&fired] { ++fired; });
  }
  for (int i = 0; i < 2'000; ++i) {
    sim.run_until(sim.now() + DurationNs::micros(1));
    sim.schedule_in(DurationNs::micros(64), [&fired] { ++fired; });
    if (i % 8 == 0) {
      sim.cancel(timer);
      timer = sim.schedule_in(DurationNs::millis(1), [&fired] { ++fired; });
    }
  }
  sim.run_all();
  ASSERT_GT(fired, 0);
}

TEST(SteadyStateAllocation, EventQueueScheduleNeverAllocatesWhenWarm) {
  Simulator sim;
  churn(sim);  // reach the slab/heap high-water mark
  sim.reset();

  const std::size_t before = g_allocations.load();
  churn(sim);
  EXPECT_EQ(g_allocations.load(), before)
      << "warm schedule/cancel/run_until must not allocate";
}

TEST(SteadyStateAllocation, PacketPoolAndDelayPipeReuseSlots) {
  Simulator sim;
  net::PacketPool pool;
  std::int64_t delivered = 0;
  net::DelayPipe pipe(sim, DurationNs::millis(1),
                      [&delivered](net::Packet&&) { ++delivered; }, &pool);

  auto round = [&] {
    for (int i = 0; i < 200; ++i) {
      net::Packet p;
      p.id = static_cast<std::uint64_t>(i);
      pipe.send(std::move(p));
      sim.run_until(sim.now() + DurationNs::micros(100));
    }
    sim.run_all();
  };
  round();  // warm pool + slab
  sim.reset();
  pool.clear();

  const std::size_t before = g_allocations.load();
  round();
  EXPECT_EQ(g_allocations.load(), before)
      << "pooled packet flight must not allocate when warm";
  EXPECT_EQ(delivered, 400);
  EXPECT_EQ(pool.in_use(), 0u);
}

}  // namespace
}  // namespace ccfuzz::sim
