// Tests for the GA driver: population mechanics, islands, migration,
// determinism, and actual convergence on a small adversarial search.
#include "fuzz/fuzzer.h"

#include <gtest/gtest.h>

#include "cca/registry.h"

namespace ccfuzz::fuzz {
namespace {

std::shared_ptr<const TraceModel> small_traffic_model() {
  trace::TrafficTraceModel m;
  m.max_packets = 300;
  m.duration = TimeNs::seconds(2);
  return std::make_shared<TrafficModel>(m);
}

TraceEvaluator small_evaluator() {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.net.queue_capacity = 25;
  return TraceEvaluator(cfg, cca::make_factory("reno"),
                        std::make_shared<LowUtilizationScore>(),
                        TraceScoreWeights{.per_packet = 1e-4});
}

GaConfig small_config() {
  GaConfig cfg;
  cfg.population = 24;
  cfg.islands = 3;
  cfg.max_generations = 4;
  cfg.migration_interval = 2;
  cfg.seed = 99;
  return cfg;
}

TEST(Fuzzer, StepProducesStatsAndBest) {
  Fuzzer f(small_config(), small_traffic_model(), small_evaluator());
  const GenStats gs = f.step();
  EXPECT_EQ(gs.generation, 0);
  EXPECT_EQ(gs.evaluations, 24);
  EXPECT_GE(gs.best_score, gs.mean_score);
  EXPECT_TRUE(f.best().evaluated);
  // Single-flow cells carry a neutral fairness series.
  EXPECT_DOUBLE_EQ(gs.topk_mean_jain_fairness, 1.0);
  ASSERT_EQ(gs.topk_mean_flow_goodput_mbps.size(), 1u);
  EXPECT_NEAR(gs.topk_mean_flow_goodput_mbps[0], gs.topk_mean_goodput_mbps,
              1e-12);
}

TEST(Fuzzer, GenStatsCarryPerFlowFairnessSeries) {
  // A 2-flow fairness cell: the history series must expose both flows'
  // goodputs and a real Jain index (ROADMAP follow-up: GenStats were
  // primary-flow-centric).
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.flows.resize(2);
  cfg.flows[1].start = TimeNs::millis(500);
  TraceEvaluator ev(cfg, cca::make_factory("reno"),
                    std::make_shared<JainFairnessScore>());
  GaConfig ga = small_config();
  ga.max_generations = 1;
  Fuzzer f(ga, small_traffic_model(), std::move(ev));
  const GenStats gs = f.step();
  ASSERT_EQ(gs.topk_mean_flow_goodput_mbps.size(), 2u);
  EXPECT_GT(gs.topk_mean_flow_goodput_mbps[0], 0.0);
  EXPECT_GT(gs.topk_mean_flow_goodput_mbps[1], 0.0);
  EXPECT_GT(gs.topk_mean_jain_fairness, 0.0);
  EXPECT_LE(gs.topk_mean_jain_fairness, 1.0);
  // The late starter shares the mean goodput split.
  EXPECT_NEAR(gs.topk_mean_flow_goodput_mbps[0], gs.topk_mean_goodput_mbps,
              1e-12);
}

TEST(Fuzzer, PopulationSizeConservedAcrossGenerations) {
  Fuzzer f(small_config(), small_traffic_model(), small_evaluator());
  for (int g = 0; g < 3; ++g) f.step();
  const auto top = f.top_members(1000);
  // Members bred in the final step are unevaluated and excluded; elites
  // persist. The population itself stays at 24 (8 per island).
  EXPECT_GE(top.size(), 3u);  // at least the elites
}

TEST(Fuzzer, BestScoreNeverDecreasesWithElitism) {
  Fuzzer f(small_config(), small_traffic_model(), small_evaluator());
  double best = -1e300;
  for (int g = 0; g < 4; ++g) {
    const GenStats gs = f.step();
    EXPECT_GE(gs.best_score, best - 1e-9)
        << "elites must preserve the best trace";
    best = std::max(best, gs.best_score);
  }
}

TEST(Fuzzer, DeterministicForSeed) {
  auto run_once = [] {
    Fuzzer f(small_config(), small_traffic_model(), small_evaluator());
    f.step();
    f.step();
    return f.history();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].best_score, b[i].best_score);
    EXPECT_DOUBLE_EQ(a[i].mean_score, b[i].mean_score);
  }
}

TEST(Fuzzer, DeterministicRegardlessOfParallelism) {
  auto run_once = [](bool parallel) {
    GaConfig cfg = small_config();
    cfg.parallel = parallel;
    Fuzzer f(cfg, small_traffic_model(), small_evaluator());
    f.step();
    f.step();
    return f.history().back().best_score;
  };
  EXPECT_DOUBLE_EQ(run_once(true), run_once(false));
}

TEST(Fuzzer, DifferentSeedsDiverge) {
  GaConfig c1 = small_config();
  GaConfig c2 = small_config();
  c2.seed = 12345;
  Fuzzer f1(c1, small_traffic_model(), small_evaluator());
  Fuzzer f2(c2, small_traffic_model(), small_evaluator());
  f1.step();
  f2.step();
  EXPECT_NE(f1.history()[0].mean_score, f2.history()[0].mean_score);
}

TEST(Fuzzer, RunHonoursMaxGenerations) {
  Fuzzer f(small_config(), small_traffic_model(), small_evaluator());
  const auto& hist = f.run();
  EXPECT_EQ(hist.size(), 4u);
  EXPECT_EQ(f.generation(), 4);
}

TEST(Fuzzer, PatienceStopsEarlyOnPlateau) {
  GaConfig cfg = small_config();
  cfg.max_generations = 50;
  cfg.patience = 2;
  Fuzzer f(cfg, small_traffic_model(), small_evaluator());
  const auto& hist = f.run();
  EXPECT_LT(hist.size(), 50u);
}

TEST(Fuzzer, GaImprovesScoreOverGenerations) {
  // The core promise: evolution finds worse-for-the-CCA traces than random
  // initialization. Use a queue-choking objective against Reno.
  GaConfig cfg;
  cfg.population = 30;
  cfg.islands = 3;
  cfg.max_generations = 6;
  cfg.seed = 2024;
  Fuzzer f(cfg, small_traffic_model(), small_evaluator());
  const auto& hist = f.run();
  EXPECT_GT(hist.back().best_score, hist.front().mean_score)
      << "GA failed to improve over the random initial pool";
}

TEST(Fuzzer, LinkModeRunsWithoutCrossover) {
  trace::LinkTraceModel lm;
  lm.total_packets = 2000;  // 12 Mbps over 2 s
  lm.duration = TimeNs::seconds(2);
  GaConfig cfg = small_config();
  cfg.crossover_fraction = 0.5;  // must be ignored for link mode
  scenario::ScenarioConfig scfg;
  scfg.mode = scenario::FuzzMode::kLink;
  scfg.duration = TimeNs::seconds(2);
  TraceEvaluator ev(scfg, cca::make_factory("reno"),
                    std::make_shared<LowUtilizationScore>());
  Fuzzer f(cfg, std::make_shared<LinkModel>(lm), ev);
  const GenStats gs = f.step();
  EXPECT_EQ(gs.evaluations, 24);
  f.step();  // breeding with crossover disabled must still fill islands
  EXPECT_EQ(f.history().size(), 2u);
}

TEST(Fuzzer, AnnealingConfigRuns) {
  GaConfig cfg = small_config();
  cfg.anneal = true;
  cfg.anneal_cfg.sigma = 2.0;
  cfg.anneal_cfg.strength = 0.3;
  Fuzzer f(cfg, small_traffic_model(), small_evaluator());
  f.step();
  f.step();
  EXPECT_EQ(f.history().size(), 2u);
}

TEST(Fuzzer, StalledCountTracked) {
  Fuzzer f(small_config(), small_traffic_model(), small_evaluator());
  const GenStats gs = f.step();
  EXPECT_GE(gs.stalled_count, 0);
  EXPECT_LE(gs.stalled_count, 24);
}

TEST(Fuzzer, TopMembersSortedBestFirst) {
  Fuzzer f(small_config(), small_traffic_model(), small_evaluator());
  f.step();
  const auto top = f.top_members(10);
  ASSERT_GE(top.size(), 2u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].eval.score.total(), top[i].eval.score.total());
  }
}

TEST(Fuzzer, TopMembersMergeAcrossIslands) {
  // 24 members over 3 islands of 8: a global top-10 can only exist if the
  // ranking crosses island boundaries, and it must equal the best-first
  // sort of the whole evaluated population.
  Fuzzer f(small_config(), small_traffic_model(), small_evaluator());
  f.run();  // the trailing evaluate pass leaves the whole population ranked
  const auto all = f.top_members(1000);
  const auto top = f.top_members(10);
  ASSERT_EQ(top.size(), 10u);
  ASSERT_GT(all.size(), top.size()) << "more than one island must contribute";
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_DOUBLE_EQ(top[i].eval.score.total(), all[i].eval.score.total());
  }
  // No island-local ordering artifact: every returned member ranks at least
  // as high as every excluded one.
  for (std::size_t i = top.size(); i < all.size(); ++i) {
    EXPECT_LE(all[i].eval.score.total(), top.back().eval.score.total());
  }
  EXPECT_DOUBLE_EQ(top.front().eval.score.total(),
                   f.best().eval.score.total());
}

TEST(Fuzzer, StagedSteppingMatchesStep) {
  // The campaign scheduler's contract: pending_members → external fill →
  // advance_generation replays step() exactly.
  auto direct = Fuzzer(small_config(), small_traffic_model(),
                       small_evaluator());
  auto staged = Fuzzer(small_config(), small_traffic_model(),
                       small_evaluator());
  const TraceEvaluator ev = small_evaluator();
  for (int g = 0; g < 3; ++g) {
    const GenStats want = direct.step();
    const auto pending = staged.pending_members();
    for (Member* m : pending) {
      m->eval = ev.evaluate(m->genome);
      m->evaluated = true;
    }
    staged.note_external_evaluations(
        static_cast<std::int64_t>(pending.size()));
    const GenStats got = staged.advance_generation();
    EXPECT_DOUBLE_EQ(got.best_score, want.best_score);
    EXPECT_DOUBLE_EQ(got.mean_score, want.mean_score);
    EXPECT_EQ(got.evaluations, want.evaluations);
    EXPECT_EQ(got.generation, want.generation);
  }
}

}  // namespace
}  // namespace ccfuzz::fuzz
