// Round-trip tests for the GA state serialization (state_io + Fuzzer
// save_state/restore_state): a restored fuzzer must continue the search
// bit-identically to one that never stopped.
#include "fuzz/state_io.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "campaign/campaign.h"
#include "fuzz/fuzzer.h"
#include "fuzz/score.h"
#include "trace/hash.h"

namespace ccfuzz::fuzz {
namespace {

Evaluation sample_eval() {
  Evaluation e;
  e.score = {-3.25, 0.125};
  e.goodput_mbps = 7.123456789012345;
  e.cca_sent = 1234;
  e.cca_delivered = 1200;
  e.cca_drops = 34;
  e.cross_sent = 55;
  e.cross_drops = 5;
  e.rto_count = 2;
  e.p10_delay_s = 0.004321;
  e.stalled = true;
  e.truncated = true;
  e.truncation = sim::TruncationReason::kEventLimit;
  e.quarantined = true;
  e.jain_fairness = 0.875;
  e.flow_goodput_mbps = {3.5, 3.623456789};
  e.coverage.valid = true;
  e.coverage.bits = 42;
  e.coverage.descriptor.state_transitions = 3;
  e.coverage.descriptor.rtt_spread = 7;
  e.coverage.bitmap.words[0] = 0xdeadbeefULL;
  e.coverage.bitmap.words[coverage::CoverageBitmap::kWords - 1] = 0x1;
  return e;
}

TEST(StateIo, EvalRoundTripsExactly) {
  const Evaluation in = sample_eval();
  std::stringstream ss;
  state_io::write_eval(ss, in);
  Evaluation out;
  ASSERT_FALSE(state_io::read_eval(ss, out));
  EXPECT_EQ(out.score.performance, in.score.performance);
  EXPECT_EQ(out.score.trace, in.score.trace);
  EXPECT_EQ(out.goodput_mbps, in.goodput_mbps);
  EXPECT_EQ(out.cca_sent, in.cca_sent);
  EXPECT_EQ(out.stalled, in.stalled);
  EXPECT_EQ(out.truncated, in.truncated);
  EXPECT_EQ(out.truncation, in.truncation);
  EXPECT_EQ(out.quarantined, in.quarantined);
  EXPECT_EQ(out.jain_fairness, in.jain_fairness);
  EXPECT_EQ(out.flow_goodput_mbps, in.flow_goodput_mbps);
  EXPECT_EQ(out.coverage.valid, in.coverage.valid);
  EXPECT_EQ(out.coverage.bits, in.coverage.bits);
  EXPECT_EQ(out.coverage.descriptor.state_transitions,
            in.coverage.descriptor.state_transitions);
  EXPECT_EQ(out.coverage.bitmap.words[0], in.coverage.bitmap.words[0]);
}

TEST(StateIo, MemberRoundTripsGenomeByHash) {
  Member m;
  m.genome.kind = trace::TraceKind::kTraffic;
  m.genome.duration = TimeNs::seconds(2);
  m.genome.stamps = {TimeNs::millis(10), TimeNs::millis(20),
                     TimeNs::millis(1999)};
  m.eval = sample_eval();
  m.evaluated = true;
  m.novelty = 0.25;

  std::stringstream ss;
  state_io::write_member(ss, m);
  Member out;
  ASSERT_FALSE(state_io::read_member(ss, out));
  EXPECT_EQ(out.evaluated, m.evaluated);
  EXPECT_EQ(out.novelty, m.novelty);
  EXPECT_EQ(trace::hash(out.genome), trace::hash(m.genome));
  EXPECT_EQ(out.eval.score.performance, m.eval.score.performance);
}

TEST(StateIo, GenStatsRoundTripExactly) {
  GenStats gs;
  gs.generation = 7;
  gs.best_score = -1.2345678901234567;
  gs.mean_score = -5.5;
  gs.topk_mean_packets_sent = 812.5;
  gs.topk_mean_goodput_mbps = 3.25;
  gs.topk_mean_jain_fairness = 0.99;
  gs.topk_mean_flow_goodput_mbps = {1.5, 1.75};
  gs.stalled_count = 3;
  gs.evaluations = 640;
  gs.archive_cells = 12;
  gs.archive_new_cells = 2;
  gs.archive_improved = 1;
  gs.coverage_bits = 99;

  std::stringstream ss;
  state_io::write_genstats(ss, gs);
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(ss, line)));
  GenStats out;
  ASSERT_FALSE(state_io::parse_genstats(line, out));
  EXPECT_EQ(out.generation, gs.generation);
  EXPECT_EQ(out.best_score, gs.best_score);
  EXPECT_EQ(out.mean_score, gs.mean_score);
  EXPECT_EQ(out.topk_mean_flow_goodput_mbps, gs.topk_mean_flow_goodput_mbps);
  EXPECT_EQ(out.evaluations, gs.evaluations);
  EXPECT_EQ(out.coverage_bits, gs.coverage_bits);
}

TEST(StateIo, ReadEvalRejectsGarbage) {
  std::istringstream empty("");
  Evaluation e;
  EXPECT_EQ(state_io::read_eval(empty, e).code, Error::Code::kTruncated);
  std::istringstream junk("# eval not-a-number\n");
  EXPECT_EQ(state_io::read_eval(junk, e).code, Error::Code::kParse);
}

// --- Fuzzer save/restore -----------------------------------------------------

fuzz::GaConfig tiny_ga() {
  GaConfig ga;
  ga.population = 12;
  ga.islands = 2;
  ga.max_generations = 6;
  ga.seed = 31;
  return ga;
}

campaign::CellConfig tiny_cell(bool coverage) {
  campaign::CellConfig cell;
  cell.cca = "reno";
  cell.scenario.duration = TimeNs::seconds(1);
  cell.scenario.coverage = coverage;
  cell.score = std::make_shared<LowGoodputScore>();
  cell.traffic_model.max_packets = 150;
  cell.traffic_model.initial_packets = 75;
  cell.ga = tiny_ga();
  return cell;
}

Fuzzer make_fuzzer(bool coverage = false) {
  const campaign::CellConfig cell = tiny_cell(coverage);
  return Fuzzer(cell.ga, campaign::make_trace_model(cell),
                campaign::make_evaluator(cell));
}

TEST(FuzzerState, RestoredFuzzerContinuesBitIdentically) {
  // Reference: run 6 generations straight through.
  Fuzzer reference = make_fuzzer();
  for (int g = 0; g < 6; ++g) reference.step();

  // Candidate: run 3, snapshot, restore into a fresh fuzzer, run 3 more.
  Fuzzer first_half = make_fuzzer();
  for (int g = 0; g < 3; ++g) first_half.step();
  std::stringstream snapshot;
  first_half.save_state(snapshot);

  Fuzzer second_half = make_fuzzer();
  ASSERT_FALSE(second_half.restore_state(snapshot));
  EXPECT_EQ(second_half.generation(), 3);
  for (int g = 0; g < 3; ++g) second_half.step();

  ASSERT_EQ(second_half.history().size(), reference.history().size());
  for (std::size_t g = 0; g < reference.history().size(); ++g) {
    EXPECT_EQ(second_half.history()[g].best_score,
              reference.history()[g].best_score)
        << "generation " << g;
    EXPECT_EQ(second_half.history()[g].mean_score,
              reference.history()[g].mean_score);
    EXPECT_EQ(second_half.history()[g].evaluations,
              reference.history()[g].evaluations);
  }
  EXPECT_EQ(trace::hash(second_half.best().genome),
            trace::hash(reference.best().genome));
}

TEST(FuzzerState, CoverageArchiveSurvivesTheRoundTrip) {
  Fuzzer a = make_fuzzer(/*coverage=*/true);
  for (int g = 0; g < 3; ++g) a.step();
  ASSERT_NE(a.archive(), nullptr);
  const std::size_t filled = a.archive()->filled();

  std::stringstream snapshot;
  a.save_state(snapshot);
  Fuzzer b = make_fuzzer(/*coverage=*/true);
  ASSERT_FALSE(b.restore_state(snapshot));
  ASSERT_NE(b.archive(), nullptr);
  EXPECT_EQ(b.archive()->filled(), filled);
  EXPECT_EQ(b.archive()->union_bits(), a.archive()->union_bits());
}

TEST(FuzzerState, RestoreRejectsShapeMismatch) {
  Fuzzer a = make_fuzzer();
  a.step();
  std::stringstream snapshot;
  a.save_state(snapshot);

  campaign::CellConfig other = tiny_cell(false);
  other.ga.islands = 3;
  Fuzzer b(other.ga, campaign::make_trace_model(other),
           campaign::make_evaluator(other));
  EXPECT_EQ(b.restore_state(snapshot).code, Error::Code::kMismatch);
}

TEST(FuzzerState, RestoreRejectsTruncatedStream) {
  Fuzzer a = make_fuzzer();
  a.step();
  std::stringstream snapshot;
  a.save_state(snapshot);
  const std::string full = snapshot.str();
  std::istringstream cut(full.substr(0, full.size() / 2));
  Fuzzer b = make_fuzzer();
  EXPECT_TRUE(static_cast<bool>(b.restore_state(cut)));
}

}  // namespace
}  // namespace ccfuzz::fuzz
