// Tests for the TraceEvaluator (simulation + scoring glue).
#include "fuzz/evaluator.h"

#include <gtest/gtest.h>

#include "cca/registry.h"
#include "trace/mutation.h"
#include "util/rng.h"

namespace ccfuzz::fuzz {
namespace {

TraceEvaluator make_evaluator(const char* cca = "reno") {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(3);
  return TraceEvaluator(cfg, cca::make_factory(cca),
                        std::make_shared<LowUtilizationScore>(),
                        TraceScoreWeights{.per_packet = 1e-4, .per_drop = 1e-3});
}

TEST(TraceEvaluator, EmptyTraceGivesCleanRun) {
  auto ev = make_evaluator();
  trace::Trace t;
  t.kind = trace::TraceKind::kTraffic;
  t.duration = TimeNs::seconds(3);
  const Evaluation e = ev.evaluate(t);
  EXPECT_GT(e.goodput_mbps, 9.0);
  EXPECT_EQ(e.cross_sent, 0);
  EXPECT_DOUBLE_EQ(e.score.trace, 0.0);
  EXPECT_FALSE(e.stalled);
}

TEST(TraceEvaluator, DeterministicEvaluation) {
  auto ev = make_evaluator();
  Rng rng(3);
  trace::TrafficTraceModel model;
  model.duration = TimeNs::seconds(3);
  model.max_packets = 1000;
  const trace::Trace t = model.generate(rng);
  const Evaluation a = ev.evaluate(t);
  const Evaluation b = ev.evaluate(t);
  EXPECT_DOUBLE_EQ(a.score.total(), b.score.total());
  EXPECT_EQ(a.cca_sent, b.cca_sent);
  EXPECT_EQ(a.cross_drops, b.cross_drops);
}

TEST(TraceEvaluator, TraceScorePenalizesHeavyTraffic) {
  auto ev = make_evaluator();
  trace::Trace light, heavy;
  light.kind = heavy.kind = trace::TraceKind::kTraffic;
  light.duration = heavy.duration = TimeNs::seconds(3);
  for (int i = 0; i < 10; ++i) light.stamps.emplace_back(TimeNs::millis(i));
  for (int i = 0; i < 2000; ++i) {
    heavy.stamps.emplace_back(TimeNs::millis(i));
  }
  const Evaluation el = ev.evaluate(light);
  const Evaluation eh = ev.evaluate(heavy);
  EXPECT_GT(el.score.trace, eh.score.trace);
}

TEST(TraceEvaluator, RunFullExposesRecorder) {
  auto ev = make_evaluator();
  trace::Trace t;
  t.kind = trace::TraceKind::kTraffic;
  t.duration = TimeNs::seconds(3);
  const auto run = ev.run_full(t);
  EXPECT_FALSE(run.recorder.egress().empty());
}

TEST(TraceEvaluator, SummaryFieldsPopulated) {
  auto ev = make_evaluator();
  trace::Trace t;
  t.kind = trace::TraceKind::kTraffic;
  t.duration = TimeNs::seconds(3);
  for (int i = 0; i < 500; ++i) t.stamps.emplace_back(TimeNs::millis(2 * i));
  const Evaluation e = ev.evaluate(t);
  EXPECT_GT(e.cca_sent, 0);
  EXPECT_GT(e.cca_delivered, 0);
  EXPECT_EQ(e.cross_sent, 500);
  EXPECT_GE(e.p10_delay_s, 0.0);
}

std::vector<trace::Trace> batch_traces(int n) {
  trace::TrafficTraceModel model;
  model.max_packets = 300;
  model.duration = TimeNs::seconds(3);
  Rng rng(17);
  std::vector<trace::Trace> ts;
  for (int i = 0; i < n; ++i) ts.push_back(model.generate(rng));
  return ts;
}

TEST(TraceEvaluator, BatchMatchesElementwiseEvaluate) {
  auto ev = make_evaluator();
  const auto ts = batch_traces(6);
  const auto batch = ev.evaluate_batch(ts);
  ASSERT_EQ(batch.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Evaluation single = ev.evaluate(ts[i]);
    EXPECT_DOUBLE_EQ(batch[i].score.total(), single.score.total());
    EXPECT_EQ(batch[i].cca_sent, single.cca_sent);
    EXPECT_EQ(batch[i].rto_count, single.rto_count);
  }
}

TEST(TraceEvaluator, BatchDeterministicAcrossCallsAndParallelism) {
  auto ev = make_evaluator();
  const auto ts = batch_traces(8);
  const auto a = ev.evaluate_batch(ts, /*parallel=*/true);
  const auto b = ev.evaluate_batch(ts, /*parallel=*/true);
  const auto serial = ev.evaluate_batch(ts, /*parallel=*/false);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].score.total(), b[i].score.total());
    EXPECT_DOUBLE_EQ(a[i].score.total(), serial[i].score.total());
    EXPECT_EQ(a[i].cca_sent, serial[i].cca_sent);
  }
}

TEST(EvaluateBatch, MixedEvaluatorsLandByIndex) {
  auto reno = make_evaluator("reno");
  auto bbr = make_evaluator("bbr");
  const auto ts = batch_traces(4);
  std::vector<Evaluation> out(2 * ts.size());
  std::vector<BatchItem> items;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    items.push_back({&reno, &ts[i], &out[2 * i]});
    items.push_back({&bbr, &ts[i], &out[2 * i + 1]});
  }
  evaluate_batch(items);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[2 * i].score.total(),
                     reno.evaluate(ts[i]).score.total());
    EXPECT_DOUBLE_EQ(out[2 * i + 1].score.total(),
                     bbr.evaluate(ts[i]).score.total());
  }
}

TEST(EvaluateBatch, EmptyBatchIsANoop) {
  evaluate_batch({});
  auto ev = make_evaluator();
  EXPECT_TRUE(ev.evaluate_batch({}).empty());
}

}  // namespace
}  // namespace ccfuzz::fuzz
