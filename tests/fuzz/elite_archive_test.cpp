// EliteArchive semantics: cell replacement rules, union-coverage novelty
// accounting, trace_io round-tripping, and the Fuzzer's coverage-guided
// search modes (kMapElites parent selection, archive seeding for resume).
#include <algorithm>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "cca/registry.h"
#include "fuzz/elite_archive.h"
#include "fuzz/fuzzer.h"
#include "fuzz/score.h"
#include "trace/hash.h"
#include "util/rng.h"

namespace ccfuzz::fuzz {
namespace {

trace::Trace make_trace(std::uint64_t seed, std::size_t n = 16) {
  trace::Trace t;
  t.kind = trace::TraceKind::kTraffic;
  t.duration = TimeNs::seconds(2);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.stamps.push_back(TimeNs(rng.uniform_int(0, t.duration.ns() - 1)));
  }
  std::sort(t.stamps.begin(), t.stamps.end());
  return t;
}

Evaluation make_eval(double score, unsigned transitions, unsigned rtt_spread,
                     std::uint32_t first_bit = 0) {
  Evaluation e;
  e.score.performance = score;
  e.coverage.valid = true;
  e.coverage.descriptor.state_transitions =
      static_cast<std::uint8_t>(transitions);
  e.coverage.descriptor.rtt_spread = static_cast<std::uint8_t>(rtt_spread);
  e.coverage.bitmap.set(first_bit);
  e.coverage.bitmap.set(first_bit + 1);
  e.coverage.bits = 2;
  return e;
}

TEST(EliteArchive, InsertFillsImprovesAndKeepsTiedIncumbents) {
  EliteArchive a;
  const trace::Trace t1 = make_trace(1), t2 = make_trace(2),
                     t3 = make_trace(3);

  const auto r1 = a.insert(t1, make_eval(1.0, 2, 3, 0));
  EXPECT_TRUE(r1.new_cell);
  EXPECT_FALSE(r1.improved);
  EXPECT_EQ(r1.fresh_bits, 2u);
  EXPECT_EQ(a.filled(), 1u);

  // Same cell, same score: the incumbent stands (elites never churn).
  const auto r2 = a.insert(t2, make_eval(1.0, 2, 3, 0));
  EXPECT_FALSE(r2.new_cell);
  EXPECT_FALSE(r2.improved);
  EXPECT_EQ(r2.fresh_bits, 0u);
  EXPECT_EQ(trace::hash(a.cell(r2.cell).genome), trace::hash(t1));

  // Same cell, higher score: displaced. New bitmap bits still count.
  const auto r3 = a.insert(t3, make_eval(2.0, 2, 3, 8));
  EXPECT_FALSE(r3.new_cell);
  EXPECT_TRUE(r3.improved);
  EXPECT_EQ(r3.fresh_bits, 2u);
  EXPECT_EQ(trace::hash(a.cell(r3.cell).genome), trace::hash(t3));
  EXPECT_EQ(a.filled(), 1u);
  EXPECT_EQ(a.union_bits(), 4u);

  // Different descriptor: a second cell.
  const auto r4 = a.insert(t2, make_eval(0.1, 7, 3, 0));
  EXPECT_TRUE(r4.new_cell);
  EXPECT_NE(r4.cell, r3.cell);
  EXPECT_EQ(a.filled(), 2u);
}

TEST(EliteArchive, InvalidCoverageIsIgnored) {
  EliteArchive a;
  Evaluation e;  // coverage.valid == false
  e.score.performance = 5.0;
  const auto r = a.insert(make_trace(1), e);
  EXPECT_FALSE(r.new_cell);
  EXPECT_EQ(a.filled(), 0u);
  EXPECT_EQ(a.union_bits(), 0u);
}

TEST(EliteArchive, CellIndexSaturatesHeavyTails) {
  coverage::BehaviorDescriptor d{};
  d.state_transitions = 200;  // far past the last bucket
  d.rtt_spread = 200;
  d.max_backoff = 200;
  d.cwnd_span = 200;
  EXPECT_EQ(EliteArchive::cell_index(d), EliteArchive::kCells - 1);
  EXPECT_EQ(EliteArchive::cell_index(coverage::BehaviorDescriptor{}), 0u);
}

TEST(EliteArchive, SaveLoadRoundTripsThroughTraceIo) {
  EliteArchive a;
  a.insert(make_trace(1, 8), make_eval(1.5, 1, 2, 0));
  a.insert(make_trace(2, 32), make_eval(-0.5, 4, 0, 40));
  a.insert(make_trace(3, 1), make_eval(3.25, 7, 7, 80));

  std::stringstream ss;
  a.save(ss);
  const EliteArchive b = EliteArchive::load(ss);

  ASSERT_EQ(b.filled(), a.filled());
  EXPECT_EQ(b.union_bits(), a.union_bits());
  EXPECT_TRUE(b.union_map() == a.union_map());
  ASSERT_EQ(b.occupied_cells(), a.occupied_cells());
  for (const std::uint16_t idx : a.occupied_cells()) {
    const auto& ca = a.cell(idx);
    const auto& cb = b.cell(idx);
    EXPECT_EQ(trace::hash(cb.genome), trace::hash(ca.genome));
    EXPECT_EQ(cb.genome.duration, ca.genome.duration);
    EXPECT_DOUBLE_EQ(cb.eval.score.total(), ca.eval.score.total());
    EXPECT_EQ(EliteArchive::cell_index(cb.eval.coverage.descriptor), idx);
    EXPECT_TRUE(cb.eval.coverage.bitmap == ca.eval.coverage.bitmap);
  }

  // A loaded archive keeps its replacement semantics: a known behavior with
  // a lower score is still rejected, a new behavior still fills a cell.
  EliteArchive c = b;
  EXPECT_FALSE(c.insert(make_trace(9), make_eval(1.0, 1, 2, 0)).new_cell);
  EXPECT_TRUE(c.insert(make_trace(9), make_eval(1.0, 2, 2, 0)).new_cell);
  EXPECT_EQ(c.filled(), b.filled() + 1);
}

TEST(EliteArchive, LoadRejectsMalformedInput) {
  std::istringstream no_magic("# not-an-archive\n");
  EXPECT_THROW(EliteArchive::load(no_magic), std::runtime_error);

  std::istringstream truncated(
      "# ccfuzz-archive v1\n# entry 3\n# score 1 0\n");
  EXPECT_THROW(EliteArchive::load(truncated), std::runtime_error);
}

// --- merge_from (distributed report merge) -----------------------------------

TEST(EliteArchiveMerge, UnionsBitmapAndKeepsBestPerCell) {
  const trace::Trace ta = make_trace(1), tb = make_trace(2),
                     tc = make_trace(3), td = make_trace(4);
  EliteArchive a;
  a.insert(ta, make_eval(1.0, 2, 3, 0));   // shared cell, lower score
  a.insert(tb, make_eval(5.0, 7, 0, 8));   // a-only cell

  EliteArchive b;
  b.insert(tc, make_eval(2.0, 2, 3, 16));  // shared cell, higher score
  b.insert(td, make_eval(0.5, 0, 7, 24));  // b-only cell

  const std::size_t changed = a.merge_from(b);
  EXPECT_EQ(changed, 2u);  // shared cell improved + b-only cell filled
  EXPECT_EQ(a.filled(), 3u);
  // Union bitmap covers all four disjoint 2-bit groups.
  EXPECT_EQ(a.union_bits(), 8u);
  // The shared cell now holds b's higher-scoring elite...
  const std::size_t shared = EliteArchive::cell_index(
      make_eval(0, 2, 3).coverage.descriptor);
  EXPECT_EQ(trace::hash(a.cell(shared).genome), trace::hash(tc));
  // ...and a's own cell is untouched.
  const std::size_t a_only = EliteArchive::cell_index(
      make_eval(0, 7, 0).coverage.descriptor);
  EXPECT_EQ(trace::hash(a.cell(a_only).genome), trace::hash(tb));
}

TEST(EliteArchiveMerge, TieKeepsThisArchivesIncumbent) {
  const trace::Trace mine = make_trace(1), theirs = make_trace(2);
  EliteArchive a, b;
  a.insert(mine, make_eval(1.0, 2, 3, 0));
  b.insert(theirs, make_eval(1.0, 2, 3, 0));

  EXPECT_EQ(a.merge_from(b), 0u);
  EXPECT_EQ(a.filled(), 1u);
  const std::size_t cell = EliteArchive::cell_index(
      make_eval(0, 2, 3).coverage.descriptor);
  EXPECT_EQ(trace::hash(a.cell(cell).genome), trace::hash(mine));
}

TEST(EliteArchiveMerge, IntoEmptyArchiveReproducesSaveBytes) {
  EliteArchive b;
  b.insert(make_trace(1, 8), make_eval(1.5, 1, 2, 0));
  b.insert(make_trace(2, 32), make_eval(-0.5, 4, 0, 40));
  b.insert(make_trace(3, 1), make_eval(3.25, 7, 7, 80));

  EliteArchive a;
  EXPECT_EQ(a.merge_from(b), b.filled());

  std::stringstream sa, sb;
  a.save(sa);
  b.save(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(EliteArchiveMerge, IsIdempotent) {
  EliteArchive a, b;
  b.insert(make_trace(1), make_eval(2.0, 3, 1, 4));
  a.merge_from(b);
  const std::uint32_t bits = a.union_bits();
  EXPECT_EQ(a.merge_from(b), 0u);
  EXPECT_EQ(a.filled(), 1u);
  EXPECT_EQ(a.union_bits(), bits);
}

// --- Fuzzer integration ------------------------------------------------------

GaConfig coverage_ga() {
  GaConfig ga;
  ga.population = 12;
  ga.islands = 2;
  ga.max_generations = 4;
  ga.parallel = false;
  return ga;
}

TraceEvaluator coverage_evaluator(bool coverage = true) {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(2);
  cfg.coverage = coverage;
  return TraceEvaluator(cfg, cca::make_factory("reno"),
                        std::make_shared<LowUtilizationScore>(),
                        TraceScoreWeights{.per_packet = 1e-4});
}

std::shared_ptr<const TraceModel> coverage_model() {
  trace::TrafficTraceModel m;
  m.duration = TimeNs::seconds(2);
  m.max_packets = 400;
  return std::make_shared<TrafficModel>(m);
}

TEST(Fuzzer, CoverageGuidedModesRequireTheProbe) {
  GaConfig ga = coverage_ga();
  ga.search = SearchMode::kMapElites;
  EXPECT_THROW(Fuzzer(ga, coverage_model(), coverage_evaluator(false)),
               std::logic_error);
  GaConfig bonus = coverage_ga();
  bonus.novelty_bonus = 0.5;
  EXPECT_THROW(Fuzzer(bonus, coverage_model(), coverage_evaluator(false)),
               std::logic_error);
  EXPECT_EQ(Fuzzer(coverage_ga(), coverage_model(), coverage_evaluator(false))
                .archive(),
            nullptr);
}

TEST(Fuzzer, MapElitesFillsArchiveAndReportsGrowth) {
  GaConfig ga = coverage_ga();
  ga.search = SearchMode::kMapElites;
  Fuzzer f(ga, coverage_model(), coverage_evaluator());
  const auto& history = f.run();

  ASSERT_NE(f.archive(), nullptr);
  EXPECT_GT(f.archive()->filled(), 0u);
  EXPECT_GT(f.archive()->union_bits(), 0u);
  ASSERT_FALSE(history.empty());
  EXPECT_GT(history.front().archive_cells, 0);
  EXPECT_EQ(history.front().archive_new_cells, history.front().archive_cells);
  // Occupancy is monotone: cells are never vacated.
  for (std::size_t g = 1; g < history.size(); ++g) {
    EXPECT_GE(history[g].archive_cells, history[g - 1].archive_cells);
    EXPECT_GE(history[g].coverage_bits, history[g - 1].coverage_bits);
  }
  EXPECT_EQ(history.back().archive_cells,
            static_cast<std::int64_t>(f.archive()->filled()));
}

TEST(Fuzzer, SeededArchiveResumesFilling) {
  GaConfig ga = coverage_ga();
  ga.search = SearchMode::kMapElites;

  Fuzzer first(ga, coverage_model(), coverage_evaluator());
  first.run();
  std::stringstream ss;
  first.archive()->save(ss);
  const std::size_t carried = first.archive()->filled();
  ASSERT_GT(carried, 0u);

  GaConfig resumed_ga = ga;
  resumed_ga.seed ^= 0x9E3779B97F4A7C15ULL;  // a fresh population
  Fuzzer resumed(resumed_ga, coverage_model(), coverage_evaluator());
  resumed.seed_archive(EliteArchive::load(ss));
  const auto& history = resumed.run();
  // The seeded cells survive; the resumed campaign only adds to them.
  EXPECT_GE(resumed.archive()->filled(), carried);
  EXPECT_GE(history.front().archive_cells,
            static_cast<std::int64_t>(carried));
}

// --- Corrupt / truncated archive files ---------------------------------------
// Archive files are crash artifacts as often as clean saves (campaign
// checkpoints embed them; resume loads them after a kill). Every mangling
// must surface as a typed Error from try_load, never a crash.

TEST(EliteArchiveErrors, EmptyStreamIsKTruncated) {
  std::istringstream empty("");
  const auto r = EliteArchive::try_load(empty);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kTruncated);
}

TEST(EliteArchiveErrors, WrongVersionIsKVersion) {
  std::istringstream is("# ccfuzz-archive v7\n");
  const auto r = EliteArchive::try_load(is);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kVersion);
}

TEST(EliteArchiveErrors, MissingMagicIsKParse) {
  std::istringstream is("totally not an archive\n");
  const auto r = EliteArchive::try_load(is);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kParse);
}

TEST(EliteArchiveErrors, MissingFileIsKIo) {
  const auto r = EliteArchive::try_load_file("/nonexistent/archive.txt");
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kIo);
}

TEST(EliteArchiveErrors, EveryTruncationOfARealArchiveIsATypedError) {
  GaConfig ga = coverage_ga();
  ga.search = SearchMode::kMapElites;
  Fuzzer f(ga, coverage_model(), coverage_evaluator());
  f.run();
  std::stringstream full;
  f.archive()->save(full);
  const std::string bytes = full.str();
  ASSERT_GT(bytes.size(), 200u);

  int load_errors = 0;
  for (std::size_t cut = 0; cut < bytes.size(); cut += 97) {
    std::istringstream partial(bytes.substr(0, cut));
    const auto r = EliteArchive::try_load(partial);
    if (!r) {
      ++load_errors;
      EXPECT_NE(r.error().code, Error::Code::kOk) << "cut at " << cut;
    }
  }
  // Cuts inside an entry must be flagged, not silently dropped.
  EXPECT_GT(load_errors, 0);
}

TEST(EliteArchiveErrors, GarbageInsideAnEntryIsFlagged) {
  GaConfig ga = coverage_ga();
  ga.search = SearchMode::kMapElites;
  Fuzzer f(ga, coverage_model(), coverage_evaluator());
  f.step();
  std::stringstream full;
  f.archive()->save(full);
  std::string bytes = full.str();
  // Mangle the first numeric payload line after the header.
  const auto pos = bytes.find('\n', bytes.find('\n') + 1);
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos + 1, 4, "zzzz");
  std::istringstream mangled(bytes);
  EXPECT_FALSE(static_cast<bool>(EliteArchive::try_load(mangled)));
}

TEST(EliteArchiveErrors, ThrowingLoadersStillThrowOnCorruptInput) {
  std::istringstream is("# ccfuzz-archive v7\n");
  EXPECT_THROW(EliteArchive::load(is), std::runtime_error);
  EXPECT_THROW(EliteArchive::load_file("/nonexistent/archive.txt"),
               std::runtime_error);
}

TEST(Fuzzer, NoveltyBonusBiasesSelectionNotReporting) {
  // Same population, same evaluations: the bonus must leave reported scores
  // untouched (GenStats reads raw totals), and a fuzzer with a bonus still
  // tracks the identical archive (inserts are pre-selection).
  GaConfig plain = coverage_ga();
  Fuzzer a(plain, coverage_model(), coverage_evaluator());
  GaConfig bonus = coverage_ga();
  bonus.novelty_bonus = 10.0;
  Fuzzer b(bonus, coverage_model(), coverage_evaluator());

  const GenStats ga_first = a.step();
  const GenStats gb_first = b.step();
  // Generation 0 is the same seeded population → identical raw stats.
  EXPECT_DOUBLE_EQ(ga_first.best_score, gb_first.best_score);
  EXPECT_DOUBLE_EQ(ga_first.mean_score, gb_first.mean_score);
  EXPECT_EQ(ga_first.archive_cells, gb_first.archive_cells);
  EXPECT_EQ(ga_first.coverage_bits, gb_first.coverage_bits);
}

}  // namespace
}  // namespace ccfuzz::fuzz
