// Tests for the scoring functions (paper §3.4), evaluated over real runs.
#include "fuzz/score.h"

#include <gtest/gtest.h>

#include "cca/registry.h"
#include "fuzz/evaluator.h"

namespace ccfuzz::fuzz {
namespace {

scenario::ScenarioConfig base_config() {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(3);
  return cfg;
}

scenario::RunResult clean_run() {
  return scenario::run_scenario(base_config(), cca::make_factory("reno"), {});
}

scenario::RunResult choked_run() {
  // Link mode with opportunities only in the first 500 ms: terrible
  // utilization afterwards.
  scenario::ScenarioConfig cfg = base_config();
  cfg.mode = scenario::FuzzMode::kLink;
  std::vector<TimeNs> trace;
  for (int i = 1; i < 500; ++i) trace.emplace_back(TimeNs::millis(i));
  return scenario::run_scenario(cfg, cca::make_factory("reno"), trace);
}

TEST(LowUtilizationScore, RanksChokedAboveClean) {
  LowUtilizationScore score;
  EXPECT_GT(score.performance_score(choked_run()),
            score.performance_score(clean_run()));
}

TEST(LowUtilizationScore, CleanRunScoresNearNegativeLinkRate) {
  // Lowest-20% windows of a clean Reno run include slow start, so the
  // score sits between -12 and 0, closer to the link rate.
  LowUtilizationScore score;
  const double s = score.performance_score(clean_run());
  EXPECT_LT(s, -4.0);
  EXPECT_GT(s, -12.5);
}

TEST(LowUtilizationScore, UsesLowestWindows) {
  // A narrower "lowest fraction" must score >= the default (its mean can
  // only drop when averaging fewer, smaller windows).
  const auto run = clean_run();
  LowUtilizationScore narrow(DurationNs::millis(500), 0.1);
  LowUtilizationScore wide(DurationNs::millis(500), 0.9);
  EXPECT_GE(narrow.performance_score(run), wide.performance_score(run));
}

TEST(LowUtilizationScore, MismatchedWindowWithoutEventsThrows) {
  // A metrics-only run cannot serve a window other than metrics_window; a
  // silent all-zero series would degenerate the GA, so it must fail loudly.
  const auto run = clean_run();  // metrics-only default
  LowUtilizationScore custom(DurationNs::millis(100));
  EXPECT_THROW(custom.performance_score(run), std::logic_error);
  // With raw events recorded the custom window is re-binned post hoc.
  scenario::ScenarioConfig cfg = base_config();
  cfg.record_mode = scenario::RecordMode::kFullEvents;
  const auto full = scenario::run_scenario(cfg, cca::make_factory("reno"), {});
  EXPECT_LT(custom.performance_score(full), -4.0);
}

TEST(LowUtilizationScore, EvaluatorRejectsMismatchedWindowAtConstruction) {
  // The misconfiguration must surface on the driver thread at evaluator
  // construction, not as an exception escaping a pool worker mid-GA.
  scenario::ScenarioConfig cfg = base_config();  // metrics-only default
  EXPECT_THROW(TraceEvaluator(cfg, cca::make_factory("reno"),
                              std::make_shared<LowUtilizationScore>(
                                  DurationNs::millis(100))),
               std::logic_error);
  // Aligned window or full-events mode both construct fine.
  cfg.metrics_window = DurationNs::millis(100);
  TraceEvaluator aligned(cfg, cca::make_factory("reno"),
                         std::make_shared<LowUtilizationScore>(
                             DurationNs::millis(100)));
  scenario::ScenarioConfig full = base_config();
  full.record_mode = scenario::RecordMode::kFullEvents;
  TraceEvaluator events(full, cca::make_factory("reno"),
                        std::make_shared<LowUtilizationScore>(
                            DurationNs::millis(100)));
}

TEST(HighDelayScore, QueueBuildupScoresHigher) {
  // Fig 4e's premise: BBR alone keeps the queue shallow, but cross-traffic
  // refills force a standing queue even its 10th-percentile delay shows.
  scenario::ScenarioConfig cfg = base_config();
  const auto clean =
      scenario::run_scenario(cfg, cca::make_factory("bbr"), {});
  std::vector<TimeNs> trace;
  for (std::size_t i = 0; i < cfg.net.queue_capacity; ++i) {
    trace.emplace_back(TimeNs::zero());  // pre-fill the queue
  }
  for (int i = 1; i < 1500; ++i) {
    trace.emplace_back(TimeNs::millis(2 * i));  // 6 Mbps refill stream
  }
  const auto congested =
      scenario::run_scenario(cfg, cca::make_factory("bbr"), trace);
  HighDelayScore score(10.0);
  EXPECT_GT(score.performance_score(congested),
            score.performance_score(clean));
}

TEST(HighDelayScore, NoEgressIsNeutral) {
  scenario::RunResult empty;
  empty.config = base_config();
  HighDelayScore score;
  EXPECT_DOUBLE_EQ(score.performance_score(empty), 0.0);
}

TEST(HighLossScore, CountsCcaDropsPerSecond) {
  scenario::RunResult r;
  r.config = base_config();
  r.ensure_primary().drops = 30;
  HighLossScore score;
  EXPECT_DOUBLE_EQ(score.performance_score(r), 10.0);  // 30 drops / 3 s
}

// Hand-builds an n-flow RunResult whose flows delivered the given segment
// counts over the full run.
scenario::RunResult fairness_run(std::initializer_list<std::int64_t> delivered) {
  scenario::RunResult r;
  r.config = base_config();
  for (const std::int64_t d : delivered) {
    scenario::FlowResult f;
    f.start = TimeNs::zero();
    f.stop = r.config.duration;
    f.packet_bytes = r.config.net.packet_bytes;
    f.segments_delivered = d;
    r.flows.push_back(std::move(f));
  }
  return r;
}

TEST(JainFairnessScore, EqualSharesScoreZero) {
  JainFairnessScore score;
  EXPECT_NEAR(score.performance_score(fairness_run({500, 500})), 0.0, 1e-12);
  EXPECT_NEAR(score.performance_score(fairness_run({300, 300, 300})), 0.0,
              1e-12);
}

TEST(JainFairnessScore, MonopolyApproachesOneMinusOneOverN) {
  JainFairnessScore score;
  EXPECT_NEAR(score.performance_score(fairness_run({1000, 0})), 0.5, 1e-12);
  EXPECT_NEAR(score.performance_score(fairness_run({1000, 0, 0, 0})), 0.75,
              1e-12);
}

TEST(JainFairnessScore, SingleFlowAndAllIdleAreNeutral) {
  JainFairnessScore score;
  EXPECT_DOUBLE_EQ(score.performance_score(fairness_run({1000})), 0.0);
  EXPECT_DOUBLE_EQ(score.performance_score(fairness_run({0, 0})), 0.0);
}

TEST(JainFairnessScore, RanksStarvedPairAboveFairPair) {
  // End-to-end: a late-starting bbr flow beside reno shares worse than two
  // symmetric reno flows.
  JainFairnessScore score;
  EXPECT_GT(score.performance_score(fairness_run({900, 100})),
            score.performance_score(fairness_run({480, 520})));
}

TEST(ThroughputRatioScore, AttackerShareOfPair) {
  ThroughputRatioScore score(/*victim_flow=*/1, /*attacker_flow=*/0);
  EXPECT_NEAR(score.performance_score(fairness_run({750, 250})), 0.75, 1e-12);
  EXPECT_NEAR(score.performance_score(fairness_run({500, 500})), 0.5, 1e-12);
  EXPECT_NEAR(score.performance_score(fairness_run({0, 400})), 0.0, 1e-12);
}

TEST(ThroughputRatioScore, BothIdleIsNeutral) {
  ThroughputRatioScore score;
  EXPECT_DOUBLE_EQ(score.performance_score(fairness_run({0, 0})), 0.5);
}

TEST(ThroughputRatioScore, MissingPairFlowIsNeutralNotStarved) {
  // A single-flow run has no victim at index 1: the score must be 0, not a
  // constant "victim fully starved" 1.0 that would blind the GA.
  ThroughputRatioScore score;
  EXPECT_DOUBLE_EQ(score.performance_score(fairness_run({800})), 0.0);
  EXPECT_DOUBLE_EQ(score.performance_score(scenario::RunResult{}), 0.0);
}

TEST(LowGoodputScore, NegatesGoodput) {
  const auto run = clean_run();
  LowGoodputScore score;
  EXPECT_DOUBLE_EQ(score.performance_score(run), -run.goodput_mbps());
}

TEST(TraceScoreWeights, PenalizesPacketsAndDrops) {
  scenario::RunResult r;
  r.cross_sent = 100;
  r.cross_drops = 20;
  TraceScoreWeights w{.per_packet = 0.01, .per_drop = 0.1};
  EXPECT_DOUBLE_EQ(w.trace_score(r), -(100 * 0.01 + 20 * 0.1));
}

TEST(TraceScoreWeights, ZeroWeightsAreNeutral) {
  scenario::RunResult r;
  r.cross_sent = 1000;
  TraceScoreWeights w{};
  EXPECT_DOUBLE_EQ(w.trace_score(r), 0.0);
}

TEST(Score, TotalIsSumOfComponents) {
  Score s{.performance = 2.5, .trace = -0.5};
  EXPECT_DOUBLE_EQ(s.total(), 2.0);
}

}  // namespace
}  // namespace ccfuzz::fuzz
