// NaN/inf score quarantine: a misbehaving score function must not poison the
// GA with non-finite fitness — the evaluation gets a large finite penalty and
// the offending genome is saved for offline replay.
#include "fuzz/quarantine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>

#include "cca/registry.h"
#include "fuzz/evaluator.h"
#include "trace/hash.h"
#include "trace/trace_io.h"

namespace ccfuzz::fuzz {
namespace {

namespace fs = std::filesystem;

/// Always returns NaN — stands in for a buggy or divide-by-zero score.
class NanScore final : public ScoreFunction {
 public:
  double performance_score(const scenario::RunResult&) const override {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const char* name() const override { return "nan-score"; }
};

class InfScore final : public ScoreFunction {
 public:
  double performance_score(const scenario::RunResult&) const override {
    return std::numeric_limits<double>::infinity();
  }
  const char* name() const override { return "inf-score"; }
};

scenario::ScenarioConfig tiny_scenario() {
  scenario::ScenarioConfig s;
  s.duration = TimeNs::seconds(1);
  return s;
}

trace::Trace tiny_trace() {
  trace::Trace t;
  t.kind = trace::TraceKind::kTraffic;
  t.duration = TimeNs::seconds(1);
  t.stamps = {TimeNs::millis(100), TimeNs::millis(200)};
  return t;
}

TEST(Quarantine, NonFiniteScoreIsPenalizedAndFlagged) {
  TraceEvaluator eval(tiny_scenario(), cca::make_factory("reno"),
                      std::make_shared<NanScore>());
  const Evaluation e = eval.evaluate(tiny_trace());
  EXPECT_TRUE(e.quarantined);
  EXPECT_TRUE(std::isfinite(e.score.performance));
  EXPECT_TRUE(std::isfinite(e.score.trace));
  // The penalty ranks the genome below any real evaluation.
  EXPECT_LT(e.score.total(), -1e29);
}

TEST(Quarantine, InfScoreIsPenalizedToo) {
  TraceEvaluator eval(tiny_scenario(), cca::make_factory("reno"),
                      std::make_shared<InfScore>());
  const Evaluation e = eval.evaluate(tiny_trace());
  EXPECT_TRUE(e.quarantined);
  EXPECT_TRUE(std::isfinite(e.score.performance));
}

TEST(Quarantine, FiniteScoresAreUntouched) {
  TraceEvaluator eval(tiny_scenario(), cca::make_factory("reno"),
                      std::make_shared<LowGoodputScore>());
  const Evaluation e = eval.evaluate(tiny_trace());
  EXPECT_FALSE(e.quarantined);
}

TEST(Quarantine, RecordsGenomeToDirDedupedByHash) {
  const fs::path dir = fs::temp_directory_path() / "ccfuzz_quarantine_test";
  fs::remove_all(dir);

  auto q = std::make_shared<Quarantine>(dir.string());
  TraceEvaluator eval(tiny_scenario(), cca::make_factory("reno"),
                      std::make_shared<NanScore>());
  eval.set_quarantine(q);

  const trace::Trace t = tiny_trace();
  eval.evaluate(t);
  eval.evaluate(t);  // duplicate: recorded once
  EXPECT_EQ(q->recorded(), 1u);

  // The quarantined file replays as the exact offending genome.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++files;
    const auto loaded = trace::load_trace(entry.path().string());
    EXPECT_EQ(trace::hash(loaded), trace::hash(t));
  }
  EXPECT_EQ(files, 1u);
  fs::remove_all(dir);
}

TEST(Quarantine, UnwritableDirDegradesToWarningNotThrow) {
  auto q = std::make_shared<Quarantine>("/nonexistent-root/quarantine");
  TraceEvaluator eval(tiny_scenario(), cca::make_factory("reno"),
                      std::make_shared<NanScore>());
  eval.set_quarantine(q);
  Evaluation e;
  EXPECT_NO_THROW(e = eval.evaluate(tiny_trace()));
  EXPECT_TRUE(e.quarantined);
}

}  // namespace
}  // namespace ccfuzz::fuzz
