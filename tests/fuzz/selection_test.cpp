// Tests for 1/rank selection (paper §3.5).
#include "fuzz/selection.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccfuzz::fuzz {
namespace {

TEST(RankSelector, SingleEntryAlwaysPicked) {
  RankSelector s(1);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s.pick(rng), 0u);
  }
}

TEST(RankSelector, FrequenciesFollowOneOverRank) {
  const std::size_t n = 5;
  RankSelector s(n);
  Rng rng(7);
  std::vector<int> counts(n, 0);
  const int draws = 200'000;
  for (int i = 0; i < draws; ++i) counts[s.pick(rng)]++;
  // Harmonic normalization: H5 = 1 + 1/2 + ... + 1/5 = 2.2833...
  const double h5 = 1.0 + 0.5 + 1.0 / 3 + 0.25 + 0.2;
  for (std::size_t r = 0; r < n; ++r) {
    const double expected = (1.0 / static_cast<double>(r + 1)) / h5;
    const double actual = static_cast<double>(counts[r]) / draws;
    EXPECT_NEAR(actual, expected, 0.01) << "rank " << r;
  }
}

TEST(RankSelector, BestRankDominates) {
  RankSelector s(100);
  Rng rng(3);
  int best = 0;
  const int draws = 10'000;
  for (int i = 0; i < draws; ++i) {
    best += s.pick(rng) == 0 ? 1 : 0;
  }
  // P(rank 0) = 1/H100 ≈ 0.193.
  EXPECT_NEAR(static_cast<double>(best) / draws, 0.193, 0.02);
}

TEST(RankSelector, PairsAreDistinct) {
  RankSelector s(4);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const auto [a, b] = s.pick_pair(rng);
    ASSERT_NE(a, b);
    ASSERT_LT(a, 4u);
    ASSERT_LT(b, 4u);
  }
}

TEST(RankSelector, DeterministicForSeed) {
  RankSelector s(10);
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(s.pick(a), s.pick(b));
  }
}

TEST(RankSelector, AllRanksReachable) {
  RankSelector s(8);
  Rng rng(13);
  std::vector<bool> seen(8, false);
  for (int i = 0; i < 10'000; ++i) seen[s.pick(rng)] = true;
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_TRUE(seen[r]) << "rank " << r << " never drawn";
  }
}

}  // namespace
}  // namespace ccfuzz::fuzz
