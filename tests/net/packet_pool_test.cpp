// Unit tests for the in-flight packet pool (slot recycling, payload
// integrity, clear-for-reuse semantics).
#include "net/packet_pool.h"

#include <gtest/gtest.h>

namespace ccfuzz::net {
namespace {

Packet make_packet(std::uint64_t id) {
  Packet p;
  p.id = id;
  p.tcp.seq = static_cast<std::int64_t>(id) * 10;
  return p;
}

TEST(PacketPool, RoundTripsPayloadUnchanged) {
  PacketPool pool;
  Packet p = make_packet(7);
  p.flow = FlowId::kAck;
  p.tcp.sacks[0] = {3, 5};
  p.tcp.n_sacks = 1;
  const auto idx = pool.put(std::move(p));
  const Packet out = pool.take(idx);
  EXPECT_EQ(out.id, 7u);
  EXPECT_EQ(out.flow, FlowId::kAck);
  EXPECT_EQ(out.tcp.sacks[0], (SackBlock{3, 5}));
}

TEST(PacketPool, RecyclesSlotsInsteadOfGrowing) {
  PacketPool pool;
  for (std::uint64_t round = 0; round < 100; ++round) {
    const auto a = pool.put(make_packet(round));
    const auto b = pool.put(make_packet(round + 1000));
    EXPECT_EQ(pool.take(a).id, round);
    EXPECT_EQ(pool.take(b).id, round + 1000);
  }
  EXPECT_EQ(pool.capacity(), 2u);  // high-water mark, not total traffic
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(PacketPool, TracksConcurrentOccupancy) {
  PacketPool pool;
  const auto a = pool.put(make_packet(1));
  const auto b = pool.put(make_packet(2));
  const auto c = pool.put(make_packet(3));
  EXPECT_EQ(pool.in_use(), 3u);
  EXPECT_EQ(pool.take(b).id, 2u);
  EXPECT_EQ(pool.in_use(), 2u);
  const auto d = pool.put(make_packet(4));  // reuses b's slot
  EXPECT_EQ(pool.capacity(), 3u);
  EXPECT_EQ(pool.take(a).id, 1u);
  EXPECT_EQ(pool.take(c).id, 3u);
  EXPECT_EQ(pool.take(d).id, 4u);
}

TEST(PacketPool, ClearFreesEverySlotButKeepsCapacity) {
  PacketPool pool;
  for (std::uint64_t i = 0; i < 10; ++i) pool.put(make_packet(i));
  EXPECT_EQ(pool.in_use(), 10u);
  pool.clear();
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.capacity(), 10u);
  // Every slot is reusable after clear.
  for (std::uint64_t i = 0; i < 10; ++i) pool.put(make_packet(i + 50));
  EXPECT_EQ(pool.capacity(), 10u);
  EXPECT_EQ(pool.in_use(), 10u);
}

}  // namespace
}  // namespace ccfuzz::net
