// Unit tests for the bottleneck link models: MahiMahi trace semantics and
// fixed-rate store-and-forward.
#include "net/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccfuzz::net {
namespace {

Packet make_packet(std::uint64_t id) {
  Packet p;
  p.id = id;
  p.flow = FlowId::kCcaData;
  return p;
}

struct LinkFixture {
  sim::Simulator sim;
  DropTailQueue queue{100};
  std::vector<std::uint64_t> delivered;
  std::vector<std::int64_t> delivery_times_ms;
  std::vector<std::int64_t> egress_times_ms;

  void attach(BottleneckLink& link) {
    link.set_delivery([this](Packet&& p) {
      delivered.push_back(p.id);
      delivery_times_ms.push_back(sim.now().to_millis());
    });
    link.set_egress_observer([this](const Packet&, TimeNs t) {
      egress_times_ms.push_back(t.to_millis());
    });
  }
};

TEST(TraceDrivenLink, OnePacketPerOpportunity) {
  LinkFixture f;
  TraceDrivenLink link(f.sim, f.queue, DurationNs::zero(),
                       {TimeNs::millis(10), TimeNs::millis(20), TimeNs::millis(30)});
  f.attach(link);
  for (std::uint64_t i = 0; i < 2; ++i) {
    f.queue.try_enqueue(make_packet(i), TimeNs::zero());
  }
  link.start();
  f.sim.run_all();
  // Two packets serviced at the first two opportunities; third wasted.
  EXPECT_EQ(f.delivered, (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(f.egress_times_ms, (std::vector<std::int64_t>{10, 20}));
  EXPECT_EQ(link.packets_served(), 2);
  EXPECT_EQ(link.wasted_opportunities(), 1);
}

TEST(TraceDrivenLink, WastedOpportunityNotRecovered) {
  // MahiMahi semantics: a packet arriving after an opportunity must wait for
  // the next one, even if the earlier opportunity went unused.
  LinkFixture f;
  TraceDrivenLink link(f.sim, f.queue, DurationNs::zero(),
                       {TimeNs::millis(10), TimeNs::millis(50)});
  f.attach(link);
  link.start();
  f.sim.schedule_at(TimeNs::millis(20), [&] {
    f.queue.try_enqueue(make_packet(7), f.sim.now());
  });
  f.sim.run_all();
  EXPECT_EQ(f.egress_times_ms, (std::vector<std::int64_t>{50}));
  EXPECT_EQ(link.wasted_opportunities(), 1);
}

TEST(TraceDrivenLink, PropagationDelayApplied) {
  LinkFixture f;
  TraceDrivenLink link(f.sim, f.queue, DurationNs::millis(20),
                       {TimeNs::millis(5)});
  f.attach(link);
  f.queue.try_enqueue(make_packet(1), TimeNs::zero());
  link.start();
  f.sim.run_all();
  EXPECT_EQ(f.egress_times_ms, (std::vector<std::int64_t>{5}));
  EXPECT_EQ(f.delivery_times_ms, (std::vector<std::int64_t>{25}));
}

TEST(TraceDrivenLink, BurstOpportunitiesDrainBackToBack) {
  // Multiple identical timestamps model aggregation bursts.
  LinkFixture f;
  TraceDrivenLink link(f.sim, f.queue, DurationNs::zero(),
                       {TimeNs::millis(10), TimeNs::millis(10), TimeNs::millis(10)});
  f.attach(link);
  for (std::uint64_t i = 0; i < 3; ++i) {
    f.queue.try_enqueue(make_packet(i), TimeNs::zero());
  }
  link.start();
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 3u);
  EXPECT_EQ(f.egress_times_ms, (std::vector<std::int64_t>{10, 10, 10}));
}

TEST(TraceDrivenLink, EmptyTraceServesNothing) {
  LinkFixture f;
  TraceDrivenLink link(f.sim, f.queue, DurationNs::zero(), {});
  f.attach(link);
  f.queue.try_enqueue(make_packet(1), TimeNs::zero());
  link.start();
  f.sim.run_all();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(link.packets_served(), 0);
}

TEST(FixedRateLink, ServesAtConfiguredRate) {
  // 12 Mbps, 1500 B → one packet per ms, starting when the queue fills.
  LinkFixture f;
  FixedRateLink link(f.sim, f.queue, DurationNs::zero(), DataRate::mbps(12));
  f.attach(link);
  link.start();
  for (std::uint64_t i = 0; i < 3; ++i) {
    f.queue.try_enqueue(make_packet(i), TimeNs::zero());
  }
  f.sim.run_all();
  EXPECT_EQ(f.egress_times_ms, (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(link.packets_served(), 3);
}

TEST(FixedRateLink, ResumesAfterIdle) {
  LinkFixture f;
  FixedRateLink link(f.sim, f.queue, DurationNs::zero(), DataRate::mbps(12));
  f.attach(link);
  link.start();
  f.queue.try_enqueue(make_packet(0), TimeNs::zero());
  f.sim.run_all();
  ASSERT_EQ(f.egress_times_ms.size(), 1u);
  // Queue refilled 10 ms later: service restarts from the arrival time.
  f.sim.schedule_at(TimeNs::millis(10), [&] {
    f.queue.try_enqueue(make_packet(1), f.sim.now());
  });
  f.sim.run_all();
  EXPECT_EQ(f.egress_times_ms, (std::vector<std::int64_t>{1, 11}));
}

TEST(FixedRateLink, PropagationDelayAfterSerialization) {
  LinkFixture f;
  FixedRateLink link(f.sim, f.queue, DurationNs::millis(20), DataRate::mbps(12));
  f.attach(link);
  link.start();
  f.queue.try_enqueue(make_packet(0), TimeNs::zero());
  f.sim.run_all();
  EXPECT_EQ(f.delivery_times_ms, (std::vector<std::int64_t>{21}));
}

TEST(FixedRateLink, HalfSizePacketsServeFaster) {
  LinkFixture f;
  FixedRateLink link(f.sim, f.queue, DurationNs::zero(), DataRate::mbps(12));
  f.attach(link);
  link.start();
  Packet p = make_packet(0);
  p.size_bytes = 750;
  f.queue.try_enqueue(std::move(p), TimeNs::zero());
  f.sim.run_all();
  ASSERT_EQ(f.egress_times_ms.size(), 1u);
  EXPECT_EQ(f.sim.now(), TimeNs(500'000));  // 0.5 ms
}

}  // namespace
}  // namespace ccfuzz::net
