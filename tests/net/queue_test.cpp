// Unit tests for the drop-tail gateway queue.
#include "net/queue.h"

#include <gtest/gtest.h>

namespace ccfuzz::net {
namespace {

Packet make_packet(FlowId flow, std::uint64_t id = 0) {
  Packet p;
  p.id = id;
  p.flow = flow;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_enqueue(make_packet(FlowId::kCcaData, i), TimeNs::zero()));
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->id, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(2);
  EXPECT_TRUE(q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::zero()));
  EXPECT_TRUE(q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::zero()));
  EXPECT_FALSE(q.try_enqueue(make_packet(FlowId::kCrossTraffic), TimeNs::zero()));
  EXPECT_EQ(q.size(), 2u);
  const auto& st = q.stats();
  EXPECT_EQ(st.enqueued[static_cast<std::size_t>(FlowId::kCcaData)], 2);
  EXPECT_EQ(st.dropped[static_cast<std::size_t>(FlowId::kCrossTraffic)], 1);
  EXPECT_EQ(st.total_dropped(), 1);
}

TEST(DropTailQueue, EnqueueStampsArrivalTime) {
  DropTailQueue q(2);
  q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::millis(42));
  auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->enqueued_at, TimeNs::millis(42));
}

TEST(DropTailQueue, NonEmptyNotifierFiresOnTransitionOnly) {
  DropTailQueue q(4);
  int notified = 0;
  q.set_nonempty_notifier([&] { ++notified; });
  q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::zero());
  q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::zero());
  EXPECT_EQ(notified, 1);
  (void)q.dequeue();
  (void)q.dequeue();
  q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::zero());
  EXPECT_EQ(notified, 2);
}

TEST(DropTailQueue, DropNotifierSeesDroppedPacket) {
  DropTailQueue q(1);
  Packet dropped;
  TimeNs when;
  q.set_drop_notifier([&](const Packet& p, TimeNs t) {
    dropped = p;
    when = t;
  });
  q.try_enqueue(make_packet(FlowId::kCcaData, 1), TimeNs::zero());
  q.try_enqueue(make_packet(FlowId::kCrossTraffic, 99), TimeNs::millis(3));
  EXPECT_EQ(dropped.id, 99u);
  EXPECT_EQ(dropped.flow, FlowId::kCrossTraffic);
  EXPECT_EQ(when, TimeNs::millis(3));
}

TEST(DropTailQueue, PerFlowDequeueCounters) {
  DropTailQueue q(4);
  q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::zero());
  q.try_enqueue(make_packet(FlowId::kCrossTraffic), TimeNs::zero());
  (void)q.dequeue();
  (void)q.dequeue();
  const auto& st = q.stats();
  EXPECT_EQ(st.dequeued[static_cast<std::size_t>(FlowId::kCcaData)], 1);
  EXPECT_EQ(st.dequeued[static_cast<std::size_t>(FlowId::kCrossTraffic)], 1);
}

TEST(DropTailQueue, CapacityOneBehaves) {
  DropTailQueue q(1);
  EXPECT_TRUE(q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::zero()));
  EXPECT_FALSE(q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::zero()));
  (void)q.dequeue();
  EXPECT_TRUE(q.try_enqueue(make_packet(FlowId::kCcaData), TimeNs::zero()));
}

}  // namespace
}  // namespace ccfuzz::net
