// Unit tests for the fixed-delay pipe (access links, ACK return path).
#include "net/delay_pipe.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace ccfuzz::net {
namespace {

TEST(DelayPipe, DeliversAfterExactDelay) {
  sim::Simulator sim;
  std::vector<std::int64_t> arrivals_ms;
  DelayPipe pipe(sim, DurationNs::millis(20), [&](Packet&&) {
    arrivals_ms.push_back(sim.now().to_millis());
  });
  Packet p;
  pipe.send(std::move(p));
  sim.run_all();
  EXPECT_EQ(arrivals_ms, (std::vector<std::int64_t>{20}));
}

TEST(DelayPipe, PreservesFifoOrderForSimultaneousSends) {
  sim::Simulator sim;
  std::vector<std::uint64_t> ids;
  DelayPipe pipe(sim, DurationNs::millis(5),
                 [&](Packet&& p) { ids.push_back(p.id); });
  for (std::uint64_t i = 0; i < 10; ++i) {
    Packet p;
    p.id = i;
    pipe.send(std::move(p));
  }
  sim.run_all();
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(ids[static_cast<std::size_t>(i)], i);
  }
}

TEST(DelayPipe, InFlightCountTracksOccupancy) {
  sim::Simulator sim;
  DelayPipe pipe(sim, DurationNs::millis(10), [](Packet&&) {});
  Packet a, b;
  pipe.send(std::move(a));
  pipe.send(std::move(b));
  EXPECT_EQ(pipe.in_flight(), 2);
  sim.run_all();
  EXPECT_EQ(pipe.in_flight(), 0);
}

TEST(DelayPipe, ZeroDelayDeliversAtSameTime) {
  sim::Simulator sim;
  std::int64_t arrival = -1;
  DelayPipe pipe(sim, DurationNs::zero(),
                 [&](Packet&&) { arrival = sim.now().ns(); });
  sim.schedule_at(TimeNs::millis(3), [&] {
    Packet p;
    pipe.send(std::move(p));
  });
  sim.run_all();
  EXPECT_EQ(arrival, TimeNs::millis(3).ns());
}

TEST(DelayPipe, PacketContentsPassThroughUntouched) {
  sim::Simulator sim;
  Packet got;
  DelayPipe pipe(sim, DurationNs::millis(1),
                 [&](Packet&& p) { got = std::move(p); });
  Packet p;
  p.id = 77;
  p.flow = FlowId::kAck;
  p.tcp.ack = 42;
  p.tcp.sacks[0] = {10, 12};
  p.tcp.n_sacks = 1;
  pipe.send(std::move(p));
  sim.run_all();
  EXPECT_EQ(got.id, 77u);
  EXPECT_EQ(got.flow, FlowId::kAck);
  EXPECT_EQ(got.tcp.ack, 42);
  EXPECT_EQ(got.tcp.sacks[0], (SackBlock{10, 12}));
}

}  // namespace
}  // namespace ccfuzz::net
