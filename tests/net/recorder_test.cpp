// Unit tests for the bottleneck recorder feeding figures and scores.
#include "net/recorder.h"

#include <gtest/gtest.h>

namespace ccfuzz::net {
namespace {

TEST(Recorder, MetricsOnlyGateKeepsCountersDropsEvents) {
  BottleneckRecorder r;
  r.set_flow_count(2);
  r.set_record_events(false);
  Packet p;
  p.flow = FlowId::kCcaData;
  p.flow_index = 1;
  r.record_ingress(p, TimeNs::millis(1));
  r.record_egress(p, TimeNs::millis(2));
  r.record_drop(p, TimeNs::millis(3));
  // Event vectors stay empty…
  EXPECT_TRUE(r.ingress().empty());
  EXPECT_TRUE(r.egress().empty());
  EXPECT_TRUE(r.drops().empty());
  EXPECT_TRUE(r.delays().empty());
  // …but both counter families are maintained.
  EXPECT_EQ(r.ingress_count(FlowId::kCcaData), 1);
  EXPECT_EQ(r.egress_count(FlowId::kCcaData), 1);
  EXPECT_EQ(r.drop_count(FlowId::kCcaData), 1);
  EXPECT_EQ(r.flow_egress_count(1), 1);
  EXPECT_EQ(r.flow_drop_count(1), 1);
  // Re-enabling records events again (default is enabled).
  r.set_record_events(true);
  r.record_egress(p, TimeNs::millis(4));
  EXPECT_EQ(r.egress().size(), 1u);
  EXPECT_EQ(r.egress_count(FlowId::kCcaData), 2);
}

Packet make_packet(FlowId flow, TimeNs enq = TimeNs::zero()) {
  Packet p;
  p.flow = flow;
  p.enqueued_at = enq;
  return p;
}

TEST(BottleneckRecorder, RecordsIngressEgressDrops) {
  BottleneckRecorder r;
  r.record_ingress(make_packet(FlowId::kCcaData), TimeNs::millis(1));
  r.record_drop(make_packet(FlowId::kCrossTraffic), TimeNs::millis(2));
  r.record_egress(make_packet(FlowId::kCcaData, TimeNs::millis(1)),
                  TimeNs::millis(3));
  EXPECT_EQ(r.ingress().size(), 1u);
  EXPECT_EQ(r.drops().size(), 1u);
  EXPECT_EQ(r.egress().size(), 1u);
  EXPECT_EQ(r.ingress()[0].flow, FlowId::kCcaData);
  EXPECT_EQ(r.drops()[0].time, TimeNs::millis(2));
}

TEST(BottleneckRecorder, QueueDelayIsEgressMinusEnqueue) {
  BottleneckRecorder r;
  r.record_egress(make_packet(FlowId::kCcaData, TimeNs::millis(10)),
                  TimeNs::millis(35));
  ASSERT_EQ(r.delays().size(), 1u);
  EXPECT_EQ(r.delays()[0].queue_delay, DurationNs::millis(25));
  EXPECT_EQ(r.delays()[0].time, TimeNs::millis(35));
}

TEST(BottleneckRecorder, EgressCountFiltersByFlow) {
  BottleneckRecorder r;
  for (int i = 0; i < 3; ++i) {
    r.record_egress(make_packet(FlowId::kCcaData), TimeNs::millis(i));
  }
  for (int i = 0; i < 2; ++i) {
    r.record_egress(make_packet(FlowId::kCrossTraffic), TimeNs::millis(i));
  }
  EXPECT_EQ(r.egress_count(FlowId::kCcaData), 3);
  EXPECT_EQ(r.egress_count(FlowId::kCrossTraffic), 2);
  EXPECT_EQ(r.egress_count(FlowId::kAck), 0);
}

TEST(BottleneckRecorder, PerFlowCountersTrackDropsAndIngress) {
  BottleneckRecorder r;
  r.record_ingress(make_packet(FlowId::kCcaData), TimeNs::millis(1));
  r.record_ingress(make_packet(FlowId::kCrossTraffic), TimeNs::millis(1));
  r.record_drop(make_packet(FlowId::kCrossTraffic), TimeNs::millis(2));
  r.record_drop(make_packet(FlowId::kCrossTraffic), TimeNs::millis(3));
  r.record_drop(make_packet(FlowId::kCcaData), TimeNs::millis(4));
  EXPECT_EQ(r.ingress_count(FlowId::kCcaData), 1);
  EXPECT_EQ(r.ingress_count(FlowId::kCrossTraffic), 1);
  EXPECT_EQ(r.drop_count(FlowId::kCrossTraffic), 2);
  EXPECT_EQ(r.drop_count(FlowId::kCcaData), 1);
  EXPECT_EQ(r.drop_count(FlowId::kAck), 0);
}

TEST(BottleneckRecorder, ClearResetsRecordsAndCounters) {
  BottleneckRecorder r;
  r.reserve(64);
  r.record_ingress(make_packet(FlowId::kCcaData), TimeNs::millis(1));
  r.record_egress(make_packet(FlowId::kCcaData), TimeNs::millis(2));
  r.record_drop(make_packet(FlowId::kCcaData), TimeNs::millis(3));
  r.clear();
  EXPECT_TRUE(r.ingress().empty());
  EXPECT_TRUE(r.egress().empty());
  EXPECT_TRUE(r.drops().empty());
  EXPECT_TRUE(r.delays().empty());
  EXPECT_EQ(r.ingress_count(FlowId::kCcaData), 0);
  EXPECT_EQ(r.egress_count(FlowId::kCcaData), 0);
  EXPECT_EQ(r.drop_count(FlowId::kCcaData), 0);
  // Still fully usable after clear.
  r.record_egress(make_packet(FlowId::kAck), TimeNs::millis(4));
  EXPECT_EQ(r.egress_count(FlowId::kAck), 1);
}

TEST(BottleneckRecorder, RealFlowIndexCountersAreO1AndBounded) {
  BottleneckRecorder r;
  r.set_flow_count(3);  // two CCA flows + the cross-traffic aggregate
  auto tagged = [](FlowId flow, FlowIndex idx) {
    Packet p;
    p.flow = flow;
    p.flow_index = idx;
    return p;
  };
  r.record_egress(tagged(FlowId::kCcaData, 0), TimeNs::millis(1));
  r.record_egress(tagged(FlowId::kCcaData, 0), TimeNs::millis(2));
  r.record_egress(tagged(FlowId::kCcaData, 1), TimeNs::millis(3));
  r.record_drop(tagged(FlowId::kCcaData, 1), TimeNs::millis(4));
  r.record_ingress(tagged(FlowId::kCrossTraffic, 2), TimeNs::millis(5));
  EXPECT_EQ(r.flow_count(), 3u);
  EXPECT_EQ(r.flow_egress_count(0), 2);
  EXPECT_EQ(r.flow_egress_count(1), 1);
  EXPECT_EQ(r.flow_drop_count(1), 1);
  EXPECT_EQ(r.flow_ingress_count(2), 1);
  // Indices outside the table read 0 and never write out of bounds.
  EXPECT_EQ(r.flow_egress_count(7), 0);
  r.record_egress(tagged(FlowId::kCcaData, 7), TimeNs::millis(6));
  EXPECT_EQ(r.flow_egress_count(7), 0);
  EXPECT_EQ(r.egress_count(FlowId::kCcaData), 4);  // kind total still counts
  // Events carry the flow index for per-flow series extraction.
  EXPECT_EQ(r.egress()[0].flow_index, 0);
  EXPECT_EQ(r.egress()[2].flow_index, 1);
  EXPECT_EQ(r.delays()[2].flow_index, 1);
  // clear() drops the table (the next run sizes it afresh).
  r.clear();
  EXPECT_EQ(r.flow_count(), 0u);
  EXPECT_EQ(r.flow_egress_count(0), 0);
}

TEST(BottleneckRecorder, EmptyByDefault) {
  BottleneckRecorder r;
  EXPECT_TRUE(r.ingress().empty());
  EXPECT_TRUE(r.egress().empty());
  EXPECT_TRUE(r.drops().empty());
  EXPECT_TRUE(r.delays().empty());
}

}  // namespace
}  // namespace ccfuzz::net
