// Unit tests for the cross-traffic injector (traffic fuzzing's actuator).
#include "net/cross_traffic.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccfuzz::net {
namespace {

TEST(CrossTrafficInjector, InjectsOnePacketPerTimestamp) {
  sim::Simulator sim;
  DropTailQueue q(100);
  CrossTrafficInjector inj(sim, q,
                           {TimeNs::millis(1), TimeNs::millis(2), TimeNs::millis(5)});
  inj.start();
  sim.run_all();
  EXPECT_EQ(inj.packets_sent(), 3);
  EXPECT_EQ(inj.packets_dropped(), 0);
  EXPECT_EQ(q.size(), 3u);
}

TEST(CrossTrafficInjector, CountsDropsWhenQueueFull) {
  sim::Simulator sim;
  DropTailQueue q(2);
  CrossTrafficInjector inj(
      sim, q, {TimeNs::millis(1), TimeNs::millis(1), TimeNs::millis(1), TimeNs::millis(1)});
  inj.start();
  sim.run_all();
  EXPECT_EQ(inj.packets_sent(), 4);
  EXPECT_EQ(inj.packets_dropped(), 2);
  EXPECT_EQ(inj.packets_queued(), 2);
}

TEST(CrossTrafficInjector, PacketsTaggedAsCrossTraffic) {
  sim::Simulator sim;
  DropTailQueue q(10);
  CrossTrafficInjector inj(sim, q, {TimeNs::millis(3)});
  inj.start();
  sim.run_all();
  auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow, FlowId::kCrossTraffic);
  EXPECT_EQ(p->created_at, TimeNs::millis(3));
}

TEST(CrossTrafficInjector, InjectObserverSeesEveryPacket) {
  sim::Simulator sim;
  DropTailQueue q(1);
  CrossTrafficInjector inj(sim, q,
                           {TimeNs::millis(1), TimeNs::millis(2)});
  std::vector<std::int64_t> times_ms;
  inj.set_inject_observer(
      [&](const Packet&, TimeNs t) { times_ms.push_back(t.to_millis()); });
  inj.start();
  sim.run_all();
  // Both injections observed, even though the second one is dropped.
  EXPECT_EQ(times_ms, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(inj.packets_dropped(), 1);
}

TEST(CrossTrafficInjector, CustomPacketSize) {
  sim::Simulator sim;
  DropTailQueue q(10);
  CrossTrafficInjector inj(sim, q, {TimeNs::millis(1)}, 500);
  inj.start();
  sim.run_all();
  auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size_bytes, 500);
}

TEST(CrossTrafficInjector, EmptyTraceInjectsNothing) {
  sim::Simulator sim;
  DropTailQueue q(10);
  CrossTrafficInjector inj(sim, q, {});
  inj.start();
  sim.run_all();
  EXPECT_EQ(inj.packets_sent(), 0);
}

}  // namespace
}  // namespace ccfuzz::net
