// Tests for multi-CCA realism scoring (paper §5, Fig 5).
#include "analysis/realism.h"

#include <gtest/gtest.h>

#include "cca/registry.h"
#include "trace/dist_packets.h"

namespace ccfuzz::analysis {
namespace {

RealismScorer make_scorer(double threshold = 0.6) {
  RealismScorer::Config cfg;
  cfg.scenario.duration = TimeNs::seconds(3);
  cfg.accept_threshold = threshold;
  std::vector<std::pair<std::string, tcp::CcaFactory>> panel;
  for (const char* name : {"reno", "cubic", "bbr"}) {
    panel.emplace_back(name, cca::make_factory(name));
  }
  return RealismScorer(std::move(cfg), std::move(panel));
}

trace::Trace uniform_link_trace() {
  trace::Trace t;
  t.kind = trace::TraceKind::kLink;
  t.duration = TimeNs::seconds(3);
  for (int i = 1; i < 3000; ++i) t.stamps.emplace_back(TimeNs::millis(i));
  return t;
}

trace::Trace famine_then_feast_trace() {
  // Fig 5b's rejected shape: nothing for 2.7 s, then the full packet budget
  // in a 0.3 s burst. Even BBR only reaches ~25% utilization here; the
  // loss-based CCAs sit in RTO backoff and get ~1%.
  trace::Trace t;
  t.kind = trace::TraceKind::kLink;
  t.duration = TimeNs::seconds(3);
  for (int i = 0; i < 3000; ++i) {
    t.stamps.emplace_back(TimeNs::millis(2700) + DurationNs::nanos(100'000LL * i));
  }
  return t;
}

TEST(RealismScorer, UniformTraceAccepted) {
  const auto r = make_scorer().score(uniform_link_trace());
  EXPECT_TRUE(r.accepted);
  EXPECT_GT(r.score, 0.6);
  EXPECT_EQ(r.panel.size(), 3u);
}

TEST(RealismScorer, FamineThenFeastRejected) {
  const auto r = make_scorer().score(famine_then_feast_trace());
  EXPECT_FALSE(r.accepted) << "no CCA can use bandwidth that arrives in the "
                              "last 500 ms after 2.5 s of famine";
  EXPECT_LT(r.score, 0.6);
}

TEST(RealismScorer, ScoreIsBestAcrossPanel) {
  const auto r = make_scorer().score(uniform_link_trace());
  double best = 0.0;
  for (const auto& e : r.panel) best = std::max(best, e.utilization);
  EXPECT_DOUBLE_EQ(r.score, best);
}

TEST(RealismScorer, SingleCcaVariantCheaper) {
  const auto scorer = make_scorer();
  const auto r = scorer.score_single(uniform_link_trace(), 0);
  EXPECT_EQ(r.panel.size(), 1u);
  EXPECT_EQ(r.panel[0].cca, "reno");
  EXPECT_TRUE(r.accepted);
}

TEST(RealismScorer, SingleIndexWrapsAroundPanel) {
  const auto scorer = make_scorer();
  const auto r = scorer.score_single(uniform_link_trace(), 4);  // 4 % 3 == 1
  EXPECT_EQ(r.panel[0].cca, "cubic");
}

TEST(RealismScorer, ThresholdControlsAcceptance) {
  // The same mediocre trace flips verdict with the threshold: no CCA uses
  // a last-half-second burst well, but all of them move *some* packets.
  const trace::Trace t = famine_then_feast_trace();
  const auto strict = make_scorer(0.5).score(t);
  const auto lax = make_scorer(0.001).score(t);
  EXPECT_FALSE(strict.accepted);
  EXPECT_TRUE(lax.accepted);
}

TEST(RealismScorer, UtilizationRelativeToOfferedLoad) {
  // A sparse but steady trace is realistic: the CCA can track it.
  trace::Trace t;
  t.kind = trace::TraceKind::kLink;
  t.duration = TimeNs::seconds(3);
  for (int i = 1; i < 750; ++i) t.stamps.emplace_back(TimeNs::millis(4 * i));
  const auto r = make_scorer().score(t);  // 3 Mbps offered
  EXPECT_GT(r.score, 0.5) << "utilization is relative to the trace's own rate";
}

}  // namespace
}  // namespace ccfuzz::analysis
