// Tests for the Fig 4c timeline renderer.
#include "analysis/timeline.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ccfuzz::analysis {
namespace {

tcp::TcpEventLog sample_log() {
  tcp::TcpEventLog log(true);
  log.emit(TimeNs::millis(10), tcp::TcpEventType::kSend, 0);
  log.emit(TimeNs::millis(20), tcp::TcpEventType::kAck, 1);
  log.emit(TimeNs::millis(1040), tcp::TcpEventType::kRto, 1, 1.0);
  log.emit(TimeNs::millis(1040), tcp::TcpEventType::kMarkLost, 2);
  log.emit(TimeNs::millis(1041), tcp::TcpEventType::kRetransmit, 1);
  log.emit(TimeNs::millis(1042), tcp::TcpEventType::kSpuriousRetx, 2, 2.0);
  log.emit(TimeNs::millis(1043), tcp::TcpEventType::kProbeRoundEnd, -1, 12.0);
  log.emit(TimeNs::millis(1044), tcp::TcpEventType::kBwFilterDrop, -1, 15.0);
  return log;
}

TEST(Timeline, AllRowsByDefault) {
  const auto rows = timeline_rows(sample_log());
  EXPECT_EQ(rows.size(), 8u);
}

TEST(Timeline, TimeWindowFilters) {
  TimelineOptions opt;
  opt.from = TimeNs::millis(1040);
  opt.to = TimeNs::millis(1042);
  const auto rows = timeline_rows(sample_log(), opt);
  EXPECT_EQ(rows.size(), 3u);  // rto, mark-lost, retransmit
}

TEST(Timeline, DiagnosticsOnlyDropsSendsAndAcks) {
  TimelineOptions opt;
  opt.diagnostics_only = true;
  const auto rows = timeline_rows(sample_log(), opt);
  EXPECT_EQ(rows.size(), 6u);
}

TEST(Timeline, MaxRowsCaps) {
  TimelineOptions opt;
  opt.max_rows = 2;
  EXPECT_EQ(timeline_rows(sample_log(), opt).size(), 2u);
}

TEST(Timeline, PrintWritesOneRowPerLine) {
  std::ostringstream os;
  print_timeline(os, sample_log());
  int lines = 0;
  for (char c : os.str()) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 8);
}

TEST(Timeline, RowsContainEventNames) {
  const auto rows = timeline_rows(sample_log());
  bool has_rto = false, has_spurious = false;
  for (const auto& r : rows) {
    if (r.find("RTO") != std::string::npos) has_rto = true;
    if (r.find("SPURIOUS_RETX") != std::string::npos) has_spurious = true;
  }
  EXPECT_TRUE(has_rto);
  EXPECT_TRUE(has_spurious);
}

TEST(StallDiagnostics, CountsStallChain) {
  const auto d = stall_diagnostics(sample_log());
  EXPECT_EQ(d.rtos, 1);
  EXPECT_EQ(d.spurious_retx, 1);
  EXPECT_EQ(d.probe_round_ends, 1);
  EXPECT_EQ(d.bw_filter_drops, 1);
  EXPECT_EQ(d.marks_lost, 1);
}

TEST(StallDiagnostics, WorksWithDisabledDetailLog) {
  // Counters survive even when detailed events are off (fuzzing mode).
  tcp::TcpEventLog log(false);
  log.emit(TimeNs::millis(1), tcp::TcpEventType::kRto);
  log.emit(TimeNs::millis(2), tcp::TcpEventType::kSpuriousRetx);
  const auto d = stall_diagnostics(log);
  EXPECT_EQ(d.rtos, 1);
  EXPECT_EQ(d.spurious_retx, 1);
  EXPECT_TRUE(log.events().empty());
}

}  // namespace
}  // namespace ccfuzz::analysis
