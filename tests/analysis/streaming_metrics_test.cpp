// Unit tests for the streaming metrics sink and its delay digest.
#include "analysis/streaming_metrics.h"

#include <gtest/gtest.h>

namespace ccfuzz::analysis {
namespace {

net::Packet cca_packet(net::FlowIndex flow_index) {
  net::Packet p;
  p.flow = net::FlowId::kCcaData;
  p.flow_index = flow_index;
  return p;
}

TEST(DelayDigest, AggregatesAndExactExtremes) {
  DelayDigest d;
  EXPECT_EQ(d.count(), 0);
  EXPECT_DOUBLE_EQ(d.percentile_s(50.0), 0.0);

  d.add(DurationNs::millis(5));
  d.add(DurationNs::millis(10));
  d.add(DurationNs::millis(20));
  d.add(DurationNs::millis(40));
  EXPECT_EQ(d.count(), 4);
  EXPECT_DOUBLE_EQ(d.min_s(), 0.005);
  EXPECT_DOUBLE_EQ(d.max_s(), 0.040);
  EXPECT_NEAR(d.mean_s(), 0.01875, 1e-12);
  // Percentiles are exact at the extremes and within one log bucket (~3 %
  // relative) elsewhere. The linear 1 ms predecessor only pinned p50 into
  // [5 ms, 21 ms]; the log layout localizes it at the 10 ms flanking
  // sample, so the bound tightens deliberately.
  EXPECT_DOUBLE_EQ(d.percentile_s(0.0), 0.005);
  EXPECT_DOUBLE_EQ(d.percentile_s(100.0), 0.040);
  const double p50 = d.percentile_s(50.0);
  EXPECT_GE(p50, 0.0097);
  EXPECT_LE(p50, 0.0103);
}

TEST(DelayDigest, SubMillisecondResolution) {
  // High-rate scenarios live entirely below 1 ms of queueing delay; the old
  // linear layout collapsed all of it into bucket 0 (mid percentiles became
  // interpolation artifacts clamped to min/max). Log buckets resolve the
  // 100/200/400 µs modes to ~3 % each.
  DelayDigest d;
  for (int i = 0; i < 50; ++i) d.add(DurationNs::micros(100));
  for (int i = 0; i < 50; ++i) d.add(DurationNs::micros(200));
  for (int i = 0; i < 50; ++i) d.add(DurationNs::micros(400));
  EXPECT_NEAR(d.percentile_s(10.0), 100e-6, 4e-6);
  EXPECT_NEAR(d.percentile_s(50.0), 200e-6, 8e-6);
  EXPECT_NEAR(d.percentile_s(90.0), 400e-6, 16e-6);
  EXPECT_DOUBLE_EQ(d.percentile_s(0.0), 100e-6);
  EXPECT_DOUBLE_EQ(d.percentile_s(100.0), 400e-6);
}

TEST(DelayDigest, BucketLayoutIsContiguousAndMonotone) {
  // Every bucket's lower bound must equal the previous bucket's upper
  // bound, and bucket_of must be the inverse of the [lo, lo+width) ranges.
  std::uint64_t expected_lo = 0;
  for (int b = 0; b < DelayDigest::kBuckets; ++b) {
    ASSERT_EQ(DelayDigest::bucket_lo(b), expected_lo) << "bucket " << b;
    const std::uint64_t width = DelayDigest::bucket_width(b);
    const std::int64_t lo_ns = static_cast<std::int64_t>(expected_lo)
                               << DelayDigest::kUnitShift;
    ASSERT_EQ(DelayDigest::bucket_of(lo_ns), b) << "bucket " << b;
    ASSERT_EQ(DelayDigest::bucket_of(
                  ((static_cast<std::int64_t>(expected_lo + width)
                    << DelayDigest::kUnitShift) -
                   1)),
              b)
        << "bucket " << b;
    expected_lo += width;
  }
}

TEST(DelayDigest, MonotoneInPercentile) {
  DelayDigest d;
  for (int i = 0; i < 500; ++i) d.add(DurationNs::millis(i % 50));
  double prev = -1.0;
  for (double p = 0.0; p <= 100.0; p += 5.0) {
    const double v = d.percentile_s(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(DelayDigest, OverflowClampsIntoLastBucket) {
  DelayDigest d;
  // 30 s sits comfortably inside the log span (~2163 s) now; 4000 s is past
  // it and clamps into the last bucket. The exact extremes survive either
  // way.
  d.add(DurationNs::seconds(30));
  d.add(DurationNs::seconds(4000));
  EXPECT_EQ(d.count(), 2);
  EXPECT_DOUBLE_EQ(d.max_s(), 4000.0);
  EXPECT_DOUBLE_EQ(d.percentile_s(100.0), 4000.0);  // exact max
  EXPECT_DOUBLE_EQ(d.percentile_s(0.0), 30.0);      // exact min
}

TEST(StreamingMetrics, BinsEgressPerFlowWindow) {
  StreamingMetrics m;
  m.begin_run(2, DurationNs::millis(500), TimeNs::seconds(2));
  m.set_flow_interval(0, TimeNs::zero());
  m.set_flow_interval(1, TimeNs::seconds(1));

  // Flow 0: 3 packets in window 0, 1 packet in window 3.
  m.on_egress(cca_packet(0), TimeNs::millis(10), DurationNs::millis(1));
  m.on_egress(cca_packet(0), TimeNs::millis(20), DurationNs::millis(2));
  m.on_egress(cca_packet(0), TimeNs::millis(499), DurationNs::millis(3));
  m.on_egress(cca_packet(0), TimeNs::millis(1900), DurationNs::millis(4));
  // Flow 1 bins start at its own start time (1 s).
  m.on_egress(cca_packet(1), TimeNs::millis(1200), DurationNs::millis(5));
  // Cross traffic and out-of-range flows are ignored.
  net::Packet cross;
  cross.flow = net::FlowId::kCrossTraffic;
  cross.flow_index = 2;
  m.on_egress(cross, TimeNs::millis(100), DurationNs::zero());
  m.on_egress(cca_packet(7), TimeNs::millis(100), DurationNs::zero());

  ASSERT_EQ(m.flow_count(), 2u);
  ASSERT_EQ(m.flow(0).bins.size(), 4u);  // 2 s / 500 ms
  EXPECT_EQ(m.flow(0).bins[0], 3);
  EXPECT_EQ(m.flow(0).bins[1], 0);
  EXPECT_EQ(m.flow(0).bins[3], 1);
  EXPECT_EQ(m.flow(0).egress_packets, 4);
  EXPECT_EQ(m.flow(0).last_egress, TimeNs::millis(1900));
  ASSERT_EQ(m.flow(1).bins.size(), 2u);  // (2 s − 1 s) / 500 ms
  EXPECT_EQ(m.flow(1).bins[0], 1);
  EXPECT_EQ(m.flow(1).egress_packets, 1);
  EXPECT_EQ(m.flow(1).delay.count(), 1);

  // Mbps conversion: 3 packets / 0.5 s × 1500 B × 8 = 72 kbps… in Mbps.
  const auto mbps = m.windowed_throughput_mbps(0, 1500);
  ASSERT_EQ(mbps.size(), 4u);
  EXPECT_NEAR(mbps[0], 3.0 / 0.5 * 1500 * 8 * 1e-6, 1e-12);
  EXPECT_DOUBLE_EQ(mbps[1], 0.0);
}

TEST(StreamingMetrics, ReuseAcrossRunsResetsSummaries) {
  StreamingMetrics m;
  m.begin_run(1, DurationNs::millis(500), TimeNs::seconds(1));
  m.set_flow_interval(0, TimeNs::zero());
  m.on_egress(cca_packet(0), TimeNs::millis(100), DurationNs::millis(7));
  ASSERT_EQ(m.flow(0).egress_packets, 1);

  // Next run, fewer flows than slots is fine and summaries restart clean.
  m.begin_run(1, DurationNs::millis(250), TimeNs::seconds(2));
  m.set_flow_interval(0, TimeNs::zero());
  EXPECT_EQ(m.flow(0).egress_packets, 0);
  EXPECT_EQ(m.flow(0).last_egress, TimeNs(-1));
  EXPECT_EQ(m.flow(0).delay.count(), 0);
  EXPECT_EQ(m.flow(0).bins.size(), 8u);  // 2 s / 250 ms
}

TEST(StreamingMetrics, OutOfRangeFlowIsNeutral) {
  StreamingMetrics m;
  EXPECT_EQ(m.flow_count(), 0u);
  EXPECT_EQ(m.flow(3).egress_packets, 0);
  EXPECT_TRUE(m.windowed_throughput_mbps(3, 1500).empty());
}

}  // namespace
}  // namespace ccfuzz::analysis
