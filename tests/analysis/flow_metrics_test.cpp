// Tests for figure series extraction.
#include "analysis/flow_metrics.h"

#include <gtest/gtest.h>

#include "cca/registry.h"

namespace ccfuzz::analysis {
namespace {

scenario::RunResult clean_run() {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(3);
  // Figure series derive from the raw per-packet event streams.
  cfg.record_mode = scenario::RecordMode::kFullEvents;
  return scenario::run_scenario(cfg, cca::make_factory("reno"), {});
}

TEST(RateSeries, EgressApproachesLinkRate) {
  const auto run = clean_run();
  const auto s = rate_series(run, Stream::kEgress, net::FlowId::kCcaData);
  ASSERT_EQ(s.time_s.size(), 30u);  // 3 s / 100 ms
  ASSERT_EQ(s.mbps.size(), 30u);
  // Steady state: last windows at ~12 Mbps.
  EXPECT_NEAR(s.mbps.back(), 12.0, 1.0);
  // Window midpoints ascend.
  for (std::size_t i = 1; i < s.time_s.size(); ++i) {
    EXPECT_GT(s.time_s[i], s.time_s[i - 1]);
  }
}

TEST(RateSeries, IngressLeadsEgressDuringSlowStart) {
  const auto run = clean_run();
  const auto in = rate_series(run, Stream::kIngress, net::FlowId::kCcaData);
  const auto out = rate_series(run, Stream::kEgress, net::FlowId::kCcaData);
  // During ramp-up the sender bursts above the service rate at least once.
  bool ingress_peak = false;
  for (std::size_t i = 0; i < in.mbps.size(); ++i) {
    if (in.mbps[i] > out.mbps[i] + 1.0) ingress_peak = true;
  }
  EXPECT_TRUE(ingress_peak);
}

TEST(RateSeries, DropsSeriesConsistentWithQueueStats) {
  // Reno probes by filling the queue, so even an uncontended run drops;
  // the drop series must account for exactly those packets.
  const auto run = clean_run();
  const auto s = rate_series(run, Stream::kDrops, net::FlowId::kCcaData);
  double packets = 0.0;
  for (double v : s.mbps) packets += v * 0.1 / (1500 * 8) * 1e6;  // Mbps→pkts
  EXPECT_NEAR(packets, static_cast<double>(run.cca_drops()), 0.5);
}

TEST(DelaySeries, MatchesEgressCount) {
  const auto run = clean_run();
  const auto d = delay_series(run, net::FlowId::kCcaData);
  EXPECT_EQ(d.time_s.size(), static_cast<std::size_t>(run.cca_egress_packets()));
  EXPECT_EQ(d.time_s.size(), d.delay_ms.size());
  for (double ms : d.delay_ms) {
    EXPECT_GE(ms, 0.0);
    EXPECT_LE(ms, 51.0);  // 50-packet queue at 1 ms per packet
  }
}

TEST(LinkRateSeries, TrafficModeIsConstant) {
  const auto run = clean_run();
  const auto s = link_rate_series(run, {});
  ASSERT_FALSE(s.mbps.empty());
  for (double v : s.mbps) EXPECT_DOUBLE_EQ(v, 12.0);
}

TEST(LinkRateSeries, LinkModeFollowsTrace) {
  scenario::ScenarioConfig cfg;
  cfg.mode = scenario::FuzzMode::kLink;
  cfg.duration = TimeNs::seconds(2);
  cfg.record_mode = scenario::RecordMode::kFullEvents;
  // 1000 opportunities in the first second only.
  std::vector<TimeNs> trace;
  for (int i = 0; i < 1000; ++i) trace.emplace_back(TimeNs::millis(i));
  const auto run = scenario::run_scenario(cfg, cca::make_factory("reno"), trace);
  const auto s = link_rate_series(run, trace, DurationNs::millis(500));
  ASSERT_EQ(s.mbps.size(), 4u);
  EXPECT_NEAR(s.mbps[0], 12.0, 0.5);
  EXPECT_NEAR(s.mbps[1], 12.0, 0.5);
  EXPECT_DOUBLE_EQ(s.mbps[2], 0.0);
  EXPECT_DOUBLE_EQ(s.mbps[3], 0.0);
}

TEST(Utilization, CleanRunNearOne) {
  const auto run = clean_run();
  const double u =
      utilization(run, TimeNs::seconds(1), TimeNs::seconds(3));
  EXPECT_GT(u, 0.9);
  EXPECT_LE(u, 1.01);
}

TEST(Utilization, EmptyIntervalIsZero) {
  const auto run = clean_run();
  EXPECT_DOUBLE_EQ(
      utilization(run, TimeNs::seconds(2), TimeNs::seconds(2)), 0.0);
}

}  // namespace
}  // namespace ccfuzz::analysis
