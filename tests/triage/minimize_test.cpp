// ddmin over trace events: the minimizer must preserve the predicate, never
// exceed its evaluation budget, and reach 1-minimal results on synthetic
// predicates where the answer is known exactly.
#include "triage/minimize.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace ccfuzz::triage {
namespace {

trace::Trace ramp(std::size_t n) {
  trace::Trace t;
  t.kind = trace::TraceKind::kTraffic;
  t.duration = TimeNs::millis(static_cast<long long>(n) + 1);
  for (std::size_t i = 0; i < n; ++i) {
    t.stamps.push_back(TimeNs::millis(static_cast<long long>(i)));
  }
  return t;
}

bool has_stamp(const trace::Trace& t, long long ms) {
  return std::find(t.stamps.begin(), t.stamps.end(), TimeNs::millis(ms)) !=
         t.stamps.end();
}

TEST(MinimizeEvents, ReducesToTheTwoLoadBearingStamps) {
  const trace::Trace input = ramp(100);
  const auto keep = [](const trace::Trace& t) {
    return has_stamp(t, 37) && has_stamp(t, 73);
  };
  const MinimizeResult r = minimize_events(input, keep, 10'000);
  ASSERT_EQ(r.trace.stamps.size(), 2u);
  EXPECT_TRUE(has_stamp(r.trace, 37));
  EXPECT_TRUE(has_stamp(r.trace, 73));
  EXPECT_TRUE(r.trace.well_formed());
  EXPECT_GT(r.evals, 0);
}

TEST(MinimizeEvents, AlwaysTruePredicateEmptiesTheTrace) {
  const trace::Trace input = ramp(64);
  const MinimizeResult r = minimize_events(
      input, [](const trace::Trace&) { return true; }, 10'000);
  EXPECT_TRUE(r.trace.stamps.empty());
}

TEST(MinimizeEvents, AlwaysFalsePredicateKeepsTheInput) {
  const trace::Trace input = ramp(32);
  const MinimizeResult r = minimize_events(
      input, [](const trace::Trace&) { return false; }, 10'000);
  EXPECT_EQ(r.trace.stamps.size(), input.stamps.size());
}

TEST(MinimizeEvents, RespectsTheEvaluationBudget) {
  const trace::Trace input = ramp(256);
  int calls = 0;
  const auto keep = [&calls](const trace::Trace&) {
    ++calls;
    return true;
  };
  const MinimizeResult r = minimize_events(input, keep, 5);
  EXPECT_EQ(r.evals, 5);
  EXPECT_EQ(calls, 5);
  // Partial progress is still progress: the budgeted result shrank.
  EXPECT_LT(r.trace.stamps.size(), input.stamps.size());
}

TEST(MinimizeEvents, ZeroBudgetAndEmptyInputAreIdentity) {
  const trace::Trace input = ramp(8);
  int calls = 0;
  const auto count = [&calls](const trace::Trace&) {
    ++calls;
    return true;
  };
  EXPECT_EQ(minimize_events(input, count, 0).trace.stamps.size(), 8u);
  EXPECT_EQ(calls, 0);

  trace::Trace empty;
  empty.kind = trace::TraceKind::kLink;
  EXPECT_TRUE(minimize_events(empty, count, 100).trace.stamps.empty());
  EXPECT_EQ(calls, 0);  // the predicate is never called on the input itself
}

TEST(MinimizeEvents, PreservesKindAndDuration) {
  trace::Trace input = ramp(16);
  input.kind = trace::TraceKind::kLink;
  const MinimizeResult r = minimize_events(
      input, [](const trace::Trace& t) { return t.stamps.size() >= 4; },
      10'000);
  EXPECT_EQ(r.trace.kind, trace::TraceKind::kLink);
  EXPECT_EQ(r.trace.duration, input.duration);
  EXPECT_EQ(r.trace.stamps.size(), 4u);
}

}  // namespace
}  // namespace ccfuzz::triage
