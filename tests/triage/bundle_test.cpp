// Bundle manifest format: exact round-trips, strict-parser rejection of
// torn/corrupt/foreign input (the same machine-format discipline as the
// checkpoint codec), and on-disk bundle save/load.
#include "triage/bundle.h"

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "trace/hash.h"
#include "trace/trace_io.h"

namespace ccfuzz::triage {
namespace {

namespace stdfs = std::filesystem;

BundleManifest sample() {
  BundleManifest m;
  m.id = "0123456789abcdef";
  m.source = "winner";
  m.cell = "reno.traffic.low-utilization";
  m.cca = "reno";
  m.mode = "traffic";
  m.score = "low-utilization";
  m.scenario_hash = "fedcba9876543210";
  m.duration_ms = 2000;
  m.original_events = 1500;
  m.minimized_events = 12;
  m.original_score = 0.73125;
  m.expected_score = 0.719993712345678901;  // needs %.17g to survive
  m.tolerance = 0.0146250000000000002;
  m.expect_quarantined = false;
  m.confirm_runs = 3;
  m.flaky = false;
  m.truncated = false;
  m.classification = "cca-weakness";
  m.invariant_violations = 0;
  return m;
}

TEST(BundleManifest, RoundTripsExactly) {
  const BundleManifest in = sample();
  Result<BundleManifest> out = parse_manifest(to_json(in));
  ASSERT_TRUE(out) << out.error().message;
  EXPECT_EQ(out->id, in.id);
  EXPECT_EQ(out->source, in.source);
  EXPECT_EQ(out->cell, in.cell);
  EXPECT_EQ(out->cca, in.cca);
  EXPECT_EQ(out->mode, in.mode);
  EXPECT_EQ(out->score, in.score);
  EXPECT_EQ(out->scenario_hash, in.scenario_hash);
  EXPECT_EQ(out->duration_ms, in.duration_ms);
  EXPECT_EQ(out->original_events, in.original_events);
  EXPECT_EQ(out->minimized_events, in.minimized_events);
  EXPECT_EQ(out->original_score, in.original_score);
  EXPECT_EQ(out->expected_score, in.expected_score);  // bit-exact via %.17g
  EXPECT_EQ(out->tolerance, in.tolerance);
  EXPECT_EQ(out->expect_quarantined, in.expect_quarantined);
  EXPECT_EQ(out->confirm_runs, in.confirm_runs);
  EXPECT_EQ(out->flaky, in.flaky);
  EXPECT_EQ(out->truncated, in.truncated);
  EXPECT_EQ(out->classification, in.classification);
  EXPECT_EQ(out->invariant_violations, in.invariant_violations);
  // Serialization is canonical: a round-trip re-serializes byte-identically.
  EXPECT_EQ(to_json(*out), to_json(in));
}

TEST(BundleManifest, EscapedCellNamesSurvive) {
  BundleManifest in = sample();
  in.cell = "odd \"cell\"\twith\nnoise\\";
  Result<BundleManifest> out = parse_manifest(to_json(in));
  ASSERT_TRUE(out) << out.error().message;
  EXPECT_EQ(out->cell, in.cell);
}

TEST(BundleManifest, TornBodyIsTruncatedNotParse) {
  const std::string body = to_json(sample());
  // Drop the closing brace and everything after the last key line: the torn
  // tail a crash mid-write would leave (atomic writes prevent this for the
  // manifest itself, but doctor must still classify a hand-damaged one).
  const std::string torn = body.substr(0, body.rfind("  \"classification\""));
  Result<BundleManifest> out = parse_manifest(torn);
  ASSERT_FALSE(out);
  EXPECT_EQ(out.error().code, Error::Code::kTruncated);
}

TEST(BundleManifest, MissingKeyIsTruncated) {
  std::string body = to_json(sample());
  const std::size_t pos = body.find("  \"confirm_runs\": 3,\n");
  ASSERT_NE(pos, std::string::npos);
  body.erase(pos, std::string("  \"confirm_runs\": 3,\n").size());
  Result<BundleManifest> out = parse_manifest(body);
  ASSERT_FALSE(out);
  EXPECT_EQ(out.error().code, Error::Code::kTruncated);
}

TEST(BundleManifest, ForeignVersionIsRejectedTyped) {
  std::string body = to_json(sample());
  const std::size_t pos = body.find("\"ccfuzz_finding\": 1");
  ASSERT_NE(pos, std::string::npos);
  body.replace(pos, 19, "\"ccfuzz_finding\": 2");
  Result<BundleManifest> out = parse_manifest(body);
  ASSERT_FALSE(out);
  EXPECT_EQ(out.error().code, Error::Code::kVersion);
}

TEST(BundleManifest, GarbageIsParseError) {
  EXPECT_EQ(parse_manifest("not a manifest\n").error().code,
            Error::Code::kParse);
  std::string body = to_json(sample());
  const std::size_t pos = body.find("\"duration_ms\": 2000");
  ASSERT_NE(pos, std::string::npos);
  body.replace(pos, 19, "\"duration_ms\": bogus");
  EXPECT_EQ(parse_manifest(body).error().code, Error::Code::kParse);
}

TEST(BundleManifest, SemanticCorruptionIsTyped) {
  BundleManifest bad_id = sample();
  bad_id.id = "short";
  EXPECT_EQ(parse_manifest(to_json(bad_id)).error().code,
            Error::Code::kCorrupt);

  BundleManifest bad_duration = sample();
  bad_duration.duration_ms = 0;
  EXPECT_EQ(parse_manifest(to_json(bad_duration)).error().code,
            Error::Code::kCorrupt);
}

TEST(BundleId, StableAndCollisionResistant) {
  const std::string a = bundle_id("reno.traffic.low-utilization", 42);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a, bundle_id("reno.traffic.low-utilization", 42));
  EXPECT_NE(a, bundle_id("cubic.traffic.low-utilization", 42));
  EXPECT_NE(a, bundle_id("reno.traffic.low-utilization", 43));
}

TEST(Bundle, SaveLoadRoundTripsOnDisk) {
  const stdfs::path dir =
      stdfs::temp_directory_path() /
      ("ccfuzz_bundle_" + std::to_string(::getpid()));
  stdfs::remove_all(dir);

  trace::Trace original;
  original.kind = trace::TraceKind::kTraffic;
  original.duration = TimeNs::seconds(2);
  for (int i = 0; i < 20; ++i) original.stamps.push_back(TimeNs::millis(i));
  trace::Trace minimized = original;
  minimized.stamps.resize(3);

  BundleManifest m = sample();
  m.original_events = original.stamps.size();
  m.minimized_events = minimized.stamps.size();
  ASSERT_FALSE(save_bundle(dir.string(), m, original, minimized));

  Result<BundleManifest> loaded = load_manifest(dir.string());
  ASSERT_TRUE(loaded) << loaded.error().message;
  EXPECT_EQ(loaded->id, m.id);
  EXPECT_EQ(trace::load_trace((dir / kOriginalTraceFile).string()).stamps,
            original.stamps);
  EXPECT_EQ(trace::load_trace((dir / kMinimizedTraceFile).string()).stamps,
            minimized.stamps);

  std::error_code ec;
  stdfs::remove_all(dir, ec);
}

TEST(Bundle, LoadFromMissingDirectoryIsIo) {
  Result<BundleManifest> out = load_manifest("/nonexistent/ccfuzz/bundle");
  ASSERT_FALSE(out);
  EXPECT_EQ(out.error().code, Error::Code::kIo);
}

}  // namespace
}  // namespace ccfuzz::triage
