// End-to-end triage: a real (tiny) campaign's winners become confirmed,
// minimized, classified bundles; replay passes on every bundle and catches
// a tampered expectation. This is the regression loop the CLI's `triage`
// and `replay` subcommands drive.
#include "triage/triage.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/report.h"
#include "fuzz/score.h"
#include "triage/bundle.h"
#include "util/fs.h"

namespace ccfuzz::triage {
namespace {

namespace stdfs = std::filesystem;

campaign::CellConfig tiny_cell(const std::string& cca) {
  campaign::CellConfig cell;
  cell.cca = cca;
  cell.name = cca + ".traffic.low-utilization";
  cell.scenario.duration = TimeNs::seconds(1);
  cell.score = std::make_shared<fuzz::LowUtilizationScore>();
  cell.traffic_model.max_packets = 200;
  cell.ga.population = 6;
  cell.ga.islands = 2;
  cell.ga.max_generations = 2;
  cell.ga.parallel = false;
  cell.winners = 2;
  return cell;
}

class TriagePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("ccfuzz_triage_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    stdfs::remove_all(dir_);
    stdfs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    stdfs::remove_all(dir_, ec);
  }

  std::vector<campaign::CellConfig> run_campaign() {
    campaign::CampaignConfig cfg;
    cfg.add_cell(tiny_cell("reno")).output_dir(dir_.string());
    campaign::Campaign c(cfg);
    c.run();
    return cfg.cells();
  }

  stdfs::path dir_;
};

TEST_F(TriagePipelineTest, WinnersBecomeReplayableBundles) {
  const std::vector<campaign::CellConfig> cells = run_campaign();

  TriageConfig tcfg;
  tcfg.confirm_runs = 3;
  // A loose band keeps ddmin effective on short GA winners: the point of
  // this test is the pipeline contract, not a specific minimization ratio.
  tcfg.tolerance = 0.5;
  tcfg.max_minimize_evals = 300;
  Result<TriageStats> stats = triage_report(cells, dir_.string(), tcfg);
  ASSERT_TRUE(stats) << stats.error().message;
  EXPECT_GT(stats->candidates, 0);
  EXPECT_EQ(stats->errors, 0);
  EXPECT_EQ(stats->flaky, 0);  // the simulator is deterministic
  ASSERT_GT(stats->bundles_written, 0);

  // Every bundle is internally consistent, and at least one minimized
  // strictly below its original (the acceptance bar for the pipeline).
  bool strictly_smaller = false;
  int bundles = 0;
  for (const auto& entry : stdfs::directory_iterator(dir_ / "findings")) {
    if (!entry.is_directory()) continue;
    ++bundles;
    Result<BundleManifest> m = load_manifest(entry.path().string());
    ASSERT_TRUE(m) << m.error().message;
    EXPECT_EQ(m->id, entry.path().filename().string());
    EXPECT_LE(m->minimized_events, m->original_events);
    EXPECT_EQ(m->confirm_runs, 3);
    EXPECT_FALSE(m->flaky);
    EXPECT_EQ(m->classification, "cca-weakness") << "on " << m->id;
    if (m->minimized_events < m->original_events) strictly_smaller = true;
  }
  EXPECT_EQ(bundles, stats->bundles_written);
  EXPECT_TRUE(strictly_smaller);

  // Replay passes bit-deterministically, twice.
  for (int i = 0; i < 2; ++i) {
    Result<ReplayStats> rp =
        replay_findings(cells, (dir_ / "findings").string());
    ASSERT_TRUE(rp) << rp.error().message;
    EXPECT_EQ(rp->bundles, stats->bundles_written);
    EXPECT_EQ(rp->drifted, 0);
    EXPECT_EQ(rp->broken, 0);
    EXPECT_EQ(rp->ok, rp->bundles);
  }

  // Re-triage is idempotent: same ids, no new bundles.
  Result<TriageStats> again = triage_report(cells, dir_.string(), tcfg);
  ASSERT_TRUE(again) << again.error().message;
  int bundles_after = 0;
  for (const auto& entry : stdfs::directory_iterator(dir_ / "findings")) {
    if (entry.is_directory()) ++bundles_after;
  }
  EXPECT_EQ(bundles_after, bundles);
}

TEST_F(TriagePipelineTest, ReplayCatchesATamperedExpectation) {
  const std::vector<campaign::CellConfig> cells = run_campaign();
  TriageConfig tcfg;
  tcfg.tolerance = 0.5;
  tcfg.max_minimize_evals = 60;
  Result<TriageStats> stats = triage_report(cells, dir_.string(), tcfg);
  ASSERT_TRUE(stats) << stats.error().message;
  ASSERT_GT(stats->bundles_written, 0);

  // Rewrite one manifest's expectation to an unreachable score.
  std::string victim;
  for (const auto& entry : stdfs::directory_iterator(dir_ / "findings")) {
    if (entry.is_directory()) {
      victim = entry.path().string();
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  Result<BundleManifest> m = load_manifest(victim);
  ASSERT_TRUE(m) << m.error().message;
  m->expected_score = m->expected_score + 100.0;
  m->tolerance = 1e-6;
  ASSERT_FALSE(write_file_atomic(victim + "/" + kManifestFile, to_json(*m),
                                 /*sync=*/false));

  Result<ReplayStats> rp = replay_findings(cells, (dir_ / "findings").string());
  ASSERT_TRUE(rp) << rp.error().message;
  EXPECT_EQ(rp->drifted, 1);
  EXPECT_EQ(rp->ok, rp->bundles - 1);
}

TEST_F(TriagePipelineTest, ReplayFlagsForeignMatrixAndScenarioDrift) {
  const std::vector<campaign::CellConfig> cells = run_campaign();
  TriageConfig tcfg;
  tcfg.tolerance = 0.5;
  tcfg.max_minimize_evals = 0;  // minimization off: bundles ship the original
  Result<TriageStats> stats = triage_report(cells, dir_.string(), tcfg);
  ASSERT_TRUE(stats) << stats.error().message;
  ASSERT_GT(stats->bundles_written, 0);

  // A matrix without the bundle's cell cannot vouch for it...
  std::vector<campaign::CellConfig> foreign = {tiny_cell("cubic")};
  Result<ReplayStats> rp =
      replay_findings(foreign, (dir_ / "findings").string());
  ASSERT_TRUE(rp) << rp.error().message;
  EXPECT_EQ(rp->broken, rp->bundles);

  // ...and a same-named cell with a drifted scenario is refused, not
  // silently re-scored.
  std::vector<campaign::CellConfig> drifted = cells;
  drifted.front().scenario.duration = TimeNs::seconds(3);
  rp = replay_findings(drifted, (dir_ / "findings").string());
  ASSERT_TRUE(rp) << rp.error().message;
  EXPECT_EQ(rp->broken, rp->bundles);
}

TEST_F(TriagePipelineTest, MissingReportIsTypedIo) {
  Result<TriageStats> stats =
      triage_report({}, (dir_ / "nope").string(), TriageConfig{});
  ASSERT_FALSE(stats);
  EXPECT_EQ(stats.error().code, Error::Code::kIo);
}

TEST_F(TriagePipelineTest, EmptyFindingsDirIsAnEmptyCorpus) {
  Result<ReplayStats> rp =
      replay_findings({}, (dir_ / "findings").string());
  ASSERT_TRUE(rp) << rp.error().message;
  EXPECT_EQ(rp->bundles, 0);
}

TEST(Confirm, DeterministicEvaluationsNeverFlagFlaky) {
  campaign::CellConfig cell = tiny_cell("reno");
  const fuzz::TraceEvaluator ev = campaign::make_evaluator(cell);
  trace::Trace t;
  t.kind = trace::TraceKind::kTraffic;
  t.duration = cell.scenario.duration;
  for (int i = 0; i < 150; ++i) t.stamps.push_back(TimeNs::millis(i * 6));
  const Confirmation c = confirm(ev, t, 4);
  EXPECT_EQ(c.runs, 4);
  EXPECT_FALSE(c.flaky);
  EXPECT_EQ(c.drift, 0.0);
}

}  // namespace
}  // namespace ccfuzz::triage
