// Unit tests for the fork/join thread pool used by the parallel evaluator.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ccfuzz {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ResultsByIndexAreDeterministic) {
  ThreadPool pool(8);
  std::vector<std::uint64_t> out(500);
  pool.parallel_for(500, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SequentialBatchesDoNotInterfere) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 4950);
  sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(50, 0);
  pool.parallel_for(50, [&](std::size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 50);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = global_thread_pool();
  ThreadPool& b = global_thread_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

TEST(ThreadPool, NestedWorkFromCallerThread) {
  // parallel_for must be callable repeatedly with work that itself takes
  // non-trivial time, without deadlocking.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(64, [&](std::size_t) {
      volatile double x = 1.0;
      for (int i = 0; i < 1000; ++i) x = x * 1.000001;
      total++;
    });
  }
  EXPECT_EQ(total.load(), 20 * 64);
}

}  // namespace
}  // namespace ccfuzz
