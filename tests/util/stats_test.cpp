// Unit tests for statistics helpers used by scoring functions.
#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace ccfuzz {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, StddevPopulation) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 17.5);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs{40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Stats, PercentileEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 10), 7.0);
}

TEST(Stats, MeanOfLowestFractionMatchesPaperExample) {
  // §3.4: "the average of the lowest 20% of the windows".
  std::vector<double> xs;
  for (int i = 1; i <= 10; ++i) xs.push_back(i);  // 1..10
  EXPECT_DOUBLE_EQ(mean_of_lowest_fraction(xs, 0.2), 1.5);  // mean(1,2)
}

TEST(Stats, MeanOfLowestFractionAlwaysIncludesOneSample) {
  const std::vector<double> xs{5, 1, 9};
  EXPECT_DOUBLE_EQ(mean_of_lowest_fraction(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(mean_of_lowest_fraction(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(mean_of_lowest_fraction({}, 0.2), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3, -1, 7};
  EXPECT_DOUBLE_EQ(min_of(xs), -1);
  EXPECT_DOUBLE_EQ(max_of(xs), 7);
  EXPECT_DOUBLE_EQ(min_of({}), 0.0);
}

TEST(Summary, AccumulatesRunningStats) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  s.add(2);
  s.add(8);
  s.add(5);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(WindowedRate, CountsEventsPerWindow) {
  // Events at 0.1s..0.4s; windows of 0.25s over [0, 1).
  const std::vector<double> times{0.1, 0.2, 0.3, 0.4};
  const auto rates = windowed_rate(times, 0.0, 1.0, 0.25);
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_DOUBLE_EQ(rates[0], 2 / 0.25);  // 0.1, 0.2
  EXPECT_DOUBLE_EQ(rates[1], 2 / 0.25);  // 0.3, 0.4
  EXPECT_DOUBLE_EQ(rates[2], 0.0);
  EXPECT_DOUBLE_EQ(rates[3], 0.0);
}

TEST(WindowedRate, IgnoresEventsOutsideRange) {
  const std::vector<double> times{-0.5, 0.1, 1.5};
  const auto rates = windowed_rate(times, 0.0, 1.0, 0.5);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);  // only 0.1
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

TEST(WindowedRate, PartialLastWindowUsesItsRealWidth) {
  // Range 0.9s with window 0.5s → windows [0,0.5), [0.5,0.9).
  const std::vector<double> times{0.6, 0.7};
  const auto rates = windowed_rate(times, 0.0, 0.9, 0.5);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[1], 2 / 0.4, 1e-9);
}

}  // namespace
}  // namespace ccfuzz
