// Unit tests for the deterministic RNG (GA reproducibility depends on it).
#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ccfuzz {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntStaysInRangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20'000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.uniform_int(5, 5), 5);
  }
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng r(17);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(r.uniform_int(0, 9))]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(19);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GaussianMomentsAreSane) {
  Rng r(23);
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = r.gaussian(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ForkProducesIndependentDeterministicStreams) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1b = Rng(99).fork(1);
  // Same (seed, stream) → same sequence.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(f1.next_u64(), f1b.next_u64());
  }
  // Different streams → different sequences.
  Rng g1 = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += g1.next_u64() == f2.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(5), b(5);
  (void)a.fork(123);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(SplitMix64, KnownFixpointFreeProgression) {
  std::uint64_t s = 0;
  const std::uint64_t v1 = splitmix64(s);
  const std::uint64_t v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  EXPECT_NE(v1, 0u);
  // Reference value for seed 0 (first splitmix64 output).
  EXPECT_EQ(v1, 0xE220A8397B1DCDAFULL);
}

TEST(ForkSeed, DistinctStreamsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(fork_seed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

}  // namespace
}  // namespace ccfuzz
