// Unit tests for CSV emission used by figure benches.
#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ccfuzz {
namespace {

TEST(CsvWriter, HeaderWrittenOnConstruction) {
  std::ostringstream os;
  CsvWriter w(os, {"time_s", "mbps"});
  EXPECT_EQ(os.str(), "time_s,mbps\n");
  EXPECT_EQ(w.rows_written(), 0u);
}

TEST(CsvWriter, RowsAreCommaSeparated) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b", "c"});
  w.row({1.0, 2.5, 3.0});
  EXPECT_EQ(os.str(), "a,b,c\n1,2.5,3\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(CsvWriter, VectorRow) {
  std::ostringstream os;
  CsvWriter w(os, {"x"});
  w.row(std::vector<double>{0.125});
  EXPECT_EQ(os.str(), "x\n0.125\n");
}

TEST(CsvWriter, LabeledRow) {
  std::ostringstream os;
  CsvWriter w(os, {"series", "v1", "v2"});
  w.row("bbr", {1.0, 2.0});
  EXPECT_EQ(os.str(), "series,v1,v2\nbbr,1,2\n");
}

TEST(FormatDouble, RoundTripsTypicalFigureValues) {
  EXPECT_EQ(format_double(12.0), "12");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1e-9), "1e-09");
  EXPECT_EQ(format_double(-3.25), "-3.25");
}

TEST(FormatDouble, HighPrecisionValuesKeepNineSignificantDigits) {
  EXPECT_EQ(format_double(1.23456789012345), "1.23456789");
}

}  // namespace
}  // namespace ccfuzz
