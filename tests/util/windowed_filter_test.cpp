// Unit tests for the Kathleen Nichols windowed min/max filter (the BBR
// bandwidth max-filter and min-RTT filter).
#include "util/windowed_filter.h"

#include <gtest/gtest.h>

namespace ccfuzz {
namespace {

TEST(WindowedMax, TracksRunningMax) {
  WindowedMax<double, std::int64_t> f(10);
  EXPECT_DOUBLE_EQ(f.update(5.0, 0), 5.0);
  EXPECT_DOUBLE_EQ(f.update(3.0, 1), 5.0);
  EXPECT_DOUBLE_EQ(f.update(7.0, 2), 7.0);
  EXPECT_DOUBLE_EQ(f.get(), 7.0);
}

TEST(WindowedMax, BestSampleAgesOut) {
  WindowedMax<double, std::int64_t> f(10);
  f.update(100.0, 0);
  // Keep feeding lower samples; after the window passes, 100 must expire.
  for (std::int64_t t = 1; t <= 10; ++t) f.update(10.0, t);
  EXPECT_DOUBLE_EQ(f.get(), 100.0);  // age == window: still valid
  f.update(10.0, 11);                // age > window: expired
  EXPECT_DOUBLE_EQ(f.get(), 10.0);
}

TEST(WindowedMax, ThisIsTheBbrStallFilterDynamic) {
  // The paper's §4.1 collapse: 10 rounds of low samples after corrupted
  // round-clocking age out the genuine 12 Mbps (1000 pps) estimate.
  WindowedMax<double, std::int64_t> f(10);
  std::int64_t round = 0;
  for (; round < 5; ++round) f.update(1000.0, round);
  EXPECT_DOUBLE_EQ(f.get(), 1000.0);
  double est = f.get();
  for (int i = 0; i < 11; ++i) est = f.update(10.0, ++round);
  EXPECT_DOUBLE_EQ(est, 10.0);
}

TEST(WindowedMax, GracefulDegradationThroughSecondBest) {
  WindowedFilter<int, std::int64_t, MaxFilterTag> f(100);
  f.update(90, 0);
  f.update(70, 30);  // second-best candidate, later in window
  f.update(50, 60);
  EXPECT_EQ(f.get(), 90);
  // Push time past the best sample's expiry: estimate degrades to 70.
  f.update(10, 101);
  EXPECT_EQ(f.get(), 70);
}

TEST(WindowedMin, TracksRunningMin) {
  WindowedMin<int, std::int64_t> f(10);
  EXPECT_EQ(f.update(40, 0), 40);
  EXPECT_EQ(f.update(42, 1), 40);
  EXPECT_EQ(f.update(35, 2), 35);
}

TEST(WindowedMin, MinExpiresAndRecovers) {
  WindowedMin<int, std::int64_t> f(10);
  f.update(5, 0);
  for (std::int64_t t = 1; t <= 11; ++t) f.update(50, t);
  EXPECT_EQ(f.get(), 50);
}

TEST(WindowedFilter, ResetInstallsSingleEstimate) {
  WindowedMax<double, std::int64_t> f(10);
  f.update(3.0, 0);
  f.reset(42.0, 5);
  EXPECT_DOUBLE_EQ(f.get(), 42.0);
  EXPECT_EQ(f.best_time(), 5);
}

TEST(WindowedFilter, WholePipelineExpiryResets) {
  WindowedMax<double, std::int64_t> f(10);
  f.update(100.0, 0);
  // A sample far beyond the window resets the whole filter to it.
  f.update(1.0, 1000);
  EXPECT_DOUBLE_EQ(f.get(), 1.0);
}

TEST(WindowedFilter, EqualSamplesRefreshTimestamp) {
  WindowedMax<double, std::int64_t> f(10);
  f.update(10.0, 0);
  f.update(10.0, 8);  // equal counts as better → refreshes the window
  f.update(5.0, 12);
  EXPECT_DOUBLE_EQ(f.get(), 10.0);
}

}  // namespace
}  // namespace ccfuzz
