// Edge cases for truncate_torn_tail, the crash-repair primitive every
// line-oriented append file (JSONL feeds, quarantine index) leans on. The
// chaos tests exercise the common torn-line path; these pin the boundaries:
// empty files, files that are all tail, and tails longer than one read chunk.
#include "util/fs.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace ccfuzz {
namespace {

namespace stdfs = std::filesystem;

class TruncateTornTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = stdfs::temp_directory_path() /
           ("ccfuzz_trunc_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    stdfs::create_directories(dir_);
    path_ = (dir_ / "feed.jsonl").string();
  }
  void TearDown() override {
    std::error_code ec;
    stdfs::remove_all(dir_, ec);
  }

  void write_raw(const std::string& body) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os << body;
  }

  std::string read_back() const {
    std::ifstream is(path_, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
  }

  stdfs::path dir_;
  std::string path_;
};

TEST_F(TruncateTornTailTest, EmptyFileIsAlreadyClean) {
  write_raw("");
  Result<std::uint64_t> dropped = truncate_torn_tail(path_);
  ASSERT_TRUE(dropped) << dropped.error().message;
  EXPECT_EQ(*dropped, 0u);
  EXPECT_EQ(read_back(), "");
}

TEST_F(TruncateTornTailTest, SingleFullyTornLineTruncatesToEmpty) {
  // A crash before the first '\n' ever landed: the whole file is tail.
  write_raw("{\"event\":\"campaign_beg");
  Result<std::uint64_t> dropped = truncate_torn_tail(path_);
  ASSERT_TRUE(dropped) << dropped.error().message;
  EXPECT_EQ(*dropped, 22u);
  EXPECT_EQ(read_back(), "");
}

TEST_F(TruncateTornTailTest, NoTrailingNewlineDropsOnlyTheTornTail) {
  write_raw("{\"a\":1}\n{\"b\":2}\n{\"c\":");
  Result<std::uint64_t> dropped = truncate_torn_tail(path_);
  ASSERT_TRUE(dropped) << dropped.error().message;
  EXPECT_EQ(*dropped, 5u);
  EXPECT_EQ(read_back(), "{\"a\":1}\n{\"b\":2}\n");
}

TEST_F(TruncateTornTailTest, NewlineOnlyFileIsClean) {
  write_raw("\n");
  Result<std::uint64_t> dropped = truncate_torn_tail(path_);
  ASSERT_TRUE(dropped) << dropped.error().message;
  EXPECT_EQ(*dropped, 0u);
  EXPECT_EQ(read_back(), "\n");
}

TEST_F(TruncateTornTailTest, TornTailLongerThanOneReadChunk) {
  // The scan for the last newline must walk backwards across buffer
  // boundaries: bury the newline more than 8 KiB before EOF.
  const std::string good = "complete line\n";
  const std::string torn(10'000, 'x');
  write_raw(good + torn);
  Result<std::uint64_t> dropped = truncate_torn_tail(path_);
  ASSERT_TRUE(dropped) << dropped.error().message;
  EXPECT_EQ(*dropped, torn.size());
  EXPECT_EQ(read_back(), good);
}

TEST_F(TruncateTornTailTest, RepairIsIdempotent) {
  write_raw("{\"a\":1}\n{\"half");
  ASSERT_TRUE(truncate_torn_tail(path_));
  Result<std::uint64_t> again = truncate_torn_tail(path_);
  ASSERT_TRUE(again) << again.error().message;
  EXPECT_EQ(*again, 0u);
  EXPECT_EQ(read_back(), "{\"a\":1}\n");
}

}  // namespace
}  // namespace ccfuzz
