// Unit tests for the strong time/duration/rate types.
#include "util/time.h"

#include <gtest/gtest.h>

namespace ccfuzz {
namespace {

TEST(DurationNs, FactoryUnitsAreExact) {
  EXPECT_EQ(DurationNs::nanos(7).ns(), 7);
  EXPECT_EQ(DurationNs::micros(3).ns(), 3'000);
  EXPECT_EQ(DurationNs::millis(20).ns(), 20'000'000);
  EXPECT_EQ(DurationNs::seconds(5).ns(), 5'000'000'000);
}

TEST(DurationNs, FractionalSecondsRoundToNearest) {
  EXPECT_EQ(DurationNs::from_seconds_f(0.001).ns(), 1'000'000);
  EXPECT_EQ(DurationNs::from_seconds_f(1e-9).ns(), 1);
  EXPECT_EQ(DurationNs::from_seconds_f(-0.001).ns(), -1'000'000);
  EXPECT_EQ(DurationNs::from_seconds_f(0.25e-9 * 2).ns(), 1);  // 0.5 rounds up
}

TEST(DurationNs, ArithmeticAndComparison) {
  const DurationNs a = DurationNs::millis(3);
  const DurationNs b = DurationNs::millis(2);
  EXPECT_EQ((a + b).ns(), 5'000'000);
  EXPECT_EQ((a - b).ns(), 1'000'000);
  EXPECT_EQ((a * 4).ns(), 12'000'000);
  EXPECT_EQ((a / 3).ns(), 1'000'000);
  EXPECT_DOUBLE_EQ(a / b, 1.5);
  EXPECT_LT(b, a);
  EXPECT_EQ(-a, DurationNs::millis(-3));
}

TEST(DurationNs, ScaledRoundsToNearestNs) {
  EXPECT_EQ(DurationNs::nanos(10).scaled(0.25).ns(), 3);  // 2.5 → 3
  EXPECT_EQ(DurationNs::nanos(100).scaled(1.5).ns(), 150);
}

TEST(DurationNs, InfiniteIsSticky) {
  EXPECT_TRUE(DurationNs::infinite().is_infinite());
  EXPECT_FALSE(DurationNs::millis(1).is_infinite());
  EXPECT_TRUE(DurationNs::zero().is_zero());
}

TEST(TimeNs, PointArithmetic) {
  const TimeNs t = TimeNs::millis(100);
  EXPECT_EQ((t + DurationNs::millis(20)).ns(), TimeNs::millis(120).ns());
  EXPECT_EQ((t - DurationNs::millis(20)).ns(), TimeNs::millis(80).ns());
  EXPECT_EQ((TimeNs::millis(150) - t).ns(), DurationNs::millis(50).ns());
  EXPECT_LT(t, TimeNs::millis(101));
}

TEST(DataRate, TransferTimeMatchesPaperConstants) {
  // The paper's setup: 12 Mbps, 1500 B frames → exactly 1 ms per packet.
  const DataRate r = DataRate::mbps(12);
  EXPECT_EQ(r.transfer_time(1500), DurationNs::millis(1));
  EXPECT_EQ(r.transfer_time(750), DurationNs::micros(500));
}

TEST(DataRate, FromBytesPerInterval) {
  EXPECT_EQ(DataRate::from_bytes_per(1500, DurationNs::millis(1)),
            DataRate::mbps(12));
}

TEST(DataRate, ScaledAppliesGain) {
  EXPECT_EQ(DataRate::mbps(12).scaled(1.25), DataRate::mbps(15));
  EXPECT_EQ(DataRate::mbps(12).scaled(0.75), DataRate::mbps(9));
}

TEST(DataRate, MbpsConversion) {
  EXPECT_DOUBLE_EQ(DataRate::kbps(1500).mbps_f(), 1.5);
}

TEST(TimeStrings, ToStringProducesReadableUnits) {
  EXPECT_FALSE(DurationNs::millis(3).to_string().empty());
  EXPECT_FALSE(TimeNs::seconds(2).to_string().empty());
  EXPECT_FALSE(DataRate::mbps(12).to_string().empty());
}

}  // namespace
}  // namespace ccfuzz
