// Pid-file triage: absent/garbage files have nothing to reclaim, a gone pid
// is stale (reclaim), a live pid running another binary is a recycled pid
// (reclaim louder), and a live pid running *our* binary blocks a double-run.
#include "dist/pidfile.h"

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace ccfuzz::dist {
namespace {

namespace fs = std::filesystem;

class PidFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("ccfuzz_pid_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(base_);
    fs::create_directories(base_);
    path_ = (base_ / "worker.pid").string();
  }
  void TearDown() override { fs::remove_all(base_); }

  void write_pid(const std::string& text) {
    std::ofstream(path_, std::ios::binary) << text;
  }

  /// The running test binary — what /proc/self/exe resolves to.
  static std::string self_exe() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    return n > 0 ? std::string(buf, static_cast<std::size_t>(n))
                 : std::string();
  }

  fs::path base_;
  std::string path_;
};

TEST_F(PidFileTest, MissingOrGarbageFileIsAbsent) {
  EXPECT_EQ(check_pid_file(path_, "/bin/true").status, PidStatus::kAbsent);
  write_pid("not a pid\n");
  EXPECT_EQ(check_pid_file(path_, "/bin/true").status, PidStatus::kAbsent);
  write_pid("");
  EXPECT_EQ(check_pid_file(path_, "/bin/true").status, PidStatus::kAbsent);
}

TEST_F(PidFileTest, ReapedProcessIsMissing) {
  // A forked-and-reaped child's pid is guaranteed dead (and, having just
  // been reaped, not yet recycled).
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  write_pid(std::to_string(child) + "\n");
  const PidCheck check = check_pid_file(path_, "/bin/true");
  EXPECT_EQ(check.status, PidStatus::kMissing);
  EXPECT_EQ(check.pid, child);
}

TEST_F(PidFileTest, OurOwnPidAndBinaryIsLive) {
  const std::string exe = self_exe();
  ASSERT_FALSE(exe.empty());
  write_pid(std::to_string(getpid()) + "\n");
  const PidCheck check = check_pid_file(path_, exe);
  EXPECT_EQ(check.status, PidStatus::kLive);
  EXPECT_EQ(check.pid, getpid());
  EXPECT_EQ(check.exe, exe);
}

TEST_F(PidFileTest, LivePidRunningAnotherBinaryIsStale) {
  write_pid(std::to_string(getpid()) + "\n");
  const PidCheck check = check_pid_file(path_, "/bin/true");
  EXPECT_EQ(check.status, PidStatus::kStale);
  EXPECT_EQ(check.pid, getpid());
}

TEST_F(PidFileTest, StatusNamesAreStable) {
  EXPECT_STREQ(to_string(PidStatus::kAbsent), "absent");
  EXPECT_STREQ(to_string(PidStatus::kMissing), "missing");
  EXPECT_STREQ(to_string(PidStatus::kStale), "stale");
  EXPECT_STREQ(to_string(PidStatus::kLive), "live");
}

}  // namespace
}  // namespace ccfuzz::dist
