// RestartPolicy is pure arithmetic over caller timestamps, so these tests
// drive it with literal times and assert exact delays: exponential doubling
// from the base to the cap, deterministic jitter, and a restart budget that
// slides with the window instead of counting lifetime deaths.
#include "dist/restart_policy.h"

#include <gtest/gtest.h>

namespace ccfuzz::dist {
namespace {

RestartPolicyConfig no_jitter() {
  RestartPolicyConfig cfg;
  cfg.base_delay_s = 0.25;
  cfg.max_delay_s = 30.0;
  cfg.budget = 100;  // irrelevant here
  cfg.window_s = 1e9;
  cfg.jitter = 0.0;
  return cfg;
}

TEST(RestartPolicyTest, DelaysDoubleFromBaseToCap) {
  RestartPolicy p(no_jitter());
  double t = 0.0;
  double expect = 0.25;
  for (int i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(p.on_death(t), expect) << "death " << i;
    t += 1.0;
    expect *= 2.0;
  }
  // 0.25 * 2^7 = 32 would exceed the cap; this and every later delay pins
  // to it.
  EXPECT_DOUBLE_EQ(p.on_death(t), 30.0);
  EXPECT_DOUBLE_EQ(p.on_death(t + 1), 30.0);
}

TEST(RestartPolicyTest, ResetBackoffRestartsTheStreakNotTheBudget) {
  RestartPolicyConfig cfg = no_jitter();
  cfg.budget = 4;
  cfg.window_s = 1000.0;
  RestartPolicy p(cfg);
  EXPECT_DOUBLE_EQ(p.on_death(0.0), 0.25);
  EXPECT_DOUBLE_EQ(p.on_death(1.0), 0.5);
  p.reset_backoff();
  // The streak restarts at the base...
  EXPECT_DOUBLE_EQ(p.on_death(2.0), 0.25);
  EXPECT_DOUBLE_EQ(p.on_death(3.0), 0.5);
  // ...but the window still remembers all four deaths: budget exhausted.
  EXPECT_LT(p.on_death(4.0), 0.0);
  EXPECT_EQ(p.in_window(4.0), 4);
}

TEST(RestartPolicyTest, BudgetSlidesWithTheWindow) {
  RestartPolicyConfig cfg = no_jitter();
  cfg.budget = 2;
  cfg.window_s = 100.0;
  RestartPolicy p(cfg);
  EXPECT_GE(p.on_death(0.0), 0.0);
  EXPECT_GE(p.on_death(10.0), 0.0);
  // Both deaths inside the window: the third is refused.
  EXPECT_LT(p.on_death(20.0), 0.0);
  EXPECT_EQ(p.in_window(20.0), 2);
  // 101s after the first death it ages out; one slot frees up.
  EXPECT_EQ(p.in_window(101.0), 1);
  EXPECT_GE(p.on_death(101.0), 0.0);
  // A refused death is not recorded: the window holds the two real ones.
  EXPECT_EQ(p.in_window(101.0), 2);
}

TEST(RestartPolicyTest, ZeroBudgetDisablesRestartsEntirely) {
  RestartPolicyConfig cfg = no_jitter();
  cfg.budget = 0;
  RestartPolicy p(cfg);
  EXPECT_LT(p.on_death(0.0), 0.0);
}

TEST(RestartPolicyTest, JitterIsBoundedAndDeterministicPerSeed) {
  RestartPolicyConfig cfg = no_jitter();
  cfg.jitter = 0.25;
  cfg.seed = 7;
  RestartPolicy a(cfg);
  RestartPolicy b(cfg);  // same seed: identical jitter sequence
  cfg.seed = 8;
  RestartPolicy c(cfg);  // different seed: decorrelated shards
  double base = 0.25;
  bool diverged = false;
  for (int i = 0; i < 6; ++i) {
    const double da = a.on_death(i);
    const double db = b.on_death(i);
    const double dc = c.on_death(i);
    EXPECT_DOUBLE_EQ(da, db) << "death " << i;
    // Jitter scales by [1, 1 + jitter] on top of the exponential step.
    EXPECT_GE(da, base);
    EXPECT_LE(da, base * 1.25);
    diverged = diverged || da != dc;
    base *= 2.0;
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical jitter";
}

}  // namespace
}  // namespace ccfuzz::dist
