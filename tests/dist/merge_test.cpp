// The distributed merge: a 2-shard campaign run through the real worker
// driver, merged back, must be byte-identical to the single-process run of
// the identical matrix (summaries, per-cell artifacts, archives). Corrupt
// shard trees surface as typed Errors, never crashes.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/report.h"
#include "dist/merge.h"
#include "dist/shard_plan.h"
#include "dist/worker.h"
#include "fuzz/elite_archive.h"
#include "fuzz/score.h"

namespace ccfuzz::dist {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void write_text(const fs::path& p, const std::string& body) {
  fs::create_directories(p.parent_path());
  std::ofstream os(p, std::ios::binary);
  os << body;
  ASSERT_TRUE(os) << p;
}

/// The campaign matrix both runs share: three coverage-guided cells (three
/// CCAs) so the plan splits across two shards and every cell produces an
/// elite archive for the union step.
campaign::CampaignConfig matrix() {
  scenario::ScenarioConfig sc;
  sc.duration = TimeNs::seconds(1);

  fuzz::GaConfig ga;
  ga.population = 8;
  ga.islands = 2;
  ga.max_generations = 2;
  ga.seed = 21;
  ga.search = fuzz::SearchMode::kMapElites;

  campaign::CampaignConfig cfg;
  cfg.ccas({"reno", "cubic", "bbr"})
      .modes({scenario::FuzzMode::kTraffic})
      .base_scenario(sc)
      .score(std::make_shared<fuzz::LowUtilizationScore>())
      .ga(ga)
      .winners(2);
  return cfg;
}

class MergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("ccfuzz_merge_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  fs::path base_;
};

TEST_F(MergeTest, TwoShardRunMergesByteIdenticalToSingleProcess) {
  // Single-process reference.
  const std::string ref = (base_ / "ref").string();
  {
    campaign::CampaignConfig cfg = matrix();
    cfg.output_dir(ref);
    campaign::Campaign c(cfg);
    ASSERT_FALSE(c.run().interrupted);
  }

  // The same campaign through the real worker driver, one shard at a time.
  const std::string root = (base_ / "sharded").string();
  const ShardPlan plan = ShardPlan::build(matrix().cells(), 2);
  ASSERT_GT(plan.cell_count(0), 0u) << "plan left shard 0 empty";
  ASSERT_GT(plan.cell_count(1), 0u) << "plan left shard 1 empty";
  for (int k = 0; k < 2; ++k) {
    WorkerOptions w;
    w.shard = k;
    w.num_shards = 2;
    w.root = root;
    w.jsonl_stdout = false;
    ASSERT_EQ(run_worker(matrix(), w), 0) << "shard " << k;
  }

  const Result<MergeStats> stats = merge_reports(root, plan, root);
  ASSERT_TRUE(stats) << stats.error().message;
  EXPECT_EQ(stats->cells, 3u);
  EXPECT_EQ(stats->shards_read, 2u);
  EXPECT_FALSE(stats->interrupted);

  // The merged report is the single-process report, byte for byte.
  for (const char* rel : {"summary.csv", "summary.json",
                          "reno.traffic.low-utilization/history.csv",
                          "cubic.traffic.low-utilization/history.csv",
                          "bbr.traffic.low-utilization/history.csv",
                          "reno.traffic.low-utilization/archive.txt",
                          "reno.traffic.low-utilization/winner_0.trace"}) {
    ASSERT_TRUE(fs::exists(fs::path(root) / rel)) << rel;
    EXPECT_EQ(slurp(fs::path(root) / rel), slurp(fs::path(ref) / rel))
        << rel << " diverged between sharded and single-process runs";
  }

  // The campaign-wide archive union exists and absorbed every cell.
  EXPECT_EQ(stats->archives_merged, 3u);
  EXPECT_GT(stats->archive_cells, 0u);
  const auto merged =
      fuzz::EliteArchive::try_load_file(root + "/archive_merged.txt");
  ASSERT_TRUE(merged) << merged.error().message;
  EXPECT_EQ(merged->filled(), stats->archive_cells);
  EXPECT_EQ(merged->union_bits(), stats->coverage_bits);
}

TEST_F(MergeTest, EmptyShardIsACompleteShard) {
  // One cell, two shards: one shard owns nothing. The worker still writes a
  // well-formed (empty) report tree, and the merge never reads it.
  campaign::CampaignConfig cfg = matrix();
  campaign::CampaignConfig one;
  one.add_cell(cfg.cells()[0]);
  const ShardPlan plan = ShardPlan::build(one.cells(), 2);
  const std::string root = (base_ / "root").string();
  for (int k = 0; k < 2; ++k) {
    WorkerOptions w;
    w.shard = k;
    w.num_shards = 2;
    w.root = root;
    w.jsonl_stdout = false;
    ASSERT_EQ(run_worker(one, w), 0);
  }
  const Result<MergeStats> stats = merge_reports(root, plan, root);
  ASSERT_TRUE(stats) << stats.error().message;
  EXPECT_EQ(stats->cells, 1u);
  EXPECT_EQ(stats->shards_read, 1u);
  // Both shard trees exist and carry a parseable summary.
  for (int k = 0; k < 2; ++k) {
    EXPECT_TRUE(fs::exists(fs::path(shard_dir(root, k)) / "summary.csv")) << k;
  }
}

// --- Corrupt shard trees → typed errors --------------------------------------
// A one-cell plan over a handcrafted shard tree; each test mangles one layer.

ShardPlan tiny_plan() {
  campaign::CellConfig cell;
  cell.name = "a";
  return ShardPlan::build({cell}, 1);
}

/// Minimal well-formed shard summaries owning exactly cell "a".
void write_tiny_shard(const fs::path& root) {
  const fs::path shard = fs::path(shard_dir(root.string(), 0));
  write_text(shard / "summary.csv",
             std::string(campaign::summary_csv_header()) +
                 "a,reno,traffic,low-utilization,1,2,16,16,0,0,0,0,0,-,1,-\n");
  write_text(shard / "summary.json",
             "{\n  \"interrupted\": false,\n  \"cells\": [\n"
             "    {\n      \"name\": \"a\",\n      \"winners\": [\n"
             "      ]\n    }\n  ]\n}\n");
  write_text(shard / "a" / "history.csv", "generation\n0\n");
}

TEST_F(MergeTest, MissingShardSummaryIsKIo) {
  const auto r = merge_reports(base_.string(), tiny_plan(),
                               (base_ / "out").string());
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kIo);
}

TEST_F(MergeTest, MangledCsvHeaderIsKParse) {
  write_tiny_shard(base_);
  write_text(fs::path(shard_dir(base_.string(), 0)) / "summary.csv",
             "not,the,header\na,row\n");
  const auto r = merge_reports(base_.string(), tiny_plan(),
                               (base_ / "out").string());
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kParse);
}

TEST_F(MergeTest, TruncatedSummaryJsonIsKTruncated) {
  write_tiny_shard(base_);
  write_text(fs::path(shard_dir(base_.string(), 0)) / "summary.json",
             "{\n  \"interrupted\": false,\n  \"cells\": [\n"
             "    {\n      \"name\": \"a\",\n");
  const auto r = merge_reports(base_.string(), tiny_plan(),
                               (base_ / "out").string());
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kTruncated);
}

TEST_F(MergeTest, PlannedCellMissingFromShardSummaryIsKMismatch) {
  write_tiny_shard(base_);
  campaign::CellConfig extra;
  extra.name = "ghost";
  ShardPlan plan = tiny_plan();
  plan.entries.push_back({extra.name, 0});
  const auto r =
      merge_reports(base_.string(), plan, (base_ / "out").string());
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kMismatch);
}

TEST_F(MergeTest, MissingCellDirectoryIsKCorrupt) {
  write_tiny_shard(base_);
  fs::remove_all(fs::path(shard_dir(base_.string(), 0)) / "a");
  const auto r = merge_reports(base_.string(), tiny_plan(),
                               (base_ / "out").string());
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kCorrupt);
}

TEST_F(MergeTest, CorruptArchiveDegradesToAWarningNotAnError) {
  write_tiny_shard(base_);
  write_text(fs::path(shard_dir(base_.string(), 0)) / "a" / "archive.txt",
             "garbage, not an archive\n");
  const auto r = merge_reports(base_.string(), tiny_plan(),
                               (base_ / "out").string());
  ASSERT_TRUE(r) << r.error().message;
  EXPECT_EQ(r->archives_merged, 0u);
  EXPECT_FALSE(fs::exists(base_ / "out" / "archive_merged.txt"));
}

}  // namespace
}  // namespace ccfuzz::dist
