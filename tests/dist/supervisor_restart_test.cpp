// End-to-end distributed-campaign supervision, driving the real ccfuzz CLI:
// a 2-worker supervised run must survive SIGKILLing a worker mid-campaign
// (the supervisor restarts it from its shard checkpoint) and still merge a
// report byte-identical to the single-process reference run. Also pins the
// graceful path: SIGTERM to the supervisor drains the workers, leaves
// resumable shard checkpoints, and rerunning the same command finishes the
// campaign.
//
// Spawns children with fork+exec (fork without exec is unsafe once the test
// binary's thread pool exists).
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

const char* ccfuzz_binary() { return CCFUZZ_TOOLS_DIR "/ccfuzz"; }

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// fork+execs `ccfuzz run` with the shared tiny matrix; returns the pid.
pid_t spawn_run(const std::string& out_dir, const char* workers,
                const char* throttle_ms) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::freopen("/dev/null", "w", stdout);
    ::execl(ccfuzz_binary(), "ccfuzz", "run", "--output", out_dir.c_str(),
            "--workers", workers, "--ccas", "reno,cubic,bbr",
            "--generations", "3", "--population", "12", "--islands", "2",
            "--seed", "7", "--duration-ms", "800", "--throttle-ms",
            throttle_ms, static_cast<char*>(nullptr));
    std::_Exit(127);
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

/// Polls until some shard has both a live worker pid file and its first
/// checkpoint (so a SIGKILL provably lands mid-campaign and the restart has
/// state to resume from). Returns the victim pid, or -1 on timeout.
pid_t wait_for_killable_worker(const fs::path& root, int ms) {
  for (int i = 0; i < ms / 10; ++i) {
    for (int shard = 0; shard < 2; ++shard) {
      const fs::path dir = root / "shards" / std::to_string(shard);
      if (!fs::exists(dir / "worker.pid") ||
          !fs::exists(dir / "checkpoint" / "campaign.ckpt")) {
        continue;
      }
      const std::string text = slurp(dir / "worker.pid");
      const pid_t pid = static_cast<pid_t>(std::atol(text.c_str()));
      if (pid > 0) return pid;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

void expect_whole_json_lines(const fs::path& feed) {
  std::ifstream is(feed);
  std::string line;
  bool any = false;
  while (std::getline(is, line)) {
    any = true;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_TRUE(any) << feed << " is empty";
}

class SupervisorRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fs::exists(ccfuzz_binary())) {
      GTEST_SKIP() << "ccfuzz CLI not built at " << ccfuzz_binary();
    }
    base_ = fs::temp_directory_path() /
            ("ccfuzz_supervisor_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  /// The single-process reference report for the shared matrix.
  std::string run_reference() {
    const std::string ref = (base_ / "ref").string();
    const pid_t pid = spawn_run(ref, "0", "0");
    EXPECT_GT(pid, 0);
    const int status = wait_exit(pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "reference run failed";
    return ref;
  }

  void expect_matches_reference(const std::string& dir,
                                const std::string& ref) {
    for (const char* rel : {"summary.csv", "summary.json",
                            "reno.traffic.low-utilization/history.csv",
                            "cubic.traffic.low-utilization/history.csv",
                            "bbr.traffic.low-utilization/history.csv"}) {
      ASSERT_TRUE(fs::exists(fs::path(dir) / rel)) << rel;
      EXPECT_EQ(slurp(fs::path(dir) / rel), slurp(fs::path(ref) / rel))
          << rel << " diverged from the single-process reference";
    }
  }

  fs::path base_;
};

TEST_F(SupervisorRestartTest, SigkilledWorkerIsRestartedAndMergeMatches) {
  const std::string ref = run_reference();

  // Throttled 2-worker run; SIGKILL one worker once it has a checkpoint.
  const std::string dir = (base_ / "victim").string();
  const pid_t supervisor = spawn_run(dir, "2", "200");
  ASSERT_GT(supervisor, 0);
  const pid_t victim = wait_for_killable_worker(base_ / "victim", 60000);
  ASSERT_GT(victim, 0) << "no killable worker appeared";
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  const int status = wait_exit(supervisor);
  ASSERT_TRUE(WIFEXITED(status)) << "supervisor did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The supervisor observed the death and restarted from the checkpoint.
  const std::string feed = slurp(fs::path(dir) / "progress.jsonl");
  EXPECT_NE(feed.find("\"event\":\"worker_start\""), std::string::npos);
  EXPECT_NE(feed.find("\"event\":\"worker_exit\""), std::string::npos);
  EXPECT_NE(feed.find("\"event\":\"worker_restart\""), std::string::npos)
      << "no restart recorded — did the kill land after completion?";
  expect_whole_json_lines(fs::path(dir) / "progress.jsonl");

  // And the merged report is still the single-process report.
  expect_matches_reference(dir, ref);
}

TEST_F(SupervisorRestartTest, SigtermDrainsGracefullyAndRerunResumes) {
  const std::string ref = run_reference();

  const std::string dir = (base_ / "graceful").string();
  const pid_t supervisor = spawn_run(dir, "2", "200");
  ASSERT_GT(supervisor, 0);
  ASSERT_GT(wait_for_killable_worker(base_ / "graceful", 60000), 0);
  ASSERT_EQ(::kill(supervisor, SIGTERM), 0);

  // Graceful interruption: exit 3 (interrupted), workers drained, no merge.
  const int status = wait_exit(supervisor);
  ASSERT_TRUE(WIFEXITED(status)) << "supervisor did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 3);
  expect_whole_json_lines(fs::path(dir) / "progress.jsonl");

  // Rerunning the identical command resumes every shard from its checkpoint
  // and finishes the campaign bit-identically.
  const pid_t resume = spawn_run(dir, "2", "0");
  ASSERT_GT(resume, 0);
  const int resume_status = wait_exit(resume);
  ASSERT_TRUE(WIFEXITED(resume_status) && WEXITSTATUS(resume_status) == 0)
      << "resumed run failed";
  expect_matches_reference(dir, ref);
}

}  // namespace
