// Supervisor backoff, observed through the injected fake clock: a worker
// that dies instantly (/bin/false) is respawned on an exponential schedule
// (base doubling, jitter disabled) until the sliding-window budget runs out,
// at which point the shard is marked failed and run() returns 1. Also pins
// the pid-triage refusal: a live worker pid running the supervisor's own
// worker binary blocks a double-run before anything is spawned.
#include "dist/supervisor.h"

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace ccfuzz::dist {
namespace {

namespace fs = std::filesystem;

class SupervisorBackoffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    campaign::reset_stop_flag();
    base_ = fs::temp_directory_path() /
            ("ccfuzz_backoff_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    campaign::reset_stop_flag();
    if (devnull_) {
      std::fclose(devnull_);
      devnull_ = nullptr;
    }
    fs::remove_all(base_);
  }

  SupervisorOptions crash_loop_options() {
    SupervisorOptions opt;
    opt.binary = "/bin/false";  // execs fine, exits 1 instantly
    opt.root = base_.string();
    opt.max_restarts = 3;
    opt.restart_base_delay_s = 0.25;
    opt.restart_max_delay_s = 30.0;
    opt.restart_window_s = 300.0;
    opt.restart_jitter = 0.0;  // exact delays, no [1, 1.25) scaling
    opt.heartbeat_timeout_s = 0.0;
    opt.min_free_bytes = 0;  // keep the test off the real disk state
    // Fake clock: every scheduling read advances virtual time, so backoff
    // deadlines pass in a few poll iterations instead of real seconds.
    opt.clock = [this] { return fake_now_ += 0.05; };
    opt.log = devnull_ = std::fopen("/dev/null", "w");
    return opt;
  }

  static ShardPlan one_cell_plan() {
    ShardPlan plan;
    plan.num_shards = 1;
    plan.entries = {{"cell-a", 0}};
    return plan;
  }

  /// Feed lines containing `needle`.
  int feed_count(const std::string& needle) {
    std::ifstream is(base_ / "progress.jsonl");
    std::string line;
    int n = 0;
    while (std::getline(is, line)) {
      if (line.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

  /// `delay_s` values of the worker_backoff events, in feed order.
  std::vector<double> backoff_delays() {
    std::vector<double> out;
    std::ifstream is(base_ / "progress.jsonl");
    std::string line;
    const std::string tag = "\"delay_s\":";
    while (std::getline(is, line)) {
      if (line.find("\"event\":\"worker_backoff\"") == std::string::npos) {
        continue;
      }
      const std::size_t at = line.find(tag);
      if (at == std::string::npos) {
        ADD_FAILURE() << "backoff event without delay_s: " << line;
        continue;
      }
      out.push_back(std::atof(line.c_str() + at + tag.size()));
    }
    return out;
  }

  fs::path base_;
  double fake_now_ = 0.0;
  std::FILE* devnull_ = nullptr;
};

TEST_F(SupervisorBackoffTest, CrashLoopBacksOffExponentiallyThenFails) {
  Supervisor s(crash_loop_options(), one_cell_plan());
  EXPECT_EQ(s.run(), 1);
  EXPECT_FALSE(s.interrupted());

  // Budget 3 in the window: three paced restarts, then the fourth death is
  // refused. The delays are the pure doubling sequence — observable only
  // because the clock is fake and jitter is off.
  const std::vector<double> delays = backoff_delays();
  ASSERT_EQ(delays.size(), 3u);
  EXPECT_DOUBLE_EQ(delays[0], 0.25);
  EXPECT_DOUBLE_EQ(delays[1], 0.5);
  EXPECT_DOUBLE_EQ(delays[2], 1.0);

  // 1 initial spawn + 3 restarts = 4 worker_start events.
  EXPECT_EQ(feed_count("\"event\":\"worker_start\""), 4);
  EXPECT_EQ(feed_count("\"event\":\"worker_restart\""), 3);
  EXPECT_EQ(feed_count("\"event\":\"worker_exit\""), 4);
}

TEST_F(SupervisorBackoffTest, LiveSiblingWorkerPidBlocksDoubleRun) {
  // A long-lived /bin/sleep stands in for the sibling campaign's worker.
  const pid_t sibling = ::fork();
  ASSERT_GE(sibling, 0);
  if (sibling == 0) {
    ::execl("/bin/sleep", "sleep", "600", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  const fs::path shard_dir = base_ / "shards" / "0";
  fs::create_directories(shard_dir);
  std::ofstream(shard_dir / "worker.pid") << sibling << "\n";

  SupervisorOptions opt = crash_loop_options();
  opt.binary = "/bin/sleep";  // the pid's exe matches our worker binary
  Supervisor s(opt, one_cell_plan());
  EXPECT_EQ(s.run(), 1);  // refused before spawning anything
  EXPECT_EQ(feed_count("\"event\":\"worker_start\""), 0);

  // The refusal never reclaimed (deleted) the sibling's pid file.
  std::ifstream pid_is(shard_dir / "worker.pid");
  pid_t recorded = 0;
  pid_is >> recorded;
  EXPECT_EQ(recorded, sibling);

  ASSERT_EQ(::kill(sibling, SIGKILL), 0);
  int status = 0;
  ::waitpid(sibling, &status, 0);
}

TEST_F(SupervisorBackoffTest, StalePidFilesAreReclaimedAndTheRunProceeds) {
  // A reaped child's pid is dead: triage says kMissing, the supervisor
  // reclaims the shard and the (crash-looping) run proceeds to its budget.
  const pid_t gone = ::fork();
  ASSERT_GE(gone, 0);
  if (gone == 0) ::_exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(gone, &status, 0), gone);

  const fs::path shard_dir = base_ / "shards" / "0";
  fs::create_directories(shard_dir);
  std::ofstream(shard_dir / "worker.pid") << gone << "\n";

  Supervisor s(crash_loop_options(), one_cell_plan());
  EXPECT_EQ(s.run(), 1);  // crash loop exhausts the budget — but it *ran*
  EXPECT_EQ(feed_count("\"event\":\"worker_start\""), 4);
}

}  // namespace
}  // namespace ccfuzz::dist
