// ShardPlan semantics: stable, coordination-free cell assignment and the
// shard_plan.json round trip, including the typed-error taxonomy on
// malformed plan files.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/shard_plan.h"

namespace ccfuzz::dist {
namespace {

namespace fs = std::filesystem;

std::vector<campaign::CellConfig> named_cells(
    const std::vector<std::string>& names) {
  std::vector<campaign::CellConfig> cells;
  for (const auto& n : names) {
    campaign::CellConfig c;
    c.name = n;
    cells.push_back(std::move(c));
  }
  return cells;
}

TEST(ShardPlan, ShardOfIsDeterministicAndInRange) {
  for (const char* name : {"reno.traffic.low-utilization", "a", "", "x.y.z"}) {
    for (int shards : {1, 2, 3, 7, 64}) {
      const std::uint32_t s = ShardPlan::shard_of(name, shards);
      EXPECT_LT(s, static_cast<std::uint32_t>(shards));
      EXPECT_EQ(s, ShardPlan::shard_of(name, shards)) << name;
    }
  }
}

TEST(ShardPlan, AssignmentIgnoresOtherCells) {
  // The load-bearing property: a cell's owner depends only on its own name,
  // so a worker that expands the full matrix and a plan built from any
  // subset agree, and adding cells never reshuffles existing shards.
  const auto full = named_cells({"a.traffic", "b.traffic", "c.link", "d"});
  const ShardPlan plan = ShardPlan::build(full, 3);
  for (const auto& e : plan.entries) {
    EXPECT_EQ(e.shard, ShardPlan::shard_of(e.cell, 3)) << e.cell;
  }
  const ShardPlan subset = ShardPlan::build(named_cells({"d", "a.traffic"}), 3);
  EXPECT_EQ(subset.entries[0].shard, plan.entries[3].shard);
  EXPECT_EQ(subset.entries[1].shard, plan.entries[0].shard);
}

TEST(ShardPlan, SpreadsRealisticCellNamesAcrossTwoShards) {
  // Regression guard for the hash finalizer: raw FNV-1a's low bit is linear
  // in the input bytes, which sent entire cca.mode.score families to one
  // shard when taken mod 2. The mixed hash must populate both shards.
  std::vector<std::string> names;
  for (const char* cca : {"reno", "cubic", "bbr", "vegas"}) {
    for (const char* mode : {"traffic", "link"}) {
      names.push_back(std::string(cca) + "." + mode + ".low-utilization");
    }
  }
  std::set<std::uint32_t> used;
  for (const auto& n : names) used.insert(ShardPlan::shard_of(n, 2));
  EXPECT_EQ(used.size(), 2u) << "all cells hashed to one shard";
}

TEST(ShardPlan, BuildPreservesOrderAndValidates) {
  const auto cells = named_cells({"z", "a", "m"});
  const ShardPlan plan = ShardPlan::build(cells, 2);
  ASSERT_EQ(plan.entries.size(), 3u);
  EXPECT_EQ(plan.entries[0].cell, "z");
  EXPECT_EQ(plan.entries[1].cell, "a");
  EXPECT_EQ(plan.entries[2].cell, "m");
  EXPECT_EQ(plan.cell_count(0) + plan.cell_count(1), 3u);
  std::size_t indexed = 0;
  for (std::uint32_t s : {0u, 1u}) {
    for (std::size_t i : plan.cells_of(s)) {
      EXPECT_EQ(plan.entries[i].shard, s);
      ++indexed;
    }
  }
  EXPECT_EQ(indexed, 3u);
  EXPECT_THROW(ShardPlan::build(cells, 0), std::invalid_argument);
}

TEST(ShardPlan, JsonRoundTripsIncludingHostileNames) {
  const auto cells = named_cells({
      "plain.traffic.low-utilization",
      "with \"quotes\" and, commas",
      "back\\slash and\ttab",
  });
  const ShardPlan plan = ShardPlan::build(cells, 5);

  std::istringstream is(plan.to_json());
  const Result<ShardPlan> loaded = ShardPlan::try_load(is);
  ASSERT_TRUE(loaded) << loaded.error().message;
  EXPECT_EQ(loaded->num_shards, plan.num_shards);
  ASSERT_EQ(loaded->entries.size(), plan.entries.size());
  for (std::size_t i = 0; i < plan.entries.size(); ++i) {
    EXPECT_EQ(loaded->entries[i].cell, plan.entries[i].cell);
    EXPECT_EQ(loaded->entries[i].shard, plan.entries[i].shard);
  }
}

TEST(ShardPlan, SaveFileLoadFileRoundTrips) {
  const fs::path dir =
      fs::temp_directory_path() / "ccfuzz_shard_plan_roundtrip";
  fs::create_directories(dir);
  const std::string path = (dir / "shard_plan.json").string();

  const ShardPlan plan = ShardPlan::build(named_cells({"a", "b", "c"}), 2);
  ASSERT_FALSE(plan.save_file(path));
  const Result<ShardPlan> loaded = ShardPlan::try_load_file(path);
  ASSERT_TRUE(loaded) << loaded.error().message;
  EXPECT_EQ(loaded->entries.size(), 3u);
  fs::remove_all(dir);
}

TEST(ShardPlanErrors, MissingFileIsKIo) {
  const auto r = ShardPlan::try_load_file("/nonexistent/shard_plan.json");
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kIo);
}

TEST(ShardPlanErrors, EmptyInputIsKTruncated) {
  std::istringstream is("");
  const auto r = ShardPlan::try_load(is);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.error().code, Error::Code::kTruncated);
}

TEST(ShardPlanErrors, MalformedContentIsKParse) {
  for (const char* body : {
           "not json at all\n",
           "{\n  \"num_shards\": zero,\n  \"cells\": [\n  ]\n}\n",
           "{\n  \"num_shards\": 2,\n  \"cells\": [\n    garbage\n  ]\n}\n",
       }) {
    std::istringstream is(body);
    const auto r = ShardPlan::try_load(is);
    ASSERT_FALSE(r) << body;
    EXPECT_EQ(r.error().code, Error::Code::kParse) << body;
  }
}

TEST(ShardPlanErrors, TruncatedStructureIsKTruncated) {
  for (const char* body : {
           "{\n",
           "{\n  \"num_shards\": 2,\n",
           "{\n  \"num_shards\": 2,\n  \"cells\": [\n",
           "{\n  \"num_shards\": 2,\n  \"cells\": [\n"
           "    {\"cell\": \"a\", \"shard\": 0}\n",
       }) {
    std::istringstream is(body);
    const auto r = ShardPlan::try_load(is);
    ASSERT_FALSE(r) << body;
    EXPECT_EQ(r.error().code, Error::Code::kTruncated) << body;
  }
}

TEST(ShardPlanErrors, InvalidContentIsKCorrupt) {
  // Shard index out of the declared range.
  {
    std::istringstream is(
        "{\n  \"num_shards\": 2,\n  \"cells\": [\n"
        "    {\"cell\": \"a\", \"shard\": 5}\n  ]\n}\n");
    const auto r = ShardPlan::try_load(is);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error().code, Error::Code::kCorrupt);
  }
  // The same cell owned twice.
  {
    std::istringstream is(
        "{\n  \"num_shards\": 2,\n  \"cells\": [\n"
        "    {\"cell\": \"a\", \"shard\": 0},\n"
        "    {\"cell\": \"a\", \"shard\": 1}\n  ]\n}\n");
    const auto r = ShardPlan::try_load(is);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error().code, Error::Code::kCorrupt);
  }
}

}  // namespace
}  // namespace ccfuzz::dist
