// Campaign archive persistence: coverage cells write their MAP-Elites
// archive into the report tree, and a second campaign pointed at that tree
// (resume_dir) reloads it and keeps filling cells instead of starting cold.
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/report.h"
#include "fuzz/elite_archive.h"
#include "fuzz/score.h"

namespace ccfuzz::campaign {
namespace {

CellConfig coverage_cell(std::uint64_t seed) {
  CellConfig cell;
  cell.cca = "reno";
  cell.scenario.duration = TimeNs::seconds(1);
  cell.score = std::make_shared<fuzz::LowUtilizationScore>();
  cell.traffic_model.max_packets = 150;
  cell.ga.population = 8;
  cell.ga.islands = 2;
  cell.ga.max_generations = 3;
  cell.ga.parallel = false;
  cell.ga.seed = seed;
  cell.ga.search = fuzz::SearchMode::kMapElites;
  return cell;
}

TEST(CampaignArchive, PersistsAndResumesAcrossCampaigns) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ccfuzz_archive_resume";
  fs::remove_all(dir);

  std::size_t first_filled = 0;
  {
    CampaignConfig cfg;
    cfg.add_cell(coverage_cell(1)).output_dir(dir.string());
    Campaign c(cfg);
    const auto& report = c.run();
    ASSERT_NE(report.cells.front().archive, nullptr);
    first_filled = report.cells.front().archive->filled();
    ASSERT_GT(first_filled, 0u);
  }

  const fs::path archive_path =
      dir / "reno.traffic.low-utilization" / "archive.txt";
  ASSERT_TRUE(fs::exists(archive_path));
  EXPECT_EQ(fuzz::EliteArchive::load_file(archive_path.string()).filled(),
            first_filled);

  // Second campaign, different GA seed, resumed from the first's tree: it
  // starts from the saved cells and only grows from there.
  {
    CampaignConfig cfg;
    cfg.add_cell(coverage_cell(2))
        .resume_dir(dir.string())
        .output_dir(dir.string());
    Campaign c(cfg);
    const auto& report = c.run();
    const auto& r = report.cells.front();
    ASSERT_NE(r.archive, nullptr);
    EXPECT_GE(r.archive->filled(), first_filled);
    ASSERT_FALSE(r.history.empty());
    EXPECT_GE(r.history.front().archive_cells,
              static_cast<std::int64_t>(first_filled));
  }

  // The resumed campaign rewrote the archive in place; it reloads and has
  // at least the original occupancy.
  EXPECT_GE(fuzz::EliteArchive::load_file(archive_path.string()).filled(),
            first_filled);
  fs::remove_all(dir);
}

TEST(CampaignArchive, MissingResumeFileIsAColdStart) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ccfuzz_archive_cold";
  fs::remove_all(dir);

  CampaignConfig cfg;
  cfg.add_cell(coverage_cell(1)).resume_dir(dir.string());
  // Nothing at the resume path: construction and the run succeed cold.
  Campaign c(cfg);
  const auto& report = c.run();
  ASSERT_NE(report.cells.front().archive, nullptr);
  EXPECT_GT(report.cells.front().archive->filled(), 0u);
}

TEST(CampaignArchive, CorruptResumeArchiveDegradesToFreshNotAbort) {
  // A crash can leave a partial or garbage archive.txt in the report tree.
  // Resuming over it must warn and start that cell's archive cold — never
  // throw out of the campaign constructor or run().
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ccfuzz_archive_corrupt";
  fs::remove_all(dir);

  {
    CampaignConfig cfg;
    cfg.add_cell(coverage_cell(1)).output_dir(dir.string());
    Campaign c(cfg);
    c.run();
  }
  const fs::path archive_path =
      dir / "reno.traffic.low-utilization" / "archive.txt";
  ASSERT_TRUE(fs::exists(archive_path));
  {
    std::ofstream os(archive_path, std::ios::binary);
    os << "# ccfuzz-archive v1\n# garbage that is not an entry\n\x03\x07";
  }

  CampaignConfig cfg;
  cfg.add_cell(coverage_cell(2))
      .resume_dir(dir.string())
      .output_dir(dir.string());
  Campaign c(cfg);  // must not throw
  const auto& report = c.run();
  ASSERT_NE(report.cells.front().archive, nullptr);
  EXPECT_GT(report.cells.front().archive->filled(), 0u);  // cold start filled
  fs::remove_all(dir);
}

TEST(CampaignArchive, PartialResumeArchiveDegradesToFreshNotAbort) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ccfuzz_archive_partial";
  fs::remove_all(dir);

  std::size_t first_filled = 0;
  {
    CampaignConfig cfg;
    cfg.add_cell(coverage_cell(1)).output_dir(dir.string());
    Campaign c(cfg);
    first_filled = c.run().cells.front().archive->filled();
  }
  const fs::path archive_path =
      dir / "reno.traffic.low-utilization" / "archive.txt";
  // Truncate to half: the tail entry is cut mid-genome.
  std::string bytes;
  {
    std::ifstream is(archive_path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    bytes = ss.str();
  }
  ASSERT_GT(bytes.size(), 2u);
  {
    std::ofstream os(archive_path, std::ios::binary);
    os << bytes.substr(0, bytes.size() / 2);
  }

  CampaignConfig cfg;
  cfg.add_cell(coverage_cell(2))
      .resume_dir(dir.string())
      .output_dir(dir.string());
  Campaign c(cfg);
  const auto& report = c.run();
  ASSERT_NE(report.cells.front().archive, nullptr);
  EXPECT_GT(report.cells.front().archive->filled(), 0u);
  (void)first_filled;
  fs::remove_all(dir);
}

TEST(CampaignArchive, ProbelessCellsCarryNoArchive) {
  CellConfig cell = coverage_cell(1);
  cell.ga.search = fuzz::SearchMode::kScore;  // cells() won't arm coverage
  CampaignConfig cfg;
  cfg.add_cell(cell);
  Campaign c(cfg);
  const auto& report = c.run();
  EXPECT_EQ(report.cells.front().archive, nullptr);
}

}  // namespace
}  // namespace ccfuzz::campaign
