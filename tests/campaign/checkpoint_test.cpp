// Crash-safe campaigns: checkpoint_every + resume_dir restore mid-campaign
// state so an interrupted campaign finishes with a report tree bit-identical
// to one that never stopped; corrupt checkpoints degrade to a fresh start.
#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "campaign/report.h"

namespace ccfuzz::campaign {
namespace {

namespace fs = std::filesystem;

fuzz::GaConfig tiny_ga() {
  fuzz::GaConfig ga;
  ga.population = 12;
  ga.islands = 2;
  ga.max_generations = 5;
  ga.seed = 77;
  return ga;
}

CampaignConfig tiny_campaign(const std::string& dir) {
  scenario::ScenarioConfig sc;
  sc.duration = TimeNs::seconds(1);
  CampaignConfig cfg;
  cfg.ccas({"reno", "cubic"})
      .modes({scenario::FuzzMode::kTraffic})
      .base_scenario(sc)
      .score(std::make_shared<fuzz::LowUtilizationScore>())
      .traffic_model({.max_packets = 150, .initial_packets = 75})
      .ga(tiny_ga())
      .winners(3)
      .output_dir(dir)
      .checkpoint_every(1);
  return cfg;
}

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// Raises the campaign stop flag after `n` generation events.
class StopAfterObserver final : public CampaignObserver {
 public:
  explicit StopAfterObserver(int n) : remaining_(n) {}
  void on_generation(const CellConfig&, const fuzz::GenStats&) override {
    if (--remaining_ == 0) request_stop();
  }

 private:
  int remaining_;
};

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_stop_flag();
    base_ = fs::temp_directory_path() /
            ("ccfuzz_ckpt_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(base_);
  }
  void TearDown() override {
    reset_stop_flag();
    fs::remove_all(base_);
  }

  fs::path base_;
};

TEST_F(CheckpointTest, CheckpointFileAppearsAndCampaignCompletes) {
  const std::string dir = (base_ / "out").string();
  Campaign c(tiny_campaign(dir));
  const auto& report = c.run();
  EXPECT_FALSE(report.interrupted);
  EXPECT_FALSE(c.resumed());
  EXPECT_TRUE(fs::exists(fs::path(dir) / "checkpoint" / "campaign.ckpt"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "summary.json"));
}

TEST_F(CheckpointTest, InterruptedThenResumedReportIsBitIdentical) {
  // Reference: straight through.
  const std::string ref_dir = (base_ / "ref").string();
  Campaign ref(tiny_campaign(ref_dir));
  ASSERT_FALSE(ref.run().interrupted);

  // Interrupted: stop mid-campaign (after 3 generation events of 2×5).
  const std::string dir = (base_ / "out").string();
  {
    Campaign c(tiny_campaign(dir));
    StopAfterObserver stopper(3);
    c.add_observer(&stopper);
    const auto& partial = c.run();
    EXPECT_TRUE(partial.interrupted);
    ASSERT_TRUE(fs::exists(fs::path(dir) / "checkpoint" / "campaign.ckpt"));
  }
  reset_stop_flag();

  // Resume from the checkpoint and finish.
  {
    CampaignConfig cfg = tiny_campaign(dir);
    cfg.resume_dir(dir);
    Campaign c(cfg);
    EXPECT_TRUE(c.resumed());
    const auto& report = c.run();
    EXPECT_FALSE(report.interrupted);
  }

  // The resumed tree is byte-identical to the uninterrupted one.
  for (const char* rel :
       {"summary.csv", "summary.json",
        "reno.traffic.low-utilization/history.csv",
        "cubic.traffic.low-utilization/history.csv",
        "reno.traffic.low-utilization/winner_0.trace",
        "cubic.traffic.low-utilization/winner_0.trace"}) {
    ASSERT_TRUE(fs::exists(fs::path(dir) / rel)) << rel;
    EXPECT_EQ(slurp(fs::path(dir) / rel), slurp(fs::path(ref_dir) / rel))
        << rel;
  }
}

TEST_F(CheckpointTest, ResumingAFinishedCampaignRewritesTheSameReport) {
  const std::string dir = (base_ / "out").string();
  Campaign first(tiny_campaign(dir));
  first.run();
  const std::string summary = slurp(fs::path(dir) / "summary.json");

  CampaignConfig cfg = tiny_campaign(dir);
  cfg.resume_dir(dir);
  Campaign again(cfg);
  EXPECT_TRUE(again.resumed());
  const auto& report = again.run();
  EXPECT_FALSE(report.interrupted);
  // All cells were restored done: nothing re-simulated.
  for (const auto& cell : report.cells) EXPECT_FALSE(cell.winners.empty());
  EXPECT_EQ(slurp(fs::path(dir) / "summary.json"), summary);
}

TEST_F(CheckpointTest, CorruptCheckpointDegradesToFreshStart) {
  const std::string dir = (base_ / "out").string();
  fs::create_directories(fs::path(dir) / "checkpoint");
  std::ofstream(fs::path(dir) / "checkpoint" / "campaign.ckpt")
      << "not a checkpoint at all\n\x01\x02gibberish";

  CampaignConfig cfg = tiny_campaign(dir);
  cfg.resume_dir(dir);
  Campaign c(cfg);
  EXPECT_FALSE(c.resumed());
  const auto& report = c.run();
  EXPECT_FALSE(report.interrupted);
  for (const auto& cell : report.cells) {
    EXPECT_FALSE(cell.winners.empty());
    EXPECT_EQ(cell.history.size(), 5u);
  }
}

TEST_F(CheckpointTest, TruncatedCheckpointDegradesToFreshStart) {
  const std::string dir = (base_ / "out").string();
  {
    Campaign c(tiny_campaign(dir));
    c.run();
  }
  const fs::path ckpt = fs::path(dir) / "checkpoint" / "campaign.ckpt";
  const std::string full = slurp(ckpt);
  ASSERT_GT(full.size(), 100u);
  std::ofstream(ckpt, std::ios::binary) << full.substr(0, full.size() / 3);
  // Rotation would rescue the truncated head from campaign.ckpt.prev (see
  // checkpoint_rotation_test.cpp); remove it so this pins the last rung of
  // the degradation ladder: no usable snapshot at all → fresh start.
  fs::remove(fs::path(ckpt.string() + ".prev"));

  CampaignConfig cfg = tiny_campaign(dir);
  cfg.resume_dir(dir);
  Campaign c(cfg);
  EXPECT_FALSE(c.resumed());
  EXPECT_FALSE(c.run().interrupted);
}

TEST_F(CheckpointTest, MismatchedCellConfigurationDegradesToFreshStart) {
  // Checkpoint a 2-cell campaign, try to resume a campaign whose first cell
  // differs: the restore must refuse (config drift), not graft state.
  const std::string dir = (base_ / "out").string();
  {
    Campaign c(tiny_campaign(dir));
    c.run();
  }
  CampaignConfig cfg = tiny_campaign(dir);
  cfg.resume_dir(dir);
  scenario::ScenarioConfig sc;
  sc.duration = TimeNs::seconds(1);
  cfg.ccas({"bbr", "cubic"}).base_scenario(sc);
  Campaign c(cfg);
  EXPECT_FALSE(c.resumed());
}

TEST_F(CheckpointTest, NoCheckpointWrittenWhenDisabled) {
  const std::string dir = (base_ / "out").string();
  CampaignConfig cfg = tiny_campaign(dir);
  cfg.checkpoint_every(0);
  Campaign c(cfg);
  c.run();
  EXPECT_FALSE(fs::exists(fs::path(dir) / "checkpoint"));
}

TEST(StopFlag, RequestAndResetRoundTrip) {
  reset_stop_flag();
  EXPECT_FALSE(stop_requested());
  request_stop();
  EXPECT_TRUE(stop_requested());
  reset_stop_flag();
  EXPECT_FALSE(stop_requested());
  install_stop_signal_handlers();  // idempotent, must not throw
  install_stop_signal_handlers();
}

TEST(StopFlag, InterruptedCampaignReportsPartialStateAndExitsCleanly) {
  reset_stop_flag();
  scenario::ScenarioConfig sc;
  sc.duration = TimeNs::seconds(1);
  CampaignConfig cfg;
  cfg.ccas({"reno"})
      .base_scenario(sc)
      .score(std::make_shared<fuzz::LowUtilizationScore>())
      .traffic_model({.max_packets = 150, .initial_packets = 75})
      .ga(tiny_ga());
  Campaign c(cfg);
  StopAfterObserver stopper(2);
  c.add_observer(&stopper);
  const auto& report = c.run();
  EXPECT_TRUE(report.interrupted);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_LT(report.cells.front().history.size(), 5u);
  EXPECT_GT(report.cells.front().history.size(), 0u);
  reset_stop_flag();
}

}  // namespace
}  // namespace ccfuzz::campaign
