// Tests for the campaign layer: matrix expansion, the batched cross-cell
// scheduler's equivalence with the plain Fuzzer, the evaluation cache,
// observers, and report serialization.
#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "campaign/panel.h"
#include "campaign/report.h"
#include "trace/hash.h"
#include "trace/trace_io.h"

namespace ccfuzz::campaign {
namespace {

fuzz::GaConfig tiny_ga() {
  fuzz::GaConfig ga;
  ga.population = 12;
  ga.islands = 2;
  ga.max_generations = 2;
  ga.seed = 99;
  return ga;
}

scenario::ScenarioConfig tiny_scenario() {
  scenario::ScenarioConfig s;
  s.duration = TimeNs::seconds(2);
  s.net.queue_capacity = 25;
  return s;
}

CellConfig tiny_cell(const char* cca = "reno") {
  CellConfig cell;
  cell.cca = cca;
  cell.scenario = tiny_scenario();
  cell.score = std::make_shared<fuzz::LowUtilizationScore>();
  cell.trace_weights = {.per_packet = 1e-4};
  cell.traffic_model.max_packets = 200;
  cell.ga = tiny_ga();
  return cell;
}

TEST(CampaignConfig, MatrixExpansionIsCcaMajorAndNamed) {
  CampaignConfig cfg;
  cfg.ccas({"bbr", "reno"})
      .modes({scenario::FuzzMode::kTraffic, scenario::FuzzMode::kLink})
      .base_scenario(tiny_scenario())
      .ga(tiny_ga());
  const auto cells = cfg.cells();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].name, "bbr.traffic.low-utilization");
  EXPECT_EQ(cells[1].name, "bbr.link.low-utilization");
  EXPECT_EQ(cells[2].name, "reno.traffic.low-utilization");
  EXPECT_EQ(cells[3].name, "reno.link.low-utilization");
  EXPECT_EQ(cells[1].scenario.mode, scenario::FuzzMode::kLink);
  // Matrix cells share the base seed → paired initial populations.
  EXPECT_EQ(cells[0].ga.seed, cells[2].ga.seed);
}

TEST(CampaignConfig, ScoreAndScenarioAxesMultiply) {
  CampaignConfig cfg;
  cfg.ccas({"reno"})
      .modes({scenario::FuzzMode::kTraffic})
      .add_scenario("deep", tiny_scenario())
      .add_scenario("shallow", tiny_scenario())
      .add_score("util", std::make_shared<fuzz::LowUtilizationScore>())
      .add_score("delay", std::make_shared<fuzz::HighDelayScore>())
      .ga(tiny_ga());
  const auto cells = cfg.cells();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].name, "reno.traffic.deep.util");
  EXPECT_EQ(cells[3].name, "reno.traffic.shallow.delay");
}

TEST(CampaignConfig, UnknownCcaThrowsListingKnownNames) {
  CampaignConfig cfg;
  cfg.ccas({"vegas"}).ga(tiny_ga());
  try {
    cfg.cells();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("vegas"), std::string::npos);
    EXPECT_NE(msg.find("reno"), std::string::npos);
    EXPECT_NE(msg.find("bbr-probertt-on-rto"), std::string::npos);
  }
}

TEST(CampaignConfig, EmptyCampaignThrows) {
  CampaignConfig cfg;
  EXPECT_THROW(cfg.cells(), std::invalid_argument);
}

TEST(CampaignConfig, DegenerateGaConfigThrowsInsteadOfCorruptingTheGa) {
  CellConfig cell = tiny_cell();
  cell.ga.population = 0;  // Fuzzer's own guard is a debug-only assert
  CampaignConfig cfg;
  cfg.add_cell(cell);
  EXPECT_THROW(cfg.cells(), std::invalid_argument);

  CellConfig lopsided = tiny_cell();
  lopsided.ga.population = 4;
  lopsided.ga.islands = 8;
  CampaignConfig cfg2;
  cfg2.add_cell(lopsided);
  EXPECT_THROW(cfg2.cells(), std::invalid_argument);
}

TEST(CampaignConfig, NamesCollidingAfterSanitizationAreUniquified) {
  // "a/b" and "a_b" differ as display names but sanitize to the same
  // report directory; the second must be suffixed, not overwrite.
  CellConfig slash = tiny_cell();
  slash.name = "a/b";
  CellConfig underscore = tiny_cell();
  underscore.name = "a_b";
  CampaignConfig cfg;
  cfg.add_cell(slash).add_cell(underscore);
  const auto cells = cfg.cells();
  EXPECT_NE(sanitize_cell_name(cells[0].name),
            sanitize_cell_name(cells[1].name));
}

TEST(CampaignConfig, DuplicateCellNamesAreUniquified) {
  CampaignConfig cfg;
  cfg.add_cell(tiny_cell()).add_cell(tiny_cell());
  const auto cells = cfg.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].name, "reno.traffic.low-utilization");
  EXPECT_EQ(cells[1].name, "reno.traffic.low-utilization.2");
}

TEST(CellWiring, LinkBudgetDerivedFromScenarioBandwidth) {
  CellConfig cell = tiny_cell();
  cell.scenario.mode = scenario::FuzzMode::kLink;
  const auto model = make_trace_model(cell);
  Rng rng(1);
  const auto t = model->generate(rng);
  // 12 Mbps over 2 s at 1500 B/packet = 2000 service opportunities.
  EXPECT_EQ(t.size(), 2000u);
  EXPECT_EQ(t.duration, cell.scenario.duration);
  EXPECT_FALSE(model->supports_crossover());
}

TEST(CellWiring, TrafficModelTracksScenarioDuration) {
  CellConfig cell = tiny_cell();
  const auto model = make_trace_model(cell);
  Rng rng(1);
  EXPECT_EQ(model->generate(rng).duration, cell.scenario.duration);
  EXPECT_TRUE(model->supports_crossover());
}

// The scheduler contract: a campaign cell produces the exact GenStats
// sequence (and final winner) that driving the Fuzzer directly would.
TEST(Campaign, CellMatchesDirectFuzzerRun) {
  const CellConfig cell = tiny_cell();

  fuzz::Fuzzer direct(cell.ga, make_trace_model(cell), make_evaluator(cell));
  const auto direct_history = direct.run();

  CampaignConfig cfg;
  cfg.add_cell(cell);
  Campaign c(cfg);
  const auto& report = c.run();
  const auto& history = report.cells.front().history;

  ASSERT_EQ(history.size(), direct_history.size());
  for (std::size_t g = 0; g < history.size(); ++g) {
    EXPECT_DOUBLE_EQ(history[g].best_score, direct_history[g].best_score);
    EXPECT_DOUBLE_EQ(history[g].mean_score, direct_history[g].mean_score);
    EXPECT_EQ(history[g].evaluations, direct_history[g].evaluations);
    EXPECT_EQ(history[g].stalled_count, direct_history[g].stalled_count);
  }
  ASSERT_FALSE(report.cells.front().winners.empty());
  EXPECT_EQ(report.cells.front().winners.front().trace_hash,
            trace::hash(direct.top_members(1).front().genome));
}

TEST(Campaign, DeterministicAcrossRuns) {
  const auto run_once = [] {
    CampaignConfig cfg;
    cfg.ccas({"reno", "cubic"})
        .modes({scenario::FuzzMode::kTraffic})
        .base_scenario(tiny_scenario())
        .ga(tiny_ga());
    Campaign c(cfg);
    return c.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    ASSERT_EQ(a.cells[i].history.size(), b.cells[i].history.size());
    for (std::size_t g = 0; g < a.cells[i].history.size(); ++g) {
      EXPECT_DOUBLE_EQ(a.cells[i].history[g].best_score,
                       b.cells[i].history[g].best_score);
      EXPECT_DOUBLE_EQ(a.cells[i].history[g].mean_score,
                       b.cells[i].history[g].mean_score);
    }
    ASSERT_EQ(a.cells[i].winners.size(), b.cells[i].winners.size());
    for (std::size_t w = 0; w < a.cells[i].winners.size(); ++w) {
      EXPECT_EQ(a.cells[i].winners[w].trace_hash,
                b.cells[i].winners[w].trace_hash);
    }
  }
}

// Two cells with identical evaluation semantics (same CCA/scenario/score
// object/weights) and the same GA seed produce identical genomes, so the
// second cell must be served entirely from the cache.
TEST(Campaign, EquivalentCellsShareTheEvaluationCache) {
  const CellConfig cell = tiny_cell();
  CampaignConfig cfg;
  cfg.add_cell(cell).add_cell(cell);
  Campaign c(cfg);
  const auto& report = c.run();
  ASSERT_EQ(report.cells.size(), 2u);
  const auto& first = report.cells[0];
  const auto& second = report.cells[1];
  EXPECT_GT(first.simulations, 0);
  EXPECT_EQ(second.simulations, 0) << "identical cell must be fully cached";
  EXPECT_EQ(second.cache_hits, first.simulations + first.cache_hits);
  // And the cached cell's results are bit-identical.
  ASSERT_EQ(first.history.size(), second.history.size());
  for (std::size_t g = 0; g < first.history.size(); ++g) {
    EXPECT_DOUBLE_EQ(first.history[g].best_score,
                     second.history[g].best_score);
  }
}

TEST(Campaign, DifferentCcasDoNotShareTheCache) {
  CampaignConfig cfg;
  cfg.ccas({"reno", "cubic"})
      .modes({scenario::FuzzMode::kTraffic})
      .base_scenario(tiny_scenario())
      .ga(tiny_ga());
  Campaign c(cfg);
  const auto& report = c.run();
  // Paired populations: identical genomes flow to both cells, but the CCA
  // differs, so each cell must simulate its own evaluations (the odd
  // within-cell duplicate genome aside).
  for (const auto& cell : report.cells) {
    const auto evals = cell.simulations + cell.cache_hits;
    EXPECT_GT(cell.simulations, 0);
    EXPECT_GE(cell.simulations, (evals * 4) / 5)
        << "cross-CCA cache sharing detected";
  }
}

TEST(Campaign, WinnersAreDedupedAndSortedBestFirst) {
  CellConfig cell = tiny_cell();
  cell.winners = 8;
  CampaignConfig cfg;
  cfg.add_cell(cell);
  Campaign c(cfg);
  const auto& winners = c.run().cells.front().winners;
  ASSERT_GE(winners.size(), 2u);
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < winners.size(); ++i) {
    EXPECT_TRUE(seen.insert(winners[i].trace_hash).second);
    if (i > 0) {
      EXPECT_GE(winners[i - 1].eval.score.total(),
                winners[i].eval.score.total());
    }
  }
}

TEST(Campaign, ZeroGenerationBudgetMirrorsFuzzerRun) {
  // Fuzzer::run() with max_generations=0 runs no generations but still
  // evaluates the initial population; the campaign must match.
  CellConfig cell = tiny_cell();
  cell.ga.max_generations = 0;
  CampaignConfig cfg;
  cfg.add_cell(cell);
  Campaign c(cfg);
  const auto& result = c.run().cells.front();
  EXPECT_TRUE(result.history.empty());
  ASSERT_FALSE(result.winners.empty()) << "initial population still ranked";
  EXPECT_EQ(result.simulations + result.cache_hits, cell.ga.population);
}

TEST(Campaign, WinnersKeepBestEverWithoutElitism) {
  // Without elites the best trace can be bred out of the final population;
  // the report must still lead with the best member ever observed.
  CellConfig cell = tiny_cell();
  cell.ga.elites_per_island = 0;
  cell.ga.max_generations = 4;
  CampaignConfig cfg;
  cfg.add_cell(cell);
  Campaign c(cfg);
  const auto& result = c.run().cells.front();
  ASSERT_FALSE(result.winners.empty());
  for (const auto& gs : result.history) {
    EXPECT_GE(result.best_score(), gs.best_score)
        << "a generation's best was lost from the winners";
  }
}

TEST(Campaign, PatienceStopsCellEarly) {
  CellConfig cell = tiny_cell();
  cell.ga.max_generations = 50;
  cell.ga.patience = 2;
  CampaignConfig cfg;
  cfg.add_cell(cell);
  Campaign c(cfg);
  EXPECT_LT(c.run().cells.front().history.size(), 50u);
}

class CountingObserver final : public CampaignObserver {
 public:
  void on_campaign_begin(const std::vector<CellConfig>& cells) override {
    begin_cells = cells.size();
  }
  void on_generation(const CellConfig&, const fuzz::GenStats&) override {
    ++generations;
  }
  void on_cell_end(const CellResult&) override { ++cells_ended; }
  void on_campaign_end(const CampaignReport& r) override {
    end_cells = r.cells.size();
  }

  std::size_t begin_cells = 0;
  int generations = 0;
  int cells_ended = 0;
  std::size_t end_cells = 0;
};

TEST(Campaign, ObserverSeesEveryLifecycleEvent) {
  CampaignConfig cfg;
  cfg.add_cell(tiny_cell()).add_cell(tiny_cell("cubic"));
  Campaign c(cfg);
  CountingObserver obs;
  c.add_observer(&obs);
  c.run();
  EXPECT_EQ(obs.begin_cells, 2u);
  EXPECT_EQ(obs.generations, 2 * tiny_ga().max_generations);
  EXPECT_EQ(obs.cells_ended, 2);
  EXPECT_EQ(obs.end_cells, 2u);
}

TEST(Campaign, RunIsIdempotent) {
  CampaignConfig cfg;
  cfg.add_cell(tiny_cell());
  Campaign c(cfg);
  const auto& a = c.run();
  const auto& b = c.run();
  EXPECT_EQ(&a, &b);
}

TEST(Report, JsonContainsEveryCellAndWinner) {
  CampaignConfig cfg;
  cfg.add_cell(tiny_cell());
  Campaign c(cfg);
  const std::string json = to_json(c.run());
  EXPECT_NE(json.find("\"name\": \"reno.traffic.low-utilization\""),
            std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"traffic\""), std::string::npos);
  EXPECT_NE(json.find("\"winners\": ["), std::string::npos);
  EXPECT_NE(json.find("\"hash\": \""), std::string::npos);
}

TEST(Report, WritesSummaryHistoryAndReplayableWinners) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "ccfuzz_campaign_report_test";
  fs::remove_all(dir);

  CampaignConfig cfg;
  cfg.add_cell(tiny_cell()).output_dir(dir.string());
  Campaign c(cfg);
  const auto& report = c.run();

  EXPECT_TRUE(fs::exists(dir / "summary.csv"));
  EXPECT_TRUE(fs::exists(dir / "summary.json"));
  const fs::path cell_dir = dir / "reno.traffic.low-utilization";
  EXPECT_TRUE(fs::exists(cell_dir / "history.csv"));
  ASSERT_FALSE(report.cells.front().winners.empty());
  const fs::path winner = cell_dir / "winner_0.trace";
  ASSERT_TRUE(fs::exists(winner));
  // Winner traces round-trip through trace_io, hash intact.
  const auto loaded = trace::load_trace(winner.string());
  EXPECT_EQ(trace::hash(loaded),
            report.cells.front().winners.front().trace_hash);

  fs::remove_all(dir);
}

TEST(Report, SummaryCsvQuotesFreeFormNames) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ccfuzz_csv_escape_test";
  fs::remove_all(dir);

  CellConfig cell = tiny_cell();
  cell.name = "reno, shallow \"queue\"";
  CampaignConfig cfg;
  cfg.add_cell(cell).output_dir(dir.string());
  Campaign c(cfg);
  c.run();

  std::ifstream is(dir / "summary.csv");
  std::string header, row;
  std::getline(is, header);
  std::getline(is, row);
  EXPECT_NE(row.find("\"reno, shallow \"\"queue\"\"\""), std::string::npos)
      << row;
  fs::remove_all(dir);
}

TEST(Report, SanitizesCellNamesForPaths) {
  EXPECT_EQ(sanitize_cell_name("bbr.traffic/low utilization"),
            "bbr.traffic_low_utilization");
  EXPECT_EQ(sanitize_cell_name("a-b_c.9"), "a-b_c.9");
}

TEST(Panel, RowsLandInJobOrderWithLabels) {
  auto cfg = tiny_scenario();
  const auto rows =
      evaluate_panel(cfg, {"reno", "cubic", "bbr"}, std::vector<TimeNs>{});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].label, "reno");
  EXPECT_EQ(rows[1].label, "cubic");
  EXPECT_EQ(rows[2].label, "bbr");
  // A clean 12 Mbps link: every CCA should move real data.
  for (const auto& row : rows) {
    EXPECT_GT(row.run.goodput_mbps(), 1.0) << row.label;
  }
}

TEST(Panel, ParallelAndSerialAgree) {
  auto cfg = tiny_scenario();
  const std::vector<TimeNs> trace{TimeNs::millis(500), TimeNs::millis(501)};
  const auto par = evaluate_panel(cfg, {"reno", "bbr"}, trace, true);
  const auto ser = evaluate_panel(cfg, {"reno", "bbr"}, trace, false);
  ASSERT_EQ(par.size(), ser.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i].run.goodput_mbps(), ser[i].run.goodput_mbps());
    EXPECT_EQ(par[i].run.cca_sent(), ser[i].run.cca_sent());
  }
}

TEST(Panel, UnknownCcaThrowsBeforeRunning) {
  auto cfg = tiny_scenario();
  EXPECT_THROW(evaluate_panel(cfg, {"reno", "nope"}, std::vector<TimeNs>{}),
               std::invalid_argument);
}

// --- Scenario-preset axis ----------------------------------------------------

TEST(CampaignConfig, PresetAxisExpandsOverTheBaseScenario) {
  CampaignConfig cfg;
  cfg.ccas({"reno"})
      .base_scenario(tiny_scenario())
      .presets({"incast", "late_starter"})
      .ga(tiny_ga());
  const auto cells = cfg.cells();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].name, "reno.traffic.incast.low-utilization");
  EXPECT_EQ(cells[0].scenario.flow_count(), 4u);
  EXPECT_EQ(cells[1].name, "reno.traffic.late_starter.low-utilization");
  ASSERT_EQ(cells[1].scenario.flows.size(), 2u);
  // Preset applied over the base: the tiny scenario's knobs survive.
  EXPECT_EQ(cells[1].scenario.net.queue_capacity, 25u);
  EXPECT_EQ(cells[1].scenario.flows[1].start,
            TimeNs::zero() +
                DurationNs(tiny_scenario().duration.ns()).scaled(1.0 / 3.0));
}

TEST(CampaignConfig, UnknownPresetThrowsFromCells) {
  CampaignConfig cfg;
  cfg.ccas({"reno"}).add_preset("bogus").ga(tiny_ga());
  EXPECT_THROW(cfg.cells(), std::invalid_argument);
}

TEST(CampaignConfig, UnknownFlowCcaThrowsFromCells) {
  CellConfig cell = tiny_cell();
  cell.scenario.flows.resize(2);
  cell.scenario.flows[1].cca = "vegas";
  CampaignConfig cfg;
  cfg.add_cell(cell);
  EXPECT_THROW(cfg.cells(), std::invalid_argument);
}

TEST(Campaign, PresetCellsDoNotShareCacheWithSingleFlowCells) {
  // Same CCA/score/GA seed, one cell single-flow and one incast: their
  // evaluation semantics differ, so every evaluation must be simulated.
  CellConfig plain = tiny_cell();
  CellConfig incast = tiny_cell();
  incast.scenario =
      scenario::apply_preset("incast", tiny_scenario());
  incast.name = "reno.incast";
  plain.score = incast.score;  // shared score object: keys differ by scenario
  CampaignConfig cfg;
  cfg.add_cell(plain).add_cell(incast);
  Campaign c(cfg);
  const auto& report = c.run();
  // Identical GA seeds breed identical genomes in both cells; if the cells
  // shared an evaluation key, every incast evaluation would be served from
  // the plain cell's batch entries and simulate nothing. (A handful of
  // intra-cell duplicate genomes may still hit the cache.)
  EXPECT_GT(report.cells[1].simulations, report.cells[1].cache_hits * 5);
  EXPECT_GT(report.cells[0].simulations, 0);
}

// --- Fairness campaign end-to-end --------------------------------------------

TEST(Campaign, FairnessCampaignReportsPerFlowGoodputs) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ccfuzz_fairness_test";
  fs::remove_all(dir);

  scenario::PresetOptions opt;
  opt.competitor = "bbr";
  CampaignConfig cfg;
  cfg.ccas({"reno"})
      .base_scenario(tiny_scenario())
      .add_preset("late_starter", opt)
      .score(std::make_shared<fuzz::JainFairnessScore>())
      .ga(tiny_ga())
      .traffic_model({.max_packets = 200, .initial_packets = 100})
      .output_dir(dir.string());
  Campaign c(cfg);
  const auto& report = c.run();

  ASSERT_EQ(report.cells.size(), 1u);
  const CellResult& cell = report.cells.front();
  EXPECT_EQ(cell.cell.scenario.flow_count(), 2u);
  ASSERT_FALSE(cell.winners.empty());
  const fuzz::Evaluation& best = cell.winners.front().eval;
  ASSERT_EQ(best.flow_goodput_mbps.size(), 2u);
  EXPECT_GE(best.jain_fairness, 0.0);
  EXPECT_LE(best.jain_fairness, 1.0);
  // The Jain score is exactly what the evaluation's fairness implies.
  EXPECT_NEAR(best.score.performance, 1.0 - best.jain_fairness, 1e-12);

  // Per-flow goodputs surface in the report tree.
  const std::string json = to_json(report);
  EXPECT_NE(json.find("\"flow_goodputs_mbps\": ["), std::string::npos);
  EXPECT_NE(json.find("\"jain_fairness\": "), std::string::npos);
  EXPECT_NE(json.find("\"flows\": 2"), std::string::npos);
  std::ifstream csv(dir / "summary.csv");
  std::string header;
  std::getline(csv, header);
  EXPECT_NE(header.find("best_flow_goodputs_mbps"), std::string::npos);
  EXPECT_NE(header.find("flows"), std::string::npos);
  std::string row;
  std::getline(csv, row);
  EXPECT_NE(row.find(';'), std::string::npos) << row;  // two joined goodputs

  fs::remove_all(dir);
}

// --- JsonlObserver -----------------------------------------------------------

TEST(JsonlObserver, StreamsOneEventPerLine) {
  std::ostringstream out;
  CampaignConfig cfg;
  cfg.add_cell(tiny_cell());
  Campaign c(cfg);
  JsonlObserver obs(out);
  c.add_observer(&obs);
  c.run();

  std::istringstream lines(out.str());
  std::string line;
  int begin = 0, generation = 0, cell_end = 0, campaign_end = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    begin += line.find("\"event\":\"campaign_begin\"") != std::string::npos;
    generation += line.find("\"event\":\"generation\"") != std::string::npos;
    cell_end += line.find("\"event\":\"cell_end\"") != std::string::npos;
    campaign_end +=
        line.find("\"event\":\"campaign_end\"") != std::string::npos;
  }
  EXPECT_EQ(begin, 1);
  EXPECT_EQ(generation, tiny_ga().max_generations);
  EXPECT_EQ(cell_end, 1);
  EXPECT_EQ(campaign_end, 1);
}

TEST(JsonlObserver, WritesAndTruncatesFile) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "ccfuzz_progress.jsonl";
  {
    std::ofstream pre(path);
    pre << "stale\n";
  }
  {
    CampaignConfig cfg;
    cfg.add_cell(tiny_cell());
    Campaign c(cfg);
    JsonlObserver obs(path.string());
    c.add_observer(&obs);
    c.run();
  }
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find("campaign_begin"), std::string::npos);
  fs::remove(path);

  EXPECT_THROW(JsonlObserver("/nonexistent-dir/progress.jsonl"),
               std::runtime_error);
}

}  // namespace
}  // namespace ccfuzz::campaign
