// Satellite coverage for the quarantine plumbing: the campaign-level
// capacity knob, Quarantine::stored() (the resume-surviving on-disk count),
// and the `quarantined` field both report serializations now carry.
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/report.h"
#include "fuzz/quarantine.h"
#include "fuzz/score.h"

namespace ccfuzz::campaign {
namespace {

namespace stdfs = std::filesystem;

CellConfig quick_cell() {
  CellConfig cell;
  cell.cca = "reno";
  cell.name = "reno.traffic.low-utilization";
  cell.scenario.duration = TimeNs::seconds(1);
  cell.score = std::make_shared<fuzz::LowUtilizationScore>();
  cell.traffic_model.max_packets = 120;
  cell.ga.population = 6;
  cell.ga.islands = 2;
  cell.ga.max_generations = 1;
  cell.ga.parallel = false;
  return cell;
}

TEST(QuarantineCapacity, ConfigurableThroughCampaignConfig) {
  CampaignConfig cfg;
  EXPECT_EQ(cfg.quarantine_capacity(), 64u);  // the old hard-coded default
  cfg.quarantine_capacity(7);
  EXPECT_EQ(cfg.quarantine_capacity(), 7u);
}

TEST(QuarantineCapacity, StoredCountsTraceFilesOnDisk) {
  const stdfs::path dir = stdfs::temp_directory_path() /
                          ("ccfuzz_qcap_" + std::to_string(::getpid()));
  stdfs::remove_all(dir);
  fuzz::Quarantine q(dir.string(), 3);
  EXPECT_EQ(q.stored(), 0u);  // missing directory: empty, not an error
  EXPECT_EQ(q.capacity(), 3u);

  trace::Trace t;
  t.kind = trace::TraceKind::kTraffic;
  t.duration = TimeNs::seconds(1);
  for (int i = 0; i < 5; ++i) {
    t.stamps.push_back(TimeNs::millis(i));
    q.record(t, "synthetic");
  }
  // Capped at 3 distinct genomes; stored() reads the directory, so a fresh
  // Quarantine over the same dir (a resume) sees the same count.
  EXPECT_EQ(q.recorded(), 3u);
  EXPECT_EQ(q.stored(), 3u);
  fuzz::Quarantine resumed(dir.string(), 3);
  EXPECT_EQ(resumed.recorded(), 0u);
  EXPECT_EQ(resumed.stored(), 3u);

  std::error_code ec;
  stdfs::remove_all(dir, ec);
}

TEST(QuarantineCapacity, SummaryJsonCarriesTheQuarantinedCount) {
  CampaignConfig cfg;
  cfg.add_cell(quick_cell());
  Campaign c(cfg);
  const CampaignReport& report = c.run();
  EXPECT_EQ(report.quarantined, 0u);  // finite scores all the way down
  EXPECT_NE(to_json(report).find("\"quarantined\": 0"), std::string::npos);
}

}  // namespace
}  // namespace ccfuzz::campaign
