// Golden-schema test for JsonlObserver: dashboards tail these events, so
// the key set of every event type is pinned. Adding a field is a deliberate
// schema change — update the golden lists here when you make one.
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/report.h"
#include "fuzz/score.h"

namespace ccfuzz::campaign {
namespace {

/// Top-level keys of a flat-ish JSON object line, in order of appearance.
/// Good enough for the observer's output: nested objects only occur inside
/// the campaign_begin "cells" array, whose element keys we pin separately.
std::vector<std::string> top_level_keys(const std::string& line) {
  std::vector<std::string> keys;
  int depth = 0;
  bool in_string = false;
  std::string current;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
        if (depth == 1 && i + 1 < line.size() && line[i + 1] == ':') {
          keys.push_back(current);
        }
      } else {
        current += c;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; current.clear(); break;
      case '{': case '[': ++depth; break;
      case '}': case ']': --depth; break;
      default: break;
    }
  }
  return keys;
}

std::string event_of(const std::string& line) {
  std::smatch m;
  static const std::regex re("\"event\":\"([a-z_]+)\"");
  return std::regex_search(line, m, re) ? m[1].str() : "";
}

CellConfig schema_cell(bool coverage) {
  CellConfig cell;
  cell.cca = "reno";
  cell.name = coverage ? "probe-cell" : "plain-cell";
  cell.scenario.duration = TimeNs::seconds(1);
  cell.score = std::make_shared<fuzz::LowUtilizationScore>();
  cell.traffic_model.max_packets = 120;
  cell.ga.population = 6;
  cell.ga.islands = 2;
  cell.ga.max_generations = 2;
  cell.ga.parallel = false;
  if (coverage) {
    cell.ga.search = fuzz::SearchMode::kMapElites;
  }
  return cell;
}

TEST(JsonlSchema, EventKeySetsArePinned) {
  std::ostringstream out;
  CampaignConfig cfg;
  cfg.add_cell(schema_cell(false)).add_cell(schema_cell(true));
  Campaign c(cfg);
  JsonlObserver obs(out);
  c.add_observer(&obs);
  c.run();

  const std::map<std::string, std::vector<std::string>> golden = {
      {"campaign_begin", {"event", "cells"}},
      {"generation",
       {"event", "cell", "generation", "best_score", "mean_score",
        "topk_goodput_mbps", "topk_jain_fairness", "topk_flow_goodputs_mbps",
        "stalled", "evaluations", "archive_cells", "archive_new_cells",
        "coverage_bits"}},
      // cell_end for a coverage cell; probe-less cells drop the archive
      // fields and multi-flow cells add best_flow_goodputs_mbps.
      {"cell_end",
       {"event", "cell", "best_score", "winners", "simulations", "cache_hits",
        "archive_cells", "coverage_bits"}},
      {"campaign_end", {"event", "cells", "interrupted", "quarantined"}},
  };

  std::istringstream lines(out.str());
  std::string line;
  int checked = 0;
  while (std::getline(lines, line)) {
    const std::string event = event_of(line);
    ASSERT_FALSE(event.empty()) << line;
    auto keys = top_level_keys(line);
    if (event == "cell_end" &&
        line.find("\"archive_cells\"") == std::string::npos) {
      // The probe-less cell: same schema minus the two archive keys.
      keys.push_back("archive_cells");
      keys.push_back("coverage_bits");
    }
    const auto it = golden.find(event);
    ASSERT_NE(it, golden.end()) << "unknown event type: " << event;
    EXPECT_EQ(keys, it->second) << line;
    ++checked;
  }
  // begin + 2 cells × 2 generations + 2 cell_end + end.
  EXPECT_EQ(checked, 8);
}

TEST(JsonlSchema, CampaignBeginCellEntriesArePinned) {
  std::ostringstream out;
  CampaignConfig cfg;
  cfg.add_cell(schema_cell(false));
  Campaign c(cfg);
  JsonlObserver obs(out);
  c.add_observer(&obs);
  c.run();

  std::istringstream lines(out.str());
  std::string first;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_EQ(event_of(first), "campaign_begin");
  for (const char* key :
       {"\"name\":", "\"cca\":", "\"mode\":", "\"flows\":", "\"population\":",
        "\"max_generations\":"}) {
    EXPECT_NE(first.find(key), std::string::npos) << key << " in " << first;
  }
}

TEST(JsonlSchema, ShardTagIsSecondKeyOnEveryLine) {
  // Distributed workers tag every line so a multiplexed aggregate feed stays
  // attributable; the tag's position (right after "event") is part of the
  // pinned schema.
  std::ostringstream out;
  CampaignConfig cfg;
  cfg.add_cell(schema_cell(false));
  Campaign c(cfg);
  JsonlObserver obs(out);
  obs.set_shard(3);
  c.add_observer(&obs);
  c.run();

  std::istringstream lines(out.str());
  std::string line;
  int checked = 0;
  while (std::getline(lines, line)) {
    const auto keys = top_level_keys(line);
    ASSERT_GE(keys.size(), 2u) << line;
    EXPECT_EQ(keys[0], "event") << line;
    EXPECT_EQ(keys[1], "shard") << line;
    EXPECT_NE(line.find("\"shard\":3,"), std::string::npos) << line;
    ++checked;
  }
  EXPECT_EQ(checked, 5);  // begin + 2 generations + cell_end + end
}

TEST(JsonlSchema, UntaggedObserverEmitsNoShardKey) {
  std::ostringstream out;
  CampaignConfig cfg;
  cfg.add_cell(schema_cell(false));
  Campaign c(cfg);
  JsonlObserver obs(out);
  c.add_observer(&obs);
  c.run();
  EXPECT_EQ(out.str().find("\"shard\""), std::string::npos);
}

TEST(SummaryJson, RecordsInterruptedFlag) {
  // The JSONL campaign_end event always carried `interrupted`; summary.json
  // used to omit it, leaving post-hoc triage unable to tell a partial report
  // from a finished one. Both serializations now agree.

  // A stop raised mid-campaign yields an interrupted summary...
  class StopAfterFirstGeneration final : public CampaignObserver {
    void on_generation(const CellConfig&, const fuzz::GenStats&) override {
      request_stop();
    }
  };
  reset_stop_flag();
  {
    CampaignConfig cfg;
    cfg.add_cell(schema_cell(false));
    Campaign c(cfg);
    StopAfterFirstGeneration stopper;
    c.add_observer(&stopper);
    const CampaignReport& report = c.run();
    ASSERT_TRUE(report.interrupted);
    EXPECT_NE(to_json(report).find("\"interrupted\": true"),
              std::string::npos);
  }
  reset_stop_flag();

  // ...and a completed campaign records false.
  {
    CampaignConfig cfg;
    cfg.add_cell(schema_cell(false));
    Campaign c(cfg);
    const CampaignReport& report = c.run();
    ASSERT_FALSE(report.interrupted);
    EXPECT_NE(to_json(report).find("\"interrupted\": false"),
              std::string::npos);
  }
}

TEST(JsonlSchema, CoverageCellsReportArchiveGrowth) {
  std::ostringstream out;
  CampaignConfig cfg;
  cfg.add_cell(schema_cell(true));
  Campaign c(cfg);
  JsonlObserver obs(out);
  c.add_observer(&obs);
  const auto& report = c.run();

  ASSERT_EQ(report.cells.size(), 1u);
  ASSERT_NE(report.cells.front().archive, nullptr);
  EXPECT_GT(report.cells.front().archive->filled(), 0u);

  // The last generation line of a coverage cell carries nonzero growth.
  std::istringstream lines(out.str());
  std::string line, last_generation;
  while (std::getline(lines, line)) {
    if (event_of(line) == "generation") last_generation = line;
  }
  ASSERT_FALSE(last_generation.empty());
  EXPECT_EQ(last_generation.find("\"archive_cells\":0,"), std::string::npos)
      << last_generation;
}

}  // namespace
}  // namespace ccfuzz::campaign
