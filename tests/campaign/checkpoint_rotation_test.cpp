// Checkpoint rotation: the previous snapshot survives as campaign.ckpt.prev,
// a corrupt head degrades to it (losing at most one checkpoint generation,
// never the campaign), and only both files corrupting forces a fresh start —
// which, being deterministic, still converges to the identical report.
#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

namespace ccfuzz::campaign {
namespace {

namespace fs = std::filesystem;

fuzz::GaConfig tiny_ga() {
  fuzz::GaConfig ga;
  ga.population = 12;
  ga.islands = 2;
  ga.max_generations = 5;
  ga.seed = 77;
  return ga;
}

CampaignConfig tiny_campaign(const std::string& dir) {
  scenario::ScenarioConfig sc;
  sc.duration = TimeNs::seconds(1);
  CampaignConfig cfg;
  cfg.ccas({"reno", "cubic"})
      .modes({scenario::FuzzMode::kTraffic})
      .base_scenario(sc)
      .score(std::make_shared<fuzz::LowUtilizationScore>())
      .traffic_model({.max_packets = 150, .initial_packets = 75})
      .ga(tiny_ga())
      .winners(3)
      .output_dir(dir)
      .checkpoint_every(1);
  return cfg;
}

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

void corrupt(const fs::path& p) {
  std::ofstream os(p, std::ios::binary | std::ios::trunc);
  os << "# ccfuzz-checkpoint v1\ngarbage where cells should be\n";
}

/// Raises the campaign stop flag after `n` generation events.
class StopAfterObserver final : public CampaignObserver {
 public:
  explicit StopAfterObserver(int n) : remaining_(n) {}
  void on_generation(const CellConfig&, const fuzz::GenStats&) override {
    if (--remaining_ == 0) request_stop();
  }

 private:
  int remaining_;
};

class CheckpointRotationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_stop_flag();
    base_ = fs::temp_directory_path() /
            ("ccfuzz_rot_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(base_);
  }
  void TearDown() override {
    reset_stop_flag();
    fs::remove_all(base_);
  }

  /// Runs the reference campaign and an interrupted one (stopped after 3
  /// generation events), leaving head + .prev checkpoints in `dir`.
  void run_reference_and_interrupted(const std::string& ref_dir,
                                     const std::string& dir) {
    Campaign ref(tiny_campaign(ref_dir));
    ASSERT_FALSE(ref.run().interrupted);
    Campaign c(tiny_campaign(dir));
    StopAfterObserver stopper(3);
    c.add_observer(&stopper);
    ASSERT_TRUE(c.run().interrupted);
    reset_stop_flag();
    ASSERT_TRUE(fs::exists(head(dir)));
    ASSERT_TRUE(fs::exists(head(dir) + ".prev"));
  }

  void resume_and_expect_reference(const std::string& dir,
                                   const std::string& ref_dir,
                                   bool expect_resumed) {
    CampaignConfig cfg = tiny_campaign(dir);
    cfg.resume_dir(dir);
    Campaign c(cfg);
    EXPECT_EQ(c.resumed(), expect_resumed);
    EXPECT_FALSE(c.run().interrupted);
    for (const char* f : {"summary.csv", "summary.json"}) {
      EXPECT_EQ(slurp(fs::path(dir) / f), slurp(fs::path(ref_dir) / f)) << f;
    }
  }

  static std::string head(const std::string& dir) {
    return dir + "/checkpoint/campaign.ckpt";
  }

  fs::path base_;
};

TEST_F(CheckpointRotationTest, RotationKeepsAValidPreviousSnapshot) {
  const std::string dir = (base_ / "out").string();
  Campaign c(tiny_campaign(dir));
  ASSERT_FALSE(c.run().interrupted);
  EXPECT_FALSE(validate_checkpoint_file(head(dir)));
  EXPECT_FALSE(validate_checkpoint_file(head(dir) + ".prev"));
}

TEST_F(CheckpointRotationTest, CorruptHeadResumesFromPrevBitIdentical) {
  const std::string ref_dir = (base_ / "ref").string();
  const std::string dir = (base_ / "out").string();
  run_reference_and_interrupted(ref_dir, dir);
  corrupt(head(dir));
  resume_and_expect_reference(dir, ref_dir, /*expect_resumed=*/true);
}

TEST_F(CheckpointRotationTest, BothSnapshotsCorruptDegradesToFresh) {
  const std::string ref_dir = (base_ / "ref").string();
  const std::string dir = (base_ / "out").string();
  run_reference_and_interrupted(ref_dir, dir);
  corrupt(head(dir));
  corrupt(head(dir) + ".prev");
  // Fresh start (resumed() false), but determinism still converges the
  // report to the reference bytes.
  resume_and_expect_reference(dir, ref_dir, /*expect_resumed=*/false);
}

TEST_F(CheckpointRotationTest, ValidateReportsTypedFailureModes) {
  const std::string dir = (base_ / "out").string();
  fs::create_directories(dir);
  const std::string path = dir + "/campaign.ckpt";

  EXPECT_EQ(validate_checkpoint_file(path).code, Error::Code::kIo);  // missing

  std::ofstream(path, std::ios::binary) << "not a checkpoint\n";
  EXPECT_EQ(validate_checkpoint_file(path).code, Error::Code::kParse);

  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << "# ccfuzz-checkpoint v9\n# end checkpoint\n";
  EXPECT_EQ(validate_checkpoint_file(path).code, Error::Code::kVersion);

  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << "# ccfuzz-checkpoint v1\n# cells 2\ntorn mid-wr";
  EXPECT_EQ(validate_checkpoint_file(path).code, Error::Code::kTruncated);

  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << "# ccfuzz-checkpoint v1\n# cells 0\n# cache 0\n# end checkpoint\n";
  EXPECT_FALSE(validate_checkpoint_file(path));
}

}  // namespace
}  // namespace ccfuzz::campaign
