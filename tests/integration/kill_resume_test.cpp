// End-to-end crash safety: run the crashsafe_campaign example binary, kill it
// mid-campaign (SIGKILL — no chance to clean up), rerun the same command, and
// verify the resumed campaign converges to the same report tree as one that
// was never interrupted. Also pins the graceful path: SIGTERM exits 0 with a
// checkpoint on disk and a parseable JSONL progress log.
//
// Spawns the child with fork+exec (fork without exec is unsafe here: the test
// binary's thread pool does not survive a fork).
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

const char* binary_path() { return CCFUZZ_EXAMPLES_DIR "/crashsafe_campaign"; }

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

/// fork+execs the campaign driver; returns the child pid (or -1).
pid_t spawn_campaign(const std::string& dir, const char* generations,
                     const char* population, const char* throttle_ms) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Quiet the child's progress spam; keep stderr for real failures.
    ::freopen("/dev/null", "w", stdout);
    ::execl(binary_path(), "crashsafe_campaign", dir.c_str(), generations,
            population, throttle_ms, static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

/// Polls until the child has written its first checkpoint (or `ms` elapse).
bool wait_for_checkpoint(const fs::path& dir, int ms) {
  const fs::path ckpt = dir / "checkpoint" / "campaign.ckpt";
  for (int i = 0; i < ms / 10; ++i) {
    if (fs::exists(ckpt)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return fs::exists(ckpt);
}

class KillResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fs::exists(binary_path())) {
      GTEST_SKIP() << "crashsafe_campaign example not built at "
                   << binary_path();
    }
    base_ = fs::temp_directory_path() /
            ("ccfuzz_killresume_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  fs::path base_;
};

TEST_F(KillResumeTest, SigkillMidCampaignThenResumeConvergesBitIdentically) {
  // Reference: the same campaign, never interrupted.
  const std::string ref_dir = (base_ / "ref").string();
  {
    const pid_t pid = spawn_campaign(ref_dir, "5", "16", "0");
    ASSERT_GT(pid, 0);
    const int status = wait_exit(pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "reference run failed";
  }

  // Victim: throttled so we reliably land mid-campaign, then SIGKILL.
  const std::string dir = (base_ / "victim").string();
  {
    const pid_t pid = spawn_campaign(dir, "5", "16", "150");
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(wait_for_checkpoint(dir, 30000)) << "no checkpoint appeared";
    ::kill(pid, SIGKILL);
    wait_exit(pid);
  }

  // After SIGKILL the JSONL log must still hold only whole lines.
  {
    std::ifstream jsonl(fs::path(dir) / "progress.jsonl");
    std::string line;
    while (std::getline(jsonl, line)) {
      ASSERT_FALSE(line.empty());
      EXPECT_EQ(line.front(), '{') << line;
      EXPECT_EQ(line.back(), '}') << line;
    }
  }

  // Resume: the exact same command finishes the campaign.
  {
    const pid_t pid = spawn_campaign(dir, "5", "16", "0");
    ASSERT_GT(pid, 0);
    const int status = wait_exit(pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "resume run failed";
  }

  for (const char* rel :
       {"summary.csv", "summary.json",
        "reno.traffic.low-utilization/history.csv",
        "cubic.traffic.low-utilization/history.csv"}) {
    ASSERT_TRUE(fs::exists(fs::path(dir) / rel)) << rel;
    EXPECT_EQ(slurp(fs::path(dir) / rel), slurp(fs::path(ref_dir) / rel))
        << rel << " diverged after kill+resume";
  }
}

TEST_F(KillResumeTest, SigtermShutsDownGracefullyWithExitZero) {
  const std::string dir = (base_ / "term").string();
  const pid_t pid = spawn_campaign(dir, "6", "16", "150");
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_checkpoint(dir, 30000)) << "no checkpoint appeared";
  ::kill(pid, SIGTERM);
  const int status = wait_exit(pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // The graceful path leaves a resumable checkpoint and a parseable log.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "checkpoint" / "campaign.ckpt"));
  std::ifstream jsonl(fs::path(dir) / "progress.jsonl");
  std::string line;
  bool saw_any = false;
  while (std::getline(jsonl, line)) {
    saw_any = true;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  EXPECT_TRUE(saw_any);
}

}  // namespace
