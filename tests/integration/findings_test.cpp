// End-to-end regression tests for the paper's three findings (§4).
//
// Each finding is reproduced deterministically with a constructively
// crafted trace (scenario::crafted) rather than a GA search, so these run
// in seconds and fail loudly if any transport/CCA mechanism regresses.
#include <gtest/gtest.h>

#include "analysis/timeline.h"
#include "cca/registry.h"
#include "scenario/crafted.h"
#include "scenario/runner.h"

namespace ccfuzz {
namespace {

scenario::ScenarioConfig stall_config() {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(12);
  cfg.net.queue_capacity = 50;
  // Linux-scale receive buffer: with only ~87 segments the flow silences
  // itself (window closed) before the RTO fires and the §4.1 spurious-
  // retransmission chain never runs.
  cfg.receive_window_segments = 2000;
  return cfg;
}

// --- §4.1: BBR permanent stall --------------------------------------------

TEST(Finding41_BbrStall, RetransmissionKillerStallsBbrPermanently) {
  const auto crafted = scenario::crafted::craft_retransmission_killer(
      stall_config(), cca::make_factory("bbr"));
  const auto& run = crafted.final_run;
  // The flow dies shortly after the first burst (t = 2 s) and never comes
  // back within the horizon: zero bottleneck egress over the last 6 s.
  std::int64_t tail = 0;
  for (const auto& e : run.recorder.egress()) {
    if (e.flow == net::FlowId::kCcaData && e.time >= TimeNs::seconds(6)) {
      ++tail;
    }
  }
  EXPECT_EQ(tail, 0) << "BBR must be stuck for the rest of the run";
  EXPECT_TRUE(run.stalled(DurationNs::seconds(2)));
  EXPECT_LT(run.goodput_mbps(), 3.0);
  // The attack is minimal: a few hundred cross packets against a link that
  // carries ~12000 in the same period.
  EXPECT_LT(run.cross_sent, 800);
}

TEST(Finding41_BbrStall, StallChainDiagnosticsPresent) {
  const auto crafted = scenario::crafted::craft_retransmission_killer(
      stall_config(), cca::make_factory("bbr"));
  const auto d = analysis::stall_diagnostics(crafted.final_run.tcp_log());
  // The §4.1 mechanism: RTOs, spurious retransmissions of data whose SACKs
  // were still in flight, and premature probe-round ends from restamped
  // prior_delivered.
  EXPECT_GE(d.rtos, 2);
  EXPECT_GT(d.spurious_retx, 5);
  EXPECT_GT(d.probe_round_ends, 10);
  EXPECT_GT(d.marks_lost, 50);
}

TEST(Finding41_BbrStall, CorruptedSamplesPoisonFilterDuringEpisode) {
  const auto crafted = scenario::crafted::craft_retransmission_killer(
      stall_config(), cca::make_factory("bbr"));
  // During the attack episode the accepted bandwidth samples include
  // collapsed values (~1 packet per RTT instead of ~1000 pps).
  double min_sample = 1e18;
  for (const auto& ev : crafted.final_run.tcp_log().events()) {
    if (ev.type == tcp::TcpEventType::kBwSample &&
        ev.time > TimeNs::seconds(2)) {
      min_sample = std::min(min_sample, ev.value);
    }
  }
  EXPECT_LT(min_sample, 100.0)
      << "expected corrupted low-rate samples in the bandwidth filter";
}

TEST(Finding41_BbrStall, SameTraceLeavesRenoAlive) {
  // The kill train is tuned to BBR's retransmission schedule; Reno, with a
  // different recovery cadence, sails through the same trace — this is a
  // schedule-targeted failure, not generic starvation. (CUBIC's fast-
  // retransmit timing happens to coincide with BBR's here, so it is also
  // caught; crafting against CUBIC conversely spares BBR.)
  const auto crafted = scenario::crafted::craft_retransmission_killer(
      stall_config(), cca::make_factory("bbr"));
  const auto run = scenario::run_scenario(
      stall_config(), cca::make_factory("reno"), crafted.trace);
  EXPECT_FALSE(run.stalled(DurationNs::seconds(2)));
  EXPECT_GT(run.goodput_mbps(), 6.0);
}

// --- §4.2: ns-3 CUBIC slow-start bug ---------------------------------------

TEST(Finding42_CubicBug, BuggyCubicBurstsAfterRtoRecovery) {
  // Kill a packet and its fast retransmission; the RTO retransmission then
  // yields one huge cumulative ACK. The ns-3 CUBIC inflates cwnd by the
  // full ACKed count (no ssthresh clamp) and bursts, causing drops; the
  // fixed CUBIC does not.
  const auto buggy = scenario::crafted::craft_retransmission_killer(
      stall_config(), cca::make_factory("cubic-ns3bug"),
      {.max_bursts = 3});
  const auto fixed = scenario::run_scenario(
      stall_config(), cca::make_factory("cubic"), buggy.trace);
  // Same trace: the buggy variant suffers strictly more drops at the
  // bottleneck after the recovery point (the burst past ssthresh).
  EXPECT_GT(buggy.final_run.cca_drops(), fixed.cca_drops());
}

// --- §4.3: Reno low-rate (shrew) attack ------------------------------------

TEST(Finding43_Shrew, AdaptiveKillerLocksRenoIntoBackoff) {
  const auto crafted = scenario::crafted::craft_retransmission_killer(
      stall_config(), cca::make_factory("reno"));
  const auto& run = crafted.final_run;
  EXPECT_TRUE(run.stalled(DurationNs::seconds(1)));
  EXPECT_LT(run.goodput_mbps(), 4.0);
  EXPECT_GE(run.rto_count(), 2);
  EXPECT_GE(run.final_rto_backoff(), 2) << "exponential backoff must engage";
}

TEST(Finding43_Shrew, OpenLoopPeriodicBurstsDegradeReno) {
  // The classic open-loop attack from [13]: bursts at ~the min-RTO period.
  // Open-loop bursts degrade Reno (periodic multiplicative decreases) but
  // full lockout needs the adaptive variant that also kills the
  // retransmissions — which is exactly what the GA / crafter finds.
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(10);
  cfg.net.queue_capacity = 50;
  const auto clean = scenario::run_scenario(cfg, cca::make_factory("reno"), {});
  const auto trace = scenario::crafted::shrew_trace(
      TimeNs::millis(1500), DurationNs::seconds(1), 60, cfg.duration);
  const auto run =
      scenario::run_scenario(cfg, cca::make_factory("reno"), trace);
  EXPECT_LT(run.goodput_mbps(), clean.goodput_mbps() - 1.0);
  EXPECT_GT(run.cca_drops(), 0);
  // Attack efficiency: the attacker averages well under the link rate.
  const double attack_mbps = static_cast<double>(run.cross_sent) * 1500 * 8 /
                             cfg.duration.to_seconds() * 1e-6;
  EXPECT_LT(attack_mbps, 2.0);
}

// --- Fig 4e: standing-queue delay attack on BBR ----------------------------

TEST(Fig4e_Delay, StandingQueueInflatesBbrDelayFloor) {
  scenario::ScenarioConfig cfg;
  cfg.duration = TimeNs::seconds(5);
  cfg.flow_start = TimeNs::millis(200);
  cfg.record_mode = scenario::RecordMode::kFullEvents;  // raw delay samples
  const auto clean = scenario::run_scenario(cfg, cca::make_factory("bbr"), {});
  const auto trace = scenario::crafted::standing_queue_trace(
      cfg.flow_start, cfg.net.queue_capacity, DurationNs::millis(2), 1,
      cfg.duration);
  const auto attacked =
      scenario::run_scenario(cfg, cca::make_factory("bbr"), trace);
  const auto p10 = [](const scenario::RunResult& r) {
    auto d = r.cca_queue_delays_s();
    std::sort(d.begin(), d.end());
    return d.empty() ? 0.0 : d[d.size() / 10];
  };
  // The queue is pre-filled before BBR starts, so BBR never observes the
  // true min RTT and its delay floor rises by an order of magnitude.
  EXPECT_GT(p10(attacked), 10 * p10(clean) + 0.001);
}

}  // namespace
}  // namespace ccfuzz
