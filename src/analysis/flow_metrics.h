// Post-run series extraction for the paper's figures.
//
// Fig 4a/4b plot ingress/egress/traffic rates (Mbps) against time; Fig 4e
// plots per-packet queueing delay against time. Everything derives from the
// BottleneckRecorder carried in a RunResult — run the scenario with
// ScenarioConfig::record_mode = RecordMode::kFullEvents (or
// TraceEvaluator::run_full / campaign::evaluate_panel, which force it); the
// metrics-only fuzzing default keeps no per-packet events and every series
// here comes back empty/zero.
#pragma once

#include <vector>

#include "net/packet.h"
#include "scenario/runner.h"
#include "util/time.h"

namespace ccfuzz::analysis {

/// One rate series: midpoint time of each window (seconds) and the rate in
/// Mbps over that window.
struct RateSeries {
  std::vector<double> time_s;
  std::vector<double> mbps;
};

/// One scatter series of per-packet queueing delays.
struct DelaySeries {
  std::vector<double> time_s;
  std::vector<double> delay_ms;
};

/// Which recorder stream to turn into a series.
enum class Stream { kIngress, kEgress, kDrops };

/// Windowed rate of `flow` packets in `stream` over [0, duration).
RateSeries rate_series(const scenario::RunResult& run, Stream stream,
                       net::FlowId flow,
                       DurationNs window = DurationNs::millis(100));

/// Windowed rate of one *competing CCA flow*'s packets (by flow index) in
/// `stream` — the per-flow view fairness figures plot side by side.
RateSeries flow_rate_series(const scenario::RunResult& run, Stream stream,
                            std::size_t flow_index,
                            DurationNs window = DurationNs::millis(100));

/// Queueing delay of every `flow` packet that crossed the bottleneck.
DelaySeries delay_series(const scenario::RunResult& run, net::FlowId flow);

/// Queueing delay of one competing CCA flow's packets (by flow index).
DelaySeries flow_delay_series(const scenario::RunResult& run,
                              std::size_t flow_index);

/// Link service rate implied by the *link trace* (link mode) or the fixed
/// bottleneck rate (traffic mode), windowed like rate_series.
RateSeries link_rate_series(const scenario::RunResult& run,
                            const std::vector<TimeNs>& trace_times,
                            DurationNs window = DurationNs::millis(100));

/// Convenience: overall utilization of the CCA flow in [from, to), as a
/// fraction of the configured bottleneck rate.
double utilization(const scenario::RunResult& run, TimeNs from, TimeNs to);

}  // namespace ccfuzz::analysis
