// Streaming per-flow metrics, maintained during the run instead of derived
// from per-packet event vectors afterwards.
//
// The GA's scoring functions (fuzz/score) need only O(windows) summaries per
// flow — windowed egress bins, queue-delay aggregates, the last-progress
// timestamp, goodput inputs — yet the legacy observation path materialized
// four O(packets) event vectors per run (net::BottleneckRecorder) and
// re-scanned them per score. This sink is fed directly by the Dumbbell's
// bottleneck egress callback and maintains those summaries incrementally, so
// scenario::RunResult can answer windowed_throughput / stalled / delay
// percentile queries without any packet records. It is always on (the
// per-packet cost is a few adds); ScenarioConfig::record_mode only controls
// whether the raw recorder event vectors are *also* kept.
//
// Equivalence contract: the windowed bins reproduce the legacy post-hoc
// computation (util/stats windowed_rate over per-packet egress times) bit
// for bit — each packet is binned with the same double arithmetic the old
// path applied, and the bin→Mbps conversion happens in the same operation
// order. The record-mode golden test pins this.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/time.h"

namespace ccfuzz::analysis {

/// Log-bucket queue-delay aggregate: count/sum/min/max plus a log-scale
/// histogram for percentile estimates. Identical in metrics_only and
/// full_events runs, so scores built on it cannot diverge across modes.
///
/// Bucket layout (HDR-histogram style): delays are measured in 1.024 µs
/// units (ns >> kUnitShift); the first 32 units are exact 1-unit buckets,
/// after which each octave splits into 32 sub-buckets, giving a constant
/// ~3 % relative resolution from ~1 µs to >2000 s. The predecessor was
/// linear 1 ms × 1024, which collapsed every sub-millisecond delay of a
/// high-rate scenario into bucket 0 — mid-range percentiles there were pure
/// interpolation artifacts. Log buckets keep the error proportional to the
/// value at every scale while using fewer buckets (864 vs 1024).
class DelayDigest {
 public:
  /// One histogram unit is 2^kUnitShift ns ≈ 1.024 µs — the resolution
  /// floor (queueing delays below a microsecond read as 0-1 units).
  static constexpr int kUnitShift = 10;
  /// Sub-buckets per octave: 2^5 = 32 → worst-case relative error 1/32.
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Octaves beyond the exact range; the last bucket starts at
  /// 63 × 2^25 units ≈ 2163 s. Anything longer clamps into it (max stays
  /// exact regardless).
  static constexpr int kOctaves = 26;
  static constexpr int kBuckets = kSubBuckets * (kOctaves + 1);

  /// Histogram bucket of a non-negative delay in ns.
  static int bucket_of(std::int64_t ns) {
    const std::uint64_t u = static_cast<std::uint64_t>(ns) >> kUnitShift;
    if (u < kSubBuckets) return static_cast<int>(u);  // exact 1-unit buckets
    const int msb = 63 - std::countl_zero(u);
    const int octave = msb - kSubBits + 1;
    const int mantissa =
        static_cast<int>((u >> (msb - kSubBits)) & (kSubBuckets - 1));
    const int b = (octave << kSubBits) + mantissa;
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Lower bound of bucket `b`, in units.
  static std::uint64_t bucket_lo(int b) {
    const int octave = b >> kSubBits;
    const std::uint64_t mantissa = static_cast<std::uint64_t>(b) & (kSubBuckets - 1);
    if (octave == 0) return mantissa;
    return (static_cast<std::uint64_t>(kSubBuckets) + mantissa)
           << (octave - 1);
  }

  /// Width of bucket `b`, in units.
  static std::uint64_t bucket_width(int b) {
    const int octave = b >> kSubBits;
    return octave == 0 ? 1 : 1ull << (octave - 1);
  }

  void add(DurationNs d) {
    const std::int64_t ns = d.ns() < 0 ? 0 : d.ns();
    ++count_;
    sum_ns_ += ns;
    if (count_ == 1 || ns < min_ns_) min_ns_ = ns;
    if (ns > max_ns_) max_ns_ = ns;
    ++buckets_[static_cast<std::size_t>(bucket_of(ns))];
  }

  std::int64_t count() const { return count_; }
  double mean_s() const {
    return count_ ? static_cast<double>(sum_ns_) /
                        static_cast<double>(count_) * 1e-9
                  : 0.0;
  }
  double min_s() const { return count_ ? static_cast<double>(min_ns_) * 1e-9 : 0.0; }
  double max_s() const { return count_ ? static_cast<double>(max_ns_) * 1e-9 : 0.0; }

  /// Histogram-estimated percentile in seconds, p in [0, 100]; exact at the
  /// extremes (min/max are tracked precisely). In between, the rank is
  /// located in its bucket and interpolated linearly across that bucket, so
  /// the estimate tracks the nearest-rank sample to within ~3 % of its
  /// value (one log bucket) — unlike the legacy exact percentile it does
  /// NOT interpolate linearly *between* samples, so for sparse/bimodal
  /// distributions mid-range percentiles sit near the flanking sample
  /// rather than between the two. Monotone in p; 0 for an empty digest.
  double percentile_s(double p) const;

  void clear() {
    count_ = 0;
    sum_ns_ = 0;
    min_ns_ = 0;
    max_ns_ = 0;
    buckets_.fill(0);
  }

 private:
  std::int64_t count_ = 0;
  std::int64_t sum_ns_ = 0;
  std::int64_t min_ns_ = 0;
  std::int64_t max_ns_ = 0;
  std::array<std::int32_t, kBuckets> buckets_{};
};

/// One CCA flow's streaming summary for a run.
struct FlowSeries {
  // Binning interval [start_s, end_s) and window width, in seconds — stored
  // as the exact doubles the legacy post-hoc path used, so per-packet bin
  // assignment is bit-identical.
  double start_s = 0.0;
  double end_s = 0.0;
  double window_s = 0.0;
  /// Total bottleneck egress packets of this flow (whole run).
  std::int64_t egress_packets = 0;
  /// Time of the flow's last bottleneck egress; -1 if none (stalled()).
  TimeNs last_egress = TimeNs(-1);
  /// Egress packets per window over [start_s, end_s).
  std::vector<std::int32_t> bins;
  /// Queue-delay aggregate over the flow's egress packets.
  DelayDigest delay;
};

/// The streaming sink. One per scenario::RunContext (it lives inside
/// RunResult so the warm storage *is* the result — no copy on handoff);
/// begin_run/set_flow_interval reuse capacity across runs.
class StreamingMetrics {
 public:
  /// Starts a run with `flows` CCA flows, bin width `window` and horizon
  /// `duration`. Flow slots are kept warm across runs; call
  /// set_flow_interval for every flow afterwards.
  void begin_run(std::size_t flows, DurationNs window, TimeNs duration);

  /// (Re)initializes flow `i`'s summary for this run, binning over
  /// [start, duration).
  void set_flow_interval(std::size_t i, TimeNs start);

  /// Feed from the bottleneck egress callback. Packets that are not CCA
  /// data, or whose flow index is out of range, are ignored.
  void on_egress(const net::Packet& p, TimeNs now, DurationNs queue_delay) {
    if (p.flow != net::FlowId::kCcaData || p.flow_index >= active_) return;
    FlowSeries& f = flows_[p.flow_index];
    ++f.egress_packets;
    f.last_egress = now;
    f.delay.add(queue_delay);
    const double t = now.to_seconds();
    if (t >= f.start_s && t < f.end_s && f.window_s > 0.0) {
      const std::size_t w =
          static_cast<std::size_t>((t - f.start_s) / f.window_s);
      if (w < f.bins.size()) ++f.bins[w];
    }
  }

  std::size_t flow_count() const { return active_; }
  DurationNs window() const { return window_; }

  /// Flow `i`'s summary, or a neutral empty one when out of range.
  const FlowSeries& flow(std::size_t i) const;

  /// The flow's per-window egress throughput in Mbps — the same series the
  /// legacy events path computed, without touching per-packet data. The
  /// `_into` variant reuses caller storage (allocation-free when warm).
  void windowed_throughput_mbps_into(std::size_t i, std::int32_t packet_bytes,
                                     std::vector<double>& out) const;
  std::vector<double> windowed_throughput_mbps(std::size_t i,
                                               std::int32_t packet_bytes) const {
    std::vector<double> out;
    windowed_throughput_mbps_into(i, packet_bytes, out);
    return out;
  }

 private:
  std::vector<FlowSeries> flows_;  // slots persist; first `active_` in use
  std::size_t active_ = 0;
  DurationNs window_ = DurationNs::zero();
  double duration_s_ = 0.0;
};

}  // namespace ccfuzz::analysis
