#include "analysis/timeline.h"

#include <ostream>

namespace ccfuzz::analysis {
namespace {

bool is_diagnostic(tcp::TcpEventType t) {
  switch (t) {
    case tcp::TcpEventType::kSend:
    case tcp::TcpEventType::kAck:
      return false;
    default:
      return true;
  }
}

}  // namespace

std::vector<std::string> timeline_rows(const tcp::TcpEventLog& log,
                                       const TimelineOptions& opt) {
  std::vector<std::string> rows;
  for (const auto& ev : log.events()) {
    if (ev.time < opt.from || ev.time >= opt.to) continue;
    if (opt.diagnostics_only && !is_diagnostic(ev.type)) continue;
    rows.push_back(ev.to_string());
    if (opt.max_rows > 0 && rows.size() >= opt.max_rows) break;
  }
  return rows;
}

void print_timeline(std::ostream& os, const tcp::TcpEventLog& log,
                    const TimelineOptions& opt) {
  for (const auto& row : timeline_rows(log, opt)) {
    os << row << '\n';
  }
}

StallDiagnostics stall_diagnostics(const tcp::TcpEventLog& log) {
  StallDiagnostics d;
  d.rtos = log.count(tcp::TcpEventType::kRto);
  d.spurious_retx = log.count(tcp::TcpEventType::kSpuriousRetx);
  d.probe_round_ends = log.count(tcp::TcpEventType::kProbeRoundEnd);
  d.bw_filter_drops = log.count(tcp::TcpEventType::kBwFilterDrop);
  d.marks_lost = log.count(tcp::TcpEventType::kMarkLost);
  return d;
}

}  // namespace ccfuzz::analysis
