// Fig 4c: a human-readable timeline of the sender-side event sequence that
// triggers the BBR stall (RTO → spurious retransmissions → late SACKs →
// premature probe-round ends → bandwidth-filter collapse).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tcp/event_log.h"
#include "util/time.h"

namespace ccfuzz::analysis {

/// Options for timeline extraction.
struct TimelineOptions {
  /// Only include events in [from, to).
  TimeNs from = TimeNs::zero();
  TimeNs to = TimeNs::infinite();
  /// Drop plain data sends/ACKs, keeping the diagnostic events (losses,
  /// retransmissions, SACKs, RTOs, BBR model transitions).
  bool diagnostics_only = false;
  /// Cap on emitted rows (0 = unlimited).
  std::size_t max_rows = 0;
};

/// Filters and renders an event log into printable rows.
std::vector<std::string> timeline_rows(const tcp::TcpEventLog& log,
                                       const TimelineOptions& opt = {});

/// Writes one row per line to `os`.
void print_timeline(std::ostream& os, const tcp::TcpEventLog& log,
                    const TimelineOptions& opt = {});

/// Compact summary of stall-relevant counts over a log (used by tests and
/// the Fig 4c bench header).
struct StallDiagnostics {
  std::int64_t rtos = 0;
  std::int64_t spurious_retx = 0;
  std::int64_t probe_round_ends = 0;
  std::int64_t bw_filter_drops = 0;
  std::int64_t marks_lost = 0;
};

StallDiagnostics stall_diagnostics(const tcp::TcpEventLog& log);

}  // namespace ccfuzz::analysis
