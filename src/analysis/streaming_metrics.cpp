#include "analysis/streaming_metrics.h"

#include <algorithm>
#include <cmath>

namespace ccfuzz::analysis {

double DelayDigest::percentile_s(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_s();
  if (p >= 100.0) return max_s();
  // Same rank position the exact (sorted-sample) percentile interpolates at;
  // here it is located within a bucket and interpolated linearly across it.
  const double pos = p / 100.0 * static_cast<double>(count_ - 1);
  std::int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int32_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (pos < static_cast<double>(cum + n)) {
      const double frac =
          (pos - static_cast<double>(cum)) / static_cast<double>(n);
      const double units = static_cast<double>(bucket_lo(b)) +
                           frac * static_cast<double>(bucket_width(b));
      const double est =
          units * static_cast<double>(1ll << kUnitShift) * 1e-9;
      return std::clamp(est, min_s(), max_s());
    }
    cum += n;
  }
  return max_s();
}

void StreamingMetrics::begin_run(std::size_t flows, DurationNs window,
                                 TimeNs duration) {
  if (flows_.size() < flows) flows_.resize(flows);
  active_ = flows;
  window_ = window;
  duration_s_ = duration.to_seconds();
}

void StreamingMetrics::set_flow_interval(std::size_t i, TimeNs start) {
  FlowSeries& f = flows_[i];
  f.start_s = start.to_seconds();
  f.end_s = duration_s_;
  f.window_s = window_.to_seconds();
  f.egress_packets = 0;
  f.last_egress = TimeNs(-1);
  f.delay.clear();
  const double span = f.end_s - f.start_s;
  const std::size_t n =
      (span > 0.0 && f.window_s > 0.0)
          ? static_cast<std::size_t>(std::ceil(span / f.window_s))
          : 0;
  f.bins.assign(n, 0);
}

const FlowSeries& StreamingMetrics::flow(std::size_t i) const {
  static const FlowSeries kNeutral;
  return i < active_ ? flows_[i] : kNeutral;
}

void StreamingMetrics::windowed_throughput_mbps_into(
    std::size_t i, std::int32_t packet_bytes, std::vector<double>& out) const {
  out.clear();
  if (i >= active_) return;
  const FlowSeries& f = flows_[i];
  out.reserve(f.bins.size());
  const double bits = static_cast<double>(packet_bytes) * 8.0;
  for (std::size_t w = 0; w < f.bins.size(); ++w) {
    // Identical arithmetic (and operation order) to the legacy path:
    // windowed_rate normalized each bin by its true width — the last window
    // may be partial — and the caller scaled rate * bits * 1e-6.
    const double lo = f.start_s + static_cast<double>(w) * f.window_s;
    const double width = std::min(f.window_s, f.end_s - lo);
    const double rate = static_cast<double>(f.bins[w]) / width;
    out.push_back(rate * bits * 1e-6);
  }
}

}  // namespace ccfuzz::analysis
