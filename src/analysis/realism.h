// Realism scoring (paper §5, Fig 5): quantify how "realistic" a link trace
// is by running a panel of CCAs over it and scoring the best utilization any
// of them achieves. Traces under which no reasonable CCA can perform (e.g.
// famine early, feast late) are rejected; traces where at least one CCA does
// well are accepted.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scenario/config.h"
#include "tcp/congestion_control.h"
#include "trace/trace.h"

namespace ccfuzz::analysis {

/// One CCA's outcome under the trace.
struct PanelEntry {
  std::string cca;
  double utilization = 0.0;  ///< goodput / average trace rate
};

/// Verdict for one trace.
struct RealismResult {
  std::vector<PanelEntry> panel;
  double score = 0.0;  ///< best utilization across the panel
  bool accepted = false;
};

/// Multi-CCA realism scorer.
class RealismScorer {
 public:
  struct Config {
    scenario::ScenarioConfig scenario{};
    /// Accept when the best panel utilization reaches this fraction.
    double accept_threshold = 0.6;
  };

  /// `panel` entries are (name, factory) pairs; all built-ins via
  /// cca::make_factory qualify.
  RealismScorer(Config cfg,
                std::vector<std::pair<std::string, tcp::CcaFactory>> panel);

  /// Runs every panel CCA over the trace (link mode) and scores it.
  RealismResult score(const trace::Trace& t) const;

  /// Cheaper variant (§5): evaluate a single panel member chosen by
  /// `pick` (e.g. round-robin or random index) instead of the full panel.
  RealismResult score_single(const trace::Trace& t, std::size_t pick) const;

 private:
  Config cfg_;
  std::vector<std::pair<std::string, tcp::CcaFactory>> panel_;
};

}  // namespace ccfuzz::analysis
