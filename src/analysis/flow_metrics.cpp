#include "analysis/flow_metrics.h"

#include "util/stats.h"

namespace ccfuzz::analysis {
namespace {

const std::vector<net::PacketEvent>& pick_stream(
    const scenario::RunResult& run, Stream stream) {
  switch (stream) {
    case Stream::kIngress: return run.recorder.ingress();
    case Stream::kEgress: return run.recorder.egress();
    case Stream::kDrops: return run.recorder.drops();
  }
  return run.recorder.egress();
}

RateSeries rates_from_times(const std::vector<double>& times_s,
                            double duration_s, double window_s,
                            double bits_per_packet) {
  RateSeries out;
  const auto rates = ccfuzz::windowed_rate(times_s, 0.0, duration_s, window_s);
  out.time_s.reserve(rates.size());
  out.mbps.reserve(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    out.time_s.push_back((static_cast<double>(i) + 0.5) * window_s);
    out.mbps.push_back(rates[i] * bits_per_packet * 1e-6);
  }
  return out;
}

}  // namespace

RateSeries rate_series(const scenario::RunResult& run, Stream stream,
                       net::FlowId flow, DurationNs window) {
  std::vector<double> times;
  for (const auto& e : pick_stream(run, stream)) {
    if (e.flow == flow) times.push_back(e.time.to_seconds());
  }
  return rates_from_times(times, run.config.duration.to_seconds(),
                          window.to_seconds(),
                          static_cast<double>(run.config.net.packet_bytes) * 8.0);
}

RateSeries flow_rate_series(const scenario::RunResult& run, Stream stream,
                            std::size_t flow_index, DurationNs window) {
  const auto idx = static_cast<net::FlowIndex>(flow_index);
  std::vector<double> times;
  for (const auto& e : pick_stream(run, stream)) {
    if (e.flow == net::FlowId::kCcaData && e.flow_index == idx) {
      times.push_back(e.time.to_seconds());
    }
  }
  return rates_from_times(times, run.config.duration.to_seconds(),
                          window.to_seconds(),
                          static_cast<double>(run.config.net.packet_bytes) * 8.0);
}

DelaySeries delay_series(const scenario::RunResult& run, net::FlowId flow) {
  DelaySeries out;
  for (const auto& d : run.recorder.delays()) {
    if (d.flow != flow) continue;
    out.time_s.push_back(d.time.to_seconds());
    out.delay_ms.push_back(d.queue_delay.to_millis());
  }
  return out;
}

DelaySeries flow_delay_series(const scenario::RunResult& run,
                              std::size_t flow_index) {
  const auto idx = static_cast<net::FlowIndex>(flow_index);
  DelaySeries out;
  for (const auto& d : run.recorder.delays()) {
    if (d.flow != net::FlowId::kCcaData || d.flow_index != idx) continue;
    out.time_s.push_back(d.time.to_seconds());
    out.delay_ms.push_back(d.queue_delay.to_millis());
  }
  return out;
}

RateSeries link_rate_series(const scenario::RunResult& run,
                            const std::vector<TimeNs>& trace_times,
                            DurationNs window) {
  const double bits = static_cast<double>(run.config.net.packet_bytes) * 8.0;
  if (run.config.mode == scenario::FuzzMode::kLink) {
    std::vector<double> times;
    times.reserve(trace_times.size());
    for (const TimeNs t : trace_times) times.push_back(t.to_seconds());
    return rates_from_times(times, run.config.duration.to_seconds(),
                            window.to_seconds(), bits);
  }
  // Traffic mode: the link rate is constant.
  RateSeries out;
  const double duration_s = run.config.duration.to_seconds();
  const double window_s = window.to_seconds();
  const double mbps = run.config.net.bottleneck_rate.mbps_f();
  for (double t = window_s / 2; t < duration_s; t += window_s) {
    out.time_s.push_back(t);
    out.mbps.push_back(mbps);
  }
  return out;
}

double utilization(const scenario::RunResult& run, TimeNs from, TimeNs to) {
  if (to <= from) return 0.0;
  std::int64_t packets = 0;
  for (const auto& e : run.recorder.egress()) {
    if (e.flow == net::FlowId::kCcaData && e.time >= from && e.time < to) {
      ++packets;
    }
  }
  const double bits =
      static_cast<double>(packets) *
      static_cast<double>(run.config.net.packet_bytes) * 8.0;
  const double capacity =
      static_cast<double>(run.config.net.bottleneck_rate.bits_per_second()) *
      (to - from).to_seconds();
  return capacity > 0 ? bits / capacity : 0.0;
}

}  // namespace ccfuzz::analysis
