#include "analysis/realism.h"

#include <algorithm>
#include <cassert>

#include "scenario/runner.h"

namespace ccfuzz::analysis {
namespace {

double utilization_of(const scenario::ScenarioConfig& cfg,
                      const tcp::CcaFactory& cca, const trace::Trace& t) {
  scenario::ScenarioConfig run_cfg = cfg;
  run_cfg.mode = scenario::FuzzMode::kLink;
  run_cfg.duration = t.duration;
  const auto run = scenario::run_scenario(run_cfg, cca, t.stamps);
  // Utilization relative to what the trace itself offered.
  const double offered_mbps =
      t.average_rate_bps(run_cfg.net.packet_bytes) * 1e-6;
  if (offered_mbps <= 0.0) return 0.0;
  return std::min(run.goodput_mbps() / offered_mbps, 1.0);
}

}  // namespace

RealismScorer::RealismScorer(
    Config cfg, std::vector<std::pair<std::string, tcp::CcaFactory>> panel)
    : cfg_(std::move(cfg)), panel_(std::move(panel)) {
  assert(!panel_.empty() && "realism panel needs at least one CCA");
}

RealismResult RealismScorer::score(const trace::Trace& t) const {
  RealismResult r;
  for (const auto& [name, factory] : panel_) {
    PanelEntry e;
    e.cca = name;
    e.utilization = utilization_of(cfg_.scenario, factory, t);
    r.score = std::max(r.score, e.utilization);
    r.panel.push_back(std::move(e));
  }
  r.accepted = r.score >= cfg_.accept_threshold;
  return r;
}

RealismResult RealismScorer::score_single(const trace::Trace& t,
                                          std::size_t pick) const {
  const auto& [name, factory] = panel_[pick % panel_.size()];
  RealismResult r;
  PanelEntry e;
  e.cca = name;
  e.utilization = utilization_of(cfg_.scenario, factory, t);
  r.score = e.utilization;
  r.panel.push_back(std::move(e));
  r.accepted = r.score >= cfg_.accept_threshold;
  return r;
}

}  // namespace ccfuzz::analysis
