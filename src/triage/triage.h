// Finding triage: confirm, minimize, classify, bundle, and replay.
//
// A campaign's raw output — per-cell winner traces and the NaN/inf
// quarantine — is only a claim. This pipeline turns each claim into a
// validated reproducer (see bundle.h for the on-disk format):
//
//   1. Confirmation: re-evaluate K times in fresh scenario::RunContexts.
//      The simulator is deterministic, so any score drift means broken
//      determinism (warm-state leakage, wall-clock truncation) — the
//      candidate is flagged flaky and dropped instead of shipped.
//   2. Minimization: ddmin over trace events (triage/minimize.h) plus a
//      scenario-duration shrink for coverage-armed cells, preserving the
//      finding predicate (score within tolerance, or the same MAP-Elites
//      behavior-descriptor cell; "still quarantined" for quarantine finds).
//   3. Classification: one run with the sim::Invariants oracle armed. A
//      violation (broken packet conservation, cwnd < 1 MSS, inconsistent
//      SACK scoreboard, ...) reclassifies the finding from "cca-weakness"
//      to "simulator-bug" before anyone acts on it.
//
// replay_findings() is the regression half: re-evaluate every bundle's
// minimized trace under a freshly built matrix and fail on any drift.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "campaign/campaign.h"
#include "fuzz/evaluator.h"
#include "trace/trace.h"
#include "util/error.h"

namespace ccfuzz::triage {

struct TriageConfig {
  /// Fresh-context confirmation runs per candidate (>= 1).
  int confirm_runs = 3;
  /// Relative score tolerance: the minimization predicate accepts a score
  /// within `tolerance * max(1, |confirmed|)` below the confirmed one, and
  /// replay must land within the same absolute band.
  double tolerance = 0.02;
  /// Simulation budget for minimization per finding (ddmin + duration
  /// shrink). 0 disables minimization (bundles ship the original trace).
  int max_minimize_evals = 200;
  /// Attempt scenario-duration halving for coverage-armed cells.
  bool shrink_duration = true;
  /// Bundle output directory; defaults to `<report_dir>/findings`.
  std::string findings_dir;
  /// Progress stream (one line per candidate); null = silent.
  std::FILE* log = nullptr;
};

/// One candidate's confirmation outcome.
struct Confirmation {
  int runs = 0;
  /// Score drifted across fresh contexts, or a wall-deadline truncation made
  /// the evaluation nondeterministic — not reportable.
  bool flaky = false;
  /// A deterministic run guard (event/sim-time budget) clipped the run.
  /// Still reproducible, recorded in the bundle.
  bool truncated = false;
  double drift = 0.0;      ///< max |score_i - score_0| across runs
  fuzz::Evaluation eval;   ///< first run's evaluation
};

/// Re-evaluates `t` `runs` times, each on a fresh RunContext.
Confirmation confirm(const fuzz::TraceEvaluator& ev, const trace::Trace& t,
                     int runs);

struct TriageStats {
  int candidates = 0;      ///< winner traces + quarantined genomes examined
  int confirmed = 0;       ///< survived fresh-context confirmation
  int flaky = 0;           ///< dropped: drift or wall-deadline truncation
  int unreproduced = 0;    ///< quarantine genomes that no longer quarantine
  int simulator_bugs = 0;  ///< bundles classified simulator-bug
  int bundles_written = 0;
  int errors = 0;          ///< unreadable traces / unwritable bundles
};

/// Triages every winner trace and quarantined genome under `report_dir`
/// (a campaign output tree) against the matrix `cells`, writing bundles to
/// `<report_dir>/findings/` (or cfg.findings_dir). The cells must be the
/// matrix the campaign ran — cell names are matched against the report's
/// directory layout. Errors: kIo when the report tree is unreadable.
Result<TriageStats> triage_report(const std::vector<campaign::CellConfig>& cells,
                                  const std::string& report_dir,
                                  const TriageConfig& cfg);

struct ReplayStats {
  int bundles = 0;
  int ok = 0;
  int drifted = 0;  ///< replayed score left the recorded tolerance band
  int broken = 0;   ///< unreadable bundle / unknown cell / scenario drift
};

/// Replays every bundle under `findings_dir` against the matrix `cells`:
/// rebuilds each bundle's evaluator, re-runs the minimized trace, and
/// compares against the recorded expectation. A missing findings directory
/// is an empty corpus (0 bundles), not an error.
Result<ReplayStats> replay_findings(
    const std::vector<campaign::CellConfig>& cells,
    const std::string& findings_dir, std::FILE* log = nullptr);

}  // namespace ccfuzz::triage
