#include "triage/triage.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <filesystem>
#include <utility>

#include "campaign/report.h"
#include "cca/registry.h"
#include "fuzz/elite_archive.h"
#include "scenario/runner.h"
#include "trace/hash.h"
#include "trace/trace_io.h"
#include "triage/bundle.h"
#include "triage/minimize.h"

namespace ccfuzz::triage {

namespace {

namespace fs = std::filesystem;

void logf(std::FILE* log, const char* fmt, ...) {
  if (log == nullptr) return;
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(log, fmt, ap);
  va_end(ap);
  std::fflush(log);
}

tcp::CcaFactory cell_factory(const campaign::CellConfig& cell) {
  return cell.factory ? cell.factory : cca::make_factory(cell.cca);
}

const char* cell_score_name(const campaign::CellConfig& cell) {
  return cell.score ? cell.score->name() : "low-utilization";
}

/// Two fresh-context scores differing at all means broken determinism; keep
/// the comparison exact up to accumulated float noise.
constexpr double kDriftEpsilon = 1e-9;

/// The finding predicate shared by ddmin and the duration shrink: either the
/// score stays inside the tolerance band (>= confirmed - band; scoring
/// *higher* is still the same-or-stronger finding), or — for coverage-armed
/// cells — the candidate lands in the confirmed behavior-descriptor cell.
struct FindingPredicate {
  bool expect_quarantined = false;
  double min_score = 0.0;
  bool use_descriptor = false;
  std::size_t descriptor_cell = 0;

  bool holds(const fuzz::Evaluation& e) const {
    if (expect_quarantined) return e.quarantined;
    if (e.quarantined) return false;
    if (e.score.total() >= min_score) return true;
    return use_descriptor && e.coverage.valid &&
           fuzz::EliteArchive::cell_index(e.coverage.descriptor) ==
               descriptor_cell;
  }
};

/// One triage unit: a candidate trace attributed to a cell.
struct Candidate {
  const campaign::CellConfig* cell = nullptr;
  trace::Trace genome;
  std::string source;  // "winner" | "quarantine"
};

void triage_one(const Candidate& cand, const TriageConfig& cfg,
                const std::string& findings_dir, TriageStats& stats) {
  const campaign::CellConfig& cell = *cand.cell;
  ++stats.candidates;
  const std::string id = bundle_id(cell.name, trace::hash(cand.genome));
  const fuzz::TraceEvaluator ev = campaign::make_evaluator(cell);

  // 1. Confirmation on fresh contexts.
  const Confirmation conf = confirm(ev, cand.genome, cfg.confirm_runs);
  const bool expect_quarantined = cand.source == "quarantine";
  if (expect_quarantined && !conf.eval.quarantined) {
    // The genome no longer produces a non-finite score under this matrix —
    // a stale quarantine entry, not a confirmable finding.
    ++stats.unreproduced;
    logf(cfg.log, "triage: %s %s/%s not reproduced (score %.6g finite)\n",
         cand.source.c_str(), cell.name.c_str(), id.c_str(),
         conf.eval.score.total());
    return;
  }
  if (conf.flaky) {
    ++stats.flaky;
    logf(cfg.log,
         "triage: %s %s/%s FLAKY (drift %.3g, wall-truncated: %s) — dropped\n",
         cand.source.c_str(), cell.name.c_str(), id.c_str(), conf.drift,
         conf.eval.truncation == sim::TruncationReason::kWallDeadline ? "yes"
                                                                      : "no");
    return;
  }
  ++stats.confirmed;

  // 2. Minimization under the finding predicate.
  FindingPredicate pred;
  pred.expect_quarantined = expect_quarantined;
  const double confirmed_score = conf.eval.score.total();
  const double band = cfg.tolerance * std::max(1.0, std::abs(confirmed_score));
  pred.min_score = confirmed_score - band;
  if (cell.scenario.coverage && conf.eval.coverage.valid) {
    pred.use_descriptor = true;
    pred.descriptor_cell =
        fuzz::EliteArchive::cell_index(conf.eval.coverage.descriptor);
  }
  int evals_left = cfg.max_minimize_evals;
  MinimizeResult minimized = minimize_events(
      cand.genome,
      [&](const trace::Trace& t) { return pred.holds(ev.evaluate(t)); },
      evals_left);
  evals_left -= minimized.evals;

  // Optional duration shrink: halve the scenario until the finding leaves
  // its behavior-descriptor cell. Score bands are not comparable across
  // durations, so this pass needs the coverage predicate.
  campaign::CellConfig final_cell = cell;
  if (cfg.shrink_duration && pred.use_descriptor && !expect_quarantined) {
    while (evals_left > 0) {
      const TimeNs half = TimeNs(final_cell.scenario.duration.ns() / 2);
      const TimeNs floor = TimeNs::millis(200);
      if (half < floor) break;
      if (!minimized.trace.stamps.empty() &&
          minimized.trace.stamps.back() >= half) {
        break;  // the remaining events need the longer window
      }
      campaign::CellConfig shrunk = final_cell;
      shrunk.scenario.duration = half;
      const fuzz::TraceEvaluator sev = campaign::make_evaluator(shrunk);
      trace::Trace t = minimized.trace;
      t.duration = half;
      const fuzz::Evaluation e = sev.evaluate(t);
      --evals_left;
      if (e.truncated || e.quarantined || !e.coverage.valid ||
          fuzz::EliteArchive::cell_index(e.coverage.descriptor) !=
              pred.descriptor_cell) {
        break;
      }
      final_cell = std::move(shrunk);
      minimized.trace = std::move(t);
    }
  }

  // Re-measure the regression contract under the final scenario: the
  // expected score is what the *minimized* trace replays to.
  const fuzz::TraceEvaluator final_ev = campaign::make_evaluator(final_cell);
  const fuzz::Evaluation final_eval = final_ev.evaluate(minimized.trace);

  // 3. Classification: one armed-invariants run over the minimized trace.
  scenario::ScenarioConfig armed = final_cell.scenario;
  armed.invariants = true;
  scenario::RunContext ctx;
  const scenario::RunResult& armed_run =
      ctx.run(armed, cell_factory(final_cell), minimized.trace.stamps);
  const std::int64_t violations = armed_run.invariants.total();
  if (violations > 0) {
    ++stats.simulator_bugs;
    for (const auto& v : armed_run.invariants.violations()) {
      logf(cfg.log, "triage:   invariant violated at %.3f ms: %s\n",
           v.when.to_millis(), v.what.c_str());
    }
  }

  BundleManifest m;
  m.id = id;
  m.source = cand.source;
  m.cell = cell.name;
  m.cca = cell.cca;
  m.mode = scenario::to_string(cell.scenario.mode);
  m.score = cell_score_name(cell);
  m.scenario_hash = trace::hash_hex(campaign::scenario_key(cell.scenario));
  m.duration_ms = final_cell.scenario.duration.ns() / 1'000'000;
  m.original_events = cand.genome.size();
  m.minimized_events = minimized.trace.size();
  m.original_score = confirmed_score;
  m.expected_score = final_eval.score.total();
  m.tolerance = band;
  m.expect_quarantined = expect_quarantined;
  m.confirm_runs = conf.runs;
  m.flaky = false;
  m.truncated = conf.truncated;
  m.classification = violations > 0 ? "simulator-bug" : "cca-weakness";
  m.invariant_violations = violations;

  const std::string dir = findings_dir + "/" + m.id;
  if (Error e = save_bundle(dir, m, cand.genome, minimized.trace)) {
    ++stats.errors;
    logf(cfg.log, "triage: cannot write bundle %s: %s\n", dir.c_str(),
         e.message.c_str());
    return;
  }
  ++stats.bundles_written;
  logf(cfg.log,
       "triage: %s %s/%s confirmed: %zu -> %zu events, score %.6g, %s\n",
       cand.source.c_str(), cell.name.c_str(), m.id.c_str(),
       cand.genome.size(), minimized.trace.size(), m.expected_score,
       m.classification.c_str());
}

}  // namespace

Confirmation confirm(const fuzz::TraceEvaluator& ev, const trace::Trace& t,
                     int runs) {
  Confirmation c;
  c.runs = std::max(1, runs);
  for (int i = 0; i < c.runs; ++i) {
    scenario::RunContext ctx;  // cold by construction
    fuzz::Evaluation e;
    ev.evaluate_on(ctx, t, e);
    if (i == 0) c.eval = e;
    c.drift = std::max(c.drift,
                       std::abs(e.score.total() - c.eval.score.total()));
    if (e.truncated) {
      // Wall-deadline truncation depends on host load — nondeterministic by
      // definition. Event/sim-time truncation is deterministic: record it.
      if (e.truncation == sim::TruncationReason::kWallDeadline) c.flaky = true;
      c.truncated = true;
    }
  }
  if (c.drift > kDriftEpsilon) c.flaky = true;
  return c;
}

Result<TriageStats> triage_report(
    const std::vector<campaign::CellConfig>& cells,
    const std::string& report_dir, const TriageConfig& cfg) {
  TriageStats stats;
  if (!fs::exists(report_dir)) {
    return Error::io("no campaign report at " + report_dir);
  }
  const std::string findings_dir =
      cfg.findings_dir.empty() ? report_dir + "/findings" : cfg.findings_dir;

  // Cell winners: `<report>/<cell>/winner_<k>.trace`, best first.
  for (const campaign::CellConfig& cell : cells) {
    const std::string cell_dir =
        report_dir + "/" + campaign::sanitize_cell_name(cell.name);
    for (std::size_t w = 0;; ++w) {
      const std::string path =
          cell_dir + "/winner_" + std::to_string(w) + ".trace";
      if (!fs::exists(path)) break;
      Result<trace::Trace> t = trace::try_load_trace(path);
      if (!t) {
        ++stats.errors;
        logf(cfg.log, "triage: cannot load %s: %s\n", path.c_str(),
             t.error().message.c_str());
        continue;
      }
      triage_one({&cell, std::move(*t), "winner"}, cfg, findings_dir, stats);
    }
  }

  // Quarantined genomes: `<report>/quarantine/<hash>.trace`, attributed to
  // the first cell whose mode matches the trace kind (the quarantine does
  // not record which cell tripped — the predicate is "still non-finite").
  std::vector<std::string> qpaths;
  {
    std::error_code ec;
    fs::directory_iterator it(report_dir + "/quarantine", ec);
    if (!ec) {
      for (const auto& entry : it) {
        if (entry.path().extension() == ".trace") {
          qpaths.push_back(entry.path().string());
        }
      }
    }
  }
  std::sort(qpaths.begin(), qpaths.end());
  for (const std::string& path : qpaths) {
    Result<trace::Trace> t = trace::try_load_trace(path);
    if (!t) {
      ++stats.errors;
      logf(cfg.log, "triage: cannot load %s: %s\n", path.c_str(),
           t.error().message.c_str());
      continue;
    }
    const auto wanted = t->kind == trace::TraceKind::kLink
                            ? scenario::FuzzMode::kLink
                            : scenario::FuzzMode::kTraffic;
    const campaign::CellConfig* owner = nullptr;
    for (const campaign::CellConfig& cell : cells) {
      if (cell.scenario.mode == wanted) {
        owner = &cell;
        break;
      }
    }
    if (owner == nullptr) {
      ++stats.errors;
      logf(cfg.log, "triage: no %s-mode cell to replay %s under\n",
           scenario::to_string(wanted), path.c_str());
      continue;
    }
    triage_one({owner, std::move(*t), "quarantine"}, cfg, findings_dir,
               stats);
  }
  return stats;
}

Result<ReplayStats> replay_findings(
    const std::vector<campaign::CellConfig>& cells,
    const std::string& findings_dir, std::FILE* log) {
  ReplayStats stats;
  std::vector<std::string> dirs;
  {
    std::error_code ec;
    fs::directory_iterator it(findings_dir, ec);
    if (!ec) {
      for (const auto& entry : it) {
        if (entry.is_directory()) dirs.push_back(entry.path().string());
      }
    }
  }
  std::sort(dirs.begin(), dirs.end());

  for (const std::string& dir : dirs) {
    if (!fs::exists(dir + "/" + kManifestFile)) continue;
    ++stats.bundles;
    const auto broken = [&](const std::string& why) {
      ++stats.broken;
      logf(log, "replay: %s BROKEN: %s\n", dir.c_str(), why.c_str());
    };
    Result<BundleManifest> m = load_manifest(dir);
    if (!m) {
      broken(m.error().message);
      continue;
    }
    const campaign::CellConfig* cell = nullptr;
    for (const campaign::CellConfig& c : cells) {
      if (c.name == m->cell) {
        cell = &c;
        break;
      }
    }
    if (cell == nullptr) {
      broken("cell '" + m->cell +
             "' not in this matrix — pass the campaign's matrix flags");
      continue;
    }
    const std::string have =
        trace::hash_hex(campaign::scenario_key(cell->scenario));
    if (have != m->scenario_hash) {
      broken("scenario drift: matrix builds " + have + ", bundle recorded " +
             m->scenario_hash);
      continue;
    }
    Result<trace::Trace> t =
        trace::try_load_trace(dir + "/" + kMinimizedTraceFile);
    if (!t) {
      broken(t.error().message);
      continue;
    }
    // Replay under the (possibly duration-shrunk) scenario the bundle
    // recorded; everything else comes from the matrix cell.
    campaign::CellConfig rc = *cell;
    rc.scenario.duration = TimeNs::millis(m->duration_ms);
    const fuzz::TraceEvaluator ev = campaign::make_evaluator(rc);
    const fuzz::Evaluation e = ev.evaluate(*t);
    bool pass;
    if (m->expect_quarantined) {
      pass = e.quarantined;
    } else {
      pass = !e.quarantined &&
             std::abs(e.score.total() - m->expected_score) <= m->tolerance;
    }
    if (pass) {
      ++stats.ok;
      logf(log, "replay: %s ok (score %.6g)\n", m->id.c_str(),
           e.score.total());
    } else {
      ++stats.drifted;
      logf(log, "replay: %s DRIFTED: score %.6g, expected %.6g +- %.3g%s\n",
           m->id.c_str(), e.score.total(), m->expected_score, m->tolerance,
           m->expect_quarantined ? " (quarantine not reproduced)" : "");
    }
  }
  return stats;
}

}  // namespace ccfuzz::triage
