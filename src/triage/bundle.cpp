#include "triage/bundle.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

#include "campaign/report.h"
#include "trace/hash.h"
#include "trace/trace_io.h"
#include "util/fs.h"

namespace ccfuzz::triage {

namespace {

/// Round-trippable double formatting (%.17g): replay compares against a
/// tolerance anyway, but the recorded score should not lose bits in transit.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  return "\"" + campaign::json_escape(s) + "\"";
}

/// Reverse of campaign::json_escape for the escapes it emits.
Result<std::string> unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (++i >= s.size()) return Error::parse("dangling escape in string");
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= s.size()) return Error::parse("short \\u escape");
        const std::string hex(s.substr(i + 1, 4));
        out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
        i += 4;
        break;
      }
      default:
        return Error::parse(std::string("unknown escape \\") + s[i]);
    }
  }
  return out;
}

}  // namespace

std::string bundle_id(const std::string& cell, std::uint64_t trace_hash) {
  std::uint64_t h = trace::kFnvOffset;
  for (char c : cell) {
    h ^= static_cast<unsigned char>(c);
    h *= trace::kFnvPrime;
  }
  h = trace::fnv1a_u64(h, trace_hash);
  return trace::hash_hex(h);
}

std::string to_json(const BundleManifest& m) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"ccfuzz_finding\": " << m.version << ",\n";
  os << "  \"id\": " << quoted(m.id) << ",\n";
  os << "  \"source\": " << quoted(m.source) << ",\n";
  os << "  \"cell\": " << quoted(m.cell) << ",\n";
  os << "  \"cca\": " << quoted(m.cca) << ",\n";
  os << "  \"mode\": " << quoted(m.mode) << ",\n";
  os << "  \"score\": " << quoted(m.score) << ",\n";
  os << "  \"scenario_hash\": " << quoted(m.scenario_hash) << ",\n";
  os << "  \"duration_ms\": " << m.duration_ms << ",\n";
  os << "  \"original_events\": " << m.original_events << ",\n";
  os << "  \"minimized_events\": " << m.minimized_events << ",\n";
  os << "  \"original_score\": " << fmt_double(m.original_score) << ",\n";
  os << "  \"expected_score\": " << fmt_double(m.expected_score) << ",\n";
  os << "  \"tolerance\": " << fmt_double(m.tolerance) << ",\n";
  os << "  \"expect_quarantined\": " << (m.expect_quarantined ? "true" : "false")
     << ",\n";
  os << "  \"confirm_runs\": " << m.confirm_runs << ",\n";
  os << "  \"flaky\": " << (m.flaky ? "true" : "false") << ",\n";
  os << "  \"truncated\": " << (m.truncated ? "true" : "false") << ",\n";
  os << "  \"classification\": " << quoted(m.classification) << ",\n";
  os << "  \"invariant_violations\": " << m.invariant_violations << "\n";
  os << "}\n";
  return os.str();
}

Result<BundleManifest> parse_manifest(const std::string& body) {
  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line) || line != "{") {
    return Error::parse("manifest missing '{'");
  }
  // Collect `  "key": value` lines (trailing comma optional on the last).
  std::map<std::string, std::string> kv;
  bool closed = false;
  while (std::getline(is, line)) {
    if (line == "}") {
      closed = true;
      break;
    }
    if (line.rfind("  \"", 0) != 0) {
      return Error::parse("manifest line not a key: " + line);
    }
    const std::size_t key_end = line.find("\": ", 3);
    if (key_end == std::string::npos) {
      return Error::parse("manifest line missing separator: " + line);
    }
    std::string key = line.substr(3, key_end - 3);
    std::string value = line.substr(key_end + 3);
    if (!value.empty() && value.back() == ',') value.pop_back();
    if (value.empty()) {
      return Error::parse("manifest key without value: " + key);
    }
    kv[std::move(key)] = std::move(value);
  }
  if (!closed) return Error::truncated("manifest missing closing '}'");

  const auto raw = [&](const char* key) -> Result<std::string> {
    auto it = kv.find(key);
    if (it == kv.end()) {
      return Error::truncated(std::string("manifest missing key: ") + key);
    }
    return it->second;
  };
  const auto str = [&](const char* key) -> Result<std::string> {
    Result<std::string> v = raw(key);
    if (!v) return v.error();
    if (v->size() < 2 || v->front() != '"' || v->back() != '"') {
      return Error::parse(std::string("manifest key not a string: ") + key);
    }
    return unescape(std::string_view(*v).substr(1, v->size() - 2));
  };
  const auto integer = [&](const char* key) -> Result<std::int64_t> {
    Result<std::string> v = raw(key);
    if (!v) return v.error();
    char* end = nullptr;
    const long long n = std::strtoll(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0') {
      return Error::parse(std::string("manifest key not an integer: ") + key);
    }
    return static_cast<std::int64_t>(n);
  };
  const auto real = [&](const char* key) -> Result<double> {
    Result<std::string> v = raw(key);
    if (!v) return v.error();
    char* end = nullptr;
    const double d = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0') {
      return Error::parse(std::string("manifest key not a number: ") + key);
    }
    return d;
  };
  const auto boolean = [&](const char* key) -> Result<bool> {
    Result<std::string> v = raw(key);
    if (!v) return v.error();
    if (*v == "true") return true;
    if (*v == "false") return false;
    return Error::parse(std::string("manifest key not a bool: ") + key);
  };

  BundleManifest m;
  {
    Result<std::int64_t> v = integer("ccfuzz_finding");
    if (!v) return v.error();
    if (*v != 1) {
      return Error::version("unsupported finding version " +
                            std::to_string(*v));
    }
    m.version = static_cast<int>(*v);
  }
#define CCFUZZ_FIELD(parser, key, member)             \
  {                                                   \
    auto v = parser(key);                             \
    if (!v) return v.error();                         \
    m.member = *v;                                    \
  }
  CCFUZZ_FIELD(str, "id", id)
  CCFUZZ_FIELD(str, "source", source)
  CCFUZZ_FIELD(str, "cell", cell)
  CCFUZZ_FIELD(str, "cca", cca)
  CCFUZZ_FIELD(str, "mode", mode)
  CCFUZZ_FIELD(str, "score", score)
  CCFUZZ_FIELD(str, "scenario_hash", scenario_hash)
  CCFUZZ_FIELD(integer, "duration_ms", duration_ms)
  CCFUZZ_FIELD(integer, "original_events", original_events)
  CCFUZZ_FIELD(integer, "minimized_events", minimized_events)
  CCFUZZ_FIELD(real, "original_score", original_score)
  CCFUZZ_FIELD(real, "expected_score", expected_score)
  CCFUZZ_FIELD(real, "tolerance", tolerance)
  CCFUZZ_FIELD(boolean, "expect_quarantined", expect_quarantined)
  CCFUZZ_FIELD(integer, "confirm_runs", confirm_runs)
  CCFUZZ_FIELD(boolean, "flaky", flaky)
  CCFUZZ_FIELD(boolean, "truncated", truncated)
  CCFUZZ_FIELD(str, "classification", classification)
  CCFUZZ_FIELD(integer, "invariant_violations", invariant_violations)
#undef CCFUZZ_FIELD
  if (m.id.size() != 16) {
    return Error::corrupt("bundle id is not a 16-hex hash: " + m.id);
  }
  if (m.duration_ms <= 0) {
    return Error::corrupt("non-positive duration_ms in manifest");
  }
  return m;
}

Result<BundleManifest> load_manifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestFile;
  std::ifstream is(path, std::ios::binary);
  if (!is) return Error::io("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_manifest(ss.str());
}

Error save_bundle(const std::string& dir, const BundleManifest& m,
                  const trace::Trace& original, const trace::Trace& minimized) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Error::io("cannot create " + dir + ": " + ec.message());
  try {
    trace::save_trace(dir + "/" + kOriginalTraceFile, original);
    trace::save_trace(dir + "/" + kMinimizedTraceFile, minimized);
  } catch (const std::exception& e) {
    return Error::io(std::string("cannot write bundle traces: ") + e.what());
  }
  // The manifest lands last and atomically: a bundle with a manifest is
  // complete by construction.
  return write_file_atomic(dir + "/" + kManifestFile, to_json(m));
}

}  // namespace ccfuzz::triage
