#include "triage/minimize.h"

#include <algorithm>
#include <cstddef>

namespace ccfuzz::triage {

namespace {

/// `cur` without the half-open stamp range [lo, hi).
trace::Trace without_range(const trace::Trace& cur, std::size_t lo,
                           std::size_t hi) {
  trace::Trace out;
  out.kind = cur.kind;
  out.duration = cur.duration;
  out.stamps.reserve(cur.stamps.size() - (hi - lo));
  out.stamps.insert(out.stamps.end(), cur.stamps.begin(),
                    cur.stamps.begin() + static_cast<std::ptrdiff_t>(lo));
  out.stamps.insert(out.stamps.end(),
                    cur.stamps.begin() + static_cast<std::ptrdiff_t>(hi),
                    cur.stamps.end());
  return out;
}

}  // namespace

MinimizeResult minimize_events(const trace::Trace& t,
                               const TracePredicate& keep, int max_evals) {
  MinimizeResult r;
  r.trace = t;
  if (t.stamps.empty() || max_evals <= 0) return r;

  trace::Trace& cur = r.trace;
  // Classic ddmin complement loop: split into n chunks, try dropping each
  // chunk; on success restart near the current granularity, otherwise
  // refine until chunks are single stamps.
  std::size_t n = 2;
  while (!cur.stamps.empty() && r.evals < max_evals) {
    n = std::min(n, cur.stamps.size());
    const std::size_t chunk = (cur.stamps.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t i = 0; i < n && r.evals < max_evals; ++i) {
      const std::size_t lo = i * chunk;
      const std::size_t hi = std::min(lo + chunk, cur.stamps.size());
      if (lo >= hi) break;
      trace::Trace cand = without_range(cur, lo, hi);
      ++r.evals;
      if (keep(cand)) {
        cur = std::move(cand);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= cur.stamps.size()) break;  // single-stamp granularity: 1-minimal
      n = std::min(cur.stamps.size(), n * 2);
    }
  }
  return r;
}

}  // namespace ccfuzz::triage
