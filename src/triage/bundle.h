// Finding bundles: the self-contained reproducer format triage emits.
//
// A bundle is a directory `findings/<id>/` holding
//   manifest.json     — everything replay needs (this struct, one key/line)
//   original.trace    — the raw campaign winner / quarantined genome
//   minimized.trace   — the ddmin-shrunk trace that still exhibits the finding
// The id is a 16-hex content hash of (cell name, original trace hash), so
// re-triaging the same campaign is idempotent and two cells hitting the same
// genome do not collide. The manifest is machine-written line-oriented JSON
// (same discipline as the checkpoint and merge formats): a strict parser
// treats any deviation as corruption, never as style.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.h"
#include "util/error.h"

namespace ccfuzz::triage {

/// Everything `ccfuzz replay` needs to re-check one finding, plus the triage
/// provenance a human wants when reading a bundle.
struct BundleManifest {
  int version = 1;
  std::string id;       ///< 16-hex bundle id (must match the directory name)
  std::string source;   ///< "winner" | "quarantine"
  std::string cell;     ///< campaign cell the finding came from
  std::string cca;      ///< registry name of the CCA under test
  std::string mode;     ///< "link" | "traffic"
  std::string score;    ///< score-function name
  /// Hex of campaign::scenario_key for the cell's configured scenario —
  /// replay refuses to compare scores across a drifted matrix.
  std::string scenario_hash;
  /// Scenario duration the finding was confirmed (and possibly shrunk) to.
  std::int64_t duration_ms = 0;
  std::uint64_t original_events = 0;
  std::uint64_t minimized_events = 0;
  /// Score of the *original* winner at confirmation time (human context).
  double original_score = 0.0;
  /// Score the minimized trace replays to; the regression contract.
  double expected_score = 0.0;
  /// Absolute score tolerance for replay comparisons.
  double tolerance = 0.0;
  /// True for quarantine-sourced findings: replay must reproduce the
  /// non-finite-score quarantine, not a score band.
  bool expect_quarantined = false;
  int confirm_runs = 0;
  bool flaky = false;       ///< kept only for bundles written despite drift
  bool truncated = false;   ///< a deterministic run guard clipped the run
  /// "cca-weakness" (armed invariants clean) or "simulator-bug".
  std::string classification;
  std::int64_t invariant_violations = 0;
};

/// File names inside a bundle directory.
inline constexpr const char* kManifestFile = "manifest.json";
inline constexpr const char* kOriginalTraceFile = "original.trace";
inline constexpr const char* kMinimizedTraceFile = "minimized.trace";

/// Serializes the manifest (stable key order, one key per line).
std::string to_json(const BundleManifest& m);

/// Strict parse of to_json output. Errors: kParse (malformed line/value),
/// kTruncated (missing closing brace or required key), kVersion (unsupported
/// ccfuzz_finding version).
Result<BundleManifest> parse_manifest(const std::string& body);

/// Reads and parses `<dir>/manifest.json`. Adds kIo for unreadable files.
Result<BundleManifest> load_manifest(const std::string& dir);

/// Writes the full bundle (directory created, manifest written atomically).
Error save_bundle(const std::string& dir, const BundleManifest& m,
                  const trace::Trace& original, const trace::Trace& minimized);

/// Derives the stable bundle id from the cell name and the original genome's
/// content hash.
std::string bundle_id(const std::string& cell, std::uint64_t trace_hash);

}  // namespace ccfuzz::triage
