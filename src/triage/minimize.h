// ddmin-style delta debugging over trace events.
//
// A campaign winner is whatever genome the GA happened to converge on —
// usually carrying hundreds of stamps that contribute nothing to the
// finding. minimize_events() removes complement chunks of the stamp vector
// (Zeller & Hildebrandt's ddmin, complements-only variant) while a
// caller-supplied predicate keeps holding, producing a trace with the same
// adversarial effect and as few events as the evaluation budget allows.
// Removing stamps preserves sortedness and the duration bound, so every
// candidate is well-formed by construction.
#pragma once

#include <functional>

#include "trace/trace.h"

namespace ccfuzz::triage {

/// The finding predicate: true when `t` still exhibits the finding (score
/// within tolerance, same behavior-descriptor cell, still quarantined, ...).
/// Must be deterministic — each candidate is evaluated exactly once.
using TracePredicate = std::function<bool(const trace::Trace&)>;

struct MinimizeResult {
  /// The minimized trace; equals the input when nothing could be removed.
  trace::Trace trace;
  /// Predicate evaluations spent (each is one simulation for real callers).
  int evals = 0;
};

/// Shrinks `t.stamps` to a locally 1-minimal subset that still satisfies
/// `keep`, spending at most `max_evals` predicate calls. `keep` is never
/// called on the input itself — the caller already confirmed it holds.
MinimizeResult minimize_events(const trace::Trace& t, const TracePredicate& keep,
                               int max_evals);

}  // namespace ccfuzz::triage
