// Named multi-flow scenario presets — the flow topologies the fairness
// literature (CCLab, the congestion-control benchmarking suite in PAPERS.md)
// evaluates, packaged as one-call transforms over a base ScenarioConfig so a
// campaign can sweep CCAs × modes × flow topologies × scores.
//
//   incast          N synchronized same-CCA flows converging on the gateway
//   late_starter    an established flow vs one that joins mid-run
//   rtt_unfair      two flows with heterogeneous path RTTs
//   inter_protocol  the CCA under test vs a fixed competitor (reno-vs-bbr)
//
// In every preset flow 0 runs the scenario's primary CCA (the algorithm
// under test); the presets only shape the competition around it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "scenario/config.h"

namespace ccfuzz::scenario {

/// Knobs shared by the presets; the defaults reproduce the shapes used in
/// the paper's future-work discussion.
struct PresetOptions {
  /// incast: number of synchronized flows.
  int incast_flows = 4;
  /// late_starter: the second flow joins at this fraction of the duration.
  double late_start_fraction = 1.0 / 3.0;
  /// rtt_unfair: the second flow's access/ACK delays are scaled by this.
  double rtt_multiplier = 4.0;
  /// Registry CCA of the competing flow (late_starter / rtt_unfair /
  /// inter_protocol). Empty = same algorithm as the flow under test, except
  /// inter_protocol which then defaults to "bbr".
  std::string competitor;
};

/// Names accepted by apply_preset, in deterministic order.
const std::vector<std::string>& known_presets();

bool is_known_preset(std::string_view name);

/// Returns `base` with its flow set replaced by the preset's topology.
/// Throws std::invalid_argument for unknown names (listing the known ones)
/// or out-of-range options.
ScenarioConfig apply_preset(std::string_view name, const ScenarioConfig& base,
                            const PresetOptions& opt = {});

}  // namespace ccfuzz::scenario
