#include "scenario/dumbbell.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "cca/registry.h"

namespace ccfuzz::scenario {

Dumbbell::Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
                   const tcp::CcaFactory& primary,
                   std::vector<TimeNs> trace_times,
                   net::PacketPool* pool, net::BottleneckRecorder* recorder)
    : sim_(sim), cfg_(cfg),
      pool_(pool != nullptr ? pool : &own_pool_),
      recorder_(recorder != nullptr ? recorder : &own_recorder_) {
  const std::vector<FlowSpec> specs = cfg_.effective_flows();

  // Expected bottleneck traversals: one per trace stamp plus ~one CCA packet
  // per serialization slot over the run (the flows share the bottleneck, so
  // their combined egress is bounded by its service rate). Sizes the
  // recorder (and, for a cold pool, the in-flight slab) so the first run
  // grows nothing mid-simulation.
  const std::size_t expected_packets =
      trace_times.size() +
      static_cast<std::size_t>(
          std::max<std::int64_t>(cfg_.duration.ns() / 1'000'000, 0));
  recorder_->reserve(expected_packets);
  recorder_->set_flow_count(specs.size() + 1);  // CCA flows + cross traffic
  pool_->reserve(cfg_.net.queue_capacity + 64 * specs.size());

  queue_ = std::make_unique<net::DropTailQueue>(cfg_.net.queue_capacity);
  queue_->set_drop_notifier([this](const net::Packet& p, TimeNs now) {
    recorder_->record_drop(p, now);
  });

  // Bottleneck link: fuzzed service curve (link mode) or fixed rate.
  if (cfg_.mode == FuzzMode::kLink) {
    link_ = std::make_unique<net::TraceDrivenLink>(
        sim_, *queue_, cfg_.net.bottleneck_delay, std::move(trace_times),
        pool_);
  } else {
    link_ = std::make_unique<net::FixedRateLink>(
        sim_, *queue_, cfg_.net.bottleneck_delay, cfg_.net.bottleneck_rate,
        pool_);
    cross_ = std::make_unique<net::CrossTrafficInjector>(
        sim_, *queue_, std::move(trace_times), cfg_.net.packet_bytes,
        static_cast<net::FlowIndex>(specs.size()));
  }
  link_->set_egress_observer([this](const net::Packet& p, TimeNs now) {
    recorder_->record_egress(p, now);
  });

  // Sink side of the bottleneck: each CCA flow's data reaches its own
  // receiver; cross traffic terminates (its job was done in the queue).
  link_->set_delivery([this](net::Packet&& p) {
    if (p.flow == net::FlowId::kCcaData && p.flow_index < flows_.size()) {
      flows_[p.flow_index].receiver->on_data_packet(p);
    }
  });

  // One private path per flow: access link in, ACK path back.
  flows_.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Flow f;
    f.spec = specs[i];
    if (f.spec.access_delay < DurationNs::zero()) {
      f.spec.access_delay = cfg_.net.access_delay;
    }
    if (f.spec.ack_path_delay < DurationNs::zero()) {
      f.spec.ack_path_delay = cfg_.net.ack_path_delay;
    }
    if (f.spec.stop > cfg_.duration) f.spec.stop = cfg_.duration;
    // A degenerate interval (stop <= start) means the flow never runs; clamp
    // so active() is empty and start() skips it, rather than letting a stop
    // event fire before start and the flow transmit as "idle".
    if (f.spec.stop < f.spec.start) f.spec.stop = f.spec.start;

    // ACK return path: receiver → sender, uncongested.
    f.ack = std::make_unique<net::DelayPipe>(
        sim_, f.spec.ack_path_delay,
        [this, i](net::Packet&& p) { flows_[i].sender->on_ack_packet(p); },
        pool_);

    tcp::TcpReceiver::Config rcfg;
    rcfg.delayed_ack = cfg_.delayed_ack;
    rcfg.ack_every = cfg_.ack_every;
    rcfg.delack_timeout = cfg_.delack_timeout;
    rcfg.rwnd_segments = cfg_.receive_window_segments;
    rcfg.flow_index = static_cast<net::FlowIndex>(i);
    f.receiver = std::make_unique<tcp::TcpReceiver>(
        sim_, rcfg,
        [this, i](net::Packet&& p) { flows_[i].ack->send(std::move(p)); });

    // Access link: sender → gateway queue, with ingress recording.
    f.access = std::make_unique<net::DelayPipe>(
        sim_, f.spec.access_delay,
        [this](net::Packet&& p) {
          recorder_->record_ingress(p, sim_.now());
          queue_->try_enqueue(std::move(p), sim_.now());
        },
        pool_);

    tcp::TcpSender::Config scfg;
    scfg.total_segments = f.spec.total_segments;
    scfg.mss_bytes = cfg_.net.packet_bytes;
    scfg.initial_cwnd = cfg_.initial_cwnd;
    scfg.initial_rwnd_segments = cfg_.receive_window_segments;
    scfg.rtt.min_rto = cfg_.min_rto;
    scfg.log_events = cfg_.log_tcp_events;
    scfg.flow_index = static_cast<net::FlowIndex>(i);
    scfg.stop = f.spec.stop < cfg_.duration ? f.spec.stop : TimeNs::infinite();
    const tcp::CcaFactory& factory =
        f.spec.factory ? f.spec.factory
                       : (f.spec.cca.empty()
                              ? primary
                              : cca::make_factory(f.spec.cca));
    f.sender = std::make_unique<tcp::TcpSender>(
        sim_, scfg, factory(),
        [this, i](net::Packet&& p) { flows_[i].access->send(std::move(p)); });

    flows_.push_back(std::move(f));
  }

  // Cross traffic bypasses the access pipes (it models aggregate arrivals at
  // the gateway) but is still recorded as bottleneck ingress.
  if (cross_) {
    cross_->set_inject_observer([this](const net::Packet& p, TimeNs now) {
      recorder_->record_ingress(p, now);
    });
  }
}

Dumbbell::Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
                   std::unique_ptr<tcp::CongestionControl> cca,
                   std::vector<TimeNs> trace_times,
                   net::PacketPool* pool, net::BottleneckRecorder* recorder)
    : Dumbbell(sim, cfg,
               // std::function requires a copyable callable, so the single
               // instance rides in a shared box and is surrendered on the
               // first (and only) invocation. A second invocation means the
               // scenario declares more than one primary-CCA flow, which
               // this convenience constructor cannot satisfy.
               [box = std::make_shared<std::unique_ptr<tcp::CongestionControl>>(
                    std::move(cca))]() {
                 if (!*box) {
                   throw std::invalid_argument(
                       "the single-instance Dumbbell constructor supports "
                       "exactly one flow; use the CcaFactory constructor for "
                       "multi-flow scenarios");
                 }
                 return std::move(*box);
               },
               std::move(trace_times), pool, recorder) {}

void Dumbbell::start() {
  link_->start();
  if (cross_) cross_->start();
  for (Flow& f : flows_) {
    if (f.spec.stop <= f.spec.start) continue;  // degenerate: never runs
    f.sender->start(f.spec.start);
  }
}

}  // namespace ccfuzz::scenario
