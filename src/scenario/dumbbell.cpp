#include "scenario/dumbbell.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "cca/registry.h"

namespace ccfuzz::scenario {

Dumbbell::Dumbbell(sim::Simulator& sim, net::PacketPool* pool,
                   net::BottleneckRecorder* recorder,
                   analysis::StreamingMetrics* metrics)
    : sim_(sim),
      pool_(pool != nullptr ? pool : &own_pool_),
      recorder_(recorder != nullptr ? recorder : &own_recorder_),
      metrics_(metrics != nullptr ? metrics : &own_metrics_) {}

Dumbbell::Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
                   const tcp::CcaFactory& primary,
                   std::vector<TimeNs> trace_times, net::PacketPool* pool,
                   net::BottleneckRecorder* recorder,
                   analysis::StreamingMetrics* metrics)
    : Dumbbell(sim, pool, recorder, metrics) {
  setup(cfg, primary, trace_times);
}

Dumbbell::Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
                   std::unique_ptr<tcp::CongestionControl> cca,
                   std::vector<TimeNs> trace_times, net::PacketPool* pool,
                   net::BottleneckRecorder* recorder,
                   analysis::StreamingMetrics* metrics)
    : Dumbbell(sim, cfg,
               // std::function requires a copyable callable, so the single
               // instance rides in a shared box and is surrendered on the
               // first (and only) invocation. A second invocation means the
               // scenario declares more than one primary-CCA flow, which
               // this convenience constructor cannot satisfy.
               [box = std::make_shared<std::unique_ptr<tcp::CongestionControl>>(
                    std::move(cca))]() {
                 if (!*box) {
                   throw std::invalid_argument(
                       "the single-instance Dumbbell constructor supports "
                       "exactly one flow; use the CcaFactory constructor for "
                       "multi-flow scenarios");
                 }
                 return std::move(*box);
               },
               std::move(trace_times), pool, recorder, metrics) {}

void Dumbbell::resolve_spec(std::size_t i, FlowSpec& out) const {
  if (cfg_.flows.empty()) {
    // Legacy single-flow shorthand.
    out = FlowSpec{};
    out.start = cfg_.flow_start;
    out.total_segments = cfg_.total_segments;
  } else {
    out = cfg_.flows[i];
  }
  if (out.access_delay < DurationNs::zero()) {
    out.access_delay = cfg_.net.access_delay;
  }
  if (out.ack_path_delay < DurationNs::zero()) {
    out.ack_path_delay = cfg_.net.ack_path_delay;
  }
  if (out.stop > cfg_.duration) out.stop = cfg_.duration;
  // A degenerate interval (stop <= start) means the flow never runs; clamp
  // so active() is empty and start() skips it, rather than letting a stop
  // event fire before start and the flow transmit as "idle".
  if (out.stop < out.start) out.stop = out.start;
}

void Dumbbell::setup(const ScenarioConfig& cfg, const tcp::CcaFactory& primary,
                     std::span<const TimeNs> trace_times) {
  cfg_ = cfg;
  flow_count_ = cfg_.flows.empty() ? 1 : cfg_.flows.size();

  const bool events = cfg_.record_mode == RecordMode::kFullEvents;
  recorder_->set_record_events(events);
  if (events) {
    // Expected bottleneck traversals: one per trace stamp plus ~one CCA
    // packet per serialization slot over the run (the flows share the
    // bottleneck, so their combined egress is bounded by its service rate).
    // Sizes the event vectors so the first recording run grows nothing
    // mid-simulation; metrics-only runs keep the vectors empty.
    const std::size_t expected_packets =
        trace_times.size() +
        static_cast<std::size_t>(
            std::max<std::int64_t>(cfg_.duration.ns() / 1'000'000, 0));
    recorder_->reserve(expected_packets);
  }
  recorder_->set_flow_count(flow_count_ + 1);  // CCA flows + cross traffic
  pool_->reserve(cfg_.net.queue_capacity + 64 * flow_count_);
  metrics_->begin_run(flow_count_, cfg_.metrics_window, cfg_.duration);

  // Gateway queue. The drop notifier is installed once and survives resets.
  if (!queue_) {
    queue_ = std::make_unique<net::DropTailQueue>(cfg_.net.queue_capacity);
    queue_->set_drop_notifier([this](const net::Packet& p, TimeNs now) {
      recorder_->record_drop(p, now);
    });
  } else {
    queue_->reset(cfg_.net.queue_capacity);
  }

  const auto install_link_callbacks = [this](net::BottleneckLink& lnk) {
    lnk.set_egress_observer([this](const net::Packet& p, TimeNs now) {
      recorder_->record_egress(p, now);
      metrics_->on_egress(p, now, now - p.enqueued_at);
    });
    // Sink side of the bottleneck: each CCA flow's data reaches its own
    // receiver; cross traffic terminates (its job was done in the queue).
    lnk.set_delivery([this](net::Packet&& p) {
      if (p.flow == net::FlowId::kCcaData && p.flow_index < flow_count_) {
        flows_[p.flow_index].receiver->on_data_packet(p);
      }
    });
  };

  // Bottleneck link: fuzzed service curve (link mode) or fixed rate. Both
  // variants stay warm once built; only this run's is wired to the queue.
  active_cross_ = nullptr;
  if (cfg_.mode == FuzzMode::kLink) {
    // A fixed-rate link from a previous traffic-mode run may still own the
    // queue's non-empty notifier; a trace-driven link polls instead.
    queue_->set_nonempty_notifier(nullptr);
    if (!trace_link_) {
      trace_link_ = std::make_unique<net::TraceDrivenLink>(
          sim_, *queue_, cfg_.net.bottleneck_delay,
          std::vector<TimeNs>(trace_times.begin(), trace_times.end()), pool_);
      install_link_callbacks(*trace_link_);
    } else {
      trace_link_->reset(cfg_.net.bottleneck_delay, trace_times);
    }
    link_ = trace_link_.get();
  } else {
    if (!fixed_link_) {
      fixed_link_ = std::make_unique<net::FixedRateLink>(
          sim_, *queue_, cfg_.net.bottleneck_delay, cfg_.net.bottleneck_rate,
          pool_);
      install_link_callbacks(*fixed_link_);
    } else {
      // reset() also re-registers the queue non-empty notifier.
      fixed_link_->reset(cfg_.net.bottleneck_delay, cfg_.net.bottleneck_rate);
    }
    link_ = fixed_link_.get();

    if (!cross_) {
      cross_ = std::make_unique<net::CrossTrafficInjector>(
          sim_, *queue_,
          std::vector<TimeNs>(trace_times.begin(), trace_times.end()),
          cfg_.net.packet_bytes, static_cast<net::FlowIndex>(flow_count_));
      // Cross traffic bypasses the access pipes (it models aggregate
      // arrivals at the gateway) but is still recorded as bottleneck
      // ingress.
      cross_->set_inject_observer([this](const net::Packet& p, TimeNs now) {
        recorder_->record_ingress(p, now);
      });
    } else {
      cross_->reset(trace_times, cfg_.net.packet_bytes,
                    static_cast<net::FlowIndex>(flow_count_));
    }
    active_cross_ = cross_.get();
  }

  // One private path per flow: access link in, ACK path back. Slots persist
  // across setups (warm segment rings, reorder buffers, event slabs); a
  // fresh shape only appends.
  if (flows_.capacity() < flow_count_) flows_.reserve(flow_count_);
  for (std::size_t i = 0; i < flow_count_; ++i) {
    if (i >= flows_.size()) flows_.emplace_back();
    Flow& f = flows_[i];
    resolve_spec(i, f.spec);

    tcp::TcpReceiver::Config rcfg;
    rcfg.delayed_ack = cfg_.delayed_ack;
    rcfg.ack_every = cfg_.ack_every;
    rcfg.delack_timeout = cfg_.delack_timeout;
    rcfg.rwnd_segments = cfg_.receive_window_segments;
    rcfg.flow_index = static_cast<net::FlowIndex>(i);

    tcp::TcpSender::Config scfg;
    scfg.total_segments = f.spec.total_segments;
    scfg.mss_bytes = cfg_.net.packet_bytes;
    scfg.initial_cwnd = cfg_.initial_cwnd;
    scfg.initial_rwnd_segments = cfg_.receive_window_segments;
    scfg.rtt.min_rto = cfg_.min_rto;
    scfg.log_events = cfg_.log_tcp_events;
    scfg.flow_index = static_cast<net::FlowIndex>(i);
    scfg.stop = f.spec.stop < cfg_.duration ? f.spec.stop : TimeNs::infinite();

    auto cca_instance = f.spec.factory
                            ? f.spec.factory()
                            : (f.spec.cca.empty()
                                   ? primary()
                                   : cca::make_factory(f.spec.cca)());

    if (!f.sender) {
      // ACK return path: receiver → sender, uncongested.
      f.ack = std::make_unique<net::DelayPipe>(
          sim_, f.spec.ack_path_delay,
          [this, i](net::Packet&& p) { flows_[i].sender->on_ack_packet(p); },
          pool_);
      f.receiver = std::make_unique<tcp::TcpReceiver>(
          sim_, rcfg,
          [this, i](net::Packet&& p) { flows_[i].ack->send(std::move(p)); });
      // Access link: sender → gateway queue, with ingress recording.
      f.access = std::make_unique<net::DelayPipe>(
          sim_, f.spec.access_delay,
          [this](net::Packet&& p) {
            recorder_->record_ingress(p, sim_.now());
            queue_->try_enqueue(std::move(p), sim_.now());
          },
          pool_);
      f.sender = std::make_unique<tcp::TcpSender>(
          sim_, scfg, std::move(cca_instance),
          [this, i](net::Packet&& p) { flows_[i].access->send(std::move(p)); });
    } else {
      f.ack->reset(f.spec.ack_path_delay);
      f.receiver->reset(rcfg);
      f.access->reset(f.spec.access_delay);
      f.sender->reset(scfg, std::move(cca_instance));
    }

    // Coverage instruments the primary flow — the algorithm under test.
    // reset() detached any previous sink, so probe-less runs stay clean.
    if (i == 0 && cfg_.coverage && probe_ != nullptr) {
      f.sender->set_behavior_sink(probe_);
    }

    metrics_->set_flow_interval(i, f.spec.start);
  }
}

void Dumbbell::start() {
  link_->start();
  if (active_cross_ != nullptr) active_cross_->start();
  for (std::size_t i = 0; i < flow_count_; ++i) {
    Flow& f = flows_[i];
    if (f.spec.stop <= f.spec.start) continue;  // degenerate: never runs
    f.sender->start(f.spec.start);
  }
}

}  // namespace ccfuzz::scenario
