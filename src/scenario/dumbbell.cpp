#include "scenario/dumbbell.h"

#include <algorithm>
#include <utility>

namespace ccfuzz::scenario {

Dumbbell::Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
                   std::unique_ptr<tcp::CongestionControl> cca,
                   std::vector<TimeNs> trace_times,
                   net::PacketPool* pool, net::BottleneckRecorder* recorder)
    : sim_(sim), cfg_(cfg),
      pool_(pool != nullptr ? pool : &own_pool_),
      recorder_(recorder != nullptr ? recorder : &own_recorder_) {
  // Expected bottleneck traversals: one per trace stamp plus ~one CCA packet
  // per serialization slot over the run. Sizes the recorder (and, for a cold
  // pool, the in-flight slab) so the first run grows nothing mid-simulation.
  const std::size_t expected_packets =
      trace_times.size() +
      static_cast<std::size_t>(
          std::max<std::int64_t>(cfg_.duration.ns() / 1'000'000, 0));
  recorder_->reserve(expected_packets);
  pool_->reserve(cfg_.net.queue_capacity + 64);

  queue_ = std::make_unique<net::DropTailQueue>(cfg_.net.queue_capacity);
  queue_->set_drop_notifier([this](const net::Packet& p, TimeNs now) {
    recorder_->record_drop(p, now);
  });

  // Bottleneck link: fuzzed service curve (link mode) or fixed rate.
  if (cfg_.mode == FuzzMode::kLink) {
    link_ = std::make_unique<net::TraceDrivenLink>(
        sim_, *queue_, cfg_.net.bottleneck_delay, std::move(trace_times),
        pool_);
  } else {
    link_ = std::make_unique<net::FixedRateLink>(
        sim_, *queue_, cfg_.net.bottleneck_delay, cfg_.net.bottleneck_rate,
        pool_);
    cross_ = std::make_unique<net::CrossTrafficInjector>(
        sim_, *queue_, std::move(trace_times), cfg_.net.packet_bytes);
  }
  link_->set_egress_observer([this](const net::Packet& p, TimeNs now) {
    recorder_->record_egress(p, now);
  });

  // ACK return path: receiver → sender, uncongested.
  ack_pipe_ = std::make_unique<net::DelayPipe>(
      sim_, cfg_.net.ack_path_delay,
      [this](net::Packet&& p) { sender_->on_ack_packet(p); }, pool_);

  tcp::TcpReceiver::Config rcfg;
  rcfg.delayed_ack = cfg_.delayed_ack;
  rcfg.ack_every = cfg_.ack_every;
  rcfg.delack_timeout = cfg_.delack_timeout;
  rcfg.rwnd_segments = cfg_.receive_window_segments;
  receiver_ = std::make_unique<tcp::TcpReceiver>(
      sim_, rcfg, [this](net::Packet&& p) { ack_pipe_->send(std::move(p)); });

  // Sink side of the bottleneck: CCA data reaches the receiver; cross
  // traffic terminates (its job was done in the queue).
  link_->set_delivery([this](net::Packet&& p) {
    if (p.flow == net::FlowId::kCcaData) receiver_->on_data_packet(p);
  });

  // Access link: sender → gateway queue, with ingress recording.
  access_pipe_ = std::make_unique<net::DelayPipe>(
      sim_, cfg_.net.access_delay,
      [this](net::Packet&& p) {
        recorder_->record_ingress(p, sim_.now());
        queue_->try_enqueue(std::move(p), sim_.now());
      },
      pool_);

  tcp::TcpSender::Config scfg;
  scfg.total_segments = cfg_.total_segments;
  scfg.mss_bytes = cfg_.net.packet_bytes;
  scfg.initial_cwnd = cfg_.initial_cwnd;
  scfg.initial_rwnd_segments = cfg_.receive_window_segments;
  scfg.rtt.min_rto = cfg_.min_rto;
  scfg.log_events = cfg_.log_tcp_events;
  sender_ = std::make_unique<tcp::TcpSender>(
      sim_, scfg, std::move(cca),
      [this](net::Packet&& p) { access_pipe_->send(std::move(p)); });

  // Cross traffic bypasses the access pipe (it models aggregate arrivals at
  // the gateway) but is still recorded as bottleneck ingress.
  if (cross_) {
    cross_->set_inject_observer([this](const net::Packet& p, TimeNs now) {
      recorder_->record_ingress(p, now);
    });
  }
}

void Dumbbell::start() {
  link_->start();
  if (cross_) cross_->start();
  sender_->start(cfg_.flow_start);
}

}  // namespace ccfuzz::scenario
