// Deterministic construction of the paper's adversarial traces.
//
// The GA discovers these patterns (§4); for regression tests and figure
// benches we also build them constructively. Because the simulator is
// deterministic, a trace can be crafted iteratively: run the scenario,
// read the event log to find when the pinned head segment is
// retransmitted, add a cross-traffic burst that kills that retransmission,
// and repeat. The result is the §4.1 BBR stall train (a first burst that
// opens a hole plus one burst per retransmission of the head, ~min-RTO
// apart — the shape visible in Fig 4a) or the §4.3 low-rate "shrew" train
// against Reno.
#pragma once

#include <vector>

#include "scenario/config.h"
#include "scenario/runner.h"
#include "tcp/congestion_control.h"
#include "util/time.h"

namespace ccfuzz::scenario::crafted {

/// Parameters for the iterative retransmission-killer construction.
struct KillerConfig {
  /// When the first burst lands (the CCA should be out of slow start).
  TimeNs first_burst = TimeNs::seconds(2);
  /// Packets per burst; one queue's worth guarantees the arriving
  /// (re)transmission finds the gateway full.
  int burst_packets = 60;
  /// Kill bursts land this far before the targeted retransmission is sent,
  /// so the gateway is saturated when it arrives. Must stay below the
  /// feedback delay (one bottleneck+ACK round trip) so the injection does
  /// not perturb the sender before the targeted instant.
  DurationNs burst_lead = DurationNs::millis(2);
  /// Maximum crafting iterations (bursts added).
  int max_bursts = 8;
  /// Stop adding bursts once the flow is dead for this long at the tail.
  DurationNs dead_tail = DurationNs::seconds(1);
};

/// Result of the iterative construction.
struct CraftResult {
  std::vector<TimeNs> trace;   ///< cross-traffic injection times
  scenario::RunResult final_run;
  /// Sequence number of the head segment the bursts keep killing.
  std::int64_t pinned_seq = -1;
  int bursts = 0;
};

/// Builds a retransmission-killer cross-traffic trace against `cca` on the
/// given (traffic-mode) scenario: burst #1 opens a hole; every subsequent
/// burst is timed, via deterministic re-simulation, to land exactly when
/// the head segment's next (re)transmission reaches the gateway. Against
/// BBR this reproduces the §4.1 permanent stall; against Reno/CUBIC it
/// reproduces the §4.3 low-rate attack lockout.
CraftResult craft_retransmission_killer(const ScenarioConfig& cfg,
                                        const tcp::CcaFactory& cca,
                                        const KillerConfig& kcfg = {});

/// The classic shrew pattern (§4.3): periodic bursts at a fixed period
/// (≈ the victim's min-RTO) starting at `first_burst`. No simulation
/// feedback — the open-loop version of the attack from [13].
std::vector<TimeNs> shrew_trace(TimeNs first_burst, DurationNs period,
                                int burst_packets, TimeNs until);

/// Fig 4e's pattern: fill the queue just before the flow starts (so the
/// CCA never sees the true minimum RTT), then re-fill periodically to
/// keep a standing queue.
std::vector<TimeNs> standing_queue_trace(TimeNs flow_start,
                                         std::size_t queue_capacity,
                                         DurationNs refill_period,
                                         int refill_packets, TimeNs until);

}  // namespace ccfuzz::scenario::crafted
