#include "scenario/presets.h"

#include <stdexcept>

namespace ccfuzz::scenario {

const std::vector<std::string>& known_presets() {
  static const std::vector<std::string> kNames = {
      "incast", "late_starter", "rtt_unfair", "inter_protocol"};
  return kNames;
}

bool is_known_preset(std::string_view name) {
  for (const std::string& p : known_presets()) {
    if (p == name) return true;
  }
  return false;
}

ScenarioConfig apply_preset(std::string_view name, const ScenarioConfig& base,
                            const PresetOptions& opt) {
  ScenarioConfig cfg = base;
  cfg.flows.clear();

  if (name == "incast") {
    if (opt.incast_flows < 2) {
      throw std::invalid_argument("preset 'incast': incast_flows must be >= 2");
    }
    // N synchronized flows of the CCA under test, all starting together —
    // the many-senders convergence shape.
    cfg.flows.assign(static_cast<std::size_t>(opt.incast_flows), FlowSpec{});
    return cfg;
  }

  if (name == "late_starter") {
    if (opt.late_start_fraction <= 0.0 || opt.late_start_fraction >= 1.0) {
      throw std::invalid_argument(
          "preset 'late_starter': late_start_fraction must be in (0, 1)");
    }
    // An established flow vs a newcomer: does the incumbent yield?
    FlowSpec incumbent;
    FlowSpec late;
    late.cca = opt.competitor;
    late.start =
        TimeNs(0) + DurationNs(cfg.duration.ns()).scaled(opt.late_start_fraction);
    cfg.flows = {incumbent, late};
    return cfg;
  }

  if (name == "rtt_unfair") {
    if (opt.rtt_multiplier <= 0.0) {
      throw std::invalid_argument(
          "preset 'rtt_unfair': rtt_multiplier must be positive");
    }
    // Same start, heterogeneous path delays: the long-RTT flow is the
    // classic victim of RTT-unfair algorithms.
    FlowSpec short_rtt;
    FlowSpec long_rtt;
    long_rtt.cca = opt.competitor;
    long_rtt.access_delay = cfg.net.access_delay.scaled(opt.rtt_multiplier);
    long_rtt.ack_path_delay =
        cfg.net.ack_path_delay.scaled(opt.rtt_multiplier);
    cfg.flows = {short_rtt, long_rtt};
    return cfg;
  }

  if (name == "inter_protocol") {
    // The CCA under test vs a fixed competitor (reno-vs-bbr by default from
    // the reno cell's point of view).
    FlowSpec under_test;
    FlowSpec competitor;
    competitor.cca = opt.competitor.empty() ? "bbr" : opt.competitor;
    cfg.flows = {under_test, competitor};
    return cfg;
  }

  std::string msg = "unknown scenario preset '";
  msg += name;
  msg += "'; known presets:";
  for (const std::string& p : known_presets()) {
    msg += ' ';
    msg += p;
  }
  throw std::invalid_argument(msg);
}

}  // namespace ccfuzz::scenario
