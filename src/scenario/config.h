// Scenario configuration: the paper's dumbbell (§3.1) and experiment knobs.
//
// Defaults follow §4's setup: 12 Mbps bottleneck (average bandwidth in link
// mode), 20 ms propagation delay, TCP SACK + delayed ACKs enabled, and
// min-RTO = 1 s (RFC 6298 §2.4; the paper notes Linux uses 200 ms).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/budget.h"
#include "tcp/congestion_control.h"
#include "util/time.h"

namespace ccfuzz::scenario {

/// Which half of the search space the trace controls (paper §3.1).
enum class FuzzMode {
  /// Trace = bottleneck service curve; no cross traffic.
  kLink,
  /// Trace = cross-traffic injection times; bottleneck rate fixed.
  kTraffic,
};

/// Display/report name of a mode ("link" / "traffic").
constexpr const char* to_string(FuzzMode mode) {
  return mode == FuzzMode::kLink ? "link" : "traffic";
}

/// What the run records at the bottleneck (see analysis::StreamingMetrics).
enum class RecordMode {
  /// Streaming per-flow summaries only — windowed egress bins, delay
  /// digests, last-progress stamps. Everything scoring needs, O(windows)
  /// per run. The fuzzing default.
  kMetricsOnly,
  /// Additionally keep the raw per-packet event vectors in
  /// net::BottleneckRecorder (figures, timelines, replay diagnostics).
  /// Scores are bit-identical in both modes: they read the streaming
  /// summaries, which are always maintained.
  kFullEvents,
};

/// Display/report name of a record mode ("metrics" / "events").
constexpr const char* to_string(RecordMode mode) {
  return mode == RecordMode::kMetricsOnly ? "metrics" : "events";
}

/// Physical path parameters of the dumbbell.
struct NetworkConfig {
  /// Bottleneck rate: the fixed rate in traffic mode, and the average rate
  /// the link trace should honour in link mode. 12 Mbps with 1500 B frames
  /// serializes one packet per millisecond.
  DataRate bottleneck_rate = DataRate::mbps(12);
  /// One-way propagation delay of the bottleneck link.
  DurationNs bottleneck_delay = DurationNs::millis(20);
  /// Reverse (ACK) path delay; uncongested in the paper's topology.
  DurationNs ack_path_delay = DurationNs::millis(20);
  /// Source → gateway access link delay ("high speed links").
  DurationNs access_delay = DurationNs::micros(100);
  /// Gateway drop-tail FIFO capacity in packets (~1.25 BDP by default).
  std::size_t queue_capacity = 50;
  std::int32_t packet_bytes = 1500;

  /// Base round-trip time excluding queueing and serialization.
  DurationNs base_rtt() const {
    return access_delay + bottleneck_delay + ack_path_delay;
  }
  /// Bandwidth-delay product in packets (rounded down).
  std::int64_t bdp_packets() const {
    return (bottleneck_rate.bits_per_second() * base_rtt().ns()) /
           (static_cast<std::int64_t>(packet_bytes) * 8 * 1'000'000'000);
  }
};

/// One competing CCA flow over the shared bottleneck. A scenario declares a
/// set of these (ScenarioConfig::flows); per-flow path delays give RTT
/// heterogeneity and staggered start/stop times give late-starter and
/// convergence scenarios (paper §6, "future work": fairness fuzzing).
struct FlowSpec {
  /// Registry name of this flow's CCA (cca::make_factory). Empty means "the
  /// scenario's primary CCA" — the factory handed to run_scenario, i.e. the
  /// algorithm under test.
  std::string cca;
  /// Explicit factory overriding `cca` (flows outside the registry).
  tcp::CcaFactory factory;
  /// When the flow starts transmitting.
  TimeNs start = TimeNs::zero();
  /// When the flow halts; infinite = runs to the end of the scenario.
  TimeNs stop = TimeNs::infinite();
  /// Source → gateway access delay; negative = inherit NetworkConfig.
  DurationNs access_delay = DurationNs(-1);
  /// Reverse (ACK) path delay; negative = inherit NetworkConfig.
  DurationNs ack_path_delay = DurationNs(-1);
  /// Application data volume in segments (default: unbounded source).
  std::int64_t total_segments = std::numeric_limits<std::int64_t>::max();
};

/// One experiment: one or more CCA flows over the dumbbell with a link or
/// traffic trace.
struct ScenarioConfig {
  FuzzMode mode = FuzzMode::kTraffic;
  NetworkConfig net{};

  /// Simulated run length; traces live in [0, duration).
  TimeNs duration = TimeNs::seconds(5);
  /// When the CCA flow starts (cross traffic may precede it, Fig 4e).
  /// Single-flow shorthand: consulted only when `flows` is empty.
  TimeNs flow_start = TimeNs::zero();
  /// Application data volume in segments (default: unbounded source).
  /// Single-flow shorthand: consulted only when `flows` is empty.
  std::int64_t total_segments = std::numeric_limits<std::int64_t>::max();

  /// The competing flows sharing the bottleneck, in flow-index order. Empty
  /// declares the classic single-flow dumbbell built from the shorthand
  /// fields above (flow_start / total_segments, primary CCA).
  std::vector<FlowSpec> flows;

  // --- Transport knobs (paper §4 defaults) ---
  DurationNs min_rto = DurationNs::seconds(1);
  bool delayed_ack = true;
  int ack_every = 2;
  DurationNs delack_timeout = DurationNs::millis(200);
  std::int64_t initial_cwnd = 10;
  /// Receive buffer in segments (ns-3's 128 KiB default ≈ 87 × 1500 B).
  std::int64_t receive_window_segments = 87;

  /// Record the detailed per-event TCP log (timeline figures). Counters are
  /// always kept; the detailed log costs allocations, so fuzzing leaves it
  /// off.
  bool log_tcp_events = false;

  /// What the bottleneck observation path records (see RecordMode). Fuzzing
  /// keeps the default; figure/timeline/replay consumers that read raw
  /// events (analysis::rate_series etc.) must opt into kFullEvents.
  RecordMode record_mode = RecordMode::kMetricsOnly;

  /// Bin width of the streaming windowed-throughput series. Scores that
  /// consume windowed throughput (LowUtilizationScore) read these bins when
  /// their window matches; keep the two in sync for metrics-only runs.
  DurationNs metrics_window = DurationNs::millis(500);

  /// Arm the behavioral coverage probe (coverage::BehaviorProbe) on the
  /// primary flow. Purely passive — results are bit-identical with the probe
  /// on or off — but coverage-guided search (fuzz::SearchMode::kMapElites)
  /// requires it, and the campaign evaluation cache keys on it so coverage
  /// cells never reuse probe-less evaluations.
  bool coverage = false;

  /// Arm the runtime invariant oracle (sim::Invariants): periodic audits of
  /// sender scoreboards / cwnd / queue occupancy plus post-run packet
  /// conservation checks, recorded into RunResult::invariants. Diagnostic
  /// opt-in for finding triage; disarmed runs (the default) schedule and
  /// allocate nothing, staying bit-identical to pre-oracle builds. Armed
  /// audit events count toward the event budget, so armed runs must not
  /// share evaluation-cache entries with disarmed ones.
  bool invariants = false;

  /// Run guards (sim::Budget): hard ceilings on events / simulated time /
  /// wall time that truncate a runaway run into RunResult::truncated instead
  /// of hanging a worker. Default: unlimited (bit-identical to no guard).
  sim::Budget budget{};

  /// Number of CCA flows this scenario simulates (>= 1; the empty `flows`
  /// shorthand is one flow). The shorthand itself is resolved
  /// allocation-free by Dumbbell::resolve_spec.
  std::size_t flow_count() const { return flows.empty() ? 1 : flows.size(); }
};

}  // namespace ccfuzz::scenario
