#include "scenario/runner.h"

#include <algorithm>
#include <utility>

#include "scenario/dumbbell.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace ccfuzz::scenario {

double FlowResult::goodput_mbps() const {
  const DurationNs span = active();
  if (span <= DurationNs::zero()) return 0.0;
  const double bits = static_cast<double>(segments_delivered) *
                      static_cast<double>(packet_bytes) * 8.0;
  return bits / span.to_seconds() * 1e-6;
}

const FlowResult& RunResult::flow(std::size_t i) const {
  static const FlowResult kEmpty;
  return i < flows.size() ? flows[i] : kEmpty;
}

FlowResult& RunResult::ensure_primary() {
  if (flows.empty()) {
    FlowResult f;
    f.start = config.flow_start;
    f.stop = config.duration;
    f.packet_bytes = config.net.packet_bytes;
    flows.push_back(std::move(f));
  }
  return flows.front();
}

std::vector<double> RunResult::windowed_throughput_mbps(DurationNs window,
                                                        std::size_t i) const {
  const auto idx = static_cast<net::FlowIndex>(i);
  std::vector<double> egress_times;
  egress_times.reserve(recorder.egress().size());
  for (const auto& e : recorder.egress()) {
    if (e.flow == net::FlowId::kCcaData && e.flow_index == idx) {
      egress_times.push_back(e.time.to_seconds());
    }
  }
  const auto rates =
      windowed_rate(egress_times, flow(i).start.to_seconds(),
                    config.duration.to_seconds(), window.to_seconds());
  std::vector<double> mbps(rates.size());
  const double bits = static_cast<double>(config.net.packet_bytes) * 8.0;
  for (std::size_t k = 0; k < rates.size(); ++k) {
    mbps[k] = rates[k] * bits * 1e-6;
  }
  return mbps;
}

std::vector<double> RunResult::queue_delays_s(std::size_t i) const {
  const auto idx = static_cast<net::FlowIndex>(i);
  std::vector<double> out;
  out.reserve(recorder.delays().size());
  for (const auto& d : recorder.delays()) {
    if (d.flow == net::FlowId::kCcaData && d.flow_index == idx) {
      out.push_back(d.queue_delay.to_seconds());
    }
  }
  return out;
}

bool RunResult::stalled(DurationNs tail, std::size_t i) const {
  const FlowResult& f = flow(i);
  if (f.sent == 0) return false;  // never started: not "stuck", just idle
  const auto idx = static_cast<net::FlowIndex>(i);
  const TimeNs cutoff = f.stop - tail;
  for (const auto& e : recorder.egress()) {
    if (e.flow == net::FlowId::kCcaData && e.flow_index == idx &&
        e.time >= cutoff) {
      return false;
    }
  }
  return true;
}

double RunResult::jain_fairness() const {
  if (flows.size() < 2) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const FlowResult& f : flows) {
    const double g = f.goodput_mbps();
    sum += g;
    sum_sq += g * g;
  }
  if (sum_sq <= 0.0) return 1.0;  // all idle: nothing to be unfair about
  return sum * sum / (static_cast<double>(flows.size()) * sum_sq);
}

RunResult RunContext::run(const ScenarioConfig& cfg,
                          const tcp::CcaFactory& cca,
                          std::vector<TimeNs> trace_times) {
  // Reset every piece of reused state; capacities (slab, pool, vectors)
  // survive, contents don't.
  sim_.reset();
  pool_.clear();
  recorder_.clear();

  Dumbbell db(sim_, cfg, cca, std::move(trace_times), &pool_, &recorder_);
  db.start();
  sim_.run_until(cfg.duration);

  RunResult r;
  r.config = cfg;
  r.flows.reserve(db.flow_count());
  for (std::size_t i = 0; i < db.flow_count(); ++i) {
    const auto idx = static_cast<net::FlowIndex>(i);
    FlowResult f;
    f.cca = db.flow_spec(i).cca;
    f.start = db.flow_spec(i).start;
    f.stop = db.flow_spec(i).stop;
    f.packet_bytes = cfg.net.packet_bytes;
    f.segments_delivered = db.receiver(i).segments_received();
    f.egress_packets = db.recorder().flow_egress_count(idx);
    f.sent = db.sender(i).total_sent();
    f.retransmissions = db.sender(i).total_retransmissions();
    f.drops = db.recorder().flow_drop_count(idx);
    f.rto_count = db.sender(i).rto_count();
    f.fast_recovery_count = db.sender(i).fast_retransmit_entries();
    f.spurious_retx_count = db.sender(i).spurious_retx_count();
    f.final_rto_backoff = db.sender(i).rto_backoff();
    f.final_bw_estimate_pps = db.sender(i).cca().bw_estimate_pps();
    f.final_min_rtt_estimate = db.sender(i).cca().min_rtt_estimate();
    f.tcp_log = db.sender(i).log();
    r.flows.push_back(std::move(f));
  }
  r.queue_stats = db.queue().stats();
  if (const auto* ct = db.cross_traffic()) {
    r.cross_sent = ct->packets_sent();
    r.cross_drops = ct->packets_dropped();
  }
  r.recorder = db.recorder();
  return r;
}

RunResult run_scenario(const ScenarioConfig& cfg, const tcp::CcaFactory& cca,
                       std::vector<TimeNs> trace_times) {
  // One warm context per thread: GA batches fan out over the shared pool,
  // and every worker reuses its own slab/pool/recorder capacity.
  thread_local RunContext ctx;
  return ctx.run(cfg, cca, std::move(trace_times));
}

}  // namespace ccfuzz::scenario
