#include "scenario/runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/stats.h"

namespace ccfuzz::scenario {

double FlowResult::goodput_mbps() const {
  const DurationNs span = active();
  if (span <= DurationNs::zero()) return 0.0;
  const double bits = static_cast<double>(segments_delivered) *
                      static_cast<double>(packet_bytes) * 8.0;
  return bits / span.to_seconds() * 1e-6;
}

const FlowResult& RunResult::flow(std::size_t i) const {
  static const FlowResult kEmpty;
  return i < flows.size() ? flows[i] : kEmpty;
}

FlowResult& RunResult::ensure_primary() {
  if (flows.empty()) {
    FlowResult f;
    f.start = config.flow_start;
    f.stop = config.duration;
    f.packet_bytes = config.net.packet_bytes;
    flows.push_back(std::move(f));
  }
  return flows.front();
}

void RunResult::windowed_throughput_mbps_into(DurationNs window,
                                              std::size_t i,
                                              std::vector<double>& out) const {
  // The streaming bins hold exactly this series for the configured window —
  // any record mode, no per-packet scan.
  if (window == config.metrics_window && i < metrics.flow_count()) {
    metrics.windowed_throughput_mbps_into(i, config.net.packet_bytes, out);
    return;
  }
  // Other windows re-bin the raw egress events (kFullEvents, or hand-built
  // recorders); without events this reads as zero throughput.
  const auto idx = static_cast<net::FlowIndex>(i);
  std::vector<double> egress_times;
  egress_times.reserve(recorder.egress().size());
  for (const auto& e : recorder.egress()) {
    if (e.flow == net::FlowId::kCcaData && e.flow_index == idx) {
      egress_times.push_back(e.time.to_seconds());
    }
  }
  const auto rates =
      windowed_rate(egress_times, flow(i).start.to_seconds(),
                    config.duration.to_seconds(), window.to_seconds());
  out.clear();
  out.reserve(rates.size());
  const double bits = static_cast<double>(config.net.packet_bytes) * 8.0;
  for (std::size_t k = 0; k < rates.size(); ++k) {
    out.push_back(rates[k] * bits * 1e-6);
  }
}

std::vector<double> RunResult::windowed_throughput_mbps(DurationNs window,
                                                        std::size_t i) const {
  std::vector<double> out;
  windowed_throughput_mbps_into(window, i, out);
  return out;
}

double RunResult::queue_delay_percentile_s(double pct, std::size_t i) const {
  if (i < metrics.flow_count()) {
    return metrics.flow(i).delay.percentile_s(pct);
  }
  // Hand-built results: exact percentile over whatever delays were recorded.
  const auto delays = queue_delays_s(i);
  if (delays.empty()) return 0.0;
  return percentile(delays, pct);
}

std::vector<double> RunResult::queue_delays_s(std::size_t i) const {
  const auto idx = static_cast<net::FlowIndex>(i);
  std::vector<double> out;
  out.reserve(recorder.delays().size());
  for (const auto& d : recorder.delays()) {
    if (d.flow == net::FlowId::kCcaData && d.flow_index == idx) {
      out.push_back(d.queue_delay.to_seconds());
    }
  }
  return out;
}

bool RunResult::stalled(DurationNs tail, std::size_t i) const {
  const FlowResult& f = flow(i);
  if (f.sent == 0) return false;  // never started: not "stuck", just idle
  const TimeNs cutoff = f.stop - tail;
  if (i < metrics.flow_count()) {
    const analysis::FlowSeries& s = metrics.flow(i);
    return !(s.last_egress >= TimeNs::zero() && s.last_egress >= cutoff);
  }
  // Hand-built results: scan whatever events exist.
  const auto idx = static_cast<net::FlowIndex>(i);
  for (const auto& e : recorder.egress()) {
    if (e.flow == net::FlowId::kCcaData && e.flow_index == idx &&
        e.time >= cutoff) {
      return false;
    }
  }
  return true;
}

double RunResult::jain_fairness() const {
  if (flows.size() < 2) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const FlowResult& f : flows) {
    const double g = f.goodput_mbps();
    sum += g;
    sum_sq += g * g;
  }
  if (sum_sq <= 0.0) return 1.0;  // all idle: nothing to be unfair about
  return sum * sum / (static_cast<double>(flows.size()) * sum_sq);
}

const RunResult& RunContext::run(const ScenarioConfig& cfg,
                                 const tcp::CcaFactory& cca,
                                 std::span<const TimeNs> trace_times) {
  // Reset every piece of reused state; capacities (slab, pool, component
  // buffers, metric bins) survive, contents don't.
  sim_.reset();
  pool_.clear();
  result_.recorder.clear();
  result_.probe.reset(cfg.coverage);
  result_.invariants.reset(cfg.invariants);
  db_.set_behavior_probe(&result_.probe);

  // setup() clears/rebinds the metrics and rebuilds the components in place.
  db_.setup(cfg, cca, trace_times);
  db_.start();

  // Armed invariant oracle: periodic audits of live sender/queue state.
  // Disarmed runs schedule nothing, so they stay bit-identical; armed audit
  // events do count toward the run's event budget.
  if (cfg.invariants) {
    schedule_audit(DurationNs::millis(5));
  }

  // Run guards: cap the deadline at the sim-time budget, and arm the
  // event/wall guards inside the simulator. All of this is branch-only when
  // the budget is unlimited (the default), so guarded-but-unhit runs stay
  // bit-identical to unguarded ones.
  TimeNs deadline = cfg.duration;
  bool sim_time_capped = false;
  if (cfg.budget.max_sim_time > DurationNs::zero() &&
      TimeNs::zero() + cfg.budget.max_sim_time < deadline) {
    deadline = TimeNs::zero() + cfg.budget.max_sim_time;
    sim_time_capped = true;
  }
  sim_.arm_budget(cfg.budget);
  sim_.run_until(deadline);
  result_.truncation = sim_.truncation();
  if (result_.truncation == sim::TruncationReason::kNone && sim_time_capped) {
    result_.truncation = sim::TruncationReason::kSimTimeLimit;
  }
  result_.truncated = result_.truncation != sim::TruncationReason::kNone;
  result_.probe.finalize();

  // The recorder and metrics were written in place (they live inside
  // result_); only counters remain to collect. All assignments below reuse
  // existing capacity, so the handoff allocates nothing when warm.
  result_.config = cfg;
  result_.flows.resize(db_.flow_count());
  for (std::size_t i = 0; i < db_.flow_count(); ++i) {
    const auto idx = static_cast<net::FlowIndex>(i);
    FlowResult& f = result_.flows[i];
    f.cca = db_.flow_spec(i).cca;
    f.start = db_.flow_spec(i).start;
    f.stop = db_.flow_spec(i).stop;
    f.packet_bytes = cfg.net.packet_bytes;
    f.segments_delivered = db_.receiver(i).segments_received();
    f.egress_packets = db_.recorder().flow_egress_count(idx);
    f.sent = db_.sender(i).total_sent();
    f.retransmissions = db_.sender(i).total_retransmissions();
    f.drops = db_.recorder().flow_drop_count(idx);
    f.rto_count = db_.sender(i).rto_count();
    f.fast_recovery_count = db_.sender(i).fast_retransmit_entries();
    f.spurious_retx_count = db_.sender(i).spurious_retx_count();
    f.final_rto_backoff = db_.sender(i).rto_backoff();
    f.final_bw_estimate_pps = db_.sender(i).cca().bw_estimate_pps();
    f.final_min_rtt_estimate = db_.sender(i).cca().min_rtt_estimate();
    f.tcp_log = db_.sender(i).log();
  }
  result_.queue_stats = db_.queue().stats();
  if (const auto* ct = db_.cross_traffic()) {
    result_.cross_sent = ct->packets_sent();
    result_.cross_drops = ct->packets_dropped();
  } else {
    result_.cross_sent = 0;
    result_.cross_drops = 0;
  }
  if (cfg.invariants) {
    audit_live_state();  // final scoreboard/cwnd/queue state
    check_conservation();
  }
  return result_;
}

void RunContext::schedule_audit(DurationNs period) {
  sim_.schedule_in(period, [this, period] {
    audit_live_state();
    schedule_audit(period);
  });
}

void RunContext::audit_live_state() {
  sim::Invariants& inv = result_.invariants;
  const TimeNs now = sim_.now();
  for (std::size_t i = 0; i < db_.flow_count(); ++i) {
    const tcp::TcpSender& s = db_.sender(i);
    const tcp::SenderState& st = s.state();
    inv.check(st.packets_out >= 0 && st.sacked_out >= 0 && st.lost_out >= 0 &&
                  st.retrans_out >= 0,
              now, "scoreboard: negative outstanding-segment counter");
    inv.check(st.in_flight() >= 0, now,
              "scoreboard: negative in-flight (sacked+lost exceed "
              "outstanding+retrans)");
    inv.check(st.sacked_out + st.lost_out <= st.packets_out, now,
              "scoreboard: sacked+lost exceeds outstanding window");
    inv.check(s.snd_una() <= s.snd_nxt(), now, "sequence: snd_una > snd_nxt");
    inv.check(st.packets_out == s.snd_nxt() - s.snd_una(), now,
              "scoreboard: packets_out != snd_nxt - snd_una");
    inv.check(s.cca().cwnd_segments() >= 1, now, "cwnd below 1 MSS");
    inv.check(st.now >= TimeNs::zero() && st.now <= now, now,
              "timestamp: sender clock outside [0, now]");
    inv.check(st.total_sent >= st.total_retx, now,
              "counters: retransmissions exceed total transmissions");
    inv.check(st.delivered >= 0, now, "counters: negative delivered");
  }
  inv.check(db_.queue().size() <= db_.queue().capacity(), now,
            "queue: occupancy exceeds capacity");
  inv.check(pool_.in_use() <= pool_.capacity(), now,
            "packet conservation: pool in_use exceeds slab capacity");
}

void RunContext::check_conservation() {
  sim::Invariants& inv = result_.invariants;
  const TimeNs end = sim_.now();
  const net::QueueStats& qs = db_.queue().stats();
  std::int64_t dequeued = 0;
  for (std::size_t k = 0; k < net::kFlowCount; ++k) {
    inv.check(qs.enqueued[k] >= 0 && qs.dropped[k] >= 0 && qs.dequeued[k] >= 0,
              end, "queue conservation: negative per-kind counter");
    inv.check(qs.dequeued[k] <= qs.enqueued[k], end,
              "queue conservation: dequeued exceeds enqueued");
    dequeued += qs.dequeued[k];
  }
  inv.check(qs.total_enqueued() ==
                dequeued + static_cast<std::int64_t>(db_.queue().size()),
            end, "queue conservation: enqueued != dequeued + resident");
  for (const FlowResult& f : result_.flows) {
    inv.check(f.segments_delivered >= 0 && f.egress_packets >= 0 &&
                  f.sent >= 0 && f.drops >= 0 && f.rto_count >= 0,
              end, "flow conservation: negative counter");
    inv.check(f.sent >= f.retransmissions, end,
              "flow conservation: retransmissions exceed transmissions");
    inv.check(f.segments_delivered <= f.sent, end,
              "flow conservation: delivered exceeds transmissions");
    inv.check(f.egress_packets <= f.sent, end,
              "flow conservation: bottleneck egress exceeds transmissions");
  }
}

ContextKey allocate_context_key() {
  // 0 is reserved for the shared default context.
  static std::atomic<ContextKey> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// Per-thread LRU-bounded context cache. One warm context per (thread, key):
/// GA batches fan out over the shared pool, and every worker reuses its own
/// slab/pool/component capacity per evaluation configuration. Contexts are
/// built lazily, so the slot table stays a vector of empty slots for keys
/// this thread never runs; the table grows only when a new key first
/// evaluates here (never in a warm generation). The LRU cap keeps a
/// many-cell campaign (one key per evaluator) from pinning unbounded warm
/// state per worker: materializing a context past the cap destroys the
/// least-recently-touched one.
struct ContextCache {
  struct Slot {
    std::unique_ptr<RunContext> ctx;
    std::uint64_t last_use = 0;
  };
  std::vector<Slot> slots;
  std::uint64_t tick = 0;
  std::size_t live = 0;
  std::size_t capacity = kDefaultThreadContextCapacity;

  void evict_lru() {
    Slot* victim = nullptr;
    for (Slot& s : slots) {
      if (s.ctx && (victim == nullptr || s.last_use < victim->last_use)) {
        victim = &s;
      }
    }
    if (victim != nullptr) {
      victim->ctx.reset();
      --live;
    }
  }
};

ContextCache& context_cache() {
  thread_local ContextCache cache;
  return cache;
}

}  // namespace

RunContext& thread_run_context(ContextKey key) {
  ContextCache& cache = context_cache();
  if (cache.slots.size() <= key) {
    cache.slots.resize(static_cast<std::size_t>(key) + 1);
  }
  ContextCache::Slot& slot = cache.slots[key];
  if (!slot.ctx) {
    while (cache.live >= cache.capacity) cache.evict_lru();
    slot.ctx = std::make_unique<RunContext>();
    ++cache.live;
  }
  slot.last_use = ++cache.tick;
  return *slot.ctx;
}

void set_thread_context_capacity(std::size_t cap) {
  ContextCache& cache = context_cache();
  cache.capacity = std::max<std::size_t>(cap, 1);
  while (cache.live > cache.capacity) cache.evict_lru();
}

std::size_t thread_context_capacity() { return context_cache().capacity; }

std::size_t thread_context_count() { return context_cache().live; }

RunResult run_scenario(const ScenarioConfig& cfg, const tcp::CcaFactory& cca,
                       std::vector<TimeNs> trace_times) {
  return thread_run_context().run(cfg, cca, trace_times);
}

}  // namespace ccfuzz::scenario
