#include "scenario/runner.h"

#include <algorithm>
#include <utility>

#include "scenario/dumbbell.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace ccfuzz::scenario {

double RunResult::goodput_mbps() const {
  const DurationNs active = config.duration - config.flow_start;
  if (active <= DurationNs::zero()) return 0.0;
  const double bits = static_cast<double>(cca_segments_delivered) *
                      static_cast<double>(config.net.packet_bytes) * 8.0;
  return bits / active.to_seconds() * 1e-6;
}

std::vector<double> RunResult::windowed_throughput_mbps(
    DurationNs window) const {
  std::vector<double> egress_times;
  egress_times.reserve(recorder.egress().size());
  for (const auto& e : recorder.egress()) {
    if (e.flow == net::FlowId::kCcaData) {
      egress_times.push_back(e.time.to_seconds());
    }
  }
  const auto rates = windowed_rate(egress_times, config.flow_start.to_seconds(),
                                   config.duration.to_seconds(),
                                   window.to_seconds());
  std::vector<double> mbps(rates.size());
  const double bits = static_cast<double>(config.net.packet_bytes) * 8.0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    mbps[i] = rates[i] * bits * 1e-6;
  }
  return mbps;
}

std::vector<double> RunResult::cca_queue_delays_s() const {
  std::vector<double> out;
  out.reserve(recorder.delays().size());
  for (const auto& d : recorder.delays()) {
    if (d.flow == net::FlowId::kCcaData) {
      out.push_back(d.queue_delay.to_seconds());
    }
  }
  return out;
}

bool RunResult::stalled(DurationNs tail) const {
  if (cca_sent == 0) return false;  // never started: not "stuck", just idle
  const TimeNs cutoff = config.duration - tail;
  for (const auto& e : recorder.egress()) {
    if (e.flow == net::FlowId::kCcaData && e.time >= cutoff) return false;
  }
  return true;
}

RunResult RunContext::run(const ScenarioConfig& cfg,
                          const tcp::CcaFactory& cca,
                          std::vector<TimeNs> trace_times) {
  // Reset every piece of reused state; capacities (slab, pool, vectors)
  // survive, contents don't.
  sim_.reset();
  pool_.clear();
  recorder_.clear();

  Dumbbell db(sim_, cfg, cca(), std::move(trace_times), &pool_, &recorder_);
  db.start();
  sim_.run_until(cfg.duration);

  RunResult r;
  r.config = cfg;
  r.cca_segments_delivered = db.receiver().segments_received();
  r.cca_egress_packets = db.recorder().egress_count(net::FlowId::kCcaData);
  r.cca_sent = db.sender().total_sent();
  r.cca_retransmissions = db.sender().total_retransmissions();
  r.rto_count = db.sender().rto_count();
  r.fast_recovery_count = db.sender().fast_retransmit_entries();
  r.spurious_retx_count = db.sender().spurious_retx_count();
  r.final_rto_backoff = db.sender().rto_backoff();
  r.queue_stats = db.queue().stats();
  r.cca_drops = r.queue_stats.dropped[static_cast<std::size_t>(
      net::FlowId::kCcaData)];
  if (const auto* ct = db.cross_traffic()) {
    r.cross_sent = ct->packets_sent();
    r.cross_drops = ct->packets_dropped();
  }
  r.final_bw_estimate_pps = db.sender().cca().bw_estimate_pps();
  r.final_min_rtt_estimate = db.sender().cca().min_rtt_estimate();
  r.recorder = db.recorder();
  r.tcp_log = db.sender().log();
  return r;
}

RunResult run_scenario(const ScenarioConfig& cfg, const tcp::CcaFactory& cca,
                       std::vector<TimeNs> trace_times) {
  // One warm context per thread: GA batches fan out over the shared pool,
  // and every worker reuses its own slab/pool/recorder capacity.
  thread_local RunContext ctx;
  return ctx.run(cfg, cca, std::move(trace_times));
}

}  // namespace ccfuzz::scenario
