// The paper's dumbbell topology (§3.1), assembled from net/ and tcp/ parts,
// generalized to a declarative set of competing CCA flows (§6 future work):
//
//   flow 0 sender ──access₀──▶ ┌─────────┐             ┌──────┐
//   flow 1 sender ──access₁──▶ │ gateway │──bottleneck─▶ sink │─▶ receiverᵢ
//   cross traffic ────────────▶│  FIFO   │   (20 ms)   └──────┘      │
//                              └─────────┘                           │
//   senderᵢ ◀──────────────── ACK pathᵢ ─────────────────────────────┘
//
// Every flow owns its access link, ACK path, sender and receiver; all flows
// share the gateway queue and bottleneck link. Per-flow access/ACK delays
// give RTT heterogeneity; per-flow start/stop times give late-starter and
// convergence scenarios. In link mode the bottleneck is a TraceDrivenLink
// fed by the fuzzed service curve; in traffic mode it is a FixedRateLink and
// the fuzzed trace drives the CrossTrafficInjector.
#pragma once

#include <memory>
#include <vector>

#include "net/cross_traffic.h"
#include "net/delay_pipe.h"
#include "net/link.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "net/recorder.h"
#include "sim/simulator.h"
#include "scenario/config.h"
#include "tcp/congestion_control.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace ccfuzz::scenario {

/// Owns every component of one simulation run and wires their callbacks.
/// Build it, call start(), then Simulator::run_until(duration).
class Dumbbell {
 public:
  /// `trace_times` is the link service curve (link mode) or the cross-traffic
  /// injection schedule (traffic mode); must be sorted ascending.
  ///
  /// `primary` builds the CCA instance for every flow whose FlowSpec names
  /// no algorithm of its own (and for the legacy single-flow shorthand);
  /// named flows resolve through cca::make_factory.
  ///
  /// `pool` / `recorder` let a reusable harness (scenario::RunContext) supply
  /// warm buffers that outlive the Dumbbell; when null the Dumbbell owns
  /// private ones.
  Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
           const tcp::CcaFactory& primary, std::vector<TimeNs> trace_times,
           net::PacketPool* pool = nullptr,
           net::BottleneckRecorder* recorder = nullptr);

  /// Single-flow convenience: wraps one ready-made CCA instance. Only valid
  /// for scenarios with one flow.
  Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
           std::unique_ptr<tcp::CongestionControl> cca,
           std::vector<TimeNs> trace_times,
           net::PacketPool* pool = nullptr,
           net::BottleneckRecorder* recorder = nullptr);

  Dumbbell(const Dumbbell&) = delete;
  Dumbbell& operator=(const Dumbbell&) = delete;

  /// Schedules flow starts/stops, link service and cross-traffic injections.
  void start();

  // ---- Component access (tests & analysis) ----
  std::size_t flow_count() const { return flows_.size(); }
  /// The resolved spec of flow `i` (delays filled in, stop clamped).
  const FlowSpec& flow_spec(std::size_t i) const { return flows_[i].spec; }
  tcp::TcpSender& sender(std::size_t i = 0) { return *flows_[i].sender; }
  const tcp::TcpSender& sender(std::size_t i = 0) const {
    return *flows_[i].sender;
  }
  tcp::TcpReceiver& receiver(std::size_t i = 0) { return *flows_[i].receiver; }
  const tcp::TcpReceiver& receiver(std::size_t i = 0) const {
    return *flows_[i].receiver;
  }
  net::DropTailQueue& queue() { return *queue_; }
  const net::DropTailQueue& queue() const { return *queue_; }
  const net::BottleneckRecorder& recorder() const { return *recorder_; }
  const net::CrossTrafficInjector* cross_traffic() const {
    return cross_.get();
  }
  const net::BottleneckLink& link() const { return *link_; }
  const ScenarioConfig& config() const { return cfg_; }
  /// Flow index carried by cross-traffic packets (one past the CCA flows).
  net::FlowIndex cross_flow_index() const {
    return static_cast<net::FlowIndex>(flows_.size());
  }

 private:
  /// One competing flow's private path: access link in, ACK path back.
  struct Flow {
    FlowSpec spec;  // resolved: delays inherited, stop clamped to duration
    std::unique_ptr<net::DelayPipe> access;  // sender → gateway
    std::unique_ptr<net::DelayPipe> ack;     // receiver → sender
    std::unique_ptr<tcp::TcpReceiver> receiver;
    std::unique_ptr<tcp::TcpSender> sender;
  };

  sim::Simulator& sim_;
  ScenarioConfig cfg_;

  net::PacketPool own_pool_;
  net::BottleneckRecorder own_recorder_;
  net::PacketPool* pool_;
  net::BottleneckRecorder* recorder_;
  std::unique_ptr<net::DropTailQueue> queue_;
  std::unique_ptr<net::BottleneckLink> link_;
  std::unique_ptr<net::CrossTrafficInjector> cross_;  // traffic mode only
  std::vector<Flow> flows_;
};

}  // namespace ccfuzz::scenario
