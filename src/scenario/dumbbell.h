// The paper's dumbbell topology (§3.1), assembled from net/ and tcp/ parts,
// generalized to a declarative set of competing CCA flows (§6 future work):
//
//   flow 0 sender ──access₀──▶ ┌─────────┐             ┌──────┐
//   flow 1 sender ──access₁──▶ │ gateway │──bottleneck─▶ sink │─▶ receiverᵢ
//   cross traffic ────────────▶│  FIFO   │   (20 ms)   └──────┘      │
//                              └─────────┘                           │
//   senderᵢ ◀──────────────── ACK pathᵢ ─────────────────────────────┘
//
// Every flow owns its access link, ACK path, sender and receiver; all flows
// share the gateway queue and bottleneck link. Per-flow access/ACK delays
// give RTT heterogeneity; per-flow start/stop times give late-starter and
// convergence scenarios. In link mode the bottleneck is a TraceDrivenLink
// fed by the fuzzed service curve; in traffic mode it is a FixedRateLink and
// the fuzzed trace drives the CrossTrafficInjector.
//
// The Dumbbell is a *reusable harness*: construct the shell once (one per
// scenario::RunContext) and call setup() per run. Components — queue, links,
// pipes, senders, receivers — are created on first use and thereafter reset
// in place, so a steady-state GA evaluation rebuilds the whole topology
// without a single heap allocation (CCA instances recycle through
// util::Recycled). Results are bit-identical to a freshly built dumbbell:
// every component's reset() restores exactly its post-construction state.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "analysis/streaming_metrics.h"
#include "coverage/probe.h"
#include "net/cross_traffic.h"
#include "net/delay_pipe.h"
#include "net/link.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "net/recorder.h"
#include "sim/simulator.h"
#include "scenario/config.h"
#include "tcp/congestion_control.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace ccfuzz::scenario {

/// Owns every component of a simulation run and wires their callbacks.
/// Either construct the empty shell and call setup() per run (reusable
/// harness), or use a one-shot convenience constructor; then start() and
/// Simulator::run_until(duration).
class Dumbbell {
 public:
  /// Reusable-harness shell: binds warm storage, builds nothing yet.
  /// `pool` / `recorder` / `metrics` may be null (private ones are used).
  Dumbbell(sim::Simulator& sim, net::PacketPool* pool = nullptr,
           net::BottleneckRecorder* recorder = nullptr,
           analysis::StreamingMetrics* metrics = nullptr);

  /// One-shot convenience: shell + setup(). `trace_times` is the link
  /// service curve (link mode) or the cross-traffic injection schedule
  /// (traffic mode); must be sorted ascending.
  ///
  /// `primary` builds the CCA instance for every flow whose FlowSpec names
  /// no algorithm of its own (and for the legacy single-flow shorthand);
  /// named flows resolve through cca::make_factory.
  Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
           const tcp::CcaFactory& primary, std::vector<TimeNs> trace_times,
           net::PacketPool* pool = nullptr,
           net::BottleneckRecorder* recorder = nullptr,
           analysis::StreamingMetrics* metrics = nullptr);

  /// Single-flow convenience: wraps one ready-made CCA instance. Only valid
  /// for scenarios with one flow.
  Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
           std::unique_ptr<tcp::CongestionControl> cca,
           std::vector<TimeNs> trace_times,
           net::PacketPool* pool = nullptr,
           net::BottleneckRecorder* recorder = nullptr,
           analysis::StreamingMetrics* metrics = nullptr);

  Dumbbell(const Dumbbell&) = delete;
  Dumbbell& operator=(const Dumbbell&) = delete;

  /// (Re)builds the topology for one run. The simulator must be freshly
  /// reset and the pool/recorder/metrics cleared by the caller
  /// (scenario::RunContext does all of this). Components from a previous
  /// setup are reset in place; only shape growth (more flows than ever
  /// before, a first use of a link type) allocates.
  void setup(const ScenarioConfig& cfg, const tcp::CcaFactory& primary,
             std::span<const TimeNs> trace_times);

  /// Schedules flow starts/stops, link service and cross-traffic injections.
  void start();

  /// Binds the behavioral coverage probe setup() attaches to the primary
  /// flow's sender when ScenarioConfig::coverage is set (nullptr detaches).
  /// The caller owns the probe and resets/finalizes it around the run
  /// (scenario::RunContext does both).
  void set_behavior_probe(coverage::BehaviorProbe* probe) { probe_ = probe; }

  // ---- Component access (tests & analysis) ----
  std::size_t flow_count() const { return flow_count_; }
  /// The resolved spec of flow `i` (delays filled in, stop clamped).
  const FlowSpec& flow_spec(std::size_t i) const { return flows_[i].spec; }
  tcp::TcpSender& sender(std::size_t i = 0) { return *flows_[i].sender; }
  const tcp::TcpSender& sender(std::size_t i = 0) const {
    return *flows_[i].sender;
  }
  tcp::TcpReceiver& receiver(std::size_t i = 0) { return *flows_[i].receiver; }
  const tcp::TcpReceiver& receiver(std::size_t i = 0) const {
    return *flows_[i].receiver;
  }
  net::DropTailQueue& queue() { return *queue_; }
  const net::DropTailQueue& queue() const { return *queue_; }
  const net::BottleneckRecorder& recorder() const { return *recorder_; }
  const analysis::StreamingMetrics& metrics() const { return *metrics_; }
  const net::CrossTrafficInjector* cross_traffic() const {
    return active_cross_;
  }
  const net::BottleneckLink& link() const { return *link_; }
  const ScenarioConfig& config() const { return cfg_; }
  /// Flow index carried by cross-traffic packets (one past the CCA flows).
  net::FlowIndex cross_flow_index() const {
    return static_cast<net::FlowIndex>(flow_count_);
  }

 private:
  /// One competing flow's private path: access link in, ACK path back.
  /// Slots persist across setups; only the first flow_count_ are active.
  struct Flow {
    FlowSpec spec;  // resolved: delays inherited, stop clamped to duration
    std::unique_ptr<net::DelayPipe> access;  // sender → gateway
    std::unique_ptr<net::DelayPipe> ack;     // receiver → sender
    std::unique_ptr<tcp::TcpReceiver> receiver;
    std::unique_ptr<tcp::TcpSender> sender;
  };

  /// Resolves FlowSpec `i` of cfg_ (inherit delays, clamp stop) into `out`.
  void resolve_spec(std::size_t i, FlowSpec& out) const;

  sim::Simulator& sim_;
  ScenarioConfig cfg_;

  net::PacketPool own_pool_;
  net::BottleneckRecorder own_recorder_;
  analysis::StreamingMetrics own_metrics_;
  net::PacketPool* pool_;
  net::BottleneckRecorder* recorder_;
  analysis::StreamingMetrics* metrics_;
  coverage::BehaviorProbe* probe_ = nullptr;

  std::unique_ptr<net::DropTailQueue> queue_;
  // Both link types stay warm once built; link_ points at this run's.
  std::unique_ptr<net::TraceDrivenLink> trace_link_;
  std::unique_ptr<net::FixedRateLink> fixed_link_;
  net::BottleneckLink* link_ = nullptr;
  std::unique_ptr<net::CrossTrafficInjector> cross_;
  net::CrossTrafficInjector* active_cross_ = nullptr;  // traffic mode only
  std::vector<Flow> flows_;
  std::size_t flow_count_ = 0;
};

}  // namespace ccfuzz::scenario
