// The paper's dumbbell topology (§3.1), assembled from net/ and tcp/ parts:
//
//   CCA sender ──access──▶ ┌─────────┐             ┌──────┐
//                          │ gateway │──bottleneck─▶ sink │──▶ receiver
//   cross traffic ────────▶│  FIFO   │   (20 ms)   └──────┘      │
//                          └─────────┘                           │
//   sender ◀──────────────── ACK path (20 ms) ───────────────────┘
//
// In link mode the bottleneck is a TraceDrivenLink fed by the fuzzed service
// curve; in traffic mode it is a FixedRateLink and the fuzzed trace drives
// the CrossTrafficInjector.
#pragma once

#include <memory>
#include <vector>

#include "net/cross_traffic.h"
#include "net/delay_pipe.h"
#include "net/link.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "net/recorder.h"
#include "sim/simulator.h"
#include "scenario/config.h"
#include "tcp/congestion_control.h"
#include "tcp/receiver.h"
#include "tcp/sender.h"

namespace ccfuzz::scenario {

/// Owns every component of one simulation run and wires their callbacks.
/// Build it, call start(), then Simulator::run_until(duration).
class Dumbbell {
 public:
  /// `trace_times` is the link service curve (link mode) or the cross-traffic
  /// injection schedule (traffic mode); must be sorted ascending.
  ///
  /// `pool` / `recorder` let a reusable harness (scenario::RunContext) supply
  /// warm buffers that outlive the Dumbbell; when null the Dumbbell owns
  /// private ones.
  Dumbbell(sim::Simulator& sim, const ScenarioConfig& cfg,
           std::unique_ptr<tcp::CongestionControl> cca,
           std::vector<TimeNs> trace_times,
           net::PacketPool* pool = nullptr,
           net::BottleneckRecorder* recorder = nullptr);

  Dumbbell(const Dumbbell&) = delete;
  Dumbbell& operator=(const Dumbbell&) = delete;

  /// Schedules flow start, link service and cross-traffic injections.
  void start();

  // ---- Component access (tests & analysis) ----
  tcp::TcpSender& sender() { return *sender_; }
  const tcp::TcpSender& sender() const { return *sender_; }
  tcp::TcpReceiver& receiver() { return *receiver_; }
  const tcp::TcpReceiver& receiver() const { return *receiver_; }
  net::DropTailQueue& queue() { return *queue_; }
  const net::DropTailQueue& queue() const { return *queue_; }
  const net::BottleneckRecorder& recorder() const { return *recorder_; }
  const net::CrossTrafficInjector* cross_traffic() const {
    return cross_.get();
  }
  const net::BottleneckLink& link() const { return *link_; }
  const ScenarioConfig& config() const { return cfg_; }

 private:
  sim::Simulator& sim_;
  ScenarioConfig cfg_;

  net::PacketPool own_pool_;
  net::BottleneckRecorder own_recorder_;
  net::PacketPool* pool_;
  net::BottleneckRecorder* recorder_;
  std::unique_ptr<net::DropTailQueue> queue_;
  std::unique_ptr<net::BottleneckLink> link_;
  std::unique_ptr<net::DelayPipe> access_pipe_;  // sender → gateway
  std::unique_ptr<net::DelayPipe> ack_pipe_;     // receiver → sender
  std::unique_ptr<net::CrossTrafficInjector> cross_;  // traffic mode only
  std::unique_ptr<tcp::TcpReceiver> receiver_;
  std::unique_ptr<tcp::TcpSender> sender_;
};

}  // namespace ccfuzz::scenario
