// One-call simulation harness: run one or more CCA flows over a link/traffic
// trace and collect everything the scoring functions (§3.4) and figures
// consume.
//
// run_scenario() is a pure function of (config, cca factory, trace): the
// result depends on nothing but its arguments, which is what makes the GA's
// parallel evaluation deterministic (paper §3.6). Under the hood each thread
// reuses one RunContext, so back-to-back evaluations run on warm buffers —
// the event-slot slab, packet pool, dumbbell components (queue, links,
// pipes, senders, receivers) and metric bins reach their high-water mark on
// the first run, after which a steady-state evaluation performs zero heap
// allocations end to end, result handoff included (the warm RunResult lives
// inside the context; RunContext::run returns a reference). Warm state is
// invisible in the results: the golden determinism test pins bit-identical
// RunResults across repeats and against pre-refactor fingerprints.
//
// Observation modes (ScenarioConfig::record_mode): fuzzing runs keep only
// the streaming per-flow summaries (analysis::StreamingMetrics) — windowed
// egress bins, delay digests, last-progress stamps — which is everything
// scoring reads. Figure/timeline/replay consumers opt into
// RecordMode::kFullEvents to additionally keep the raw per-packet
// BottleneckRecorder streams. Scores are bit-identical across modes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/streaming_metrics.h"
#include "coverage/probe.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "net/recorder.h"
#include "scenario/config.h"
#include "scenario/dumbbell.h"
#include "sim/invariants.h"
#include "sim/simulator.h"
#include "tcp/congestion_control.h"
#include "tcp/event_log.h"
#include "util/time.h"

namespace ccfuzz::scenario {

/// Everything observable from one CCA flow's run: transport counters, final
/// CCA model state, and the active interval the per-flow rates are computed
/// over. Series live on RunResult, which owns the streaming summaries (and,
/// in full-events mode, the recorder).
struct FlowResult {
  /// Registry name of the flow's CCA; empty for the scenario's primary CCA
  /// or a custom factory.
  std::string cca;
  /// Active interval [start, stop): start time and (clamped) stop time.
  TimeNs start = TimeNs::zero();
  TimeNs stop = TimeNs::zero();
  std::int32_t packet_bytes = 1500;

  std::int64_t segments_delivered = 0;  ///< in-order at the receiver
  std::int64_t egress_packets = 0;      ///< through the bottleneck
  std::int64_t sent = 0;                ///< transmissions incl. retx
  std::int64_t retransmissions = 0;
  std::int64_t drops = 0;               ///< this flow's losses at the queue
  std::int64_t rto_count = 0;
  std::int64_t fast_recovery_count = 0;
  std::int64_t spurious_retx_count = 0;
  int final_rto_backoff = 0;

  // --- Final CCA model state (BBR introspection; 0/-1 for others) ---
  double final_bw_estimate_pps = 0.0;
  DurationNs final_min_rtt_estimate = DurationNs(-1);

  // --- Detailed TCP event log (when ScenarioConfig::log_tcp_events) ---
  tcp::TcpEventLog tcp_log;

  /// Active sending interval (stop − start).
  DurationNs active() const { return stop - start; }

  /// Average goodput over [start, stop) in Mbps, from in-order delivered
  /// segments.
  double goodput_mbps() const;
};

/// Everything observable from one simulation run. Per-flow counters live in
/// `flows` (index order matches ScenarioConfig::flows); the single-flow
/// `cca_*` accessors are a migration shim reading the primary flow (0).
struct RunResult {
  ScenarioConfig config;

  /// One entry per CCA flow, in flow-index order; never empty after
  /// run_scenario (manually built results may leave it empty — accessors
  /// then read a neutral all-zero flow).
  std::vector<FlowResult> flows;

  // --- Cross traffic outcome (traffic mode) ---
  std::int64_t cross_sent = 0;
  std::int64_t cross_drops = 0;

  // --- Bottleneck observations ---
  net::QueueStats queue_stats;
  /// Streaming per-flow summaries (always populated by run_scenario).
  analysis::StreamingMetrics metrics;
  /// Raw per-packet event streams — populated only in
  /// RecordMode::kFullEvents (empty otherwise).
  net::BottleneckRecorder recorder;

  /// Behavioral coverage probe for the primary flow; armed and finalized by
  /// run_scenario when ScenarioConfig::coverage is set (its signature reads
  /// invalid otherwise). Fixed-size state: carrying it costs nothing warm.
  coverage::BehaviorProbe probe;

  /// True when a run guard (ScenarioConfig::budget) stopped the run before
  /// its configured end; `truncation` says which one. Counters and metrics
  /// reflect the truncated prefix.
  bool truncated = false;
  sim::TruncationReason truncation = sim::TruncationReason::kNone;

  /// Runtime invariant oracle results; armed and populated only when
  /// ScenarioConfig::invariants is set (empty and inert otherwise).
  sim::Invariants invariants;

  std::size_t flow_count() const { return flows.size(); }

  /// The run's behavioral coverage signature (invalid unless
  /// ScenarioConfig::coverage was set).
  const coverage::CoverageSignature& coverage_signature() const {
    return probe.signature();
  }

  /// True when the run kept raw per-packet events (figures/timeline APIs in
  /// analysis/flow_metrics need them).
  bool has_events() const {
    return config.record_mode == RecordMode::kFullEvents;
  }

  /// Flow `i`, or a neutral all-zero FlowResult when out of range.
  const FlowResult& flow(std::size_t i) const;
  /// The primary flow — the algorithm under test.
  const FlowResult& primary() const { return flow(0); }

  /// Average goodput of flow `i` over its active interval, in Mbps.
  double goodput_mbps(std::size_t i = 0) const { return flow(i).goodput_mbps(); }

  /// Flow `i`'s egress throughput per window (Mbps) over [start, duration).
  /// Served from the streaming bins when `window` matches
  /// config.metrics_window (always available, any record mode); other
  /// windows are recomputed from raw events and therefore read as zero
  /// throughput in metrics-only runs.
  std::vector<double> windowed_throughput_mbps(DurationNs window,
                                               std::size_t i = 0) const;
  /// Same, reusing caller storage (allocation-free when warm).
  void windowed_throughput_mbps_into(DurationNs window, std::size_t i,
                                     std::vector<double>& out) const;

  /// Histogram-estimated percentile of flow `i`'s queueing delay in seconds
  /// (exact at the extremes). From the streaming delay digest; identical in
  /// both record modes. 0 when the flow saw no egress.
  double queue_delay_percentile_s(double pct, std::size_t i = 0) const;

  /// Queueing-delay samples (seconds) experienced by flow `i`'s packets, in
  /// egress order. Needs kFullEvents (empty in metrics-only runs) — use
  /// queue_delay_percentile_s for scoring.
  std::vector<double> queue_delays_s(std::size_t i) const;
  /// Migration shim: primary flow's queueing delays.
  std::vector<double> cca_queue_delays_s() const { return queue_delays_s(0); }

  /// True when flow `i` made no bottleneck progress over the trailing `tail`
  /// of its active interval despite having started — the paper's "stuck"
  /// signal. From the streaming last-progress stamp (any record mode).
  bool stalled(DurationNs tail, std::size_t i = 0) const;

  /// Jain's fairness index over the flows' goodputs: 1 = perfectly fair,
  /// 1/n = one flow has everything. 1 for single-flow or all-idle runs.
  double jain_fairness() const;

  // --- Single-flow migration shims (primary flow) ---
  std::int64_t cca_segments_delivered() const {
    return primary().segments_delivered;
  }
  std::int64_t cca_egress_packets() const { return primary().egress_packets; }
  std::int64_t cca_sent() const { return primary().sent; }
  std::int64_t cca_retransmissions() const {
    return primary().retransmissions;
  }
  std::int64_t cca_drops() const { return primary().drops; }
  std::int64_t rto_count() const { return primary().rto_count; }
  std::int64_t fast_recovery_count() const {
    return primary().fast_recovery_count;
  }
  std::int64_t spurious_retx_count() const {
    return primary().spurious_retx_count;
  }
  int final_rto_backoff() const { return primary().final_rto_backoff; }
  double final_bw_estimate_pps() const {
    return primary().final_bw_estimate_pps;
  }
  DurationNs final_min_rtt_estimate() const {
    return primary().final_min_rtt_estimate;
  }
  const tcp::TcpEventLog& tcp_log() const { return primary().tcp_log; }

  /// The primary flow, created on demand — for tests that assemble a
  /// RunResult by hand.
  FlowResult& ensure_primary();
};

/// Reusable simulation harness: owns the simulator (event-slot slab), the
/// in-flight packet pool, the reusable Dumbbell (queue, links, pipes,
/// senders, receivers) and the warm RunResult the recorder/metrics write
/// into, recycling all of it across runs — including across runs with
/// different flow counts or modes. One RunContext per thread
/// (run_scenario keeps a thread-local one; fuzz::evaluate_batch therefore
/// reuses one per worker) turns the GA's unit of work from allocator-bound
/// to simulation-bound: a steady-state metrics-only evaluation performs no
/// heap allocations at all.
class RunContext {
 public:
  RunContext() : db_(sim_, &pool_, &result_.recorder, &result_.metrics) {}
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Runs one simulation on warm buffers and returns the context-owned
  /// result. Results are bit-identical to a cold run: every piece of reused
  /// state is reset up front. The reference stays valid (and stable) until
  /// the next run() on this context.
  const RunResult& run(const ScenarioConfig& cfg, const tcp::CcaFactory& cca,
                       std::span<const TimeNs> trace_times);

 private:
  /// Armed-invariants support: schedules the next periodic audit and runs
  /// the live-state checks (sender scoreboards, cwnd, queue occupancy).
  /// Never called on disarmed runs.
  void schedule_audit(DurationNs period);
  void audit_live_state();
  /// Post-run conservation checks (packet pool, queue accounting, per-flow
  /// counters). Never called on disarmed runs.
  void check_conservation();

  sim::Simulator sim_;
  net::PacketPool pool_;
  RunResult result_;
  Dumbbell db_;
};

/// Default per-thread cap on cached RunContexts (see thread_run_context).
inline constexpr std::size_t kDefaultThreadContextCapacity = 64;

/// Keys a per-thread cache of RunContexts. Key 0 is the shared default
/// context (what run_scenario uses); every other key is handed out once by
/// allocate_context_key() and names a dedicated warm context on each thread
/// that evaluates under it. fuzz::TraceEvaluator allocates one key per
/// evaluator, so a campaign's cross-cell batches stop funnelling wildly
/// different ScenarioConfig shapes (flow counts, FlowSpec vectors, metric
/// windows) through one shared context: each cell's buffers are reshaped
/// exactly once per worker and stay warm for that cell from then on.
using ContextKey = std::uint32_t;

/// Reserves a fresh context-cache key. Process-wide monotone; cheap.
ContextKey allocate_context_key();

/// This thread's warm RunContext for `key` — created on first use, reused
/// until evicted. The cache is LRU-bounded per thread (default
/// kDefaultThreadContextCapacity): campaigns allocate one key per evaluator,
/// so hundreds of cells would otherwise pin hundreds of warm contexts per
/// worker forever. Touching a key refreshes it; creating one past the cap
/// destroys the least-recently-used context (references to evicted contexts
/// are invalidated — hot callers must not hold one across evaluations of
/// other keys). Hot callers (fuzz::TraceEvaluator) run through the context
/// directly to skip the RunResult copy that the by-value run_scenario hands
/// out.
RunContext& thread_run_context(ContextKey key = 0);

/// Caps this thread's RunContext cache (min 1), evicting LRU contexts
/// immediately if over the new cap. Per thread; affects future lookups.
void set_thread_context_capacity(std::size_t cap);
/// This thread's current cache cap.
std::size_t thread_context_capacity();
/// Live (materialized) contexts currently cached on this thread.
std::size_t thread_context_count();

/// Runs one simulation. `trace_times` is the link service curve (link mode)
/// or cross-traffic schedule (traffic mode), sorted ascending. `cca` builds
/// the primary CCA — the instance used by every flow that names no
/// algorithm of its own. Reuses a thread-local RunContext.
RunResult run_scenario(const ScenarioConfig& cfg, const tcp::CcaFactory& cca,
                       std::vector<TimeNs> trace_times);

}  // namespace ccfuzz::scenario
