// One-call simulation harness: run a CCA over a link/traffic trace and
// collect everything the scoring functions (§3.4) and figures consume.
//
// run_scenario() is a pure function of (config, cca factory, trace): it
// builds a fresh Simulator and Dumbbell, runs to the configured duration and
// extracts a RunResult. That purity is what makes the GA's parallel
// evaluation deterministic (paper §3.6).
#pragma once

#include <cstdint>
#include <vector>

#include "net/queue.h"
#include "net/recorder.h"
#include "scenario/config.h"
#include "tcp/congestion_control.h"
#include "tcp/event_log.h"
#include "util/time.h"

namespace ccfuzz::scenario {

/// Everything observable from one simulation run.
struct RunResult {
  ScenarioConfig config;

  // --- CCA flow outcome ---
  std::int64_t cca_segments_delivered = 0;  ///< in-order at the receiver
  std::int64_t cca_egress_packets = 0;      ///< through the bottleneck
  std::int64_t cca_sent = 0;                ///< transmissions incl. retx
  std::int64_t cca_retransmissions = 0;
  std::int64_t cca_drops = 0;               ///< CCA packets lost at the queue
  std::int64_t rto_count = 0;
  std::int64_t fast_recovery_count = 0;
  std::int64_t spurious_retx_count = 0;
  int final_rto_backoff = 0;

  // --- Cross traffic outcome (traffic mode) ---
  std::int64_t cross_sent = 0;
  std::int64_t cross_drops = 0;

  // --- Bottleneck observations ---
  net::QueueStats queue_stats;
  net::BottleneckRecorder recorder;

  // --- Final CCA model state (BBR introspection; 0/-1 for others) ---
  double final_bw_estimate_pps = 0.0;
  DurationNs final_min_rtt_estimate = DurationNs(-1);

  // --- Detailed TCP event log (when ScenarioConfig::log_tcp_events) ---
  tcp::TcpEventLog tcp_log;

  /// Average CCA goodput over [flow_start, duration) in Mbps, from in-order
  /// delivered segments.
  double goodput_mbps() const;

  /// CCA egress throughput per window (Mbps) over [flow_start, duration).
  std::vector<double> windowed_throughput_mbps(DurationNs window) const;

  /// Queueing-delay samples (seconds) experienced by CCA packets, in egress
  /// order.
  std::vector<double> cca_queue_delays_s() const;

  /// True when the CCA made no bottleneck progress over the trailing
  /// `tail` of the run despite having started — the paper's "stuck" signal.
  bool stalled(DurationNs tail) const;
};

/// Runs one simulation. `trace_times` is the link service curve (link mode)
/// or cross-traffic schedule (traffic mode), sorted ascending.
RunResult run_scenario(const ScenarioConfig& cfg, const tcp::CcaFactory& cca,
                       std::vector<TimeNs> trace_times);

}  // namespace ccfuzz::scenario
