// One-call simulation harness: run a CCA over a link/traffic trace and
// collect everything the scoring functions (§3.4) and figures consume.
//
// run_scenario() is a pure function of (config, cca factory, trace): the
// result depends on nothing but its arguments, which is what makes the GA's
// parallel evaluation deterministic (paper §3.6). Under the hood each thread
// reuses one RunContext, so back-to-back evaluations run on warm buffers —
// the event-slot slab, packet pool and recorder vectors reach their
// high-water mark on the first run and the hot path never allocates after
// that. Warm state is invisible in the results: the golden determinism test
// pins bit-identical RunResults across repeats and against pre-refactor
// fingerprints.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet_pool.h"
#include "net/queue.h"
#include "net/recorder.h"
#include "scenario/config.h"
#include "sim/simulator.h"
#include "tcp/congestion_control.h"
#include "tcp/event_log.h"
#include "util/time.h"

namespace ccfuzz::scenario {

/// Everything observable from one simulation run.
struct RunResult {
  ScenarioConfig config;

  // --- CCA flow outcome ---
  std::int64_t cca_segments_delivered = 0;  ///< in-order at the receiver
  std::int64_t cca_egress_packets = 0;      ///< through the bottleneck
  std::int64_t cca_sent = 0;                ///< transmissions incl. retx
  std::int64_t cca_retransmissions = 0;
  std::int64_t cca_drops = 0;               ///< CCA packets lost at the queue
  std::int64_t rto_count = 0;
  std::int64_t fast_recovery_count = 0;
  std::int64_t spurious_retx_count = 0;
  int final_rto_backoff = 0;

  // --- Cross traffic outcome (traffic mode) ---
  std::int64_t cross_sent = 0;
  std::int64_t cross_drops = 0;

  // --- Bottleneck observations ---
  net::QueueStats queue_stats;
  net::BottleneckRecorder recorder;

  // --- Final CCA model state (BBR introspection; 0/-1 for others) ---
  double final_bw_estimate_pps = 0.0;
  DurationNs final_min_rtt_estimate = DurationNs(-1);

  // --- Detailed TCP event log (when ScenarioConfig::log_tcp_events) ---
  tcp::TcpEventLog tcp_log;

  /// Average CCA goodput over [flow_start, duration) in Mbps, from in-order
  /// delivered segments.
  double goodput_mbps() const;

  /// CCA egress throughput per window (Mbps) over [flow_start, duration).
  std::vector<double> windowed_throughput_mbps(DurationNs window) const;

  /// Queueing-delay samples (seconds) experienced by CCA packets, in egress
  /// order.
  std::vector<double> cca_queue_delays_s() const;

  /// True when the CCA made no bottleneck progress over the trailing
  /// `tail` of the run despite having started — the paper's "stuck" signal.
  bool stalled(DurationNs tail) const;
};

/// Reusable simulation harness: owns the simulator (event-slot slab), the
/// in-flight packet pool and the bottleneck recorder, and recycles their
/// capacity across runs. One RunContext per thread (run_scenario keeps a
/// thread-local one; fuzz::evaluate_batch therefore reuses one per worker)
/// turns the GA's unit of work from allocator-bound to simulation-bound.
class RunContext {
 public:
  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Runs one simulation on warm buffers. Results are bit-identical to a
  /// cold run: every piece of reused state is reset up front.
  RunResult run(const ScenarioConfig& cfg, const tcp::CcaFactory& cca,
                std::vector<TimeNs> trace_times);

 private:
  sim::Simulator sim_;
  net::PacketPool pool_;
  net::BottleneckRecorder recorder_;
};

/// Runs one simulation. `trace_times` is the link service curve (link mode)
/// or cross-traffic schedule (traffic mode), sorted ascending. Reuses a
/// thread-local RunContext.
RunResult run_scenario(const ScenarioConfig& cfg, const tcp::CcaFactory& cca,
                       std::vector<TimeNs> trace_times);

}  // namespace ccfuzz::scenario
