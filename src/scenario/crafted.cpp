#include "scenario/crafted.h"

#include <algorithm>

namespace ccfuzz::scenario::crafted {
namespace {

/// Inserts a kill burst targeted at a packet arriving shortly after `at`:
/// an instantaneous queue-filling burst 1 ms early (fills the gateway
/// regardless of current occupancy; the excess is dropped as cross-traffic
/// loss) followed by a 2 packets/ms trickle that out-paces the 1 packet/ms
/// drain, pinning the queue full across the target's arrival window.
void add_burst(std::vector<TimeNs>& trace, TimeNs at, int n) {
  std::vector<TimeNs> burst;
  const TimeNs start = at - DurationNs::millis(1);
  // Instant fill: `n` packets fill the gateway outright no matter how full
  // it already is (the surplus is dropped as cross-traffic loss).
  burst.insert(burst.end(), static_cast<std::size_t>(n), start);
  // Pinning trickle: 10 packets/ms for 5 ms re-takes every slot the
  // 1 packet/ms drain opens, within 0.1 ms — faster than any service
  // boundary the target's arrival could ride in on (equal-time injections
  // also win the event-queue tie against delivery events).
  for (int i = 1; i <= 50; ++i) {
    burst.push_back(start + DurationNs::micros(100) * i);
  }
  std::vector<TimeNs> merged;
  merged.reserve(trace.size() + burst.size());
  std::merge(trace.begin(), trace.end(), burst.begin(), burst.end(),
             std::back_inserter(merged));
  trace = std::move(merged);
}

/// First transmission (original or retransmission) of `seq` at or after
/// `after`, from the detailed event log. Returns TimeNs(-1) if none.
TimeNs next_transmission_of(const tcp::TcpEventLog& log, std::int64_t seq,
                            TimeNs after) {
  for (const auto& ev : log.events()) {
    if (ev.seq != seq) continue;
    if (ev.type != tcp::TcpEventType::kSend &&
        ev.type != tcp::TcpEventType::kRetransmit) {
      continue;
    }
    if (ev.time >= after) return ev.time;
  }
  return TimeNs(-1);
}

}  // namespace

CraftResult craft_retransmission_killer(const ScenarioConfig& cfg,
                                        const tcp::CcaFactory& cca,
                                        const KillerConfig& kcfg) {
  ScenarioConfig run_cfg = cfg;
  run_cfg.mode = FuzzMode::kTraffic;
  run_cfg.log_tcp_events = true;  // the crafter reads transmission times
  // Crafted findings feed figures and diagnostics that read raw events.
  run_cfg.record_mode = RecordMode::kFullEvents;

  CraftResult result;
  add_burst(result.trace, kcfg.first_burst, kcfg.burst_packets);
  result.bursts = 1;

  // The burst fills the gateway, so the first CCA packet arriving right
  // after it is the head of the hole. Identify it from the first run.
  scenario::RunResult run = run_scenario(run_cfg, cca, result.trace);
  result.pinned_seq = -1;
  for (const auto& ev : run.tcp_log().events()) {
    if (ev.type == tcp::TcpEventType::kMarkLost && ev.time > kcfg.first_burst) {
      result.pinned_seq = ev.seq;
      break;
    }
  }
  if (result.pinned_seq < 0) {
    // The burst did not induce a loss (e.g. tiny windows); nothing to pin.
    result.final_run = std::move(run);
    return result;
  }

  // Iteratively kill every subsequent (re)transmission of the pinned head.
  TimeNs last_burst = kcfg.first_burst;
  while (result.bursts < kcfg.max_bursts) {
    const TimeNs retx = next_transmission_of(
        run.tcp_log(), result.pinned_seq,
        last_burst + kcfg.burst_lead + DurationNs::millis(2));
    if (retx < TimeNs::zero()) break;  // head never retransmitted again
    if (retx >= run_cfg.duration) break;
    // Saturate the gateway across the retransmission's arrival. The flood
    // starts within burst_lead of the send instant, which is below the
    // feedback delay (one round trip), so the retransmission time observed
    // in the previous run is unchanged by the new flood.
    add_burst(result.trace, retx - kcfg.burst_lead + DurationNs::millis(1),
              kcfg.burst_packets);
    ++result.bursts;
    last_burst = retx;
    run = run_scenario(run_cfg, cca, result.trace);
    if (run.stalled(kcfg.dead_tail)) break;  // flow already dead
  }

  result.final_run = std::move(run);
  return result;
}

std::vector<TimeNs> shrew_trace(TimeNs first_burst, DurationNs period,
                                int burst_packets, TimeNs until) {
  std::vector<TimeNs> trace;
  for (TimeNs t = first_burst; t < until; t += period) {
    trace.insert(trace.end(), static_cast<std::size_t>(burst_packets), t);
  }
  return trace;
}

std::vector<TimeNs> standing_queue_trace(TimeNs flow_start,
                                         std::size_t queue_capacity,
                                         DurationNs refill_period,
                                         int refill_packets, TimeNs until) {
  std::vector<TimeNs> trace;
  // Fill the queue just before the flow starts: the SYN-time RTT already
  // includes one full queue of delay.
  const TimeNs fill_at =
      flow_start > TimeNs::millis(1) ? flow_start - DurationNs::millis(1)
                                     : TimeNs::zero();
  trace.insert(trace.end(), queue_capacity, fill_at);
  for (TimeNs t = fill_at + refill_period; t < until; t += refill_period) {
    trace.insert(trace.end(), static_cast<std::size_t>(refill_packets), t);
  }
  return trace;
}

}  // namespace ccfuzz::scenario::crafted
