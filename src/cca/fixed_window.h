// A congestion control stub with a constant window (and optional pacing).
//
// Not a real CCA: it exists so network-layer and sender-layer tests can
// exercise transport machinery under a known, constant offered load, and so
// examples can show the minimal CongestionControl implementation.
#pragma once

#include <cstdint>

#include "tcp/congestion_control.h"
#include "util/recycle.h"

namespace ccfuzz::cca {

/// Constant-cwnd congestion control (testing aid / minimal example).
class FixedWindow final : public tcp::CongestionControl,
                          public util::Recycled<FixedWindow> {
 public:
  explicit FixedWindow(std::int64_t cwnd, DataRate pacing = DataRate::zero())
      : cwnd_(cwnd), pacing_(pacing) {}

  void on_ack(const tcp::SenderState& st, const tcp::AckEvent& ev,
              const tcp::RateSample& rs) override {
    (void)st;
    (void)ev;
    (void)rs;
  }

  std::int64_t cwnd_segments() const override { return cwnd_; }
  DataRate pacing_rate() const override { return pacing_; }
  const char* name() const override { return "fixed-window"; }

 private:
  std::int64_t cwnd_;
  DataRate pacing_;
};

}  // namespace ccfuzz::cca
