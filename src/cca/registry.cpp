#include "cca/registry.h"

#include <memory>
#include <stdexcept>

#include "cca/bbr.h"
#include "cca/cubic.h"
#include "cca/reno.h"

namespace ccfuzz::cca {

tcp::CcaFactory make_factory(std::string_view name) {
  if (name == "reno") {
    return [] { return std::make_unique<Reno>(); };
  }
  if (name == "cubic") {
    return [] { return std::make_unique<Cubic>(); };
  }
  if (name == "cubic-ns3bug") {
    return [] {
      Cubic::Config cfg;
      cfg.ns3_slow_start_bug = true;
      return std::make_unique<Cubic>(cfg);
    };
  }
  if (name == "bbr") {
    return [] { return std::make_unique<Bbr>(); };
  }
  if (name == "bbr-linux-strict") {
    return [] {
      Bbr::Config cfg;
      cfg.sample_policy = Bbr::SamplePolicy::kLinuxStrict;
      return std::make_unique<Bbr>(cfg);
    };
  }
  if (name == "bbr-probertt-on-rto") {
    return [] {
      Bbr::Config cfg;
      cfg.probe_rtt_on_rto = true;
      return std::make_unique<Bbr>(cfg);
    };
  }
  std::string msg = "unknown congestion control '" + std::string(name) +
                    "'; known:";
  for (const auto& n : known_ccas()) {
    msg += ' ';
    msg += n;
  }
  throw std::invalid_argument(msg);
}

bool is_known_cca(std::string_view name) {
  for (const auto& n : known_ccas()) {
    if (n == name) return true;
  }
  return false;
}

std::vector<std::string> known_ccas() {
  return {"reno",           "cubic",
          "cubic-ns3bug",   "bbr",
          "bbr-linux-strict", "bbr-probertt-on-rto"};
}

}  // namespace ccfuzz::cca
