// Name → factory registry for congestion control algorithms.
//
// Scenarios, benches and examples select CCAs by string ("bbr",
// "cubic-ns3bug", ...). Each simulation gets a fresh instance via the
// factory, which is what the fuzzer's parallel evaluator requires.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tcp/congestion_control.h"

namespace ccfuzz::cca {

/// Returns a factory for a built-in CCA by name, or throws
/// std::invalid_argument for an unknown name. Known names:
///   "reno", "cubic", "cubic-ns3bug", "bbr", "bbr-linux-strict",
///   "bbr-probertt-on-rto".
tcp::CcaFactory make_factory(std::string_view name);

/// True if `name` identifies a built-in CCA.
bool is_known_cca(std::string_view name);

/// All built-in CCA names (for help strings and panel sweeps).
std::vector<std::string> known_ccas();

}  // namespace ccfuzz::cca
