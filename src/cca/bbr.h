// TCP BBR v1 congestion control, following Linux tcp_bbr.c (and, where the
// two differ, the ns-3 port the paper evaluates — see Config::sample_policy).
//
// BBR maintains a model of the path: the bottleneck bandwidth (windowed max
// over the last 10 packet-timed round trips of delivery-rate samples) and the
// minimum RTT (windowed min over 10 seconds). Pacing rate and cwnd derive
// from that model through the mode machine:
//
//   STARTUP   gain 2/ln2 ≈ 2.89, exits when bw stops growing 25% for 3 rounds
//   DRAIN     inverse gain until inflight <= 1 BDP
//   PROBE_BW  8-phase gain cycle [1.25, 0.75, 1, 1, 1, 1, 1, 1]
//   PROBE_RTT cwnd = 4 for max(200 ms, 1 round) when min-RTT goes stale (10 s)
//
// The paper's §4.1 stall arises from the interaction of the delivery-rate
// sampler with round accounting: a probe round ends when the rate sample's
// prior_delivered reaches next_rtt_delivered, and spurious retransmissions
// restamp prior_delivered, so late SACKs after an RTO end rounds prematurely
// and feed corrupted samples into the max filter until the genuine bandwidth
// estimate ages out. Once the estimate is low, delayed ACKs form a positive
// feedback loop (slow pacing → sparse ACKs → low samples) and the flow stalls
// permanently. Config::probe_rtt_on_rto enables the paper's proposed fix.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "tcp/congestion_control.h"
#include "tcp/event_log.h"
#include "util/recycle.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/windowed_filter.h"

namespace ccfuzz::cca {

/// BBR v1. Deterministic: the PROBE_BW entry phase randomization draws from
/// a seeded generator (paper §3.6 requires repeatable CCA randomness).
class Bbr final : public tcp::CongestionControl,
                  public util::Recycled<Bbr> {
 public:
  /// Which delivery-rate samples drive round accounting and the bw filter.
  enum class SamplePolicy {
    /// ns-3 behaviour (paper's test subject): any sample with timing data is
    /// consumed, including those whose interval is below the min RTT.
    kNs3Loose,
    /// Linux tcp_rate_gen behaviour: below-min-RTT samples are discarded.
    kLinuxStrict,
  };

  struct Config {
    std::int64_t initial_cwnd = 10;
    /// Windowed max-filter length for bandwidth, in packet-timed rounds.
    int bw_filter_rounds = 10;
    /// Min-RTT filter window; staleness triggers PROBE_RTT.
    DurationNs min_rtt_window = DurationNs::seconds(10);
    /// Time to hold cwnd at kMinCwnd in PROBE_RTT.
    DurationNs probe_rtt_duration = DurationNs::millis(200);
    /// STARTUP exit: bw must grow by this factor per round...
    double full_bw_threshold = 1.25;
    /// ...within this many consecutive rounds, else the pipe is full.
    int full_bw_rounds = 3;
    /// Pacing-rate safety margin (Linux bbr_pacing_margin_percent).
    double pacing_margin = 0.01;
    /// cwnd gain applied to the BDP outside PROBE_RTT.
    double cwnd_gain = 2.0;
    /// Extra segments over the BDP target to absorb ACK quantization
    /// (Linux bbr_quantization_budget with TSO segs goal of 1).
    std::int64_t quantization_budget_segments = 3;
    SamplePolicy sample_policy = SamplePolicy::kNs3Loose;
    /// The paper's proposed mitigation (§4.1): enter PROBE_RTT when an RTO
    /// fires, so in-flight SACKs drain before any spurious retransmission.
    bool probe_rtt_on_rto = false;
    /// Seed for the PROBE_BW phase randomization.
    std::uint64_t seed = 0x66BBDD0055AA1122ULL;
  };

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };

  Bbr() : Bbr(Config{}) {}
  explicit Bbr(const Config& cfg);

  void init(const tcp::SenderState& st) override;
  void on_ack(const tcp::SenderState& st, const tcp::AckEvent& ev,
              const tcp::RateSample& rs) override;
  void on_congestion_event(const tcp::SenderState& st,
                           tcp::CongestionEvent ev) override;

  std::int64_t cwnd_segments() const override { return cwnd_; }
  DataRate pacing_rate() const override { return pacing_rate_; }
  const char* name() const override {
    return cfg_.probe_rtt_on_rto ? "bbr-probertt-on-rto" : "bbr";
  }

  // ---- Model introspection (tests, Fig 4c/4d analysis) ----
  double bw_estimate_pps() const override { return max_bw_pps(); }
  DurationNs min_rtt_estimate() const override { return min_rtt_; }
  Mode mode() const { return mode_; }
  int cycle_index() const { return cycle_idx_; }
  std::int64_t round_count() const { return round_count_; }
  bool full_bw_reached() const { return full_bw_reached_; }
  double pacing_gain() const { return pacing_gain_; }
  std::int64_t probe_rtt_entries() const { return probe_rtt_entries_; }

  /// Attaches the sender's event log so BBR-internal transitions appear on
  /// the Fig 4c timeline (probe-round ends, bw samples, filter drops).
  void attach_event_log(tcp::TcpEventLog* log) override { log_ = log; }

  /// Mode-machine state for behavioral coverage: the probe bins transitions
  /// between STARTUP/DRAIN/PROBE_BW/PROBE_RTT.
  int probe_state() const override { return static_cast<int>(mode_); }

  /// Human-readable mode name.
  static const char* mode_name(Mode m);

 private:
  static constexpr int kCycleLength = 8;
  static constexpr std::int64_t kMinCwnd = 4;
  /// 2/ln(2), the STARTUP pacing/cwnd gain.
  static constexpr double kHighGain = 2.885;
  static constexpr std::array<double, kCycleLength> kPacingGainCycle = {
      1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

  bool sample_usable(const tcp::RateSample& rs) const;
  double max_bw_pps() const { return bw_filter_.get(); }
  /// BDP in segments for gain; falls back to initial cwnd without an RTT.
  std::int64_t bdp_segments(double bw_pps, double gain) const;
  std::int64_t quantization_budget(std::int64_t cwnd) const;

  void update_round(const tcp::SenderState& st, const tcp::RateSample& rs);
  void update_bw(const tcp::SenderState& st, const tcp::RateSample& rs);
  void update_cycle_phase(const tcp::SenderState& st,
                          const tcp::RateSample& rs);
  bool is_next_cycle_phase(const tcp::SenderState& st,
                           const tcp::RateSample& rs) const;
  void advance_cycle_phase(TimeNs now);
  void check_full_bw_reached(const tcp::RateSample& rs);
  void check_drain(const tcp::SenderState& st);
  void update_min_rtt(const tcp::SenderState& st, const tcp::RateSample& rs);
  void enter_probe_rtt(const tcp::SenderState& st);
  void check_probe_rtt_done(const tcp::SenderState& st);
  void restore_mode_after_probe_rtt(const tcp::SenderState& st);
  void enter_probe_bw(TimeNs now);

  void set_pacing_rate(const tcp::SenderState& st, double bw_pps, double gain);
  void set_cwnd(const tcp::SenderState& st, const tcp::RateSample& rs,
                std::int64_t acked, double bw_pps, double gain);
  void save_cwnd(const tcp::SenderState& st);

  Config cfg_;
  Rng rng_;
  tcp::TcpEventLog* log_ = nullptr;

  Mode mode_ = Mode::kStartup;
  double pacing_gain_ = kHighGain;
  double cwnd_gain_ = kHighGain;
  std::int64_t cwnd_;
  DataRate pacing_rate_ = DataRate::zero();
  bool has_seen_rtt_ = false;

  // Bandwidth model: windowed max of delivery-rate samples over rounds.
  WindowedMax<double, std::int64_t> bw_filter_;
  std::int64_t round_count_ = 0;
  bool round_start_ = false;
  std::int64_t next_rtt_delivered_ = 0;

  // STARTUP full-pipe detection.
  double full_bw_pps_ = 0.0;
  int full_bw_cnt_ = 0;
  bool full_bw_reached_ = false;

  // Min-RTT model and PROBE_RTT bookkeeping.
  DurationNs min_rtt_ = DurationNs(-1);
  TimeNs min_rtt_stamp_ = TimeNs::zero();
  TimeNs probe_rtt_done_stamp_ = TimeNs(-1);
  bool probe_rtt_round_done_ = false;
  std::int64_t probe_rtt_entries_ = 0;

  // PROBE_BW gain cycling.
  int cycle_idx_ = 0;
  TimeNs cycle_stamp_ = TimeNs::zero();

  // Recovery/restore of cwnd across loss episodes (Linux bbr_save_cwnd).
  enum class CaState { kOpen, kRecovery, kLoss };
  CaState prev_ca_state_ = CaState::kOpen;
  std::int64_t prior_cwnd_ = 0;
  bool packet_conservation_ = false;
};

}  // namespace ccfuzz::cca
