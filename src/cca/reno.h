// TCP NewReno congestion control (RFC 5681/6582 with SACK-based recovery).
//
// The baseline CCA of the paper's §4.3 finding: CC-Fuzz rediscovers the
// low-rate (shrew) attack against it — periodic bursts that kill the same
// retransmission repeatedly, locking the flow into exponential RTO backoff.
#pragma once

#include <algorithm>
#include <cstdint>

#include "tcp/congestion_control.h"
#include "util/recycle.h"

namespace ccfuzz::cca {

/// NewReno: slow start, AIMD congestion avoidance, multiplicative decrease
/// on fast retransmit, cwnd=1 on RTO.
class Reno final : public tcp::CongestionControl,
                   public util::Recycled<Reno> {
 public:
  struct Config {
    std::int64_t initial_cwnd = 10;
    std::int64_t min_cwnd_after_loss = 2;  ///< ssthresh floor (RFC 5681)
  };

  Reno() : Reno(Config{}) {}
  explicit Reno(const Config& cfg) : cfg_(cfg), cwnd_(cfg.initial_cwnd) {}

  void init(const tcp::SenderState& st) override {
    (void)st;
    cwnd_ = cfg_.initial_cwnd;
  }

  void on_ack(const tcp::SenderState& st, const tcp::AckEvent& ev,
              const tcp::RateSample& rs) override {
    (void)rs;
    if (st.in_recovery || st.in_loss) return;  // no growth during recovery
    std::int64_t acked = ev.newly_acked;
    if (acked <= 0) return;
    acked = slow_start(acked);
    if (acked > 0) congestion_avoidance(acked);
  }

  void on_congestion_event(const tcp::SenderState& st,
                           tcp::CongestionEvent ev) override {
    switch (ev) {
      case tcp::CongestionEvent::kEnterRecovery:
        ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, cfg_.min_cwnd_after_loss);
        cwnd_ = ssthresh_;
        break;
      case tcp::CongestionEvent::kRto:
        ssthresh_ = std::max<std::int64_t>(cwnd_ / 2, cfg_.min_cwnd_after_loss);
        cwnd_ = 1;
        cwnd_cnt_ = 0;
        break;
      case tcp::CongestionEvent::kExitRecovery:
      case tcp::CongestionEvent::kExitLoss:
        break;
    }
    (void)st;
  }

  std::int64_t cwnd_segments() const override { return cwnd_; }
  std::int64_t ssthresh_segments() const override { return ssthresh_; }
  const char* name() const override { return "reno"; }

  /// Behavioral-coverage state: 0 = slow start, 1 = congestion avoidance.
  int probe_state() const override { return cwnd_ < ssthresh_ ? 0 : 1; }

 private:
  /// Linux tcp_slow_start: grow by acked, capped at ssthresh; returns the
  /// ACK count left over for congestion avoidance.
  std::int64_t slow_start(std::int64_t acked) {
    if (cwnd_ >= ssthresh_) return acked;
    const std::int64_t grow = std::min(acked, ssthresh_ - cwnd_);
    cwnd_ += grow;
    return acked - grow;
  }

  /// +1 segment per cwnd worth of ACKs.
  void congestion_avoidance(std::int64_t acked) {
    cwnd_cnt_ += acked;
    while (cwnd_cnt_ >= cwnd_) {
      cwnd_cnt_ -= cwnd_;
      ++cwnd_;
    }
  }

  Config cfg_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_ = std::numeric_limits<std::int64_t>::max() / 2;
  std::int64_t cwnd_cnt_ = 0;
};

}  // namespace ccfuzz::cca
