#include "cca/bbr.h"

#include <algorithm>
#include <cmath>

namespace ccfuzz::cca {

constexpr std::array<double, Bbr::kCycleLength> Bbr::kPacingGainCycle;

Bbr::Bbr(const Config& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      cwnd_(cfg.initial_cwnd),
      bw_filter_(cfg.bw_filter_rounds) {}

const char* Bbr::mode_name(Mode m) {
  switch (m) {
    case Mode::kStartup: return "STARTUP";
    case Mode::kDrain: return "DRAIN";
    case Mode::kProbeBw: return "PROBE_BW";
    case Mode::kProbeRtt: return "PROBE_RTT";
  }
  return "?";
}

void Bbr::init(const tcp::SenderState& st) {
  cwnd_ = cfg_.initial_cwnd;
  mode_ = Mode::kStartup;
  pacing_gain_ = kHighGain;
  cwnd_gain_ = kHighGain;
  min_rtt_ = st.srtt;  // usually -1 at init
  min_rtt_stamp_ = st.now;
  // Initial pacing rate from the initial window over a nominal 1 ms RTT
  // (Linux bbr_init_pacing_rate_from_rtt before any RTT sample).
  const DurationNs rtt =
      st.srtt >= DurationNs::zero() ? st.srtt : DurationNs::millis(1);
  has_seen_rtt_ = st.srtt >= DurationNs::zero();
  const double bw_pps =
      static_cast<double>(cfg_.initial_cwnd) / rtt.to_seconds();
  set_pacing_rate(st, bw_pps, kHighGain);
}

bool Bbr::sample_usable(const tcp::RateSample& rs) const {
  switch (cfg_.sample_policy) {
    case SamplePolicy::kNs3Loose: return rs.valid_loose();
    case SamplePolicy::kLinuxStrict: return rs.valid();
  }
  return false;
}

std::int64_t Bbr::bdp_segments(double bw_pps, double gain) const {
  if (min_rtt_ < DurationNs::zero()) {
    // No RTT sample yet: fall back to the initial window (Linux returns
    // TCP_INIT_CWND scaled by gain here).
    return static_cast<std::int64_t>(
        std::ceil(static_cast<double>(cfg_.initial_cwnd) * gain));
  }
  const double bdp = bw_pps * min_rtt_.to_seconds();
  return static_cast<std::int64_t>(std::ceil(bdp * gain));
}

std::int64_t Bbr::quantization_budget(std::int64_t cwnd) const {
  cwnd += cfg_.quantization_budget_segments;
  // Extra allowance entering the probing phase (Linux adds 2 in cycle 0).
  if (mode_ == Mode::kProbeBw && cycle_idx_ == 0) cwnd += 2;
  return cwnd;
}

// ---------------------------------------------------------------------------
// Model updates (Linux bbr_update_model order)
// ---------------------------------------------------------------------------

void Bbr::update_round(const tcp::SenderState& st, const tcp::RateSample& rs) {
  // A packet-timed round ends when the most recently delivered segment was
  // sent after the start-of-round delivery count. Spurious retransmissions
  // restamp prior_delivered, which is exactly how the paper's stall ends
  // rounds prematurely.
  if (rs.prior_delivered >= next_rtt_delivered_) {
    next_rtt_delivered_ = st.delivered;
    ++round_count_;
    round_start_ = true;
    packet_conservation_ = false;
    if (log_) {
      log_->emit(st.now, tcp::TcpEventType::kProbeRoundEnd, -1,
                 static_cast<double>(round_count_));
    }
  } else {
    round_start_ = false;
  }
}

void Bbr::update_bw(const tcp::SenderState& st, const tcp::RateSample& rs) {
  round_start_ = false;
  if (!sample_usable(rs)) return;

  update_round(st, rs);

  // Feed the delivery-rate sample into the max filter unless it is an
  // app-limited sample below the current estimate.
  const double bw = rs.delivery_rate_pps;
  if (!rs.is_app_limited || bw >= max_bw_pps()) {
    const double before = max_bw_pps();
    bw_filter_.update(bw, round_count_);
    if (log_) {
      log_->emit(st.now, tcp::TcpEventType::kBwSample, -1, bw);
      if (max_bw_pps() < before) {
        log_->emit(st.now, tcp::TcpEventType::kBwFilterDrop, -1, max_bw_pps());
      }
    }
  }
}

void Bbr::update_cycle_phase(const tcp::SenderState& st,
                             const tcp::RateSample& rs) {
  if (mode_ == Mode::kProbeBw && is_next_cycle_phase(st, rs)) {
    advance_cycle_phase(st.now);
  }
}

bool Bbr::is_next_cycle_phase(const tcp::SenderState& st,
                              const tcp::RateSample& rs) const {
  const bool is_full_length =
      min_rtt_ >= DurationNs::zero() && (st.now - cycle_stamp_) > min_rtt_;
  if (pacing_gain_ == 1.0) return is_full_length;

  const auto inflight = rs.prior_in_flight;
  const double bw = max_bw_pps();
  if (pacing_gain_ > 1.0) {
    // Keep probing until inflight reaches gain*BDP, unless loss says the
    // path cannot hold that much.
    return is_full_length &&
           (rs.losses > 0 || inflight >= bdp_segments(bw, pacing_gain_));
  }
  // Draining phase: stop early once the extra queue is gone.
  return is_full_length || inflight <= bdp_segments(bw, 1.0);
}

void Bbr::advance_cycle_phase(TimeNs now) {
  cycle_idx_ = (cycle_idx_ + 1) % kCycleLength;
  cycle_stamp_ = now;
  pacing_gain_ = kPacingGainCycle[static_cast<std::size_t>(cycle_idx_)];
}

void Bbr::check_full_bw_reached(const tcp::RateSample& rs) {
  if (full_bw_reached_ || !round_start_ || rs.is_app_limited) return;
  if (max_bw_pps() >= full_bw_pps_ * cfg_.full_bw_threshold) {
    full_bw_pps_ = max_bw_pps();
    full_bw_cnt_ = 0;
    return;
  }
  ++full_bw_cnt_;
  full_bw_reached_ = full_bw_cnt_ >= cfg_.full_bw_rounds;
}

void Bbr::check_drain(const tcp::SenderState& st) {
  if (mode_ == Mode::kStartup && full_bw_reached_) {
    mode_ = Mode::kDrain;
    pacing_gain_ = 1.0 / kHighGain;
    cwnd_gain_ = kHighGain;
  }
  if (mode_ == Mode::kDrain &&
      st.in_flight() <= bdp_segments(max_bw_pps(), 1.0)) {
    enter_probe_bw(st.now);
  }
}

void Bbr::enter_probe_bw(TimeNs now) {
  mode_ = Mode::kProbeBw;
  cwnd_gain_ = cfg_.cwnd_gain;
  // Start anywhere in the cycle except the 0.75 drain phase (Linux picks
  // uniformly among 7 of the 8 phases, then advances once).
  cycle_idx_ =
      kCycleLength - 1 - static_cast<int>(rng_.uniform_int(0, kCycleLength - 2));
  advance_cycle_phase(now);
}

void Bbr::update_min_rtt(const tcp::SenderState& st,
                         const tcp::RateSample& rs) {
  const bool filter_expired =
      st.now > min_rtt_stamp_ + cfg_.min_rtt_window;
  if (rs.rtt >= DurationNs::zero() &&
      (min_rtt_ < DurationNs::zero() || rs.rtt < min_rtt_ || filter_expired)) {
    min_rtt_ = rs.rtt;
    min_rtt_stamp_ = st.now;
  }

  if (filter_expired && mode_ != Mode::kProbeRtt &&
      cfg_.probe_rtt_duration > DurationNs::zero()) {
    enter_probe_rtt(st);
  }

  if (mode_ == Mode::kProbeRtt) {
    // Hold cwnd at the floor for max(probe_rtt_duration, 1 round) measured
    // from the moment inflight actually falls to the floor.
    if (probe_rtt_done_stamp_ < TimeNs::zero() && st.in_flight() <= kMinCwnd) {
      probe_rtt_done_stamp_ = st.now + cfg_.probe_rtt_duration;
      probe_rtt_round_done_ = false;
      next_rtt_delivered_ = st.delivered;
    } else if (probe_rtt_done_stamp_ >= TimeNs::zero()) {
      if (round_start_) probe_rtt_round_done_ = true;
      if (probe_rtt_round_done_) check_probe_rtt_done(st);
    }
  }
}

void Bbr::enter_probe_rtt(const tcp::SenderState& st) {
  save_cwnd(st);
  mode_ = Mode::kProbeRtt;
  pacing_gain_ = 1.0;
  cwnd_gain_ = 1.0;
  probe_rtt_done_stamp_ = TimeNs(-1);
  probe_rtt_round_done_ = false;
  ++probe_rtt_entries_;
  if (log_) log_->emit(st.now, tcp::TcpEventType::kProbeRttEnter);
}

void Bbr::check_probe_rtt_done(const tcp::SenderState& st) {
  if (st.now <= probe_rtt_done_stamp_) return;
  min_rtt_stamp_ = st.now;  // schedule the next PROBE_RTT a window from now
  cwnd_ = std::max(cwnd_, prior_cwnd_);
  restore_mode_after_probe_rtt(st);
  if (log_) log_->emit(st.now, tcp::TcpEventType::kProbeRttExit);
}

void Bbr::restore_mode_after_probe_rtt(const tcp::SenderState& st) {
  if (!full_bw_reached_) {
    mode_ = Mode::kStartup;
    pacing_gain_ = kHighGain;
    cwnd_gain_ = kHighGain;
  } else {
    enter_probe_bw(st.now);
  }
}

// ---------------------------------------------------------------------------
// Control: pacing rate and cwnd
// ---------------------------------------------------------------------------

void Bbr::set_pacing_rate(const tcp::SenderState& st, double bw_pps,
                          double gain) {
  // On the first genuine RTT sample, rebuild the startup pacing rate from
  // the real RTT instead of the nominal 1 ms (Linux has_seen_rtt logic).
  if (!has_seen_rtt_ && st.srtt >= DurationNs::zero()) {
    has_seen_rtt_ = true;
    bw_pps = static_cast<double>(cwnd_) / st.srtt.to_seconds();
  }
  const double paced =
      bw_pps * gain * (1.0 - cfg_.pacing_margin) *
      static_cast<double>(st.mss_bytes) * 8.0;
  const DataRate rate(static_cast<std::int64_t>(std::max(paced, 1.0)));
  // Before the pipe is known to be full, never let the rate decrease: a
  // transient underestimate must not slow the startup ramp.
  if (full_bw_reached_ || rate > pacing_rate_ || pacing_rate_.is_zero()) {
    pacing_rate_ = rate;
  }
}

void Bbr::save_cwnd(const tcp::SenderState& st) {
  (void)st;
  if (prev_ca_state_ == CaState::kOpen && mode_ != Mode::kProbeRtt) {
    prior_cwnd_ = cwnd_;
  } else {
    prior_cwnd_ = std::max(prior_cwnd_, cwnd_);
  }
}

void Bbr::set_cwnd(const tcp::SenderState& st, const tcp::RateSample& rs,
                   std::int64_t acked, double bw_pps, double gain) {
  if (acked > 0) {
    // Recovery / restore handling (Linux bbr_set_cwnd_to_recover_or_restore).
    const CaState state = st.in_loss      ? CaState::kLoss
                          : st.in_recovery ? CaState::kRecovery
                                           : CaState::kOpen;
    std::int64_t cwnd = cwnd_;
    if (rs.losses > 0) cwnd = std::max<std::int64_t>(cwnd - rs.losses, 1);

    bool conservation_done = false;
    if (state == CaState::kRecovery && prev_ca_state_ != CaState::kRecovery) {
      // Entering fast recovery: one round of packet conservation.
      packet_conservation_ = true;
      next_rtt_delivered_ = st.delivered;
      cwnd = st.in_flight() + acked;
    } else if (prev_ca_state_ != CaState::kOpen && state == CaState::kOpen) {
      // Exiting recovery/loss: restore the pre-loss window.
      cwnd = std::max(cwnd, prior_cwnd_);
      packet_conservation_ = false;
    }
    prev_ca_state_ = state;

    if (packet_conservation_) {
      cwnd_ = std::max(cwnd, st.in_flight() + acked);
      conservation_done = true;
    }

    if (!conservation_done) {
      std::int64_t target = bdp_segments(bw_pps, gain);
      target = quantization_budget(target);
      if (full_bw_reached_) {
        cwnd = std::min(cwnd + acked, target);
      } else if (cwnd < target || st.delivered < cfg_.initial_cwnd) {
        cwnd = cwnd + acked;
      }
      cwnd_ = std::max<std::int64_t>(cwnd, kMinCwnd);
    }
  }
  if (mode_ == Mode::kProbeRtt) {
    cwnd_ = std::min<std::int64_t>(cwnd_, kMinCwnd);
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

void Bbr::on_ack(const tcp::SenderState& st, const tcp::AckEvent& ev,
                 const tcp::RateSample& rs) {
  (void)ev;
  update_bw(st, rs);
  update_cycle_phase(st, rs);
  check_full_bw_reached(rs);
  check_drain(st);
  update_min_rtt(st, rs);

  const double bw = max_bw_pps();
  set_pacing_rate(st, bw, pacing_gain_);
  set_cwnd(st, rs, rs.acked_sacked, bw, cwnd_gain_);
}

void Bbr::on_congestion_event(const tcp::SenderState& st,
                              tcp::CongestionEvent ev) {
  switch (ev) {
    case tcp::CongestionEvent::kEnterRecovery:
      // cwnd adjustment happens on the next ACK via recover_or_restore;
      // remember the pre-loss window now.
      save_cwnd(st);
      break;
    case tcp::CongestionEvent::kRto: {
      save_cwnd(st);
      prev_ca_state_ = CaState::kLoss;
      full_bw_pps_ = 0.0;  // Linux resets full_bw but not full_bw_cnt
      round_start_ = true;  // Linux: treat RTO like the end of a round
      // tcp_enter_loss collapses the window to what is actually in flight.
      cwnd_ = std::max<std::int64_t>(st.in_flight() + 1, 1);
      if (cfg_.probe_rtt_on_rto && mode_ != Mode::kProbeRtt) {
        // Paper §4.1 mitigation: momentarily slowing down lets the in-flight
        // SACKs arrive, avoiding the spurious retransmissions that corrupt
        // round clocking.
        enter_probe_rtt(st);
      }
      break;
    }
    case tcp::CongestionEvent::kExitRecovery:
    case tcp::CongestionEvent::kExitLoss:
      // Restoration happens on the next ACK (state observed as kOpen).
      break;
  }
}

}  // namespace ccfuzz::cca
