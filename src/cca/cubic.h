// TCP CUBIC (RFC 8312) with a faithful reproduction of the ns-3
// implementation bug the paper reports (§4.2).
//
// The bug: in slow start, ns-3's CUBIC increases cwnd by the full number of
// segments acknowledged *without clamping at ssthresh*. After an RTO whose
// head retransmission finally succeeds, the receiver's buffered data causes
// one cumulative ACK covering a large jump — the buggy code then inflates
// cwnd far past ssthresh and the sender bursts ~1 RTO worth of pending data
// into the bottleneck, causing catastrophic loss. Linux clamps the slow-start
// growth at ssthresh and feeds the remainder through congestion avoidance
// (Cubic::Config::ns3_slow_start_bug = false).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tcp/congestion_control.h"
#include "util/recycle.h"
#include "util/time.h"

namespace ccfuzz::cca {

/// CUBIC congestion control with a toggleable ns-3 slow-start bug.
class Cubic final : public tcp::CongestionControl,
                    public util::Recycled<Cubic> {
 public:
  struct Config {
    std::int64_t initial_cwnd = 10;
    double c = 0.4;          ///< cubic scaling constant
    double beta = 0.7;       ///< multiplicative decrease factor
    bool fast_convergence = true;
    /// true: reproduce the ns-3 bug (unclamped slow-start growth);
    /// false: Linux-correct behaviour.
    bool ns3_slow_start_bug = false;
  };

  Cubic() : Cubic(Config{}) {}
  explicit Cubic(const Config& cfg) : cfg_(cfg), cwnd_(cfg.initial_cwnd) {}

  void init(const tcp::SenderState& st) override {
    (void)st;
    cwnd_ = cfg_.initial_cwnd;
    reset_epoch();
  }

  void on_ack(const tcp::SenderState& st, const tcp::AckEvent& ev,
              const tcp::RateSample& rs) override {
    (void)rs;
    if (st.in_recovery || st.in_loss) return;
    std::int64_t acked = ev.newly_acked;
    if (acked <= 0) return;

    if (cwnd_ < ssthresh_) {
      if (cfg_.ns3_slow_start_bug) {
        // ns-3 TcpCubic: unconditional growth by segments acked, then done.
        // No clamp at ssthresh — the §4.2 bug.
        cwnd_ += acked;
        return;
      }
      // Linux tcp_slow_start: clamp at ssthresh, remainder goes to CA.
      const std::int64_t grow = std::min(acked, ssthresh_ - cwnd_);
      cwnd_ += grow;
      acked -= grow;
      if (acked <= 0) return;
    }
    congestion_avoidance(st, acked);
  }

  void on_congestion_event(const tcp::SenderState& st,
                           tcp::CongestionEvent ev) override {
    switch (ev) {
      case tcp::CongestionEvent::kEnterRecovery:
        multiplicative_decrease();
        cwnd_ = ssthresh_;
        break;
      case tcp::CongestionEvent::kRto:
        multiplicative_decrease();
        cwnd_ = 1;
        reset_epoch();
        break;
      case tcp::CongestionEvent::kExitRecovery:
      case tcp::CongestionEvent::kExitLoss:
        break;
    }
    (void)st;
  }

  std::int64_t cwnd_segments() const override { return cwnd_; }
  std::int64_t ssthresh_segments() const override { return ssthresh_; }
  const char* name() const override {
    return cfg_.ns3_slow_start_bug ? "cubic-ns3bug" : "cubic";
  }

  /// Behavioral-coverage state: 0 = slow start, 1 = concave cubic growth
  /// (below the last w_max), 2 = convex probing past it.
  int probe_state() const override {
    if (cwnd_ < ssthresh_) return 0;
    return static_cast<double>(cwnd_) < w_max_ ? 1 : 2;
  }

  /// Last computed cubic target window (introspection for tests).
  double last_target() const { return last_target_; }

 private:
  void reset_epoch() {
    epoch_start_ = TimeNs(-1);
    cwnd_cnt_ = 0;
    k_ = 0.0;
    origin_point_ = 0;
  }

  void multiplicative_decrease() {
    // Fast convergence: release bandwidth faster when the loss happened
    // below the previous maximum.
    if (cfg_.fast_convergence && cwnd_ < w_max_) {
      w_max_ = static_cast<double>(cwnd_) * (2.0 - cfg_.beta) / 2.0;
    } else {
      w_max_ = static_cast<double>(cwnd_);
    }
    ssthresh_ = std::max<std::int64_t>(
        static_cast<std::int64_t>(static_cast<double>(cwnd_) * cfg_.beta), 2);
    epoch_start_ = TimeNs(-1);
  }

  void congestion_avoidance(const tcp::SenderState& st, std::int64_t acked) {
    const TimeNs now = st.now;
    if (epoch_start_ < TimeNs::zero()) {
      epoch_start_ = now;
      if (static_cast<double>(cwnd_) < w_max_) {
        k_ = std::cbrt((w_max_ - static_cast<double>(cwnd_)) / cfg_.c);
        origin_point_ = w_max_;
      } else {
        k_ = 0.0;
        origin_point_ = static_cast<double>(cwnd_);
      }
    }
    // Predict the window one RTT ahead (RFC 8312 §4.1/4.2).
    const double rtt_s =
        st.srtt >= DurationNs::zero() ? st.srtt.to_seconds() : 0.0;
    const double t = (now - epoch_start_).to_seconds() + rtt_s;
    const double dt = t - k_;
    const double target = origin_point_ + cfg_.c * dt * dt * dt;
    last_target_ = target;

    std::int64_t cnt;  // ACKs needed per +1 segment
    if (target > static_cast<double>(cwnd_)) {
      cnt = static_cast<std::int64_t>(
          static_cast<double>(cwnd_) / (target - static_cast<double>(cwnd_)));
    } else {
      cnt = 100 * cwnd_;  // effectively frozen
    }
    cnt = std::max<std::int64_t>(cnt, 2);
    cwnd_cnt_ += acked;
    while (cwnd_cnt_ >= cnt) {
      cwnd_cnt_ -= cnt;
      ++cwnd_;
    }
  }

  Config cfg_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_ = std::numeric_limits<std::int64_t>::max() / 2;
  std::int64_t cwnd_cnt_ = 0;
  double w_max_ = 0.0;
  double origin_point_ = 0.0;
  double k_ = 0.0;
  TimeNs epoch_start_ = TimeNs(-1);
  double last_target_ = 0.0;
};

}  // namespace ccfuzz::cca
