// Bottleneck link models.
//
// TraceDrivenLink implements MahiMahi semantics (paper §3.2): a link trace is
// a sorted sequence of timestamps; each timestamp is an opportunity to
// transmit exactly one packet from the queue. If the queue is empty the
// opportunity is wasted. This is the representation the GA mutates in link
// fuzzing mode.
//
// FixedRateLink serializes packets back-to-back at a constant rate; it is the
// bottleneck used in traffic fuzzing mode (§3.3), where the trace controls
// cross traffic instead.
#pragma once

#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace ccfuzz::net {

/// Invoked when a packet finishes propagation and arrives at the sink.
using DeliveryFn = std::function<void(Packet&&)>;
/// Invoked at the instant a packet leaves the bottleneck (egress), before
/// propagation. Used for egress-rate recording.
using EgressFn = std::function<void(const Packet&, TimeNs)>;

/// Common interface for bottleneck links draining a DropTailQueue.
class BottleneckLink {
 public:
  virtual ~BottleneckLink() = default;
  // pool_ may point at own_pool_; a compiler-generated copy would dangle.
  BottleneckLink(const BottleneckLink&) = delete;
  BottleneckLink& operator=(const BottleneckLink&) = delete;

  /// Schedules initial service activity. Call once before running.
  virtual void start() = 0;

  /// Sink-side delivery callback (after propagation delay).
  void set_delivery(DeliveryFn fn) { deliver_ = std::move(fn); }
  /// Egress observation callback (at transmission completion instant).
  void set_egress_observer(EgressFn fn) { egress_ = std::move(fn); }

  /// Packets transmitted so far.
  std::int64_t packets_served() const { return served_; }

 protected:
  /// Packets in flight on the link park in `pool` (shared warm slab across
  /// runs via scenario::RunContext); a private pool is used when null.
  BottleneckLink(sim::Simulator& sim, DropTailQueue& queue,
                 DurationNs prop_delay, PacketPool* pool)
      : sim_(sim), queue_(queue), prop_delay_(prop_delay),
        pool_(pool != nullptr ? pool : &own_pool_) {}

  /// Transmits one packet (already dequeued) at time `egress`: notifies the
  /// egress observer and schedules sink delivery after propagation.
  void complete_transmission(Packet&& p, TimeNs egress);

  PacketPool& pool() { return *pool_; }

  /// Shared part of the per-run reset: zeroed counters, new delay. The
  /// observer/delivery callbacks are kept (they outlive runs in a reusable
  /// harness).
  void reset_base(DurationNs prop_delay) {
    prop_delay_ = prop_delay;
    served_ = 0;
  }

  sim::Simulator& sim_;
  DropTailQueue& queue_;
  DurationNs prop_delay_;
  DeliveryFn deliver_;
  EgressFn egress_;
  PacketPool own_pool_;
  PacketPool* pool_;
  std::int64_t served_ = 0;
};

/// MahiMahi-style trace-driven link: one service opportunity per timestamp.
class TraceDrivenLink final : public BottleneckLink {
 public:
  /// `service_times` must be sorted ascending. Opportunities before start()
  /// is called are honoured as long as they are >= the current sim time.
  TraceDrivenLink(sim::Simulator& sim, DropTailQueue& queue,
                  DurationNs prop_delay, std::vector<TimeNs> service_times,
                  PacketPool* pool = nullptr);

  void start() override;

  /// Rearms the link for a fresh run with a new service trace, reusing the
  /// trace storage's capacity. No opportunity may still be scheduled
  /// (Simulator::reset first).
  void reset(DurationNs prop_delay, std::span<const TimeNs> service_times);

  /// Number of service opportunities that found an empty queue.
  std::int64_t wasted_opportunities() const { return wasted_; }

 private:
  void on_opportunity();

  std::vector<TimeNs> times_;
  std::size_t next_ = 0;
  std::int64_t wasted_ = 0;
};

/// Constant-rate store-and-forward link.
class FixedRateLink final : public BottleneckLink {
 public:
  FixedRateLink(sim::Simulator& sim, DropTailQueue& queue,
                DurationNs prop_delay, DataRate rate,
                PacketPool* pool = nullptr);

  void start() override;

  /// Rearms the link for a fresh run (possibly with a new rate) and
  /// re-registers its queue non-empty notifier — a reusable harness may have
  /// pointed the queue at a different link in between.
  void reset(DurationNs prop_delay, DataRate rate);

 private:
  void maybe_begin_service();
  void on_transmit_done(Packet&& p);

  DataRate rate_;
  bool busy_ = false;
};

}  // namespace ccfuzz::net
