// Packet representation shared by the network and TCP layers.
//
// Sequence numbers are segment-granularity (1 seq == 1 MSS-sized segment),
// matching the paper's packet-count trace model. The TCP header carries a
// unique per-transmission id so retransmissions of the same segment are
// distinguishable end-to-end (needed to reproduce the BBR spurious-
// retransmission interaction, §4.1).
#pragma once

#include <array>
#include <cstdint>

#include "util/time.h"

namespace ccfuzz::net {

/// Identifies which *kind* of source a packet belongs to on the shared
/// bottleneck. Multi-flow scenarios additionally carry a per-flow index
/// (Packet::flow_index) distinguishing the competing CCA flows.
enum class FlowId : std::uint8_t {
  kCcaData = 0,      ///< data segments of a CCA flow under test
  kCrossTraffic = 1, ///< fuzzer-injected cross traffic
  kAck = 2,          ///< reverse-path acknowledgements
};

/// Number of distinct FlowId values (for per-kind stat arrays).
inline constexpr std::size_t kFlowCount = 3;

/// Index type for real flows sharing the bottleneck. CCA flows are numbered
/// 0..N-1 in ScenarioConfig::flows order; the cross-traffic aggregate is
/// assigned index N by the scenario wiring.
using FlowIndex = std::uint16_t;

/// Half-open SACK block [start, end) in segment sequence numbers.
struct SackBlock {
  std::int64_t start = 0;
  std::int64_t end = 0;
  bool empty() const { return end <= start; }
  bool operator==(const SackBlock&) const = default;
};

/// Transport header carried by data segments and ACKs.
struct TcpHeader {
  std::int64_t seq = -1;    ///< data: segment sequence number; -1 if n/a
  std::int64_t tx_id = -1;  ///< data: unique transmission instance id
  std::int64_t ack = -1;    ///< ack: next expected segment seq; -1 if n/a
  std::int64_t acked_tx_id = -1;  ///< ack: tx_id of the segment that triggered it
  /// ack: advertised receive window in segments from `ack` (flow control);
  /// -1 means "not carried" (treated as unlimited).
  std::int64_t wnd = -1;
  std::array<SackBlock, 4> sacks{};  ///< ack: SACK blocks (most recent first)
  int n_sacks = 0;
};

/// A simulated packet. Value type; moved through queues and links.
struct Packet {
  std::uint64_t id = 0;          ///< unique per simulation
  FlowId flow = FlowId::kCcaData;
  FlowIndex flow_index = 0;      ///< which real flow (see FlowIndex)
  std::int32_t size_bytes = 1500;
  TimeNs created_at;             ///< when the source emitted it
  TimeNs enqueued_at;            ///< arrival time at the bottleneck queue
  TcpHeader tcp;
};

/// Default frame size used throughout (1500 B ⇒ 1 ms at 12 Mbps).
inline constexpr std::int32_t kDefaultPacketBytes = 1500;

}  // namespace ccfuzz::net
