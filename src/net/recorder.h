// Records per-packet events at the bottleneck for post-run analysis.
//
// Everything the paper plots (ingress/egress rates, queuing delay, drops —
// Figures 4a/4b/4e) derives from these records; scoring functions (§3.4)
// consume them too.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/time.h"

namespace ccfuzz::net {

/// One bottleneck event: a packet arriving at (ingress), departing from
/// (egress), or being dropped at the gateway queue.
struct PacketEvent {
  TimeNs time;
  FlowId flow;
  std::int32_t size_bytes;
};

/// A queuing-delay sample: packet egress time and the delay it experienced
/// in the gateway queue (egress − enqueue).
struct DelaySample {
  TimeNs time;    ///< egress instant
  FlowId flow;
  DurationNs queue_delay;
};

/// Accumulates bottleneck events during a run. Plain data; attach via the
/// queue/link callbacks (see scenario::Dumbbell).
class BottleneckRecorder {
 public:
  void record_ingress(const Packet& p, TimeNs now) {
    ingress_.push_back({now, p.flow, p.size_bytes});
  }
  void record_drop(const Packet& p, TimeNs now) {
    drops_.push_back({now, p.flow, p.size_bytes});
  }
  void record_egress(const Packet& p, TimeNs now) {
    egress_.push_back({now, p.flow, p.size_bytes});
    delays_.push_back({now, p.flow, now - p.enqueued_at});
  }

  const std::vector<PacketEvent>& ingress() const { return ingress_; }
  const std::vector<PacketEvent>& egress() const { return egress_; }
  const std::vector<PacketEvent>& drops() const { return drops_; }
  const std::vector<DelaySample>& delays() const { return delays_; }

  /// Egress count for one flow.
  std::int64_t egress_count(FlowId flow) const {
    std::int64_t n = 0;
    for (const auto& e : egress_) n += (e.flow == flow) ? 1 : 0;
    return n;
  }

 private:
  std::vector<PacketEvent> ingress_;
  std::vector<PacketEvent> egress_;
  std::vector<PacketEvent> drops_;
  std::vector<DelaySample> delays_;
};

}  // namespace ccfuzz::net
