// Records per-packet events at the bottleneck for post-run analysis.
//
// Everything the paper plots (ingress/egress rates, queuing delay, drops —
// Figures 4a/4b/4e) derives from these records; scoring functions (§3.4)
// consume them too. Records carry both the packet kind (FlowId) and the real
// flow index, so multi-flow scenarios can be analysed per competing flow.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/time.h"

namespace ccfuzz::net {

/// One bottleneck event: a packet arriving at (ingress), departing from
/// (egress), or being dropped at the gateway queue.
struct PacketEvent {
  TimeNs time;
  FlowId flow;
  FlowIndex flow_index;
  std::int32_t size_bytes;
};

/// A queuing-delay sample: packet egress time and the delay it experienced
/// in the gateway queue (egress − enqueue).
struct DelaySample {
  TimeNs time;    ///< egress instant
  FlowId flow;
  FlowIndex flow_index;
  DurationNs queue_delay;
};

/// Accumulates bottleneck events during a run. Plain data; attach via the
/// queue/link callbacks (see scenario::Dumbbell). Counters are maintained
/// incrementally so count queries are O(1), both per packet kind (FlowId)
/// and per real flow index (set_flow_count sizes that table); the event
/// vectors stay around for plotting and scoring.
class BottleneckRecorder {
 public:
  void record_ingress(const Packet& p, TimeNs now) {
    ++ingress_n_[kind_index(p.flow)];
    bump(flow_ingress_n_, p.flow_index);
    if (record_events_) {
      ingress_.push_back({now, p.flow, p.flow_index, p.size_bytes});
    }
  }
  void record_drop(const Packet& p, TimeNs now) {
    ++drop_n_[kind_index(p.flow)];
    bump(flow_drop_n_, p.flow_index);
    if (record_events_) {
      drops_.push_back({now, p.flow, p.flow_index, p.size_bytes});
    }
  }
  void record_egress(const Packet& p, TimeNs now) {
    ++egress_n_[kind_index(p.flow)];
    bump(flow_egress_n_, p.flow_index);
    if (record_events_) {
      egress_.push_back({now, p.flow, p.flow_index, p.size_bytes});
      delays_.push_back({now, p.flow, p.flow_index, now - p.enqueued_at});
    }
  }

  /// When disabled, record_* maintain only the O(1) counters and the event
  /// vectors stay empty — the ScenarioConfig::RecordMode::kMetricsOnly
  /// fuzzing configuration (streaming summaries live in
  /// analysis::StreamingMetrics). Enabled by default for standalone use.
  void set_record_events(bool on) { record_events_ = on; }
  bool record_events() const { return record_events_; }

  const std::vector<PacketEvent>& ingress() const { return ingress_; }
  const std::vector<PacketEvent>& egress() const { return egress_; }
  const std::vector<PacketEvent>& drops() const { return drops_; }
  const std::vector<DelaySample>& delays() const { return delays_; }

  /// Per-kind event counts, O(1).
  std::int64_t ingress_count(FlowId flow) const {
    return ingress_n_[kind_index(flow)];
  }
  std::int64_t egress_count(FlowId flow) const {
    return egress_n_[kind_index(flow)];
  }
  std::int64_t drop_count(FlowId flow) const {
    return drop_n_[kind_index(flow)];
  }

  /// Sizes the per-real-flow counter table (CCA flows 0..n-1 plus any
  /// cross-traffic index). Indices beyond the table are counted only in the
  /// per-kind totals.
  void set_flow_count(std::size_t n) {
    flow_ingress_n_.assign(n, 0);
    flow_egress_n_.assign(n, 0);
    flow_drop_n_.assign(n, 0);
  }
  std::size_t flow_count() const { return flow_egress_n_.size(); }

  /// Per-real-flow event counts, O(1); 0 for indices outside the table.
  std::int64_t flow_ingress_count(FlowIndex f) const {
    return f < flow_ingress_n_.size() ? flow_ingress_n_[f] : 0;
  }
  std::int64_t flow_egress_count(FlowIndex f) const {
    return f < flow_egress_n_.size() ? flow_egress_n_[f] : 0;
  }
  std::int64_t flow_drop_count(FlowIndex f) const {
    return f < flow_drop_n_.size() ? flow_drop_n_[f] : 0;
  }

  /// Discards all records but keeps vector capacity (RunContext reuse).
  void clear() {
    ingress_.clear();
    egress_.clear();
    drops_.clear();
    delays_.clear();
    ingress_n_.fill(0);
    egress_n_.fill(0);
    drop_n_.fill(0);
    flow_ingress_n_.clear();
    flow_egress_n_.clear();
    flow_drop_n_.clear();
  }

  /// Pre-sizes the vectors for roughly `expected_packets` bottleneck
  /// traversals so first-run growth doesn't skew measurements.
  void reserve(std::size_t expected_packets) {
    ingress_.reserve(expected_packets);
    egress_.reserve(expected_packets);
    delays_.reserve(expected_packets);
    drops_.reserve(expected_packets / 8 + 16);
  }

 private:
  static std::size_t kind_index(FlowId f) {
    return static_cast<std::size_t>(f);
  }
  static void bump(std::vector<std::int64_t>& v, FlowIndex f) {
    if (f < v.size()) ++v[f];
  }

  bool record_events_ = true;
  std::vector<PacketEvent> ingress_;
  std::vector<PacketEvent> egress_;
  std::vector<PacketEvent> drops_;
  std::vector<DelaySample> delays_;
  std::array<std::int64_t, kFlowCount> ingress_n_{};
  std::array<std::int64_t, kFlowCount> egress_n_{};
  std::array<std::int64_t, kFlowCount> drop_n_{};
  std::vector<std::int64_t> flow_ingress_n_;
  std::vector<std::int64_t> flow_egress_n_;
  std::vector<std::int64_t> flow_drop_n_;
};

}  // namespace ccfuzz::net
