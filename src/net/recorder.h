// Records per-packet events at the bottleneck for post-run analysis.
//
// Everything the paper plots (ingress/egress rates, queuing delay, drops —
// Figures 4a/4b/4e) derives from these records; scoring functions (§3.4)
// consume them too.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "util/time.h"

namespace ccfuzz::net {

/// One bottleneck event: a packet arriving at (ingress), departing from
/// (egress), or being dropped at the gateway queue.
struct PacketEvent {
  TimeNs time;
  FlowId flow;
  std::int32_t size_bytes;
};

/// A queuing-delay sample: packet egress time and the delay it experienced
/// in the gateway queue (egress − enqueue).
struct DelaySample {
  TimeNs time;    ///< egress instant
  FlowId flow;
  DurationNs queue_delay;
};

/// Accumulates bottleneck events during a run. Plain data; attach via the
/// queue/link callbacks (see scenario::Dumbbell). Per-flow counters are
/// maintained incrementally so count queries are O(1); the event vectors
/// stay around for plotting and scoring.
class BottleneckRecorder {
 public:
  void record_ingress(const Packet& p, TimeNs now) {
    ++ingress_n_[flow_index(p.flow)];
    ingress_.push_back({now, p.flow, p.size_bytes});
  }
  void record_drop(const Packet& p, TimeNs now) {
    ++drop_n_[flow_index(p.flow)];
    drops_.push_back({now, p.flow, p.size_bytes});
  }
  void record_egress(const Packet& p, TimeNs now) {
    ++egress_n_[flow_index(p.flow)];
    egress_.push_back({now, p.flow, p.size_bytes});
    delays_.push_back({now, p.flow, now - p.enqueued_at});
  }

  const std::vector<PacketEvent>& ingress() const { return ingress_; }
  const std::vector<PacketEvent>& egress() const { return egress_; }
  const std::vector<PacketEvent>& drops() const { return drops_; }
  const std::vector<DelaySample>& delays() const { return delays_; }

  /// Per-flow event counts, O(1).
  std::int64_t ingress_count(FlowId flow) const {
    return ingress_n_[flow_index(flow)];
  }
  std::int64_t egress_count(FlowId flow) const {
    return egress_n_[flow_index(flow)];
  }
  std::int64_t drop_count(FlowId flow) const {
    return drop_n_[flow_index(flow)];
  }

  /// Discards all records but keeps vector capacity (RunContext reuse).
  void clear() {
    ingress_.clear();
    egress_.clear();
    drops_.clear();
    delays_.clear();
    ingress_n_.fill(0);
    egress_n_.fill(0);
    drop_n_.fill(0);
  }

  /// Pre-sizes the vectors for roughly `expected_packets` bottleneck
  /// traversals so first-run growth doesn't skew measurements.
  void reserve(std::size_t expected_packets) {
    ingress_.reserve(expected_packets);
    egress_.reserve(expected_packets);
    delays_.reserve(expected_packets);
    drops_.reserve(expected_packets / 8 + 16);
  }

 private:
  static std::size_t flow_index(FlowId f) {
    return static_cast<std::size_t>(f);
  }

  std::vector<PacketEvent> ingress_;
  std::vector<PacketEvent> egress_;
  std::vector<PacketEvent> drops_;
  std::vector<DelaySample> delays_;
  std::array<std::int64_t, kFlowCount> ingress_n_{};
  std::array<std::int64_t, kFlowCount> egress_n_{};
  std::array<std::int64_t, kFlowCount> drop_n_{};
};

}  // namespace ccfuzz::net
