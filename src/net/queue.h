// Fixed-size drop-tail FIFO queue — the gateway buffer of the paper's
// dumbbell (§3.1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "util/time.h"

namespace ccfuzz::net {

/// Per-flow enqueue/drop counters.
struct QueueStats {
  std::array<std::int64_t, kFlowCount> enqueued{};
  std::array<std::int64_t, kFlowCount> dropped{};
  std::array<std::int64_t, kFlowCount> dequeued{};
  std::int64_t total_enqueued() const {
    std::int64_t s = 0;
    for (auto v : enqueued) s += v;
    return s;
  }
  std::int64_t total_dropped() const {
    std::int64_t s = 0;
    for (auto v : dropped) s += v;
    return s;
  }
};

/// Drop-tail FIFO with a fixed capacity in packets. Backed by a fixed ring
/// buffer sized at construction, so enqueue/dequeue never allocate (a
/// std::deque backing allocated a fresh chunk every few packets).
class DropTailQueue {
 public:
  /// `capacity` is the maximum number of queued packets (> 0).
  explicit DropTailQueue(std::size_t capacity)
      : capacity_(capacity), ring_(capacity) {}

  /// Attempts to enqueue; returns false (and counts a drop) when full.
  /// Fires the non-empty notifier on an empty→non-empty transition.
  bool try_enqueue(Packet p, TimeNs now) {
    if (count_ >= capacity_) {
      ++stats_.dropped[static_cast<std::size_t>(p.flow)];
      if (on_drop_) on_drop_(p, now);
      return false;
    }
    p.enqueued_at = now;
    ++stats_.enqueued[static_cast<std::size_t>(p.flow)];
    const bool was_empty = count_ == 0;
    ring_[tail_] = std::move(p);
    if (++tail_ == capacity_) tail_ = 0;
    ++count_;
    if (was_empty && on_nonempty_) on_nonempty_();
    return true;
  }

  /// Removes and returns the head packet, or nullopt when empty.
  std::optional<Packet> dequeue() {
    if (count_ == 0) return std::nullopt;
    Packet p = std::move(ring_[head_]);
    if (++head_ == capacity_) head_ = 0;
    --count_;
    ++stats_.dequeued[static_cast<std::size_t>(p.flow)];
    return p;
  }

  /// Returns the queue to empty with fresh stats (and a new capacity),
  /// reusing the ring storage when the capacity is unchanged. Notifier
  /// callbacks are kept — reusable harnesses (scenario::Dumbbell) rebind
  /// them explicitly when the wiring changes.
  void reset(std::size_t capacity) {
    if (capacity != capacity_) {
      capacity_ = capacity;
      ring_.resize(capacity);
    }
    head_ = tail_ = count_ = 0;
    stats_ = QueueStats{};
  }

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return count_ == 0; }
  const QueueStats& stats() const { return stats_; }

  /// Called on every empty→non-empty transition (used by rate-based links to
  /// resume draining).
  void set_nonempty_notifier(std::function<void()> fn) { on_nonempty_ = std::move(fn); }
  /// Called for every dropped packet.
  void set_drop_notifier(std::function<void(const Packet&, TimeNs)> fn) {
    on_drop_ = std::move(fn);
  }

 private:
  std::size_t capacity_;
  std::vector<Packet> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
  QueueStats stats_;
  std::function<void()> on_nonempty_;
  std::function<void(const Packet&, TimeNs)> on_drop_;
};

}  // namespace ccfuzz::net
