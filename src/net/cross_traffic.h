// Cross-traffic injector for traffic fuzzing (paper §3.3).
//
// The fuzzer's traffic trace is a sequence of timestamps; at each timestamp
// one cross-traffic packet is pushed into the bottleneck queue. Packets that
// find the queue full are dropped and counted — the trace score uses both the
// total injected and the drops to steer the GA toward minimal traffic
// vectors (§3.4).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/packet.h"
#include "net/queue.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace ccfuzz::net {

/// Schedules injection of one packet per trace timestamp into a queue.
class CrossTrafficInjector {
 public:
  /// `times` must be sorted ascending. Packets use `packet_bytes` frames and
  /// carry `flow_index` (the scenario assigns the aggregate the index after
  /// the last CCA flow) so recorder per-flow counters see a real flow id.
  CrossTrafficInjector(sim::Simulator& sim, DropTailQueue& queue,
                       std::vector<TimeNs> times,
                       std::int32_t packet_bytes = kDefaultPacketBytes,
                       FlowIndex flow_index = 1)
      : sim_(sim), queue_(queue), times_(std::move(times)),
        packet_bytes_(packet_bytes), flow_index_(flow_index) {}

  /// Schedules all injections. Call once before running the simulation.
  void start() {
    for (const TimeNs t : times_) {
      sim_.schedule_at(t, [this] { inject_one(); });
    }
  }

  /// Rearms the injector for a fresh run with a new schedule, reusing the
  /// schedule storage's capacity. Previously scheduled injections must be
  /// gone (Simulator::reset first); the observer callback is kept.
  void reset(std::span<const TimeNs> times, std::int32_t packet_bytes,
             FlowIndex flow_index) {
    times_.assign(times.begin(), times.end());
    packet_bytes_ = packet_bytes;
    flow_index_ = flow_index;
    sent_ = 0;
    dropped_ = 0;
  }

  std::int64_t packets_sent() const { return sent_; }
  std::int64_t packets_dropped() const { return dropped_; }
  std::int64_t packets_queued() const { return sent_ - dropped_; }

  /// Observes every injected packet at the instant it reaches the gateway
  /// (before the enqueue attempt). Used for ingress-rate recording.
  void set_inject_observer(std::function<void(const Packet&, TimeNs)> fn) {
    on_inject_ = std::move(fn);
  }

 private:
  void inject_one() {
    Packet p;
    p.id = 0x8000000000000000ULL + static_cast<std::uint64_t>(sent_);
    p.flow = FlowId::kCrossTraffic;
    p.flow_index = flow_index_;
    p.size_bytes = packet_bytes_;
    p.created_at = sim_.now();
    ++sent_;
    if (on_inject_) on_inject_(p, sim_.now());
    if (!queue_.try_enqueue(std::move(p), sim_.now())) ++dropped_;
  }

  sim::Simulator& sim_;
  DropTailQueue& queue_;
  std::vector<TimeNs> times_;
  std::int32_t packet_bytes_;
  FlowIndex flow_index_;
  std::function<void(const Packet&, TimeNs)> on_inject_;
  std::int64_t sent_ = 0;
  std::int64_t dropped_ = 0;
};

}  // namespace ccfuzz::net
