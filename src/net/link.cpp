#include "net/link.h"

#include <cassert>

namespace ccfuzz::net {

void BottleneckLink::complete_transmission(Packet&& p, TimeNs egress) {
  ++served_;
  if (egress_) egress_(p, egress);
  if (deliver_) {
    // Move the packet into the delayed delivery event.
    sim_.schedule_at(egress + prop_delay_,
                     [this, pkt = std::move(p)]() mutable { deliver_(std::move(pkt)); });
  }
}

TraceDrivenLink::TraceDrivenLink(sim::Simulator& sim, DropTailQueue& queue,
                                 DurationNs prop_delay,
                                 std::vector<TimeNs> service_times)
    : BottleneckLink(sim, queue, prop_delay), times_(std::move(service_times)) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < times_.size(); ++i) {
    assert(times_[i - 1] <= times_[i] && "service trace must be sorted");
  }
#endif
}

void TraceDrivenLink::start() {
  if (next_ < times_.size()) {
    sim_.schedule_at(times_[next_], [this] { on_opportunity(); });
  }
}

void TraceDrivenLink::on_opportunity() {
  const TimeNs now = sim_.now();
  if (auto p = queue_.dequeue()) {
    complete_transmission(std::move(*p), now);
  } else {
    ++wasted_;
  }
  ++next_;
  if (next_ < times_.size()) {
    sim_.schedule_at(times_[next_], [this] { on_opportunity(); });
  }
}

FixedRateLink::FixedRateLink(sim::Simulator& sim, DropTailQueue& queue,
                             DurationNs prop_delay, DataRate rate)
    : BottleneckLink(sim, queue, prop_delay), rate_(rate) {
  queue_.set_nonempty_notifier([this] { maybe_begin_service(); });
}

void FixedRateLink::start() { maybe_begin_service(); }

void FixedRateLink::maybe_begin_service() {
  if (busy_ || queue_.empty()) return;
  auto p = queue_.dequeue();
  busy_ = true;
  const DurationNs tx = rate_.transfer_time(p->size_bytes);
  sim_.schedule_in(tx, [this, pkt = std::move(*p)]() mutable {
    on_transmit_done(std::move(pkt));
  });
}

void FixedRateLink::on_transmit_done(Packet&& p) {
  complete_transmission(std::move(p), sim_.now());
  busy_ = false;
  maybe_begin_service();
}

}  // namespace ccfuzz::net
