#include "net/link.h"

#include <cassert>

namespace ccfuzz::net {

void BottleneckLink::complete_transmission(Packet&& p, TimeNs egress) {
  ++served_;
  if (egress_) egress_(p, egress);
  if (deliver_) {
    // Park the packet in the pool; the delivery event carries only the index.
    const PacketPool::Index idx = pool_->put(std::move(p));
    sim_.schedule_at(egress + prop_delay_,
                     [this, idx] { deliver_(pool_->take(idx)); });
  }
}

TraceDrivenLink::TraceDrivenLink(sim::Simulator& sim, DropTailQueue& queue,
                                 DurationNs prop_delay,
                                 std::vector<TimeNs> service_times,
                                 PacketPool* pool)
    : BottleneckLink(sim, queue, prop_delay, pool),
      times_(std::move(service_times)) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < times_.size(); ++i) {
    assert(times_[i - 1] <= times_[i] && "service trace must be sorted");
  }
#endif
}

void TraceDrivenLink::reset(DurationNs prop_delay,
                            std::span<const TimeNs> service_times) {
  reset_base(prop_delay);
  times_.assign(service_times.begin(), service_times.end());
#ifndef NDEBUG
  for (std::size_t i = 1; i < times_.size(); ++i) {
    assert(times_[i - 1] <= times_[i] && "service trace must be sorted");
  }
#endif
  next_ = 0;
  wasted_ = 0;
}

void TraceDrivenLink::start() {
  if (next_ < times_.size()) {
    sim_.schedule_at(times_[next_], [this] { on_opportunity(); });
  }
}

void TraceDrivenLink::on_opportunity() {
  const TimeNs now = sim_.now();
  if (auto p = queue_.dequeue()) {
    complete_transmission(std::move(*p), now);
  } else {
    ++wasted_;
  }
  ++next_;
  if (next_ < times_.size()) {
    sim_.schedule_at(times_[next_], [this] { on_opportunity(); });
  }
}

FixedRateLink::FixedRateLink(sim::Simulator& sim, DropTailQueue& queue,
                             DurationNs prop_delay, DataRate rate,
                             PacketPool* pool)
    : BottleneckLink(sim, queue, prop_delay, pool), rate_(rate) {
  queue_.set_nonempty_notifier([this] { maybe_begin_service(); });
}

void FixedRateLink::reset(DurationNs prop_delay, DataRate rate) {
  reset_base(prop_delay);
  rate_ = rate;
  busy_ = false;
  queue_.set_nonempty_notifier([this] { maybe_begin_service(); });
}

void FixedRateLink::start() { maybe_begin_service(); }

void FixedRateLink::maybe_begin_service() {
  if (busy_ || queue_.empty()) return;
  auto p = queue_.dequeue();
  busy_ = true;
  const DurationNs tx = rate_.transfer_time(p->size_bytes);
  const PacketPool::Index idx = pool().put(std::move(*p));
  sim_.schedule_in(tx, [this, idx] { on_transmit_done(pool().take(idx)); });
}

void FixedRateLink::on_transmit_done(Packet&& p) {
  complete_transmission(std::move(p), sim_.now());
  busy_ = false;
  maybe_begin_service();
}

}  // namespace ccfuzz::net
