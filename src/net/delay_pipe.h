// Fixed-delay, infinite-capacity pipe: models uncongested paths (source →
// gateway access links, and the ACK return path in the paper's dumbbell).
#pragma once

#include <functional>
#include <utility>

#include "net/packet.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace ccfuzz::net {

/// Delivers every packet exactly `delay` after send(); preserves ordering
/// (FIFO tie-break in the event queue keeps equal-time packets ordered).
class DelayPipe {
 public:
  DelayPipe(sim::Simulator& sim, DurationNs delay,
            std::function<void(Packet&&)> deliver)
      : sim_(sim), delay_(delay), deliver_(std::move(deliver)) {}

  /// Sends a packet into the pipe at the current simulation time.
  void send(Packet&& p) {
    ++in_flight_;
    sim_.schedule_in(delay_, [this, pkt = std::move(p)]() mutable {
      --in_flight_;
      deliver_(std::move(pkt));
    });
  }

  DurationNs delay() const { return delay_; }
  std::int64_t in_flight() const { return in_flight_; }

 private:
  sim::Simulator& sim_;
  DurationNs delay_;
  std::function<void(Packet&&)> deliver_;
  std::int64_t in_flight_ = 0;
};

}  // namespace ccfuzz::net
