// Fixed-delay, infinite-capacity pipe: models uncongested paths (source →
// gateway access links, and the ACK return path in the paper's dumbbell).
#pragma once

#include <functional>
#include <utility>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace ccfuzz::net {

/// Delivers every packet exactly `delay` after send(); preserves ordering
/// (FIFO tie-break in the event queue keeps equal-time packets ordered).
///
/// In-flight packets park in a PacketPool and the delivery event captures
/// only the pool index, so send() never heap-allocates in steady state. Pass
/// a shared pool to reuse its warm slab across components/runs; by default
/// the pipe owns a private one.
class DelayPipe {
 public:
  DelayPipe(sim::Simulator& sim, DurationNs delay,
            std::function<void(Packet&&)> deliver, PacketPool* pool = nullptr)
      : sim_(sim), delay_(delay), deliver_(std::move(deliver)),
        pool_(pool != nullptr ? pool : &own_pool_) {}

  // pool_ may point at own_pool_; a compiler-generated copy would dangle.
  DelayPipe(const DelayPipe&) = delete;
  DelayPipe& operator=(const DelayPipe&) = delete;

  /// Sends a packet into the pipe at the current simulation time.
  void send(Packet&& p) {
    ++in_flight_;
    const PacketPool::Index idx = pool_->put(std::move(p));
    sim_.schedule_in(delay_, [this, idx] {
      --in_flight_;
      deliver_(pool_->take(idx));
    });
  }

  /// Reinitializes the pipe for a fresh run (possibly with a new delay). Any
  /// scheduled deliveries must already be gone (Simulator::reset); the
  /// delivery callback is kept.
  void reset(DurationNs delay) {
    delay_ = delay;
    in_flight_ = 0;
  }

  DurationNs delay() const { return delay_; }
  std::int64_t in_flight() const { return in_flight_; }

 private:
  sim::Simulator& sim_;
  DurationNs delay_;
  std::function<void(Packet&&)> deliver_;
  PacketPool own_pool_;
  PacketPool* pool_;
  std::int64_t in_flight_ = 0;
};

}  // namespace ccfuzz::net
