// Free-list slab for in-flight packets.
//
// Links and delay pipes used to capture a ~136-byte Packet by value inside
// every delivery lambda, blowing past any inline-callback budget and forcing
// a heap allocation per scheduled packet event. Instead, in-flight packets
// park in this pool and events capture a 4-byte index; once the slab reaches
// its high-water mark, put()/take() never allocate.
//
// Pool state never affects simulation behavior — indices only route storage,
// ordering is owned by the event queue — so sharing one warm pool across
// runs (scenario::RunContext) preserves bit-identical results.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace ccfuzz::net {

/// Fixed-slot packet parking lot with an index free list.
class PacketPool {
 public:
  using Index = std::uint32_t;

  /// Parks a packet; returns its slot index (stable until take()).
  Index put(Packet&& p) {
    Index i;
    if (!free_.empty()) {
      i = free_.back();
      free_.pop_back();
      slab_[i] = std::move(p);
    } else {
      i = static_cast<Index>(slab_.size());
      slab_.push_back(std::move(p));
      // Keep take() allocation-free: the free list can never need more
      // entries than the slab has slots.
      if (free_.capacity() < slab_.capacity()) free_.reserve(slab_.capacity());
    }
    ++in_use_;
    return i;
  }

  /// Removes and returns the packet at `i`, freeing the slot.
  Packet take(Index i) {
    Packet p = std::move(slab_[i]);
    free_.push_back(i);
    --in_use_;
    return p;
  }

  std::size_t in_use() const { return in_use_; }
  /// High-water slot count (includes free slots).
  std::size_t capacity() const { return slab_.size(); }

  /// Pre-grows the slab so the first run doesn't pay incremental growth.
  void reserve(std::size_t n) {
    slab_.reserve(n);
    free_.reserve(n);
  }

  /// Frees every slot (packets abandoned mid-flight when a run is cut off at
  /// its deadline) while keeping slab capacity for the next run.
  void clear() {
    free_.resize(slab_.size());
    for (std::size_t i = 0; i < free_.size(); ++i) {
      free_[i] = static_cast<Index>(free_.size() - 1 - i);
    }
    in_use_ = 0;
  }

 private:
  std::vector<Packet> slab_;
  std::vector<Index> free_;
  std::size_t in_use_ = 0;
};

}  // namespace ccfuzz::net
