#include "faultinject/fault_plan.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <thread>

#include "util/logging.h"

namespace ccfuzz::faultinject {
namespace {

constexpr std::array<const char*, static_cast<std::size_t>(FaultSite::kCount)>
    kSiteNames = {"short_write", "rename",          "fsync", "enospc",
                  "low_disk",    "crash_checkpoint", "hang",  "cell_crash"};

bool site_from_string(std::string_view name, FaultSite& out) {
  for (std::size_t i = 0; i < kSiteNames.size(); ++i) {
    if (name == kSiteNames[i]) {
      out = static_cast<FaultSite>(i);
      return true;
    }
  }
  return false;
}

/// Filesystem-safe latch file name identifying one rule.
std::string latch_key(const FaultRule& r) {
  std::string key = r.role.empty() ? "any" : r.role;
  key += '_';
  key += to_string(r.site);
  if (!r.arg.empty()) {
    key += '_';
    for (char c : r.arg) {
      key += (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
              c == '-' || c == '_')
                 ? c
                 : '_';
    }
  }
  key += '_';
  key += std::to_string(r.trigger);
  return key;
}

/// The injection engine. Everything here is the slow path — it only runs
/// while a plan is armed, so a mutex is fine (and keeps multi-threaded
/// write_file_atomic callers correct).
struct Injector {
  FaultPlan plan;
  std::string role;
  std::array<int, static_cast<std::size_t>(FaultSite::kCount)> hits{};
  std::vector<int> fired;  ///< per-rule fires this process (latch adds prior)
  std::vector<int> prior;  ///< fires recorded in the latch before we started
  std::mutex mu;
};

Injector* g_injector = nullptr;
std::mutex g_arm_mu;  ///< serializes arm()/disarm() themselves
std::string g_role;   ///< survives re-arming (guarded by g_arm_mu)

/// Reads a latch file's fire count; 0 when missing/garbage.
int read_latch(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return 0;
  int n = 0;
  if (std::fscanf(f, "%d", &n) != 1) n = 0;
  std::fclose(f);
  return n < 0 ? 0 : n;
}

/// Persists a rule's total fire count. Plain POSIX I/O on purpose:
/// write_file_atomic would recurse into the hooks being tested. fsync'd so
/// the count survives the _exit that typically follows.
void write_latch(const std::string& path, int fires) {
  const std::string body = std::to_string(fires) + "\n";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  ssize_t ignored = ::write(fd, body.data(), body.size());
  (void)ignored;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

const char* to_string(FaultSite site) {
  const auto i = static_cast<std::size_t>(site);
  return i < kSiteNames.size() ? kSiteNames[i] : "?";
}

Result<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string elem = spec.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    start = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (elem.empty()) continue;

    if (elem.rfind("latch=", 0) == 0) {
      plan.latch_dir = elem.substr(6);
      if (plan.latch_dir.empty()) {
        return Error::parse("fault plan: empty latch directory in '" + elem +
                            "'");
      }
      continue;
    }

    FaultRule rule;
    std::string body = elem;
    // Optional role prefix. Cell names may contain '.', '-' but never ':',
    // so the first ':' unambiguously ends a role.
    if (const std::size_t colon = body.find(':');
        colon != std::string::npos) {
      rule.role = body.substr(0, colon);
      body = body.substr(colon + 1);
    }
    const std::size_t at = body.find('@');
    if (at == std::string::npos) {
      return Error::parse("fault plan: missing '@trigger' in '" + elem + "'");
    }
    std::string site_token = body.substr(0, at);
    if (const std::size_t eq = site_token.find('=');
        eq != std::string::npos) {
      rule.arg = site_token.substr(eq + 1);
      site_token = site_token.substr(0, eq);
    }
    if (!site_from_string(site_token, rule.site)) {
      return Error::parse("fault plan: unknown site '" + site_token +
                          "' in '" + elem + "'");
    }
    if (rule.site == FaultSite::kCellCrash && rule.arg.empty()) {
      return Error::parse("fault plan: cell_crash needs '=<cell name>' in '" +
                          elem + "'");
    }
    std::string trig = body.substr(at + 1);
    int count = 1;
    if (const std::size_t star = trig.find('*'); star != std::string::npos) {
      count = std::atoi(trig.substr(star + 1).c_str());
      trig = trig.substr(0, star);
    }
    rule.trigger = std::atoi(trig.c_str());
    rule.count = count;
    if (rule.trigger < 1 || rule.count < 1) {
      return Error::parse("fault plan: trigger/count must be >= 1 in '" +
                          elem + "'");
    }
    plan.rules.push_back(std::move(rule));
  }
  if (plan.rules.empty() && plan.latch_dir.empty()) {
    return Error::parse("fault plan: no rules in '" + spec + "'");
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  if (!latch_dir.empty()) out = "latch=" + latch_dir;
  for (const FaultRule& r : rules) {
    if (!out.empty()) out += ';';
    if (!r.role.empty()) {
      out += r.role;
      out += ':';
    }
    out += faultinject::to_string(r.site);
    if (!r.arg.empty()) {
      out += '=';
      out += r.arg;
    }
    out += '@';
    out += std::to_string(r.trigger);
    if (r.count != 1) {
      out += '*';
      out += std::to_string(r.count);
    }
  }
  return out;
}

namespace detail {

const FaultPlan* g_active = nullptr;

bool should_fire_slow(FaultSite site, std::string_view arg) {
  Injector* inj = g_injector;
  if (!inj) return false;
  std::lock_guard<std::mutex> lock(inj->mu);
  // kCellCrash hits are counted per matching cell, not globally: "the 2nd
  // generation of cell X" must not depend on how many other cells ran.
  int hit = 0;
  if (site != FaultSite::kCellCrash) {
    hit = ++inj->hits[static_cast<std::size_t>(site)];
  }
  bool fire = false;
  for (std::size_t i = 0; i < inj->plan.rules.size(); ++i) {
    const FaultRule& r = inj->plan.rules[i];
    if (r.site != site) continue;
    if (!r.role.empty() && r.role != inj->role) continue;
    if (site == FaultSite::kCellCrash) {
      if (r.arg != arg) continue;
      hit = ++inj->fired[i];  // reuse as this rule's private hit counter
      const int effective = hit + inj->prior[i];
      if (effective >= r.trigger && effective < r.trigger + r.count) {
        if (!inj->plan.latch_dir.empty()) {
          write_latch(inj->plan.latch_dir + "/" + latch_key(r), effective);
        }
        fire = true;
      }
      continue;
    }
    const int effective = hit + inj->prior[i];
    if (effective >= r.trigger && effective < r.trigger + r.count) {
      ++inj->fired[i];
      if (!inj->plan.latch_dir.empty()) {
        // Latch the effective hit index *before* the fault takes effect: a
        // crash that follows resumes the hit line where it died instead of
        // re-firing from scratch in the restarted process.
        write_latch(inj->plan.latch_dir + "/" + latch_key(r), effective);
      }
      fire = true;
    }
  }
  return fire;
}

}  // namespace detail

void arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  detail::g_active = nullptr;
  delete g_injector;
  g_injector = nullptr;
  auto* inj = new Injector;
  inj->plan = std::move(plan);
  inj->role = g_role;
  inj->fired.assign(inj->plan.rules.size(), 0);
  inj->prior.assign(inj->plan.rules.size(), 0);
  if (!inj->plan.latch_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(inj->plan.latch_dir, ec);
    for (std::size_t i = 0; i < inj->plan.rules.size(); ++i) {
      // A latch records *fires*; map them back onto the hit line by treating
      // them as prior hits at the rule's own trigger window. For the common
      // fire-once rules this simply disarms an already-fired rule.
      inj->prior[i] = read_latch(inj->plan.latch_dir + "/" +
                                 latch_key(inj->plan.rules[i]));
    }
  }
  g_injector = inj;
  detail::g_active = &g_injector->plan;
}

void disarm() {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  detail::g_active = nullptr;
  delete g_injector;
  g_injector = nullptr;
}

const FaultPlan* active() { return detail::g_active; }

void set_role(std::string role) {
  std::lock_guard<std::mutex> lock(g_arm_mu);
  g_role = role;
  if (g_injector) {
    std::lock_guard<std::mutex> inner(g_injector->mu);
    g_injector->role = std::move(role);
  }
}

Error arm_from_env() {
  const char* spec = std::getenv("CCFUZZ_FAULT_PLAN");
  if (!spec || !*spec) return Error::success();
  Result<FaultPlan> plan = FaultPlan::parse(spec);
  if (!plan) return plan.error();
  arm(std::move(*plan));
  CCFUZZ_LOG_WARN("fault injection armed: %s",
                  detail::g_active->to_string().c_str());
  return Error::success();
}

void crash_now(FaultSite site) {
  CCFUZZ_LOG_WARN("fault injection: crashing at %s", to_string(site));
  ::_exit(kFaultCrashExit);
}

void hang_now() {
  CCFUZZ_LOG_WARN("fault injection: hanging (waiting for the watchdog)");
  // Long enough that any heartbeat watchdog fires first; sliced so a
  // debugger attaching sees forward progress.
  for (int i = 0; i < 6000; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace ccfuzz::faultinject
