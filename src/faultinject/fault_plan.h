// Deterministic, seedable fault injection for the campaign service.
//
// CC-fuzz's thesis is that systems become robust only when an adversary
// drives them into their failure corners (§1); this layer turns that on our
// own infrastructure. A FaultPlan is a list of rules — fault site × trigger
// count × repeat count — armed process-wide; hooks threaded through
// util/fs, the campaign checkpoint path, and the dist worker consult it and
// fire deterministically on the Nth hit of a site. No real signals, no real
// disk pressure: a "failed fsync" is a typed error returned from the same
// line a real one would, a "crash at checkpoint" is a _exit at the same
// boundary a power cut would hit.
//
// Arming:
//   * In-process (tests): faultinject::arm(plan) / disarm().
//   * Cross-process: the CCFUZZ_FAULT_PLAN environment variable, parsed by
//     arm_from_env() in the ccfuzz CLI — fork/exec'd workers inherit it, so
//     the *real* binary participates in the chaos run.
//
// Zero overhead unarmed: every hook is an inline null-pointer check on a
// process-wide pointer; no allocation, no atomics on the hot path, nothing
// for the steady-state allocation tests to see.
//
// Determinism across restarts: per-site hit counters are process-local, so
// a rule like crash_checkpoint@2 would re-fire in every restarted worker
// forever. A latch directory (`latch=<dir>` plan element) persists each
// rule's fire count to a file *before* the fault takes effect; arm()
// subtracts prior fires, so "crash once at the 2nd checkpoint" means once
// per campaign, not once per process life.
//
// Plan grammar (elements ';'-separated):
//   latch=<dir>                     fire-count persistence directory
//   [role:]site[=arg]@N[*C]         fire on hits N..N+C-1 of `site`
//                                   (C defaults to 1); `role` restricts the
//                                   rule to processes that called
//                                   set_role(role) — "worker", "supervisor"
//   e.g. "latch=/tmp/l;worker:enospc@1;worker:crash_checkpoint@2*1"
//        "worker:cell_crash=reno.traffic.low-utilization@1*99"
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace ccfuzz::faultinject {

/// Exit code of a process killed by an injected crash (kCrashCheckpoint,
/// kCellCrash). Distinct from exec-failure (127) and graceful interrupt (3)
/// so supervisors and tests can attribute the death.
inline constexpr int kFaultCrashExit = 86;

enum class FaultSite {
  kShortWrite = 0,   ///< write() persists a prefix of the body, then fails
  kRenameFail,       ///< rename() into place fails (tmp left behind)
  kFsyncFail,        ///< fsync() fails
  kNoSpace,          ///< write() fails with ENOSPC semantics
  kLowDisk,          ///< free_bytes() reports zero free space
  kCrashCheckpoint,  ///< _exit(kFaultCrashExit) at a checkpoint boundary
  kWorkerHang,       ///< worker stops producing output (watchdog fodder)
  kCellCrash,        ///< _exit while the rule's named cell is active
  kCount,
};

/// Display/parse name of a fault site ("short_write", "enospc", ...).
const char* to_string(FaultSite site);

struct FaultRule {
  FaultSite site = FaultSite::kShortWrite;
  /// 1-based hit index the rule first fires on.
  int trigger = 1;
  /// Consecutive hits that fire, starting at `trigger`.
  int count = 1;
  /// Restricts the rule to processes whose set_role() matches; empty = any.
  std::string role;
  /// kCellCrash only: the campaign cell the rule targets.
  std::string arg;
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  /// When set, fire counts persist to `<latch_dir>/<rule-key>` so rules
  /// survive exec — "fire once" means once per campaign, not per process.
  std::string latch_dir;

  /// Parses the plan grammar documented above. Typed errors: kParse for a
  /// malformed element, unknown site or role-less cell_crash argument.
  static Result<FaultPlan> parse(const std::string& spec);
  /// Reserializes to the parse() grammar (round-trips).
  std::string to_string() const;
};

// --- Process-wide arming -----------------------------------------------------

/// Arms `plan` for this process, replacing any previous plan. Rules whose
/// latch file already records `count` fires are disarmed on the spot.
void arm(FaultPlan plan);
/// Disarms fault injection (hooks return to their single null check).
void disarm();
/// The armed plan, or nullptr. (Hooks use this; tests may inspect it.)
const FaultPlan* active();
/// Tags this process for role-scoped rules ("worker", "supervisor", ...).
void set_role(std::string role);
/// Arms from CCFUZZ_FAULT_PLAN when set; unset is a clean no-op. A malformed
/// plan is returned as a typed error and nothing is armed — a chaos harness
/// must fail loudly, not silently run fault-free.
Error arm_from_env();

// --- Hooks -------------------------------------------------------------------

namespace detail {
/// Non-null only while armed. The single word every hook reads.
extern const FaultPlan* g_active;
bool should_fire_slow(FaultSite site, std::string_view arg);
}  // namespace detail

/// Counts a hit of `site`; true when an armed rule says this hit fails.
/// Unarmed cost: one pointer compare.
inline bool should_fire(FaultSite site) {
  return detail::g_active != nullptr && detail::should_fire_slow(site, {});
}

/// kCellCrash variant: the hit only matches rules whose arg equals `cell`.
inline bool should_fire(FaultSite site, std::string_view cell) {
  return detail::g_active != nullptr && detail::should_fire_slow(site, cell);
}

/// Dies like a power cut: _exit(kFaultCrashExit), no unwinding, no flushes
/// beyond what already reached the kernel.
[[noreturn]] void crash_now(FaultSite site);

/// Simulates a hang: sleeps far longer than any heartbeat timeout (the
/// supervisor's watchdog is expected to SIGKILL us first).
void hang_now();

}  // namespace ccfuzz::faultinject
