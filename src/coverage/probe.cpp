#include "coverage/probe.h"

#include <algorithm>
#include <limits>

namespace ccfuzz::coverage {
namespace {

// Bin-space layout bases (see probe.h for the map).
constexpr std::size_t kTransBase = 0;
constexpr std::size_t kCwndPhaseBase = 64;
constexpr std::size_t kRttBase = 128;
constexpr std::size_t kRttInflationBase = 176;
constexpr std::size_t kEventBase = 192;
constexpr std::size_t kPacingBase = 208;
constexpr std::size_t kOccupancyBase = 224;
constexpr std::size_t kSsthreshBase = 240;

/// AFL-style hit-count class: {1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+}.
std::size_t count_class(std::uint8_t hits) {
  if (hits <= 3) return hits - 1;
  if (hits <= 7) return 3;
  if (hits <= 15) return 4;
  if (hits <= 31) return 5;
  if (hits <= 127) return 6;
  return 7;
}

/// log2 bucket of a positive count, clamped to [0, limit).
std::size_t log2_bucket(std::int64_t v, std::size_t limit) {
  if (v <= 0) return 0;
  const auto b = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(v)) - 1);
  return std::min(b, limit - 1);
}

/// Effective CCA state: the algorithm's own mode machine when exposed
/// (BBR's STARTUP/DRAIN/PROBE_BW/PROBE_RTT), else a generic 4-state
/// congestion-avoidance phase derived from the transport.
int effective_state(const tcp::SenderState& st,
                    const tcp::CongestionControl& cca) {
  const int own = cca.probe_state();
  if (own >= 0) return std::min(own, 7);
  if (st.in_loss) return 3;
  if (st.in_recovery) return 2;
  return cca.cwnd_segments() < cca.ssthresh_segments() ? 0 : 1;
}

/// Generic 4-state transport phase (one axis of the cwnd phase space).
std::size_t generic_ca_state(const tcp::SenderState& st,
                             const tcp::CongestionControl& cca) {
  if (st.in_loss) return 3;
  if (st.in_recovery) return 2;
  return cca.cwnd_segments() < cca.ssthresh_segments() ? 0 : 1;
}

/// RTT magnitude bin: half-octave steps starting at 128 us, 48 bins
/// (covers ~128 us to ~1 min; everything below/above clamps).
std::size_t rtt_bin(DurationNs rtt) {
  const std::int64_t us = rtt.ns() / 1000;
  if (us <= 0) return 0;
  const auto u = static_cast<std::uint64_t>(us);
  const int b = std::bit_width(u);  // >= 1
  const std::size_t sub =
      b >= 2 ? static_cast<std::size_t>((u >> (b - 2)) & 1u) : 0;
  if (b < 8) return 0;  // below 128 us: lowest bin
  return std::min<std::size_t>((static_cast<std::size_t>(b) - 8) * 2 + sub, 47);
}

}  // namespace

std::uint64_t CoverageSignature::hash() const {
  std::uint64_t h = bitmap.hash();
  const std::uint8_t desc[6] = {
      descriptor.state_transitions, descriptor.rtt_spread,
      descriptor.max_backoff,       descriptor.cwnd_span,
      descriptor.event_mask,        descriptor.cca_states,
  };
  for (const std::uint8_t b : desc) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

void BehaviorProbe::reset(bool enabled) {
  enabled_ = enabled;
  hits_.fill(0);
  prev_state_ = -1;
  trans_mask_ = 0;
  rtt_mask_ = 0;
  cwnd_mask_ = 0;
  state_mask_ = 0;
  event_mask_ = 0;
  max_backoff_ = 0;
  sig_ = CoverageSignature{};
}

void BehaviorProbe::on_ack_sample(const tcp::SenderState& st,
                                  const tcp::CongestionControl& cca,
                                  DurationNs rtt_sample) {
  // CCA state transitions, sampled at ACK granularity. The first sample
  // records the self-loop so "visited state s" is itself coverage.
  const int state = effective_state(st, cca);
  state_mask_ |= static_cast<std::uint8_t>(1u << state);
  if (state != prev_state_) {
    const int from = prev_state_ < 0 ? state : prev_state_;
    const std::size_t t = static_cast<std::size_t>(from) * 8 +
                          static_cast<std::size_t>(state);
    hit(kTransBase + t);
    trans_mask_ |= 1ull << t;
    prev_state_ = state;
  }

  // cwnd phase space: log2(cwnd) x generic transport phase.
  const std::int64_t cwnd = cca.cwnd_segments();
  const std::size_t cwnd_bin = log2_bucket(cwnd, 16);
  cwnd_mask_ |= 1u << cwnd_bin;
  hit(kCwndPhaseBase + generic_ca_state(st, cca) * 16 + cwnd_bin);

  // RTT sample magnitude + inflation over the lifetime minimum.
  if (rtt_sample >= DurationNs::zero()) {
    const std::size_t rb = rtt_bin(rtt_sample);
    rtt_mask_ |= 1ull << rb;
    hit(kRttBase + rb);
    if (st.min_rtt.ns() > 0) {
      hit(kRttInflationBase +
          log2_bucket(rtt_sample.ns() / st.min_rtt.ns(), 16));
    }
  }

  // Pacing-rate magnitude in log2 packets/sec; bin 0 = unpaced.
  const DataRate pacing = cca.pacing_rate();
  if (pacing.is_zero()) {
    hit(kPacingBase);
  } else {
    const std::int64_t pps =
        pacing.bits_per_second() / (static_cast<std::int64_t>(st.mss_bytes) * 8);
    hit(kPacingBase + std::max<std::size_t>(log2_bucket(pps, 16), 1));
  }

  // Window occupancy: inflight as sixteenths of cwnd.
  if (cwnd > 0) {
    const std::int64_t inflight = std::max<std::int64_t>(st.in_flight(), 0);
    hit(kOccupancyBase +
        std::min<std::size_t>(
            static_cast<std::size_t>(inflight * 16 / cwnd), 15));
  }

  // ssthresh magnitude; the "unused" sentinel (BBR) saturates to the top bin.
  const std::int64_t ssthresh = cca.ssthresh_segments();
  hit(kSsthreshBase +
      (ssthresh >= std::numeric_limits<std::int64_t>::max() / 4
           ? 15
           : log2_bucket(ssthresh, 15)));
}

void BehaviorProbe::on_congestion(tcp::CongestionEvent ev, int backoff) {
  const auto kind = static_cast<std::size_t>(ev) & 3;
  event_mask_ |= static_cast<std::uint8_t>(1u << kind);
  max_backoff_ = std::max(max_backoff_,
                          static_cast<std::uint8_t>(std::min(backoff, 255)));
  // Backoff depth buckets: 0, 1, 2-3, 4+.
  const std::size_t depth = backoff <= 1 ? static_cast<std::size_t>(backoff)
                            : backoff <= 3 ? 2
                                           : 3;
  hit(kEventBase + kind * 4 + depth);
}

void BehaviorProbe::finalize() {
  if (!enabled_) return;
  sig_.bitmap.reset();
  for (std::size_t bin = 0; bin < kBinCount; ++bin) {
    if (hits_[bin] == 0) continue;
    sig_.bitmap.set(bin * 8 + count_class(hits_[bin]));
  }
  sig_.bits = sig_.bitmap.count();
  sig_.descriptor.state_transitions = static_cast<std::uint8_t>(
      std::popcount(trans_mask_));
  sig_.descriptor.rtt_spread = static_cast<std::uint8_t>(
      std::popcount(rtt_mask_));
  sig_.descriptor.max_backoff = max_backoff_;
  sig_.descriptor.cwnd_span = static_cast<std::uint8_t>(
      std::popcount(cwnd_mask_));
  sig_.descriptor.event_mask = event_mask_;
  sig_.descriptor.cca_states = static_cast<std::uint8_t>(
      std::popcount(state_mask_));
  sig_.valid = true;
}

}  // namespace ccfuzz::coverage
