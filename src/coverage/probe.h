// Behavioral coverage instrumentation for the CCA under test.
//
// A BehaviorProbe listens on the sender's BehaviorSink hooks and folds every
// observation into a fixed set of behavior bins: CCA state-machine
// transitions (BBR modes via CongestionControl::probe_state, generic
// congestion-avoidance states otherwise), the cwnd phase space, RTT-sample
// magnitude and inflation, RTO backoff depth, pacing-rate magnitude, and
// congestion-event kinds. finalize() collapses the per-bin hit counts into
// an AFL-style count-class bitmap plus a compact BehaviorDescriptor — the
// key the MAP-Elites archive (fuzz::EliteArchive) grids on.
//
// Everything is integer arithmetic over fixed-size arrays: zero steady-state
// allocations, and bit-identical signatures for repeated runs of the same
// (trace, scenario, seed) — pinned by tests/coverage/probe_test.cpp.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "tcp/behavior_sink.h"

namespace ccfuzz::coverage {

/// Fixed-size bitmap over behavior bins × hit-count classes.
struct CoverageBitmap {
  static constexpr std::size_t kBits = 2048;
  static constexpr std::size_t kWords = kBits / 64;

  std::array<std::uint64_t, kWords> words{};

  void reset() { words.fill(0); }
  void set(std::size_t bit) { words[bit / 64] |= 1ull << (bit % 64); }
  bool test(std::size_t bit) const {
    return (words[bit / 64] >> (bit % 64)) & 1u;
  }

  std::uint32_t count() const {
    std::uint32_t n = 0;
    for (const std::uint64_t w : words) {
      n += static_cast<std::uint32_t>(std::popcount(w));
    }
    return n;
  }

  /// Merges `other` in; returns how many bits were newly set (the novelty
  /// signal the MAP-Elites selection rewards).
  std::uint32_t merge_count_new(const CoverageBitmap& other) {
    std::uint32_t fresh = 0;
    for (std::size_t i = 0; i < kWords; ++i) {
      const std::uint64_t add = other.words[i] & ~words[i];
      fresh += static_cast<std::uint32_t>(std::popcount(add));
      words[i] |= other.words[i];
    }
    return fresh;
  }

  /// FNV-1a digest over the words, for golden determinism tests.
  std::uint64_t hash() const {
    std::uint64_t h = 1469598103934665603ULL;
    for (const std::uint64_t w : words) {
      for (int i = 0; i < 8; ++i) {
        h ^= (w >> (i * 8)) & 0xffu;
        h *= 1099511628211ULL;
      }
    }
    return h;
  }

  bool operator==(const CoverageBitmap&) const = default;
};

/// Compact behavior summary — the MAP-Elites grid key. Every field is a
/// small saturating count so the descriptor quantizes cleanly.
struct BehaviorDescriptor {
  std::uint8_t state_transitions = 0;  ///< distinct CCA-state (from,to) pairs
  std::uint8_t rtt_spread = 0;         ///< distinct RTT-magnitude bins hit
  std::uint8_t max_backoff = 0;        ///< deepest RTO backoff exponent
  std::uint8_t cwnd_span = 0;          ///< distinct log2(cwnd) bins visited
  std::uint8_t event_mask = 0;         ///< bitmask of CongestionEvent kinds
  std::uint8_t cca_states = 0;         ///< distinct effective CCA states

  bool operator==(const BehaviorDescriptor&) const = default;
};

/// One run's complete coverage result: bitmap + descriptor + summary bits.
struct CoverageSignature {
  CoverageBitmap bitmap;
  BehaviorDescriptor descriptor;
  std::uint32_t bits = 0;  ///< popcount of bitmap
  bool valid = false;      ///< probe was attached and finalized

  /// Order-sensitive digest of bitmap + descriptor (golden tests).
  std::uint64_t hash() const;

  bool operator==(const CoverageSignature&) const = default;
};

/// Accumulates behavior bins for one run. Observes the scenario's primary
/// flow (flow 0); reset per run by RunContext, finalized after run_until.
class BehaviorProbe final : public tcp::BehaviorSink {
 public:
  /// Total behavior bins; each expands to 8 count-class bits in the bitmap.
  static constexpr std::size_t kBinCount = 256;
  static_assert(kBinCount * 8 == CoverageBitmap::kBits);

  // Bin-space layout (documented here, implemented in probe.cpp):
  //   [  0,  64)  CCA state transitions, 8x8 (from*8 + to)
  //   [ 64, 128)  log2(cwnd) x generic CA state, 16x4
  //   [128, 176)  RTT sample magnitude, half-octave bins from 128 us
  //   [176, 192)  RTT inflation over min-RTT, log2 ratio
  //   [192, 208)  congestion event kind x RTO backoff depth, 4x4
  //   [208, 224)  pacing-rate magnitude, log2 pps (0 = unpaced)
  //   [224, 240)  inflight/cwnd occupancy, sixteenths
  //   [240, 256)  log2(ssthresh), saturated for "unused" (BBR)

  /// Arms (or disarms) the probe for a fresh run; clears all accumulators.
  void reset(bool enabled);

  bool enabled() const { return enabled_; }

  // tcp::BehaviorSink
  void on_ack_sample(const tcp::SenderState& st,
                     const tcp::CongestionControl& cca,
                     DurationNs rtt_sample) override;
  void on_congestion(tcp::CongestionEvent ev, int backoff) override;

  /// Collapses hit counts into the count-class bitmap and descriptor.
  /// Signature is invalid (all zero) when the probe was disarmed.
  void finalize();

  const CoverageSignature& signature() const { return sig_; }

 private:
  void hit(std::size_t bin) {
    if (hits_[bin] != 0xff) ++hits_[bin];
  }

  bool enabled_ = false;
  std::array<std::uint8_t, kBinCount> hits_{};  // saturating per-bin counts
  int prev_state_ = -1;

  // Distinct-set accumulators for the descriptor.
  std::uint64_t trans_mask_ = 0;  // 64 possible (from,to) pairs
  std::uint64_t rtt_mask_ = 0;    // 48 RTT bins
  std::uint32_t cwnd_mask_ = 0;   // 16 log2(cwnd) bins
  std::uint8_t state_mask_ = 0;   // 8 effective states
  std::uint8_t event_mask_ = 0;   // 4 congestion-event kinds
  std::uint8_t max_backoff_ = 0;

  CoverageSignature sig_{};
};

}  // namespace ccfuzz::coverage
