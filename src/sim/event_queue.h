// Discrete-event core: a priority queue of timestamped callbacks.
//
// Determinism contract: events at equal timestamps fire in insertion order
// (FIFO tie-break via a monotone sequence number). This makes every
// simulation bit-reproducible, which the GA depends on for convergence
// (paper §3.6).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace ccfuzz::sim {

/// Opaque handle used to cancel a scheduled event. 0 is never a valid id.
using EventId = std::uint64_t;

/// Min-heap of (time, seq) → callback with O(log n) push/pop and lazy
/// cancellation (cancelled entries are skipped when they surface).
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`; returns a cancellation handle.
  EventId schedule(TimeNs at, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown id is a
  /// no-op.
  void cancel(EventId id);

  /// True if no live events remain.
  bool empty() { prune(); return heap_.empty(); }

  /// Number of live (non-cancelled, not-yet-fired) events.
  std::size_t size() const { return heap_.size() - cancelled_.size(); }

  /// Timestamp of the earliest live event; TimeNs::infinite() if none.
  TimeNs next_time();

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Requires !empty().
  TimeNs run_next();

 private:
  struct Entry {
    TimeNs at;
    std::uint64_t seq = 0;
    EventId id = 0;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Discards cancelled entries sitting at the heap top.
  void prune();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace ccfuzz::sim
