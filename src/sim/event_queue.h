// Discrete-event core: a priority queue of timestamped callbacks.
//
// Determinism contract: events at equal timestamps fire in insertion order
// (FIFO tie-break via a monotone sequence number). This makes every
// simulation bit-reproducible, which the GA depends on for convergence
// (paper §3.6).
//
// Design — slab + generation tags + a two-band timer core (zero steady-state
// allocations):
//
//   * Callbacks live in a slab of fixed-size slots holding an
//     InlineCallback<kEventCallbackCapacity> (32-byte inline budget,
//     compile-time asserted — capture pool indices, not payloads). A
//     free list recycles slots, so after the high-water mark is reached
//     schedule()/cancel()/run_next() never touch the allocator.
//   * The ordering structure is split in two bands. The *near band* is a
//     4-ary index heap of 16-byte {time, seq, slot} handles (~half the depth
//     of a binary heap, branch-predictable four-child scan) holding only
//     events within kNearEpochs epochs (~67 ms) of the current heap top.
//     The *far band* parks everything beyond the horizon — RTO timers,
//     sender stop times, trace tail events — in a wheel of kWheelSize epoch
//     buckets (plain vectors, one per 2^kEpochShift ns ≈ 4.2 ms of virtual
//     time) plus a single overflow vector for epochs beyond the wheel span
//     (~1.07 s). Far scheduling is an O(1) vector push; far handles migrate
//     into the heap lazily, whole epochs at a time, as the clock approaches.
//   * Capacity caveat: the wheel's epoch buckets are cleared, not shrunk,
//     at migration, so each bucket's capacity sits at its own high-water
//     mark for the rest of the run. For periodic single-flow traffic the
//     per-bucket HWM converges after about five wheel revolutions (~5 s of
//     virtual time): the periodic pattern must land in every bucket a few
//     times before the deepest phase alignment has been seen. Until then a
//     long-idle bucket can still take one allocator hit when the pattern
//     first drifts into it — relevant to anyone adding a steady-state
//     allocation assertion with a warmup shorter than that.
//   * Why it pays: the dominant far-timer pattern is armed-then-cancelled
//     (the RTO is re-armed on every cumulative ACK, tcp_rearm_rto-style).
//     In a single heap each re-arm left a stale handle that inflated every
//     sift until the clock finally reached it ~1 s later; in the far band
//     the stale handles sit inert in their epoch bucket and are discarded
//     wholesale at migration without ever entering the heap. Heap depth is
//     set by the in-flight near events alone.
//   * An EventId encodes (slot, generation). Each slot counts its
//     occupancies in a generation counter that never resets, so cancel()
//     is an O(1) generation compare — no cancelled-id set, no band
//     knowledge — and cancelling a fired, cancelled or pre-reset() id is a
//     guaranteed no-op even after the slot has been recycled (a single slot
//     would need 2^32 occupancies for an id to alias).
//   * Heap and bucket handles carry a separate 32-bit FIFO sequence number;
//     the slot remembers its current occupant's seq, so a handle whose seq
//     no longer matches is stale and gets skipped when it surfaces (heap) or
//     migrates (far band). Migration preserves the original seq, so events
//     that meet at equal timestamps fire in schedule order no matter which
//     band they travelled through — execution order is bit-identical to a
//     single heap. seq restarts on reset() (both bands are empty then),
//     bounding the tie-break at 2^32 schedules per run — orders of magnitude
//     above any simulation (scenario::RunContext resets per run).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/inline_callback.h"
#include "util/time.h"

namespace ccfuzz::sim {

/// Opaque handle used to cancel a scheduled event. 0 is never a valid id.
using EventId = std::uint64_t;

/// Inline-storage budget for event callbacks. 32 bytes keeps one event slot
/// to exactly one cache line and fits every closure in the simulator (the
/// largest are [this, pool-index] pairs) plus typical test lambdas;
/// oversized captures fail to compile — route payloads through a pool and
/// capture the index instead.
inline constexpr std::size_t kEventCallbackCapacity = 32;
using EventCallback = InlineCallback<kEventCallbackCapacity>;

/// Two-band min-queue of (time, seq) → callback: O(log near) push/pop for
/// near events, O(1) amortized parking for far-future ones, O(1)
/// generation-based cancellation, and no steady-state allocations.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`; returns a cancellation handle.
  template <typename F>
  EventId schedule(TimeNs at, F&& fn) {
    return schedule_impl(at, EventCallback(std::forward<F>(fn)));
  }

  /// Cancels a pending event in O(1). Cancelling an already-fired or unknown
  /// id is a no-op.
  void cancel(EventId id);

  /// True if no live events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live (non-cancelled, not-yet-fired) events.
  std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event; TimeNs::infinite() if none.
  TimeNs next_time();

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Requires !empty().
  TimeNs run_next();

  /// If the earliest live event fires at or before `deadline`, stores its
  /// timestamp in `clock` (before the callback runs, so callbacks observe
  /// the advanced clock), runs it and returns true; otherwise leaves `clock`
  /// untouched and returns false. One prune per event — this is the
  /// simulation driver's hot loop.
  bool run_next_due(TimeNs deadline, TimeNs& clock);

  /// Discards all pending events but keeps slab/heap/bucket capacity, so a
  /// reused queue (scenario::RunContext) schedules without allocating.
  void reset();

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  // --- Two-band geometry ---
  /// Virtual-time width of one far-band epoch: 2^22 ns ≈ 4.19 ms.
  static constexpr int kEpochShift = 22;
  /// Near-band horizon in epochs beyond the heap top (~67 ms): events this
  /// close schedule straight into the heap; farther ones park in the wheel.
  /// Must stay under any realistic RTO (min_rto defaults to 1 s; Linux uses
  /// 200 ms) so re-armed RTO timers never churn the heap.
  static constexpr std::int64_t kNearEpochs = 16;
  /// Wheel span: 256 epochs ≈ 1.07 s. Epochs beyond it overflow into a
  /// single vector and redistribute when the wheel advances within range.
  static constexpr std::size_t kWheelSize = 256;
  static constexpr std::size_t kWheelMask = kWheelSize - 1;
  static constexpr std::size_t kWheelWords = kWheelSize / 64;
  static constexpr std::int64_t kNoEpoch =
      std::numeric_limits<std::int64_t>::max();

  struct Slot {
    EventCallback fn;
    std::uint32_t generation = 0;  ///< occupancy count; never resets
    std::uint32_t seq = 0;         ///< FIFO seq of the current occupant
    std::uint32_t next_free = kNil;
    bool live = false;
  };
  static_assert(sizeof(Slot) <= 64, "one event slot should fit a cache line");
  struct HeapHandle {  // 16 bytes; what sift operations actually move
    std::int64_t at_ns;
    std::uint32_t seq;
    std::uint32_t slot;
  };

  static std::int64_t epoch_of(std::int64_t at_ns) {
    // Arithmetic shift: negative times land in epoch <= 0, i.e. always near.
    return at_ns >> kEpochShift;
  }

  // if/else (not ?:) so the compiler keeps the highly-predictable time
  // comparison a branch; a cmov dependency chain here measurably slows the
  // sift loops.
  static bool earlier(const HeapHandle& a, const HeapHandle& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    return a.seq < b.seq;
  }
  bool stale(const HeapHandle& h) const {
    const Slot& s = slots_[h.slot];
    return !s.live || s.seq != h.seq;
  }

  EventId schedule_impl(TimeNs at, EventCallback fn);
  void heap_push(HeapHandle h);
  void heap_pop_top();
  /// Parks a handle in the far band (wheel bucket or overflow).
  void far_push(HeapHandle h, std::int64_t epoch);
  /// Migrates the earliest far epoch's handles into the heap (stale handles
  /// are dropped without ever touching it). Requires far_size_ != 0.
  void flush_min_far();
  /// Moves overflow handles whose epoch now fits the wheel into buckets.
  void redistribute_overflow();
  /// Epoch of the earliest non-empty wheel bucket; kNoEpoch if all empty.
  std::int64_t first_bucket_epoch() const;
  /// Discards stale heap-top handles and migrates any far epochs that are
  /// due (or within the near horizon of) the surfacing heap top.
  void prune();

  std::size_t bucket_count() const { return far_size_ - overflow_.size(); }

  std::vector<Slot> slots_;
  std::vector<HeapHandle> heap_;  // 4-ary min-heap; may hold stale handles
  std::uint32_t free_head_ = kNil;
  std::uint32_t next_seq_ = 0;
  std::size_t live_ = 0;

  // --- Far band ---
  /// Every epoch <= horizon_ has been migrated (or was never populated);
  /// schedule() sends events with epoch <= horizon_ straight to the heap.
  /// Monotone within a run; all parked handles have epoch > horizon_ and,
  /// for wheel buckets, epoch <= horizon_ + kWheelSize — which makes the
  /// epoch → bucket mapping (epoch & kWheelMask) collision-free.
  std::int64_t horizon_ = kNearEpochs;
  std::size_t far_size_ = 0;            ///< parked handles, stale included
  std::int64_t far_min_epoch_ = kNoEpoch;       ///< min parked epoch
  std::int64_t overflow_min_epoch_ = kNoEpoch;  ///< min epoch in overflow_
  std::array<std::vector<HeapHandle>, kWheelSize> wheel_;
  std::array<std::uint64_t, kWheelWords> wheel_bits_{};  ///< non-empty map
  std::vector<HeapHandle> overflow_;
};

}  // namespace ccfuzz::sim
