// Discrete-event core: a priority queue of timestamped callbacks.
//
// Determinism contract: events at equal timestamps fire in insertion order
// (FIFO tie-break via a monotone sequence number). This makes every
// simulation bit-reproducible, which the GA depends on for convergence
// (paper §3.6).
//
// Design — slab + generation tags + 4-ary index heap (zero steady-state
// allocations):
//
//   * Callbacks live in a slab of fixed-size slots holding an
//     InlineCallback<kEventCallbackCapacity> (32-byte inline budget,
//     compile-time asserted — capture pool indices, not payloads). A
//     free list recycles slots, so after the high-water mark is reached
//     schedule()/cancel()/run_next() never touch the allocator.
//   * The heap orders 16-byte {time, seq, slot} handles, not closures, so
//     sift operations move two words. It is 4-ary: ~half the depth of a
//     binary heap with a branch-predictable four-child scan.
//   * An EventId encodes (slot, generation). Each slot counts its
//     occupancies in a generation counter that never resets, so cancel()
//     is an O(1) generation compare — no cancelled-id set — and cancelling
//     a fired, cancelled or pre-reset() id is a guaranteed no-op even after
//     the slot has been recycled (a single slot would need 2^32 occupancies
//     for an id to alias).
//   * Heap handles carry a separate 32-bit FIFO sequence number; the slot
//     remembers its current occupant's seq, so a handle whose seq no longer
//     matches is stale and gets skipped when it surfaces. seq restarts on
//     reset() (the heap is empty then), bounding the tie-break at 2^32
//     schedules per run — orders of magnitude above any simulation
//     (scenario::RunContext resets per run).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_callback.h"
#include "util/time.h"

namespace ccfuzz::sim {

/// Opaque handle used to cancel a scheduled event. 0 is never a valid id.
using EventId = std::uint64_t;

/// Inline-storage budget for event callbacks. 32 bytes keeps one event slot
/// to exactly one cache line and fits every closure in the simulator (the
/// largest are [this, pool-index] pairs) plus typical test lambdas;
/// oversized captures fail to compile — route payloads through a pool and
/// capture the index instead.
inline constexpr std::size_t kEventCallbackCapacity = 32;
using EventCallback = InlineCallback<kEventCallbackCapacity>;

/// Min-heap of (time, seq) → callback with O(log n) push/pop, O(1)
/// generation-based cancellation, and no steady-state allocations.
class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`; returns a cancellation handle.
  template <typename F>
  EventId schedule(TimeNs at, F&& fn) {
    return schedule_impl(at, EventCallback(std::forward<F>(fn)));
  }

  /// Cancels a pending event in O(1). Cancelling an already-fired or unknown
  /// id is a no-op.
  void cancel(EventId id);

  /// True if no live events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live (non-cancelled, not-yet-fired) events.
  std::size_t size() const { return live_; }

  /// Timestamp of the earliest live event; TimeNs::infinite() if none.
  TimeNs next_time();

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Requires !empty().
  TimeNs run_next();

  /// If the earliest live event fires at or before `deadline`, stores its
  /// timestamp in `clock` (before the callback runs, so callbacks observe
  /// the advanced clock), runs it and returns true; otherwise leaves `clock`
  /// untouched and returns false. One prune per event — this is the
  /// simulation driver's hot loop.
  bool run_next_due(TimeNs deadline, TimeNs& clock);

  /// Discards all pending events but keeps slab/heap capacity, so a reused
  /// queue (scenario::RunContext) schedules without allocating.
  void reset();

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    EventCallback fn;
    std::uint32_t generation = 0;  ///< occupancy count; never resets
    std::uint32_t seq = 0;         ///< FIFO seq of the current occupant
    std::uint32_t next_free = kNil;
    bool live = false;
  };
  static_assert(sizeof(Slot) <= 64, "one event slot should fit a cache line");
  struct HeapHandle {  // 16 bytes; what sift operations actually move
    std::int64_t at_ns;
    std::uint32_t seq;
    std::uint32_t slot;
  };

  // if/else (not ?:) so the compiler keeps the highly-predictable time
  // comparison a branch; a cmov dependency chain here measurably slows the
  // sift loops.
  static bool earlier(const HeapHandle& a, const HeapHandle& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    return a.seq < b.seq;
  }
  bool stale(const HeapHandle& h) const {
    const Slot& s = slots_[h.slot];
    return !s.live || s.seq != h.seq;
  }

  EventId schedule_impl(TimeNs at, EventCallback fn);
  void heap_push(HeapHandle h);
  void heap_pop_top();
  /// Discards stale handles sitting at the heap top.
  void prune();

  std::vector<Slot> slots_;
  std::vector<HeapHandle> heap_;  // 4-ary min-heap; may hold stale handles
  std::uint32_t free_head_ = kNil;
  std::uint32_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace ccfuzz::sim
