#include "sim/simulator.h"

namespace ccfuzz::sim {

std::uint64_t Simulator::run_until(TimeNs deadline) {
  std::uint64_t n = 0;
  while (queue_.run_next_due(deadline, now_)) ++n;
  if (!deadline.is_infinite() && now_ < deadline) now_ = deadline;
  executed_ += n;
  return n;
}

}  // namespace ccfuzz::sim
