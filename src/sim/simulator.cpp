#include "sim/simulator.h"

namespace ccfuzz::sim {

std::uint64_t Simulator::run_until(TimeNs deadline) {
  std::uint64_t n = 0;
  for (;;) {
    const TimeNs t = queue_.next_time();
    if (t.is_infinite() || t > deadline) break;
    now_ = t;
    queue_.run_next();
    ++n;
  }
  if (!deadline.is_infinite() && now_ < deadline) now_ = deadline;
  executed_ += n;
  return n;
}

}  // namespace ccfuzz::sim
