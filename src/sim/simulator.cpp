#include "sim/simulator.h"

#include <ctime>

namespace ccfuzz::sim {

namespace {

std::int64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

}  // namespace

void Simulator::arm_budget(const Budget& b) {
  event_limit_ =
      b.max_events > 0 ? executed_ + b.max_events : UINT64_MAX;
  wall_deadline_ns_ = b.max_wall_time > DurationNs::zero()
                          ? monotonic_ns() + b.max_wall_time.ns()
                          : -1;
  truncation_ = TruncationReason::kNone;
}

std::uint64_t Simulator::run_until(TimeNs deadline) {
  std::uint64_t n = 0;
  const bool wall_armed = wall_deadline_ns_ >= 0;
  while (queue_.run_next_due(deadline, now_)) {
    ++n;
    if (executed_ + n >= event_limit_) [[unlikely]] {
      truncation_ = TruncationReason::kEventLimit;
      break;
    }
    if (wall_armed && (n & 0xFFF) == 0 &&
        monotonic_ns() >= wall_deadline_ns_) [[unlikely]] {
      truncation_ = TruncationReason::kWallDeadline;
      break;
    }
  }
  // Advancing the clock to the deadline only makes sense for a run that
  // drained everything due; a truncated run stops at the last event fired.
  if (truncation_ == TruncationReason::kNone && !deadline.is_infinite() &&
      now_ < deadline) {
    now_ = deadline;
  }
  executed_ += n;
  return n;
}

}  // namespace ccfuzz::sim
