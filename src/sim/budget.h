// Run guards for a single simulation: hard ceilings that turn a runaway or
// livelocked scenario into a *truncated* result instead of a hung worker.
//
// The fuzzer's whole job is to find inputs that push CCAs into pathological
// regimes, so the harness must survive the inputs it discovers: a genome
// that drives the event loop into an ACK ping-pong storm, or a scenario
// matrix entry with an absurd duration, must cost at most the budget — not
// the campaign. All checks are branch-only on the hot path (a counter
// compare per event; the wall clock is sampled every 4096 events and only
// when a wall budget is armed), so an unarmed or unhit budget leaves event
// execution — and therefore the golden fingerprints — bit-identical.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace ccfuzz::sim {

/// Why a run stopped before its configured end.
enum class TruncationReason : std::uint8_t {
  kNone = 0,
  kEventLimit,   ///< Budget::max_events executed
  kSimTimeLimit, ///< Budget::max_sim_time reached before the scenario end
  kWallDeadline, ///< Budget::max_wall_time of real time elapsed
};

/// Display/report name of a truncation reason.
constexpr const char* to_string(TruncationReason r) {
  switch (r) {
    case TruncationReason::kNone: return "none";
    case TruncationReason::kEventLimit: return "event-limit";
    case TruncationReason::kSimTimeLimit: return "sim-time-limit";
    case TruncationReason::kWallDeadline: return "wall-deadline";
  }
  return "?";
}

/// Per-run ceilings; zero (or non-positive) disables each guard.
///
/// max_events and max_sim_time are deterministic: the same run truncates at
/// the same point every time, so truncated evaluations cache and replay like
/// any other. max_wall_time depends on host speed and is therefore a
/// last-resort livelock guard — results it truncates are flagged and never
/// enter the campaign evaluation cache.
struct Budget {
  std::uint64_t max_events = 0;
  DurationNs max_sim_time = DurationNs(0);
  DurationNs max_wall_time = DurationNs(0);

  bool unlimited() const {
    return max_events == 0 && max_sim_time <= DurationNs::zero() &&
           max_wall_time <= DurationNs::zero();
  }
};

}  // namespace ccfuzz::sim
