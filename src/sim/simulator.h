// The Simulator owns the virtual clock and event queue and drives a single
// deterministic run.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/budget.h"
#include "sim/event_queue.h"
#include "util/time.h"

namespace ccfuzz::sim {

/// A single-threaded discrete-event simulation. Components hold a reference
/// and schedule callbacks; run_until() advances the virtual clock.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  TimeNs now() const { return now_; }

  /// Schedules `fn` after a relative delay (>= 0). The closure is stored
  /// inline (see EventCallback) — scheduling never allocates.
  template <typename F>
  EventId schedule_in(DurationNs delay, F&& fn) {
    return queue_.schedule(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` at an absolute time. Times in the past fire "now" but
  /// never move the clock backwards.
  template <typename F>
  EventId schedule_at(TimeNs at, F&& fn) {
    if (at < now_) at = now_;
    return queue_.schedule(at, std::forward<F>(fn));
  }

  /// Cancels a pending event (no-op if already fired).
  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue is exhausted or the clock would pass
  /// `deadline`; the clock is left at min(deadline, last event time).
  /// Returns the number of events executed.
  std::uint64_t run_until(TimeNs deadline);

  /// Runs until the queue drains completely.
  std::uint64_t run_all() { return run_until(TimeNs::infinite()); }

  /// Total events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// Arms run guards for subsequent run_until() calls. Unarmed (default) or
  /// unhit guards leave execution bit-identical: the event limit is a single
  /// integer compare per event against a limit that defaults to UINT64_MAX,
  /// and the wall clock is only sampled (every 4096 events) when a wall
  /// budget is armed. Budget::max_sim_time is enforced by callers that own
  /// the deadline (scenario::RunContext caps the run deadline), not here.
  void arm_budget(const Budget& b);

  /// Why the last run_until() stopped early (kNone if it didn't). Sticky
  /// across run_until() calls until reset() or arm_budget().
  TruncationReason truncation() const { return truncation_; }

  /// Returns the simulator to its initial state (clock at zero, no pending
  /// events, budget disarmed) while keeping the event queue's slab/heap
  /// capacity, so a reused simulator (scenario::RunContext) runs without
  /// allocator traffic.
  void reset() {
    queue_.reset();
    now_ = TimeNs::zero();
    executed_ = 0;
    event_limit_ = UINT64_MAX;
    wall_deadline_ns_ = -1;
    truncation_ = TruncationReason::kNone;
  }

 private:
  EventQueue queue_;
  TimeNs now_ = TimeNs::zero();
  std::uint64_t executed_ = 0;
  std::uint64_t event_limit_ = UINT64_MAX;      // absolute, vs executed_
  std::int64_t wall_deadline_ns_ = -1;          // monotonic ns; -1 = unarmed
  TruncationReason truncation_ = TruncationReason::kNone;
};

/// A restartable one-shot timer bound to a Simulator. Re-arming cancels any
/// pending expiry. Used for RTO, delayed-ACK, pacing release, etc.
///
/// Re-arm cost note: cancel() is an O(1) generation bump and a far-future
/// arm() is an O(1) bucket push — the event core's far band is designed
/// around exactly this armed-then-cancelled pattern (tcp_rearm_rto fires on
/// every cumulative ACK), so high-frequency re-arming of far timers never
/// touches the near heap. Each arm() still assigns a fresh FIFO sequence
/// number, which is what keeps equal-timestamp execution order — and thus
/// the golden fingerprints — identical to an eagerly re-scheduled timer.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}

  /// (Re)arms the timer to fire `delay` from now.
  void arm(DurationNs delay) {
    cancel();
    expiry_ = sim_.now() + delay;
    id_ = sim_.schedule_in(delay, [this] {
      id_ = 0;
      on_fire_();
    });
  }

  /// Stops the timer if pending.
  void cancel() {
    if (id_ != 0) {
      sim_.cancel(id_);
      id_ = 0;
    }
  }

  /// True if armed and not yet fired.
  bool pending() const { return id_ != 0; }

  /// Absolute expiry time of the last arm() (valid only while pending).
  TimeNs expiry() const { return expiry_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  EventId id_ = 0;
  TimeNs expiry_ = TimeNs::zero();
};

}  // namespace ccfuzz::sim
