// Fixed-capacity, non-allocating callable wrapper for event callbacks.
//
// std::function heap-allocates any closure past its small-buffer budget
// (16-32 bytes on mainstream ABIs), which put an allocator round-trip on
// every scheduled packet event. InlineCallback stores the closure inline in
// a fixed buffer and rejects oversized captures at compile time, so the
// event slab can hold callbacks by value and scheduling never allocates.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ccfuzz::sim {

/// Move-only callable of signature void() with `Capacity` bytes of inline
/// storage. Closures larger than `Capacity` fail a static_assert — shrink
/// the capture (e.g. route bulky payloads through a pool and capture the
/// index) rather than raising the budget.
template <std::size_t Capacity>
class InlineCallback {
 public:
  InlineCallback() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, InlineCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  InlineCallback(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "closure exceeds the inline callback budget; capture less "
                  "(pool indices instead of payloads)");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned closures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closures must be nothrow-move-constructible");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &kOps<Fn>;
  }

  InlineCallback(InlineCallback&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      relocate_from(o);
      o.ops_ = nullptr;
    }
  }
  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        relocate_from(o);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  /// Invokes the stored closure. Requires a non-empty callback.
  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys the stored closure (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the closure into `to` and destroys the one at `from`;
    /// null when a raw buffer copy suffices (trivially-copyable closure).
    void (*relocate)(void* from, void* to);
    /// Null for trivially-destructible closures — the hot path skips the
    /// indirect call entirely.
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kOps = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* from, void* to) {
              Fn* f = static_cast<Fn*>(from);
              ::new (to) Fn(std::move(*f));
              f->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  void relocate_from(InlineCallback& o) {
    if (ops_->relocate != nullptr) {
      ops_->relocate(o.buf_, buf_);
    } else {
      std::memcpy(buf_, o.buf_, Capacity);
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace ccfuzz::sim
