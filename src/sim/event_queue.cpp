#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace ccfuzz::sim {

EventId EventQueue::schedule_impl(TimeNs at, EventCallback fn) {
  std::uint32_t slot;
  if (free_head_ != kNil) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  const std::uint32_t seq = next_seq_++;
  s.fn = std::move(fn);
  ++s.generation;
  s.seq = seq;
  s.live = true;
  heap_push(HeapHandle{at.ns(), seq, slot});
  ++live_;
  // slot+1 keeps 0 out of the valid-id range.
  return (static_cast<EventId>(slot + 1) << 32) | s.generation;
}

void EventQueue::cancel(EventId id) {
  if (id == 0) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32) - 1;
  const std::uint32_t generation = static_cast<std::uint32_t>(id);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  // Already fired, already cancelled, recycled, or from before a reset().
  if (!s.live || s.generation != generation) return;
  s.fn.reset();
  s.live = false;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
  // The heap handle stays behind; stale() skips it when it surfaces.
}

void EventQueue::heap_push(HeapHandle h) {
  std::size_t i = heap_.size();
  heap_.push_back(h);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(h, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = h;
}

void EventQueue::heap_pop_top() {
  const HeapHandle last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void EventQueue::prune() {
  while (!heap_.empty() && stale(heap_[0])) heap_pop_top();
  if (!heap_.empty()) __builtin_prefetch(&slots_[heap_[0].slot]);
}

TimeNs EventQueue::next_time() {
  prune();
  return heap_.empty() ? TimeNs::infinite() : TimeNs(heap_[0].at_ns);
}

bool EventQueue::run_next_due(TimeNs deadline, TimeNs& clock) {
  prune();
  if (heap_.empty()) return false;
  const HeapHandle top = heap_[0];
  if (TimeNs(top.at_ns) > deadline) return false;
  heap_pop_top();
  Slot& s = slots_[top.slot];
  // Move the callback out before freeing the slot: the callback may schedule
  // new events, which can reuse this slot or grow the slab.
  EventCallback fn = std::move(s.fn);
  s.live = false;
  s.next_free = free_head_;
  free_head_ = top.slot;
  --live_;
  clock = TimeNs(top.at_ns);
  fn();
  return true;
}

TimeNs EventQueue::run_next() {
  assert(!empty() && "run_next on empty queue");
  TimeNs at = TimeNs::zero();
  run_next_due(TimeNs::infinite(), at);
  return at;
}

void EventQueue::reset() {
  for (Slot& s : slots_) {
    s.fn.reset();
    s.live = false;
  }
  free_head_ = kNil;
  for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size()); i-- > 0;) {
    slots_[i].next_free = free_head_;
    free_head_ = i;
  }
  heap_.clear();
  live_ = 0;
  next_seq_ = 0;
}

}  // namespace ccfuzz::sim
