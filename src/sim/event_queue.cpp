#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace ccfuzz::sim {

EventId EventQueue::schedule(TimeNs at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  cancelled_.insert(id);
}

void EventQueue::prune() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

TimeNs EventQueue::next_time() {
  prune();
  return heap_.empty() ? TimeNs::infinite() : heap_.front().at;
}

TimeNs EventQueue::run_next() {
  prune();
  assert(!heap_.empty() && "run_next on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  e.fn();
  return e.at;
}

}  // namespace ccfuzz::sim
