#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ccfuzz::sim {

EventId EventQueue::schedule_impl(TimeNs at, EventCallback fn) {
  std::uint32_t slot;
  if (free_head_ != kNil) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  const std::uint32_t seq = next_seq_++;
  s.fn = std::move(fn);
  ++s.generation;
  s.seq = seq;
  s.live = true;
  const std::int64_t epoch = epoch_of(at.ns());
  if (epoch <= horizon_) {
    heap_push(HeapHandle{at.ns(), seq, slot});
  } else {
    far_push(HeapHandle{at.ns(), seq, slot}, epoch);
  }
  ++live_;
  // slot+1 keeps 0 out of the valid-id range.
  return (static_cast<EventId>(slot + 1) << 32) | s.generation;
}

void EventQueue::cancel(EventId id) {
  if (id == 0) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32) - 1;
  const std::uint32_t generation = static_cast<std::uint32_t>(id);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  // Already fired, already cancelled, recycled, or from before a reset().
  if (!s.live || s.generation != generation) return;
  s.fn.reset();
  s.live = false;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
  // The handle stays behind in whichever band holds it; stale() skips it
  // when it surfaces (heap) or migrates (far band).
}

void EventQueue::heap_push(HeapHandle h) {
  std::size_t i = heap_.size();
  heap_.push_back(h);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(h, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = h;
}

void EventQueue::heap_pop_top() {
  const HeapHandle last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void EventQueue::far_push(HeapHandle h, std::int64_t epoch) {
  if (epoch <= horizon_ + static_cast<std::int64_t>(kWheelSize)) {
    const std::size_t slot = static_cast<std::size_t>(epoch) & kWheelMask;
    wheel_[slot].push_back(h);
    wheel_bits_[slot >> 6] |= 1ull << (slot & 63);
  } else {
    overflow_.push_back(h);
    if (epoch < overflow_min_epoch_) overflow_min_epoch_ = epoch;
  }
  ++far_size_;
  if (epoch < far_min_epoch_) far_min_epoch_ = epoch;
}

std::int64_t EventQueue::first_bucket_epoch() const {
  if (bucket_count() == 0) return kNoEpoch;
  // Parked bucket epochs all lie in (horizon_, horizon_ + kWheelSize], so a
  // circular bitmap scan starting just past the horizon's slot finds the
  // earliest one unambiguously.
  const std::size_t base =
      static_cast<std::size_t>(horizon_ + 1) & kWheelMask;
  const std::size_t wi = base >> 6;
  const unsigned bit = static_cast<unsigned>(base & 63);
  std::uint64_t w = wheel_bits_[wi] & (~0ull << bit);
  for (std::size_t k = 0;;) {
    if (w != 0) {
      const std::size_t slot =
          (((wi + k) & (kWheelWords - 1)) << 6) +
          static_cast<std::size_t>(std::countr_zero(w));
      const std::size_t dist = (slot - base) & kWheelMask;
      return horizon_ + 1 + static_cast<std::int64_t>(dist);
    }
    ++k;
    if (k == kWheelWords) {
      // Wrapped around to the starting word: only its low bits remain.
      w = wheel_bits_[wi] & ~(~0ull << bit);
      if (bit == 0 || w == 0) return kNoEpoch;
    } else if (k > kWheelWords) {
      return kNoEpoch;
    } else {
      w = wheel_bits_[(wi + k) & (kWheelWords - 1)];
    }
  }
}

void EventQueue::redistribute_overflow() {
  std::size_t keep = 0;
  std::int64_t new_min = kNoEpoch;
  for (const HeapHandle& h : overflow_) {
    if (stale(h)) {  // cancelled while parked: drop without migrating
      --far_size_;
      continue;
    }
    const std::int64_t epoch = epoch_of(h.at_ns);
    if (epoch <= horizon_ + static_cast<std::int64_t>(kWheelSize)) {
      const std::size_t slot = static_cast<std::size_t>(epoch) & kWheelMask;
      wheel_[slot].push_back(h);
      wheel_bits_[slot >> 6] |= 1ull << (slot & 63);
    } else {
      overflow_[keep++] = h;
      if (epoch < new_min) new_min = epoch;
    }
  }
  overflow_.resize(keep);
  overflow_min_epoch_ = new_min;
}

void EventQueue::flush_min_far() {
  assert(far_size_ != 0);
  // When the overflow holds (or ties) the earliest far epoch, fold its
  // in-range handles into the wheel first so the bucket flush below always
  // migrates the true minimum. An empty wheel may additionally jump the
  // horizon forward: nothing is parked below overflow_min_epoch_, so the
  // skipped epochs are provably empty.
  const std::int64_t bucket_min = first_bucket_epoch();
  if (!overflow_.empty() && overflow_min_epoch_ <= bucket_min) {
    if (bucket_min == kNoEpoch &&
        overflow_min_epoch_ > horizon_ + static_cast<std::int64_t>(kWheelSize)) {
      horizon_ = overflow_min_epoch_ - 1;
    }
    redistribute_overflow();
  }
  const std::int64_t epoch = first_bucket_epoch();
  if (epoch == kNoEpoch) {
    // Every in-range handle was stale and has been dropped. Recompute the
    // cached minimum before returning: leaving the dropped epoch in
    // far_min_epoch_ would make the next prune() treat the (far-future)
    // overflow remainder as due and jump the horizon out to it, silently
    // disabling the far band for the rest of the run.
    far_min_epoch_ = overflow_.empty() ? kNoEpoch : overflow_min_epoch_;
    return;
  }
  const std::size_t slot = static_cast<std::size_t>(epoch) & kWheelMask;
  std::vector<HeapHandle>& bucket = wheel_[slot];
  far_size_ -= bucket.size();
  for (const HeapHandle& h : bucket) {
    if (!stale(h)) heap_push(h);  // original seq: FIFO ties survive the trip
  }
  bucket.clear();
  wheel_bits_[slot >> 6] &= ~(1ull << (slot & 63));
  if (epoch > horizon_) horizon_ = epoch;
  far_min_epoch_ = first_bucket_epoch();
  if (!overflow_.empty() && overflow_min_epoch_ < far_min_epoch_) {
    far_min_epoch_ = overflow_min_epoch_;
  }
}

void EventQueue::prune() {
  for (;;) {
    while (!heap_.empty() && stale(heap_[0])) heap_pop_top();
    if (far_size_ == 0) break;
    if (heap_.empty()) {
      flush_min_far();
      continue;
    }
    const std::int64_t target = epoch_of(heap_[0].at_ns) + kNearEpochs;
    if (far_min_epoch_ <= target) {
      flush_min_far();
      continue;
    }
    // Nothing due: pull the schedule horizon up to the heap top so events
    // landing within the near window keep going straight into the heap.
    // Safe because every parked epoch is beyond `target`.
    if (horizon_ < target) horizon_ = target;
    break;
  }
  if (!heap_.empty()) __builtin_prefetch(&slots_[heap_[0].slot]);
}

TimeNs EventQueue::next_time() {
  prune();
  return heap_.empty() ? TimeNs::infinite() : TimeNs(heap_[0].at_ns);
}

bool EventQueue::run_next_due(TimeNs deadline, TimeNs& clock) {
  prune();
  if (heap_.empty()) return false;
  const HeapHandle top = heap_[0];
  // After prune() every far handle fires later than the heap top, so the
  // top is the global minimum across both bands.
  if (TimeNs(top.at_ns) > deadline) return false;
  heap_pop_top();
  Slot& s = slots_[top.slot];
  // Move the callback out before freeing the slot: the callback may schedule
  // new events, which can reuse this slot or grow the slab.
  EventCallback fn = std::move(s.fn);
  s.live = false;
  s.next_free = free_head_;
  free_head_ = top.slot;
  --live_;
  clock = TimeNs(top.at_ns);
  fn();
  return true;
}

TimeNs EventQueue::run_next() {
  assert(!empty() && "run_next on empty queue");
  TimeNs at = TimeNs::zero();
  run_next_due(TimeNs::infinite(), at);
  return at;
}

void EventQueue::reset() {
  for (Slot& s : slots_) {
    s.fn.reset();
    s.live = false;
  }
  free_head_ = kNil;
  for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size()); i-- > 0;) {
    slots_[i].next_free = free_head_;
    free_head_ = i;
  }
  heap_.clear();
  live_ = 0;
  next_seq_ = 0;
  if (far_size_ != 0) {
    // clear() keeps each bucket's capacity, so the next run's far band
    // parks without allocating.
    for (std::vector<HeapHandle>& b : wheel_) b.clear();
    overflow_.clear();
    wheel_bits_.fill(0);
    far_size_ = 0;
  }
  far_min_epoch_ = kNoEpoch;
  overflow_min_epoch_ = kNoEpoch;
  horizon_ = kNearEpochs;
}

}  // namespace ccfuzz::sim
