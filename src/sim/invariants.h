// Runtime invariant oracle: an armed-flag violation recorder that the
// scenario runner consults during and after a simulation (packet
// conservation across pool/queue/pipes, cwnd >= 1 MSS, non-negative
// inflight/timestamps, SACK scoreboard consistency).
//
// The recorder lives inside scenario::RunResult so triage can read it off a
// finished run. Disarmed (the default) it is inert: nothing is scheduled,
// nothing is recorded, the violation vector stays empty — which keeps golden
// fingerprints bit-identical and the steady-state hot path allocation-free.
// Armed runs are the diagnostic opt-in the finding-triage pipeline uses to
// tell a CCA weakness apart from a simulator bug before a finding ships.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/time.h"

namespace ccfuzz::sim {

/// One failed invariant check: when it tripped and what was violated.
struct InvariantViolation {
  TimeNs when = TimeNs::zero();
  std::string what;
};

/// Capped violation recorder. `total()` counts every failed check; only the
/// first kMaxRecorded carry a message (a broken conservation law tends to
/// trip on every subsequent audit, and the first occurrences are the ones
/// that matter for attribution).
class Invariants {
 public:
  static constexpr std::size_t kMaxRecorded = 32;

  /// Re-arms (or disarms) the recorder for a fresh run. Disarming clears an
  /// already-empty vector, so warm disarmed runs allocate nothing.
  void reset(bool armed) {
    armed_ = armed;
    total_ = 0;
    violations_.clear();
  }

  bool armed() const { return armed_; }

  /// Records a violation unconditionally (caller already evaluated the
  /// condition). No-op when disarmed.
  void record(TimeNs when, std::string what) {
    if (!armed_) return;
    ++total_;
    if (violations_.size() < kMaxRecorded) {
      violations_.push_back({when, std::move(what)});
    }
  }

  /// Records a violation when `ok` is false. No-op when disarmed.
  void check(bool ok, TimeNs when, const char* what) {
    if (ok || !armed_) return;
    record(when, std::string(what));
  }

  /// True when no check failed (vacuously true disarmed).
  bool clean() const { return total_ == 0; }

  /// Every failed check, including those past the recording cap.
  std::int64_t total() const { return total_; }

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }

 private:
  bool armed_ = false;
  std::int64_t total_ = 0;
  std::vector<InvariantViolation> violations_;
};

}  // namespace ccfuzz::sim
