#include "util/time.h"

#include <cstdio>

namespace ccfuzz {

std::string DurationNs::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", to_millis());
  return buf;
}

std::string TimeNs::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds());
  return buf;
}

std::string DataRate::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fMbps", mbps_f());
  return buf;
}

}  // namespace ccfuzz
