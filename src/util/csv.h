// Minimal CSV emission for bench/figure series.
//
// Benches print figure data as CSV to stdout (and optionally to files under
// an output directory) so the paper's plots can be regenerated with any
// plotting tool.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ccfuzz {

/// Streams rows of a CSV table to an ostream. Values are formatted with
/// enough precision to round-trip doubles used in figures.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, std::initializer_list<std::string_view> header);

  /// Writes one row; the number of values should match the header.
  void row(std::initializer_list<double> values);
  void row(const std::vector<double>& values);
  /// Mixed row with a leading string label (e.g. series name).
  void row(std::string_view label, std::initializer_list<double> values);

  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& out_;
  std::size_t rows_ = 0;
};

/// Formats a double compactly (no trailing zeros beyond precision 9).
std::string format_double(double v);

}  // namespace ccfuzz
