// Fixed-size thread pool for parallel trace evaluation.
//
// Simulations are self-contained and deterministic, so the pool only needs
// fork/join semantics: parallel_for over an index range. Results are written
// by index, so output order (and thus GA behaviour) is independent of thread
// scheduling — the paper's reproducibility argument (§3.6) holds under
// parallelism.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ccfuzz {

/// A minimal fork/join thread pool. Construct once, submit batches.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), distributing across workers, and
  /// blocks until all iterations complete. Exceptions in fn terminate (the
  /// simulator treats internal errors as fatal bugs).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Global pool shared by fuzzing drivers (lazily constructed).
/// Thread count can be capped via the CCFUZZ_THREADS environment variable.
ThreadPool& global_thread_pool();

}  // namespace ccfuzz
