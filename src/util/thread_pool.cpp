#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>

namespace ccfuzz {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Chunked work-stealing via a shared atomic counter keeps task overhead low
  // for large populations.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t n_tasks = std::min(n, workers_.size());
  {
    std::lock_guard<std::mutex> lk(mu_);
    in_flight_ += n_tasks;
    for (std::size_t t = 0; t < n_tasks; ++t) {
      tasks_.push([next, n, &fn] {
        for (;;) {
          const std::size_t i = next->fetch_add(1);
          if (i >= n) return;
          fn(i);
        }
      });
    }
  }
  cv_task_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return in_flight_ == 0; });
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("CCFUZZ_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace ccfuzz
