// Per-type free-list recycling for small heap objects churned once per
// simulation run (CCA instances: every run_scenario builds a fresh
// CongestionControl per flow through a CcaFactory).
//
// A final class T that inherits Recycled<T> gets class-scope operator
// new/delete backed by a thread-local intrusive free list: deleting a T
// parks its block, the next new of the same type pops it. After the first
// run on a thread the alternating new/delete of CCA instances stops touching
// the global allocator entirely — the last piece of the zero-allocation GA
// evaluation path (see tests/sim/steady_state_alloc_test.cpp).
//
// T must be `final`: the unsized operator delete (the overload virtual
// deleting destructors actually call) assumes every block it receives is
// exactly sizeof(T). Blocks are interchangeable with global-new blocks of
// that size, so the first allocations simply seed the list. Lists are
// thread-local: a block freed on another thread joins that thread's cache.
// All cached blocks are returned to the global allocator at thread exit.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>

// Under AddressSanitizer the cache would hand out recycled-but-live blocks,
// masking use-after-free on CCA instances; sanitized builds bypass it so
// every new/delete stays visible to the tool.
#if defined(__SANITIZE_ADDRESS__)
#define CCFUZZ_RECYCLE_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CCFUZZ_RECYCLE_DISABLED 1
#endif
#endif
#ifndef CCFUZZ_RECYCLE_DISABLED
#define CCFUZZ_RECYCLE_DISABLED 0
#endif

namespace ccfuzz::util {

/// False in sanitized builds, where recycling is bypassed. The
/// zero-allocation tests consult this: without the cache, each run's CCA
/// construction legitimately reaches the global allocator.
inline constexpr bool kRecycleEnabled = !CCFUZZ_RECYCLE_DISABLED;

/// CRTP mixin: `class Foo final : public Base, public util::Recycled<Foo>`.
template <class T>
class Recycled {
 public:
  static void* operator new(std::size_t n) {
    static_assert(std::is_final_v<T>,
                  "Recycled<T> requires a final class: the unsized delete "
                  "assumes blocks are exactly sizeof(T)");
    static_assert(sizeof(T) >= sizeof(void*),
                  "recycled objects must fit a free-list link");
    if (!CCFUZZ_RECYCLE_DISABLED && n == sizeof(T)) {
      Cache& c = cache();
      if (c.live && c.head != nullptr) {
        Node* node = c.head;
        c.head = node->next;
        return node;
      }
    }
    return ::operator new(n);
  }

  static void operator delete(void* p) noexcept { release(p, sizeof(T)); }
  static void operator delete(void* p, std::size_t n) noexcept {
    release(p, n);
  }

 private:
  struct Node {
    Node* next;
  };
  // The cache itself is trivially destructible, so it can be read safely by
  // other thread_local destructors that run after the reaper (a
  // thread_local scenario::RunContext, for instance, still holds live CCA
  // instances and is torn down in reverse construction order — often after
  // the cache's first touch). The reaper drains the list at thread exit and
  // marks the cache dead; late frees then go straight to the global
  // allocator instead of leaking into a drained list.
  struct Cache {
    Node* head = nullptr;
    bool live = true;
  };
  struct Reaper {
    Cache* cache;
    ~Reaper() {
      cache->live = false;
      while (cache->head != nullptr) {
        Node* n = cache->head;
        cache->head = n->next;
        ::operator delete(n);
      }
    }
  };
  static Cache& cache() {
    thread_local Cache c;
    thread_local Reaper reaper{&c};
    return c;
  }
  static void release(void* p, std::size_t n) noexcept {
    if (p == nullptr) return;
    if (CCFUZZ_RECYCLE_DISABLED) {
      ::operator delete(p);
      return;
    }
    Cache& c = cache();
    if (n == sizeof(T) && c.live) {
      Node* node = static_cast<Node*>(p);
      node->next = c.head;
      c.head = node;
      return;
    }
    ::operator delete(p);
  }
};

}  // namespace ccfuzz::util
