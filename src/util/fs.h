// Crash-safe file writes.
//
// Checkpoints are only useful if a crash mid-write cannot leave a torn file
// where a good one used to be. write_file_atomic writes to `<path>.tmp`,
// fsyncs, and renames into place — readers observe either the old complete
// file or the new complete file, never a prefix.
#pragma once

#include <string>

#include "util/error.h"

namespace ccfuzz {

/// Writes `body` to `path` via write-to-temp + fsync + rename. The parent
/// directory must exist. `sync` skips the fsync (tests, throwaway files).
Error write_file_atomic(const std::string& path, const std::string& body,
                        bool sync = true);

}  // namespace ccfuzz
