// Crash-safe file writes and filesystem probes.
//
// Checkpoints are only useful if a crash mid-write cannot leave a torn file
// where a good one used to be. write_file_atomic writes to `<path>.tmp`,
// fsyncs, and renames into place — readers observe either the old complete
// file or the new complete file, never a prefix. write_file_rotating adds a
// last-known-good fallback: the previous complete file survives as
// `<path>.prev`, so even a corrupted *head* (bad sector, fsync lie) degrades
// to the prior snapshot instead of a fresh start.
//
// Every failure path here returns a typed Error (kIo / kNoSpace), and every
// syscall is a fault-injection site (src/faultinject/) — short writes,
// failed rename/fsync and ENOSPC are injected from the same lines the real
// failures would take, which is how the robustness tests drive this code
// into its corners deterministically.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.h"

namespace ccfuzz {

/// Writes `body` to `path` via write-to-temp + fsync + rename. The parent
/// directory must exist. `sync` skips the fsync (tests, throwaway files).
/// ENOSPC surfaces as Error::Code::kNoSpace, other failures as kIo.
Error write_file_atomic(const std::string& path, const std::string& body,
                        bool sync = true);

/// write_file_atomic, preserving the file being replaced as `<path>.prev`.
/// The rotation happens between two renames (never a copy), so a crash at
/// any point leaves at least one complete snapshot: the new head, the old
/// head, or the old head demoted to `.prev`. A failure demoting the old
/// head is tolerated (the new head still lands); a failure landing the new
/// head is returned typed with the old head still in place.
Error write_file_rotating(const std::string& path, const std::string& body,
                          bool sync = true);

/// Free bytes available to unprivileged writers on the filesystem holding
/// `path` (statvfs f_bavail). Typed kIo error when the path cannot be
/// statted.
Result<std::uint64_t> free_bytes(const std::string& path);

/// Repairs a line-oriented append file after a crash: when the file's final
/// line is torn (no trailing '\n'), truncates it back to the end of the
/// last complete line so appending resumes on a clean boundary. Returns the
/// number of bytes dropped — 0 for a clean, empty, or missing file.
Result<std::uint64_t> truncate_torn_tail(const std::string& path);

}  // namespace ccfuzz
