// Deterministic random number generation.
//
// The GA's reproducibility guarantee (paper §3.6) requires that every source
// of randomness flows from an explicit seed. We use xoshiro256** seeded via
// splitmix64: fast, high quality, and trivially forkable so each trace /
// island / simulation gets an independent deterministic stream.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>

namespace ccfuzz {

/// splitmix64 step; used for seeding and for hashing seeds together.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Combines a seed with a stream id into a new independent seed.
constexpr std::uint64_t fork_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  return splitmix64(s);
}

/// xoshiro256** PRNG. Deterministic, copyable, no global state.
class Rng {
 public:
  /// Constructs from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Returns the next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Fair coin toss.
  bool coin() { return (next_u64() & 1) != 0; }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return next_double() < p; }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  /// Derives an independent child generator for stream `stream`.
  Rng fork(std::uint64_t stream) const {
    return Rng(fork_seed(s_[0] ^ s_[3], stream));
  }

  /// Raw generator state, for checkpointing. Restoring via set_state()
  /// resumes the stream at exactly the next draw.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  /// Restores state captured by state().
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  /// Unbiased bounded sample via rejection (Lemire-style threshold).
  std::uint64_t bounded(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  std::uint64_t s_[4]{};
};

}  // namespace ccfuzz
