// Small statistics helpers used by scoring functions and analysis.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ccfuzz {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than 2 samples.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Copies + sorts internally;
/// 0 for an empty span.
double percentile(std::span<const double> xs, double p);

/// Mean of the lowest `fraction` of the samples (paper §3.4: "average of the
/// lowest 20% of the windows"). At least one sample is always included.
double mean_of_lowest_fraction(std::span<const double> xs, double fraction);

/// Same statistic computed in place: sorts `xs` and averages the lowest
/// `fraction`. The allocation-free flavour scoring hot paths use with
/// caller-owned scratch storage.
double mean_of_lowest_fraction_inplace(std::span<double> xs, double fraction);

/// Minimum / maximum; 0 for an empty span.
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Running summary accumulator (count / mean / min / max).
class Summary {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Buckets event timestamps (seconds) into fixed-width windows and returns
/// per-window rates in events/second over [t_start, t_end).
std::vector<double> windowed_rate(std::span<const double> event_times_s,
                                  double t_start_s, double t_end_s,
                                  double window_s);

}  // namespace ccfuzz
