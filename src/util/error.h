// Structured error handling for load/parse paths.
//
// The simulator core throws on programmer errors, but campaign-facing load
// paths (trace files, archives, checkpoints) fail for operational reasons —
// truncated files after a crash, version skew, disk full — and those must
// degrade ("start fresh + warn"), never kill a long campaign. Result<T>
// carries either a value or an Error with a machine-checkable code, so
// callers can branch on *why* a load failed without string-matching what().
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace ccfuzz {

struct Error {
  enum class Code {
    kOk = 0,
    kIo,         ///< open/read/write/rename failure
    kParse,      ///< syntactically malformed content
    kCorrupt,    ///< parsed but semantically invalid (bad ranges, duplicates)
    kVersion,    ///< recognized format, unsupported version
    kTruncated,  ///< file ends mid-structure (classic crash artifact)
    kMismatch,   ///< valid content that does not match the expected config
    kNoSpace,    ///< ENOSPC: the disk is full (degrade/drain, don't retry)
  };

  Code code = Code::kOk;
  std::string message;

  bool ok() const { return code == Code::kOk; }
  /// True when this carries an error (reads naturally in `if (err)`).
  explicit operator bool() const { return !ok(); }

  static Error success() { return {}; }
  static Error io(std::string msg) { return {Code::kIo, std::move(msg)}; }
  static Error parse(std::string msg) { return {Code::kParse, std::move(msg)}; }
  static Error corrupt(std::string msg) {
    return {Code::kCorrupt, std::move(msg)};
  }
  static Error version(std::string msg) {
    return {Code::kVersion, std::move(msg)};
  }
  static Error truncated(std::string msg) {
    return {Code::kTruncated, std::move(msg)};
  }
  static Error mismatch(std::string msg) {
    return {Code::kMismatch, std::move(msg)};
  }
  static Error no_space(std::string msg) {
    return {Code::kNoSpace, std::move(msg)};
  }
};

/// Display name of an error code ("io", "parse", ...).
constexpr const char* to_string(Error::Code c) {
  switch (c) {
    case Error::Code::kOk: return "ok";
    case Error::Code::kIo: return "io";
    case Error::Code::kParse: return "parse";
    case Error::Code::kCorrupt: return "corrupt";
    case Error::Code::kVersion: return "version";
    case Error::Code::kTruncated: return "truncated";
    case Error::Code::kMismatch: return "mismatch";
    case Error::Code::kNoSpace: return "no_space";
  }
  return "?";
}

/// A value or an Error — the non-throwing sibling of the load_* APIs.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Valid only when ok().
  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Valid only when !ok().
  const Error& error() const { return error_; }

 private:
  std::optional<T> value_;
  Error error_;
};

}  // namespace ccfuzz
