#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace ccfuzz {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double mean_of_lowest_fraction_inplace(std::span<double> xs, double fraction) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  std::size_t k = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(xs.size())));
  k = std::clamp<std::size_t>(k, 1, xs.size());
  double s = 0.0;
  for (std::size_t i = 0; i < k; ++i) s += xs[i];
  return s / static_cast<double>(k);
}

double mean_of_lowest_fraction(std::span<const double> xs, double fraction) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  return mean_of_lowest_fraction_inplace(v, fraction);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

std::vector<double> windowed_rate(std::span<const double> event_times_s,
                                  double t_start_s, double t_end_s,
                                  double window_s) {
  std::vector<double> out;
  if (t_end_s <= t_start_s || window_s <= 0.0) return out;
  const std::size_t n_windows = static_cast<std::size_t>(
      std::ceil((t_end_s - t_start_s) / window_s));
  out.assign(n_windows, 0.0);
  for (double t : event_times_s) {
    if (t < t_start_s || t >= t_end_s) continue;
    const std::size_t w = static_cast<std::size_t>((t - t_start_s) / window_s);
    if (w < n_windows) out[w] += 1.0;
  }
  for (std::size_t w = 0; w < n_windows; ++w) {
    // The last window may be partial; normalize by its true width so the
    // "lowest 20% of windows" score is not biased by truncation.
    const double lo = t_start_s + static_cast<double>(w) * window_s;
    const double width = std::min(window_s, t_end_s - lo);
    out[w] /= width;
  }
  return out;
}

}  // namespace ccfuzz
