// Strong types for simulated time, durations and data rates.
//
// All simulation time is held as signed 64-bit nanoseconds. At 12 Mbps a
// 1500 B frame serializes in exactly 1 ms, so every constant in the paper is
// exactly representable. Strong types keep seconds/milliseconds/packets from
// being mixed up silently.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace ccfuzz {

/// A span of simulated time in nanoseconds. Value type, totally ordered.
class DurationNs {
 public:
  constexpr DurationNs() = default;
  constexpr explicit DurationNs(std::int64_t ns) : ns_(ns) {}

  /// Factory helpers. All exact (integer nanoseconds).
  static constexpr DurationNs nanos(std::int64_t v) { return DurationNs(v); }
  static constexpr DurationNs micros(std::int64_t v) { return DurationNs(v * 1'000); }
  static constexpr DurationNs millis(std::int64_t v) { return DurationNs(v * 1'000'000); }
  static constexpr DurationNs seconds(std::int64_t v) { return DurationNs(v * 1'000'000'000); }
  /// Fractional seconds; rounds to nearest nanosecond.
  static constexpr DurationNs from_seconds_f(double s) {
    return DurationNs(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr DurationNs zero() { return DurationNs(0); }
  static constexpr DurationNs infinite() {
    return DurationNs(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_infinite() const { return ns_ == infinite().ns(); }

  constexpr auto operator<=>(const DurationNs&) const = default;

  constexpr DurationNs operator+(DurationNs o) const { return DurationNs(ns_ + o.ns_); }
  constexpr DurationNs operator-(DurationNs o) const { return DurationNs(ns_ - o.ns_); }
  constexpr DurationNs operator*(std::int64_t k) const { return DurationNs(ns_ * k); }
  constexpr DurationNs operator/(std::int64_t k) const { return DurationNs(ns_ / k); }
  constexpr double operator/(DurationNs o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  constexpr DurationNs& operator+=(DurationNs o) { ns_ += o.ns_; return *this; }
  constexpr DurationNs& operator-=(DurationNs o) { ns_ -= o.ns_; return *this; }
  constexpr DurationNs operator-() const { return DurationNs(-ns_); }

  /// Scales by a double, rounding to the nearest nanosecond.
  constexpr DurationNs scaled(double k) const {
    return DurationNs(static_cast<std::int64_t>(static_cast<double>(ns_) * k + 0.5));
  }

  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulated clock, nanoseconds since sim start.
class TimeNs {
 public:
  constexpr TimeNs() = default;
  constexpr explicit TimeNs(std::int64_t ns) : ns_(ns) {}

  static constexpr TimeNs zero() { return TimeNs(0); }
  static constexpr TimeNs infinite() {
    return TimeNs(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr TimeNs millis(std::int64_t v) { return TimeNs(v * 1'000'000); }
  static constexpr TimeNs seconds(std::int64_t v) { return TimeNs(v * 1'000'000'000); }
  static constexpr TimeNs from_seconds_f(double s) {
    return TimeNs(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr bool is_infinite() const { return ns_ == infinite().ns(); }

  constexpr auto operator<=>(const TimeNs&) const = default;

  constexpr TimeNs operator+(DurationNs d) const { return TimeNs(ns_ + d.ns()); }
  constexpr TimeNs operator-(DurationNs d) const { return TimeNs(ns_ - d.ns()); }
  constexpr DurationNs operator-(TimeNs o) const { return DurationNs(ns_ - o.ns_); }
  constexpr TimeNs& operator+=(DurationNs d) { ns_ += d.ns(); return *this; }

  std::string to_string() const;

 private:
  std::int64_t ns_ = 0;
};

/// A data rate in bits per second. Converts between packet service intervals
/// and rates for fixed packet sizes.
class DataRate {
 public:
  constexpr DataRate() = default;
  constexpr explicit DataRate(std::int64_t bps) : bps_(bps) {}

  static constexpr DataRate bps(std::int64_t v) { return DataRate(v); }
  static constexpr DataRate kbps(std::int64_t v) { return DataRate(v * 1'000); }
  static constexpr DataRate mbps(std::int64_t v) { return DataRate(v * 1'000'000); }
  static constexpr DataRate zero() { return DataRate(0); }

  constexpr std::int64_t bits_per_second() const { return bps_; }
  constexpr double mbps_f() const { return static_cast<double>(bps_) * 1e-6; }
  constexpr bool is_zero() const { return bps_ == 0; }

  constexpr auto operator<=>(const DataRate&) const = default;

  /// Time to serialize `bytes` at this rate. Requires a non-zero rate.
  constexpr DurationNs transfer_time(std::int64_t bytes) const {
    return DurationNs((bytes * 8 * 1'000'000'000) / bps_);
  }

  /// Rate that serializes `bytes` every `interval`.
  static constexpr DataRate from_bytes_per(std::int64_t bytes, DurationNs interval) {
    return DataRate(bytes * 8 * 1'000'000'000 / interval.ns());
  }

  /// Scales the rate by a dimensionless gain (e.g. BBR pacing gain).
  constexpr DataRate scaled(double k) const {
    return DataRate(static_cast<std::int64_t>(static_cast<double>(bps_) * k + 0.5));
  }

  std::string to_string() const;

 private:
  std::int64_t bps_ = 0;
};

}  // namespace ccfuzz
