// Kathleen Nichols' windowed min/max estimator, as used by Linux
// (lib/minmax.c) and by BBR for its 10-round-trip bandwidth max-filter and
// 10-second min-RTT filter.
//
// The filter tracks the best (max or min) sample seen over a sliding window,
// plus second- and third-best candidates positioned so the estimate degrades
// gracefully as the best sample ages out.
#pragma once

#include <cstdint>

namespace ccfuzz {

/// Comparator tags for WindowedFilter.
struct MaxFilterTag {
  template <typename V>
  static bool better(V candidate, V incumbent) { return candidate >= incumbent; }
};
struct MinFilterTag {
  template <typename V>
  static bool better(V candidate, V incumbent) { return candidate <= incumbent; }
};

/// Windowed extremum filter over samples tagged with a monotonically
/// non-decreasing "time" (any integer unit: round count, nanoseconds, ...).
///
/// V: sample value type (integer or double). T: time type (integer).
/// Tag: MaxFilterTag or MinFilterTag.
template <typename V, typename T, typename Tag>
class WindowedFilter {
 public:
  WindowedFilter() = default;
  /// `window` is the maximum age (in time units) a best-sample may reach
  /// before it is discarded.
  explicit WindowedFilter(T window) : window_(window) {}

  /// Resets the filter so `sample` at `time` is the sole estimate.
  void reset(V sample, T time) {
    est_[0] = est_[1] = est_[2] = Entry{sample, time};
  }

  /// Changes the window length (takes effect on subsequent updates).
  void set_window(T window) { window_ = window; }

  /// Feeds a new sample; returns the updated windowed estimate.
  V update(V sample, T time) {
    if (empty_or_better(sample) || time - est_[2].time > window_) {
      // New best, or the entire pipeline has expired.
      reset(sample, time);
      return get();
    }
    if (Tag::better(sample, est_[1].value)) {
      est_[1] = Entry{sample, time};
      est_[2] = est_[1];
    } else if (Tag::better(sample, est_[2].value)) {
      est_[2] = Entry{sample, time};
    }
    // Age out the best estimate.
    if (time - est_[0].time > window_) {
      est_[0] = est_[1];
      est_[1] = est_[2];
      est_[2] = Entry{sample, time};
      if (time - est_[0].time > window_) {
        est_[0] = est_[1];
        est_[1] = est_[2];
      }
    } else if (est_[1].time == est_[0].time && time - est_[1].time > window_ / 4) {
      // Best is in first quarter of window: push 2nd choice forward.
      est_[1] = est_[2] = Entry{sample, time};
    } else if (est_[2].time == est_[1].time && time - est_[2].time > window_ / 2) {
      est_[2] = Entry{sample, time};
    }
    return get();
  }

  /// Current windowed estimate (value of the best in-window sample).
  V get() const { return est_[0].value; }
  /// Time at which the current best sample was recorded.
  T best_time() const { return est_[0].time; }

 private:
  struct Entry {
    V value{};
    T time{};
  };
  bool empty_or_better(V sample) const {
    return !initialized() || Tag::better(sample, est_[0].value);
  }
  bool initialized() const {
    // reset() always sets all three; default state has all zero times/values.
    return !(est_[0].time == T{} && est_[0].value == V{} &&
             est_[2].time == T{} && est_[2].value == V{});
  }

  T window_{};
  Entry est_[3]{};
};

template <typename V, typename T>
using WindowedMax = WindowedFilter<V, T, MaxFilterTag>;
template <typename V, typename T>
using WindowedMin = WindowedFilter<V, T, MinFilterTag>;

}  // namespace ccfuzz
