#include "util/csv.h"

#include <cstdio>

namespace ccfuzz {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

CsvWriter::CsvWriter(std::ostream& out,
                     std::initializer_list<std::string_view> header)
    : out_(out) {
  bool first = true;
  for (auto h : header) {
    if (!first) out_ << ',';
    out_ << h;
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  bool first = true;
  for (double v : values) {
    if (!first) out_ << ',';
    out_ << format_double(v);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& values) {
  bool first = true;
  for (double v : values) {
    if (!first) out_ << ',';
    out_ << format_double(v);
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row(std::string_view label, std::initializer_list<double> values) {
  out_ << label;
  for (double v : values) out_ << ',' << format_double(v);
  out_ << '\n';
  ++rows_;
}

}  // namespace ccfuzz
