#include "util/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace ccfuzz {

Error write_file_atomic(const std::string& path, const std::string& body,
                        bool sync) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Error::io("cannot open " + tmp + ": " + std::strerror(errno));
  }
  const char* p = body.data();
  std::size_t left = body.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Error e =
          Error::io("write failed for " + tmp + ": " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return e;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    const Error e =
        Error::io("fsync failed for " + tmp + ": " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return e;
  }
  if (::close(fd) != 0) {
    return Error::io("close failed for " + tmp + ": " + std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Error e = Error::io("rename " + tmp + " -> " + path + ": " +
                              std::strerror(errno));
    ::unlink(tmp.c_str());
    return e;
  }
  return Error::success();
}

}  // namespace ccfuzz
