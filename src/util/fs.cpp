#include "util/fs.h"

#include <fcntl.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "faultinject/fault_plan.h"

namespace ccfuzz {
namespace {

/// Maps an errno from a write path onto the repo's typed errors.
Error write_errno_error(const std::string& what, int err) {
  const std::string msg = what + ": " + std::strerror(err);
  return err == ENOSPC ? Error::no_space(msg) : Error::io(msg);
}

/// Writes `body` into `tmp` (created/truncated), fsyncs when asked, closes.
/// On failure the tmp file is left behind exactly as a real crash would
/// leave it — callers only ever publish via rename, so a torn tmp is inert.
Error write_tmp_file(const std::string& tmp, const std::string& body,
                     bool sync) {
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return write_errno_error("cannot open " + tmp, errno);
  }
  if (faultinject::should_fire(faultinject::FaultSite::kNoSpace)) {
    ::close(fd);
    return Error::no_space("fault injection: ENOSPC writing " + tmp);
  }
  if (faultinject::should_fire(faultinject::FaultSite::kShortWrite)) {
    // A short write persists a prefix, then fails — the torn tmp stays on
    // disk like a crash artifact; the target must remain untouched.
    const std::size_t half = body.size() / 2;
    ssize_t ignored = ::write(fd, body.data(), half);
    (void)ignored;
    ::close(fd);
    return Error::io("fault injection: short write on " + tmp);
  }
  const char* p = body.data();
  std::size_t left = body.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Error e = write_errno_error("write failed for " + tmp, errno);
      ::close(fd);
      return e;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (sync) {
    if (faultinject::should_fire(faultinject::FaultSite::kFsyncFail)) {
      ::close(fd);
      return Error::io("fault injection: fsync failed for " + tmp);
    }
    if (::fsync(fd) != 0) {
      const Error e = write_errno_error("fsync failed for " + tmp, errno);
      ::close(fd);
      return e;
    }
  }
  if (::close(fd) != 0) {
    return write_errno_error("close failed for " + tmp, errno);
  }
  return Error::success();
}

/// The publish step: rename tmp into place (fault-injectable).
Error rename_into_place(const std::string& tmp, const std::string& path) {
  if (faultinject::should_fire(faultinject::FaultSite::kRenameFail)) {
    return Error::io("fault injection: rename " + tmp + " -> " + path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return write_errno_error("rename " + tmp + " -> " + path, errno);
  }
  return Error::success();
}

}  // namespace

Error write_file_atomic(const std::string& path, const std::string& body,
                        bool sync) {
  const std::string tmp = path + ".tmp";
  if (Error e = write_tmp_file(tmp, body, sync)) return e;
  return rename_into_place(tmp, path);
}

Error write_file_rotating(const std::string& path, const std::string& body,
                          bool sync) {
  const std::string tmp = path + ".tmp";
  if (Error e = write_tmp_file(tmp, body, sync)) return e;
  // Demote the current head to .prev before landing the new one. A failure
  // here (cross-device weirdness, permissions) costs the fallback, not the
  // checkpoint — proceed and land the head anyway. ENOENT (first write) is
  // the normal case, not a failure.
  const std::string prev = path + ".prev";
  if (std::rename(path.c_str(), prev.c_str()) != 0 && errno != ENOENT) {
    // Deliberately not fault-injected: the injectable publish step below is
    // the one whose failure semantics matter (head intact, typed error).
  }
  return rename_into_place(tmp, path);
}

Result<std::uint64_t> free_bytes(const std::string& path) {
  if (faultinject::should_fire(faultinject::FaultSite::kLowDisk)) {
    return std::uint64_t{0};
  }
  struct statvfs sv;
  if (::statvfs(path.c_str(), &sv) != 0) {
    return Error::io("statvfs " + path + ": " + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(sv.f_bavail) *
         static_cast<std::uint64_t>(sv.f_frsize);
}

Result<std::uint64_t> truncate_torn_tail(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return std::uint64_t{0};
    return Error::io("cannot open " + path + ": " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    const Error e = Error::io("lseek " + path + ": " + std::strerror(errno));
    ::close(fd);
    return e;
  }
  // Walk backwards in chunks looking for the last '\n'.
  char buf[4096];
  off_t keep = 0;  // bytes up to and including the last newline
  bool found = false;
  for (off_t end = size; end > 0 && !found;) {
    const off_t chunk =
        end >= static_cast<off_t>(sizeof buf) ? sizeof buf : end;
    const off_t at = end - chunk;
    if (::pread(fd, buf, static_cast<std::size_t>(chunk), at) != chunk) {
      const Error e = Error::io("pread " + path + ": " + std::strerror(errno));
      ::close(fd);
      return e;
    }
    for (off_t i = chunk; i-- > 0;) {
      if (buf[i] == '\n') {
        keep = at + i + 1;
        found = true;
        break;
      }
    }
    end = at;
  }
  const std::uint64_t dropped = static_cast<std::uint64_t>(size - keep);
  if (dropped > 0 && ::ftruncate(fd, keep) != 0) {
    const Error e =
        Error::io("ftruncate " + path + ": " + std::strerror(errno));
    ::close(fd);
    return e;
  }
  ::close(fd);
  return dropped;
}

}  // namespace ccfuzz
