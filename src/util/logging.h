// Lightweight leveled logging.
//
// Simulations are hot loops; logging must be zero-cost when disabled. The
// level is a process-wide atomic checked before any formatting happens.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <utility>

namespace ccfuzz {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace detail {
inline std::atomic<int>& log_level_storage() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}
}  // namespace detail

/// Sets the process-wide log level.
inline void set_log_level(LogLevel level) {
  detail::log_level_storage().store(static_cast<int>(level),
                                    std::memory_order_relaxed);
}

/// Returns true if messages at `level` are currently emitted.
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <=
         detail::log_level_storage().load(std::memory_order_relaxed);
}

/// printf-style logging; formatting is skipped entirely when disabled.
template <typename... Args>
void log_at(LogLevel level, const char* fmt, Args&&... args) {
  if (!log_enabled(level)) return;
  static const char* names[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  std::fprintf(stderr, "[%s] ", names[static_cast<int>(level)]);
  if constexpr (sizeof...(Args) == 0) {
    std::fputs(fmt, stderr);
  } else {
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
  }
  std::fputc('\n', stderr);
}

#define CCFUZZ_LOG_DEBUG(...) ::ccfuzz::log_at(::ccfuzz::LogLevel::kDebug, __VA_ARGS__)
#define CCFUZZ_LOG_INFO(...) ::ccfuzz::log_at(::ccfuzz::LogLevel::kInfo, __VA_ARGS__)
#define CCFUZZ_LOG_WARN(...) ::ccfuzz::log_at(::ccfuzz::LogLevel::kWarn, __VA_ARGS__)
#define CCFUZZ_LOG_ERROR(...) ::ccfuzz::log_at(::ccfuzz::LogLevel::kError, __VA_ARGS__)

}  // namespace ccfuzz
