#include "fuzz/elite_archive.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "trace/trace_io.h"

namespace ccfuzz::fuzz {
namespace {

/// Saturating quantizer onto kBuckets buckets: exact for small values,
/// log-ish above, so the low end of every axis (where most runs land) keeps
/// resolution while heavy-tailed runs still separate.
std::size_t quantize8(unsigned v) {
  if (v <= 4) return v;
  if (v <= 6) return 5;
  if (v <= 10) return 6;
  return 7;
}

constexpr const char* kMagic = "# ccfuzz-archive v1";

void write_hex_words(std::ostream& os, const coverage::CoverageBitmap& map) {
  os << std::hex;
  for (std::size_t i = 0; i < coverage::CoverageBitmap::kWords; ++i) {
    os << (i == 0 ? "" : " ") << map.words[i];
  }
  os << std::dec;
}

bool read_hex_words(std::istringstream& is, coverage::CoverageBitmap& map) {
  is >> std::hex;
  for (auto& w : map.words) {
    if (!(is >> w)) return false;
  }
  return true;
}

}  // namespace

EliteArchive::EliteArchive() : cells_(kCells) { occupied_.reserve(kCells); }

std::size_t EliteArchive::cell_index(const coverage::BehaviorDescriptor& d) {
  std::size_t idx = quantize8(d.state_transitions);
  idx = idx * kBuckets + quantize8(d.rtt_spread);
  idx = idx * kBuckets + quantize8(d.max_backoff);
  idx = idx * kBuckets + quantize8(d.cwnd_span);
  return idx;
}

EliteArchive::InsertResult EliteArchive::insert(const trace::Trace& genome,
                                                const Evaluation& eval) {
  InsertResult r;
  if (!eval.coverage.valid) return r;
  r.fresh_bits = union_map_.merge_count_new(eval.coverage.bitmap);
  union_bits_ += r.fresh_bits;
  r.cell = cell_index(eval.coverage.descriptor);

  Cell& c = cells_[r.cell];
  if (!c.occupied) {
    c.occupied = true;
    occupied_.push_back(static_cast<std::uint16_t>(r.cell));
    r.new_cell = true;
  } else if (eval.score.total() > c.eval.score.total()) {
    r.improved = true;
  } else {
    return r;  // incumbent stands (ties included: elites never churn)
  }
  // Copy-assign into the incumbent's buffers: warm replacements reuse the
  // stamp/goodput vector capacities and allocate nothing.
  c.genome = genome;
  c.eval = eval;
  return r;
}

std::size_t EliteArchive::merge_from(const EliteArchive& other) {
  union_bits_ += union_map_.merge_count_new(other.union_map_);
  std::size_t changed = 0;
  for (const std::uint16_t idx : other.occupied_) {
    const Cell& theirs = other.cells_[idx];
    Cell& ours = cells_[idx];
    if (!ours.occupied) {
      ours.occupied = true;
      occupied_.push_back(idx);
    } else if (!(theirs.eval.score.total() > ours.eval.score.total())) {
      continue;  // incumbent stands (ties included), as in insert()
    }
    ours.genome = theirs.genome;
    ours.eval = theirs.eval;
    ++changed;
  }
  return changed;
}

const EliteArchive::Cell& EliteArchive::sample(Rng& rng) const {
  const std::size_t pick = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(occupied_.size()) - 1));
  return cells_[occupied_[pick]];
}

void EliteArchive::save(std::ostream& os, bool terminated) const {
  os << kMagic << "\n";
  os << "# cells " << occupied_.size() << "\n";
  os << "# union ";
  write_hex_words(os, union_map_);
  os << "\n";
  os << std::setprecision(17);
  for (const std::uint16_t idx : occupied_) {
    const Cell& c = cells_[idx];
    os << "# entry " << idx << "\n";
    os << "# score " << c.eval.score.performance << " " << c.eval.score.trace
       << "\n";
    const auto& d = c.eval.coverage.descriptor;
    os << "# desc " << +d.state_transitions << " " << +d.rtt_spread << " "
       << +d.max_backoff << " " << +d.cwnd_span << " " << +d.event_mask << " "
       << +d.cca_states << "\n";
    os << "# bits " << c.eval.coverage.bits << "\n";
    os << "# map ";
    write_hex_words(os, c.eval.coverage.bitmap);
    os << "\n";
    trace::write_trace(os, c.genome);
    os << "# end entry\n";
  }
  if (terminated) os << "# end archive\n";
  if (!os) throw std::runtime_error("archive write failed");
}

void EliteArchive::save_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    throw std::runtime_error("cannot open archive file for write: " + path);
  }
  save(f);
}

Result<EliteArchive> EliteArchive::try_load(std::istream& is) {
  EliteArchive a;
  std::string line;
  if (!std::getline(is, line)) {
    return Error::truncated("archive: empty input");
  }
  if (line != kMagic) {
    if (line.rfind("# ccfuzz-archive", 0) == 0) {
      return Error::version("archive: unsupported format version: " + line);
    }
    return Error::parse("archive: missing magic header");
  }

  bool in_entry = false;
  std::size_t entry_idx = 0;
  Evaluation entry_eval;
  std::ostringstream trace_buf;

  // Returns kOk or the parse failure of the embedded trace block.
  const auto finish_entry = [&]() -> Error {
    std::istringstream ts(trace_buf.str());
    Result<trace::Trace> genome = trace::try_read_trace(ts);
    if (!genome) return genome.error();
    if (entry_idx >= kCells) {
      return Error::corrupt("archive: cell index out of range");
    }
    Cell& c = a.cells_[entry_idx];
    if (c.occupied) return Error::corrupt("archive: duplicate cell");
    c.occupied = true;
    c.genome = std::move(*genome);
    c.eval = entry_eval;
    a.occupied_.push_back(static_cast<std::uint16_t>(entry_idx));
    a.union_map_.merge_count_new(c.eval.coverage.bitmap);
    return Error::success();
  };

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string hash, key;
    if (line[0] == '#') {
      ls >> hash >> key;
    }
    if (key == "cells" || key == "union") {
      if (key == "union" && !read_hex_words(ls, a.union_map_)) {
        return Error::parse("archive: bad union bitmap line");
      }
      continue;
    }
    if (key == "entry") {
      if (in_entry) return Error::corrupt("archive: nested entry");
      if (!(ls >> entry_idx)) {
        return Error::parse("archive: bad entry header");
      }
      in_entry = true;
      entry_eval = Evaluation{};
      entry_eval.coverage.valid = true;
      trace_buf.str("");
      trace_buf.clear();
      continue;
    }
    if (key == "end") {
      std::string what;
      ls >> what;
      if (what == "archive") {
        // Embedded-block terminator (checkpoints). Stops here, leaving the
        // enclosing stream positioned after this line.
        if (in_entry) return Error::truncated("archive: truncated entry");
        a.union_bits_ = a.union_map_.count();
        return a;
      }
      if (!in_entry) return Error::corrupt("archive: stray end marker");
      if (Error e = finish_entry()) return e;
      in_entry = false;
      continue;
    }
    if (!in_entry) return Error::corrupt("archive: content outside entry");
    if (key == "score") {
      if (!(ls >> entry_eval.score.performance >> entry_eval.score.trace)) {
        return Error::parse("archive: bad score line");
      }
    } else if (key == "desc") {
      unsigned v[6];
      if (!(ls >> v[0] >> v[1] >> v[2] >> v[3] >> v[4] >> v[5])) {
        return Error::parse("archive: bad descriptor line");
      }
      auto& d = entry_eval.coverage.descriptor;
      d.state_transitions = static_cast<std::uint8_t>(v[0]);
      d.rtt_spread = static_cast<std::uint8_t>(v[1]);
      d.max_backoff = static_cast<std::uint8_t>(v[2]);
      d.cwnd_span = static_cast<std::uint8_t>(v[3]);
      d.event_mask = static_cast<std::uint8_t>(v[4]);
      d.cca_states = static_cast<std::uint8_t>(v[5]);
    } else if (key == "bits") {
      if (!(ls >> entry_eval.coverage.bits)) {
        return Error::parse("archive: bad bits line");
      }
    } else if (key == "map") {
      if (!read_hex_words(ls, entry_eval.coverage.bitmap)) {
        return Error::parse("archive: bad bitmap line");
      }
    } else {
      // Anything else belongs to the embedded trace_io block.
      trace_buf << line << "\n";
    }
  }
  if (in_entry) return Error::truncated("archive: truncated entry");
  a.union_bits_ = a.union_map_.count();
  return a;
}

Result<EliteArchive> EliteArchive::try_load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Error::io("cannot open archive file: " + path);
  return try_load(f);
}

EliteArchive EliteArchive::load(std::istream& is) {
  Result<EliteArchive> r = try_load(is);
  if (!r) throw std::runtime_error(r.error().message);
  return std::move(*r);
}

EliteArchive EliteArchive::load_file(const std::string& path) {
  Result<EliteArchive> r = try_load_file(path);
  if (!r) throw std::runtime_error(r.error().message);
  return std::move(*r);
}

}  // namespace ccfuzz::fuzz
