#include "fuzz/elite_archive.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "trace/trace_io.h"

namespace ccfuzz::fuzz {
namespace {

/// Saturating quantizer onto kBuckets buckets: exact for small values,
/// log-ish above, so the low end of every axis (where most runs land) keeps
/// resolution while heavy-tailed runs still separate.
std::size_t quantize8(unsigned v) {
  if (v <= 4) return v;
  if (v <= 6) return 5;
  if (v <= 10) return 6;
  return 7;
}

constexpr const char* kMagic = "# ccfuzz-archive v1";

void write_hex_words(std::ostream& os, const coverage::CoverageBitmap& map) {
  os << std::hex;
  for (std::size_t i = 0; i < coverage::CoverageBitmap::kWords; ++i) {
    os << (i == 0 ? "" : " ") << map.words[i];
  }
  os << std::dec;
}

coverage::CoverageBitmap read_hex_words(std::istringstream& is) {
  coverage::CoverageBitmap map;
  is >> std::hex;
  for (auto& w : map.words) {
    if (!(is >> w)) throw std::runtime_error("archive: truncated bitmap");
  }
  return map;
}

}  // namespace

EliteArchive::EliteArchive() : cells_(kCells) { occupied_.reserve(kCells); }

std::size_t EliteArchive::cell_index(const coverage::BehaviorDescriptor& d) {
  std::size_t idx = quantize8(d.state_transitions);
  idx = idx * kBuckets + quantize8(d.rtt_spread);
  idx = idx * kBuckets + quantize8(d.max_backoff);
  idx = idx * kBuckets + quantize8(d.cwnd_span);
  return idx;
}

EliteArchive::InsertResult EliteArchive::insert(const trace::Trace& genome,
                                                const Evaluation& eval) {
  InsertResult r;
  if (!eval.coverage.valid) return r;
  r.fresh_bits = union_map_.merge_count_new(eval.coverage.bitmap);
  union_bits_ += r.fresh_bits;
  r.cell = cell_index(eval.coverage.descriptor);

  Cell& c = cells_[r.cell];
  if (!c.occupied) {
    c.occupied = true;
    occupied_.push_back(static_cast<std::uint16_t>(r.cell));
    r.new_cell = true;
  } else if (eval.score.total() > c.eval.score.total()) {
    r.improved = true;
  } else {
    return r;  // incumbent stands (ties included: elites never churn)
  }
  // Copy-assign into the incumbent's buffers: warm replacements reuse the
  // stamp/goodput vector capacities and allocate nothing.
  c.genome = genome;
  c.eval = eval;
  return r;
}

const EliteArchive::Cell& EliteArchive::sample(Rng& rng) const {
  const std::size_t pick = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(occupied_.size()) - 1));
  return cells_[occupied_[pick]];
}

void EliteArchive::save(std::ostream& os) const {
  os << kMagic << "\n";
  os << "# cells " << occupied_.size() << "\n";
  os << "# union ";
  write_hex_words(os, union_map_);
  os << "\n";
  os << std::setprecision(17);
  for (const std::uint16_t idx : occupied_) {
    const Cell& c = cells_[idx];
    os << "# entry " << idx << "\n";
    os << "# score " << c.eval.score.performance << " " << c.eval.score.trace
       << "\n";
    const auto& d = c.eval.coverage.descriptor;
    os << "# desc " << +d.state_transitions << " " << +d.rtt_spread << " "
       << +d.max_backoff << " " << +d.cwnd_span << " " << +d.event_mask << " "
       << +d.cca_states << "\n";
    os << "# bits " << c.eval.coverage.bits << "\n";
    os << "# map ";
    write_hex_words(os, c.eval.coverage.bitmap);
    os << "\n";
    trace::write_trace(os, c.genome);
    os << "# end entry\n";
  }
  if (!os) throw std::runtime_error("archive write failed");
}

void EliteArchive::save_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    throw std::runtime_error("cannot open archive file for write: " + path);
  }
  save(f);
}

EliteArchive EliteArchive::load(std::istream& is) {
  EliteArchive a;
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    throw std::runtime_error("archive: missing magic header");
  }

  bool in_entry = false;
  std::size_t entry_idx = 0;
  Evaluation entry_eval;
  std::ostringstream trace_buf;

  const auto finish_entry = [&] {
    std::istringstream ts(trace_buf.str());
    trace::Trace genome = trace::read_trace(ts);
    if (entry_idx >= kCells) {
      throw std::runtime_error("archive: cell index out of range");
    }
    Cell& c = a.cells_[entry_idx];
    if (c.occupied) throw std::runtime_error("archive: duplicate cell");
    c.occupied = true;
    c.genome = std::move(genome);
    c.eval = entry_eval;
    a.occupied_.push_back(static_cast<std::uint16_t>(entry_idx));
    a.union_map_.merge_count_new(c.eval.coverage.bitmap);
  };

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string hash, key;
    if (line[0] == '#') {
      ls >> hash >> key;
    }
    if (key == "cells" || key == "union") {
      if (key == "union") a.union_map_ = read_hex_words(ls);
      continue;
    }
    if (key == "entry") {
      if (in_entry) throw std::runtime_error("archive: nested entry");
      if (!(ls >> entry_idx)) {
        throw std::runtime_error("archive: bad entry header");
      }
      in_entry = true;
      entry_eval = Evaluation{};
      entry_eval.coverage.valid = true;
      trace_buf.str("");
      trace_buf.clear();
      continue;
    }
    if (!in_entry) throw std::runtime_error("archive: content outside entry");
    if (key == "score") {
      if (!(ls >> entry_eval.score.performance >> entry_eval.score.trace)) {
        throw std::runtime_error("archive: bad score line");
      }
    } else if (key == "desc") {
      unsigned v[6];
      if (!(ls >> v[0] >> v[1] >> v[2] >> v[3] >> v[4] >> v[5])) {
        throw std::runtime_error("archive: bad descriptor line");
      }
      auto& d = entry_eval.coverage.descriptor;
      d.state_transitions = static_cast<std::uint8_t>(v[0]);
      d.rtt_spread = static_cast<std::uint8_t>(v[1]);
      d.max_backoff = static_cast<std::uint8_t>(v[2]);
      d.cwnd_span = static_cast<std::uint8_t>(v[3]);
      d.event_mask = static_cast<std::uint8_t>(v[4]);
      d.cca_states = static_cast<std::uint8_t>(v[5]);
    } else if (key == "bits") {
      if (!(ls >> entry_eval.coverage.bits)) {
        throw std::runtime_error("archive: bad bits line");
      }
    } else if (key == "map") {
      entry_eval.coverage.bitmap = read_hex_words(ls);
    } else if (key == "end") {
      finish_entry();
      in_entry = false;
    } else {
      // Anything else belongs to the embedded trace_io block.
      trace_buf << line << "\n";
    }
  }
  if (in_entry) throw std::runtime_error("archive: truncated entry");
  a.union_bits_ = a.union_map_.count();
  return a;
}

EliteArchive EliteArchive::load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open archive file: " + path);
  return load(f);
}

}  // namespace ccfuzz::fuzz
