#include "fuzz/fuzzer.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "fuzz/selection.h"
#include "fuzz/state_io.h"

namespace ccfuzz::fuzz {
namespace {

bool better(const Member& a, const Member& b) {
  return a.eval.score.total() > b.eval.score.total();
}

/// Population-ranking fitness: score plus the transient novelty bonus.
/// Identical to the raw score when no bonus is configured, so reporting
/// (best_ever, top_members, GenStats) always reads raw scores while
/// selection may favour behavioral novelty.
bool ranked_better(const Member& a, const Member& b) {
  return a.eval.score.total() + a.novelty > b.eval.score.total() + b.novelty;
}

void sort_best_first(std::vector<Member>& members) {
  std::stable_sort(members.begin(), members.end(), ranked_better);
}

}  // namespace

Fuzzer::Fuzzer(const GaConfig& cfg, std::shared_ptr<const TraceModel> model,
               TraceEvaluator evaluator)
    : cfg_(cfg), model_(std::move(model)), evaluator_(std::move(evaluator)) {
  assert(cfg_.population >= 2 && "population too small");
  assert(cfg_.islands >= 1 && "need at least one island");
  assert(cfg_.islands <= cfg_.population && "more islands than members");

  // The archive rides along whenever runs produce coverage signatures: in
  // kScore mode it is passive telemetry (and the novelty-bonus source), in
  // kMapElites mode it is the parent pool.
  if (evaluator_.scenario().coverage) {
    archive_ = std::make_shared<EliteArchive>();
  } else if (cfg_.search == SearchMode::kMapElites) {
    throw std::logic_error(
        "SearchMode::kMapElites requires the evaluator scenario to arm the "
        "coverage probe (ScenarioConfig::coverage = true)");
  } else if (cfg_.novelty_bonus != 0.0) {
    throw std::logic_error(
        "GaConfig::novelty_bonus requires the evaluator scenario to arm the "
        "coverage probe (ScenarioConfig::coverage = true)");
  }

  Rng master(cfg_.seed);
  islands_.resize(static_cast<std::size_t>(cfg_.islands));
  const int base = cfg_.population / cfg_.islands;
  const int extra = cfg_.population % cfg_.islands;
  for (int i = 0; i < cfg_.islands; ++i) {
    Island& isl = islands_[static_cast<std::size_t>(i)];
    isl.rng = master.fork(static_cast<std::uint64_t>(i) + 1);
    const int count = base + (i < extra ? 1 : 0);
    isl.members.reserve(static_cast<std::size_t>(count));
    for (int m = 0; m < count; ++m) {
      Member mem;
      mem.genome = model_->generate(isl.rng);
      isl.members.push_back(std::move(mem));
    }
  }
}

std::vector<Member*> Fuzzer::pending_members() {
  std::vector<Member*> todo;
  for (auto& isl : islands_) {
    for (auto& m : isl.members) {
      if (!m.evaluated) todo.push_back(&m);
    }
  }
  return todo;
}

void Fuzzer::evaluate_all() {
  // Evaluate unevaluated members across all islands as one parallel batch.
  // Results land by index → deterministic regardless of thread scheduling
  // (§3.6).
  const std::vector<Member*> todo = pending_members();
  std::vector<BatchItem> items(todo.size());
  for (std::size_t i = 0; i < todo.size(); ++i) {
    items[i] = {&evaluator_, &todo[i]->genome, &todo[i]->eval};
  }
  evaluate_batch(items, cfg_.parallel);
  for (Member* m : todo) m->evaluated = true;
  total_evaluations_ += static_cast<std::int64_t>(todo.size());
}

void Fuzzer::breed_island(Island& isl) {
  sort_best_first(isl.members);
  const std::size_t n = isl.members.size();
  const std::size_t elites = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(cfg_.elites_per_island, 0)), n);

  std::size_t crossovers = static_cast<std::size_t>(
      cfg_.crossover_fraction * static_cast<double>(n) + 0.5);
  crossovers = std::min(crossovers, n - elites);
  // Link mode has no crossover (§3.2): those slots become mutations.
  if (n < 2 || !model_->supports_crossover()) crossovers = 0;

  // MAP-Elites draws half its parents uniformly from the behavior archive
  // and half from the island's rank order (pure-archive selection inbreeds
  // while the archive is small: a dozen elites cannot carry a population's
  // worth of genetic diversity). Until the first generation has populated
  // the archive, everything falls back to rank selection. Elite carry-over
  // is unchanged, so each island still preserves its best scorer.
  const bool has_archive = cfg_.search == SearchMode::kMapElites &&
                           archive_ != nullptr && archive_->filled() > 0;
  RankSelector select(n);
  const auto parent = [&](Rng& rng) -> const trace::Trace& {
    if (has_archive && rng.coin()) return archive_->sample(rng).genome;
    return isl.members[select.pick(rng)].genome;
  };

  std::vector<Member> next;
  next.reserve(n);

  // Elites survive unchanged, evaluation included.
  for (std::size_t i = 0; i < elites; ++i) next.push_back(isl.members[i]);

  for (std::size_t i = 0; i < crossovers; ++i) {
    Member m;
    if (has_archive) {
      m.genome =
          std::move(*model_->crossover(parent(isl.rng), parent(isl.rng),
                                       isl.rng));
    } else {
      const auto [a, b] = select.pick_pair(isl.rng);
      m.genome = std::move(*model_->crossover(isl.members[a].genome,
                                              isl.members[b].genome, isl.rng));
    }
    next.push_back(std::move(m));
  }

  while (next.size() < n) {
    Member m;
    if (cfg_.anneal) {
      // §3.2: smooth the parent between evaluation and mutation, so
      // variation fades wherever it is not needed to keep the score.
      m.genome =
          model_->mutate(trace::anneal(parent(isl.rng), cfg_.anneal_cfg),
                         isl.rng);
    } else {
      m.genome = model_->mutate(parent(isl.rng), isl.rng);
    }
    next.push_back(std::move(m));
  }

  isl.members = std::move(next);
}

void Fuzzer::migrate() {
  if (islands_.size() < 2) return;
  const std::size_t n0 = islands_[0].members.size();
  const std::size_t count = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg_.migration_fraction *
                                  static_cast<double>(n0)));
  // Ring migration: snapshot each island's top members first so a migrant
  // cannot hop two islands in one round.
  std::vector<std::vector<Member>> exports(islands_.size());
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    auto& members = islands_[i].members;
    sort_best_first(members);
    const std::size_t k = std::min(count, members.size());
    exports[i].assign(members.begin(),
                      members.begin() + static_cast<std::ptrdiff_t>(k));
  }
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    const std::size_t dst = (i + 1) % islands_.size();
    auto& members = islands_[dst].members;
    // Replace the worst members of the destination (members are sorted).
    const std::size_t k = std::min(exports[i].size(), members.size());
    for (std::size_t j = 0; j < k; ++j) {
      members[members.size() - 1 - j] = exports[i][j];
    }
  }
}

GenStats Fuzzer::collect_stats() {
  GenStats gs;
  gs.generation = generation_;
  std::vector<const Member*> all;
  double sum = 0.0;
  for (const auto& isl : islands_) {
    for (const auto& m : isl.members) {
      all.push_back(&m);
      sum += m.eval.score.total();
      gs.stalled_count += m.eval.stalled ? 1 : 0;
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Member* a, const Member* b) {
    return better(*a, *b);
  });
  gs.best_score = all.front()->eval.score.total();
  gs.mean_score = sum / static_cast<double>(all.size());

  const std::size_t k = std::min<std::size_t>(kTopK, all.size());
  double sent = 0.0, goodput = 0.0, jain = 0.0;
  std::size_t n_flows = 0;
  for (std::size_t i = 0; i < k; ++i) {
    n_flows = std::max(n_flows, all[i]->eval.flow_goodput_mbps.size());
  }
  gs.topk_mean_flow_goodput_mbps.assign(n_flows, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    sent += static_cast<double>(all[i]->eval.cca_sent);
    goodput += all[i]->eval.goodput_mbps;
    jain += all[i]->eval.jain_fairness;
    const auto& per_flow = all[i]->eval.flow_goodput_mbps;
    for (std::size_t f = 0; f < per_flow.size(); ++f) {
      gs.topk_mean_flow_goodput_mbps[f] += per_flow[f];
    }
  }
  gs.topk_mean_packets_sent = sent / static_cast<double>(k);
  gs.topk_mean_goodput_mbps = goodput / static_cast<double>(k);
  gs.topk_mean_jain_fairness = jain / static_cast<double>(k);
  for (double& g : gs.topk_mean_flow_goodput_mbps) {
    g /= static_cast<double>(k);
  }
  gs.evaluations = total_evaluations_;

  if (!best_ever_.evaluated || better(*all.front(), best_ever_)) {
    best_ever_ = *all.front();
  }
  return gs;
}

void Fuzzer::seed_archive(EliteArchive a) {
  if (!archive_) {
    throw std::logic_error(
        "seed_archive: this fuzzer tracks no archive (scenario coverage off)");
  }
  *archive_ = std::move(a);
}

void Fuzzer::absorb_into_archive(GenStats& gs) {
  if (!archive_) return;
  // Deterministic (island, slot) order: archive contents are a pure
  // function of the evaluated population, independent of thread scheduling.
  for (auto& isl : islands_) {
    for (auto& m : isl.members) {
      if (!m.evaluated || !m.eval.coverage.valid) continue;
      const EliteArchive::InsertResult r = archive_->insert(m.genome, m.eval);
      m.novelty = cfg_.novelty_bonus * static_cast<double>(r.fresh_bits);
      gs.archive_new_cells += r.new_cell ? 1 : 0;
      gs.archive_improved += r.improved ? 1 : 0;
    }
  }
  gs.archive_cells = static_cast<std::int64_t>(archive_->filled());
  gs.coverage_bits = static_cast<std::int64_t>(archive_->union_bits());
}

GenStats Fuzzer::advance_generation() {
  GenStats gs = collect_stats();
  absorb_into_archive(gs);
  history_.push_back(gs);
  ++generation_;

  if (cfg_.migration_interval > 0 &&
      generation_ % cfg_.migration_interval == 0) {
    migrate();
  }
  for (auto& isl : islands_) breed_island(isl);
  return gs;
}

GenStats Fuzzer::step() {
  evaluate_all();
  return advance_generation();
}

const std::vector<GenStats>& Fuzzer::run() {
  double best = -1e300;
  int since_improvement = 0;
  for (int g = 0; g < cfg_.max_generations; ++g) {
    const GenStats gs = step();
    if (gs.best_score > best + 1e-12) {
      best = gs.best_score;
      since_improvement = 0;
    } else if (cfg_.patience > 0 && ++since_improvement >= cfg_.patience) {
      break;
    }
  }
  // The final breed left fresh members unevaluated; evaluate so best() and
  // top_members() reflect the final population.
  evaluate_all();
  return history_;
}

void Fuzzer::save_state(std::ostream& os) const {
  os << "# ccfuzz-fuzzer v1\n";
  os << "# generation " << generation_ << "\n";
  os << "# total_evaluations " << total_evaluations_ << "\n";
  os << "# best " << (best_ever_.evaluated ? 1 : 0) << "\n";
  if (best_ever_.evaluated) state_io::write_member(os, best_ever_);
  os << "# history " << history_.size() << "\n";
  for (const GenStats& gs : history_) state_io::write_genstats(os, gs);
  os << "# islands " << islands_.size() << "\n";
  for (std::size_t i = 0; i < islands_.size(); ++i) {
    const Island& isl = islands_[i];
    const auto s = isl.rng.state();
    os << "# island " << i << " " << std::hex << s[0] << " " << s[1] << " "
       << s[2] << " " << s[3] << std::dec << " " << isl.members.size() << "\n";
    for (const Member& m : isl.members) state_io::write_member(os, m);
    os << "# end island\n";
  }
  os << "# archive " << (archive_ ? 1 : 0) << "\n";
  if (archive_) archive_->save(os, /*terminated=*/true);
  os << "# end fuzzer\n";
}

Error Fuzzer::restore_state(std::istream& is) {
  std::string line;
  const auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty()) return true;
    }
    return false;
  };
  const auto expect = [&](const char* key,
                          std::istringstream& ls) -> Error {
    if (!next_line()) {
      return Error::truncated(std::string("fuzzer state: missing '") + key +
                              "'");
    }
    ls.str(line);
    ls.clear();
    std::string hash, k;
    ls >> hash >> k;
    if (hash != "#" || k != key) {
      return Error::parse(std::string("fuzzer state: expected '# ") + key +
                          "', got: " + line);
    }
    return Error::success();
  };

  if (!next_line()) return Error::truncated("fuzzer state: empty input");
  if (line != "# ccfuzz-fuzzer v1") {
    if (line.rfind("# ccfuzz-fuzzer", 0) == 0) {
      return Error::version("fuzzer state: unsupported version: " + line);
    }
    return Error::parse("fuzzer state: missing magic header");
  }

  std::istringstream ls;
  if (Error e = expect("generation", ls)) return e;
  if (!(ls >> generation_)) {
    return Error::parse("fuzzer state: bad generation line");
  }
  if (Error e = expect("total_evaluations", ls)) return e;
  if (!(ls >> total_evaluations_)) {
    return Error::parse("fuzzer state: bad total_evaluations line");
  }
  if (Error e = expect("best", ls)) return e;
  int has_best = 0;
  if (!(ls >> has_best)) return Error::parse("fuzzer state: bad best line");
  if (has_best != 0) {
    if (Error e = state_io::read_member(is, best_ever_)) return e;
  } else {
    best_ever_ = Member{};
  }

  if (Error e = expect("history", ls)) return e;
  std::size_t n_hist = 0;
  if (!(ls >> n_hist)) return Error::parse("fuzzer state: bad history line");
  history_.clear();
  history_.reserve(n_hist);
  for (std::size_t i = 0; i < n_hist; ++i) {
    if (!next_line()) return Error::truncated("fuzzer state: short history");
    GenStats gs;
    if (Error e = state_io::parse_genstats(line, gs)) return e;
    history_.push_back(std::move(gs));
  }

  if (Error e = expect("islands", ls)) return e;
  std::size_t n_islands = 0;
  if (!(ls >> n_islands)) return Error::parse("fuzzer state: bad islands line");
  if (n_islands != islands_.size()) {
    return Error::mismatch("fuzzer state: island count mismatch (config has " +
                           std::to_string(islands_.size()) + ", state has " +
                           std::to_string(n_islands) + ")");
  }
  for (std::size_t i = 0; i < n_islands; ++i) {
    if (Error e = expect("island", ls)) return e;
    std::size_t idx = 0, n_members = 0;
    std::array<std::uint64_t, 4> s{};
    if (!(ls >> idx >> std::hex >> s[0] >> s[1] >> s[2] >> s[3] >> std::dec >>
          n_members) ||
        idx != i) {
      return Error::parse("fuzzer state: bad island header: " + line);
    }
    Island& isl = islands_[i];
    isl.rng.set_state(s);
    isl.members.clear();
    isl.members.reserve(n_members);
    for (std::size_t m = 0; m < n_members; ++m) {
      Member mem;
      if (Error e = state_io::read_member(is, mem)) return e;
      isl.members.push_back(std::move(mem));
    }
    if (!next_line() || line != "# end island") {
      return Error::truncated("fuzzer state: island block not terminated");
    }
  }

  if (Error e = expect("archive", ls)) return e;
  int has_archive = 0;
  if (!(ls >> has_archive)) {
    return Error::parse("fuzzer state: bad archive line");
  }
  if ((has_archive != 0) != (archive_ != nullptr)) {
    return Error::mismatch(
        "fuzzer state: archive presence mismatch (coverage setting changed?)");
  }
  if (has_archive != 0) {
    Result<EliteArchive> a = EliteArchive::try_load(is);
    if (!a) return a.error();
    *archive_ = std::move(*a);
  }
  if (!next_line() || line != "# end fuzzer") {
    return Error::truncated("fuzzer state: block not terminated");
  }
  return Error::success();
}

std::vector<Member> Fuzzer::top_members(std::size_t k) const {
  std::vector<Member> all;
  for (const auto& isl : islands_) {
    for (const auto& m : isl.members) {
      if (m.evaluated) all.push_back(m);
    }
  }
  sort_best_first(all);
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace ccfuzz::fuzz
