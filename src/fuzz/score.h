// Scoring functions (paper §3.4).
//
// A trace's fitness has two parts: a performance score quantifying how badly
// the CCA behaved (higher = worse CCA performance = fitter trace), and a
// trace score rewarding desirable trace properties that are hard to enforce
// during generation (e.g. minimal cross-traffic vectors).
#pragma once

#include <cstdint>
#include <memory>

#include "scenario/runner.h"
#include "util/time.h"

namespace ccfuzz::fuzz {

/// Fitness breakdown for one evaluated trace.
struct Score {
  double performance = 0.0;
  double trace = 0.0;
  double total() const { return performance + trace; }
};

/// Performance-score strategy interface. Implementations must be pure
/// functions of the run result (thread-safe, no mutable state).
class ScoreFunction {
 public:
  virtual ~ScoreFunction() = default;
  /// Higher return = worse CCA behaviour = fitter adversarial trace.
  virtual double performance_score(const scenario::RunResult& run) const = 0;
  virtual const char* name() const = 0;
  /// Stable, process-independent identity of this scoring configuration —
  /// used in the campaign evaluation-cache key so cached evaluations survive
  /// checkpoint/resume (a pointer-based key would differ every process).
  /// Default: FNV-1a of name(). Parametrized scores MUST fold their
  /// parameters in (identity_base() then mix_identity per parameter), or two
  /// differently-tuned instances would wrongly share cache entries.
  virtual std::uint64_t identity() const { return identity_base(); }
  /// Throws std::logic_error when the score cannot work on runs of this
  /// scenario (e.g. a windowed score whose window the metrics-only mode
  /// cannot serve). TraceEvaluator calls it at construction, so
  /// misconfiguration surfaces on the driver thread instead of as an
  /// exception escaping a thread-pool worker.
  virtual void validate(const scenario::ScenarioConfig& scenario) const {
    (void)scenario;
  }

 protected:
  /// FNV-1a of name() — the starting point for identity().
  std::uint64_t identity_base() const;
  /// Mixes one 64-bit parameter word into an identity accumulator.
  static std::uint64_t mix_identity(std::uint64_t h, std::uint64_t v);
};

/// §3.4: windowed throughput, averaged over the lowest `fraction` of
/// windows, negated (low utilization ⇒ high score). Using the lowest-20%
/// windows instead of overall throughput avoids favouring traces that only
/// hurt the flow early, improving trace diversity.
///
/// Reads the streaming windowed bins when `window` matches the scenario's
/// metrics_window (both default to 500 ms) — keep the two in sync when
/// customizing either, or the metrics-only fuzzing mode sees zero
/// throughput (RunResult::windowed_throughput_mbps).
class LowUtilizationScore final : public ScoreFunction {
 public:
  explicit LowUtilizationScore(DurationNs window = DurationNs::millis(500),
                               double fraction = 0.2)
      : window_(window), fraction_(fraction) {}

  double performance_score(const scenario::RunResult& run) const override;
  const char* name() const override { return "low-utilization"; }
  std::uint64_t identity() const override;
  void validate(const scenario::ScenarioConfig& scenario) const override;

 private:
  DurationNs window_;
  double fraction_;
};

/// §4.3 (Fig 4e): the p-th percentile of CCA queueing delay. A high low
/// percentile means the queue never drains — a persistent standing queue.
/// Estimated from the streaming delay digest (1 ms histogram buckets,
/// exact extremes), so it needs no per-packet records and is identical in
/// metrics-only and full-events runs.
class HighDelayScore final : public ScoreFunction {
 public:
  explicit HighDelayScore(double pct = 10.0) : pct_(pct) {}

  double performance_score(const scenario::RunResult& run) const override;
  const char* name() const override { return "high-delay"; }
  std::uint64_t identity() const override;

 private:
  double pct_;
};

/// Rewards CCA packet loss at the bottleneck (drops per second).
class HighLossScore final : public ScoreFunction {
 public:
  double performance_score(const scenario::RunResult& run) const override;
  const char* name() const override { return "high-loss"; }
};

/// Negated total goodput. Simpler than LowUtilizationScore; used by the
/// Fig 4d progress bench where the paper plots raw packets sent.
class LowGoodputScore final : public ScoreFunction {
 public:
  double performance_score(const scenario::RunResult& run) const override;
  const char* name() const override { return "low-goodput"; }
};

/// Negated packets *sent* by the CCA. This is the Fig 4d objective: a flow
/// that stops transmitting (the §4.1 BBR stall collapses the pacing rate)
/// scores higher than one that keeps sending into losses, steering the GA
/// toward send-side stalls rather than brute-force drop floods.
class LowSendRateScore final : public ScoreFunction {
 public:
  double performance_score(const scenario::RunResult& run) const override;
  const char* name() const override { return "low-send-rate"; }
};

/// Fairness-mode objective (§6 future work): 1 − Jain's fairness index over
/// the flows' goodputs. 0 = perfectly fair sharing, approaching 1 − 1/n as
/// one flow monopolizes the bottleneck; the GA maximizes unfairness. 0 for
/// single-flow scenarios (nothing to be unfair about).
class JainFairnessScore final : public ScoreFunction {
 public:
  double performance_score(const scenario::RunResult& run) const override;
  const char* name() const override { return "jain-unfairness"; }
};

/// Fairness-mode objective over a designated victim/attacker flow pair: the
/// attacker's share of the pair's combined goodput, in [0, 1]. 0.5 = fair
/// split, → 1 as the victim is starved; 0.5 (neutral) when both flows are
/// idle, 0 when the scenario has no such pair (e.g. single-flow cells).
/// Defaults fit the presets: flow 1 (the late starter / long-RTT /
/// competitor flow) is the victim of flow 0, the algorithm under test.
class ThroughputRatioScore final : public ScoreFunction {
 public:
  explicit ThroughputRatioScore(std::size_t victim_flow = 1,
                                std::size_t attacker_flow = 0)
      : victim_(victim_flow), attacker_(attacker_flow) {}

  double performance_score(const scenario::RunResult& run) const override;
  const char* name() const override { return "throughput-ratio"; }
  std::uint64_t identity() const override;

 private:
  std::size_t victim_;
  std::size_t attacker_;
};

/// Trace-score weights (traffic mode): negative weight on total injected
/// packets and on injected packets that were dropped, steering the GA
/// toward minimal adversarial vectors (§3.3–3.4).
struct TraceScoreWeights {
  double per_packet = 0.0;
  double per_drop = 0.0;

  double trace_score(const scenario::RunResult& run) const {
    return -per_packet * static_cast<double>(run.cross_sent) -
           per_drop * static_cast<double>(run.cross_drops);
  }
};

}  // namespace ccfuzz::fuzz
