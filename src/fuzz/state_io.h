// Serialization helpers for GA runtime state (campaign checkpoints).
//
// Everything is line-oriented '#'-keyed text in the same family as trace_io
// and the elite-archive format, so checkpoint files stay greppable and the
// parsers share the same hardening discipline (typed Errors, no exceptions
// on the load path). Doubles are written with 17 significant digits, which
// round-trips IEEE-754 exactly — resumed campaigns must be bit-identical.
#pragma once

#include <iosfwd>
#include <string>

#include "fuzz/fuzzer.h"
#include "util/error.h"

namespace ccfuzz::fuzz::state_io {

/// Writes an Evaluation as three '#'-keyed lines (`# eval`, `# cov`,
/// `# covmap`).
void write_eval(std::ostream& os, const Evaluation& e);

/// Reads the three lines written by write_eval.
Error read_eval(std::istream& is, Evaluation& e);

/// Writes a population member: `# member <evaluated> <novelty>`, the
/// evaluation, the genome as an embedded trace_io block, `# end member`.
void write_member(std::ostream& os, const Member& m);

/// Reads a member block (expects `# member` as the next non-empty line).
Error read_member(std::istream& is, Member& m);

/// Writes one GenStats as a single `# gen` line.
void write_genstats(std::ostream& os, const GenStats& gs);

/// Parses a `# gen` line produced by write_genstats.
Error parse_genstats(const std::string& line, GenStats& gs);

}  // namespace ccfuzz::fuzz::state_io
