#include "fuzz/evaluator.h"

#include <cmath>
#include <string>

#include "util/thread_pool.h"

namespace ccfuzz::fuzz {

namespace {

/// Finite stand-in for a non-finite score component: catastrophically bad
/// (never selected, never displaces an archive elite) but totally ordered,
/// so GA bookkeeping stays sane.
constexpr double kQuarantinePenalty = -1e30;

}  // namespace

scenario::RunResult TraceEvaluator::run_full(const trace::Trace& t) const {
  scenario::ScenarioConfig cfg = scenario_;
  cfg.record_mode = scenario::RecordMode::kFullEvents;
  return scenario::run_scenario(cfg, cca_, t.stamps);
}

Evaluation TraceEvaluator::evaluate(const trace::Trace& t) const {
  Evaluation e;
  evaluate_into(t, e);
  return e;
}

void TraceEvaluator::evaluate_into(const trace::Trace& t,
                                   Evaluation& e) const {
  // Run on this thread's warm per-evaluator context and summarize straight
  // from the context-owned result — no RunResult copy, no per-packet scans,
  // and no buffer reshaping when a cross-cell batch interleaves evaluators
  // with different scenario shapes on this worker.
  evaluate_on(scenario::thread_run_context(context_key_), t, e);
}

void TraceEvaluator::evaluate_on(scenario::RunContext& ctx,
                                 const trace::Trace& t, Evaluation& e) const {
  const scenario::RunResult& run = ctx.run(scenario_, cca_, t.stamps);
  e.score.performance = score_->performance_score(run);
  e.score.trace = trace_weights_.trace_score(run);
  e.truncated = run.truncated;
  e.truncation = run.truncation;
  // NaN/inf quarantine: a non-finite fitness would corrupt every downstream
  // ordering (selection, elites, history). Substitute a huge finite penalty
  // and hand the genome to the quarantine recorder for offline replay.
  e.quarantined = false;
  if (!std::isfinite(e.score.performance) || !std::isfinite(e.score.trace)) {
    const std::string reason =
        std::string("non-finite score from '") + score_->name() + "'";
    if (!std::isfinite(e.score.performance)) {
      e.score.performance = kQuarantinePenalty;
    }
    if (!std::isfinite(e.score.trace)) e.score.trace = kQuarantinePenalty;
    e.quarantined = true;
    if (quarantine_) quarantine_->record(t, reason);
  }
  e.goodput_mbps = run.goodput_mbps();
  e.cca_sent = run.cca_sent();
  e.cca_delivered = run.cca_segments_delivered();
  e.cca_drops = run.cca_drops();
  e.cross_sent = run.cross_sent;
  e.cross_drops = run.cross_drops;
  e.rto_count = run.rto_count();
  e.p10_delay_s = run.queue_delay_percentile_s(10.0);
  e.stalled = run.stalled(DurationNs::seconds(1));
  e.flow_goodput_mbps.clear();
  e.flow_goodput_mbps.reserve(run.flow_count());
  for (std::size_t i = 0; i < run.flow_count(); ++i) {
    e.flow_goodput_mbps.push_back(run.goodput_mbps(i));
  }
  e.jain_fairness = run.jain_fairness();
  e.coverage = run.coverage_signature();
}

std::vector<Evaluation> TraceEvaluator::evaluate_batch(
    const std::vector<trace::Trace>& ts, bool parallel) const {
  std::vector<Evaluation> out(ts.size());
  std::vector<BatchItem> items(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    items[i] = {this, &ts[i], &out[i]};
  }
  fuzz::evaluate_batch(items, parallel);
  return out;
}

void evaluate_batch(const std::vector<BatchItem>& items, bool parallel) {
  const auto work = [&](std::size_t i) {
    items[i].evaluator->evaluate_into(*items[i].trace, *items[i].out);
  };
  if (parallel && items.size() > 1) {
    global_thread_pool().parallel_for(items.size(), work);
  } else {
    for (std::size_t i = 0; i < items.size(); ++i) work(i);
  }
}

}  // namespace ccfuzz::fuzz
