// Genome operations seen by the GA, independent of trace kind.
//
// Link and traffic traces share the representation (sorted timestamps) but
// differ in generation constraints and evolution operators (§3.2, §3.3);
// this interface lets the Fuzzer drive either uniformly. Link mode has no
// crossover — the paper argues two service curves cannot be spliced without
// violating their invariants — so crossover() may return nullopt and the
// Fuzzer substitutes mutation.
#pragma once

#include <optional>

#include "trace/mutation.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace ccfuzz::fuzz {

/// GA genome operations for one trace kind.
class TraceModel {
 public:
  virtual ~TraceModel() = default;
  virtual trace::Trace generate(Rng& rng) const = 0;
  virtual trace::Trace mutate(const trace::Trace& t, Rng& rng) const = 0;
  /// nullopt when the kind does not support crossover (link mode).
  virtual std::optional<trace::Trace> crossover(const trace::Trace& a,
                                                const trace::Trace& b,
                                                Rng& rng) const = 0;
  /// True when crossover() can produce children for this kind.
  virtual bool supports_crossover() const = 0;
  virtual const char* name() const = 0;
};

/// Link service curves (§3.2): fixed packet budget, no crossover.
class LinkModel final : public TraceModel {
 public:
  explicit LinkModel(const trace::LinkTraceModel& model) : model_(model) {}

  trace::Trace generate(Rng& rng) const override { return model_.generate(rng); }
  trace::Trace mutate(const trace::Trace& t, Rng& rng) const override {
    return model_.mutate(t, rng);
  }
  std::optional<trace::Trace> crossover(const trace::Trace&,
                                        const trace::Trace&,
                                        Rng&) const override {
    return std::nullopt;
  }
  bool supports_crossover() const override { return false; }
  const char* name() const override { return "link"; }

  const trace::LinkTraceModel& params() const { return model_; }

 private:
  trace::LinkTraceModel model_;
};

/// Cross-traffic vectors (§3.3): variable packet budget, splice crossover.
class TrafficModel final : public TraceModel {
 public:
  explicit TrafficModel(const trace::TrafficTraceModel& model)
      : model_(model) {}

  trace::Trace generate(Rng& rng) const override { return model_.generate(rng); }
  trace::Trace mutate(const trace::Trace& t, Rng& rng) const override {
    return model_.mutate(t, rng);
  }
  std::optional<trace::Trace> crossover(const trace::Trace& a,
                                        const trace::Trace& b,
                                        Rng& rng) const override {
    return model_.crossover(a, b, rng);
  }
  bool supports_crossover() const override { return true; }
  const char* name() const override { return "traffic"; }

  const trace::TrafficTraceModel& params() const { return model_; }

 private:
  trace::TrafficTraceModel model_;
};

}  // namespace ccfuzz::fuzz
