// Quarantine for genomes that produce non-finite scores.
//
// A NaN or inf fitness is poison for the GA: it outcompetes (or breaks the
// ordering of) every finite score and silently corrupts selection, the elite
// archive, and history CSVs. When TraceEvaluator sees one, it replaces the
// score with a large finite penalty and — when a Quarantine is attached —
// records the offending genome to disk so the bug (in a score function or a
// CCA model) can be replayed in isolation.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "trace/trace.h"

namespace ccfuzz::fuzz {

/// Thread-safe recorder writing quarantined genomes to `<dir>/<hash>.trace`
/// (trace_io format), one file per distinct genome, capped. All failures
/// degrade to a warning — quarantine must never take down the campaign it is
/// protecting.
class Quarantine {
 public:
  /// `dir` is created lazily on the first record (so a clean campaign never
  /// leaves an empty quarantine/ directory behind).
  explicit Quarantine(std::string dir, std::size_t max_records = 64)
      : dir_(std::move(dir)), max_records_(max_records) {}

  /// Records `genome` with a human-readable reason. Deduplicates by content
  /// hash; silently drops once `max_records` distinct genomes are stored.
  void record(const trace::Trace& genome, const std::string& reason);

  /// Distinct genomes recorded so far.
  std::size_t recorded() const;

  /// Distinct genomes currently stored on disk (`.trace` files under dir).
  /// Unlike recorded(), this survives process restarts — a resumed campaign
  /// reports the quarantine accumulated across every attempt. 0 when the
  /// directory does not exist.
  std::size_t stored() const;

  std::size_t capacity() const { return max_records_; }

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::size_t max_records_;
  mutable std::mutex mu_;
  std::unordered_set<std::uint64_t> seen_;
  bool dir_ready_ = false;
};

}  // namespace ccfuzz::fuzz
