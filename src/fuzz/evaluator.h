// Trace fitness evaluation: run the simulation, apply the scoring function,
// keep a compact per-trace summary for GA bookkeeping and reporting.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "coverage/probe.h"
#include "fuzz/quarantine.h"
#include "fuzz/score.h"
#include "scenario/config.h"
#include "scenario/runner.h"
#include "tcp/congestion_control.h"
#include "trace/trace.h"

namespace ccfuzz::fuzz {

/// Compact result of evaluating one trace (the context-owned RunResult is
/// summarized in place after scoring to keep populations small).
/// The scalar counters summarize the primary flow; multi-flow scenarios
/// additionally carry per-flow goodputs for fairness reporting.
struct Evaluation {
  Score score;
  double goodput_mbps = 0.0;
  std::int64_t cca_sent = 0;
  std::int64_t cca_delivered = 0;
  std::int64_t cca_drops = 0;
  std::int64_t cross_sent = 0;
  std::int64_t cross_drops = 0;
  std::int64_t rto_count = 0;
  double p10_delay_s = 0.0;
  bool stalled = false;
  /// Per-flow goodputs in flow-index order (one entry per scenario flow).
  std::vector<double> flow_goodput_mbps;
  /// Jain's fairness index over the flows (1.0 for single-flow runs).
  double jain_fairness = 1.0;
  /// Behavioral coverage of the primary flow — valid only when the scenario
  /// armed the probe (ScenarioConfig::coverage). Fixed-size POD: copying it
  /// into the population costs no allocations.
  coverage::CoverageSignature coverage;
  /// A run guard (ScenarioConfig::budget) stopped the simulation early;
  /// `truncation` says which one. The score reflects the truncated prefix.
  bool truncated = false;
  sim::TruncationReason truncation = sim::TruncationReason::kNone;
  /// The score function produced a non-finite value; it was replaced by a
  /// large finite penalty and the genome was handed to the evaluator's
  /// Quarantine (if any).
  bool quarantined = false;
};

/// Pure-function evaluator: thread-safe as long as the CCA factory and
/// score function are stateless (all built-ins are).
class TraceEvaluator {
 public:
  /// Throws std::logic_error when the score cannot work on this scenario
  /// (ScoreFunction::validate) — at construction, on the caller's thread,
  /// rather than per evaluation inside a pool worker.
  TraceEvaluator(scenario::ScenarioConfig scenario, tcp::CcaFactory cca,
                 std::shared_ptr<const ScoreFunction> score,
                 TraceScoreWeights trace_weights = {})
      : scenario_(std::move(scenario)),
        cca_(std::move(cca)),
        score_(std::move(score)),
        trace_weights_(trace_weights) {
    score_->validate(scenario_);
  }

  /// Runs the simulation for `t` and scores it. Evaluations run on a
  /// per-evaluator warm context on each worker thread (see
  /// scenario::thread_run_context), so cross-cell campaign batches that
  /// interleave evaluators with different FlowSpec shapes never reshape a
  /// shared context's buffers between runs. Copies of an evaluator share
  /// its context slot (they evaluate the same scenario).
  Evaluation evaluate(const trace::Trace& t) const;

  /// Like evaluate(), but reuses `out`'s storage (per-flow vectors) — with a
  /// warm thread RunContext and a metrics-only scenario this performs zero
  /// heap allocations, which is what makes GA throughput simulation-bound.
  void evaluate_into(const trace::Trace& t, Evaluation& out) const;

  /// Like evaluate_into(), but on a caller-owned context instead of this
  /// thread's warm per-evaluator slot. The triage confirmation path uses
  /// this with fresh RunContexts to prove a finding does not depend on warm
  /// state carried over from the campaign.
  void evaluate_on(scenario::RunContext& ctx, const trace::Trace& t,
                   Evaluation& out) const;

  /// Evaluates every trace; results land by index, so the output is
  /// deterministic regardless of thread scheduling. When `parallel`, the
  /// batch is spread over the global thread pool.
  std::vector<Evaluation> evaluate_batch(const std::vector<trace::Trace>& ts,
                                         bool parallel = true) const;

  /// Runs the simulation and returns the full result for figure generation,
  /// with raw per-packet events recorded regardless of the scenario's
  /// record_mode (scores derive from the streaming summaries either way).
  scenario::RunResult run_full(const trace::Trace& t) const;

  const scenario::ScenarioConfig& scenario() const { return scenario_; }
  const ScoreFunction& score_function() const { return *score_; }

  /// Attaches a quarantine recorder: genomes whose score comes out NaN/inf
  /// get a large finite penalty instead (Evaluation::quarantined) and are
  /// saved through `q` for offline replay. Shared across evaluator copies.
  void set_quarantine(std::shared_ptr<Quarantine> q) {
    quarantine_ = std::move(q);
  }
  const std::shared_ptr<Quarantine>& quarantine() const { return quarantine_; }

 private:
  scenario::ScenarioConfig scenario_;
  tcp::CcaFactory cca_;
  std::shared_ptr<const ScoreFunction> score_;
  TraceScoreWeights trace_weights_;
  std::shared_ptr<Quarantine> quarantine_;
  /// Names this evaluator's per-thread warm RunContext cache slot.
  scenario::ContextKey context_key_ = scenario::allocate_context_key();
};

/// One unit of a heterogeneous evaluation batch: a trace to run under a
/// specific evaluator, with the result written through `out`.
struct BatchItem {
  const TraceEvaluator* evaluator = nullptr;
  const trace::Trace* trace = nullptr;
  Evaluation* out = nullptr;
};

/// Evaluates a mixed batch (items may reference different evaluators) with
/// results landing by index. This is the campaign scheduler's entry point:
/// all cells' pending members are flattened into one such batch, so cores
/// stay saturated even when a single cell or island has a long tail.
void evaluate_batch(const std::vector<BatchItem>& items, bool parallel = true);

}  // namespace ccfuzz::fuzz
