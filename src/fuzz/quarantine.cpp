#include "fuzz/quarantine.h"

#include <exception>
#include <filesystem>

#include "trace/hash.h"
#include "trace/trace_io.h"
#include "util/logging.h"

namespace ccfuzz::fuzz {

void Quarantine::record(const trace::Trace& genome, const std::string& reason) {
  const std::uint64_t h = trace::hash(genome);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (seen_.size() >= max_records_ || !seen_.insert(h).second) return;
    if (!dir_ready_) {
      std::error_code ec;
      std::filesystem::create_directories(dir_, ec);
      if (ec) {
        CCFUZZ_LOG_WARN("quarantine: cannot create %s: %s", dir_.c_str(),
                        ec.message().c_str());
        return;
      }
      dir_ready_ = true;
    }
  }
  const std::string path = dir_ + "/" + trace::hash_hex(h) + ".trace";
  try {
    trace::save_trace(path, genome);
  } catch (const std::exception& e) {
    CCFUZZ_LOG_WARN("quarantine: cannot write %s: %s", path.c_str(), e.what());
    return;
  }
  CCFUZZ_LOG_WARN("quarantined genome %s (%s) -> %s", trace::hash_hex(h).c_str(),
                  reason.c_str(), path.c_str());
}

std::size_t Quarantine::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_.size();
}

std::size_t Quarantine::stored() const {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return 0;
  std::size_t n = 0;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".trace") ++n;
  }
  return n;
}

}  // namespace ccfuzz::fuzz
