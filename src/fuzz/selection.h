// Rank-based selection (paper §3.5): traces are ranked best-first and
// sampled with probability proportional to 1/rank.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace ccfuzz::fuzz {

/// Samples indices [0, n) with P(i) ∝ 1/(i+1). Index 0 is the best-ranked
/// entry. Build once per generation, sample repeatedly.
class RankSelector {
 public:
  /// `n` must be >= 1.
  explicit RankSelector(std::size_t n);

  /// Draws one rank index.
  std::size_t pick(Rng& rng) const;

  /// Draws an unordered pair of distinct indices (for crossover parents).
  /// Requires n >= 2.
  std::pair<std::size_t, std::size_t> pick_pair(Rng& rng) const;

  std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized cumulative 1/rank weights
};

}  // namespace ccfuzz::fuzz
