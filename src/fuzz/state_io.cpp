#include "fuzz/state_io.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "coverage/probe.h"
#include "trace/trace_io.h"

namespace ccfuzz::fuzz::state_io {
namespace {

void write_hex_words(std::ostream& os, const coverage::CoverageBitmap& map) {
  os << std::hex;
  for (std::size_t i = 0; i < coverage::CoverageBitmap::kWords; ++i) {
    os << (i == 0 ? "" : " ") << map.words[i];
  }
  os << std::dec;
}

bool read_hex_words(std::istringstream& is, coverage::CoverageBitmap& map) {
  is >> std::hex;
  for (auto& w : map.words) {
    if (!(is >> w)) return false;
  }
  return true;
}

/// Reads the next non-empty line; false at EOF.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    if (!line.empty()) return true;
  }
  return false;
}

}  // namespace

void write_eval(std::ostream& os, const Evaluation& e) {
  os << std::setprecision(17);
  os << "# eval " << e.score.performance << " " << e.score.trace << " "
     << e.goodput_mbps << " " << e.cca_sent << " " << e.cca_delivered << " "
     << e.cca_drops << " " << e.cross_sent << " " << e.cross_drops << " "
     << e.rto_count << " " << e.p10_delay_s << " " << (e.stalled ? 1 : 0)
     << " " << (e.truncated ? 1 : 0) << " " << static_cast<int>(e.truncation)
     << " " << (e.quarantined ? 1 : 0) << " " << e.jain_fairness << " "
     << e.flow_goodput_mbps.size();
  for (const double g : e.flow_goodput_mbps) os << " " << g;
  os << "\n";
  const auto& c = e.coverage;
  os << "# cov " << (c.valid ? 1 : 0) << " " << c.bits << " "
     << +c.descriptor.state_transitions << " " << +c.descriptor.rtt_spread
     << " " << +c.descriptor.max_backoff << " " << +c.descriptor.cwnd_span
     << " " << +c.descriptor.event_mask << " " << +c.descriptor.cca_states
     << "\n";
  os << "# covmap ";
  write_hex_words(os, c.bitmap);
  os << "\n";
}

Error read_eval(std::istream& is, Evaluation& e) {
  std::string line;
  if (!next_line(is, line)) return Error::truncated("state: missing eval line");
  {
    std::istringstream ls(line);
    std::string hash, key;
    ls >> hash >> key;
    if (hash != "#" || key != "eval") {
      return Error::parse("state: expected '# eval', got: " + line);
    }
    int stalled = 0, truncated = 0, truncation = 0, quarantined = 0;
    std::size_t nflows = 0;
    if (!(ls >> e.score.performance >> e.score.trace >> e.goodput_mbps >>
          e.cca_sent >> e.cca_delivered >> e.cca_drops >> e.cross_sent >>
          e.cross_drops >> e.rto_count >> e.p10_delay_s >> stalled >>
          truncated >> truncation >> quarantined >> e.jain_fairness >>
          nflows)) {
      return Error::parse("state: bad eval line: " + line);
    }
    e.stalled = stalled != 0;
    e.truncated = truncated != 0;
    e.truncation = static_cast<sim::TruncationReason>(truncation);
    e.quarantined = quarantined != 0;
    e.flow_goodput_mbps.clear();
    e.flow_goodput_mbps.reserve(nflows);
    for (std::size_t i = 0; i < nflows; ++i) {
      double g = 0.0;
      if (!(ls >> g)) return Error::parse("state: short eval line: " + line);
      e.flow_goodput_mbps.push_back(g);
    }
  }
  if (!next_line(is, line)) return Error::truncated("state: missing cov line");
  {
    std::istringstream ls(line);
    std::string hash, key;
    ls >> hash >> key;
    if (hash != "#" || key != "cov") {
      return Error::parse("state: expected '# cov', got: " + line);
    }
    int valid = 0;
    unsigned v[6];
    if (!(ls >> valid >> e.coverage.bits >> v[0] >> v[1] >> v[2] >> v[3] >>
          v[4] >> v[5])) {
      return Error::parse("state: bad cov line: " + line);
    }
    e.coverage.valid = valid != 0;
    auto& d = e.coverage.descriptor;
    d.state_transitions = static_cast<std::uint8_t>(v[0]);
    d.rtt_spread = static_cast<std::uint8_t>(v[1]);
    d.max_backoff = static_cast<std::uint8_t>(v[2]);
    d.cwnd_span = static_cast<std::uint8_t>(v[3]);
    d.event_mask = static_cast<std::uint8_t>(v[4]);
    d.cca_states = static_cast<std::uint8_t>(v[5]);
  }
  if (!next_line(is, line)) {
    return Error::truncated("state: missing covmap line");
  }
  {
    std::istringstream ls(line);
    std::string hash, key;
    ls >> hash >> key;
    if (hash != "#" || key != "covmap") {
      return Error::parse("state: expected '# covmap', got: " + line);
    }
    if (!read_hex_words(ls, e.coverage.bitmap)) {
      return Error::parse("state: bad covmap line: " + line);
    }
  }
  return Error::success();
}

void write_member(std::ostream& os, const Member& m) {
  os << std::setprecision(17);
  os << "# member " << (m.evaluated ? 1 : 0) << " " << m.novelty << "\n";
  write_eval(os, m.eval);
  trace::write_trace(os, m.genome);
  os << "# end member\n";
}

Error read_member(std::istream& is, Member& m) {
  std::string line;
  if (!next_line(is, line)) {
    return Error::truncated("state: missing member header");
  }
  {
    std::istringstream ls(line);
    std::string hash, key;
    ls >> hash >> key;
    int evaluated = 0;
    if (hash != "#" || key != "member" || !(ls >> evaluated >> m.novelty)) {
      return Error::parse("state: bad member header: " + line);
    }
    m.evaluated = evaluated != 0;
  }
  if (Error e = read_eval(is, m.eval)) return e;
  // Genome: buffer lines until the `# end member` sentinel, then hand the
  // block to the trace parser.
  std::ostringstream trace_buf;
  bool ended = false;
  while (std::getline(is, line)) {
    if (line == "# end member") {
      ended = true;
      break;
    }
    trace_buf << line << "\n";
  }
  if (!ended) return Error::truncated("state: member block not terminated");
  std::istringstream ts(trace_buf.str());
  Result<trace::Trace> genome = trace::try_read_trace(ts);
  if (!genome) return genome.error();
  m.genome = std::move(*genome);
  return Error::success();
}

void write_genstats(std::ostream& os, const GenStats& gs) {
  os << std::setprecision(17);
  os << "# gen " << gs.generation << " " << gs.best_score << " "
     << gs.mean_score << " " << gs.topk_mean_packets_sent << " "
     << gs.topk_mean_goodput_mbps << " " << gs.topk_mean_jain_fairness << " "
     << gs.stalled_count << " " << gs.evaluations << " " << gs.archive_cells
     << " " << gs.archive_new_cells << " " << gs.archive_improved << " "
     << gs.coverage_bits << " " << gs.topk_mean_flow_goodput_mbps.size();
  for (const double g : gs.topk_mean_flow_goodput_mbps) os << " " << g;
  os << "\n";
}

Error parse_genstats(const std::string& line, GenStats& gs) {
  std::istringstream ls(line);
  std::string hash, key;
  ls >> hash >> key;
  if (hash != "#" || key != "gen") {
    return Error::parse("state: expected '# gen', got: " + line);
  }
  std::size_t nflows = 0;
  if (!(ls >> gs.generation >> gs.best_score >> gs.mean_score >>
        gs.topk_mean_packets_sent >> gs.topk_mean_goodput_mbps >>
        gs.topk_mean_jain_fairness >> gs.stalled_count >> gs.evaluations >>
        gs.archive_cells >> gs.archive_new_cells >> gs.archive_improved >>
        gs.coverage_bits >> nflows)) {
    return Error::parse("state: bad gen line: " + line);
  }
  gs.topk_mean_flow_goodput_mbps.clear();
  gs.topk_mean_flow_goodput_mbps.reserve(nflows);
  for (std::size_t i = 0; i < nflows; ++i) {
    double g = 0.0;
    if (!(ls >> g)) return Error::parse("state: short gen line: " + line);
    gs.topk_mean_flow_goodput_mbps.push_back(g);
  }
  return Error::success();
}

}  // namespace ccfuzz::fuzz::state_io
