// The CC-Fuzz genetic-algorithm driver (paper Figure 1, §3.5, §4).
//
// A population of traces is split across islands (island-isolation [21] for
// solution diversity). Each generation, every island: evaluates its members
// (in parallel, deterministically), ranks them, carries kElite members over
// unchanged, fills a crossover quota by splicing rank-selected parents, and
// fills the remainder with rank-selected mutations. Every
// `migration_interval` generations the top fraction of each island migrates
// to the next island in a ring, replacing its worst members.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <vector>

#include "fuzz/elite_archive.h"
#include "fuzz/evaluator.h"
#include "fuzz/trace_model.h"
#include "trace/annealing.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace ccfuzz::fuzz {

/// How parents are selected each generation.
enum class SearchMode {
  /// Classic CC-Fuzz: rank selection over the island population by score.
  kScore,
  /// MAP-Elites: half of all parents are drawn uniformly from the
  /// behavioral elite archive (fuzz::EliteArchive), the rest from island
  /// rank order — so every discovered behavior keeps breeding regardless of
  /// how it scores globally, without collapsing the gene pool onto a small
  /// archive. Requires the evaluator's scenario to arm the coverage probe
  /// (ScenarioConfig::coverage).
  kMapElites,
};

/// Display/report name of a search mode ("score" / "map-elites").
constexpr const char* to_string(SearchMode m) {
  return m == SearchMode::kScore ? "score" : "map-elites";
}

/// GA parameters. Paper-scale defaults are population 500, 20 islands,
/// kElite 1, 30% crossovers, 10% migration every 10 generations (§4).
struct GaConfig {
  int population = 500;
  int islands = 20;
  int elites_per_island = 1;
  double crossover_fraction = 0.3;
  int migration_interval = 10;
  double migration_fraction = 0.1;
  int max_generations = 40;
  /// Stop early when the best score has not improved for this many
  /// generations; 0 disables early stopping.
  int patience = 0;
  /// Optional trace annealing (§3.2) applied to mutation parents.
  bool anneal = false;
  trace::AnnealingConfig anneal_cfg{};
  std::uint64_t seed = 0x5EED5EED5EEDULL;
  /// Evaluate islands' members in parallel on the global thread pool.
  bool parallel = true;
  /// Parent-selection strategy (see SearchMode).
  SearchMode search = SearchMode::kScore;
  /// Selection bonus per union-coverage bit a member set for the first
  /// time, added to its score for ranking (not reporting). Works in either
  /// search mode — with kScore it gives classic novelty-bonus selection —
  /// but needs the scenario's coverage probe armed. 0 disables. The bonus
  /// decays naturally: as the union map saturates, fresh bits dry up.
  double novelty_bonus = 0.0;
};

/// One population member: a trace and (once evaluated) its fitness.
struct Member {
  trace::Trace genome;
  Evaluation eval;
  bool evaluated = false;
  /// Transient selection bonus from coverage novelty (never reported).
  double novelty = 0.0;
};

/// Per-generation statistics (Fig 4d plots a series of these).
struct GenStats {
  int generation = 0;
  double best_score = 0.0;
  double mean_score = 0.0;
  /// Mean packets sent by the CCA over the top-k fittest traces — the Fig 4d
  /// y-axis ("avg of the top 20 traces with the lowest throughput").
  double topk_mean_packets_sent = 0.0;
  double topk_mean_goodput_mbps = 0.0;
  /// Mean Jain's fairness index over the top-k fittest traces (1.0 in
  /// single-flow cells) — the fairness-mode convergence series.
  double topk_mean_jain_fairness = 1.0;
  /// Mean per-flow goodput over the top-k fittest traces, in flow-index
  /// order; empty when evaluations carry no per-flow series.
  std::vector<double> topk_mean_flow_goodput_mbps;
  /// Members whose run ended in a stall (no progress in the last second).
  int stalled_count = 0;
  std::int64_t evaluations = 0;

  // --- Coverage / archive growth (zero when no archive is attached) ---
  /// Occupied MAP-Elites cells after this generation's inserts.
  std::int64_t archive_cells = 0;
  /// Cells first filled this generation.
  std::int64_t archive_new_cells = 0;
  /// Incumbent elites displaced by a higher score this generation.
  std::int64_t archive_improved = 0;
  /// Union coverage-bitmap population count across the whole campaign.
  std::int64_t coverage_bits = 0;
};

/// The GA loop. Construct, then run() or step() generation by generation.
class Fuzzer {
 public:
  /// `model` and `evaluator` are copied/shared; `cfg.population` is split
  /// evenly across islands (remainder to the first islands).
  Fuzzer(const GaConfig& cfg, std::shared_ptr<const TraceModel> model,
         TraceEvaluator evaluator);

  /// Runs one generation (evaluate → select → breed → maybe migrate).
  /// Returns that generation's stats.
  GenStats step();

  // --- External-scheduler interface (campaign cell batching) ---------------
  // A campaign runs many Fuzzers at once and wants one flat evaluation batch
  // across all of them, so cores stay saturated when one cell or island has
  // a long tail. Per generation it calls pending_members(), fills each
  // member's `eval`/`evaluated` (from simulation or an evaluation cache),
  // calls note_external_evaluations(), then advance_generation(). The
  // resulting GenStats sequence is identical to driving step() directly.

  /// Members awaiting evaluation, in deterministic (island, slot) order.
  std::vector<Member*> pending_members();

  /// Accounts evaluations performed outside step() so GenStats::evaluations
  /// matches an in-process run (cache hits count: the uncached run would
  /// have simulated them).
  void note_external_evaluations(std::int64_t n) { total_evaluations_ += n; }

  /// Completes a generation whose members were evaluated externally:
  /// stats → maybe migrate → breed, the exact tail of step().
  GenStats advance_generation();

  /// Runs until max_generations or early-stop; returns the full history.
  const std::vector<GenStats>& run();

  /// Best member ever observed (valid after the first step()).
  const Member& best() const { return best_ever_; }

  const std::vector<GenStats>& history() const { return history_; }
  int generation() const { return generation_; }
  std::int64_t total_evaluations() const { return total_evaluations_; }

  /// Top-k members of the current population, best first (across islands).
  std::vector<Member> top_members(std::size_t k) const;

  /// The behavioral elite archive — present whenever the evaluator's
  /// scenario arms the coverage probe (kScore mode then tracks coverage
  /// passively; kMapElites additionally selects parents from it). Null when
  /// coverage is off.
  std::shared_ptr<const EliteArchive> archive() const { return archive_; }

  /// Replaces the archive with `a` (campaign resume: continue filling the
  /// cells a previous campaign discovered). Call before the first
  /// generation. Throws std::logic_error when this fuzzer tracks no archive
  /// (scenario coverage off).
  void seed_archive(EliteArchive a);

  /// For Fig 4d-style sweeps: number used to average the top-k metric.
  static constexpr std::size_t kTopK = 20;

  // --- Checkpointing --------------------------------------------------------
  /// Writes the full GA runtime state — island populations with their RNG
  /// streams, generation counter, history, best-ever member, and the elite
  /// archive (embedded, terminated) — as a `# ccfuzz-fuzzer v1` block.
  /// restore_state on an identically-configured Fuzzer continues the search
  /// bit-identically to one that never stopped.
  void save_state(std::ostream& os) const;

  /// Restores state written by save_state into this (identically
  /// configured) fuzzer. On error the fuzzer is left unusable for resume —
  /// callers must fall back to a fresh instance. kMismatch when the stream
  /// disagrees with this fuzzer's shape (island count, archive presence).
  Error restore_state(std::istream& is);

 private:
  struct Island {
    std::vector<Member> members;
    Rng rng;
  };

  void evaluate_all();
  void absorb_into_archive(GenStats& gs);
  void breed_island(Island& isl);
  void migrate();
  GenStats collect_stats();

  GaConfig cfg_;
  std::shared_ptr<const TraceModel> model_;
  TraceEvaluator evaluator_;
  std::vector<Island> islands_;
  /// Shared so campaign reports can outlive the fuzzer without copying.
  std::shared_ptr<EliteArchive> archive_;
  Member best_ever_;
  std::vector<GenStats> history_;
  int generation_ = 0;
  std::int64_t total_evaluations_ = 0;
};

}  // namespace ccfuzz::fuzz
