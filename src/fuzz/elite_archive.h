// MAP-Elites archive over behavioral coverage descriptors.
//
// Instead of keeping one best-of-population, the archive grids the behavior
// space (coverage::BehaviorDescriptor quantized to a fixed
// 8x8x8x8 lattice) and keeps the highest-scoring trace per cell — so a
// mid-scoring trace that drives the CCA somewhere *new* survives and breeds.
// The archive also maintains the union coverage bitmap across everything
// ever inserted; insert() reports how many bitmap bits a candidate set for
// the first time, which is the novelty bonus SearchMode::kMapElites /
// GaConfig::novelty_bonus feeds back into selection.
//
// Cell storage is fixed (kCells slots, allocated up front) and replacement
// copy-assigns into the incumbent's buffers, so a warm generation of
// inserts performs zero heap allocations when genome sizes have reached
// their high-water mark (pinned by the steady-state allocation test).
//
// Archives serialize through trace_io (each elite genome is an embedded
// `# ccfuzz-trace v1` block), so a campaign can resume from a previous
// campaign's archive and keep filling cells.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "coverage/probe.h"
#include "fuzz/evaluator.h"
#include "trace/trace.h"
#include "util/error.h"
#include "util/rng.h"

namespace ccfuzz::fuzz {

/// Fixed-grid MAP-Elites archive keyed by the behavior descriptor.
class EliteArchive {
 public:
  static constexpr std::size_t kDims = 4;
  static constexpr std::size_t kBuckets = 8;
  static constexpr std::size_t kCells = 4096;  // kBuckets^kDims

  /// One lattice cell: the elite (highest-scoring) trace observed with this
  /// behavior, or empty.
  struct Cell {
    bool occupied = false;
    trace::Trace genome;
    Evaluation eval;
  };

  struct InsertResult {
    bool new_cell = false;        ///< first occupant of its cell
    bool improved = false;        ///< displaced a lower-scoring incumbent
    std::uint32_t fresh_bits = 0; ///< union-bitmap bits this run set first
    std::size_t cell = 0;         ///< lattice index the candidate mapped to
  };

  EliteArchive();

  /// Lattice index of a descriptor: each of the four behavior axes
  /// (state transitions, RTT spread, max RTO backoff, cwnd span) quantized
  /// to kBuckets saturating log-ish buckets.
  static std::size_t cell_index(const coverage::BehaviorDescriptor& d);

  /// Offers a candidate. No-op (all-false result) unless `eval.coverage` is
  /// valid. The union map always absorbs the candidate's bitmap; the cell
  /// only takes it when empty or strictly outscored (ties keep the
  /// incumbent, so re-inserted elites never churn).
  InsertResult insert(const trace::Trace& genome, const Evaluation& eval);

  /// Unions `other` into this archive (distributed report merge, repeated-
  /// seed aggregation): the union bitmap absorbs other's map, and each of
  /// other's elites is offered to its cell under insert() semantics — empty
  /// cells take it, occupied cells keep the strictly higher score (ties keep
  /// this archive's incumbent). Deterministic: other's elites are visited in
  /// its fill order, and cells this newly fills extend this archive's fill
  /// order in that sequence — merging into an empty archive reproduces
  /// `other` byte-for-byte through save(). Returns the number of cells
  /// newly filled or improved.
  std::size_t merge_from(const EliteArchive& other);

  std::size_t filled() const { return occupied_.size(); }
  std::uint32_t union_bits() const { return union_bits_; }
  const coverage::CoverageBitmap& union_map() const { return union_map_; }

  const Cell& cell(std::size_t index) const { return cells_[index]; }
  /// Occupied lattice indices in first-fill order (deterministic).
  const std::vector<std::uint16_t>& occupied_cells() const {
    return occupied_;
  }

  /// Uniform-random occupied cell (parent selection). Requires filled() > 0.
  const Cell& sample(Rng& rng) const;

  // ---- Persistence (archives survive across campaigns) ----
  /// Writes the archive; elite genomes are embedded trace_io blocks. With
  /// `terminated`, appends a `# end archive` line so the block can be
  /// embedded inside a larger stream (checkpoints) — try_load stops there
  /// instead of consuming to EOF. Standalone files omit it (and stay
  /// byte-compatible with pre-terminator archives).
  void save(std::ostream& os, bool terminated = false) const;
  void save_file(const std::string& path) const;
  /// Parses an archive written by save() without throwing. Restores genomes,
  /// scores, descriptors, coverage bitmaps and the union map; transport
  /// counters of the persisted evaluations read as zero. Error codes:
  /// kVersion for a recognized-but-unsupported format, kTruncated for a file
  /// cut off mid-entry (the crash artifact), kParse/kCorrupt for mangled
  /// content. Reads to EOF or to a `# end archive` terminator.
  static Result<EliteArchive> try_load(std::istream& is);
  static Result<EliteArchive> try_load_file(const std::string& path);
  /// Throwing wrappers (std::runtime_error on malformed input).
  static EliteArchive load(std::istream& is);
  static EliteArchive load_file(const std::string& path);

 private:
  std::vector<Cell> cells_;             // kCells, fixed size
  std::vector<std::uint16_t> occupied_; // fill order; reserved to kCells
  coverage::CoverageBitmap union_map_{};
  std::uint32_t union_bits_ = 0;
};

}  // namespace ccfuzz::fuzz
