#include "fuzz/selection.h"

#include <algorithm>
#include <cassert>

namespace ccfuzz::fuzz {

RankSelector::RankSelector(std::size_t n) {
  assert(n >= 1 && "selector needs at least one entry");
  cumulative_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / static_cast<double>(i + 1);
    cumulative_[i] = acc;
  }
  for (auto& c : cumulative_) c /= acc;
  cumulative_.back() = 1.0;  // guard against rounding
}

std::size_t RankSelector::pick(Rng& rng) const {
  const double u = rng.next_double();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

std::pair<std::size_t, std::size_t> RankSelector::pick_pair(Rng& rng) const {
  assert(cumulative_.size() >= 2 && "pair selection needs two entries");
  const std::size_t a = pick(rng);
  std::size_t b = pick(rng);
  // Resample the partner until distinct; rank weights keep this fast.
  while (b == a) b = pick(rng);
  return {a, b};
}

}  // namespace ccfuzz::fuzz
