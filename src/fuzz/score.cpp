#include "fuzz/score.h"

#include "util/stats.h"

namespace ccfuzz::fuzz {

double LowUtilizationScore::performance_score(
    const scenario::RunResult& run) const {
  const auto windows = run.windowed_throughput_mbps(window_);
  return -mean_of_lowest_fraction(windows, fraction_);
}

double HighDelayScore::performance_score(
    const scenario::RunResult& run) const {
  const auto delays = run.cca_queue_delays_s();
  if (delays.empty()) {
    // No CCA packet ever crossed the bottleneck: treat as the worst-case
    // delay signal is absent; neutral score.
    return 0.0;
  }
  return percentile(delays, pct_);
}

double HighLossScore::performance_score(const scenario::RunResult& run) const {
  const DurationNs active = run.config.duration - run.config.flow_start;
  if (active <= DurationNs::zero()) return 0.0;
  return static_cast<double>(run.cca_drops) / active.to_seconds();
}

double LowGoodputScore::performance_score(
    const scenario::RunResult& run) const {
  return -run.goodput_mbps();
}

double LowSendRateScore::performance_score(
    const scenario::RunResult& run) const {
  const DurationNs active = run.config.duration - run.config.flow_start;
  if (active <= DurationNs::zero()) return 0.0;
  return -static_cast<double>(run.cca_sent) / active.to_seconds();
}

}  // namespace ccfuzz::fuzz
