#include "fuzz/score.h"

#include "util/stats.h"

namespace ccfuzz::fuzz {

double LowUtilizationScore::performance_score(
    const scenario::RunResult& run) const {
  const auto windows = run.windowed_throughput_mbps(window_);
  return -mean_of_lowest_fraction(windows, fraction_);
}

double HighDelayScore::performance_score(
    const scenario::RunResult& run) const {
  const auto delays = run.cca_queue_delays_s();
  if (delays.empty()) {
    // No CCA packet ever crossed the bottleneck: treat as the worst-case
    // delay signal is absent; neutral score.
    return 0.0;
  }
  return percentile(delays, pct_);
}

double HighLossScore::performance_score(const scenario::RunResult& run) const {
  const DurationNs active = run.primary().active();
  if (active <= DurationNs::zero()) return 0.0;
  return static_cast<double>(run.cca_drops()) / active.to_seconds();
}

double LowGoodputScore::performance_score(
    const scenario::RunResult& run) const {
  return -run.goodput_mbps();
}

double LowSendRateScore::performance_score(
    const scenario::RunResult& run) const {
  const DurationNs active = run.primary().active();
  if (active <= DurationNs::zero()) return 0.0;
  return -static_cast<double>(run.cca_sent()) / active.to_seconds();
}

double JainFairnessScore::performance_score(
    const scenario::RunResult& run) const {
  if (run.flow_count() < 2) return 0.0;
  return 1.0 - run.jain_fairness();
}

double ThroughputRatioScore::performance_score(
    const scenario::RunResult& run) const {
  if (victim_ >= run.flow_count() || attacker_ >= run.flow_count()) {
    // The designated pair does not exist in this scenario (e.g. a
    // single-flow cell): neutral, like JainFairnessScore — not a constant
    // "victim fully starved" that would blind the GA.
    return 0.0;
  }
  const double victim = run.goodput_mbps(victim_);
  const double attacker = run.goodput_mbps(attacker_);
  const double pair = victim + attacker;
  if (pair <= 0.0) return 0.5;  // both idle: neutral
  return attacker / pair;
}

}  // namespace ccfuzz::fuzz
