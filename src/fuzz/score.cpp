#include "fuzz/score.h"

#include <bit>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/stats.h"

namespace ccfuzz::fuzz {

std::uint64_t ScoreFunction::identity_base() const {
  // FNV-1a over name(): stable across processes and builds, unlike the
  // object's address.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name(); *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t ScoreFunction::mix_identity(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t LowUtilizationScore::identity() const {
  std::uint64_t h = identity_base();
  h = mix_identity(h, static_cast<std::uint64_t>(window_.ns()));
  h = mix_identity(h, std::bit_cast<std::uint64_t>(fraction_));
  return h;
}

std::uint64_t HighDelayScore::identity() const {
  return mix_identity(identity_base(), std::bit_cast<std::uint64_t>(pct_));
}

std::uint64_t ThroughputRatioScore::identity() const {
  std::uint64_t h = identity_base();
  h = mix_identity(h, static_cast<std::uint64_t>(victim_));
  h = mix_identity(h, static_cast<std::uint64_t>(attacker_));
  return h;
}

void LowUtilizationScore::validate(
    const scenario::ScenarioConfig& scenario) const {
  // A custom window only exists post-hoc in the raw events; in a
  // metrics-only run it would silently read as zero throughput for every
  // trace and degenerate the GA. Caught here, at evaluator construction.
  if (scenario.record_mode != scenario::RecordMode::kFullEvents &&
      window_ != scenario.metrics_window) {
    throw std::logic_error(
        "LowUtilizationScore window (" + std::to_string(window_.to_seconds()) +
        " s) does not match the scenario's metrics_window (" +
        std::to_string(scenario.metrics_window.to_seconds()) +
        " s) and metrics-only runs keep no raw events; align the two or use "
        "RecordMode::kFullEvents");
  }
}

double LowUtilizationScore::performance_score(
    const scenario::RunResult& run) const {
  // Same misconfiguration guard for direct (non-evaluator) callers. Runs
  // whose recorder actually holds events — full-events mode or hand-built
  // results — can serve any window post hoc.
  if (window_ != run.config.metrics_window && !run.has_events() &&
      run.recorder.egress().empty()) {
    validate(run.config);
  }
  // Scoring runs on the GA's zero-allocation path: the windowed series is
  // materialized into per-thread scratch (warm after the first evaluation)
  // and the lowest-fraction mean is computed in place.
  thread_local std::vector<double> scratch;
  run.windowed_throughput_mbps_into(window_, 0, scratch);
  if (scratch.empty()) return 0.0;
  return -mean_of_lowest_fraction_inplace(scratch, fraction_);
}

double HighDelayScore::performance_score(
    const scenario::RunResult& run) const {
  // Streaming delay digest: identical in metrics-only and full-events runs.
  // An empty digest (no CCA packet ever crossed the bottleneck) is neutral.
  return run.queue_delay_percentile_s(pct_, 0);
}

double HighLossScore::performance_score(const scenario::RunResult& run) const {
  const DurationNs active = run.primary().active();
  if (active <= DurationNs::zero()) return 0.0;
  return static_cast<double>(run.cca_drops()) / active.to_seconds();
}

double LowGoodputScore::performance_score(
    const scenario::RunResult& run) const {
  return -run.goodput_mbps();
}

double LowSendRateScore::performance_score(
    const scenario::RunResult& run) const {
  const DurationNs active = run.primary().active();
  if (active <= DurationNs::zero()) return 0.0;
  return -static_cast<double>(run.cca_sent()) / active.to_seconds();
}

double JainFairnessScore::performance_score(
    const scenario::RunResult& run) const {
  if (run.flow_count() < 2) return 0.0;
  return 1.0 - run.jain_fairness();
}

double ThroughputRatioScore::performance_score(
    const scenario::RunResult& run) const {
  if (victim_ >= run.flow_count() || attacker_ >= run.flow_count()) {
    // The designated pair does not exist in this scenario (e.g. a
    // single-flow cell): neutral, like JainFairnessScore — not a constant
    // "victim fully starved" that would blind the GA.
    return 0.0;
  }
  const double victim = run.goodput_mbps(victim_);
  const double attacker = run.goodput_mbps(attacker_);
  const double pair = victim + attacker;
  if (pair <= 0.0) return 0.5;  // both idle: neutral
  return attacker / pair;
}

}  // namespace ccfuzz::fuzz
