#include "campaign/report.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trace/hash.h"
#include "trace/trace_io.h"
#include "util/csv.h"

namespace ccfuzz::campaign {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

const char* score_name(const CellConfig& cell) {
  return cell.score ? cell.score->name() : "low-utilization";
}

/// Per-flow goodputs joined by `sep` — the one place their formatting lives.
std::string join_flow_goodputs(const fuzz::Evaluation& e, char sep) {
  std::string out;
  for (std::size_t i = 0; i < e.flow_goodput_mbps.size(); ++i) {
    if (i) out += sep;
    out += format_double(e.flow_goodput_mbps[i]);
  }
  return out;
}

/// Per-flow goodputs as a compact JSON array ("[1.2,3.4]").
std::string flow_goodputs_json(const fuzz::Evaluation& e) {
  return '[' + join_flow_goodputs(e, ',') + ']';
}

/// Per-flow goodputs as a ';'-joined CSV cell ("1.2;3.4"); "-" when absent.
std::string flow_goodputs_csv(const fuzz::Evaluation& e) {
  if (e.flow_goodput_mbps.empty()) return "-";
  return join_flow_goodputs(e, ';');
}

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream os(path);
  os << body;
  if (!os) {
    throw std::runtime_error("failed to write " + path.string());
  }
}

}  // namespace

// Cell names are free-form user input and must not be able to shift a
// summary row.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string sanitize_cell_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

const char* summary_csv_header() {
  return "cell,cca,mode,score,flows,generations,evaluations,simulations,"
         "cache_hits,archive_cells,coverage_bits,best_score,"
         "best_goodput_mbps,best_flow_goodputs_mbps,"
         "best_jain_fairness,winner_hash\n";
}

std::string to_json(const CampaignReport& report) {
  std::ostringstream os;
  os << "{\n  \"interrupted\": " << (report.interrupted ? "true" : "false")
     << ",\n  \"quarantined\": " << report.quarantined
     << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellResult& r = report.cells[i];
    const std::string dir = sanitize_cell_name(r.cell.name);
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.cell.name) << "\",\n";
    os << "      \"cca\": \"" << json_escape(r.cell.cca) << "\",\n";
    os << "      \"mode\": \"" << scenario::to_string(r.cell.scenario.mode)
       << "\",\n";
    os << "      \"score\": \"" << json_escape(score_name(r.cell)) << "\",\n";
    os << "      \"flows\": " << r.cell.scenario.flow_count() << ",\n";
    os << "      \"generations\": " << r.history.size() << ",\n";
    os << "      \"evaluations\": " << (r.simulations + r.cache_hits) << ",\n";
    os << "      \"simulations\": " << r.simulations << ",\n";
    os << "      \"cache_hits\": " << r.cache_hits << ",\n";
    if (r.archive) {
      os << "      \"archive_cells\": " << r.archive->filled() << ",\n";
      os << "      \"coverage_bits\": " << r.archive->union_bits() << ",\n";
      os << "      \"archive_file\": \"" << json_escape(dir)
         << "/archive.txt\",\n";
    }
    os << "      \"best_score\": " << format_double(r.best_score()) << ",\n";
    os << "      \"winners\": [\n";
    for (std::size_t w = 0; w < r.winners.size(); ++w) {
      const Finding& f = r.winners[w];
      os << "        {\"hash\": \"" << trace::hash_hex(f.trace_hash)
         << "\", \"score\": " << format_double(f.eval.score.total())
         << ", \"goodput_mbps\": " << format_double(f.eval.goodput_mbps)
         << ", \"flow_goodputs_mbps\": " << flow_goodputs_json(f.eval)
         << ", \"jain_fairness\": " << format_double(f.eval.jain_fairness)
         << ", \"trace_packets\": " << f.genome.size()
         << ", \"rtos\": " << f.eval.rto_count
         << ", \"stalled\": " << (f.eval.stalled ? "true" : "false")
         << ", \"trace_file\": \"" << json_escape(dir) << "/winner_" << w
         << ".trace\"}" << (w + 1 < r.winners.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void write_report(const CampaignReport& report, const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path root(dir);
  fs::create_directories(root);

  // summary.csv — one row per cell.
  {
    std::ostringstream os;
    os << summary_csv_header();
    for (const CellResult& r : report.cells) {
      os << csv_field(r.cell.name) << ',' << csv_field(r.cell.cca) << ','
         << scenario::to_string(r.cell.scenario.mode) << ','
         << csv_field(score_name(r.cell)) << ','
         << r.cell.scenario.flow_count() << ',' << r.history.size() << ','
         << (r.simulations + r.cache_hits) << ',' << r.simulations << ','
         << r.cache_hits << ','
         << (r.archive ? r.archive->filled() : 0) << ','
         << (r.archive ? r.archive->union_bits() : 0) << ','
         << format_double(r.best_score()) << ','
         << format_double(r.winners.empty()
                              ? 0.0
                              : r.winners.front().eval.goodput_mbps)
         << ','
         << (r.winners.empty() ? std::string("-")
                               : flow_goodputs_csv(r.winners.front().eval))
         << ','
         << format_double(r.winners.empty()
                              ? 1.0
                              : r.winners.front().eval.jain_fairness)
         << ','
         << (r.winners.empty() ? std::string("-")
                               : trace::hash_hex(r.winners.front().trace_hash))
         << '\n';
    }
    write_file(root / "summary.csv", os.str());
  }

  write_file(root / "summary.json", to_json(report));

  for (const CellResult& r : report.cells) {
    const fs::path cell_dir = root / sanitize_cell_name(r.cell.name);
    fs::create_directories(cell_dir);
    {
      // Hand-rolled (not CsvWriter): the per-flow goodput column is a
      // ';'-joined list, like best_flow_goodputs_mbps in summary.csv.
      std::ofstream os(cell_dir / "history.csv");
      os << "generation,best_score,mean_score,top20_packets_sent,"
            "top20_goodput_mbps,top20_jain_fairness,"
            "top20_flow_goodputs_mbps,stalled,evaluations,"
            "archive_cells,archive_new_cells,coverage_bits\n";
      for (const fuzz::GenStats& gs : r.history) {
        std::string flow_goodputs;
        for (std::size_t f = 0; f < gs.topk_mean_flow_goodput_mbps.size();
             ++f) {
          if (f) flow_goodputs += ';';
          flow_goodputs += format_double(gs.topk_mean_flow_goodput_mbps[f]);
        }
        os << gs.generation << ',' << format_double(gs.best_score) << ','
           << format_double(gs.mean_score) << ','
           << format_double(gs.topk_mean_packets_sent) << ','
           << format_double(gs.topk_mean_goodput_mbps) << ','
           << format_double(gs.topk_mean_jain_fairness) << ','
           << (flow_goodputs.empty() ? "-" : flow_goodputs) << ','
           << gs.stalled_count << ',' << gs.evaluations << ','
           << gs.archive_cells << ',' << gs.archive_new_cells << ','
           << gs.coverage_bits << '\n';
      }
      if (!os) {
        throw std::runtime_error("failed to write " +
                                 (cell_dir / "history.csv").string());
      }
    }
    for (std::size_t w = 0; w < r.winners.size(); ++w) {
      trace::save_trace(
          (cell_dir / ("winner_" + std::to_string(w) + ".trace")).string(),
          r.winners[w].genome);
    }
    // The archive is the resumable artifact: a later campaign pointing
    // resume_dir at this tree continues filling these cells.
    if (r.archive) {
      r.archive->save_file((cell_dir / "archive.txt").string());
    }
  }
}

}  // namespace ccfuzz::campaign
