// Cross-CCA comparison panels on fixed traces — the findings-bench
// workflow (§4): the same adversarial trace replayed against a panel of
// CCAs (or several labelled traces against one CCA), evaluated in parallel
// through the shared pool. This replaces the per-bench run_scenario loops.
#pragma once

#include <string>
#include <vector>

#include "scenario/config.h"
#include "scenario/runner.h"

namespace ccfuzz::campaign {

/// One panel entry: a labelled (CCA, trace) pair run on the shared scenario.
struct PanelJob {
  /// Row label in reports/CSV; defaults to the CCA name when empty.
  std::string label;
  /// Registry name (cca::make_factory).
  std::string cca;
  /// Link service curve or cross-traffic schedule, per the scenario's mode.
  std::vector<TimeNs> trace;
};

struct PanelRow {
  std::string label;
  std::string cca;
  /// The full run (panels are small; findings benches need diagnostics,
  /// recorder access and timelines, not just the compact Evaluation).
  scenario::RunResult run;
};

/// Runs every job over `cfg`; rows land in job order (deterministic under
/// parallelism). CCA names resolve before anything runs, so an unknown name
/// throws immediately with the known list.
std::vector<PanelRow> evaluate_panel(const scenario::ScenarioConfig& cfg,
                                     std::vector<PanelJob> jobs,
                                     bool parallel = true);

/// Convenience: one trace against many CCAs.
std::vector<PanelRow> evaluate_panel(const scenario::ScenarioConfig& cfg,
                                     const std::vector<std::string>& ccas,
                                     const std::vector<TimeNs>& trace,
                                     bool parallel = true);

}  // namespace ccfuzz::campaign
