// The campaign layer: one entry point for multi-scenario × multi-CCA fuzzing.
//
// The paper's workflow (§4) is a matrix — each CCA is fuzzed in each mode
// under a scoring function — and this subsystem makes that matrix the
// primary API. A CampaignConfig declares the axes (CCA names × FuzzMode ×
// scenario variants × score functions) plus per-axis defaults; Campaign
// expands them into cells, runs every cell's GA, and collects per-cell
// winners and GenStats history into a CampaignReport (see report.h for
// CSV/JSON serialization).
//
// Scheduling: instead of running cells one after another (each ending in a
// low-parallelism tail as its last islands drain), the driver advances all
// cells in lockstep and flattens every cell's pending evaluations into one
// cross-cell batch on the shared thread pool, so cores stay saturated even
// when islands are imbalanced. Repeat genomes — identical traces reaching
// cells with identical evaluation semantics — are served from an evaluation
// cache keyed by (cell evaluation key, trace::hash) instead of re-simulated.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fuzz/evaluator.h"
#include "fuzz/fuzzer.h"
#include "fuzz/score.h"
#include "scenario/config.h"
#include "scenario/presets.h"
#include "trace/mutation.h"

namespace ccfuzz::campaign {

/// One cell of the campaign matrix: one CCA fuzzed in one mode under one
/// scenario / score / GA configuration.
struct CellConfig {
  /// Unique within a campaign; auto-derived ("<cca>.<mode>.<score>") when
  /// empty.
  std::string name;
  /// Registry name (cca::make_factory); display-only when `factory` is set.
  std::string cca = "bbr";
  /// Optional explicit factory for CCAs outside the registry (custom_cca
  /// example). When empty, `cca` is resolved through the registry.
  tcp::CcaFactory factory;
  scenario::ScenarioConfig scenario{};
  /// Defaults to LowUtilizationScore when null.
  std::shared_ptr<const fuzz::ScoreFunction> score;
  fuzz::TraceScoreWeights trace_weights{};
  fuzz::GaConfig ga{};
  /// Link-mode genome parameters. total_packets <= 0 derives the packet
  /// budget from the scenario's bottleneck rate (pinning the average
  /// bandwidth); duration always tracks the scenario.
  trace::LinkTraceModel link_model{.total_packets = -1};
  /// Traffic-mode genome parameters (duration tracks the scenario).
  trace::TrafficTraceModel traffic_model{.max_packets = 3000,
                                         .initial_packets = 1500};
  /// Top members serialized per cell, deduped by trace hash.
  std::size_t winners = 5;
  /// Path of a MAP-Elites archive (fuzz::EliteArchive::save_file format) to
  /// seed this cell's fuzzer from. Loaded when the file exists; a missing
  /// file is a cold start, not an error, so the same config works for the
  /// first campaign and every resume. Only meaningful when the scenario's
  /// coverage probe is armed (cells() arms it automatically for
  /// coverage-guided GA configs).
  std::string resume_archive;
};

/// Declarative builder for a campaign. Axis setters define a matrix that
/// cells() expands (every CCA × mode × scenario variant × score); add_cell()
/// appends explicit cells untouched by the matrix. Matrix cells share the
/// base GaConfig — including its seed, so same-mode cells start from paired
/// initial populations and CCAs can be compared on equal footing (the
/// Fig 4d methodology).
class CampaignConfig {
 public:
  CampaignConfig& ccas(std::vector<std::string> names) {
    ccas_ = std::move(names);
    return *this;
  }
  CampaignConfig& modes(std::vector<scenario::FuzzMode> modes) {
    modes_ = std::move(modes);
    return *this;
  }
  /// The scenario used when no named variants are added. Its `mode` is
  /// overwritten by the mode axis.
  CampaignConfig& base_scenario(scenario::ScenarioConfig s) {
    base_scenario_ = s;
    return *this;
  }
  /// Adds a named scenario variant axis entry (e.g. "shallow-queue").
  CampaignConfig& add_scenario(std::string name, scenario::ScenarioConfig s) {
    scenarios_.push_back({std::move(name), s});
    return *this;
  }
  /// Adds a multi-flow preset ("incast", "late_starter", "rtt_unfair",
  /// "inter_protocol") to the scenario axis. The preset is applied to the
  /// base scenario at expansion time, so base_scenario() may be set before
  /// or after. Unknown names throw from cells().
  CampaignConfig& add_preset(std::string name,
                             scenario::PresetOptions opt = {}) {
    presets_.push_back({std::move(name), std::move(opt)});
    return *this;
  }
  /// Convenience: one add_preset per name, all with default options.
  CampaignConfig& presets(std::vector<std::string> names) {
    for (auto& n : names) add_preset(std::move(n));
    return *this;
  }
  /// The score used when no named score variants are added.
  CampaignConfig& score(std::shared_ptr<const fuzz::ScoreFunction> s,
                        fuzz::TraceScoreWeights weights = {}) {
    scores_.clear();
    scores_.push_back({"", std::move(s), weights});
    return *this;
  }
  /// Adds a named score axis entry; the name defaults to the score's own.
  CampaignConfig& add_score(std::string name,
                            std::shared_ptr<const fuzz::ScoreFunction> s,
                            fuzz::TraceScoreWeights weights = {}) {
    scores_.push_back({std::move(name), std::move(s), weights});
    return *this;
  }
  CampaignConfig& ga(fuzz::GaConfig cfg) {
    ga_ = cfg;
    return *this;
  }
  CampaignConfig& link_model(trace::LinkTraceModel m) {
    link_model_ = m;
    return *this;
  }
  CampaignConfig& traffic_model(trace::TrafficTraceModel m) {
    traffic_model_ = m;
    return *this;
  }
  CampaignConfig& winners(std::size_t n) {
    winners_ = n;
    return *this;
  }
  /// Evaluate batches on the global thread pool (on by default).
  CampaignConfig& parallel(bool on) {
    parallel_ = on;
    return *this;
  }
  /// Directory for the CSV/JSON report and winner traces; empty disables
  /// report writing.
  CampaignConfig& output_dir(std::string dir) {
    output_dir_ = std::move(dir);
    return *this;
  }
  /// Resume from a previous campaign's report tree. Two layers, both keyed
  /// off the same directory: (1) when `<dir>/checkpoint/campaign.ckpt`
  /// exists (written by checkpoint_every), the *full* mid-campaign state —
  /// island populations, RNG streams, per-cell generation counters, elite
  /// archives, and the evaluation cache — is restored, and the campaign
  /// continues to a bit-identical report vs one that never stopped; a
  /// corrupt or mismatched checkpoint degrades to a fresh start with a
  /// warning, never an abort. (2) Independently, each cell whose coverage
  /// probe is armed defaults its resume_archive to
  /// `<dir>/<sanitized cell name>/archive.txt` — exactly where write_report
  /// saves it — so archives keep filling even without a checkpoint. Cells
  /// whose archive file does not exist start cold.
  CampaignConfig& resume_dir(std::string dir) {
    resume_dir_ = std::move(dir);
    return *this;
  }
  /// Atomically snapshots the full campaign state into
  /// `<output_dir>/checkpoint/campaign.ckpt` every `n` lockstep generations
  /// (and at interruption / completion). 0 disables. Requires output_dir().
  /// Pair with resume_dir(output_dir()) to make a campaign crash-safe: kill
  /// it at any point, rerun the same binary, and it continues from the last
  /// checkpoint to a bit-identical report.
  CampaignConfig& checkpoint_every(int n) {
    checkpoint_every_ = n;
    return *this;
  }
  /// Caps the quarantine recorder for NaN/inf-scoring genomes (see
  /// fuzz::Quarantine): at most `n` distinct genomes are written to
  /// `<output_dir>/quarantine/` before further ones are silently dropped.
  CampaignConfig& quarantine_capacity(std::size_t n) {
    quarantine_capacity_ = n;
    return *this;
  }
  /// Appends one explicit cell (validated, but not crossed with the axes).
  CampaignConfig& add_cell(CellConfig cell) {
    explicit_cells_.push_back(std::move(cell));
    return *this;
  }

  /// Expands the matrix and appends explicit cells. Validates CCA names
  /// (throws std::invalid_argument listing the known ones) and ensures cell
  /// names are unique. Order is deterministic: cca-major, then mode, then
  /// scenario variant, then score, then explicit cells.
  std::vector<CellConfig> cells() const;

  const std::string& output_dir() const { return output_dir_; }
  const std::string& resume_dir() const { return resume_dir_; }
  int checkpoint_every() const { return checkpoint_every_; }
  bool parallel() const { return parallel_; }
  std::size_t quarantine_capacity() const { return quarantine_capacity_; }

 private:
  struct NamedScenario {
    std::string name;
    scenario::ScenarioConfig config;
  };
  struct NamedPreset {
    std::string name;
    scenario::PresetOptions options;
  };
  struct NamedScore {
    std::string name;
    std::shared_ptr<const fuzz::ScoreFunction> score;
    fuzz::TraceScoreWeights weights;
  };

  std::vector<std::string> ccas_;
  std::vector<scenario::FuzzMode> modes_{scenario::FuzzMode::kTraffic};
  scenario::ScenarioConfig base_scenario_{};
  std::vector<NamedScenario> scenarios_;
  std::vector<NamedPreset> presets_;
  std::vector<NamedScore> scores_;
  fuzz::GaConfig ga_{};
  trace::LinkTraceModel link_model_{.total_packets = -1};
  trace::TrafficTraceModel traffic_model_{.max_packets = 3000,
                                          .initial_packets = 1500};
  std::size_t winners_ = 5;
  bool parallel_ = true;
  std::string output_dir_;
  std::string resume_dir_;
  int checkpoint_every_ = 0;
  std::size_t quarantine_capacity_ = 64;
  std::vector<CellConfig> explicit_cells_;
};

/// Stable content hash of everything that affects a scenario's evaluation
/// semantics (mode, flows, transport knobs, network path, budget). This is
/// the scenario component of the campaign evaluation-cache key; triage
/// bundles record it (hex) so `ccfuzz replay` can prove the matrix it was
/// handed reconstructs the same scenario the finding was confirmed under.
std::uint64_t scenario_key(const scenario::ScenarioConfig& s);

/// One deduplicated winner trace of a cell.
struct Finding {
  trace::Trace genome;
  fuzz::Evaluation eval;
  /// trace::hash of the genome — the finding's stable id across runs.
  std::uint64_t trace_hash = 0;
};

/// Everything a finished cell produced.
struct CellResult {
  CellConfig cell;
  std::vector<fuzz::GenStats> history;
  /// Best first, deduped by trace hash; at most `cell.winners` entries.
  std::vector<Finding> winners;
  /// Simulations actually run for this cell vs evaluations served from the
  /// campaign cache (simulations + cache_hits == evaluations consumed).
  std::int64_t simulations = 0;
  std::int64_t cache_hits = 0;
  /// The cell's final MAP-Elites archive — null unless the scenario's
  /// coverage probe was armed. write_report persists it next to the cell's
  /// history so a later campaign can resume from it (see resume_dir()).
  std::shared_ptr<const fuzz::EliteArchive> archive;

  double best_score() const {
    return winners.empty() ? 0.0 : winners.front().eval.score.total();
  }
};

struct CampaignReport {
  std::vector<CellResult> cells;
  /// True when the campaign stopped early on a shutdown request
  /// (stop_requested()); unfinished cells carry partial histories and no
  /// winners. Resume from the checkpoint to finish them.
  bool interrupted = false;
  /// Distinct NaN/inf-scoring genomes sitting in `<output_dir>/quarantine/`
  /// when the report was written (cumulative across resumes; 0 when no
  /// output_dir / nothing quarantined).
  std::size_t quarantined = 0;
};

// --- Graceful shutdown -------------------------------------------------------
// A cooperative process-wide stop flag. The campaign driver polls it between
// lockstep generations: when raised, it finishes the in-flight batch, writes
// a final checkpoint, flushes observers, and returns normally — so a
// SIGINT/SIGTERM'd campaign exits 0 with a resumable on-disk state instead
// of dying mid-write.

/// True once a stop was requested (signal or request_stop()).
bool stop_requested();
/// Raises the stop flag (async-signal-safe).
void request_stop();
/// Clears the flag (tests; running several campaigns in one process).
void reset_stop_flag();
/// Installs SIGINT/SIGTERM handlers that raise the stop flag. Call once from
/// the driver binary; repeated calls are harmless.
void install_stop_signal_handlers();

/// Progress hooks, replacing the ad-hoc printing the benches used to
/// hand-roll. Callbacks run on the driver thread, between batches.
class CampaignObserver {
 public:
  virtual ~CampaignObserver() = default;
  virtual void on_campaign_begin(const std::vector<CellConfig>& cells) {
    (void)cells;
  }
  virtual void on_generation(const CellConfig& cell,
                             const fuzz::GenStats& gs) {
    (void)cell;
    (void)gs;
  }
  virtual void on_cell_end(const CellResult& result) { (void)result; }
  virtual void on_campaign_end(const CampaignReport& report) { (void)report; }
};

/// Prints one line per generation and a summary per cell to a FILE stream
/// (stdout by default) — the progress format the examples share.
class ConsoleObserver final : public CampaignObserver {
 public:
  explicit ConsoleObserver(std::FILE* out = nullptr) : out_(out) {}

  void on_campaign_begin(const std::vector<CellConfig>& cells) override;
  void on_generation(const CellConfig& cell,
                     const fuzz::GenStats& gs) override;
  void on_cell_end(const CellResult& result) override;

 private:
  std::FILE* stream() const;
  std::FILE* out_;
};

/// Streams campaign progress as JSON Lines — one self-describing object per
/// event (`campaign_begin`, `generation`, `cell_end`, `campaign_end`) — the
/// machine-readable sibling of ConsoleObserver for dashboards tailing a
/// file while a long campaign runs. Each line is flushed whole as it is
/// written, so a reader (or a post-crash triage) never sees a torn line;
/// with `sync` the file is additionally fsync'd at generation and cell
/// boundaries, surviving power loss as well as process death.
class JsonlObserver final : public CampaignObserver {
 public:
  /// Opens `path` — truncating by default, appending with `append` (the
  /// resume path: an existing feed is audited first and a torn final line
  /// left by a crash is truncated away, so appending always starts on a
  /// clean line boundary). Throws std::runtime_error when the file cannot
  /// be opened. `sync` fsyncs at generation/cell boundaries.
  explicit JsonlObserver(const std::string& path, bool sync = false,
                         bool append = false);
  /// Writes to an already-open stream (tests, in-process consumers, and
  /// distributed workers streaming to a supervisor pipe via std::cout).
  explicit JsonlObserver(std::ostream& out);
  ~JsonlObserver() override;
  JsonlObserver(const JsonlObserver&) = delete;
  JsonlObserver& operator=(const JsonlObserver&) = delete;

  /// Tags every subsequent event line with `"shard":<k>` (right after
  /// "event"), so lines from many workers multiplexed into one aggregate
  /// feed stay attributable. Negative (the default) leaves lines untagged.
  JsonlObserver& set_shard(int shard) {
    shard_ = shard;
    return *this;
  }

  void on_campaign_begin(const std::vector<CellConfig>& cells) override;
  void on_generation(const CellConfig& cell,
                     const fuzz::GenStats& gs) override;
  void on_cell_end(const CellResult& result) override;
  void on_campaign_end(const CampaignReport& report) override;

 private:
  void emit_line(const std::string& json);
  /// fsync at an event boundary (no-op for stream-backed observers or when
  /// `sync` is off).
  void sync_boundary();
  /// `,"shard":<k>` when tagged, "" otherwise.
  std::string shard_field() const;

  std::FILE* fp_ = nullptr;  ///< owned, file-backed mode (enables fsync)
  bool sync_ = false;
  std::ostream* out_ = nullptr;  ///< borrowed, stream mode
  int shard_ = -1;               ///< >= 0: tag every line with this shard
};

/// Structural health check of a checkpoint file, for `ccfuzz doctor`:
/// verifies the magic/version header and the `# end checkpoint` terminator
/// without needing (or touching) a configured campaign. Typed errors mirror
/// restore_checkpoint's: kIo (unreadable), kParse (bad magic), kVersion
/// (unsupported version), kTruncated (missing terminator — a torn write).
Error validate_checkpoint_file(const std::string& path);

/// Builds the evaluator for one cell — the single place scenario wiring
/// (factory, score, weights) happens. Micro benches that exercise the inner
/// engine directly use this too.
fuzz::TraceEvaluator make_evaluator(const CellConfig& cell);

/// Builds the GA genome model for one cell, with the trace duration (and,
/// in link mode, a defaulted packet budget) derived from the scenario.
std::shared_ptr<const fuzz::TraceModel> make_trace_model(
    const CellConfig& cell);

/// The campaign driver. Construct from a config, optionally attach
/// observers, then run() once.
class Campaign {
 public:
  explicit Campaign(const CampaignConfig& cfg);
  ~Campaign();  // out-of-line: CellState is incomplete here

  /// `obs` is not owned and must outlive run().
  void add_observer(CampaignObserver* obs) { observers_.push_back(obs); }

  /// Runs every cell to completion (max_generations or patience), then
  /// writes the report to output_dir (when set) and returns it. Idempotent:
  /// later calls return the first run's report. Checks stop_requested()
  /// between lockstep generations: on a stop it checkpoints (when
  /// configured) and returns the partial report with `interrupted` set.
  const CampaignReport& run();

  const CampaignReport& report() const { return report_; }
  const std::vector<CellConfig>& cell_configs() const { return cell_cfgs_; }

  /// True when this campaign restored mid-run state from a checkpoint.
  bool resumed() const { return resumed_; }

  /// The quarantine recorder for NaN/inf-scoring genomes — present when an
  /// output_dir is configured (writes to `<output_dir>/quarantine/`).
  const std::shared_ptr<fuzz::Quarantine>& quarantine() const {
    return quarantine_;
  }

 private:
  struct CellState;

  /// Recomputes a cell's deduped winner list + archive pointer from its
  /// final populations (pure function of GA state — also used when
  /// restoring finished cells from a checkpoint).
  void compute_winners(CellState& cell);
  void finish_cell(CellState& cell);
  void build_cells();
  void write_checkpoint() const;
  Error restore_checkpoint(const std::string& path);

  std::vector<CellConfig> cell_cfgs_;
  std::vector<std::unique_ptr<CellState>> cells_;
  /// (cell evaluation key, trace hash) → Evaluation. Cells with identical
  /// evaluation semantics (same CCA/scenario/score, e.g. a GA-seed sweep)
  /// share entries. Persisted in checkpoints (the keys are process-stable),
  /// so resumed campaigns replay cache hits bit-identically.
  std::unordered_map<std::uint64_t, fuzz::Evaluation> cache_;
  std::vector<CampaignObserver*> observers_;
  CampaignReport report_;
  std::string output_dir_;
  int checkpoint_every_ = 0;
  std::shared_ptr<fuzz::Quarantine> quarantine_;
  bool parallel_ = true;
  bool ran_ = false;
  bool resumed_ = false;
};

}  // namespace ccfuzz::campaign
