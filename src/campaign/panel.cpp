#include "campaign/panel.h"

#include "cca/registry.h"
#include "util/thread_pool.h"

namespace ccfuzz::campaign {

std::vector<PanelRow> evaluate_panel(const scenario::ScenarioConfig& cfg,
                                     std::vector<PanelJob> jobs,
                                     bool parallel) {
  // Resolve factories up front: unknown names throw before any simulation.
  std::vector<tcp::CcaFactory> factories;
  factories.reserve(jobs.size());
  for (const PanelJob& j : jobs) factories.push_back(cca::make_factory(j.cca));

  // Panels exist for diagnostics: rows promise recorder access and
  // timelines, so the raw per-packet events are always kept.
  scenario::ScenarioConfig run_cfg = cfg;
  run_cfg.record_mode = scenario::RecordMode::kFullEvents;

  std::vector<PanelRow> rows(jobs.size());
  const auto work = [&](std::size_t i) {
    rows[i].label = jobs[i].label.empty() ? jobs[i].cca : jobs[i].label;
    rows[i].cca = jobs[i].cca;
    rows[i].run = scenario::run_scenario(run_cfg, factories[i], jobs[i].trace);
  };
  if (parallel && jobs.size() > 1) {
    global_thread_pool().parallel_for(jobs.size(), work);
  } else {
    for (std::size_t i = 0; i < jobs.size(); ++i) work(i);
  }
  return rows;
}

std::vector<PanelRow> evaluate_panel(const scenario::ScenarioConfig& cfg,
                                     const std::vector<std::string>& ccas,
                                     const std::vector<TimeNs>& trace,
                                     bool parallel) {
  std::vector<PanelJob> jobs;
  jobs.reserve(ccas.size());
  for (const std::string& cca : ccas) jobs.push_back({"", cca, trace});
  return evaluate_panel(cfg, std::move(jobs), parallel);
}

}  // namespace ccfuzz::campaign
