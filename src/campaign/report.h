// Campaign report serialization.
//
// A finished campaign is written as a directory tree any plotting or triage
// tool can consume:
//
//   <dir>/summary.csv            one row per cell (score, sims, cache hits)
//   <dir>/summary.json           the full machine-readable report
//   <dir>/<cell>/history.csv     per-generation GenStats (Fig 4d series)
//   <dir>/<cell>/winner_<k>.trace  deduped winner traces (trace_io format,
//                                  replayable with examples/replay_trace)
//   <dir>/<cell>/archive.txt     the cell's MAP-Elites archive (coverage
//                                cells only) — CampaignConfig::resume_dir
//                                reloads it to continue the campaign
#pragma once

#include <string>

#include "campaign/campaign.h"

namespace ccfuzz::campaign {

/// Writes the full report tree under `dir` (created if missing). Throws
/// std::runtime_error on I/O failure.
void write_report(const CampaignReport& report, const std::string& dir);

/// The summary.json payload (exposed for tests and embedding). Records the
/// report's `interrupted` flag: a summary written by a gracefully stopped
/// campaign says so, and resuming to completion rewrites it as false — so a
/// finished resumed report stays byte-identical to an uninterrupted one.
std::string to_json(const CampaignReport& report);

/// The exact summary.csv header row (newline included). Shared with the
/// distributed merge step, which reassembles shard summaries row-by-row and
/// must emit the identical header.
const char* summary_csv_header();

/// A cell name made filesystem-safe (anything outside [A-Za-z0-9._-] → '_').
std::string sanitize_cell_name(const std::string& name);

/// JSON string-escapes `s` (quotes, backslashes, control characters). Shared
/// by the report writer and JsonlObserver.
std::string json_escape(const std::string& s);

/// RFC-4180 quoting of one summary.csv field (quoted only when needed).
/// Shared with the distributed merge step, which matches shard summary rows
/// by their exact first column.
std::string csv_field(const std::string& s);

}  // namespace ccfuzz::campaign
