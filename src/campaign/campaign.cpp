#include "campaign/campaign.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "campaign/report.h"
#include "cca/registry.h"
#include "faultinject/fault_plan.h"
#include "fuzz/state_io.h"
#include "trace/hash.h"
#include "util/csv.h"
#include "util/fs.h"
#include "util/logging.h"

namespace ccfuzz::campaign {
namespace {

std::uint64_t fnv_str(std::uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= trace::kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_double(std::uint64_t h, double v) {
  return trace::fnv1a_u64(h, std::bit_cast<std::uint64_t>(v));
}

/// True when any flow carries an opaque factory — such scenarios have no
/// stable identity, so their cells must not share cached evaluations.
bool has_custom_flow_factory(const scenario::ScenarioConfig& s) {
  for (const auto& f : s.flows) {
    if (f.factory) return true;
  }
  return false;
}

}  // namespace

std::uint64_t scenario_key(const scenario::ScenarioConfig& s) {
  std::uint64_t h = trace::kFnvOffset;
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.mode));
  // The flow set is part of the evaluation identity: presets with the same
  // transport knobs but different topologies must not share cache entries.
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.flows.size()));
  for (const auto& f : s.flows) {
    h = fnv_str(h, f.cca);
    h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(f.start.ns()));
    h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(f.stop.ns()));
    h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(f.access_delay.ns()));
    h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(f.ack_path_delay.ns()));
    h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(f.total_segments));
  }
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.duration.ns()));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.flow_start.ns()));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.total_segments));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.min_rto.ns()));
  h = trace::fnv1a_u64(h, s.delayed_ack ? 1 : 0);
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.ack_every));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.delack_timeout.ns()));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.initial_cwnd));
  h = trace::fnv1a_u64(h,
                       static_cast<std::uint64_t>(s.receive_window_segments));
  // Scores read the streaming windowed bins, so the bin width is part of a
  // cell's evaluation identity. record_mode deliberately is not: modes are
  // score-identical by construction.
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.metrics_window.ns()));
  // The probe is passive, but cached Evaluations carry (or lack) a coverage
  // signature — a coverage cell must never be served a probe-less entry.
  h = trace::fnv1a_u64(h, s.coverage ? 1 : 0);
  const auto& n = s.net;
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(n.bottleneck_rate.bits_per_second()));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(n.bottleneck_delay.ns()));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(n.ack_path_delay.ns()));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(n.access_delay.ns()));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(n.queue_capacity));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(n.packet_bytes));
  // Run guards change where a run stops, so cells with different budgets
  // must not share cached evaluations.
  h = trace::fnv1a_u64(h, s.budget.max_events);
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.budget.max_sim_time.ns()));
  h = trace::fnv1a_u64(h, static_cast<std::uint64_t>(s.budget.max_wall_time.ns()));
  // Armed invariant audits add events, so armed runs can hit the event
  // budget earlier than disarmed ones — never share their cache entries.
  h = trace::fnv1a_u64(h, s.invariants ? 1 : 0);
  return h;
}

namespace {

/// Cache-sharing identity of a cell's evaluation semantics. Cells agree iff
/// the same trace is guaranteed the same Evaluation: same registry CCA,
/// same scenario, the same scoring configuration
/// (ScoreFunction::identity() — stable across processes, which is what lets
/// checkpointed cache entries be reused after resume) and the same weights.
/// Cells with an opaque custom factory never share.
std::uint64_t eval_key(const CellConfig& cell, std::size_t cell_index) {
  std::uint64_t h = trace::kFnvOffset;
  if (cell.factory || has_custom_flow_factory(cell.scenario)) {
    h = trace::fnv1a_u64(h, 0x1 + cell_index);
  } else {
    h = fnv_str(h, cell.cca);
  }
  h = trace::fnv1a_u64(h, scenario_key(cell.scenario));
  h = trace::fnv1a_u64(h, cell.score->identity());
  h = fnv_double(h, cell.trace_weights.per_packet);
  h = fnv_double(h, cell.trace_weights.per_drop);
  return h;
}

std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b) {
  return trace::fnv1a_u64(trace::fnv1a_u64(trace::kFnvOffset, a), b);
}

/// Fuzzer's own guards are debug-only asserts; a campaign is user-facing
/// API, so reject configs that would corrupt the GA before anything runs.
void validate_cell(const CellConfig& cell) {
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument("campaign cell '" + cell.name + "': " + what);
  };
  if (cell.ga.population < 2) fail("ga.population must be >= 2");
  if (cell.ga.islands < 1) fail("ga.islands must be >= 1");
  if (cell.ga.islands > cell.ga.population) {
    fail("ga.islands must not exceed ga.population");
  }
  if (cell.scenario.duration <= TimeNs::zero()) {
    fail("scenario.duration must be positive");
  }
  for (const auto& flow : cell.scenario.flows) {
    if (!flow.factory && !flow.cca.empty() && !cca::is_known_cca(flow.cca)) {
      cca::make_factory(flow.cca);  // throws, listing the known names
    }
    if (flow.start < TimeNs::zero() || flow.start >= cell.scenario.duration) {
      fail("flow start must lie inside [0, scenario.duration)");
    }
    if (flow.stop <= flow.start) {
      fail("flow stop must be after its start");
    }
  }
}

}  // namespace

// --- Graceful shutdown -------------------------------------------------------

namespace {

std::atomic<bool> g_stop{false};

extern "C" void ccfuzz_stop_signal_handler(int) {
  // Only async-signal-safe work here: raise the flag; the driver loop does
  // the rest (finish batch, checkpoint, flush) on its own thread.
  g_stop.store(true, std::memory_order_relaxed);
}

}  // namespace

bool stop_requested() { return g_stop.load(std::memory_order_relaxed); }

void request_stop() { g_stop.store(true, std::memory_order_relaxed); }

void reset_stop_flag() { g_stop.store(false, std::memory_order_relaxed); }

void install_stop_signal_handlers() {
  std::signal(SIGINT, ccfuzz_stop_signal_handler);
  std::signal(SIGTERM, ccfuzz_stop_signal_handler);
}

// --- CampaignConfig ---------------------------------------------------------

std::vector<CellConfig> CampaignConfig::cells() const {
  std::vector<CellConfig> out;

  // The scenario axis: explicit variants, then presets expanded over the
  // base scenario (apply_preset throws on unknown names before anything
  // runs). With neither, the base scenario alone.
  std::vector<NamedScenario> scenarios = scenarios_;
  for (const NamedPreset& p : presets_) {
    scenarios.push_back(
        {p.name, scenario::apply_preset(p.name, base_scenario_, p.options)});
  }
  if (scenarios.empty()) scenarios.push_back({"", base_scenario_});
  std::vector<NamedScore> scores = scores_;
  if (scores.empty()) {
    scores.push_back({"", std::make_shared<fuzz::LowUtilizationScore>(), {}});
  }

  for (const auto& cca : ccas_) {
    if (!cca::is_known_cca(cca)) {
      cca::make_factory(cca);  // throws, listing the known names
    }
    for (const auto mode : modes_) {
      for (const auto& sc : scenarios) {
        for (const auto& score : scores) {
          CellConfig cell;
          cell.cca = cca;
          cell.scenario = sc.config;
          cell.scenario.mode = mode;
          cell.score = score.score;
          cell.trace_weights = score.weights;
          cell.ga = ga_;
          cell.link_model = link_model_;
          cell.traffic_model = traffic_model_;
          cell.winners = winners_;
          cell.name = cca;
          cell.name += '.';
          cell.name += scenario::to_string(mode);
          if (!sc.name.empty()) {
            cell.name += '.';
            cell.name += sc.name;
          }
          cell.name += '.';
          cell.name += score.name.empty() ? score.score->name() : score.name;
          out.push_back(std::move(cell));
        }
      }
    }
  }

  // One shared default score across explicit cells (equal instances would
  // share the cache anyway — identity() folds the configuration — but one
  // instance is simply cheaper).
  std::shared_ptr<const fuzz::ScoreFunction> default_score;
  for (CellConfig cell : explicit_cells_) {
    if (!cell.factory && !cca::is_known_cca(cell.cca)) {
      cca::make_factory(cell.cca);  // throws, listing the known names
    }
    if (!cell.score) {
      if (!default_score) {
        default_score = std::make_shared<fuzz::LowUtilizationScore>();
      }
      cell.score = default_score;
    }
    if (cell.name.empty()) {
      cell.name = cell.cca;
      cell.name += '.';
      cell.name += scenario::to_string(cell.scenario.mode);
      cell.name += '.';
      cell.name += cell.score->name();
    }
    out.push_back(std::move(cell));
  }

  if (out.empty()) {
    throw std::invalid_argument(
        "campaign has no cells: set ccas() or add_cell()");
  }

  // Uniquify names deterministically ("x", "x.2", "x.3", ...). Collisions
  // are detected on the *sanitized* form, since that is what keys the
  // report's per-cell directories — two names that only differ in
  // filesystem-unsafe characters must not share a directory.
  std::unordered_set<std::string> used;
  for (auto& cell : out) {
    std::string candidate = cell.name;
    for (int k = 2; !used.insert(sanitize_cell_name(candidate)).second; ++k) {
      candidate = cell.name + '.' + std::to_string(k);
    }
    cell.name = std::move(candidate);
  }

  // Coverage-guided search needs the probe; arm it rather than making every
  // caller remember the pairing (the Fuzzer throws on the mismatch). With a
  // resume_dir, coverage cells default their archive path to where
  // write_report saved it last campaign.
  for (auto& cell : out) {
    if (cell.ga.search == fuzz::SearchMode::kMapElites ||
        cell.ga.novelty_bonus != 0.0) {
      cell.scenario.coverage = true;
    }
    if (!resume_dir_.empty() && cell.scenario.coverage &&
        cell.resume_archive.empty()) {
      cell.resume_archive =
          resume_dir_ + '/' + sanitize_cell_name(cell.name) + "/archive.txt";
    }
  }

  for (const auto& cell : out) validate_cell(cell);
  return out;
}

// --- Cell wiring ------------------------------------------------------------

fuzz::TraceEvaluator make_evaluator(const CellConfig& cell) {
  tcp::CcaFactory factory =
      cell.factory ? cell.factory : cca::make_factory(cell.cca);
  std::shared_ptr<const fuzz::ScoreFunction> score =
      cell.score ? cell.score : std::make_shared<fuzz::LowUtilizationScore>();
  return fuzz::TraceEvaluator(cell.scenario, std::move(factory),
                              std::move(score), cell.trace_weights);
}

std::shared_ptr<const fuzz::TraceModel> make_trace_model(
    const CellConfig& cell) {
  if (cell.scenario.mode == scenario::FuzzMode::kLink) {
    trace::LinkTraceModel m = cell.link_model;
    m.duration = cell.scenario.duration;
    if (m.total_packets <= 0) {
      // Packet budget pinning the scenario's average bandwidth (§3.2).
      // Computed in double: the int64 product rate × duration_ns overflows
      // for Gbps-scale rates over minutes-scale runs.
      const auto& net = cell.scenario.net;
      m.total_packets = static_cast<std::int64_t>(
          static_cast<double>(net.bottleneck_rate.bits_per_second()) /
          (static_cast<double>(net.packet_bytes) * 8.0) *
          cell.scenario.duration.to_seconds());
    }
    return std::make_shared<fuzz::LinkModel>(m);
  }
  trace::TrafficTraceModel m = cell.traffic_model;
  m.duration = cell.scenario.duration;
  return std::make_shared<fuzz::TrafficModel>(m);
}

// --- ConsoleObserver --------------------------------------------------------

std::FILE* ConsoleObserver::stream() const { return out_ ? out_ : stdout; }

void ConsoleObserver::on_campaign_begin(const std::vector<CellConfig>& cells) {
  std::fprintf(stream(), "campaign: %zu cell%s\n", cells.size(),
               cells.size() == 1 ? "" : "s");
  for (const auto& c : cells) {
    std::fprintf(stream(),
                 "  %-40s pop=%d islands=%d generations=%d duration=%.0fs\n",
                 c.name.c_str(), c.ga.population, c.ga.islands,
                 c.ga.max_generations, c.scenario.duration.to_seconds());
  }
}

void ConsoleObserver::on_generation(const CellConfig& cell,
                                    const fuzz::GenStats& gs) {
  std::fprintf(stream(),
               "[%s] gen %2d  best=%9.3f  mean=%9.3f  top20 goodput=%5.2f "
               "Mbps  stalled=%d",
               cell.name.c_str(), gs.generation, gs.best_score, gs.mean_score,
               gs.topk_mean_goodput_mbps, gs.stalled_count);
  if (cell.scenario.coverage) {
    std::fprintf(stream(), "  cells=%lld (+%lld)  bits=%lld",
                 static_cast<long long>(gs.archive_cells),
                 static_cast<long long>(gs.archive_new_cells),
                 static_cast<long long>(gs.coverage_bits));
  }
  std::fprintf(stream(), "\n");
}

void ConsoleObserver::on_cell_end(const CellResult& result) {
  std::fprintf(stream(),
               "[%s] done: best=%.3f  %zu winner%s  %lld sims, %lld cache "
               "hits\n",
               result.cell.name.c_str(), result.best_score(),
               result.winners.size(), result.winners.size() == 1 ? "" : "s",
               static_cast<long long>(result.simulations),
               static_cast<long long>(result.cache_hits));
}

// --- JsonlObserver ----------------------------------------------------------

JsonlObserver::JsonlObserver(const std::string& path, bool sync, bool append)
    : sync_(sync) {
  if (append) {
    // Resume audit: a crash mid-write leaves a torn final line; repair the
    // file before appending so the feed stays valid JSONL end to end.
    if (Result<std::uint64_t> dropped = truncate_torn_tail(path);
        dropped && *dropped > 0) {
      CCFUZZ_LOG_WARN("progress log %s: dropped a torn final line (%llu "
                      "bytes) before resuming",
                      path.c_str(),
                      static_cast<unsigned long long>(*dropped));
    }
  }
  fp_ = std::fopen(path.c_str(), append ? "a" : "w");
  if (fp_ == nullptr) {
    throw std::runtime_error("JsonlObserver: cannot open " + path);
  }
  // Unbuffered: each emit_line's single fwrite reaches the fd as one write,
  // so a buffer-boundary flush can never split a line (a buffered stream
  // flushing mid-fwrite would leave a torn line after SIGKILL).
  std::setvbuf(fp_, nullptr, _IONBF, 0);
}

JsonlObserver::JsonlObserver(std::ostream& out) : out_(&out) {}

JsonlObserver::~JsonlObserver() {
  if (fp_ != nullptr) std::fclose(fp_);
}

void JsonlObserver::emit_line(const std::string& json) {
  // One write per event line (newline included, stream unbuffered): a crash
  // (or a tail -f reader) between events sees only whole lines, never a
  // torn one.
  if (fp_ != nullptr) {
    const std::string line = json + '\n';
    std::fwrite(line.data(), 1, line.size(), fp_);
    return;
  }
  *out_ << json << '\n';
  out_->flush();  // dashboards tail the file mid-campaign
}

void JsonlObserver::sync_boundary() {
  if (fp_ != nullptr && sync_) ::fsync(::fileno(fp_));
}

std::string JsonlObserver::shard_field() const {
  return shard_ >= 0 ? ",\"shard\":" + std::to_string(shard_) : std::string();
}

void JsonlObserver::on_campaign_begin(const std::vector<CellConfig>& cells) {
  std::ostringstream os;
  os << "{\"event\":\"campaign_begin\"" << shard_field() << ",\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellConfig& c = cells[i];
    os << (i ? "," : "") << "{\"name\":\"" << json_escape(c.name)
       << "\",\"cca\":\"" << json_escape(c.cca) << "\",\"mode\":\""
       << scenario::to_string(c.scenario.mode)
       << "\",\"flows\":" << c.scenario.flow_count()
       << ",\"population\":" << c.ga.population
       << ",\"max_generations\":" << c.ga.max_generations << "}";
  }
  os << "]}";
  emit_line(os.str());
}

void JsonlObserver::on_generation(const CellConfig& cell,
                                  const fuzz::GenStats& gs) {
  std::ostringstream os;
  os << "{\"event\":\"generation\"" << shard_field() << ",\"cell\":\""
     << json_escape(cell.name)
     << "\",\"generation\":" << gs.generation
     << ",\"best_score\":" << format_double(gs.best_score)
     << ",\"mean_score\":" << format_double(gs.mean_score)
     << ",\"topk_goodput_mbps\":" << format_double(gs.topk_mean_goodput_mbps)
     << ",\"topk_jain_fairness\":"
     << format_double(gs.topk_mean_jain_fairness)
     << ",\"topk_flow_goodputs_mbps\":[";
  for (std::size_t f = 0; f < gs.topk_mean_flow_goodput_mbps.size(); ++f) {
    os << (f ? "," : "")
       << format_double(gs.topk_mean_flow_goodput_mbps[f]);
  }
  os << "],\"stalled\":" << gs.stalled_count
     << ",\"evaluations\":" << gs.evaluations
     << ",\"archive_cells\":" << gs.archive_cells
     << ",\"archive_new_cells\":" << gs.archive_new_cells
     << ",\"coverage_bits\":" << gs.coverage_bits << "}";
  emit_line(os.str());
  sync_boundary();
}

void JsonlObserver::on_cell_end(const CellResult& result) {
  std::ostringstream os;
  os << "{\"event\":\"cell_end\"" << shard_field() << ",\"cell\":\""
     << json_escape(result.cell.name)
     << "\",\"best_score\":" << format_double(result.best_score())
     << ",\"winners\":" << result.winners.size()
     << ",\"simulations\":" << result.simulations
     << ",\"cache_hits\":" << result.cache_hits;
  if (result.archive) {
    os << ",\"archive_cells\":" << result.archive->filled()
       << ",\"coverage_bits\":" << result.archive->union_bits();
  }
  if (!result.winners.empty() &&
      result.winners.front().eval.flow_goodput_mbps.size() > 1) {
    os << ",\"best_flow_goodputs_mbps\":[";
    const auto& g = result.winners.front().eval.flow_goodput_mbps;
    for (std::size_t i = 0; i < g.size(); ++i) {
      os << (i ? "," : "") << format_double(g[i]);
    }
    os << "]";
  }
  os << "}";
  emit_line(os.str());
  sync_boundary();
}

void JsonlObserver::on_campaign_end(const CampaignReport& report) {
  std::ostringstream os;
  os << "{\"event\":\"campaign_end\"" << shard_field()
     << ",\"cells\":" << report.cells.size()
     << ",\"interrupted\":" << (report.interrupted ? "true" : "false")
     << ",\"quarantined\":" << report.quarantined << "}";
  emit_line(os.str());
  sync_boundary();
}

// --- Campaign ---------------------------------------------------------------

struct Campaign::CellState {
  CellConfig cfg;
  std::uint64_t key;
  fuzz::TraceEvaluator evaluator;
  fuzz::Fuzzer fuzzer;
  CellResult result;
  double best_so_far = -1e300;
  int since_improvement = 0;
  /// Generations finished; the freshly-bred final population is being
  /// evaluated so winners reflect it (mirrors the tail of Fuzzer::run()).
  bool final_pass = false;
  bool done = false;

  CellState(CellConfig c, std::uint64_t k,
            const std::shared_ptr<fuzz::Quarantine>& quarantine)
      : cfg(std::move(c)),
        key(k),
        evaluator(make_quarantined_evaluator(cfg, quarantine)),
        fuzzer(cfg.ga, make_trace_model(cfg), evaluator) {
    result.cell = cfg;
    // Mirror Fuzzer::run() for a zero-generation budget: no generations,
    // but the initial population is still evaluated for winners.
    if (cfg.ga.max_generations <= 0) final_pass = true;
    // Resume: continue filling the archive a previous campaign saved. A
    // missing file is a cold start by design (first run of a config that
    // always names its resume path); an unreadable or corrupt archive is a
    // crash artifact, so it degrades to a cold start with a warning instead
    // of killing the campaign.
    if (!cfg.resume_archive.empty() && cfg.scenario.coverage &&
        std::filesystem::exists(cfg.resume_archive)) {
      Result<fuzz::EliteArchive> a =
          fuzz::EliteArchive::try_load_file(cfg.resume_archive);
      if (a) {
        fuzzer.seed_archive(std::move(*a));
      } else {
        CCFUZZ_LOG_WARN(
            "cell '%s': resume archive %s unusable (%s: %s); starting with "
            "a fresh archive",
            cfg.name.c_str(), cfg.resume_archive.c_str(),
            to_string(a.error().code), a.error().message.c_str());
      }
    }
  }

 private:
  static fuzz::TraceEvaluator make_quarantined_evaluator(
      const CellConfig& cell, std::shared_ptr<fuzz::Quarantine> q) {
    fuzz::TraceEvaluator e = make_evaluator(cell);
    // Attach before the Fuzzer copies the evaluator, so both copies share
    // the recorder.
    e.set_quarantine(std::move(q));
    return e;
  }
};

Campaign::~Campaign() = default;

Campaign::Campaign(const CampaignConfig& cfg)
    : cell_cfgs_(cfg.cells()),
      output_dir_(cfg.output_dir()),
      checkpoint_every_(cfg.checkpoint_every()),
      parallel_(cfg.parallel()) {
  if (!output_dir_.empty()) {
    quarantine_ = std::make_shared<fuzz::Quarantine>(
        output_dir_ + "/quarantine", cfg.quarantine_capacity());
  }
  build_cells();
  // Full mid-campaign resume: restore populations, RNG streams, counters,
  // archives, and the evaluation cache from the last checkpoint. Anything
  // wrong with the file — truncated by a crash, version skew, config drift —
  // degrades to the fresh cells built above, with a warning.
  if (!cfg.resume_dir().empty()) {
    const std::string head = cfg.resume_dir() + "/checkpoint/campaign.ckpt";
    // Degradation chain: the head snapshot, then its .prev rotation
    // sibling, then a fresh start — each step loses at most one checkpoint
    // generation, and nothing short of both files corrupting loses state.
    for (const std::string& ckpt : {head, head + ".prev"}) {
      if (!std::filesystem::exists(ckpt)) continue;
      Error e = restore_checkpoint(ckpt);
      if (!e) {
        resumed_ = true;
        break;
      }
      // A failed restore may have half-mutated cell state; rebuild before
      // the next candidate (or the fresh start) so nothing leaks through.
      cache_.clear();
      cells_.clear();
      build_cells();
      CCFUZZ_LOG_WARN("checkpoint %s unusable (%s: %s); %s", ckpt.c_str(),
                      to_string(e.code), e.message.c_str(),
                      ckpt == head
                          ? "falling back to the previous snapshot"
                          : "starting the campaign fresh");
    }
  }
}

void Campaign::build_cells() {
  cells_.reserve(cell_cfgs_.size());
  for (std::size_t i = 0; i < cell_cfgs_.size(); ++i) {
    cells_.push_back(std::make_unique<CellState>(
        cell_cfgs_[i], eval_key(cell_cfgs_[i], i), quarantine_));
  }
}

void Campaign::compute_winners(CellState& cell) {
  // Rank the final population together with the best member *ever*
  // observed: without elitism the best trace can be bred away before the
  // last generation, and losing it from the report would be silent. best()
  // predates the final-pass evaluation, so it must be re-ranked against the
  // final population, not assumed to lead it.
  cell.result.winners.clear();
  auto top = cell.fuzzer.top_members(std::numeric_limits<std::size_t>::max());
  if (cell.fuzzer.best().evaluated) {
    top.push_back(cell.fuzzer.best());
    std::stable_sort(top.begin(), top.end(),
                     [](const fuzz::Member& a, const fuzz::Member& b) {
                       return a.eval.score.total() > b.eval.score.total();
                     });
  }
  std::unordered_set<std::uint64_t> seen;
  for (const auto& m : top) {
    if (cell.result.winners.size() >= cell.cfg.winners) break;
    const std::uint64_t h = trace::hash(m.genome);
    if (!seen.insert(h).second) continue;
    cell.result.winners.push_back({m.genome, m.eval, h});
  }
  cell.result.archive = cell.fuzzer.archive();
}

void Campaign::finish_cell(CellState& cell) {
  compute_winners(cell);
  cell.done = true;
  for (auto* o : observers_) o->on_cell_end(cell.result);
}

const CampaignReport& Campaign::run() {
  if (ran_) return report_;
  ran_ = true;
  for (auto* o : observers_) o->on_campaign_begin(cell_cfgs_);

  struct Job {
    CellState* cell;
    fuzz::Member* member;
    std::uint64_t key;
  };

  // Batch scratch lives across generations so the driver loop reuses its
  // capacity; the evaluation side is allocation-free per se once warm (each
  // cell's evaluator runs on its own per-worker context, so interleaved
  // cells never reshape shared buffers — see TraceEvaluator::evaluate).
  std::vector<Job> jobs;
  std::vector<Job> copies;
  std::vector<fuzz::BatchItem> items;
  std::unordered_set<std::uint64_t> batch_keys;
  std::uint64_t iteration = 0;

  while (true) {
    // Graceful shutdown: the previous generation finished cleanly, so this
    // is a consistent point to persist and leave. The checkpoint makes the
    // interruption resumable; the report below records partial results.
    if (stop_requested()) {
      report_.interrupted = true;
      write_checkpoint();
      break;
    }
    // Gather every active cell's pending members into one flat batch.
    // Repeats — a genome already in the cache, or the same genome reaching
    // two equivalent cells in this batch — are filled by copy, not
    // re-simulated.
    jobs.clear();
    copies.clear();
    batch_keys.clear();
    bool any_active = false;
    for (auto& cp : cells_) {
      CellState& cell = *cp;
      if (cell.done) continue;
      any_active = true;
      const auto pending = cell.fuzzer.pending_members();
      for (fuzz::Member* m : pending) {
        const std::uint64_t key = mix_keys(cell.key, trace::hash(m->genome));
        if (const auto hit = cache_.find(key); hit != cache_.end()) {
          m->eval = hit->second;
          m->evaluated = true;
          ++cell.result.cache_hits;
        } else if (!batch_keys.insert(key).second) {
          copies.push_back({&cell, m, key});
          ++cell.result.cache_hits;
        } else {
          jobs.push_back({&cell, m, key});
        }
      }
      cell.fuzzer.note_external_evaluations(
          static_cast<std::int64_t>(pending.size()));
    }
    if (!any_active) break;

    items.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      items[i] = {&jobs[i].cell->evaluator, &jobs[i].member->genome,
                  &jobs[i].member->eval};
    }
    fuzz::evaluate_batch(items, parallel_);
    for (const Job& j : jobs) {
      j.member->evaluated = true;
      // Wall-clock truncation is the one nondeterministic outcome a run can
      // have: the same genome may finish fine on a resumed (or merely
      // luckier) run. Keeping it out of the cache keeps the cache a pure
      // function of the genome and cell.
      if (!(j.member->eval.truncated &&
            j.member->eval.truncation == sim::TruncationReason::kWallDeadline)) {
        cache_.emplace(j.key, j.member->eval);
      }
      ++j.cell->result.simulations;
    }
    for (const Job& c : copies) {
      if (const auto hit = cache_.find(c.key); hit != cache_.end()) {
        c.member->eval = hit->second;
      } else {
        // The job this copy deferred to was wall-truncated and excluded from
        // the cache — simulate it after all.
        c.cell->evaluator.evaluate_into(c.member->genome, c.member->eval);
        ++c.cell->result.simulations;
        --c.cell->result.cache_hits;
      }
      c.member->evaluated = true;
    }

    // Advance each active cell one generation (or finish it).
    for (auto& cp : cells_) {
      CellState& cell = *cp;
      if (cell.done) continue;
      if (cell.final_pass) {
        finish_cell(cell);
        continue;
      }
      const fuzz::GenStats gs = cell.fuzzer.advance_generation();
      cell.result.history.push_back(gs);
      for (auto* o : observers_) o->on_generation(cell.cfg, gs);
      // Termination mirrors Fuzzer::run(): generation budget or patience.
      bool stop = cell.fuzzer.generation() >= cell.cfg.ga.max_generations;
      if (gs.best_score > cell.best_so_far + 1e-12) {
        cell.best_so_far = gs.best_score;
        cell.since_improvement = 0;
      } else if (cell.cfg.ga.patience > 0 &&
                 ++cell.since_improvement >= cell.cfg.ga.patience) {
        stop = true;
      }
      if (stop) cell.final_pass = true;
    }

    ++iteration;
    if (checkpoint_every_ > 0 && iteration % checkpoint_every_ == 0) {
      write_checkpoint();
    }
  }

  // Final checkpoint: a finished campaign resumes as a no-op rewrite of the
  // same report. (An interrupted run already checkpointed before breaking.)
  if (!report_.interrupted) write_checkpoint();

  report_.cells.reserve(cells_.size());
  for (auto& cp : cells_) report_.cells.push_back(std::move(cp->result));
  // Count what is on disk, not what this process recorded: a resumed
  // campaign reports the quarantine accumulated across every attempt.
  report_.quarantined = quarantine_ ? quarantine_->stored() : 0;
  if (!output_dir_.empty()) write_report(report_, output_dir_);
  for (auto* o : observers_) o->on_campaign_end(report_);
  return report_;
}

void Campaign::write_checkpoint() const {
  if (checkpoint_every_ <= 0 || output_dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(output_dir_ + "/checkpoint", ec);
  if (ec) {
    CCFUZZ_LOG_WARN("checkpoint: cannot create %s/checkpoint: %s",
                    output_dir_.c_str(), ec.message().c_str());
    return;
  }
  std::ostringstream os;
  os << "# ccfuzz-checkpoint v1\n";
  os << "# cells " << cells_.size() << "\n";
  os << std::setprecision(17);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellState& cell = *cells_[i];
    os << "# cell " << i << "\n";
    os << "# name " << cell.cfg.name << "\n";
    os << "# best_so_far " << cell.best_so_far << "\n";
    os << "# since_improvement " << cell.since_improvement << "\n";
    os << "# final_pass " << (cell.final_pass ? 1 : 0) << "\n";
    os << "# done " << (cell.done ? 1 : 0) << "\n";
    os << "# simulations " << cell.result.simulations << "\n";
    os << "# cache_hits " << cell.result.cache_hits << "\n";
    cell.fuzzer.save_state(os);
    os << "# end cell\n";
  }
  // Entry order follows the hash map and is not meaningful; the restored
  // cache is order-independent.
  os << "# cache " << cache_.size() << "\n";
  for (const auto& [key, eval] : cache_) {
    os << "# cachekey " << std::hex << key << std::dec << "\n";
    fuzz::state_io::write_eval(os, eval);
  }
  os << "# end checkpoint\n";
  const std::string path = output_dir_ + "/checkpoint/campaign.ckpt";
  // Rotating write: the previous snapshot survives as campaign.ckpt.prev,
  // so a corrupted head (bad sector, fsync lie) degrades to the previous
  // generation instead of a fresh start. A failed write (ENOSPC et al) is a
  // warning, not an abort: the campaign keeps running on the old snapshot.
  if (Error e = write_file_rotating(path, os.str())) {
    CCFUZZ_LOG_WARN("checkpoint: write failed (%s): %s", to_string(e.code),
                    e.message.c_str());
  } else if (faultinject::should_fire(
                 faultinject::FaultSite::kCrashCheckpoint)) {
    // The checkpoint is complete and durable; dying here is exactly the
    // power-cut-at-the-boundary case the resume machinery must absorb.
    faultinject::crash_now(faultinject::FaultSite::kCrashCheckpoint);
  }
}

Error validate_checkpoint_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Error::io("cannot open checkpoint: " + path);
  std::string line;
  if (!std::getline(is, line)) return Error::truncated("checkpoint: empty file");
  if (line.rfind("# ccfuzz-checkpoint", 0) != 0) {
    return Error::parse("checkpoint: bad magic: " + line);
  }
  if (line != "# ccfuzz-checkpoint v1") {
    return Error::version("checkpoint: unsupported version: " + line);
  }
  std::string last;
  while (std::getline(is, line)) {
    if (!line.empty()) last = line;
  }
  if (last != "# end checkpoint") {
    return Error::truncated("checkpoint: missing terminator (torn write?)");
  }
  return Error::success();
}

Error Campaign::restore_checkpoint(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Error::io("cannot open checkpoint: " + path);
  std::string line;
  const auto next = [&](std::string& out) {
    while (std::getline(is, out)) {
      if (!out.empty()) return true;
    }
    return false;
  };
  // Parses "# <tag> <value>" into `out`; value-less tags pass a dummy.
  const auto expect = [&](const char* tag, auto& out) -> Error {
    if (!next(line)) {
      return Error::truncated(std::string("checkpoint: missing '") + tag +
                              "' line");
    }
    std::istringstream ls(line);
    std::string hash, key;
    ls >> hash >> key;
    if (hash != "#" || key != tag || !(ls >> out)) {
      return Error::parse(std::string("checkpoint: expected '# ") + tag +
                          " <value>', got: " + line);
    }
    return Error::success();
  };

  if (!next(line)) return Error::truncated("checkpoint: empty file");
  if (line.rfind("# ccfuzz-checkpoint", 0) != 0) {
    return Error::parse("checkpoint: bad magic: " + line);
  }
  if (line != "# ccfuzz-checkpoint v1") {
    return Error::version("checkpoint: unsupported version: " + line);
  }
  std::size_t n_cells = 0;
  if (Error e = expect("cells", n_cells)) return e;
  if (n_cells != cells_.size()) {
    return Error::mismatch("checkpoint: holds " + std::to_string(n_cells) +
                           " cells, campaign configures " +
                           std::to_string(cells_.size()));
  }
  for (std::size_t i = 0; i < n_cells; ++i) {
    CellState& cell = *cells_[i];
    std::size_t idx = 0;
    if (Error e = expect("cell", idx)) return e;
    if (idx != i) return Error::corrupt("checkpoint: cell index out of order");
    if (!next(line)) return Error::truncated("checkpoint: missing cell name");
    if (line.rfind("# name ", 0) != 0) {
      return Error::parse("checkpoint: expected '# name', got: " + line);
    }
    // Config drift between the checkpointing and resuming processes would
    // silently graft one cell's population onto another's scenario.
    if (line.substr(7) != cell.cfg.name) {
      return Error::mismatch("checkpoint: cell " + std::to_string(i) +
                             " is '" + line.substr(7) + "', campaign expects '" +
                             cell.cfg.name + "'");
    }
    int final_pass = 0, done = 0;
    if (Error e = expect("best_so_far", cell.best_so_far)) return e;
    if (Error e = expect("since_improvement", cell.since_improvement)) return e;
    if (Error e = expect("final_pass", final_pass)) return e;
    if (Error e = expect("done", done)) return e;
    if (Error e = expect("simulations", cell.result.simulations)) return e;
    if (Error e = expect("cache_hits", cell.result.cache_hits)) return e;
    cell.final_pass = final_pass != 0;
    cell.done = done != 0;
    if (Error e = cell.fuzzer.restore_state(is)) return e;
    if (!next(line)) return Error::truncated("checkpoint: missing end cell");
    if (line != "# end cell") {
      return Error::parse("checkpoint: expected '# end cell', got: " + line);
    }
  }
  std::size_t n_cache = 0;
  if (Error e = expect("cache", n_cache)) return e;
  for (std::size_t i = 0; i < n_cache; ++i) {
    if (!next(line)) return Error::truncated("checkpoint: missing cache key");
    std::istringstream ls(line);
    std::string hash, key;
    std::uint64_t k = 0;
    ls >> hash >> key >> std::hex >> k;
    if (hash != "#" || key != "cachekey" || ls.fail()) {
      return Error::parse("checkpoint: bad cache key line: " + line);
    }
    fuzz::Evaluation eval;
    if (Error e = fuzz::state_io::read_eval(is, eval)) return e;
    cache_.emplace(k, std::move(eval));
  }
  if (!next(line) || line != "# end checkpoint") {
    return Error::truncated("checkpoint: missing terminator");
  }
  // Rebuild the derived report state the run loop normally accumulates.
  for (auto& cp : cells_) {
    CellState& cell = *cp;
    cell.result.history = cell.fuzzer.history();
    if (cell.done) compute_winners(cell);
  }
  return Error::success();
}

}  // namespace ccfuzz::campaign
