// The GA's genome: a network trace, i.e. a sorted sequence of packet
// timestamps over a fixed window [0, duration).
//
// In link mode a timestamp is one bottleneck service opportunity (MahiMahi
// semantics, §3.2); in traffic mode it is one cross-traffic packet arriving
// at the gateway (§3.3). Link traces have a fixed packet budget (pinning the
// average bandwidth); traffic traces have a variable count up to a maximum,
// which the trace score pushes down to find minimal adversarial vectors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/time.h"

namespace ccfuzz::trace {

/// Which half of the search space this trace occupies.
enum class TraceKind : std::uint8_t { kLink, kTraffic };

/// A sorted packet-timestamp sequence over [0, duration).
struct Trace {
  TraceKind kind = TraceKind::kLink;
  TimeNs duration = TimeNs::zero();
  std::vector<TimeNs> stamps;

  std::size_t size() const { return stamps.size(); }
  bool empty() const { return stamps.empty(); }

  /// True when stamps are sorted and inside [0, duration). Duplicates are
  /// allowed: simultaneous timestamps model back-to-back bursts.
  bool well_formed() const {
    if (!std::is_sorted(stamps.begin(), stamps.end())) return false;
    if (stamps.empty()) return true;
    return stamps.front() >= TimeNs::zero() && stamps.back() < duration;
  }

  /// Average rate implied by the stamps for `packet_bytes` frames, in bps.
  double average_rate_bps(std::int32_t packet_bytes) const {
    if (duration <= TimeNs::zero()) return 0.0;
    return static_cast<double>(stamps.size()) *
           static_cast<double>(packet_bytes) * 8.0 /
           duration.to_seconds();
  }

  /// Number of stamps inside [from, to).
  std::int64_t count_in(TimeNs from, TimeNs to) const {
    const auto lo = std::lower_bound(stamps.begin(), stamps.end(), from);
    const auto hi = std::lower_bound(stamps.begin(), stamps.end(), to);
    return hi - lo;
  }
};

}  // namespace ccfuzz::trace
