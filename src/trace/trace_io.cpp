#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ccfuzz::trace {

void write_trace(std::ostream& os, const Trace& t) {
  os << "# ccfuzz-trace v1\n";
  os << "# kind " << (t.kind == TraceKind::kLink ? "link" : "traffic") << "\n";
  os << "# duration_ns " << t.duration.ns() << "\n";
  for (const TimeNs s : t.stamps) {
    os << s.ns() << "\n";
  }
  if (!os) throw std::runtime_error("trace write failed");
}

void save_trace(const std::string& path, const Trace& t) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open trace file for write: " + path);
  write_trace(f, t);
}

namespace {

/// True when everything left in `s` is whitespace — guards against number
/// lines with trailing garbage ("123abc" must not parse as 123).
bool rest_is_blank(std::istringstream& s) {
  char c = 0;
  return !(s >> c);
}

}  // namespace

Result<Trace> try_read_trace(std::istream& is) {
  Trace t;
  std::string line;
  bool have_kind = false;
  bool have_duration = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string key;
      hs >> key;
      if (key == "ccfuzz-trace") {
        std::string v;
        hs >> v;
        if (v != "v1") {
          return Error::version("trace: unsupported format version '" + v +
                                "' (expected v1)");
        }
      } else if (key == "kind") {
        std::string v;
        hs >> v;
        if (v == "link") {
          t.kind = TraceKind::kLink;
        } else if (v == "traffic") {
          t.kind = TraceKind::kTraffic;
        } else {
          return Error::parse("trace: unknown kind '" + v + "'");
        }
        have_kind = true;
      } else if (key == "duration_ns") {
        std::int64_t ns = -1;
        hs >> ns;
        if (!hs || ns < 0 || !rest_is_blank(hs)) {
          return Error::parse("trace: bad duration line: " + line);
        }
        t.duration = TimeNs(ns);
        have_duration = true;
      }
      continue;
    }
    std::istringstream vs(line);
    std::int64_t ns = 0;
    vs >> ns;
    if (!vs || !rest_is_blank(vs)) {
      return Error::parse("trace: bad timestamp line: " + line);
    }
    t.stamps.emplace_back(ns);
  }
  if (!have_kind || !have_duration) {
    // The classic crash artifact: a file cut off before (or inside) the
    // header block.
    return Error::truncated("trace: missing kind/duration header");
  }
  if (!t.well_formed()) {
    return Error::corrupt("trace: stamps not sorted within [0, duration)");
  }
  return t;
}

Result<Trace> try_load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Error::io("cannot open trace file: " + path);
  return try_read_trace(f);
}

Trace read_trace(std::istream& is) {
  Result<Trace> r = try_read_trace(is);
  if (!r) throw std::runtime_error(r.error().message);
  return std::move(*r);
}

Trace load_trace(const std::string& path) {
  Result<Trace> r = try_load_trace(path);
  if (!r) throw std::runtime_error(r.error().message);
  return std::move(*r);
}

}  // namespace ccfuzz::trace
