#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ccfuzz::trace {

void write_trace(std::ostream& os, const Trace& t) {
  os << "# ccfuzz-trace v1\n";
  os << "# kind " << (t.kind == TraceKind::kLink ? "link" : "traffic") << "\n";
  os << "# duration_ns " << t.duration.ns() << "\n";
  for (const TimeNs s : t.stamps) {
    os << s.ns() << "\n";
  }
  if (!os) throw std::runtime_error("trace write failed");
}

void save_trace(const std::string& path, const Trace& t) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open trace file for write: " + path);
  write_trace(f, t);
}

Trace read_trace(std::istream& is) {
  Trace t;
  std::string line;
  bool have_kind = false;
  bool have_duration = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string key;
      hs >> key;
      if (key == "kind") {
        std::string v;
        hs >> v;
        if (v == "link") {
          t.kind = TraceKind::kLink;
        } else if (v == "traffic") {
          t.kind = TraceKind::kTraffic;
        } else {
          throw std::runtime_error("trace: unknown kind '" + v + "'");
        }
        have_kind = true;
      } else if (key == "duration_ns") {
        std::int64_t ns = -1;
        hs >> ns;
        if (!hs || ns < 0) throw std::runtime_error("trace: bad duration");
        t.duration = TimeNs(ns);
        have_duration = true;
      }
      continue;
    }
    std::istringstream vs(line);
    std::int64_t ns = 0;
    vs >> ns;
    if (!vs) throw std::runtime_error("trace: bad timestamp line: " + line);
    t.stamps.emplace_back(ns);
  }
  if (!have_kind || !have_duration) {
    throw std::runtime_error("trace: missing kind/duration header");
  }
  if (!t.well_formed()) {
    throw std::runtime_error("trace: stamps not sorted within [0, duration)");
  }
  return t;
}

Trace load_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(f);
}

}  // namespace ccfuzz::trace
