#include "trace/dist_packets.h"

namespace ccfuzz::trace {
namespace {

void dist_recurse(std::int64_t num, TimeNs start, TimeNs end, Rng& rng,
                  const DistPacketsConfig& cfg, std::vector<TimeNs>& out) {
  if (num == 0) return;
  const TimeNs mid((start.ns() + end.ns()) / 2);
  if (num == 1) {
    out.push_back(mid);
    return;
  }
  if (end.ns() - start.ns() <= 1) {
    // Degenerate interval: emit the remaining packets as one burst. The
    // paper's pseudocode never bottoms out explicitly; nanosecond
    // resolution makes this the natural terminal case.
    out.insert(out.end(), static_cast<std::size_t>(num), mid);
    return;
  }

  const double rate = static_cast<double>(num) /
                      static_cast<double>(end.ns() - start.ns());
  const bool constrained =
      cfg.rate_constraints && (end - start) >= cfg.k_agg;

  TimeNs tsplit = mid;
  std::int64_t num_left = num / 2;
  for (int attempt = 0; attempt < cfg.max_attempts; ++attempt) {
    const TimeNs t(rng.uniform_int(start.ns(), end.ns()));
    const std::int64_t nl = rng.uniform_int(0, num);
    if (!constrained) {
      tsplit = t;
      num_left = nl;
      break;
    }
    // Guard zero-width sides: an empty side with packets has infinite rate
    // and always violates the upper bound, so resample.
    const double lw = static_cast<double>(t.ns() - start.ns());
    const double rw = static_cast<double>(end.ns() - t.ns());
    const double lrate = lw > 0 ? static_cast<double>(nl) / lw
                                : (nl > 0 ? 1e300 : 0.0);
    const double rrate = rw > 0 ? static_cast<double>(num - nl) / rw
                                : (num - nl > 0 ? 1e300 : 0.0);
    if (lrate > cfg.rate_high * rate || rrate > cfg.rate_high * rate) continue;
    if (lrate < cfg.rate_low * rate || rrate < cfg.rate_low * rate) continue;
    tsplit = t;
    num_left = nl;
    break;
  }
  // Falls through with the even split when every attempt was rejected.

  dist_recurse(num_left, start, tsplit, rng, cfg, out);
  dist_recurse(num - num_left, tsplit, end, rng, cfg, out);
}

}  // namespace

std::vector<TimeNs> dist_packets(std::int64_t num, TimeNs start, TimeNs end,
                                 Rng& rng, const DistPacketsConfig& cfg) {
  std::vector<TimeNs> out;
  if (num <= 0 || end <= start) return out;
  out.reserve(static_cast<std::size_t>(num));
  dist_recurse(num, start, end, rng, cfg, out);
  return out;  // in-order recursion keeps stamps sorted
}

}  // namespace ccfuzz::trace
