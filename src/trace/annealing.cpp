#include "trace/annealing.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ccfuzz::trace {

Trace anneal(const Trace& t, const AnnealingConfig& cfg) {
  Trace out = t;
  const std::size_t n = t.stamps.size();
  if (n < 3 || cfg.sigma <= 0.0 || cfg.strength <= 0.0) return out;

  // Precompute the one-sided kernel.
  std::vector<double> w(cfg.radius + 1);
  for (std::size_t j = 0; j <= cfg.radius; ++j) {
    const double x = static_cast<double>(j) / cfg.sigma;
    w[j] = std::exp(-0.5 * x * x);
  }

  const double alpha = std::clamp(cfg.strength, 0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    double wsum = 0.0;
    const std::size_t lo = i >= cfg.radius ? i - cfg.radius : 0;
    const std::size_t hi = std::min(i + cfg.radius, n - 1);
    for (std::size_t k = lo; k <= hi; ++k) {
      const std::size_t d = k > i ? k - i : i - k;
      acc += w[d] * static_cast<double>(t.stamps[k].ns());
      wsum += w[d];
    }
    const double smoothed = acc / wsum;
    const double blended =
        (1.0 - alpha) * static_cast<double>(t.stamps[i].ns()) +
        alpha * smoothed;
    out.stamps[i] = TimeNs(static_cast<std::int64_t>(blended + 0.5));
  }

  // Index-space smoothing of a sorted sequence is order-preserving up to
  // rounding; enforce the invariant and the window exactly.
  std::sort(out.stamps.begin(), out.stamps.end());
  const TimeNs max_stamp(t.duration.ns() - 1);
  for (auto& s : out.stamps) {
    s = std::clamp(s, TimeNs::zero(), max_stamp);
  }
  return out;
}

}  // namespace ccfuzz::trace
