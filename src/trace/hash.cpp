#include "trace/hash.h"

#include <cstdio>

namespace ccfuzz::trace {

std::uint64_t hash(const Trace& t) {
  std::uint64_t h = kFnvOffset;
  h ^= static_cast<std::uint64_t>(t.kind);
  h *= kFnvPrime;
  h = fnv1a_u64(h, static_cast<std::uint64_t>(t.duration.ns()));
  for (const TimeNs& s : t.stamps) {
    h = fnv1a_u64(h, static_cast<std::uint64_t>(s.ns()));
  }
  return h;
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace ccfuzz::trace
