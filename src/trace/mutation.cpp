#include "trace/mutation.h"

#include <algorithm>

namespace ccfuzz::trace {
namespace {

/// Splits `t` at a uniform time, regenerates one side (coin toss) with
/// `count_for_side(old_count, side_width)` packets, and reassembles.
template <typename CountFn>
Trace split_and_redistribute(const Trace& t, Rng& rng,
                             const DistPacketsConfig& dist, CountFn count_for_side) {
  Trace out;
  out.kind = t.kind;
  out.duration = t.duration;
  if (t.duration <= TimeNs::zero()) return out;

  const TimeNs split(rng.uniform_int(0, t.duration.ns()));
  const auto split_it =
      std::lower_bound(t.stamps.begin(), t.stamps.end(), split);
  const std::int64_t left_count = split_it - t.stamps.begin();
  const std::int64_t right_count =
      static_cast<std::int64_t>(t.stamps.size()) - left_count;

  if (rng.coin()) {
    // Regenerate the left side, keep the right.
    const std::int64_t n = count_for_side(left_count, right_count);
    out.stamps = dist_packets(n, TimeNs::zero(), split, rng, dist);
    out.stamps.reserve(out.stamps.size() +
                       static_cast<std::size_t>(right_count));
    out.stamps.insert(out.stamps.end(), split_it, t.stamps.end());
  } else {
    // Keep the left side, regenerate the right.
    const std::int64_t n = count_for_side(right_count, left_count);
    out.stamps.reserve(static_cast<std::size_t>(left_count) +
                       static_cast<std::size_t>(std::max<std::int64_t>(n, 0)));
    out.stamps.assign(t.stamps.begin(), split_it);
    const auto right = dist_packets(n, split, t.duration, rng, dist);
    out.stamps.insert(out.stamps.end(), right.begin(), right.end());
  }
  return out;
}

}  // namespace

Trace LinkTraceModel::generate(Rng& rng) const {
  Trace t;
  t.kind = TraceKind::kLink;
  t.duration = duration;
  t.stamps = dist_packets(total_packets, TimeNs::zero(), duration, rng, dist);
  return t;
}

Trace LinkTraceModel::mutate(const Trace& t, Rng& rng) const {
  // Budget-preserving: the regenerated side keeps its packet count.
  return split_and_redistribute(
      t, rng, dist,
      [](std::int64_t side_count, std::int64_t) { return side_count; });
}

Trace TrafficTraceModel::generate(Rng& rng) const {
  Trace t;
  t.kind = TraceKind::kTraffic;
  t.duration = duration;
  const std::int64_t n = initial_packets > 0
                             ? std::min(initial_packets, max_packets)
                             : max_packets;
  t.stamps = dist_packets(n, TimeNs::zero(), duration, rng, dist);
  return t;
}

Trace TrafficTraceModel::mutate(const Trace& t, Rng& rng) const {
  // The regenerated side's count is resampled within the remaining budget
  // (§3.3: "the number of packets in that portion are changed randomly").
  const std::int64_t budget = max_packets;
  return split_and_redistribute(
      t, rng, dist,
      [budget, &rng](std::int64_t, std::int64_t other_side) {
        return rng.uniform_int(0, std::max<std::int64_t>(budget - other_side, 0));
      });
}

Trace TrafficTraceModel::crossover(const Trace& a, const Trace& b,
                                   Rng& rng) const {
  // Coin-toss which parent contributes the left half.
  const Trace& left = rng.coin() ? a : b;
  const Trace& right = (&left == &a) ? b : a;

  const std::int64_t max_split = static_cast<std::int64_t>(
      std::min(left.stamps.size(), right.stamps.size()));
  const std::int64_t k = rng.uniform_int(0, max_split);

  Trace out;
  out.kind = TraceKind::kTraffic;
  out.duration = a.duration;
  // Final size is k from `left` plus (right.size() - k) from `right`.
  out.stamps.reserve(right.stamps.size());
  out.stamps.assign(left.stamps.begin(), left.stamps.begin() + k);
  out.stamps.insert(out.stamps.end(), right.stamps.begin() + k,
                    right.stamps.end());
  // The splice point can interleave: left[k-1] may exceed right[k]. Restore
  // the sorted invariant (cheap: the sequence is piecewise sorted).
  std::inplace_merge(out.stamps.begin(), out.stamps.begin() + k,
                     out.stamps.end());
  // Respect the budget in case parents came from a larger model.
  if (static_cast<std::int64_t>(out.stamps.size()) > max_packets) {
    out.stamps.resize(static_cast<std::size_t>(max_packets));
  }
  return out;
}

}  // namespace ccfuzz::trace
