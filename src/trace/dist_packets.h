// DistPackets (paper Figure 2): recursive random packet-placement with
// bounded long-term rate variation.
//
// The algorithm splits [start, end) at a uniform point, assigns a uniform
// share of the packets to each side, and recurses — but resamples any split
// whose per-side average rate leaves [0.5×, 2×] of the parent rate. Below
// the aggregation threshold kAgg the bound checks are skipped, allowing
// arbitrary short-term burstiness (jitter / aggregation). Traffic fuzzing
// drops the rate constraints entirely (§3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace ccfuzz::trace {

/// Tuning knobs for DistPackets. Defaults are the paper's (§4, Fig 3).
struct DistPacketsConfig {
  /// Interval length below which rate-bound checks are relaxed.
  DurationNs k_agg = DurationNs::millis(50);
  /// Per-side average rate must stay within [low, high] × parent rate.
  double rate_low = 0.5;
  double rate_high = 2.0;
  /// false: no rate constraints at any scale (traffic fuzzing, Fig 5).
  bool rate_constraints = true;
  /// Rejection-sampling guard: after this many failed split attempts the
  /// packets are split evenly (the paper's pseudocode loops forever; an
  /// even split preserves its invariants and guarantees termination).
  int max_attempts = 64;
};

/// Distributes `num` packet timestamps over [start, end). Deterministic for
/// a given Rng state. Returned stamps are sorted; duplicates model bursts.
std::vector<TimeNs> dist_packets(std::int64_t num, TimeNs start, TimeNs end,
                                 Rng& rng,
                                 const DistPacketsConfig& cfg = {});

}  // namespace ccfuzz::trace
