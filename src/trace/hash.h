// Stable trace fingerprints.
//
// The campaign layer keys its evaluation cache and dedupes findings by
// trace content. FNV-1a over the kind, duration and event times is stable
// across runs and platforms (byte order is fixed explicitly), so hashes can
// be persisted in reports and compared between campaign runs.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace ccfuzz::trace {

/// 64-bit FNV-1a offset basis / prime (public-domain constants).
inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ULL;

/// Folds a 64-bit word into an FNV-1a state, least-significant byte first.
constexpr std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// Content hash of a trace: FNV-1a over (kind, duration, every stamp).
/// Two traces hash equal iff they would drive identical simulations, so the
/// campaign evaluation cache can return a cached Evaluation for a repeat
/// genome (64-bit collisions are negligible at campaign scales).
std::uint64_t hash(const Trace& t);

/// `h` as 16 lowercase hex digits — the finding id used in reports.
std::string hash_hex(std::uint64_t h);

}  // namespace ccfuzz::trace
