// Plain-text trace serialization, for saving adversarial traces found by
// the fuzzer and replaying them later (regression tests, figure scripts).
//
// Format: a `# ccfuzz-trace v1` magic line, '#'-prefixed header lines
// (kind, duration), then one integer nanosecond timestamp per line.
//
// Two API tiers: the try_* functions return Result<Trace> with a typed
// Error (kVersion for format skew, kParse/kCorrupt for mangled bytes) and
// never throw — campaign load paths use these so a truncated file after a
// crash degrades instead of aborting. The original throwing functions wrap
// them for callers that want exceptions (tests, one-shot tools).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"
#include "util/error.h"

namespace ccfuzz::trace {

/// Writes `t` to `os`. Throws std::runtime_error on stream failure.
void write_trace(std::ostream& os, const Trace& t);

/// Writes `t` to `path` (overwrites). Throws std::runtime_error on failure.
void save_trace(const std::string& path, const Trace& t);

/// Parses a trace from `is` without throwing. Error codes: kVersion for a
/// `# ccfuzz-trace` magic naming an unsupported version, kParse for
/// syntactically mangled lines, kTruncated for a missing header, kCorrupt
/// for stamps outside [0, duration) or out of order.
Result<Trace> try_read_trace(std::istream& is);

/// Loads a trace from `path` without throwing (kIo if unreadable).
Result<Trace> try_load_trace(const std::string& path);

/// Parses a trace from `is`. Throws std::runtime_error on malformed input.
Trace read_trace(std::istream& is);

/// Loads a trace from `path`. Throws std::runtime_error on failure.
Trace load_trace(const std::string& path);

}  // namespace ccfuzz::trace
