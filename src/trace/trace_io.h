// Plain-text trace serialization, for saving adversarial traces found by
// the fuzzer and replaying them later (regression tests, figure scripts).
//
// Format: '#'-prefixed header lines (kind, duration), then one integer
// nanosecond timestamp per line.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace ccfuzz::trace {

/// Writes `t` to `os`. Throws std::runtime_error on stream failure.
void write_trace(std::ostream& os, const Trace& t);

/// Writes `t` to `path` (overwrites). Throws std::runtime_error on failure.
void save_trace(const std::string& path, const Trace& t);

/// Parses a trace from `is`. Throws std::runtime_error on malformed input.
Trace read_trace(std::istream& is);

/// Loads a trace from `path`. Throws std::runtime_error on failure.
Trace load_trace(const std::string& path);

}  // namespace ccfuzz::trace
