// Evolution operators for traces (paper §3.2, §3.3).
//
// Link traces: mutation picks a random split point and redistributes the
// packets on one side (coin toss) with DistPackets, preserving the total
// packet budget and the initial generation's rate-variation envelope. Link
// traces have no crossover — there is no way to splice two service curves
// without violating the invariants (§3.2).
//
// Traffic traces: mutation additionally resamples the packet count of the
// regenerated side (bounded by max_packets), and crossover splices the left
// half of one parent with the right half of the other by packet index.
#pragma once

#include <cstdint>

#include "trace/dist_packets.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace ccfuzz::trace {

/// Generator + mutation parameters for link traces.
struct LinkTraceModel {
  /// Fixed packet budget (pins the average bandwidth).
  std::int64_t total_packets = 5000;
  TimeNs duration = TimeNs::seconds(5);
  DistPacketsConfig dist{};

  /// A fresh initial-generation trace.
  Trace generate(Rng& rng) const;

  /// Split-and-redistribute mutation; preserves the packet budget.
  Trace mutate(const Trace& t, Rng& rng) const;
};

/// Generator + mutation + crossover parameters for traffic traces.
struct TrafficTraceModel {
  /// Upper bound on cross-traffic packets; the count below it is variable
  /// and the trace score (§3.4) pushes it toward minimal vectors.
  std::int64_t max_packets = 5000;
  /// Packet count of initial-generation traces (defaults to the maximum
  /// when <= 0).
  std::int64_t initial_packets = -1;
  TimeNs duration = TimeNs::seconds(5);
  /// Rate constraints are off by default: realistic cross traffic may be
  /// highly adversarial (§3.1 reason 3).
  DistPacketsConfig dist{.rate_constraints = false};

  Trace generate(Rng& rng) const;

  /// Split mutation that also resamples the regenerated side's packet
  /// count within the remaining budget.
  Trace mutate(const Trace& t, Rng& rng) const;

  /// Left-of-one + right-of-other splice by packet index (§3.3). The child
  /// inherits its total count from the splice, so counts drift naturally.
  Trace crossover(const Trace& a, const Trace& b, Rng& rng) const;
};

}  // namespace ccfuzz::trace
