// Trace annealing (paper §3.2, optional): Gaussian smoothing of packet
// timestamps applied between evaluation and mutation. Over generations this
// flattens link-rate variation in regions that do not contribute to the bad
// behaviour, leaving easier-to-read traces.
#pragma once

#include <cstddef>

#include "trace/trace.h"

namespace ccfuzz::trace {

struct AnnealingConfig {
  /// Kernel standard deviation in packet-index units.
  double sigma = 2.0;
  /// Blend factor: 0 leaves the trace unchanged, 1 fully smooths it. Small
  /// values anneal gently over many generations.
  double strength = 0.5;
  /// Kernel radius in indices (samples beyond 3σ contribute < 1%).
  std::size_t radius = 6;
};

/// Returns a smoothed copy of `t`: each timestamp moves toward the Gaussian-
/// weighted average of its index-neighbours. The result stays sorted and
/// inside [0, duration), and keeps the same packet count.
Trace anneal(const Trace& t, const AnnealingConfig& cfg = {});

}  // namespace ccfuzz::trace
